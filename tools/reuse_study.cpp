// reuse_study: the study's publishing surface.
//
// Runs the trace-level reuse study under a named scale profile
// (DESIGN.md §6), serializes every number as a stable-schema JSON
// report (DESIGN.md §7), and can diff two reports with tolerances —
// so golden-snapshot checking, CI artifact publication, and the
// paper-scale run are all one process invocation:
//
//   reuse_study --profile laptop --out report.json
//   reuse_study --profile ci --out report.json --compare baseline.json
//   reuse_study --in a.json --compare b.json        (no run, diff only)
//
// Progress goes to stderr; the report goes to --out (or stdout).
// Exit codes: 0 success / comparison passed, 1 usage or I/O error,
// 2 comparison found differences.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/figures.hpp"
#include "core/profile.hpp"
#include "core/report.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace tlr;

struct CliOptions {
  std::string profile = "laptop";
  std::vector<std::string> workloads;
  bool run_series = true;  // figures 3-8
  bool run_fig9 = true;
  // Fig 10 (speculative reuse) is opt-in: it is additive to the report
  // schema and absent from the committed goldens.
  bool run_fig10 = false;
  std::vector<spec::PredictorConfig> predictors;
  std::vector<Cycle> penalties;
  std::string out_path;
  std::string compare_path;
  std::string in_path;
  core::EngineOptions engine;
  std::optional<u64> skip, length, seed;
  core::CompareOptions tolerances;
  bool quiet = false;
};

void print_usage(std::ostream& os) {
  os << "usage: reuse_study [options]\n"
        "\n"
        "Runs the trace-level reuse study and emits a JSON report\n"
        "(schema tlr-report/1).\n"
        "\n"
        "options:\n"
        "  --profile NAME     scale profile: laptop, ci, paper\n"
        "                     (default laptop)\n"
        "  --workload NAME    analyze only NAME (repeatable; default:\n"
        "                     the full 14-benchmark suite)\n"
        "  --figure SPEC      figures to include: 3..10, all, none\n"
        "                     (repeatable; default all = 3..9). Figures\n"
        "                     3-8 derive from one suite pass; 9 runs\n"
        "                     the finite-RTM matrix, the expensive\n"
        "                     part; 10 the speculative-reuse matrix.\n"
        "  --fig10            shorthand for --figure 10 (added to the\n"
        "                     default set rather than replacing it)\n"
        "  --predictor NAME   fig10 predictor: oracle, last_value,\n"
        "                     confidence (repeatable; default all)\n"
        "  --penalty N        fig10 misspeculation squash penalty in\n"
        "                     cycles (repeatable; default 0 8 32)\n"
        "  --out PATH         write the report to PATH (default stdout)\n"
        "  --threads N        engine worker threads (default: all cores)\n"
        "  --chunk N          stream chunk size in instructions\n"
        "  --skip N           override the profile's warm-up skip\n"
        "  --length N         override the profile's measured length\n"
        "  --seed N           override the workload data seed\n"
        "  --compare PATH     diff the report against baseline PATH;\n"
        "                     exit 2 if they differ beyond tolerance\n"
        "  --in PATH          load the report from PATH instead of\n"
        "                     running the study (diff/re-emit mode)\n"
        "  --rel-tol X        relative tolerance for --compare "
        "(default 1e-9)\n"
        "  --abs-tol X        absolute tolerance for --compare "
        "(default 1e-12)\n"
        "  --quiet            suppress progress output on stderr\n"
        "  --list-profiles    print the profile table and exit\n"
        "  --list-workloads   print the suite's workload names and exit\n"
        "  --help             this text\n";
}

void list_profiles() {
  for (const std::string_view name : core::ScaleProfile::names()) {
    const core::ScaleProfile profile = *core::ScaleProfile::named(name);
    std::cout << profile.name << ": skip " << profile.base.skip
              << ", measure " << profile.base.length << ", window "
              << profile.base.window << "\n";
    for (const auto& entry : profile.overrides) {
      std::cout << "  " << entry.workload << ": skip " << entry.skip
                << ", measure " << entry.length << "\n";
    }
  }
}

bool parse_u64(const char* text, u64& out) {
  // strtoull silently wraps negative input to a huge value; reject
  // anything that does not start with a digit.
  if (text[0] < '0' || text[0] > '9') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || *end != '\0') return false;
  out = value;
  return true;
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0') return false;
  out = value;
  return true;
}

/// Applies one --figure SPEC; figures accumulate across repeats
/// starting from "none" the first time the flag appears.
bool apply_figure_spec(CliOptions& options, const std::string& spec,
                       bool first) {
  if (first) {
    options.run_series = false;
    options.run_fig9 = false;
    options.run_fig10 = false;
  }
  if (spec == "all") {
    options.run_series = true;
    options.run_fig9 = true;
    return true;
  }
  if (spec == "none") return true;
  if (spec == "9") {
    options.run_fig9 = true;
    return true;
  }
  if (spec == "10") {
    options.run_fig10 = true;
    return true;
  }
  if (spec.size() == 1 && spec[0] >= '3' && spec[0] <= '8') {
    // Figures 3-8 all derive from the same suite metrics; any of them
    // selects the series block.
    options.run_series = true;
    return true;
  }
  return false;
}

int fail_usage(const std::string& message) {
  std::cerr << "reuse_study: " << message << "\n\n";
  print_usage(std::cerr);
  return 1;
}

bool known_workload(const std::string& name) {
  for (const std::string_view known : workloads::workload_names()) {
    if (known == name) return true;
  }
  return false;
}

int run(const CliOptions& options) {
  using Clock = std::chrono::steady_clock;

  core::ScaleProfile profile;
  util::Json report;

  if (!options.in_path.empty()) {
    std::string error;
    const auto loaded = core::read_report_file(options.in_path, &error);
    if (!loaded.has_value()) {
      std::cerr << "reuse_study: " << error << "\n";
      return 1;
    }
    report = *loaded;
  } else {
    const auto named = core::ScaleProfile::named(options.profile);
    if (!named.has_value()) {
      return fail_usage("unknown profile '" + options.profile + "'");
    }
    profile = *named;
    if (options.skip || options.length || options.seed) {
      profile.name = "custom";
      profile.overrides.clear();
      if (options.skip) profile.base.skip = *options.skip;
      if (options.length) profile.base.length = *options.length;
      if (options.seed) profile.base.seed = *options.seed;
    }

    const auto start = Clock::now();
    core::StudyEngine engine(options.engine);
    const core::MetricOptions metric_options;

    if (!options.quiet) {
      std::cerr << "reuse_study: profile " << profile.name << " (skip "
                << profile.base.skip << ", measure " << profile.base.length
                << "), " << engine.thread_count() << " thread(s)\n";
    }
    const auto progress = [&](std::string_view workload, usize done,
                              usize total) {
      if (options.quiet) return;
      std::cerr << "reuse_study: [" << done << "/" << total << "] "
                << workload << "\n";
    };
    const std::vector<core::WorkloadMetrics> suite = engine.analyze_profile(
        profile, metric_options, options.workloads, progress);

    core::ReportFigures figures;
    if (options.run_series) figures.series = {"3", "4", "5", "6", "7", "8"};
    if (options.run_fig9) {
      if (!options.quiet) {
        std::cerr << "reuse_study: finite-RTM matrix (figure 9)\n";
      }
      core::Fig9Options fig9_options;
      fig9_options.workloads = options.workloads;
      usize last_percent = 0;
      fig9_options.progress = [&](usize done, usize total) {
        if (options.quiet) return;
        const usize percent = done * 100 / total;
        if (percent / 10 > last_percent / 10) {
          std::cerr << "reuse_study: fig9 " << percent << "% (" << done
                    << "/" << total << " jobs)\n";
        }
        last_percent = percent;
      };
      figures.fig9 = core::fig9_finite_rtm(engine, profile, fig9_options);
    }
    if (options.run_fig10) {
      if (!options.quiet) {
        std::cerr << "reuse_study: speculative-reuse matrix (figure 10)\n";
      }
      core::Fig10Options fig10_options;
      fig10_options.workloads = options.workloads;
      if (!options.predictors.empty()) {
        fig10_options.predictors = options.predictors;
      }
      if (!options.penalties.empty()) {
        fig10_options.penalties = options.penalties;
      }
      usize last_percent = 0;
      fig10_options.progress = [&](usize done, usize total) {
        if (options.quiet) return;
        const usize percent = done * 100 / total;
        if (percent / 10 > last_percent / 10) {
          std::cerr << "reuse_study: fig10 " << percent << "% (" << done
                    << "/" << total << " jobs)\n";
        }
        last_percent = percent;
      };
      figures.fig10 =
          core::fig10_speculative_reuse(engine, profile, fig10_options);
    }

    core::ReportMeta meta;
    meta.threads = engine.thread_count();
    meta.chunk_size = engine.options().chunk_size;
    meta.wall_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    report = core::build_report(profile, metric_options, suite, meta,
                                figures);
    if (!options.quiet) {
      std::cerr << "reuse_study: done in " << meta.wall_seconds << "s\n";
    }
  }

  if (!options.out_path.empty()) {
    std::string error;
    if (!core::write_report_file(report, options.out_path, &error)) {
      std::cerr << "reuse_study: " << error << "\n";
      return 1;
    }
    if (!options.quiet) {
      std::cerr << "reuse_study: wrote " << options.out_path << "\n";
    }
  } else if (options.compare_path.empty()) {
    std::cout << report.dump(/*indent=*/2);
  }

  if (!options.compare_path.empty()) {
    std::string error;
    const auto baseline =
        core::read_report_file(options.compare_path, &error);
    if (!baseline.has_value()) {
      std::cerr << "reuse_study: " << error << "\n";
      return 1;
    }
    const std::vector<std::string> diffs =
        core::compare_reports(report, *baseline, options.tolerances);
    if (!diffs.empty()) {
      std::cerr << "reuse_study: report differs from "
                << options.compare_path << " (" << diffs.size()
                << " difference(s)):\n";
      for (const std::string& diff : diffs) {
        std::cerr << "  " << diff << "\n";
      }
      return 2;
    }
    if (!options.quiet) {
      std::cerr << "reuse_study: report matches " << options.compare_path
                << " (rel tol " << options.tolerances.rel_tol
                << ", abs tol " << options.tolerances.abs_tol << ")\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  bool first_figure_spec = true;
  bool fig10_flag = false;  // --fig10 adds to any --figure selection

  const auto next_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "reuse_study: " << flag << " needs a value\n";
      std::exit(1);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--list-profiles") {
      list_profiles();
      return 0;
    } else if (arg == "--list-workloads") {
      for (const std::string_view name : workloads::workload_names()) {
        std::cout << name << "\n";
      }
      return 0;
    } else if (arg == "--profile") {
      options.profile = next_value(i, "--profile");
    } else if (arg == "--workload") {
      const std::string name = next_value(i, "--workload");
      if (!known_workload(name)) {
        return fail_usage("unknown workload '" + name + "'");
      }
      options.workloads.push_back(name);
    } else if (arg == "--figure") {
      const std::string spec = next_value(i, "--figure");
      if (!apply_figure_spec(options, spec, first_figure_spec)) {
        return fail_usage("bad --figure '" + spec +
                          "' (want 3..10, all, none)");
      }
      first_figure_spec = false;
    } else if (arg == "--fig10") {
      fig10_flag = true;
    } else if (arg == "--predictor") {
      const std::string name = next_value(i, "--predictor");
      const auto kind = spec::predictor_from_name(name);
      if (!kind.has_value()) {
        return fail_usage("unknown predictor '" + name +
                          "' (want oracle, last_value, confidence)");
      }
      spec::PredictorConfig config;
      config.kind = *kind;
      options.predictors.push_back(config);
    } else if (arg == "--penalty") {
      u64 value = 0;
      if (!parse_u64(next_value(i, "--penalty"), value)) {
        return fail_usage("bad --penalty value");
      }
      options.penalties.push_back(value);
    } else if (arg == "--out") {
      options.out_path = next_value(i, "--out");
    } else if (arg == "--compare") {
      options.compare_path = next_value(i, "--compare");
    } else if (arg == "--in") {
      options.in_path = next_value(i, "--in");
    } else if (arg == "--threads") {
      u64 value = 0;
      if (!parse_u64(next_value(i, "--threads"), value)) {
        return fail_usage("bad --threads value");
      }
      options.engine.threads = value;
    } else if (arg == "--chunk") {
      u64 value = 0;
      if (!parse_u64(next_value(i, "--chunk"), value) || value == 0) {
        return fail_usage("bad --chunk value");
      }
      options.engine.chunk_size = value;
    } else if (arg == "--skip") {
      u64 value = 0;
      if (!parse_u64(next_value(i, "--skip"), value)) {
        return fail_usage("bad --skip value");
      }
      options.skip = value;
    } else if (arg == "--length") {
      u64 value = 0;
      if (!parse_u64(next_value(i, "--length"), value) || value == 0) {
        return fail_usage("bad --length value");
      }
      options.length = value;
    } else if (arg == "--seed") {
      u64 value = 0;
      if (!parse_u64(next_value(i, "--seed"), value)) {
        return fail_usage("bad --seed value");
      }
      options.seed = value;
    } else if (arg == "--rel-tol") {
      double value = 0;
      if (!parse_double(next_value(i, "--rel-tol"), value) || value < 0) {
        return fail_usage("bad --rel-tol value");
      }
      options.tolerances.rel_tol = value;
    } else if (arg == "--abs-tol") {
      double value = 0;
      if (!parse_double(next_value(i, "--abs-tol"), value) || value < 0) {
        return fail_usage("bad --abs-tol value");
      }
      options.tolerances.abs_tol = value;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      return fail_usage("unknown option '" + arg + "'");
    }
  }

  if (fig10_flag) options.run_fig10 = true;
  if (!options.run_fig10 &&
      (!options.predictors.empty() || !options.penalties.empty())) {
    return fail_usage(
        "--predictor/--penalty only apply to figure 10; add --fig10 "
        "or --figure 10");
  }
  return run(options);
}
