// reuse_study: the study's publishing surface.
//
// Runs the trace-level reuse study under a named scale profile
// (DESIGN.md §6), serializes every number as a stable-schema JSON
// report (DESIGN.md §7), and can diff two reports with tolerances —
// so golden-snapshot checking, CI artifact publication, and the
// paper-scale run are all one process invocation:
//
//   reuse_study --profile laptop --out report.json
//   reuse_study --profile ci --out report.json --compare baseline.json
//   reuse_study --in a.json --compare b.json        (no run, diff only)
//
// Paper-scale runs shard and resume (DESIGN.md §9, docs/reuse_study.md):
//
//   reuse_study --profile paper --shard 3/8 --out partials/shard-3-of-8.json
//   reuse_study --profile paper --resume partials/ --out report-paper.json
//   reuse_study merge --out report-paper.json partials/
//
// Progress goes to stderr; the report goes to --out (or stdout).
// Exit codes: 0 success / comparison passed, 1 usage, I/O or
// merge-validation error, 2 comparison found differences (or
// --compare combined with --shard, which would silently skip it).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/figures.hpp"
#include "core/profile.hpp"
#include "core/report.hpp"
#include "core/shard.hpp"
#include "obs/counters.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "tools/throughput.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace tlr;

struct CliOptions {
  std::string profile = "laptop";
  std::vector<std::string> workloads;
  // TLC sources (--workload-file): compiled, registered under their
  // file stem, and appended to `workloads`.
  std::vector<std::string> workload_files;
  bool run_series = true;  // figures 3-8
  bool run_fig9 = true;
  // Fig 10 (speculative reuse) is opt-in: it is additive to the report
  // schema and absent from the committed goldens.
  bool run_fig10 = false;
  std::vector<spec::PredictorConfig> predictors;
  std::vector<Cycle> penalties;
  std::string out_path;
  std::string compare_path;
  std::string in_path;
  core::EngineOptions engine;
  std::optional<u64> skip, length, seed;
  core::CompareOptions tolerances;
  bool quiet = false;
  // Telemetry (DESIGN.md §11, docs/observability.md): span trace,
  // counter metrics, and the stderr progress mode.
  std::string trace_path;
  std::string metrics_path;
  obs::ProgressMode progress = obs::ProgressMode::kLine;
  // Sharding (DESIGN.md §9): --shard K/N runs one slice, --resume DIR
  // drives the whole plan with checkpointed partials.
  std::optional<std::pair<usize, usize>> shard;
  std::string resume_dir;
  std::optional<u64> shard_count;
};

void print_usage(std::ostream& os) {
  os << "usage: reuse_study [options]\n"
        "       reuse_study merge [--out PATH] [--quiet] PARTIAL...\n"
        "\n"
        "Runs the trace-level reuse study and emits a JSON report\n"
        "(schema tlr-report/1). The merge subcommand combines shard\n"
        "partials (files, or directories scanned for shard-*.json)\n"
        "into the monolithic report, refusing mismatched provenance\n"
        "(git SHA, profile, options, predictor config) with exit 1.\n"
        "\n"
        "options:\n"
        "  --profile NAME     scale profile: laptop, ci, paper\n"
        "                     (default laptop)\n"
        "  --workload NAME    analyze only NAME (repeatable; default:\n"
        "                     the full 14-benchmark suite)\n"
        "  --workload-file P  compile the TLC program at P (docs/tlc.md)\n"
        "                     and analyze it alongside any --workload\n"
        "                     selections; the workload is named after\n"
        "                     the file stem (repeatable). Unreadable or\n"
        "                     malformed sources exit 2 with a one-line\n"
        "                     file:line:col diagnostic\n"
        "  --figure SPEC      figures to include: 3..10, all, none\n"
        "                     (repeatable; default all = 3..9). Figures\n"
        "                     3-8 derive from one suite pass; 9 runs\n"
        "                     the finite-RTM matrix, the expensive\n"
        "                     part; 10 the speculative-reuse matrix.\n"
        "  --fig10            shorthand for --figure 10 (added to the\n"
        "                     default set rather than replacing it)\n"
        "  --predictor NAME   fig10 predictor: oracle, last_value,\n"
        "                     confidence (repeatable; default all)\n"
        "  --penalty N        fig10 misspeculation squash penalty in\n"
        "                     cycles (repeatable; default 0 8 32)\n"
        "  --out PATH         write the report to PATH (default stdout;\n"
        "                     missing parent directories are created)\n"
        "  --shard K/N        run only shard K of N (1-based) of the\n"
        "                     run's shard plan and emit a partial\n"
        "                     report; merge the N partials afterwards.\n"
        "                     Incompatible with --in, --resume, and\n"
        "                     --compare (the latter exits 2: a partial\n"
        "                     cannot be compared against a baseline)\n"
        "  --resume DIR       run every shard, checkpointing partials\n"
        "                     as DIR/shard-K-of-N.json and skipping\n"
        "                     shards whose partial already validates;\n"
        "                     the merged report goes to --out/stdout\n"
        "  --shards N         shard count for --resume (default: one\n"
        "                     shard per plan key)\n"
        "  --threads N        engine worker threads (default: all cores)\n"
        "  --chunk N          stream chunk size in instructions\n"
        "  --skip N           override the profile's warm-up skip\n"
        "  --length N         override the profile's measured length\n"
        "  --seed N           override the workload data seed\n"
        "  --compare PATH     diff the report against baseline PATH;\n"
        "                     exit 2 if they differ beyond tolerance\n"
        "  --in PATH          load the report from PATH instead of\n"
        "                     running the study (diff/re-emit mode)\n"
        "  --rel-tol X        relative tolerance for --compare "
        "(default 1e-9)\n"
        "  --abs-tol X        absolute tolerance for --compare "
        "(default 1e-12)\n"
        "  --trace PATH       write a Chrome trace_event JSON span\n"
        "                     trace to PATH (open in Perfetto or\n"
        "                     chrome://tracing)\n"
        "  --metrics PATH     write the run's tlr-metrics/1 counter\n"
        "                     snapshot to PATH\n"
        "  --progress MODE    stderr progress: none, line (default),\n"
        "                     json (one machine-readable JSON object\n"
        "                     per line)\n"
        "  --quiet            suppress progress output on stderr\n"
        "                     (same as --progress none)\n"
        "  --list-profiles    print the profile table and exit\n"
        "  --list-workloads   print the suite's workload names and exit\n"
        "  --help             this text\n";
}

void list_profiles() {
  for (const std::string_view name : core::ScaleProfile::names()) {
    const core::ScaleProfile profile = *core::ScaleProfile::named(name);
    std::cout << profile.name << ": skip " << profile.base.skip
              << ", measure " << profile.base.length << ", window "
              << profile.base.window << "\n";
    for (const auto& entry : profile.overrides) {
      std::cout << "  " << entry.workload << ": skip " << entry.skip
                << ", measure " << entry.length << "\n";
    }
  }
}

bool parse_u64(const char* text, u64& out) {
  // strtoull silently wraps negative input to a huge value; reject
  // anything that does not start with a digit.
  if (text[0] < '0' || text[0] > '9') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || *end != '\0') return false;
  out = value;
  return true;
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0') return false;
  out = value;
  return true;
}

/// Applies one --figure SPEC; figures accumulate across repeats
/// starting from "none" the first time the flag appears.
bool apply_figure_spec(CliOptions& options, const std::string& spec,
                       bool first) {
  if (first) {
    options.run_series = false;
    options.run_fig9 = false;
    options.run_fig10 = false;
  }
  if (spec == "all") {
    options.run_series = true;
    options.run_fig9 = true;
    return true;
  }
  if (spec == "none") return true;
  if (spec == "9") {
    options.run_fig9 = true;
    return true;
  }
  if (spec == "10") {
    options.run_fig10 = true;
    return true;
  }
  if (spec.size() == 1 && spec[0] >= '3' && spec[0] <= '8') {
    // Figures 3-8 all derive from the same suite metrics; any of them
    // selects the series block.
    options.run_series = true;
    return true;
  }
  return false;
}

int fail_usage(const std::string& message) {
  std::cerr << "reuse_study: " << message << "\n\n";
  print_usage(std::cerr);
  return 1;
}

bool known_workload(const std::string& name) {
  // Built-in analogs plus any --workload-file registrations.
  return workloads::is_known_workload(name);
}

/// Reads, compiles, and registers one --workload-file source; appends
/// its stem name to the run's workload selection. Returns 0 or, on any
/// failure, 2 after a one-line diagnostic plus usage — malformed input
/// must produce a comparison-grade failure, never an assert.
int load_workload_file(CliOptions& options, const std::string& path) {
  const auto fail = [&](const std::string& message) {
    std::cerr << "reuse_study: " << message << "\n\n";
    print_usage(std::cerr);
    return 2;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return fail("cannot read workload file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();

  const std::string name = std::filesystem::path(path).stem().string();
  if (name.empty()) {
    return fail("workload file '" + path + "' has no usable stem name");
  }
  // Compile with the path in diagnostics so errors point at the file,
  // then register under the stem so the engine can build it by name.
  std::string error;
  if (!workloads::make_from_source(path, source, {}, &error).has_value()) {
    return fail(error);
  }
  if (!workloads::register_source(name, source, &error)) {
    return fail(error);
  }
  options.workloads.push_back(name);
  return 0;
}

/// Resolves --profile/--skip/--length/--seed into the effective
/// profile; false (after a usage message) on unknown names.
bool resolve_profile(const CliOptions& options, core::ScaleProfile& profile) {
  const auto named = core::ScaleProfile::named(options.profile);
  if (!named.has_value()) {
    fail_usage("unknown profile '" + options.profile + "'");
    return false;
  }
  profile = *named;
  if (options.skip || options.length || options.seed) {
    profile.name = "custom";
    profile.overrides.clear();
    if (options.skip) profile.base.skip = *options.skip;
    if (options.length) profile.base.length = *options.length;
    if (options.seed) profile.base.seed = *options.seed;
  }
  return true;
}

core::SectionSelection selection_from(const CliOptions& options) {
  core::SectionSelection sections;
  sections.series = options.run_series;
  sections.fig9 = options.run_fig9;
  sections.fig10 = options.run_fig10;
  return sections;
}

core::ShardRunOptions shard_options_from(const CliOptions& options) {
  core::ShardRunOptions shard_options;
  if (!options.predictors.empty()) {
    shard_options.fig10.predictors = options.predictors;
  }
  if (!options.penalties.empty()) {
    shard_options.fig10.penalties = options.penalties;
  }
  return shard_options;
}

obs::ProgressMode progress_mode(const CliOptions& options) {
  return options.quiet ? obs::ProgressMode::kNone : options.progress;
}

/// Writes the --metrics counter snapshot and the --trace span file at
/// the end of a run mode; 1 on I/O failure. `threads`/`chunk_size`
/// are the engine's effective values, recorded as metrics provenance.
int write_telemetry(const CliOptions& options, usize threads,
                    usize chunk_size) {
  if (!options.metrics_path.empty()) {
    obs::MetricsMeta meta;
    meta.threads = threads;
    meta.chunk_size = chunk_size;
    std::string error;
    if (!obs::write_metrics_file(obs::metrics_snapshot(), meta,
                                 options.metrics_path, &error)) {
      std::cerr << "reuse_study: " << error << "\n";
      return 1;
    }
    obs::ProgressReporter(progress_mode(options))
        .note("wrote metrics " + options.metrics_path);
  }
  if (!options.trace_path.empty()) {
    std::string error;
    if (!obs::write_trace_file(options.trace_path, &error)) {
      std::cerr << "reuse_study: " << error << "\n";
      return 1;
    }
    obs::ProgressReporter(progress_mode(options))
        .note("wrote trace " + options.trace_path);
  }
  return 0;
}

/// The --compare tail shared by every mode that produced a report:
/// 0 match, 1 I/O error, 2 differences.
int compare_report(const util::Json& report, const CliOptions& options) {
  std::string error;
  const auto baseline = core::read_report_file(options.compare_path, &error);
  if (!baseline.has_value()) {
    std::cerr << "reuse_study: " << error << "\n";
    return 1;
  }
  const std::vector<std::string> diffs =
      core::compare_reports(report, *baseline, options.tolerances);
  if (!diffs.empty()) {
    std::cerr << "reuse_study: report differs from " << options.compare_path
              << " (" << diffs.size() << " difference(s)):\n";
    for (const std::string& diff : diffs) {
      std::cerr << "  " << diff << "\n";
    }
    return 2;
  }
  std::ostringstream matched;
  matched << "report matches " << options.compare_path << " (rel tol "
          << options.tolerances.rel_tol << ", abs tol "
          << options.tolerances.abs_tol << ")";
  obs::ProgressReporter(progress_mode(options)).note(matched.str());
  return 0;
}

/// Writes `report` to --out (or stdout when no --out and no compare
/// will print a verdict); 1 on I/O failure.
int emit_report(const util::Json& report, const CliOptions& options) {
  if (!options.out_path.empty()) {
    std::string error;
    if (!core::write_report_file(report, options.out_path, &error)) {
      std::cerr << "reuse_study: " << error << "\n";
      return 1;
    }
    obs::ProgressReporter(progress_mode(options))
        .note("wrote " + options.out_path);
  } else if (options.compare_path.empty()) {
    std::cout << report.dump(/*indent=*/2);
  }
  return 0;
}

int run(const CliOptions& options) {
  using Clock = std::chrono::steady_clock;

  core::ScaleProfile profile;
  util::Json report;
  // Engine provenance for the metrics file; stays 0/0 in --in mode
  // (no engine runs, the counters are empty).
  usize telemetry_threads = 0;
  usize telemetry_chunk = 0;

  if (!options.in_path.empty()) {
    std::string error;
    const auto loaded = core::read_report_file(options.in_path, &error);
    if (!loaded.has_value()) {
      std::cerr << "reuse_study: " << error << "\n";
      return 1;
    }
    report = *loaded;
  } else {
    if (!resolve_profile(options, profile)) return 1;

    const auto start = Clock::now();
    core::StudyEngine engine(options.engine);
    const core::MetricOptions metric_options;
    obs::ProgressReporter reporter(progress_mode(options));

    {
      std::ostringstream header;
      header << "profile " << profile.name << " (skip " << profile.base.skip
             << ", measure " << profile.base.length << "), "
             << engine.thread_count() << " thread(s)";
      reporter.note(header.str());
    }
    const usize suite_total = options.workloads.empty()
                                  ? workloads::workload_names().size()
                                  : options.workloads.size();
    reporter.begin_section("suite", suite_total);
    const auto progress = [&](std::string_view workload, usize done,
                              usize total) {
      reporter.update(done, total, workload);
    };
    const std::vector<core::WorkloadMetrics> suite = engine.analyze_profile(
        profile, metric_options, options.workloads, progress);
    // Per-section throughput lands in the reporter's run footer so
    // paper-scale shard logs show Minstr/s without a separate tool
    // (tools/bench_report measures the same sections for the record).
    reporter.end_section(tools::suite_instructions(suite));

    core::ReportFigures figures;
    if (options.run_series) {
      figures.series = core::ReportFigures::all_series().series;
    }
    if (options.run_fig9) {
      reporter.note("finite-RTM matrix (figure 9)");
      core::Fig9Options fig9_options;
      fig9_options.workloads = options.workloads;
      reporter.begin_section("fig9", 0);
      fig9_options.progress = [&](usize done, usize total) {
        reporter.update(done, total);
      };
      figures.fig9 = core::fig9_finite_rtm(engine, profile, fig9_options);
      reporter.end_section(tools::fig9_instructions(suite));
    }
    if (options.run_fig10) {
      reporter.note("speculative-reuse matrix (figure 10)");
      core::Fig10Options fig10_options;
      fig10_options.workloads = options.workloads;
      if (!options.predictors.empty()) {
        fig10_options.predictors = options.predictors;
      }
      if (!options.penalties.empty()) {
        fig10_options.penalties = options.penalties;
      }
      reporter.begin_section("fig10", 0);
      fig10_options.progress = [&](usize done, usize total) {
        reporter.update(done, total);
      };
      figures.fig10 =
          core::fig10_speculative_reuse(engine, profile, fig10_options);
      const usize predictors = fig10_options.predictors.empty()
                                   ? core::fig10_predictors().size()
                                   : fig10_options.predictors.size();
      reporter.end_section(tools::fig10_instructions(suite, predictors));
    }

    core::ReportMeta meta;
    meta.threads = engine.thread_count();
    meta.chunk_size = engine.options().chunk_size;
    meta.wall_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    report = core::build_report(profile, metric_options, suite, meta,
                                figures);
    reporter.finish(meta.wall_seconds);
    telemetry_threads = meta.threads;
    telemetry_chunk = meta.chunk_size;
  }

  if (const int code =
          write_telemetry(options, telemetry_threads, telemetry_chunk);
      code != 0) {
    return code;
  }
  if (const int code = emit_report(report, options); code != 0) return code;
  if (!options.compare_path.empty()) return compare_report(report, options);
  return 0;
}

// ---- shard modes (DESIGN.md §9) --------------------------------------

int fail_merge(const std::vector<std::string>& errors) {
  std::cerr << "reuse_study: merge failed:\n";
  for (const std::string& error : errors) {
    std::cerr << "  " << error << "\n";
  }
  return 1;
}

/// --shard K/N: run one slice, emit its partial report.
int run_shard(const CliOptions& options) {
  core::ScaleProfile profile;
  if (!resolve_profile(options, profile)) return 1;
  const auto [index, count] = *options.shard;
  const core::ShardPlan plan =
      core::ShardPlan::enumerate(selection_from(options), options.workloads);

  core::StudyEngine engine(options.engine);
  obs::ProgressReporter reporter(progress_mode(options));
  core::ReportMeta meta;
  meta.threads = engine.thread_count();
  meta.chunk_size = engine.options().chunk_size;
  {
    std::ostringstream header;
    header << "profile " << profile.name << ", shard " << index << "/"
           << count << " (" << plan.slice(index, count).size() << " of "
           << plan.size() << " keys), " << engine.thread_count()
           << " thread(s)";
    reporter.note(header.str());
  }
  reporter.begin_section("shard", plan.slice(index, count).size());
  const util::Json partial = core::run_shard_partial(
      engine, profile, plan, index, count, shard_options_from(options), meta,
      [&](std::string_view label, usize done, usize total) {
        reporter.update(done, total, label);
      });
  if (const int code = write_telemetry(options, meta.threads,
                                       meta.chunk_size);
      code != 0) {
    return code;
  }
  return emit_report(partial, options);
}

/// --resume DIR: run (or skip) every shard with on-disk checkpoints,
/// then merge and hand the full report to --out/--compare.
int run_resume(const CliOptions& options) {
  core::ScaleProfile profile;
  if (!resolve_profile(options, profile)) return 1;
  const core::ShardPlan plan =
      core::ShardPlan::enumerate(selection_from(options), options.workloads);
  const core::ShardRunOptions shard_options = shard_options_from(options);
  const usize count =
      options.shard_count.has_value() ? *options.shard_count : plan.size();

  std::error_code ec;
  std::filesystem::create_directories(options.resume_dir, ec);
  if (ec) {
    std::cerr << "reuse_study: cannot create directory "
              << options.resume_dir << ": " << ec.message() << "\n";
    return 1;
  }

  core::StudyEngine engine(options.engine);
  obs::ProgressReporter reporter(progress_mode(options));
  // The heartbeat file makes a long resume run observable from outside
  // the process (docs/observability.md): a stalled shard shows up as a
  // stale mtime, not as silence. Written regardless of --progress mode.
  obs::Heartbeat heartbeat(
      (std::filesystem::path(options.resume_dir) / "heartbeat.json")
          .string());
  {
    std::ostringstream header;
    header << "profile " << profile.name << ", " << count
           << " shard(s) over " << plan.size() << " keys, "
           << engine.thread_count() << " thread(s), resuming in "
           << options.resume_dir;
    reporter.note(header.str());
  }

  const auto shard_path = [&](usize index) {
    return std::filesystem::path(options.resume_dir) /
           core::shard_file_name(index, count);
  };

  // Pass 1: revalidate existing checkpoints; anything stale or
  // corrupt joins the pending set and is re-run.
  std::vector<std::optional<util::Json>> by_index(count);
  std::vector<usize> pending;
  usize skipped = 0;
  for (usize index = 1; index <= count; ++index) {
    const std::filesystem::path path = shard_path(index);
    if (std::filesystem::exists(path)) {
      const auto existing = core::read_report_file(path.string());
      std::string why;
      if (existing.has_value() &&
          core::validate_partial(*existing, profile, shard_options, plan,
                                 index, count, &why)) {
        std::ostringstream text;
        text << "shard " << index << "/" << count << " already done ("
             << path.string() << "), skipping";
        reporter.note(text.str());
        by_index[index - 1] = *existing;
        ++skipped;
        continue;
      }
      {
        std::ostringstream text;
        text << "shard " << index << "/" << count << " partial invalid ("
             << why << "), re-running";
        reporter.note(text.str());
      }
    }
    pending.push_back(index);
  }

  // Pass 2: every pending shard's jobs through one engine fan-out
  // (sequential per-shard runs would idle the pool — a suite shard is
  // a single job), checkpointing each partial as its keys complete.
  if (!pending.empty()) {
    core::ReportMeta meta;
    meta.threads = engine.thread_count();
    meta.chunk_size = engine.options().chunk_size;
    std::string write_error;
    reporter.begin_section("shards", 0);
    core::run_shard_partials(
        engine, profile, plan, pending, count, shard_options, meta,
        [&](usize index, util::Json partial) {
          const std::filesystem::path path = shard_path(index);
          std::string error;
          if (!core::write_report_file(partial, path.string(), &error)) {
            if (write_error.empty()) write_error = error;
          } else {
            std::ostringstream text;
            text << "shard " << index << "/" << count << " -> "
                 << path.string();
            reporter.note(text.str());
          }
          by_index[index - 1] = std::move(partial);
        },
        [&](std::string_view label, usize done, usize total) {
          reporter.update(done, total, label);
          heartbeat.update(done, total, label);
        });
    if (!write_error.empty()) {
      std::cerr << "reuse_study: " << write_error << "\n";
      return 1;
    }
  }

  std::vector<util::Json> partials;
  std::vector<std::string> labels;  // checkpoint path per partial
  for (usize index = 1; index <= count; ++index) {
    std::optional<util::Json>& partial = by_index[index - 1];
    if (partial.has_value()) {
      partials.push_back(std::move(*partial));
      labels.push_back(shard_path(index).string());
    }
  }

  std::vector<std::string> errors;
  const auto merged = core::merge_partials(partials, &errors, labels);
  if (!merged.has_value()) return fail_merge(errors);
  heartbeat.finish(count, count);
  {
    std::ostringstream text;
    text << "merged " << partials.size() << " partial(s) (" << skipped
         << " reused)";
    reporter.note(text.str());
  }
  if (const int code = write_telemetry(options, engine.thread_count(),
                                       engine.options().chunk_size);
      code != 0) {
    return code;
  }
  if (const int code = emit_report(*merged, options); code != 0) return code;
  if (!options.compare_path.empty()) return compare_report(*merged, options);
  return 0;
}

/// `reuse_study merge`: combine already-written partials.
int run_merge(int argc, char** argv) {
  std::string out_path;
  bool quiet = false;
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      if (i + 1 >= argc) return fail_usage("--out needs a value");
      out_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return fail_usage("unknown merge option '" + arg + "'");
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    return fail_usage("merge needs at least one partial file or directory");
  }

  // Directories expand to their canonical shard-*.json checkpoints so
  // a merged report written alongside them is never re-ingested.
  std::vector<std::string> paths;
  for (const std::string& input : inputs) {
    if (std::filesystem::is_directory(input)) {
      std::vector<std::string> found;
      for (const auto& entry : std::filesystem::directory_iterator(input)) {
        const std::string name = entry.path().filename().string();
        if (entry.is_regular_file() && name.rfind("shard-", 0) == 0 &&
            name.size() > 5 && name.ends_with(".json")) {
          found.push_back(entry.path().string());
        }
      }
      std::sort(found.begin(), found.end());
      if (found.empty()) {
        std::cerr << "reuse_study: no shard-*.json partials in " << input
                  << "\n";
        return 1;
      }
      paths.insert(paths.end(), found.begin(), found.end());
    } else {
      paths.push_back(input);
    }
  }

  std::vector<util::Json> partials;
  for (const std::string& path : paths) {
    std::string error;
    const auto partial = core::read_report_file(path, &error);
    if (!partial.has_value()) {
      std::cerr << "reuse_study: " << error << "\n";
      return 1;
    }
    partials.push_back(*partial);
  }

  std::vector<std::string> errors;
  const auto merged = core::merge_partials(partials, &errors, paths);
  if (!merged.has_value()) return fail_merge(errors);
  if (!quiet) {
    std::cerr << "reuse_study: merged " << partials.size()
              << " partial(s)\n";
  }
  CliOptions emit_options;
  emit_options.out_path = out_path;
  emit_options.quiet = quiet;
  return emit_report(*merged, emit_options);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "merge") == 0) {
    return run_merge(argc, argv);
  }

  CliOptions options;
  bool first_figure_spec = true;
  bool fig10_flag = false;  // --fig10 adds to any --figure selection

  const auto next_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "reuse_study: " << flag << " needs a value\n";
      std::exit(1);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--list-profiles") {
      list_profiles();
      return 0;
    } else if (arg == "--list-workloads") {
      for (const std::string_view name : workloads::workload_names()) {
        std::cout << name << "\n";
      }
      return 0;
    } else if (arg == "--profile") {
      options.profile = next_value(i, "--profile");
    } else if (arg == "--workload") {
      const std::string name = next_value(i, "--workload");
      if (!known_workload(name)) {
        return fail_usage("unknown workload '" + name + "'");
      }
      options.workloads.push_back(name);
    } else if (arg == "--workload-file") {
      options.workload_files.push_back(next_value(i, "--workload-file"));
    } else if (arg == "--figure") {
      const std::string spec = next_value(i, "--figure");
      if (!apply_figure_spec(options, spec, first_figure_spec)) {
        return fail_usage("bad --figure '" + spec +
                          "' (want 3..10, all, none)");
      }
      first_figure_spec = false;
    } else if (arg == "--fig10") {
      fig10_flag = true;
    } else if (arg == "--predictor") {
      const std::string name = next_value(i, "--predictor");
      const auto kind = spec::predictor_from_name(name);
      if (!kind.has_value()) {
        return fail_usage("unknown predictor '" + name +
                          "' (want oracle, last_value, confidence)");
      }
      spec::PredictorConfig config;
      config.kind = *kind;
      options.predictors.push_back(config);
    } else if (arg == "--penalty") {
      u64 value = 0;
      if (!parse_u64(next_value(i, "--penalty"), value)) {
        return fail_usage("bad --penalty value");
      }
      options.penalties.push_back(value);
    } else if (arg == "--out") {
      options.out_path = next_value(i, "--out");
    } else if (arg == "--shard") {
      const std::string spec = next_value(i, "--shard");
      const auto slash = spec.find('/');
      u64 index = 0, count = 0;
      if (slash == std::string::npos ||
          !parse_u64(spec.substr(0, slash).c_str(), index) ||
          !parse_u64(spec.substr(slash + 1).c_str(), count) || count == 0 ||
          count > core::kMaxShardCount || index == 0 || index > count) {
        return fail_usage("bad --shard '" + spec +
                          "' (want K/N with 1 <= K <= N <= " +
                          std::to_string(core::kMaxShardCount) + ")");
      }
      options.shard = {static_cast<usize>(index), static_cast<usize>(count)};
    } else if (arg == "--resume") {
      options.resume_dir = next_value(i, "--resume");
    } else if (arg == "--shards") {
      u64 value = 0;
      if (!parse_u64(next_value(i, "--shards"), value) || value == 0 ||
          value > core::kMaxShardCount) {
        return fail_usage("bad --shards value");
      }
      options.shard_count = value;
    } else if (arg == "--compare") {
      options.compare_path = next_value(i, "--compare");
    } else if (arg == "--in") {
      options.in_path = next_value(i, "--in");
    } else if (arg == "--threads") {
      u64 value = 0;
      if (!parse_u64(next_value(i, "--threads"), value)) {
        return fail_usage("bad --threads value");
      }
      options.engine.threads = value;
    } else if (arg == "--chunk") {
      u64 value = 0;
      if (!parse_u64(next_value(i, "--chunk"), value) || value == 0) {
        return fail_usage("bad --chunk value");
      }
      options.engine.chunk_size = value;
    } else if (arg == "--skip") {
      u64 value = 0;
      if (!parse_u64(next_value(i, "--skip"), value)) {
        return fail_usage("bad --skip value");
      }
      options.skip = value;
    } else if (arg == "--length") {
      u64 value = 0;
      if (!parse_u64(next_value(i, "--length"), value)) {
        return fail_usage("bad --length value");
      }
      // 0 is allowed: measure nothing (the workload is skipped), so
      // plumbing runs can exercise report emission without streaming.
      options.length = value;
    } else if (arg == "--seed") {
      u64 value = 0;
      if (!parse_u64(next_value(i, "--seed"), value)) {
        return fail_usage("bad --seed value");
      }
      options.seed = value;
    } else if (arg == "--rel-tol") {
      double value = 0;
      if (!parse_double(next_value(i, "--rel-tol"), value) || value < 0) {
        return fail_usage("bad --rel-tol value");
      }
      options.tolerances.rel_tol = value;
    } else if (arg == "--abs-tol") {
      double value = 0;
      if (!parse_double(next_value(i, "--abs-tol"), value) || value < 0) {
        return fail_usage("bad --abs-tol value");
      }
      options.tolerances.abs_tol = value;
    } else if (arg == "--trace") {
      options.trace_path = next_value(i, "--trace");
    } else if (arg == "--metrics") {
      options.metrics_path = next_value(i, "--metrics");
    } else if (arg == "--progress") {
      const std::string name = next_value(i, "--progress");
      const auto mode = obs::progress_mode_from_name(name);
      if (!mode.has_value()) {
        return fail_usage("bad --progress '" + name +
                          "' (want none, line, json)");
      }
      options.progress = *mode;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      return fail_usage("unknown option '" + arg + "'");
    }
  }

  for (const std::string& path : options.workload_files) {
    if (const int code = load_workload_file(options, path); code != 0) {
      return code;
    }
  }

  if (fig10_flag) options.run_fig10 = true;
  if (!options.run_fig10 &&
      (!options.predictors.empty() || !options.penalties.empty())) {
    return fail_usage(
        "--predictor/--penalty only apply to figure 10; add --fig10 "
        "or --figure 10");
  }
  if (options.shard.has_value() && !options.compare_path.empty()) {
    // Exit 2, not 1: silently skipping the comparison would let a CI
    // golden check "pass" without comparing anything, and 2 is the
    // comparison-verdict exit code.
    std::cerr << "reuse_study: --compare cannot be combined with --shard "
                 "(a partial report is not comparable to a baseline; "
                 "merge the shards first)\n\n";
    print_usage(std::cerr);
    return 2;
  }
  if (options.shard.has_value() && !options.in_path.empty()) {
    return fail_usage("--shard runs the study; it cannot be combined "
                      "with --in");
  }
  if (options.shard.has_value() && !options.resume_dir.empty()) {
    return fail_usage("--shard runs one slice; --resume drives the whole "
                      "plan (pick one)");
  }
  if (options.shard_count.has_value() && options.resume_dir.empty()) {
    return fail_usage("--shards only applies to --resume (use --shard K/N "
                      "for a single slice)");
  }
  if (!options.resume_dir.empty() && !options.in_path.empty()) {
    return fail_usage("--resume runs the study; it cannot be combined "
                      "with --in");
  }
  // Arm span recording before any engine work so worker threads start
  // with tracing visible; the disabled path stays a single relaxed
  // load per would-be span.
  if (!options.trace_path.empty()) obs::set_trace_enabled(true);
  obs::set_thread_name("tlr-main");

  if (options.shard.has_value()) return run_shard(options);
  if (!options.resume_dir.empty()) return run_resume(options);
  return run(options);
}
