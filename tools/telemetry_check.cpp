// telemetry_check: validates the flight-recorder artifacts the study
// tools emit (DESIGN.md §11, docs/observability.md).
//
//   telemetry_check --trace trace.json
//   telemetry_check --metrics metrics.json
//   telemetry_check --metrics metrics.json --golden tools/metrics_ci.json
//
// --trace checks that the file is a well-formed Chrome trace_event
// document: it parses with the repo's own JSON parser, has the
// {"displayTimeUnit", "traceEvents"} shape, and every B (begin) event
// is matched by an E (end) event with the same name on the same
// thread, in file order — the invariant viewers rely on.
//
// --metrics checks the tlr-metrics/1 shape: schema tag, meta
// provenance, and a "counters" object whose keys are exactly the
// deterministic-counter catalog, in catalog order. With --golden it
// additionally diffs the "counters" object against a committed
// snapshot — counter values are thread- and chunk-invariant by
// design, so the comparison is exact, not tolerance-based. The
// "shape" object (run-shape counters like vm.chunks) and "meta" are
// deliberately ignored: they legitimately vary across machines.
//
// Exit codes: 0 all checks passed, 1 usage/I-O/malformed file,
// 2 golden mismatch.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "util/json.hpp"

namespace {

using namespace tlr;

void print_usage(std::ostream& os) {
  os << "usage: telemetry_check [--trace PATH] [--metrics PATH "
        "[--golden PATH]]\n"
        "\n"
        "Validates reuse_study telemetry artifacts: --trace checks\n"
        "Chrome trace_event well-formedness (parses, balanced B/E\n"
        "per thread); --metrics checks the tlr-metrics/1 counter\n"
        "snapshot against the built-in catalog and, with --golden,\n"
        "against a committed counter golden (exact match; meta and\n"
        "run-shape counters are ignored).\n"
        "\n"
        "Exit codes: 0 ok, 1 usage/IO/malformed, 2 golden mismatch.\n";
}

int fail(const std::string& message) {
  std::cerr << "telemetry_check: " << message << "\n";
  return 1;
}

bool read_file(const std::string& path, std::string& out,
               std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    error = "cannot read " + path;
    return false;
  }
  out = buffer.str();
  return true;
}

bool load_json(const std::string& path, util::Json& out,
               std::string& error) {
  std::string text;
  if (!read_file(path, text, error)) return false;
  std::string parse_error;
  const auto parsed = util::Json::parse(text, &parse_error);
  if (!parsed.has_value()) {
    error = path + ": " + parse_error;
    return false;
  }
  out = *parsed;
  return true;
}

// ---- --trace ---------------------------------------------------------

int check_trace(const std::string& path) {
  util::Json doc;
  std::string error;
  if (!load_json(path, doc, error)) return fail(error);
  if (!doc.is_object() || !doc.contains("traceEvents") ||
      !doc.at("traceEvents").is_array()) {
    return fail(path + ": not a trace_event document (no traceEvents "
                       "array)");
  }

  // Per-thread stacks of open B events. The writer emits each span's
  // B/E as an adjacent pair, so file order is also stack order; a
  // violation means the writer (or a hand-edited file) is broken.
  struct Open {
    u64 tid;
    std::string name;
  };
  std::vector<Open> stack;
  const util::Json& events = doc.at("traceEvents");
  usize begins = 0;
  usize metadata = 0;
  for (usize i = 0; i < events.size(); ++i) {
    const util::Json& event = events.at(i);
    if (!event.is_object() || !event.contains("ph") ||
        !event.at("ph").is_string()) {
      return fail(path + ": event " + std::to_string(i) +
                  " has no phase");
    }
    const std::string& phase = event.at("ph").as_string();
    if (phase == "M") {
      ++metadata;
      continue;
    }
    if (phase != "B" && phase != "E") {
      return fail(path + ": event " + std::to_string(i) +
                  " has unexpected phase '" + phase + "'");
    }
    if (!event.contains("tid") || !event.at("tid").is_number() ||
        !event.contains("name") || !event.at("name").is_string() ||
        !event.contains("ts") || !event.at("ts").is_number()) {
      return fail(path + ": event " + std::to_string(i) +
                  " is missing tid/name/ts");
    }
    const u64 tid = event.at("tid").as_u64();
    const std::string& name = event.at("name").as_string();
    if (phase == "B") {
      ++begins;
      stack.push_back({tid, name});
      continue;
    }
    // E: must close the innermost open span of the same thread.
    usize open = stack.size();
    while (open > 0 && stack[open - 1].tid != tid) --open;
    if (open == 0) {
      return fail(path + ": event " + std::to_string(i) + " ends '" +
                  name + "' on tid " + std::to_string(tid) +
                  " with no open span");
    }
    if (stack[open - 1].name != name) {
      return fail(path + ": event " + std::to_string(i) + " ends '" +
                  name + "' but '" + stack[open - 1].name +
                  "' is open on tid " + std::to_string(tid));
    }
    stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(open - 1));
  }
  if (!stack.empty()) {
    return fail(path + ": " + std::to_string(stack.size()) +
                " span(s) never ended (first: '" + stack.front().name +
                "')");
  }
  std::cout << "telemetry_check: trace ok: " << begins << " span(s), "
            << metadata << " metadata event(s)\n";
  return 0;
}

// ---- --metrics -------------------------------------------------------

int check_metrics(const std::string& path, const std::string& golden_path) {
  util::Json doc;
  std::string error;
  if (!load_json(path, doc, error)) return fail(error);
  if (!doc.is_object() || !doc.contains("schema") ||
      !doc.at("schema").is_string() ||
      doc.at("schema").as_string() != "tlr-metrics/1") {
    return fail(path + ": not a tlr-metrics/1 document");
  }
  if (!doc.contains("counters") || !doc.at("counters").is_object()) {
    return fail(path + ": no counters object");
  }

  // The invariant-counter keys must be exactly the catalog, in catalog
  // order: the golden diff below (and the committed golden itself)
  // depends on a stable, complete key set.
  const util::Json& counters = doc.at("counters");
  const auto& items = counters.items();
  usize expected = 0;
  for (const obs::CounterDef& def : obs::counter_catalog()) {
    if (!def.invariant) continue;
    if (expected >= items.size() || items[expected].first != def.name) {
      return fail(path + ": counters key " + std::to_string(expected) +
                  " should be '" + std::string(def.name) + "', got '" +
                  (expected < items.size() ? items[expected].first
                                           : std::string("<missing>")) +
                  "'");
    }
    if (!items[expected].second.is_number()) {
      return fail(path + ": counter '" + items[expected].first +
                  "' is not a number");
    }
    ++expected;
  }
  if (items.size() != expected) {
    return fail(path + ": counters object has " +
                std::to_string(items.size()) + " keys, catalog has " +
                std::to_string(expected));
  }

  if (!golden_path.empty()) {
    util::Json golden;
    if (!load_json(golden_path, golden, error)) return fail(error);
    if (!golden.is_object() || !golden.contains("counters") ||
        !golden.at("counters").is_object()) {
      return fail(golden_path + ": no counters object");
    }
    // Exact comparison on the invariant counters only: they aggregate
    // identically across thread counts and chunk sizes, so any drift
    // is a real behavior change, not noise.
    std::vector<std::string> diffs;
    const util::Json& golden_counters = golden.at("counters");
    for (const auto& [key, value] : golden_counters.items()) {
      const util::Json* actual = counters.find(key);
      if (actual == nullptr) {
        diffs.push_back(key + ": missing (golden " + value.dump() + ")");
      } else if (!(*actual == value)) {
        diffs.push_back(key + ": " + actual->dump() + " != golden " +
                        value.dump());
      }
    }
    for (const auto& [key, value] : counters.items()) {
      if (golden_counters.find(key) == nullptr) {
        diffs.push_back(key + ": not in golden (actual " + value.dump() +
                        ")");
      }
    }
    if (!diffs.empty()) {
      std::cerr << "telemetry_check: counters differ from " << golden_path
                << " (" << diffs.size() << " difference(s)):\n";
      for (const std::string& diff : diffs) {
        std::cerr << "  " << diff << "\n";
      }
      return 2;
    }
    std::cout << "telemetry_check: metrics ok: " << expected
              << " counter(s) match " << golden_path << "\n";
    return 0;
  }
  std::cout << "telemetry_check: metrics ok: " << expected
            << " counter(s)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  std::string golden_path;

  const auto next_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "telemetry_check: " << flag << " needs a value\n";
      std::exit(1);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--trace") {
      trace_path = next_value(i, "--trace");
    } else if (arg == "--metrics") {
      metrics_path = next_value(i, "--metrics");
    } else if (arg == "--golden") {
      golden_path = next_value(i, "--golden");
    } else {
      std::cerr << "telemetry_check: unknown option '" << arg << "'\n\n";
      print_usage(std::cerr);
      return 1;
    }
  }
  if (trace_path.empty() && metrics_path.empty()) {
    std::cerr << "telemetry_check: nothing to check (want --trace "
                 "and/or --metrics)\n\n";
    print_usage(std::cerr);
    return 1;
  }
  if (!golden_path.empty() && metrics_path.empty()) {
    std::cerr << "telemetry_check: --golden needs --metrics\n\n";
    print_usage(std::cerr);
    return 1;
  }

  if (!trace_path.empty()) {
    if (const int code = check_trace(trace_path); code != 0) return code;
  }
  if (!metrics_path.empty()) {
    if (const int code = check_metrics(metrics_path, golden_path);
        code != 0) {
      return code;
    }
  }
  return 0;
}
