#!/usr/bin/env python3
"""Check that relative markdown links resolve to real files.

Usage: tools/check_links.py FILE.md [FILE.md ...]

Scans each file for inline markdown links/images and verifies every
*relative* target exists on disk, resolved against the linking file's
directory ("#fragment" suffixes are stripped; anchors are not
verified). External schemes (http/https/mailto) and pure in-page
anchors are skipped. Exits 1 listing every broken link, 0 when clean.

Run by the `docs` CI job over README/DESIGN/ROADMAP/docs; no
dependencies beyond the standard library, so it also works locally:

    python3 tools/check_links.py README.md DESIGN.md ROADMAP.md docs/*.md
"""

import re
import sys
from pathlib import Path

# Inline links and images: [text](target) / ![alt](target). Good
# enough for this repository's plain markdown — no reference-style
# links, no angle-bracket autolinks to local files.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def check_file(path: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    in_code_block = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_block = not in_code_block
            continue
        if in_code_block:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if SCHEME.match(target) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                errors.append(f"{path}:{lineno}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    errors = []
    for name in argv[1:]:
        path = Path(name)
        if not path.is_file():
            errors.append(f"{name}: no such file")
            continue
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(f"check_links: {len(argv) - 1} file(s) clean")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
