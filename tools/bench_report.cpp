// bench_report: the perf trajectory recorder (DESIGN.md §10,
// docs/benchmarks.md).
//
// Times the study's three report sections — the suite pass (figures
// 3-8), the finite-RTM matrix (figure 9) and the speculative-reuse
// matrix (figure 10) — on a pinned scale profile, and emits a small
// JSON document (schema tlr-bench/1) with Minstr/s per section, wall
// times, and the git SHA. One such document is committed per perf PR
// (tools/BENCH_<pr>.json) so later changes have a trajectory to
// defend.
//
// The run's *results* are validated at the same time: the tool builds
// the full tlr-report/1 document from the very pass it timed, and
// --compare diffs it against a committed golden at zero tolerance —
// a throughput number only counts if the bytes still match.
//
//   bench_report --out BENCH.json --compare tools/baseline_ci.json
//   bench_report --profile ci --report report-ci.json --out BENCH.json
//   bench_report --out BENCH.json --reference tools/BENCH_5.json
//
// Exit codes: 0 success / comparison passed, 1 usage or I/O error,
// 2 comparison found differences — or the golden could not be loaded
// (missing/truncated baselines are comparison verdicts, checked before
// the timed run so they fail fast).
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/figures.hpp"
#include "core/profile.hpp"
#include "core/report.hpp"
#include "obs/runinfo.hpp"
#include "tools/throughput.hpp"
#include "util/json.hpp"

namespace {

using namespace tlr;

constexpr std::string_view kBenchSchema = "tlr-bench/1";

struct CliOptions {
  std::string profile = "ci";
  std::string out_path;        // bench JSON (default stdout)
  std::string report_path;     // also write the tlr-report
  std::string compare_path;    // golden to diff the tlr-report against
  std::string reference_path;  // previous bench JSON to embed
  core::EngineOptions engine;
  bool quiet = false;
};

struct Section {
  std::string name;
  u64 instructions = 0;
  double wall_seconds = 0.0;
};

void print_usage(std::ostream& os) {
  os << "usage: bench_report [options]\n"
        "\n"
        "Times the suite/fig9/fig10 sections of the reuse study on a\n"
        "pinned profile and emits a tlr-bench/1 JSON document\n"
        "(Minstr/s per section, wall seconds, git SHA). The timed\n"
        "pass's full tlr-report is byte-validated against a committed\n"
        "golden via --compare, so throughput numbers never come from a\n"
        "run whose results drifted.\n"
        "\n"
        "options:\n"
        "  --profile NAME     scale profile to time (default ci)\n"
        "  --out PATH         write the bench JSON to PATH (default\n"
        "                     stdout)\n"
        "  --report PATH      also write the produced tlr-report\n"
        "  --compare PATH     diff the produced tlr-report against the\n"
        "                     golden at PATH with zero tolerance; exit\n"
        "                     2 on any difference\n"
        "  --reference PATH   embed a previous bench JSON under\n"
        "                     \"reference\" and report the wall-time\n"
        "                     speedup against it\n"
        "  --threads N        engine worker threads (default: all)\n"
        "  --chunk N          stream chunk size in instructions\n"
        "  --quiet            suppress progress output on stderr\n"
        "  --help             this text\n";
}

int fail_usage(const std::string& message) {
  std::cerr << "bench_report: " << message << "\n\n";
  print_usage(std::cerr);
  return 1;
}

util::Json section_to_json(const Section& section) {
  util::Json json = util::Json::object();
  json.set("instructions", util::Json(section.instructions));
  json.set("wall_seconds", util::Json(section.wall_seconds));
  json.set("minstr_per_s",
           util::Json(tools::minstr_per_s(section.instructions,
                                          section.wall_seconds)));
  return json;
}

int run(const CliOptions& options) {
  using Clock = std::chrono::steady_clock;

  const auto named = core::ScaleProfile::named(options.profile);
  if (!named.has_value()) {
    return fail_usage("unknown profile '" + options.profile + "'");
  }
  const core::ScaleProfile profile = *named;

  // Load the golden before the timed run: a missing or truncated
  // baseline must fail in milliseconds with the comparison exit code
  // (2) and the offending path, not after minutes of timing — and
  // never as an assert/JSON-parse crash mid-comparison.
  std::optional<util::Json> golden;
  if (!options.compare_path.empty()) {
    std::string error;
    golden = core::read_report_file(options.compare_path, &error);
    if (!golden.has_value()) {
      std::cerr << "bench_report: cannot load golden '"
                << options.compare_path << "': " << error << "\n";
      return 2;
    }
  }

  core::StudyEngine engine(options.engine);
  const core::MetricOptions metric_options;
  std::vector<Section> sections;

  if (!options.quiet) {
    std::cerr << "bench_report: profile " << profile.name << ", "
              << engine.thread_count() << " thread(s)\n";
  }

  // ---- suite (figures 3-8) -------------------------------------------
  const auto suite_start = Clock::now();
  const std::vector<core::WorkloadMetrics> suite =
      engine.analyze_profile(profile, metric_options);
  sections.push_back(
      {"suite", tools::suite_instructions(suite),
       std::chrono::duration<double>(Clock::now() - suite_start).count()});

  // ---- fig9 ----------------------------------------------------------
  core::ReportFigures figures;
  figures.series = core::ReportFigures::all_series().series;
  const auto fig9_start = Clock::now();
  figures.fig9 = core::fig9_finite_rtm(engine, profile);
  sections.push_back(
      {"fig9", tools::fig9_instructions(suite),
       std::chrono::duration<double>(Clock::now() - fig9_start).count()});

  // ---- fig10 ---------------------------------------------------------
  const auto fig10_start = Clock::now();
  figures.fig10 = core::fig10_speculative_reuse(engine, profile);
  sections.push_back(
      {"fig10",
       tools::fig10_instructions(suite, core::fig10_predictors().size()),
       std::chrono::duration<double>(Clock::now() - fig10_start).count()});

  // ---- the produced report, written/validated ------------------------
  core::ReportMeta meta;
  meta.tool = "bench_report";
  meta.threads = engine.thread_count();
  meta.chunk_size = engine.options().chunk_size;
  double total_wall = 0.0;
  u64 total_instructions = 0;
  for (const Section& section : sections) {
    total_wall += section.wall_seconds;
    total_instructions += section.instructions;
  }
  meta.wall_seconds = total_wall;
  const util::Json report =
      core::build_report(profile, metric_options, suite, meta, figures);

  if (!options.report_path.empty()) {
    std::string error;
    if (!core::write_report_file(report, options.report_path, &error)) {
      std::cerr << "bench_report: " << error << "\n";
      return 1;
    }
  }

  // ---- bench document ------------------------------------------------
  util::Json bench = util::Json::object();
  bench.set("schema", util::Json(std::string(kBenchSchema)));
  bench.set("git_sha", util::Json(std::string(core::report_git_sha())));
  bench.set("profile", util::Json(profile.name));
  bench.set("threads", util::Json(static_cast<u64>(engine.thread_count())));
  bench.set("chunk_size",
            util::Json(static_cast<u64>(engine.options().chunk_size)));
  // Machine provenance: perf numbers without the box they ran on are
  // not comparable. Additive to tlr-bench/1 — trajectory tooling that
  // reads sections/total ignores unknown keys.
  {
    const obs::RunInfo info = obs::run_info();
    util::Json host = util::Json::object();
    host.set("name", util::Json(info.hostname));
    host.set("peak_rss_kb", util::Json(info.peak_rss_kb));
    bench.set("host", std::move(host));
  }
  util::Json sections_json = util::Json::object();
  for (const Section& section : sections) {
    sections_json.set(section.name, section_to_json(section));
  }
  bench.set("sections", std::move(sections_json));
  Section total{"total", total_instructions, total_wall};
  bench.set("total", section_to_json(total));

  if (!options.reference_path.empty()) {
    std::string error;
    const auto reference =
        core::read_report_file(options.reference_path, &error);
    if (!reference.has_value()) {
      std::cerr << "bench_report: " << error << "\n";
      return 1;
    }
    bench.set("reference", *reference);
    // Wall-time speedup vs the reference's total (if it has one).
    if (reference->is_object() && reference->contains("total")) {
      const util::Json& ref_total = reference->at("total");
      if (ref_total.is_object() && ref_total.contains("wall_seconds") &&
          ref_total.at("wall_seconds").is_number()) {
        const double ref_wall = ref_total.at("wall_seconds").as_double();
        if (ref_wall > 0.0 && total_wall > 0.0) {
          bench.set("speedup_vs_reference",
                    util::Json(ref_wall / total_wall));
        }
      }
    }
  }

  if (!options.out_path.empty()) {
    std::string error;
    if (!core::write_report_file(bench, options.out_path, &error)) {
      std::cerr << "bench_report: " << error << "\n";
      return 1;
    }
  } else {
    std::cout << bench.dump(/*indent=*/2);
  }

  if (!options.quiet) {
    for (const Section& section : sections) {
      std::cerr << "bench_report: " << section.name << " "
                << tools::format_minstr(section.instructions,
                                        section.wall_seconds)
                << " Minstr/s (" << section.wall_seconds << "s)\n";
    }
  }

  // ---- golden validation ---------------------------------------------
  if (golden.has_value()) {
    const util::Json& baseline = *golden;
    core::CompareOptions zero;
    zero.rel_tol = 0.0;
    zero.abs_tol = 0.0;
    const std::vector<std::string> diffs =
        core::compare_reports(report, baseline, zero);
    if (!diffs.empty()) {
      std::cerr << "bench_report: timed run's report differs from "
                << options.compare_path << " (" << diffs.size()
                << " difference(s)):\n";
      for (const std::string& diff : diffs) {
        std::cerr << "  " << diff << "\n";
      }
      return 2;
    }
    if (!options.quiet) {
      std::cerr << "bench_report: report matches " << options.compare_path
                << " (zero tolerance)\n";
    }
  }
  return 0;
}

bool parse_u64(const char* text, u64& out) {
  if (text[0] < '0' || text[0] > '9') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || *end != '\0') return false;
  out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  const auto next_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "bench_report: " << flag << " needs a value\n";
      std::exit(1);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--profile") {
      options.profile = next_value(i, "--profile");
    } else if (arg == "--out") {
      options.out_path = next_value(i, "--out");
    } else if (arg == "--report") {
      options.report_path = next_value(i, "--report");
    } else if (arg == "--compare") {
      options.compare_path = next_value(i, "--compare");
    } else if (arg == "--reference") {
      options.reference_path = next_value(i, "--reference");
    } else if (arg == "--threads") {
      u64 value = 0;
      if (!parse_u64(next_value(i, "--threads"), value)) {
        return fail_usage("bad --threads value");
      }
      options.engine.threads = value;
    } else if (arg == "--chunk") {
      u64 value = 0;
      if (!parse_u64(next_value(i, "--chunk"), value) || value == 0) {
        return fail_usage("bad --chunk value");
      }
      options.engine.chunk_size = value;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      return fail_usage("unknown option '" + arg + "'");
    }
  }
  return run(options);
}
