// tlgen: seeded TLC program generator + differential fuzz harness.
//
//   tlgen --seed 7                          print one program
//   tlgen --seed 1 --count 50 --out-dir d/  write d/gen-1.tlc .. gen-50.tlc
//   tlgen --seed 1 --count 50 --check       fuzz: every program must
//                                           compile deterministically and
//                                           agree with the AST evaluator
//   ... --check --fail-dir failures/        also write failing sources
//
// --check is the CI fuzz-smoke entry point (.github/workflows/ci.yml):
// for each seed it verifies (1) generation is bit-deterministic,
// (2) recompilation yields an identical program, (3) the compiled
// program halts and its final state — main's result, every global
// scalar, every array element — matches the reference evaluator, and
// (4) a second interpreter run reproduces the same executed-instruction
// count. Failing seeds are reported with their source; exit 1.
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "lang/compile.hpp"
#include "lang/eval.hpp"
#include "lang/gen/generator.hpp"
#include "vm/interpreter.hpp"

namespace {

using namespace tlr;

struct CliOptions {
  u64 seed = 1;
  u64 count = 1;
  std::optional<u32> size;  // default: varies per seed
  std::string out_dir;
  std::string fail_dir;
  bool check = false;
};

void print_usage(std::ostream& os) {
  os << "usage: tlgen [options]\n"
        "\n"
        "Generates seeded random TLC programs (docs/tlc.md). Without\n"
        "--out-dir or --check the sources go to stdout.\n"
        "\n"
        "options:\n"
        "  --seed N      first seed (default 1); program i uses seed+i\n"
        "  --count N     number of programs (default 1)\n"
        "  --size N      size knob 0..4 for every program (default:\n"
        "                varies with the seed)\n"
        "  --out-dir D   write each program to D/gen-<seed>.tlc\n"
        "  --check       differential + determinism check each program\n"
        "                against the AST evaluator; exit 1 on failure\n"
        "  --fail-dir D  with --check: write failing sources to\n"
        "                D/fail-<seed>.tlc\n"
        "  --help        this text\n";
}

int fail_usage(const std::string& message) {
  std::cerr << "tlgen: " << message << "\n\n";
  print_usage(std::cerr);
  return 1;
}

bool parse_u64(const char* text, u64& out) {
  if (text[0] < '0' || text[0] > '9') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || *end != '\0') return false;
  out = value;
  return true;
}

bool write_file(const std::string& dir, const std::string& name,
                const std::string& text) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = (std::filesystem::path(dir) / name).string();
  std::ofstream out(path, std::ios::binary);
  out << text;
  if (!out) {
    std::cerr << "tlgen: cannot write " << path << "\n";
    return false;
  }
  return true;
}

bool same_program(const vm::Program& a, const vm::Program& b) {
  if (a.entry() != b.entry() || a.size() != b.size() ||
      a.initial_data().size() != b.initial_data().size()) {
    return false;
  }
  for (usize i = 0; i < a.size(); ++i) {
    const isa::Instruction& x = a.code()[i];
    const isa::Instruction& y = b.code()[i];
    if (x.op != y.op || x.ra != y.ra || x.rb != y.rb || x.rc != y.rc ||
        x.imm != y.imm || x.use_imm != y.use_imm) {
      return false;
    }
  }
  for (usize i = 0; i < a.initial_data().size(); ++i) {
    if (a.initial_data()[i].addr != b.initial_data()[i].addr ||
        a.initial_data()[i].value != b.initial_data()[i].value) {
      return false;
    }
  }
  return true;
}

/// Differential oracle + determinism for one seed; returns an error
/// description or empty on success.
std::string check_program(const lang::gen::GenConfig& config,
                          const std::string& source) {
  if (lang::gen::generate_program(config) != source) {
    return "generation is not deterministic";
  }

  lang::ParseParams parse_params;  // default SEED/SCALE, as the study uses
  lang::CompileOptions options;
  options.name = "gen-" + std::to_string(config.seed);
  options.stream = false;
  lang::Diag diag;
  const auto compiled =
      lang::compile_source(source, parse_params, options, &diag);
  if (!compiled.has_value()) {
    return "does not compile: " + diag.to_string(options.name);
  }
  const auto again =
      lang::compile_source(source, parse_params, options, &diag);
  if (!again.has_value() ||
      !same_program(compiled->program, again->program)) {
    return "recompilation produced a different program";
  }

  const lang::EvalResult expected = lang::evaluate(
      *lang::parse(source, parse_params, &diag));
  if (!expected.ok) {
    return "reference evaluator failed: " + expected.error;
  }

  vm::RunLimits limits;
  limits.max_executed = u64{1} << 26;
  vm::Interpreter interp(compiled->program);
  const vm::RunResult run =
      interp.run(limits, [](const isa::DynInst&) { return true; });
  if (!run.halted) {
    return "compiled program did not halt within " +
           std::to_string(limits.max_executed) + " instructions";
  }

  const i64 got = static_cast<i64>(interp.state().load(compiled->result_addr));
  if (got != expected.return_value) {
    return "result mismatch: compiled " + std::to_string(got) +
           ", evaluator " + std::to_string(expected.return_value);
  }
  for (const lang::GlobalSlot& slot : compiled->globals) {
    if (slot.array_len == 0) {
      const i64 word = static_cast<i64>(interp.state().load(slot.addr));
      const i64 want = expected.globals.at(slot.name);
      if (word != want) {
        return "global '" + slot.name + "' mismatch: compiled " +
               std::to_string(word) + ", evaluator " + std::to_string(want);
      }
      continue;
    }
    const std::vector<i64>& want = expected.arrays.at(slot.name);
    for (u32 i = 0; i < slot.array_len; ++i) {
      const i64 word = static_cast<i64>(interp.state().load(slot.addr + 8 * i));
      if (word != want[i]) {
        return "array '" + slot.name + "[" + std::to_string(i) +
               "]' mismatch: compiled " + std::to_string(word) +
               ", evaluator " + std::to_string(want[i]);
      }
    }
  }

  // Re-run determinism: identical executed count and result.
  vm::Interpreter rerun(again->program);
  const vm::RunResult second =
      rerun.run(limits, [](const isa::DynInst&) { return true; });
  if (second.executed != run.executed ||
      static_cast<i64>(rerun.state().load(again->result_addr)) != got) {
    return "re-run diverged: " + std::to_string(run.executed) + " vs " +
           std::to_string(second.executed) + " instructions";
  }

  // The streaming wrapper must also build (the study-engine entry).
  lang::CompileOptions stream_options = options;
  stream_options.stream = true;
  if (!lang::compile_source(source, parse_params, stream_options, &diag)
           .has_value()) {
    return "streaming compile failed: " + diag.to_string(options.name);
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "tlgen: " << flag << " needs a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--seed") {
      if (!parse_u64(next_value("--seed"), options.seed)) {
        return fail_usage("bad --seed value");
      }
    } else if (arg == "--count") {
      if (!parse_u64(next_value("--count"), options.count) ||
          options.count == 0) {
        return fail_usage("bad --count value");
      }
    } else if (arg == "--size") {
      u64 value = 0;
      if (!parse_u64(next_value("--size"), value) || value > 4) {
        return fail_usage("bad --size value (want 0..4)");
      }
      options.size = static_cast<u32>(value);
    } else if (arg == "--out-dir") {
      options.out_dir = next_value("--out-dir");
    } else if (arg == "--fail-dir") {
      options.fail_dir = next_value("--fail-dir");
    } else if (arg == "--check") {
      options.check = true;
    } else {
      return fail_usage("unknown option '" + arg + "'");
    }
  }
  if (!options.fail_dir.empty() && !options.check) {
    return fail_usage("--fail-dir only applies with --check");
  }

  u64 failures = 0;
  for (u64 i = 0; i < options.count; ++i) {
    lang::gen::GenConfig config;
    config.seed = options.seed + i;
    config.size = options.size.has_value()
                      ? *options.size
                      : static_cast<u32>(config.seed % 5);
    const std::string source = lang::gen::generate_program(config);
    const std::string file_name = "gen-" + std::to_string(config.seed) +
                                  ".tlc";

    if (!options.out_dir.empty() &&
        !write_file(options.out_dir, file_name, source)) {
      return 1;
    }
    if (options.check) {
      const std::string error = check_program(config, source);
      if (!error.empty()) {
        ++failures;
        std::cerr << "tlgen: seed " << config.seed << " FAILED: " << error
                  << "\n--- source (seed " << config.seed << ", size "
                  << config.size << ") ---\n"
                  << source << "---\n";
        if (!options.fail_dir.empty()) {
          write_file(options.fail_dir,
                     "fail-" + std::to_string(config.seed) + ".tlc", source);
        }
      }
    } else if (options.out_dir.empty()) {
      std::cout << source;
      if (options.count > 1) std::cout << "\n";
    }
  }

  if (options.check) {
    if (failures != 0) {
      std::cerr << "tlgen: " << failures << " of " << options.count
                << " seed(s) failed\n";
      return 1;
    }
    std::cerr << "tlgen: " << options.count << " seed(s) OK\n";
  }
  return 0;
}
