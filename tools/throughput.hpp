// Shared throughput accounting for the CLI tools (tools/reuse_study,
// tools/bench_report): how many dynamic instructions a report section
// streams under a profile, and the Minstr/s rate a wall time implies.
//
// The suite section's count is exact (one pass per workload; the
// engine reports the stream length). The fig9/fig10 matrices run one
// pass per (workload x heuristic) / (workload x predictor) job over
// the same per-workload stream, so their counts are the suite counts
// scaled by the job multiplicity.
#pragma once

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/figures.hpp"
#include "core/study.hpp"
#include "util/types.hpp"

namespace tlr::tools {

/// Σ instructions over the analyzed workloads (exact stream lengths).
inline u64 suite_instructions(const std::vector<core::WorkloadMetrics>& suite) {
  u64 total = 0;
  for (const core::WorkloadMetrics& metrics : suite) {
    total += metrics.instructions;
  }
  return total;
}

/// Instructions the fig9 matrix streams: one pass per heuristic per
/// workload.
inline u64 fig9_instructions(const std::vector<core::WorkloadMetrics>& suite) {
  return suite_instructions(suite) * core::fig9_heuristics().size();
}

/// Instructions the fig10 matrix streams: one pass per predictor per
/// workload.
inline u64 fig10_instructions(const std::vector<core::WorkloadMetrics>& suite,
                              usize predictor_count) {
  return suite_instructions(suite) * predictor_count;
}

inline double minstr_per_s(u64 instructions, double wall_seconds) {
  if (wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(instructions) / 1e6 / wall_seconds;
}

/// Human-readable rate for the per-section stderr summaries. A section
/// that streamed nothing (skipped workload, empty shard slice) or
/// finished under the clock's resolution has no meaningful rate:
/// dividing there prints 0, inf or NaN depending on which operand
/// collapsed first, so those render as "--" instead of a number.
inline std::string format_minstr(u64 instructions, double wall_seconds) {
  if (instructions == 0 || !std::isfinite(wall_seconds) ||
      wall_seconds < 1e-9) {
    return "--";
  }
  std::ostringstream out;
  out << minstr_per_s(instructions, wall_seconds);
  return out.str();
}

}  // namespace tlr::tools
