#include "reuse/rtm_sim.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace tlr::reuse {

using isa::DynInst;
using isa::Loc;

timing::PlanTrace to_plan_trace(const StoredTrace& trace, u64 first_index) {
  timing::PlanTrace plan_trace;
  plan_trace.first_index = first_index;
  plan_trace.length = trace.length;
  for (const LocVal& in : trace.inputs) {
    plan_trace.live_in.push_back(Loc::from_raw(in.loc));
  }
  plan_trace.reg_inputs = trace.reg_inputs;
  plan_trace.mem_inputs = trace.mem_inputs;
  plan_trace.reg_outputs = trace.reg_outputs;
  plan_trace.mem_outputs = trace.mem_outputs;
  return plan_trace;
}

RtmSimulator::RtmSimulator(const RtmSimConfig& config)
    : config_(config),
      rtm_(config.geometry, config.reuse_test),
      acc_(config.limits),
      ext_acc_(config.limits) {
  if (config_.heuristic != CollectHeuristic::kFixedExpand) {
    // "This memory has as many entries as the RTM" (§4.6).
    ilr_.emplace(config_.geometry.total_entries());
  }
}

void RtmSimulator::set_spec_gate(SpecGate* gate) {
  TLR_ASSERT_MSG(config_.reuse_test == ReuseTestKind::kValueCompare,
                 "speculation gating requires the value-compare test");
  TLR_ASSERT_MSG(buf_.empty() && base_index_ == 0 && !finished_,
                 "set the gate before feeding");
  gate_ = gate;
  gate_wants_candidates_ = gate == nullptr || gate->wants_candidates();
}

void RtmSimulator::feed(std::span<const DynInst> insts) {
  TLR_ASSERT_MSG(!finished_, "feed after finish");
  if (insts.empty()) return;

  if (buf_.empty()) {
    // Common case: no unresolved tail — drain straight off the
    // caller's chunk, copy nothing but the leftover tail.
    set_window(insts.data(), insts.size());
    pos_ = 0;
    drain(/*stream_done=*/false);
    save_tail();
    return;
  }

  // A tail is pending from the previous feed. Stitch just enough of
  // the new chunk onto it to let the tail's positions resolve; once
  // consumption crosses into the stitched region, continue in place on
  // the chunk (the copy and the chunk agree on that region).
  const usize old_size = buf_.size();
  const usize lookahead =
      2 * static_cast<usize>(std::max<u32>(1, rtm_.max_stored_length()));
  const usize stitch = std::min(insts.size(), std::max<usize>(lookahead, 64));
  buf_.insert(buf_.end(), insts.begin(),
              insts.begin() + static_cast<std::ptrdiff_t>(stitch));
  set_window(buf_.data(), buf_.size());
  drain(/*stream_done=*/false);
  if (pos_ >= old_size) {
    const usize chunk_pos = pos_ - old_size;
    base_index_ += old_size;
    buf_.clear();
    set_window(insts.data(), insts.size());
    pos_ = chunk_pos;
    drain(/*stream_done=*/false);
    save_tail();
  } else {
    // The tail still lacks lookahead (a very long stored trace):
    // fall back to buffering the whole chunk.
    buf_.insert(buf_.end(),
                insts.begin() + static_cast<std::ptrdiff_t>(stitch),
                insts.end());
    set_window(buf_.data(), buf_.size());
    drain(/*stream_done=*/false);
    compact_buffer();
  }
}

RtmSimResult RtmSimulator::finish() {
  TLR_ASSERT_MSG(!finished_, "finish called twice");
  finished_ = true;
  drain(/*stream_done=*/true);
  flush_ext();
  flush_acc();
  result_.rtm = rtm_.stats();
  return std::move(result_);
}

RtmSimResult RtmSimulator::run(std::span<const DynInst> stream) {
  feed(stream);
  return finish();
}

/// Resolves buffered fetches. A position can be resolved once the
/// buffer holds at least Rtm::max_stored_length() instructions from it
/// (any lookup hit then provably fits inside the remaining stream), or
/// unconditionally once the stream has ended — so every decision,
/// including the reuse test's LRU/stat side effects, happens exactly
/// once and exactly as a whole-stream walk would take it.
void RtmSimulator::drain(bool stream_done) {
  for (;;) {
    const usize avail = win_size_ - pos_;
    if (avail == 0) break;
    if (!stream_done &&
        avail < std::max<usize>(1, rtm_.max_stored_length())) {
      break;  // not enough lookahead to commit a decision yet
    }

    // ---- reuse test at every fetch (§4.6) ---------------------------
    if (gate_ != nullptr) {
      resolve_front_gated(avail);
      continue;
    }
    const DynInst& inst = win_[pos_];
    const auto hit = rtm_.lookup(inst.pc, shadow_);
    if (hit.has_value() && hit->trace->length <= avail) {
      take_reuse(*hit->trace);  // copies: the RTM may mutate underneath
    } else {
      execute_front();
    }
  }
}

/// Gated fetch (DESIGN.md §8): the actual reuse test still runs first —
/// with exactly the limit simulator's LRU/stat side effects, so the
/// oracle gate is bit-identical to no gate — but the *commit* decision
/// belongs to the gate. Test, candidate enumeration and (almost every)
/// verification ride on one fused RTM probe: the scan already decided
/// the value test for every slot it reached, so verifying the gate's
/// pick against the unchanged state only re-walks inputs for slots the
/// MRU scan skipped. An attempt that verifies commits the reuse;
/// disagreement squashes (the instructions then re-execute normally).
void RtmSimulator::resolve_front_gated(usize avail) {
  const DynInst& inst = win_[pos_];
  rtm_.lookup_gated(inst.pc, shadow_, probe_, gate_wants_candidates_);
  const StoredTrace* oracle_choice =
      (probe_.hit != nullptr && probe_.hit->length <= avail) ? probe_.hit
                                                             : nullptr;
  if (probe_.stored == 0) {
    execute_front();
    return;
  }

  SpecGate::Fetch fetch;
  fetch.pc = inst.pc;
  fetch.candidates = std::span<const StoredTrace* const>(
      probe_.traces.begin(), probe_.traces.size());
  fetch.oracle_choice = oracle_choice;
  fetch.state = &shadow_;

  const StoredTrace* pick = gate_->decide(fetch);
  if (pick == nullptr) {
    gate_->on_outcome(fetch, nullptr,
                      oracle_choice != nullptr ? SpecOutcome::kMissed
                                               : SpecOutcome::kDecline);
    execute_front();
    return;
  }

  bool verified = pick->length <= avail;
  if (verified) {
    // The state has not changed since the probe, so a decided verdict
    // IS the verification; only a pick the MRU scan stopped short of
    // walks its inputs here — the common picks (the test's own hit,
    // or a scanned-and-rejected MRU candidate) were already decided.
    Rtm::Verdict verdict = Rtm::Verdict::kUnknown;
    if (pick == probe_.hit) {
      verdict = Rtm::Verdict::kPass;
    } else {
      for (usize i = 0; i < probe_.traces.size(); ++i) {
        if (probe_.traces[i] == pick) {
          verdict = probe_.verdict[i];
          break;
        }
      }
    }
    if (verdict == Rtm::Verdict::kFail) {
      verified = false;
    } else if (verdict == Rtm::Verdict::kUnknown) {
      for (const LocVal& in : pick->inputs) {
        if (!shadow_.matches(in.loc, in.value)) {
          verified = false;
          break;
        }
      }
    }
  }
  if (verified) {
    gate_->on_outcome(fetch, pick, SpecOutcome::kCorrect);
    take_reuse(*pick);  // the by-value parameter is the protective copy
  } else {
    gate_->on_outcome(fetch, pick, SpecOutcome::kMisspec);
    execute_front();
  }
}

void RtmSimulator::store(StoredTrace trace) {
  // The RTM consumes the trace without a copy; the gate trains off the
  // long-lived slot copy (content-identical by construction) together
  // with how the store changed the way — letting the predictor keep
  // its per-PC candidate-input union current instead of rescanning.
  const Rtm::StoreResult stored = rtm_.insert(std::move(trace));
  if (gate_ != nullptr) gate_->on_store(*stored.stored, stored.kind);
}

void RtmSimulator::take_reuse(StoredTrace trace) {
  const std::span<const DynInst> insts(win_ + pos_, trace.length);
  if (config_.verify_matches) {
    // Determinism cross-check: the stored trace must describe exactly
    // the instructions sitting in the stream at the match point.
    TLR_ASSERT(insts.front().pc == trace.start_pc);
    TLR_ASSERT_MSG(insts.back().next_pc == trace.next_pc,
                   "matched trace diverges from the dynamic stream");
  }

  // Back-to-back reuse under ILR EXP: merge the two traces (§4.6
  // "traces can be dynamically expanded when two consecutive traces
  // are reused").
  if (config_.heuristic == CollectHeuristic::kIlrExpand && ext_active_ &&
      ext_acc_.empty()) {
    if (auto merged =
            TraceAccumulator::merge(ext_base_, trace, config_.limits)) {
      store(*merged);
      ++result_.merges;
    }
  }
  flush_ext();
  flush_acc();

  ++result_.reuse_operations;
  result_.reused_instructions += trace.length;
  result_.instructions += trace.length;

  if (config_.build_plan || event_sink_ != nullptr) {
    const timing::PlanTrace plan_trace =
        to_plan_trace(trace, base_index_ + pos_);
    if (config_.build_plan) {
      const u32 trace_id = static_cast<u32>(result_.plan.traces.size());
      result_.plan.traces.push_back(plan_trace);
      for (u32 j = 0; j < trace.length; ++j) {
        result_.plan.kind.push_back(timing::InstKind::kTraceReuse);
        result_.plan.trace_of.push_back(trace_id);
      }
    }
    if (event_sink_ != nullptr) event_sink_->on_reused(insts, plan_trace);
  }

  // Processor state update (§3.3): write the recorded outputs.
  for (const LocVal& out : trace.outputs) {
    shadow_.set(out.loc, out.value);
    rtm_.notify_write(out.loc);
  }
  pos_ += trace.length;

  if (config_.heuristic != CollectHeuristic::kIlrNoExpand) {
    ext_active_ = true;
    ext_base_ = std::move(trace);
    ext_budget_ = config_.fixed_n;
  }
}

void RtmSimulator::execute_front() {
  const DynInst& inst = win_[pos_];
  if (ext_active_) {
    if (config_.heuristic == CollectHeuristic::kIlrExpand) {
      const bool reusable = ilr_->lookup_insert(inst);
      if (!(reusable && ext_acc_.try_add(inst))) {
        flush_ext();
        collect(inst, reusable);
      }
    } else {  // kFixedExpand
      if (ext_budget_ > 0 && ext_acc_.try_add(inst)) {
        if (--ext_budget_ == 0) flush_ext();
      } else {
        flush_ext();
        collect(inst, std::nullopt);
      }
    }
  } else {
    collect(inst, std::nullopt);
  }

  shadow_.observe(inst);
  if (inst.has_output) rtm_.notify_write(inst.output.raw());
  ++result_.instructions;
  if (config_.build_plan) {
    result_.plan.kind.push_back(timing::InstKind::kNormal);
    result_.plan.trace_of.push_back(0);
  }
  if (event_sink_ != nullptr) event_sink_->on_executed(inst);
  ++pos_;
}

// Collection step for an executed instruction. For the ILR heuristics
// the instruction's reuse-table outcome may have been consumed already
// by the extension path; it is then handed down.
void RtmSimulator::collect(const DynInst& inst,
                           std::optional<bool> pre_tested) {
  if (config_.heuristic == CollectHeuristic::kFixedExpand) {
    if (!acc_.try_add(inst)) {
      flush_acc();
      const bool ok = acc_.try_add(inst);
      TLR_ASSERT_MSG(ok, "single instruction exceeds trace I/O limits");
    }
    if (acc_.length() >= config_.fixed_n) flush_acc();
    return;
  }
  const bool reusable =
      pre_tested.has_value() ? *pre_tested : ilr_->lookup_insert(inst);
  if (!reusable) {
    // First non-reusable instruction terminates the trace (§3.2).
    flush_acc();
    return;
  }
  if (!acc_.try_add(inst)) {
    flush_acc();
    const bool ok = acc_.try_add(inst);
    TLR_ASSERT_MSG(ok, "single instruction exceeds trace I/O limits");
  }
}

void RtmSimulator::flush_ext() {
  if (!ext_active_) return;
  if (!ext_acc_.empty()) {
    const StoredTrace tail = ext_acc_.finalize();
    if (auto merged =
            TraceAccumulator::merge(ext_base_, tail, config_.limits)) {
      // Store the expanded trace as an additional entry: the shorter
      // original keeps matching when the longer one cannot, so
      // expansion grows trace sizes without sacrificing reusability
      // (the paper's Fig 9 observation).
      store(*merged);
      ++result_.expansions;
    }
  }
  ext_acc_.reset();
  ext_active_ = false;
}

void RtmSimulator::flush_acc() {
  if (!acc_.empty()) store(acc_.finalize());
}

void RtmSimulator::save_tail() {
  TLR_ASSERT(win_ < buf_.data() || win_ >= buf_.data() + buf_.capacity());
  buf_.assign(win_ + pos_, win_ + win_size_);
  base_index_ += pos_;
  pos_ = 0;
  set_window(buf_.data(), buf_.size());
}

void RtmSimulator::compact_buffer() {
  if (pos_ != 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    base_index_ += pos_;
    pos_ = 0;
  }
  set_window(buf_.data(), buf_.size());
}

}  // namespace tlr::reuse
