#include "reuse/rtm_sim.hpp"

#include <optional>

#include "reuse/accumulator.hpp"
#include "reuse/instr_table.hpp"
#include "util/assert.hpp"

namespace tlr::reuse {

using isa::DynInst;
using isa::Loc;

RtmSimulator::RtmSimulator(const RtmSimConfig& config) : config_(config) {}

namespace {

/// Determinism cross-check: the stored trace must describe exactly the
/// instructions sitting in the stream at the match point.
void verify_match(std::span<const DynInst> stream, u64 index,
                  const StoredTrace& trace) {
  TLR_ASSERT(stream[index].pc == trace.start_pc);
  const u64 last = index + trace.length - 1;
  TLR_ASSERT(last < stream.size());
  TLR_ASSERT_MSG(stream[last].next_pc == trace.next_pc,
                 "matched trace diverges from the dynamic stream");
}

timing::PlanTrace to_plan_trace(const StoredTrace& trace, u64 first_index) {
  timing::PlanTrace plan_trace;
  plan_trace.first_index = first_index;
  plan_trace.length = trace.length;
  for (const LocVal& in : trace.inputs) {
    plan_trace.live_in.push_back(Loc::from_raw(in.loc));
  }
  plan_trace.reg_inputs = trace.reg_inputs;
  plan_trace.mem_inputs = trace.mem_inputs;
  plan_trace.reg_outputs = trace.reg_outputs;
  plan_trace.mem_outputs = trace.mem_outputs;
  return plan_trace;
}

}  // namespace

RtmSimResult RtmSimulator::run(std::span<const DynInst> stream) {
  RtmSimResult result;
  result.instructions = stream.size();

  Rtm rtm(config_.geometry, config_.reuse_test);
  const bool uses_ilr = config_.heuristic != CollectHeuristic::kFixedExpand;
  std::optional<FiniteInstrTable> ilr;
  if (uses_ilr) {
    // "This memory has as many entries as the RTM" (§4.6).
    ilr.emplace(config_.geometry.total_entries());
  }

  ArchShadow shadow;
  TraceAccumulator acc(config_.limits);

  // Dynamic-expansion state: after a reuse hit under an EXP heuristic,
  // subsequently executed instructions accumulate into `ext_acc`; the
  // merged (longer) trace is stored as an additional RTM entry.
  const bool expands = config_.heuristic != CollectHeuristic::kIlrNoExpand;
  bool ext_active = false;
  StoredTrace ext_base;
  TraceAccumulator ext_acc(config_.limits);
  u32 ext_budget = 0;

  if (config_.build_plan) {
    result.plan.kind.assign(stream.size(), timing::InstKind::kNormal);
    result.plan.trace_of.assign(stream.size(), 0);
  }

  auto flush_ext = [&] {
    if (!ext_active) return;
    if (!ext_acc.empty()) {
      const StoredTrace tail = ext_acc.finalize();
      if (auto merged =
              TraceAccumulator::merge(ext_base, tail, config_.limits)) {
        // Store the expanded trace as an additional entry: the shorter
        // original keeps matching when the longer one cannot, so
        // expansion grows trace sizes without sacrificing reusability
        // (the paper's Fig 9 observation).
        rtm.insert(*merged);
        ++result.expansions;
      }
    }
    ext_acc.reset();
    ext_active = false;
  };

  auto flush_acc = [&] {
    if (!acc.empty()) rtm.insert(acc.finalize());
  };

  // Collection step for an executed instruction. For the ILR
  // heuristics the instruction's reuse-table outcome may have been
  // consumed already by the extension path; it is then handed down.
  auto collect = [&](const DynInst& inst, std::optional<bool> pre_tested) {
    if (config_.heuristic == CollectHeuristic::kFixedExpand) {
      if (!acc.try_add(inst)) {
        flush_acc();
        const bool ok = acc.try_add(inst);
        TLR_ASSERT_MSG(ok, "single instruction exceeds trace I/O limits");
      }
      if (acc.length() >= config_.fixed_n) flush_acc();
      return;
    }
    const bool reusable =
        pre_tested.has_value() ? *pre_tested : ilr->lookup_insert(inst);
    if (!reusable) {
      // First non-reusable instruction terminates the trace (§3.2).
      flush_acc();
      return;
    }
    if (!acc.try_add(inst)) {
      flush_acc();
      const bool ok = acc.try_add(inst);
      TLR_ASSERT_MSG(ok, "single instruction exceeds trace I/O limits");
    }
  };

  u64 i = 0;
  while (i < stream.size()) {
    const DynInst& inst = stream[i];

    // ---- reuse test at every fetch (§4.6) -----------------------------
    auto hit = rtm.lookup(inst.pc, shadow);
    if (hit.has_value() && i + hit->trace->length <= stream.size()) {
      StoredTrace trace = *hit->trace;  // copy: the RTM may mutate below
      if (config_.verify_matches) verify_match(stream, i, trace);

      // Back-to-back reuse under ILR EXP: merge the two traces (§4.6
      // "traces can be dynamically expanded when two consecutive
      // traces are reused").
      if (config_.heuristic == CollectHeuristic::kIlrExpand && ext_active &&
          ext_acc.empty()) {
        if (auto merged =
                TraceAccumulator::merge(ext_base, trace, config_.limits)) {
          rtm.insert(*merged);
          ++result.merges;
        }
      }
      flush_ext();
      flush_acc();

      ++result.reuse_operations;
      result.reused_instructions += trace.length;
      if (config_.build_plan) {
        const u32 trace_id = static_cast<u32>(result.plan.traces.size());
        result.plan.traces.push_back(to_plan_trace(trace, i));
        for (u64 j = i; j < i + trace.length; ++j) {
          result.plan.kind[j] = timing::InstKind::kTraceReuse;
          result.plan.trace_of[j] = trace_id;
        }
      }

      // Processor state update (§3.3): write the recorded outputs.
      for (const LocVal& out : trace.outputs) {
        shadow.set(out.loc, out.value);
        rtm.notify_write(out.loc);
      }

      i += trace.length;

      if (expands) {
        ext_active = true;
        ext_base = std::move(trace);
        ext_budget = config_.fixed_n;
      }
      continue;
    }

    // ---- executed instruction -----------------------------------------
    if (ext_active) {
      bool consumed = false;
      if (config_.heuristic == CollectHeuristic::kIlrExpand) {
        const bool reusable = ilr->lookup_insert(inst);
        if (reusable && ext_acc.try_add(inst)) {
          consumed = true;
        } else {
          flush_ext();
          collect(inst, reusable);
        }
      } else {  // kFixedExpand
        if (ext_budget > 0 && ext_acc.try_add(inst)) {
          consumed = true;
          if (--ext_budget == 0) flush_ext();
        } else {
          flush_ext();
          collect(inst, std::nullopt);
        }
      }
      (void)consumed;
    } else {
      collect(inst, std::nullopt);
    }

    shadow.observe(inst);
    if (inst.has_output) rtm.notify_write(inst.output.raw());
    ++i;
  }

  flush_ext();
  flush_acc();
  result.rtm = rtm.stats();
  return result;
}

}  // namespace tlr::reuse
