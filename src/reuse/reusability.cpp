#include "reuse/reusability.hpp"

#include "reuse/instr_table.hpp"

namespace tlr::reuse {

ReusabilityResult analyze_reusability(std::span<const isa::DynInst> stream) {
  ReusabilityResult result;
  result.reusable.resize(stream.size());
  result.total = stream.size();

  InfiniteInstrTable table;
  for (usize i = 0; i < stream.size(); ++i) {
    const bool hit = table.lookup_insert(stream[i]);
    result.reusable[i] = hit;
    if (hit) ++result.reusable_count;
  }
  return result;
}

}  // namespace tlr::reuse
