#include "reuse/trace_builder.hpp"

#include <unordered_set>

#include "isa/reg.hpp"
#include "util/assert.hpp"

namespace tlr::reuse {

using isa::DynInst;
using isa::Loc;
using timing::InstKind;
using timing::PlanTrace;
using timing::ReusePlan;

PlanTrace extract_trace(std::span<const DynInst> run, u64 first_index) {
  PlanTrace trace;
  trace.first_index = first_index;
  trace.length = static_cast<u32>(run.size());

  std::unordered_set<u64> written;
  std::unordered_set<u64> live_in;
  written.reserve(run.size() * 2);
  u32 reg_out = 0, mem_out = 0;

  for (const DynInst& inst : run) {
    for (u8 k = 0; k < inst.num_inputs; ++k) {
      const Loc loc = inst.inputs[k].loc;
      if (!written.contains(loc.raw()) && live_in.insert(loc.raw()).second) {
        trace.live_in.push_back(loc);
        if (loc.is_reg()) {
          ++trace.reg_inputs;
        } else {
          ++trace.mem_inputs;
        }
      }
    }
    if (inst.has_output && written.insert(inst.output.raw()).second) {
      if (inst.output.is_reg()) {
        ++reg_out;
      } else {
        ++mem_out;
      }
    }
  }
  trace.reg_outputs = reg_out;
  trace.mem_outputs = mem_out;
  return trace;
}

ReusePlan build_max_trace_plan(std::span<const DynInst> stream,
                               const std::vector<bool>& reusable) {
  TLR_ASSERT(reusable.size() == stream.size());
  ReusePlan plan;
  plan.kind.assign(stream.size(), InstKind::kNormal);
  plan.trace_of.assign(stream.size(), 0);

  u64 i = 0;
  while (i < stream.size()) {
    if (!reusable[i]) {
      ++i;
      continue;
    }
    u64 end = i;
    while (end < stream.size() && reusable[end]) ++end;
    const u32 trace_id = static_cast<u32>(plan.traces.size());
    plan.traces.push_back(extract_trace(stream.subspan(i, end - i), i));
    for (u64 j = i; j < end; ++j) {
      plan.kind[j] = InstKind::kTraceReuse;
      plan.trace_of[j] = trace_id;
    }
    i = end;
  }
  return plan;
}

ReusePlan build_instr_plan(std::span<const DynInst> stream,
                           const std::vector<bool>& reusable) {
  TLR_ASSERT(reusable.size() == stream.size());
  ReusePlan plan;
  plan.kind.assign(stream.size(), InstKind::kNormal);
  plan.trace_of.assign(stream.size(), 0);
  for (usize i = 0; i < stream.size(); ++i) {
    if (reusable[i]) plan.kind[i] = InstKind::kInstReuse;
  }
  return plan;
}

double TraceStats::reads_per_instruction() const {
  return avg_size == 0.0 ? 0.0 : avg_inputs() / avg_size;
}

double TraceStats::writes_per_instruction() const {
  return avg_size == 0.0 ? 0.0 : avg_outputs() / avg_size;
}

void MaxTraceStreamer::push(const DynInst& inst, bool reusable) {
  if (reusable) {
    if (run_.empty()) run_first_index_ = index_;
    run_.push_back(inst);
  } else {
    flush_run();
    for (TraceRunSink* sink : sinks_) sink->on_normal(inst);
  }
  ++index_;
}

void MaxTraceStreamer::finish() { flush_run(); }

void MaxTraceStreamer::flush_run() {
  if (run_.empty()) return;
  const PlanTrace trace = extract_trace(run_, run_first_index_);
  for (TraceRunSink* sink : sinks_) sink->on_trace(run_, trace);
  run_.clear();
  ++traces_;
}

TraceStats compute_trace_stats(const ReusePlan& plan) {
  TraceStats stats;
  stats.traces = plan.traces.size();
  if (stats.traces == 0) return stats;

  double size = 0, reg_in = 0, mem_in = 0, reg_out = 0, mem_out = 0;
  for (const PlanTrace& trace : plan.traces) {
    size += trace.length;
    reg_in += trace.reg_inputs;
    mem_in += trace.mem_inputs;
    reg_out += trace.reg_outputs;
    mem_out += trace.mem_outputs;
    stats.covered_instructions += trace.length;
  }
  const double n = static_cast<double>(stats.traces);
  stats.avg_size = size / n;
  stats.avg_reg_inputs = reg_in / n;
  stats.avg_mem_inputs = mem_in / n;
  stats.avg_reg_outputs = reg_out / n;
  stats.avg_mem_outputs = mem_out / n;
  return stats;
}

}  // namespace tlr::reuse
