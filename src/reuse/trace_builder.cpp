#include "reuse/trace_builder.hpp"

#include <unordered_set>

#include "isa/reg.hpp"
#include "util/assert.hpp"

namespace tlr::reuse {

using isa::DynInst;
using isa::Loc;
using timing::InstKind;
using timing::PlanTrace;
using timing::ReusePlan;

namespace {

/// Extracts live-in locations and input/output counts for the stream
/// window [first, first+length). A location is live-in if read before
/// being written inside the window (paper appendix definition); every
/// written location is an output (counted once).
PlanTrace extract_trace(std::span<const DynInst> stream, u64 first,
                        u32 length) {
  PlanTrace trace;
  trace.first_index = first;
  trace.length = length;

  std::unordered_set<u64> written;
  std::unordered_set<u64> live_in;
  written.reserve(length * 2);
  u32 reg_out = 0, mem_out = 0;

  for (u64 i = first; i < first + length; ++i) {
    const DynInst& inst = stream[i];
    for (u8 k = 0; k < inst.num_inputs; ++k) {
      const Loc loc = inst.inputs[k].loc;
      if (!written.contains(loc.raw()) && live_in.insert(loc.raw()).second) {
        trace.live_in.push_back(loc);
        if (loc.is_reg()) {
          ++trace.reg_inputs;
        } else {
          ++trace.mem_inputs;
        }
      }
    }
    if (inst.has_output && written.insert(inst.output.raw()).second) {
      if (inst.output.is_reg()) {
        ++reg_out;
      } else {
        ++mem_out;
      }
    }
  }
  trace.reg_outputs = reg_out;
  trace.mem_outputs = mem_out;
  return trace;
}

}  // namespace

ReusePlan build_max_trace_plan(std::span<const DynInst> stream,
                               const std::vector<bool>& reusable) {
  TLR_ASSERT(reusable.size() == stream.size());
  ReusePlan plan;
  plan.kind.assign(stream.size(), InstKind::kNormal);
  plan.trace_of.assign(stream.size(), 0);

  u64 i = 0;
  while (i < stream.size()) {
    if (!reusable[i]) {
      ++i;
      continue;
    }
    u64 end = i;
    while (end < stream.size() && reusable[end]) ++end;
    const u32 length = static_cast<u32>(end - i);
    const u32 trace_id = static_cast<u32>(plan.traces.size());
    plan.traces.push_back(extract_trace(stream, i, length));
    for (u64 j = i; j < end; ++j) {
      plan.kind[j] = InstKind::kTraceReuse;
      plan.trace_of[j] = trace_id;
    }
    i = end;
  }
  return plan;
}

ReusePlan build_instr_plan(std::span<const DynInst> stream,
                           const std::vector<bool>& reusable) {
  TLR_ASSERT(reusable.size() == stream.size());
  ReusePlan plan;
  plan.kind.assign(stream.size(), InstKind::kNormal);
  plan.trace_of.assign(stream.size(), 0);
  for (usize i = 0; i < stream.size(); ++i) {
    if (reusable[i]) plan.kind[i] = InstKind::kInstReuse;
  }
  return plan;
}

double TraceStats::reads_per_instruction() const {
  return avg_size == 0.0 ? 0.0 : avg_inputs() / avg_size;
}

double TraceStats::writes_per_instruction() const {
  return avg_size == 0.0 ? 0.0 : avg_outputs() / avg_size;
}

TraceStats compute_trace_stats(const ReusePlan& plan) {
  TraceStats stats;
  stats.traces = plan.traces.size();
  if (stats.traces == 0) return stats;

  double size = 0, reg_in = 0, mem_in = 0, reg_out = 0, mem_out = 0;
  for (const PlanTrace& trace : plan.traces) {
    size += trace.length;
    reg_in += trace.reg_inputs;
    mem_in += trace.mem_inputs;
    reg_out += trace.reg_outputs;
    mem_out += trace.mem_outputs;
    stats.covered_instructions += trace.length;
  }
  const double n = static_cast<double>(stats.traces);
  stats.avg_size = size / n;
  stats.avg_reg_inputs = reg_in / n;
  stats.avg_mem_inputs = mem_in / n;
  stats.avg_reg_outputs = reg_out / n;
  stats.avg_mem_outputs = mem_out / n;
  return stats;
}

}  // namespace tlr::reuse
