#include "reuse/rtm.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/assert.hpp"

namespace tlr::reuse {

namespace {

/// True if the trace overwrites one of its own live-in locations with
/// a different value — such an entry can never be legally reused under
/// the valid-bit test (see Rtm::insert).
bool self_invalidating(const StoredTrace& trace) {
  for (const LocVal& in : trace.inputs) {
    for (const LocVal& out : trace.outputs) {
      if (out.loc == in.loc && out.value != in.value) return true;
    }
  }
  return false;
}

}  // namespace

Rtm::Rtm(const RtmGeometry& geometry, ReuseTestKind test)
    : geometry_(geometry), test_(test) {
  TLR_ASSERT_MSG(std::has_single_bit(geometry.sets),
                 "RTM set count must be a power of two (PC-indexed)");
  TLR_ASSERT(geometry.pc_ways >= 1);
  TLR_ASSERT(geometry.traces_per_pc >= 1);
  TLR_ASSERT_MSG(geometry.traces_per_pc <= 32,
                 "per-way scan masks are 32 bits wide");
  // Slot storage is allocated per way on first use (Rtm::insert): a
  // simulated program touches far fewer initial PCs than a big RTM has
  // ways, and a cold way costs ~40 bytes instead of traces_per_pc
  // full StoredTrace slots. Lookups only reach slots of valid ways,
  // which are always populated.
  ways_.resize(u64{geometry.sets} * geometry.pc_ways);
  way_tags_.assign(ways_.size(), isa::kInvalidPc);
}

void Rtm::peek(isa::Pc pc, SmallVector<const StoredTrace*, 16>& out) const {
  const u32 set = set_index(pc);
  const isa::Pc* tags = &way_tags_[u64{set} * geometry_.pc_ways];
  const Way* way = nullptr;
  for (u32 w = 0; w < geometry_.pc_ways; ++w) {
    if (tags[w] == pc) {
      way = &ways_[u64{set} * geometry_.pc_ways + w];
      break;
    }
  }
  if (way == nullptr) return;

  // The way's MRU array is the stamp-descending order materialised, so
  // enumeration is a straight read — no per-call sort (DESIGN.md §10).
  for (u32 i = 0; i < way->used; ++i) {
    const u32 s = way->mru[i];
    if (test_ == ReuseTestKind::kValidBit && (way->live_mask >> s & 1) == 0) {
      continue;
    }
    out.push_back(&way->slots[s].trace);
  }
}

void Rtm::lookup_gated(isa::Pc pc, const ArchShadow& state, GatedProbe& out,
                       bool enumerate) {
  TLR_ASSERT_MSG(test_ == ReuseTestKind::kValueCompare,
                 "gated probes require the value-compare test");
  out.traces.clear();
  out.verdict.clear();
  out.hit = nullptr;
  out.stored = 0;

  // ---- the reuse test, exactly as lookup() runs it ------------------
  ++stats_.lookups;
  const u32 set = set_index(pc);
  Way* way = find_way(set, pc);
  if (way == nullptr) return;

  const ScanRec* const scan = way->scan.data();
  const u32 used = way->used;
  out.stored = used;
  u32 match_at = used;  // position in the MRU order, `used` = no match
  for (u32 i = 0; i < used; ++i) {
    const u32 s = way->mru[i];
    bool match;
    if ((way->empty_inputs_mask >> s & 1) == 0) {
      const ScanRec& rec = scan[s];
      if (!state.matches(rec.first_loc, rec.first_value)) continue;
      const SmallVector<LocVal, 12>& inputs = way->slots[s].trace.inputs;
      match = true;
      const LocVal* in = inputs.begin() + 1;
      const LocVal* const in_end = inputs.end();
      for (; in != in_end; ++in) {
        if (!state.matches(in->loc, in->value)) {
          match = false;
          break;
        }
      }
    } else {
      match = true;  // a trace with no live-ins always passes the test
    }
    if (match) {
      match_at = i;
      break;
    }
  }
  stats_.probe_slots += match_at < used ? match_at + 1 : used;
  if (match_at < used) {
    const u32 best_slot = way->mru[match_at];
    ++clock_;
    way->stamp = clock_;
    way->scan[best_slot].stamp = clock_;
    way->touch_mru(best_slot);
    ++stats_.hits;
    out.hit = &way->slots[best_slot].trace;
  }
  if (!enumerate) return;

  // ---- candidate enumeration, exactly as peek() lists it ------------
  // The MRU array read after the hit's LRU touch is the stamp-descend
  // order the old lookup-then-peek sequence sorted out per fetch, so
  // the reuse test's pick leads. The scan above decided the slots it
  // visited: after the touch those sit at positions 1..match_at (all
  // failed) with the pick at the front; everything behind the match —
  // or, on a miss, nothing — was never tested and stays unknown.
  const bool hit = match_at < used;
  for (u32 i = 0; i < used; ++i) {
    out.traces.push_back(&way->slots[way->mru[i]].trace);
    Verdict v = Verdict::kFail;
    if (hit && i == 0) {
      v = Verdict::kPass;
    } else if (hit && i > match_at) {
      v = Verdict::kUnknown;
    }
    out.verdict.push_back(v);
  }
}

Rtm::StoreResult Rtm::insert(StoredTrace trace) {
  TLR_ASSERT(trace.length > 0);
  max_stored_length_ = std::max(max_stored_length_, trace.length);
  const u64 trace_hash = input_multiset_hash(
      std::span<const LocVal>(trace.inputs.begin(), trace.inputs.size()));
  const u32 set = set_index(trace.start_pc);
  Way* way = find_way(set, trace.start_pc);
  const bool fresh_way = way == nullptr;
  ++clock_;

  if (way == nullptr) {
    // Allocate the LRU way of the set for this PC.
    Way* base = &ways_[u64{set} * geometry_.pc_ways];
    Way* victim = base;
    for (u32 w = 0; w < geometry_.pc_ways; ++w) {
      if (!base[w].valid) {
        victim = &base[w];
        break;
      }
      if (base[w].stamp < victim->stamp) victim = &base[w];
    }
    if (victim->valid) ++stats_.way_evictions;
    victim->pc = trace.start_pc;
    victim->valid = true;
    victim->used = 0;
    victim->empty_inputs_mask = 0;
    // Slot payloads grow on demand (empty slots fill in index order),
    // so a way only ever touches as many fat trace records as it has
    // stored traces; the scan metadata is always fully sized. On
    // reclaim the already-grown Slot objects are deliberately KEPT:
    // stale SlotRefs for this way survive in watchers_ until their
    // location is next written, so the per-slot generation counters
    // must stay monotone across reclaim (a cleared vector would
    // restart them and let a stale ref alias a new slot incarnation)
    // — and live_mask is kept for the same reason, so a stale ref
    // whose generation still matches observes and clears the old
    // liveness bit exactly as the per-slot flag used to behave. Reads
    // of both are otherwise bounded by `used`.
    victim->slots.reserve(geometry_.traces_per_pc);
    victim->scan.assign(geometry_.traces_per_pc, ScanRec{});
    way_tags_[static_cast<usize>(victim - ways_.data())] = trace.start_pc;
    way = victim;
  }
  way->stamp = clock_;
  const u32 way_index =
      static_cast<u32>(way - &ways_[u64{set} * geometry_.pc_ways]);

  // One fused pass: find a duplicate of `trace`, or failing that the
  // LRU victim slot. Duplicate content refreshes LRU and — in
  // valid-bit mode — restores the entry's validity (re-collection
  // after invalidation). The stored input hash decides almost every
  // slot with one compare: a mismatch proves the inputs (hence the
  // content) differ, so only hash-equal slots — real duplicates, or
  // vanishing-probability collisions the structural compare then
  // rejects — are walked.
  for (u32 s = 0; s < way->used; ++s) {
    ScanRec& rec = way->scan[s];
    if (rec.input_hash == trace_hash &&
        way->slots[s].trace.same_content(trace)) {
      Slot& slot = way->slots[s];
      rec.stamp = clock_;
      way->touch_mru(s);
      ++stats_.duplicate_insertions;
      if (test_ == ReuseTestKind::kValidBit &&
          (way->live_mask >> s & 1) == 0 &&
          !self_invalidating(slot.trace)) {
        way->live_mask |= u32{1} << s;
        ++slot.generation;
        register_inputs(SlotRef{set, way_index, s, slot.generation},
                        slot.trace);
      }
      return {StoreKind::kRefreshed, &slot.trace};
    }
  }
  const bool evicting = way->used == geometry_.traces_per_pc;
  u32 victim_slot;
  if (evicting) {
    // The MRU array's tail is the minimum-stamp slot — the same LRU
    // victim the full stamp scan used to select.
    victim_slot = way->mru[way->used - 1];
    way->touch_mru(victim_slot);
  } else {
    // Free slots remain: fill the next one (index order), matching the
    // first-empty policy of the full scan. The slot object may already
    // exist from a previous way incarnation (see the reclaim comment).
    victim_slot = way->used++;
    if (victim_slot >= way->slots.size()) way->slots.emplace_back();
    for (u32 i = way->used - 1; i > 0; --i) way->mru[i] = way->mru[i - 1];
    way->mru[0] = static_cast<u8>(victim_slot);
  }
  ScanRec& rec = way->scan[victim_slot];
  Slot& victim = way->slots[victim_slot];
  if (evicting) ++stats_.trace_evictions;
  victim.trace = std::move(trace);
  set_scan_inputs(*way, victim_slot, victim.trace, trace_hash);
  rec.stamp = clock_;
  way->live_mask |= u32{1} << victim_slot;
  ++victim.generation;
  ++stats_.insertions;

  if (test_ == ReuseTestKind::kValidBit) {
    // A trace that overwrites one of its own live-in locations with a
    // different value invalidates itself: by the time the entry exists
    // the location no longer holds the recorded input value, and under
    // the valid-bit test (which compares no values) reusing it would
    // be incorrect. Hardware gets this for free — the trace's own
    // writeback clears the bit it just set.
    if (self_invalidating(victim.trace)) {
      way->live_mask &= ~(u32{1} << victim_slot);
      ++stats_.invalidations;
    }
    if ((way->live_mask >> victim_slot & 1) != 0) {
      register_inputs(SlotRef{set, way_index, victim_slot,
                              victim.generation},
                      victim.trace);
    }
  }
  const StoreKind kind = fresh_way  ? StoreKind::kFreshWay
                         : evicting ? StoreKind::kEvicted
                                    : StoreKind::kAppended;
  return {kind, &victim.trace};
}

void Rtm::register_inputs(const SlotRef& ref, const StoredTrace& trace) {
  for (const LocVal& in : trace.inputs) {
    watchers_[in.loc].push_back(ref);
  }
}

void Rtm::notify_write_slow(u64 raw_loc) {
  std::vector<SlotRef>* watchers = watchers_.find(raw_loc);
  if (watchers == nullptr) return;
  for (const SlotRef& ref : *watchers) {
    if (slot_at(ref).generation != ref.generation) continue;  // recycled
    Way& way = way_at(ref);
    if ((way.live_mask >> ref.slot & 1) != 0) {
      way.live_mask &= ~(u32{1} << ref.slot);
      ++stats_.invalidations;
    }
  }
  watchers_.erase(raw_loc);
}

bool Rtm::replace(const Handle& handle, const StoredTrace& expanded) {
  TLR_ASSERT(expanded.start_pc == handle.start_pc);
  max_stored_length_ = std::max(max_stored_length_, expanded.length);
  Way& way = ways_[u64{handle.set} * geometry_.pc_ways + handle.way];
  if (!way.valid || way.pc != handle.start_pc) {
    ++stats_.stale_replacements;
    return false;
  }
  // Slot storage is sized on demand: a stale handle may name a slot
  // index the re-claimed way has not grown back to, so the bound check
  // must precede the element access.
  if (handle.slot >= way.used) {
    ++stats_.stale_replacements;
    return false;
  }
  Slot& slot = way.slots[handle.slot];
  ScanRec& rec = way.scan[handle.slot];
  if (slot.trace.length != handle.length ||
      slot.trace.start_pc != handle.start_pc) {
    ++stats_.stale_replacements;
    return false;
  }
  ++clock_;
  slot.trace = expanded;
  set_scan_inputs(way, handle.slot, slot.trace,
                  input_multiset_hash(std::span<const LocVal>(
                      expanded.inputs.begin(), expanded.inputs.size())));
  rec.stamp = clock_;
  way.touch_mru(handle.slot);
  way.live_mask |= u32{1} << handle.slot;
  ++slot.generation;
  way.stamp = clock_;
  ++stats_.replacements;
  if (test_ == ReuseTestKind::kValidBit) {
    register_inputs(SlotRef{handle.set, handle.way, handle.slot,
                            slot.generation},
                    slot.trace);
  }
  return true;
}

}  // namespace tlr::reuse
