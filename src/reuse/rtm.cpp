#include "reuse/rtm.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace tlr::reuse {

namespace {

/// True if the trace overwrites one of its own live-in locations with
/// a different value — such an entry can never be legally reused under
/// the valid-bit test (see Rtm::insert).
bool self_invalidating(const StoredTrace& trace) {
  for (const LocVal& in : trace.inputs) {
    for (const LocVal& out : trace.outputs) {
      if (out.loc == in.loc && out.value != in.value) return true;
    }
  }
  return false;
}

}  // namespace

Rtm::Rtm(const RtmGeometry& geometry, ReuseTestKind test)
    : geometry_(geometry), test_(test) {
  TLR_ASSERT_MSG(std::has_single_bit(geometry.sets),
                 "RTM set count must be a power of two (PC-indexed)");
  TLR_ASSERT(geometry.pc_ways >= 1);
  TLR_ASSERT(geometry.traces_per_pc >= 1);
  // Slot storage is allocated per way on first use (Rtm::insert): a
  // simulated program touches far fewer initial PCs than a big RTM has
  // ways, and a cold way costs ~40 bytes instead of traces_per_pc
  // full StoredTrace slots. Lookups only reach slots of valid ways,
  // which are always populated.
  ways_.resize(u64{geometry.sets} * geometry.pc_ways);
}

Rtm::Way* Rtm::find_way(u32 set, isa::Pc pc) {
  Way* base = &ways_[u64{set} * geometry_.pc_ways];
  for (u32 w = 0; w < geometry_.pc_ways; ++w) {
    if (base[w].valid && base[w].pc == pc) return &base[w];
  }
  return nullptr;
}

std::optional<Rtm::LookupResult> Rtm::lookup(isa::Pc pc,
                                             const ArchShadow& state) {
  ++stats_.lookups;
  const u32 set = set_index(pc);
  Way* way = find_way(set, pc);
  if (way == nullptr) return std::nullopt;

  // Scan stored traces MRU-first so the freshest expansion wins.
  u32 best_slot = 0;
  const StoredTrace* best = nullptr;
  u64 best_stamp = 0;
  for (u32 s = 0; s < geometry_.traces_per_pc; ++s) {
    Slot& slot = way->slots[s];
    if (!slot.valid || slot.stamp < best_stamp) continue;
    bool match;
    if (test_ == ReuseTestKind::kValidBit) {
      // Single-bit test: live means no input location was written
      // since the trace was stored (§3.3, second approach).
      match = slot.live;
    } else {
      match = true;
      for (const LocVal& in : slot.trace.inputs) {
        const auto current = state.value(in.loc);
        if (!current.has_value() || *current != in.value) {
          match = false;
          break;
        }
      }
    }
    if (match) {
      best = &slot.trace;
      best_slot = s;
      best_stamp = slot.stamp;
    }
  }
  if (best == nullptr) return std::nullopt;

  ++clock_;
  way->stamp = clock_;
  way->slots[best_slot].stamp = clock_;
  ++stats_.hits;

  LookupResult result;
  result.trace = best;
  result.handle =
      Handle{set, static_cast<u32>(way - &ways_[u64{set} * geometry_.pc_ways]),
             best_slot, pc, best->length};
  return result;
}

void Rtm::peek(isa::Pc pc, SmallVector<const StoredTrace*, 16>& out) const {
  const u32 set = set_index(pc);
  const Way* base = &ways_[u64{set} * geometry_.pc_ways];
  const Way* way = nullptr;
  for (u32 w = 0; w < geometry_.pc_ways; ++w) {
    if (base[w].valid && base[w].pc == pc) {
      way = &base[w];
      break;
    }
  }
  if (way == nullptr) return;

  // Every (stamp, slot) pair carries a distinct stamp — each clock tick
  // touches exactly one slot — so the MRU order is total.
  struct Stamped {
    u64 stamp;
    const StoredTrace* trace;
  };
  SmallVector<Stamped, 16> found;
  for (const Slot& slot : way->slots) {
    if (!slot.valid) continue;
    if (test_ == ReuseTestKind::kValidBit && !slot.live) continue;
    found.push_back({slot.stamp, &slot.trace});
  }
  std::sort(found.begin(), found.end(),
            [](const Stamped& a, const Stamped& b) {
              return a.stamp > b.stamp;
            });
  for (const Stamped& entry : found) out.push_back(entry.trace);
}

void Rtm::insert(const StoredTrace& trace) {
  TLR_ASSERT(trace.length > 0);
  max_stored_length_ = std::max(max_stored_length_, trace.length);
  const u32 set = set_index(trace.start_pc);
  Way* way = find_way(set, trace.start_pc);
  ++clock_;

  if (way == nullptr) {
    // Allocate the LRU way of the set for this PC.
    Way* base = &ways_[u64{set} * geometry_.pc_ways];
    Way* victim = base;
    for (u32 w = 0; w < geometry_.pc_ways; ++w) {
      if (!base[w].valid) {
        victim = &base[w];
        break;
      }
      if (base[w].stamp < victim->stamp) victim = &base[w];
    }
    if (victim->valid) ++stats_.way_evictions;
    victim->pc = trace.start_pc;
    victim->valid = true;
    victim->slots.resize(geometry_.traces_per_pc);
    for (Slot& slot : victim->slots) slot.valid = false;
    way = victim;
  }
  way->stamp = clock_;

  // Duplicate content refreshes LRU and — in valid-bit mode — restores
  // the entry's validity (re-collection after invalidation).
  for (Slot& slot : way->slots) {
    if (slot.valid && slot.trace.same_content(trace)) {
      slot.stamp = clock_;
      ++stats_.duplicate_insertions;
      if (test_ == ReuseTestKind::kValidBit && !slot.live &&
          !self_invalidating(slot.trace)) {
        slot.live = true;
        ++slot.generation;
        const u32 way_index =
            static_cast<u32>(way - &ways_[u64{set} * geometry_.pc_ways]);
        const u32 slot_index = static_cast<u32>(&slot - way->slots.data());
        register_inputs(
            SlotRef{set, way_index, slot_index, slot.generation},
            slot.trace);
      }
      return;
    }
  }

  Slot* victim = &way->slots[0];
  for (Slot& slot : way->slots) {
    if (!slot.valid) {
      victim = &slot;
      break;
    }
    if (slot.stamp < victim->stamp) victim = &slot;
  }
  if (victim->valid) ++stats_.trace_evictions;
  victim->trace = trace;
  victim->stamp = clock_;
  victim->valid = true;
  victim->live = true;
  ++victim->generation;
  ++stats_.insertions;

  if (test_ == ReuseTestKind::kValidBit) {
    // A trace that overwrites one of its own live-in locations with a
    // different value invalidates itself: by the time the entry exists
    // the location no longer holds the recorded input value, and under
    // the valid-bit test (which compares no values) reusing it would
    // be incorrect. Hardware gets this for free — the trace's own
    // writeback clears the bit it just set.
    if (self_invalidating(victim->trace)) {
      victim->live = false;
      ++stats_.invalidations;
    }
    if (victim->live) {
      const u32 way_index =
          static_cast<u32>(way - &ways_[u64{set} * geometry_.pc_ways]);
      const u32 slot_index =
          static_cast<u32>(victim - way->slots.data());
      register_inputs(
          SlotRef{set, way_index, slot_index, victim->generation},
          victim->trace);
    }
  }
}

void Rtm::register_inputs(const SlotRef& ref, const StoredTrace& trace) {
  for (const LocVal& in : trace.inputs) {
    watchers_[in.loc].push_back(ref);
  }
}

void Rtm::notify_write(u64 raw_loc) {
  if (test_ != ReuseTestKind::kValidBit) return;
  const auto it = watchers_.find(raw_loc);
  if (it == watchers_.end()) return;
  for (const SlotRef& ref : it->second) {
    Slot& slot = slot_at(ref);
    if (slot.generation != ref.generation) continue;  // since recycled
    if (slot.live) {
      slot.live = false;
      ++stats_.invalidations;
    }
  }
  watchers_.erase(it);
}

bool Rtm::replace(const Handle& handle, const StoredTrace& expanded) {
  TLR_ASSERT(expanded.start_pc == handle.start_pc);
  max_stored_length_ = std::max(max_stored_length_, expanded.length);
  Way& way = ways_[u64{handle.set} * geometry_.pc_ways + handle.way];
  if (!way.valid || way.pc != handle.start_pc) {
    ++stats_.stale_replacements;
    return false;
  }
  Slot& slot = way.slots[handle.slot];
  if (!slot.valid || slot.trace.length != handle.length ||
      slot.trace.start_pc != handle.start_pc) {
    ++stats_.stale_replacements;
    return false;
  }
  ++clock_;
  slot.trace = expanded;
  slot.stamp = clock_;
  slot.live = true;
  ++slot.generation;
  way.stamp = clock_;
  ++stats_.replacements;
  if (test_ == ReuseTestKind::kValidBit) {
    register_inputs(SlotRef{handle.set, handle.way, handle.slot,
                            slot.generation},
                    slot.trace);
  }
  return true;
}

}  // namespace tlr::reuse
