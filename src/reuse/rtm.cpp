#include "reuse/rtm.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/assert.hpp"

namespace tlr::reuse {

namespace {

/// True if the trace overwrites one of its own live-in locations with
/// a different value — such an entry can never be legally reused under
/// the valid-bit test (see Rtm::insert).
bool self_invalidating(const StoredTrace& trace) {
  for (const LocVal& in : trace.inputs) {
    for (const LocVal& out : trace.outputs) {
      if (out.loc == in.loc && out.value != in.value) return true;
    }
  }
  return false;
}

}  // namespace

Rtm::Rtm(const RtmGeometry& geometry, ReuseTestKind test)
    : geometry_(geometry), test_(test) {
  TLR_ASSERT_MSG(std::has_single_bit(geometry.sets),
                 "RTM set count must be a power of two (PC-indexed)");
  TLR_ASSERT(geometry.pc_ways >= 1);
  TLR_ASSERT(geometry.traces_per_pc >= 1);
  TLR_ASSERT_MSG(geometry.traces_per_pc <= 32,
                 "per-way scan masks are 32 bits wide");
  // Slot storage is allocated per way on first use (Rtm::insert): a
  // simulated program touches far fewer initial PCs than a big RTM has
  // ways, and a cold way costs ~40 bytes instead of traces_per_pc
  // full StoredTrace slots. Lookups only reach slots of valid ways,
  // which are always populated.
  ways_.resize(u64{geometry.sets} * geometry.pc_ways);
  way_tags_.assign(ways_.size(), isa::kInvalidPc);
}

void Rtm::peek(isa::Pc pc, SmallVector<const StoredTrace*, 16>& out) const {
  const u32 set = set_index(pc);
  const isa::Pc* tags = &way_tags_[u64{set} * geometry_.pc_ways];
  const Way* way = nullptr;
  for (u32 w = 0; w < geometry_.pc_ways; ++w) {
    if (tags[w] == pc) {
      way = &ways_[u64{set} * geometry_.pc_ways + w];
      break;
    }
  }
  if (way == nullptr) return;

  // Every (stamp, slot) pair carries a distinct stamp — each clock tick
  // touches exactly one slot — so the MRU order is total. Ways hold at
  // most 16 traces, so an insertion sort beats std::sort here (peek
  // runs once per gated fetch — DESIGN.md §10).
  struct Stamped {
    u64 stamp;
    const StoredTrace* trace;
  };
  SmallVector<Stamped, 16> found;
  for (u32 s = 0; s < way->used; ++s) {
    const ScanRec& rec = way->scan[s];
    if (test_ == ReuseTestKind::kValidBit && (way->live_mask >> s & 1) == 0) {
      continue;
    }
    const Stamped entry{rec.stamp, &way->slots[s].trace};
    usize at = found.size();
    found.push_back(entry);
    while (at > 0 && found[at - 1].stamp < entry.stamp) {
      found[at] = found[at - 1];
      --at;
    }
    found[at] = entry;
  }
  for (const Stamped& entry : found) out.push_back(entry.trace);
}

void Rtm::insert(StoredTrace trace) {
  TLR_ASSERT(trace.length > 0);
  max_stored_length_ = std::max(max_stored_length_, trace.length);
  const u64 trace_hash = input_multiset_hash(
      std::span<const LocVal>(trace.inputs.begin(), trace.inputs.size()));
  const u32 set = set_index(trace.start_pc);
  Way* way = find_way(set, trace.start_pc);
  ++clock_;

  if (way == nullptr) {
    // Allocate the LRU way of the set for this PC.
    Way* base = &ways_[u64{set} * geometry_.pc_ways];
    Way* victim = base;
    for (u32 w = 0; w < geometry_.pc_ways; ++w) {
      if (!base[w].valid) {
        victim = &base[w];
        break;
      }
      if (base[w].stamp < victim->stamp) victim = &base[w];
    }
    if (victim->valid) ++stats_.way_evictions;
    victim->pc = trace.start_pc;
    victim->valid = true;
    victim->used = 0;
    victim->empty_inputs_mask = 0;
    // Slot payloads grow on demand (empty slots fill in index order),
    // so a way only ever touches as many fat trace records as it has
    // stored traces; the scan metadata is always fully sized. On
    // reclaim the already-grown Slot objects are deliberately KEPT:
    // stale SlotRefs for this way survive in watchers_ until their
    // location is next written, so the per-slot generation counters
    // must stay monotone across reclaim (a cleared vector would
    // restart them and let a stale ref alias a new slot incarnation)
    // — and live_mask is kept for the same reason, so a stale ref
    // whose generation still matches observes and clears the old
    // liveness bit exactly as the per-slot flag used to behave. Reads
    // of both are otherwise bounded by `used`.
    victim->slots.reserve(geometry_.traces_per_pc);
    victim->scan.assign(geometry_.traces_per_pc, ScanRec{});
    way_tags_[static_cast<usize>(victim - ways_.data())] = trace.start_pc;
    way = victim;
  }
  way->stamp = clock_;
  const u32 way_index =
      static_cast<u32>(way - &ways_[u64{set} * geometry_.pc_ways]);

  // One fused pass: find a duplicate of `trace`, or failing that the
  // LRU victim slot. Duplicate content refreshes LRU and — in
  // valid-bit mode — restores the entry's validity (re-collection
  // after invalidation). The stored input hash decides almost every
  // slot with one compare: a mismatch proves the inputs (hence the
  // content) differ, so only hash-equal slots — real duplicates, or
  // vanishing-probability collisions the structural compare then
  // rejects — are walked.
  u32 victim_slot = 0;
  u64 victim_stamp = ~u64{0};
  for (u32 s = 0; s < way->used; ++s) {
    ScanRec& rec = way->scan[s];
    if (rec.input_hash == trace_hash &&
        way->slots[s].trace.same_content(trace)) {
      Slot& slot = way->slots[s];
      rec.stamp = clock_;
      ++stats_.duplicate_insertions;
      if (test_ == ReuseTestKind::kValidBit &&
          (way->live_mask >> s & 1) == 0 &&
          !self_invalidating(slot.trace)) {
        way->live_mask |= u32{1} << s;
        ++slot.generation;
        register_inputs(SlotRef{set, way_index, s, slot.generation},
                        slot.trace);
      }
      return;
    }
    if (rec.stamp < victim_stamp) {
      victim_slot = s;
      victim_stamp = rec.stamp;
    }
  }
  const bool evicting = way->used == geometry_.traces_per_pc;
  if (!evicting) {
    // Free slots remain: fill the next one (index order), matching the
    // first-empty policy of the full scan. The slot object may already
    // exist from a previous way incarnation (see the reclaim comment).
    victim_slot = way->used++;
    if (victim_slot >= way->slots.size()) way->slots.emplace_back();
  }
  ScanRec& rec = way->scan[victim_slot];
  Slot& victim = way->slots[victim_slot];
  if (evicting) ++stats_.trace_evictions;
  victim.trace = std::move(trace);
  set_scan_inputs(*way, victim_slot, victim.trace, trace_hash);
  rec.stamp = clock_;
  way->live_mask |= u32{1} << victim_slot;
  ++victim.generation;
  ++stats_.insertions;

  if (test_ == ReuseTestKind::kValidBit) {
    // A trace that overwrites one of its own live-in locations with a
    // different value invalidates itself: by the time the entry exists
    // the location no longer holds the recorded input value, and under
    // the valid-bit test (which compares no values) reusing it would
    // be incorrect. Hardware gets this for free — the trace's own
    // writeback clears the bit it just set.
    if (self_invalidating(victim.trace)) {
      way->live_mask &= ~(u32{1} << victim_slot);
      ++stats_.invalidations;
    }
    if ((way->live_mask >> victim_slot & 1) != 0) {
      register_inputs(SlotRef{set, way_index, victim_slot,
                              victim.generation},
                      victim.trace);
    }
  }
}

void Rtm::register_inputs(const SlotRef& ref, const StoredTrace& trace) {
  for (const LocVal& in : trace.inputs) {
    watchers_[in.loc].push_back(ref);
  }
}

void Rtm::notify_write_slow(u64 raw_loc) {
  std::vector<SlotRef>* watchers = watchers_.find(raw_loc);
  if (watchers == nullptr) return;
  for (const SlotRef& ref : *watchers) {
    if (slot_at(ref).generation != ref.generation) continue;  // recycled
    Way& way = way_at(ref);
    if ((way.live_mask >> ref.slot & 1) != 0) {
      way.live_mask &= ~(u32{1} << ref.slot);
      ++stats_.invalidations;
    }
  }
  watchers_.erase(raw_loc);
}

bool Rtm::replace(const Handle& handle, const StoredTrace& expanded) {
  TLR_ASSERT(expanded.start_pc == handle.start_pc);
  max_stored_length_ = std::max(max_stored_length_, expanded.length);
  Way& way = ways_[u64{handle.set} * geometry_.pc_ways + handle.way];
  if (!way.valid || way.pc != handle.start_pc) {
    ++stats_.stale_replacements;
    return false;
  }
  // Slot storage is sized on demand: a stale handle may name a slot
  // index the re-claimed way has not grown back to, so the bound check
  // must precede the element access.
  if (handle.slot >= way.used) {
    ++stats_.stale_replacements;
    return false;
  }
  Slot& slot = way.slots[handle.slot];
  ScanRec& rec = way.scan[handle.slot];
  if (slot.trace.length != handle.length ||
      slot.trace.start_pc != handle.start_pc) {
    ++stats_.stale_replacements;
    return false;
  }
  ++clock_;
  slot.trace = expanded;
  set_scan_inputs(way, handle.slot, slot.trace,
                  input_multiset_hash(std::span<const LocVal>(
                      expanded.inputs.begin(), expanded.inputs.size())));
  rec.stamp = clock_;
  way.live_mask |= u32{1} << handle.slot;
  ++slot.generation;
  way.stamp = clock_;
  ++stats_.replacements;
  if (test_ == ReuseTestKind::kValidBit) {
    register_inputs(SlotRef{handle.set, handle.way, handle.slot,
                            slot.generation},
                    slot.trace);
  }
  return true;
}

}  // namespace tlr::reuse
