// Sequential simulator of the realistic trace-reuse implementation
// (paper §4.6): finite RTM, per-fetch reuse test, and the three dynamic
// trace-collection heuristics —
//   ILR NE : traces are maximal runs of instructions that hit in a
//            finite instruction-level reuse table; no expansion.
//   ILR EXP: same, plus dynamic expansion (a reused trace grows over
//            the instruction-level-reusable instructions that follow
//            it, and two back-to-back reused traces merge).
//   I(n) EXP: traces are fixed groups of n instructions of any kind;
//            a reused trace is expanded with n more instructions.
//
// The simulator can also emit a timing::ReusePlan so the finite-table
// configurations can be priced with the same dataflow timers as the
// limit study (our extension; the paper reports only reusability and
// trace size for finite tables).
//
// The simulator is chunk-feedable: `feed` consecutive pieces of the
// dynamic stream and `finish` when it ends. Because a reuse hit can
// only be taken when the whole stored trace fits inside the remaining
// stream, the simulator buffers a small lookahead — bounded by the
// longest trace ever stored in the RTM (Rtm::max_stored_length), never
// by the stream length — and resolves fetches once enough of the
// stream is visible to decide exactly as a whole-stream walk would.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "isa/dyn_inst.hpp"
#include "obs/counters.hpp"
#include "reuse/accumulator.hpp"
#include "reuse/instr_table.hpp"
#include "reuse/rtm.hpp"
#include "timing/plan.hpp"
#include "util/types.hpp"

namespace tlr::reuse {

enum class CollectHeuristic : u8 {
  kIlrNoExpand,   // "ILR NE"
  kIlrExpand,     // "ILR EXP"
  kFixedExpand,   // "I(n) EXP"
};

struct RtmSimConfig {
  RtmGeometry geometry = RtmGeometry::rtm4k();
  TraceLimits limits;
  CollectHeuristic heuristic = CollectHeuristic::kFixedExpand;
  u32 fixed_n = 4;  // the n of I(n) EXP

  /// Reuse test flavour (§3.3): full value compare (default) or the
  /// simpler invalidation/valid-bit scheme (ablation).
  ReuseTestKind reuse_test = ReuseTestKind::kValueCompare;

  /// Debug cross-check: verify that a matched trace is consistent with
  /// the instructions actually in the stream (determinism check).
  bool verify_matches = false;

  /// Also build a timing::ReusePlan for the reused regions.
  bool build_plan = false;
};

struct RtmSimResult {
  u64 instructions = 0;
  u64 reused_instructions = 0;
  u64 reuse_operations = 0;
  u64 expansions = 0;   // successful entry growths (EXP heuristics)
  u64 merges = 0;       // back-to-back trace merges (ILR EXP)
  Rtm::Stats rtm;

  double reuse_fraction() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(reused_instructions) /
                                   static_cast<double>(instructions);
  }
  /// Average reused-trace size (per reuse operation) — Fig 9b.
  double avg_reused_trace_size() const {
    return reuse_operations == 0
               ? 0.0
               : static_cast<double>(reused_instructions) /
                     static_cast<double>(reuse_operations);
  }

  timing::ReusePlan plan;  // populated when config.build_plan
};

/// Folds one finished simulation's totals into a local counter block
/// (obs/counters.hpp two-level aggregation: the sim loops keep
/// counting into RtmSimResult/Rtm::Stats; the consumer flushes once
/// per job at finish()).
inline void accumulate_metrics(const RtmSimResult& result,
                               obs::MetricsBlock& block) {
  using obs::Counter;
  block.add(Counter::kSimInstructions, result.instructions);
  block.add(Counter::kSimReusedInstructions, result.reused_instructions);
  block.add(Counter::kSimReuseOps, result.reuse_operations);
  block.add(Counter::kSimExpansions, result.expansions);
  block.add(Counter::kSimMerges, result.merges);
  const Rtm::Stats& rtm = result.rtm;
  block.add(Counter::kRtmLookups, rtm.lookups);
  block.add(Counter::kRtmHits, rtm.hits);
  block.add(Counter::kRtmProbeSlots, rtm.probe_slots);
  block.add(Counter::kRtmInsertions, rtm.insertions);
  block.add(Counter::kRtmDuplicateInsertions, rtm.duplicate_insertions);
  block.add(Counter::kRtmWayEvictions, rtm.way_evictions);
  block.add(Counter::kRtmTraceEvictions, rtm.trace_evictions);
  block.add(Counter::kRtmReplacements, rtm.replacements);
  block.add(Counter::kRtmStaleReplacements, rtm.stale_replacements);
  block.add(Counter::kRtmInvalidations, rtm.invalidations);
}

/// Converts a stored trace to the timing layer's reuse annotation;
/// `first_index` stamps the trace's dynamic stream position.
timing::PlanTrace to_plan_trace(const StoredTrace& trace, u64 first_index);

/// How one fetch-time speculation attempt resolved (SpecGate).
enum class SpecOutcome : u8 {
  kCorrect,  // attempted, and the actual reuse test agreed
  kMisspec,  // attempted, but the trace's inputs no longer held: squash
  kMissed,   // no attempt although the actual test would have hit
  kDecline,  // no attempt, and the actual test would have missed too
};

/// Speculation hook: intercepts the commit decision at every fetch
/// with stored candidate traces. Without a gate the simulator takes
/// every actual reuse-test hit — the limit behaviour; with one, the
/// gate picks the trace to *attempt* (without seeing the value test)
/// and the simulator verifies, commits or squashes, and reports the
/// outcome. The oracle gate (return `oracle_choice`) reproduces the
/// limit simulator bit-for-bit. See spec::RtmSpecSimulator.
class SpecGate {
 public:
  virtual ~SpecGate() = default;

  /// One fetch with stored candidates, as the gate sees it.
  struct Fetch {
    isa::Pc pc = isa::kInvalidPc;
    /// Stored traces at `pc`, MRU first (the fused Rtm::lookup_gated
    /// probe — the same order Rtm::peek would list after the test).
    std::span<const StoredTrace* const> candidates;
    /// The trace the actual (oracle) reuse test selects, or nullptr on
    /// an actual miss. Realizable policies must not read it.
    const StoredTrace* oracle_choice = nullptr;
    /// Current architectural state — resolution-time training only.
    const ArchShadow* state = nullptr;
  };

  /// Whether this gate ever reads `Fetch::candidates`. A gate that
  /// decides and trains from `oracle_choice` alone (the oracle
  /// predictor) returns false, and the simulator skips candidate
  /// enumeration — decide() then sees an empty span at fetches whose
  /// stored-candidate count is still reported via the probe.
  virtual bool wants_candidates() const { return true; }

  /// The trace to speculatively attempt, or nullptr for no attempt.
  virtual const StoredTrace* decide(const Fetch& fetch) = 0;

  /// Outcome classification for the fetch, reported before the
  /// resulting commit/execute events reach any RtmEventSink — so a
  /// misspeculation penalty can be priced ahead of the squashed
  /// instructions' re-execution.
  virtual void on_outcome(const Fetch& fetch, const StoredTrace* attempted,
                          SpecOutcome outcome) = 0;

  /// A collected or expanded trace was stored at its start PC. `kind`
  /// says how the store changed the PC's way (Rtm::StoreKind), so a
  /// gate caching per-PC way-content state knows when that cache can
  /// be updated in place and when the way's contents must be rescanned.
  virtual void on_store(const StoredTrace& trace, Rtm::StoreKind kind) = 0;
};

/// In-order listener on the simulated fetch stream: every dynamic
/// instruction is reported exactly once, either individually executed
/// or as part of a reused trace, in stream order. Lets the dataflow
/// timers (and any other analysis) ride on the simulation without a
/// materialised stream or plan.
class RtmEventSink {
 public:
  virtual ~RtmEventSink() = default;
  virtual void on_executed(const isa::DynInst& inst) = 0;
  virtual void on_reused(std::span<const isa::DynInst> insts,
                         const timing::PlanTrace& trace) = 0;
};

class RtmSimulator {
 public:
  explicit RtmSimulator(const RtmSimConfig& config);

  /// Optional event listener (see RtmEventSink). Set before feeding.
  void set_event_sink(RtmEventSink* sink) { event_sink_ = sink; }

  /// Optional speculation gate (see SpecGate). Set before feeding.
  /// Value-compare reuse test only: the valid-bit test is itself the
  /// single-cycle mechanism speculation would approximate.
  void set_spec_gate(SpecGate* gate);

  /// Streaming interface: feed consecutive pieces of the dynamic
  /// stream (any granularity), then call finish() exactly once. A
  /// simulator instance handles one stream.
  void feed(std::span<const isa::DynInst> insts);
  RtmSimResult finish();

  /// One-shot convenience over a materialised stream (feed + finish).
  RtmSimResult run(std::span<const isa::DynInst> stream);

 private:
  void drain(bool stream_done);
  void resolve_front_gated(usize avail);
  void store(StoredTrace trace);
  void take_reuse(StoredTrace trace);
  void execute_front();
  void collect(const isa::DynInst& inst, std::optional<bool> pre_tested);
  void flush_ext();
  void flush_acc();

  /// Points the drain window at [data, data+size); pos_ keeps its
  /// meaning as the consumed prefix of the window.
  void set_window(const isa::DynInst* data, usize size) {
    win_ = data;
    win_size_ = size;
  }
  /// Copies the window's unresolved tail into buf_ and re-anchors the
  /// window there (the inter-feed invariant). `win_` must not alias
  /// buf_ when calling this.
  void save_tail();
  /// Same when the window already is buf_: drop the consumed prefix.
  void compact_buffer();

  RtmSimConfig config_;
  Rtm rtm_;
  std::optional<FiniteInstrTable> ilr_;
  ArchShadow shadow_;
  TraceAccumulator acc_;

  // Dynamic-expansion state: after a reuse hit under an EXP heuristic,
  // subsequently executed instructions accumulate into `ext_acc_`; the
  // merged (longer) trace is stored as an additional RTM entry.
  bool ext_active_ = false;
  StoredTrace ext_base_;
  TraceAccumulator ext_acc_;
  u32 ext_budget_ = 0;

  // Drain window: the contiguous run of fed-but-unresolved
  // instructions. During feed() it points directly into the caller's
  // span (zero copy — DESIGN.md §10); between feeds only the small
  // unresolved tail, bounded by the RTM's longest stored trace, is
  // saved into buf_. pos_ is the consumed prefix of the window;
  // base_index_ the dynamic index of win_[0].
  std::vector<isa::DynInst> buf_;
  const isa::DynInst* win_ = nullptr;
  usize win_size_ = 0;
  usize pos_ = 0;
  u64 base_index_ = 0;

  RtmEventSink* event_sink_ = nullptr;
  SpecGate* gate_ = nullptr;
  bool gate_wants_candidates_ = true;
  /// Reused per-fetch fused probe result (Rtm::lookup_gated): one
  /// ScanRec walk serves candidate enumeration, the oracle choice and
  /// the verification of the gate's pick.
  Rtm::GatedProbe probe_;
  bool finished_ = false;
  RtmSimResult result_;
};

}  // namespace tlr::reuse
