// Sequential simulator of the realistic trace-reuse implementation
// (paper §4.6): finite RTM, per-fetch reuse test, and the three dynamic
// trace-collection heuristics —
//   ILR NE : traces are maximal runs of instructions that hit in a
//            finite instruction-level reuse table; no expansion.
//   ILR EXP: same, plus dynamic expansion (a reused trace grows over
//            the instruction-level-reusable instructions that follow
//            it, and two back-to-back reused traces merge).
//   I(n) EXP: traces are fixed groups of n instructions of any kind;
//            a reused trace is expanded with n more instructions.
//
// The simulator can also emit a timing::ReusePlan so the finite-table
// configurations can be priced with the same dataflow timers as the
// limit study (our extension; the paper reports only reusability and
// trace size for finite tables).
#pragma once

#include <span>
#include <vector>

#include "isa/dyn_inst.hpp"
#include "reuse/rtm.hpp"
#include "timing/plan.hpp"
#include "util/types.hpp"

namespace tlr::reuse {

enum class CollectHeuristic : u8 {
  kIlrNoExpand,   // "ILR NE"
  kIlrExpand,     // "ILR EXP"
  kFixedExpand,   // "I(n) EXP"
};

struct RtmSimConfig {
  RtmGeometry geometry = RtmGeometry::rtm4k();
  TraceLimits limits;
  CollectHeuristic heuristic = CollectHeuristic::kFixedExpand;
  u32 fixed_n = 4;  // the n of I(n) EXP

  /// Reuse test flavour (§3.3): full value compare (default) or the
  /// simpler invalidation/valid-bit scheme (ablation).
  ReuseTestKind reuse_test = ReuseTestKind::kValueCompare;

  /// Debug cross-check: verify that a matched trace is consistent with
  /// the instructions actually in the stream (determinism check).
  bool verify_matches = false;

  /// Also build a timing::ReusePlan for the reused regions.
  bool build_plan = false;
};

struct RtmSimResult {
  u64 instructions = 0;
  u64 reused_instructions = 0;
  u64 reuse_operations = 0;
  u64 expansions = 0;   // successful entry growths (EXP heuristics)
  u64 merges = 0;       // back-to-back trace merges (ILR EXP)
  Rtm::Stats rtm;

  double reuse_fraction() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(reused_instructions) /
                                   static_cast<double>(instructions);
  }
  /// Average reused-trace size (per reuse operation) — Fig 9b.
  double avg_reused_trace_size() const {
    return reuse_operations == 0
               ? 0.0
               : static_cast<double>(reused_instructions) /
                     static_cast<double>(reuse_operations);
  }

  timing::ReusePlan plan;  // populated when config.build_plan
};

class RtmSimulator {
 public:
  explicit RtmSimulator(const RtmSimConfig& config);

  RtmSimResult run(std::span<const isa::DynInst> stream);

 private:
  RtmSimConfig config_;
};

}  // namespace tlr::reuse
