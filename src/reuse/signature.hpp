// Input signatures.
//
// An instruction instance is reusable iff a previous instance of the
// same static instruction read the same locations with the same values
// (paper §4.2 and appendix: IL and IV sequences must match). We encode
// the ordered (location, value) sequence as a 128-bit digest; identical
// sequences produce identical digests and distinct ones collide with
// probability < 2^-64 — negligible against our stream sizes.
#pragma once

#include "isa/dyn_inst.hpp"
#include "util/hash.hpp"

namespace tlr::reuse {

/// Digest of the ordered input (location, value) sequence.
inline Digest128 input_signature(const isa::DynInst& inst) {
  Digest128 digest;
  digest.feed(inst.num_inputs);
  for (u8 k = 0; k < inst.num_inputs; ++k) {
    digest.feed(inst.inputs[k].loc.raw());
    digest.feed(inst.inputs[k].value);
  }
  return digest;
}

}  // namespace tlr::reuse
