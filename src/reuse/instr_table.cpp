#include "reuse/instr_table.hpp"

#include <bit>

#include "util/assert.hpp"

namespace tlr::reuse {

bool InfiniteInstrTable::lookup_insert(const isa::DynInst& inst) {
  auto& signatures = table_[inst.pc];
  const auto [it, inserted] = signatures.insert(input_signature(inst));
  (void)it;
  if (inserted) ++instances_;
  return !inserted;
}

FiniteInstrTable::FiniteInstrTable(u64 entries, u32 assoc) : assoc_(assoc) {
  TLR_ASSERT(assoc >= 1);
  TLR_ASSERT(entries >= assoc);
  set_count_ = std::bit_ceil((entries + assoc - 1) / assoc);
  ways_.assign(set_count_ * assoc_, Way{});
}

bool FiniteInstrTable::lookup_insert(const isa::DynInst& inst) {
  const Digest128 sig = input_signature(inst);
  const u64 set =
      mix64(static_cast<u64>(inst.pc) * 0x9e3779b97f4a7c15ULL ^ sig.lo()) &
      (set_count_ - 1);
  Way* base = &ways_[set * assoc_];
  ++clock_;

  Way* victim = base;
  for (u32 w = 0; w < assoc_; ++w) {
    Way& way = base[w];
    if (way.pc == inst.pc && way.signature == sig) {
      way.stamp = clock_;
      ++hits_;
      return true;
    }
    if (way.stamp < victim->stamp) victim = &way;
  }
  // Miss: replace the LRU way of the set.
  victim->pc = inst.pc;
  victim->signature = sig;
  victim->stamp = clock_;
  ++misses_;
  return false;
}

}  // namespace tlr::reuse
