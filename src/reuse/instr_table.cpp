#include "reuse/instr_table.hpp"

#include <bit>

#include "util/assert.hpp"

namespace tlr::reuse {

bool InfiniteInstrTable::lookup_insert(const isa::DynInst& inst) {
  const bool inserted =
      instances_set_.insert(Instance{inst.pc, input_signature(inst)});
  if (inserted) {
    ++instances_;
    pcs_.insert(inst.pc);
  }
  return !inserted;
}

FiniteInstrTable::FiniteInstrTable(u64 entries, u32 assoc) : assoc_(assoc) {
  TLR_ASSERT(assoc >= 1);
  TLR_ASSERT(entries >= assoc);
  set_count_ = std::bit_ceil((entries + assoc - 1) / assoc);
  ways_.assign(set_count_ * assoc_, Way{});
}

}  // namespace tlr::reuse
