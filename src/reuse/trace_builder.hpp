// Trace construction: live-in / live-out extraction and the
// maximal-trace partitioner used by the limit study.
//
// Theorem 1 (paper appendix) says a trace can only be reusable if every
// instruction in it is reusable; Theorem 2 says the converse need not
// hold. Partitioning the stream into *maximal runs of reusable
// instructions* therefore upper-bounds the reusable-instruction count
// of any trace partition while minimising the number of reuse
// operations — exactly the upper-bound construction of §4.4. The
// resulting ReusePlan drives the trace-level timing of Figures 6-8.
#pragma once

#include <span>
#include <vector>

#include "isa/dyn_inst.hpp"
#include "timing/plan.hpp"
#include "util/types.hpp"

namespace tlr::reuse {

/// Aggregate statistics over the traces of a plan (Fig 7 and the §4.5
/// input/output bandwidth discussion).
struct TraceStats {
  u64 traces = 0;
  u64 covered_instructions = 0;
  double avg_size = 0.0;
  double avg_reg_inputs = 0.0;
  double avg_mem_inputs = 0.0;
  double avg_reg_outputs = 0.0;
  double avg_mem_outputs = 0.0;

  double avg_inputs() const { return avg_reg_inputs + avg_mem_inputs; }
  double avg_outputs() const { return avg_reg_outputs + avg_mem_outputs; }
  /// Reads (inputs) per reused instruction — paper reports 0.43.
  double reads_per_instruction() const;
  /// Writes (outputs) per reused instruction — paper reports 0.33.
  double writes_per_instruction() const;
};

/// Builds the maximal-trace plan: every maximal run of instructions
/// flagged reusable becomes one kTraceReuse trace; everything else is
/// kNormal. `reusable` must have one flag per stream element.
timing::ReusePlan build_max_trace_plan(std::span<const isa::DynInst> stream,
                                       const std::vector<bool>& reusable);

/// Builds the instruction-level plan: each reusable instruction is
/// individually annotated kInstReuse (Figures 4/5).
timing::ReusePlan build_instr_plan(std::span<const isa::DynInst> stream,
                                   const std::vector<bool>& reusable);

/// Statistics over a plan's traces.
TraceStats compute_trace_stats(const timing::ReusePlan& plan);

}  // namespace tlr::reuse
