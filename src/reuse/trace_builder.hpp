// Trace construction: live-in / live-out extraction and the
// maximal-trace partitioner used by the limit study.
//
// Theorem 1 (paper appendix) says a trace can only be reusable if every
// instruction in it is reusable; Theorem 2 says the converse need not
// hold. Partitioning the stream into *maximal runs of reusable
// instructions* therefore upper-bounds the reusable-instruction count
// of any trace partition while minimising the number of reuse
// operations — exactly the upper-bound construction of §4.4. The
// resulting ReusePlan drives the trace-level timing of Figures 6-8.
#pragma once

#include <span>
#include <vector>

#include "isa/dyn_inst.hpp"
#include "timing/plan.hpp"
#include "util/types.hpp"

namespace tlr::reuse {

/// Live-in / live-out extraction for one contiguous run of dynamic
/// instructions (a trace's body). A location is live-in if read before
/// being written inside the run (paper appendix definition); every
/// written location is an output (counted once). `first_index` stamps
/// the resulting plan record with the run's dynamic position.
timing::PlanTrace extract_trace(std::span<const isa::DynInst> run,
                                u64 first_index);

/// Aggregate statistics over the traces of a plan (Fig 7 and the §4.5
/// input/output bandwidth discussion).
struct TraceStats {
  u64 traces = 0;
  u64 covered_instructions = 0;
  double avg_size = 0.0;
  double avg_reg_inputs = 0.0;
  double avg_mem_inputs = 0.0;
  double avg_reg_outputs = 0.0;
  double avg_mem_outputs = 0.0;

  double avg_inputs() const { return avg_reg_inputs + avg_mem_inputs; }
  double avg_outputs() const { return avg_reg_outputs + avg_mem_outputs; }
  /// Reads (inputs) per reused instruction — paper reports 0.43.
  double reads_per_instruction() const;
  /// Writes (outputs) per reused instruction — paper reports 0.33.
  double writes_per_instruction() const;
};

/// Builds the maximal-trace plan: every maximal run of instructions
/// flagged reusable becomes one kTraceReuse trace; everything else is
/// kNormal. `reusable` must have one flag per stream element.
timing::ReusePlan build_max_trace_plan(std::span<const isa::DynInst> stream,
                                       const std::vector<bool>& reusable);

/// Builds the instruction-level plan: each reusable instruction is
/// individually annotated kInstReuse (Figures 4/5).
timing::ReusePlan build_instr_plan(std::span<const isa::DynInst> stream,
                                   const std::vector<bool>& reusable);

/// Statistics over a plan's traces.
TraceStats compute_trace_stats(const timing::ReusePlan& plan);

/// Order-preserving sink for the maximal-run partition of a stream:
/// receives every dynamic event — a non-reusable instruction executed
/// normally, or a completed maximal run of reusable instructions — in
/// stream order. The streaming counterpart of walking a
/// build_max_trace_plan annotation front to back.
class TraceRunSink {
 public:
  virtual ~TraceRunSink() = default;
  virtual void on_normal(const isa::DynInst& inst) = 0;
  virtual void on_trace(std::span<const isa::DynInst> run,
                        const timing::PlanTrace& trace) = 0;
};

/// Incrementally partitions a stream of (instruction, reusable) pairs
/// into the same maximal runs build_max_trace_plan produces and fans
/// each event out to every registered sink. Only the currently open run
/// is buffered, so memory is O(longest reusable run), not O(stream) —
/// and the single shared buffer serves any number of sinks (the study
/// engine hangs a dozen trace timers off one streamer).
class MaxTraceStreamer {
 public:
  void add_sink(TraceRunSink* sink) { sinks_.push_back(sink); }

  /// Feed the next dynamic instruction with its reusability flag.
  void push(const isa::DynInst& inst, bool reusable);

  /// Stream exhausted: flush the open run, if any.
  void finish();

  u64 traces_emitted() const { return traces_; }

 private:
  void flush_run();

  std::vector<isa::DynInst> run_;
  u64 run_first_index_ = 0;
  u64 index_ = 0;
  u64 traces_ = 0;
  std::vector<TraceRunSink*> sinks_;
};

}  // namespace tlr::reuse
