// Instruction-level reusability limit study (paper §4.2, Figure 3).
#pragma once

#include <span>
#include <vector>

#include "isa/dyn_inst.hpp"
#include "util/types.hpp"

namespace tlr::reuse {

struct ReusabilityResult {
  /// Per-instruction flags: was this instance reusable under a perfect
  /// (infinite-history) engine?
  std::vector<bool> reusable;
  u64 total = 0;
  u64 reusable_count = 0;

  double fraction() const {
    return total == 0 ? 0.0
                      : static_cast<double>(reusable_count) /
                            static_cast<double>(total);
  }
};

/// One pass with an InfiniteInstrTable over the stream.
ReusabilityResult analyze_reusability(std::span<const isa::DynInst> stream);

}  // namespace tlr::reuse
