// Instruction-level reuse history tables.
//
// InfiniteInstrTable is the "perfect engine" of the limit study
// (Fig 3): it remembers every distinct input tuple each static
// instruction has ever executed with.
//
// FiniteInstrTable is the bounded table the realistic RTM experiment
// (§4.6) pairs with the ILR collection heuristics: "a different reuse
// memory used for testing instruction-level reusability is also
// needed. This memory has as many entries as the RTM." Each entry
// records one (static instruction, input signature) instance;
// set-associative with LRU replacement.
#pragma once

#include <vector>

#include "isa/dyn_inst.hpp"
#include "reuse/signature.hpp"
#include "util/flat_hash_map.hpp"
#include "util/types.hpp"

namespace tlr::reuse {

class InfiniteInstrTable {
 public:
  /// Returns true iff this exact (pc, inputs) instance was seen before;
  /// records the instance either way.
  bool lookup_insert(const isa::DynInst& inst);

  u64 distinct_pcs() const { return pcs_.size(); }
  u64 stored_instances() const { return instances_; }

 private:
  /// One flat set over (pc, input digest) replaces the per-PC digest
  /// sets: a single probe per dynamic instruction instead of a map
  /// walk plus a set walk (DESIGN.md §10). The 128-bit digest keeps
  /// instance collisions statistically impossible (signature.hpp).
  struct Instance {
    isa::Pc pc = isa::kInvalidPc;
    Digest128 signature;

    friend bool operator==(const Instance&, const Instance&) = default;
  };
  struct InstanceHash {
    u64 operator()(const Instance& instance) const noexcept {
      return instance.signature.lo() ^ mix64(instance.signature.hi() +
                                             instance.pc);
    }
  };

  FlatHashSet<Instance, InstanceHash> instances_set_;
  FlatHashSet<u64> pcs_;  // distinct static instructions seen
  u64 instances_ = 0;
};

class FiniteInstrTable {
 public:
  /// `entries` is rounded up to a multiple of the associativity.
  explicit FiniteInstrTable(u64 entries, u32 assoc = 4);

  /// Returns true on hit; inserts (evicting LRU) on miss. Inline: this
  /// runs once per executed instruction in the ILR heuristics
  /// (DESIGN.md §10).
  bool lookup_insert(const isa::DynInst& inst) {
    const Digest128 sig = input_signature(inst);
    const u64 set =
        mix64(static_cast<u64>(inst.pc) * 0x9e3779b97f4a7c15ULL ^ sig.lo()) &
        (set_count_ - 1);
    Way* base = &ways_[set * assoc_];
    ++clock_;

    Way* victim = base;
    for (u32 w = 0; w < assoc_; ++w) {
      Way& way = base[w];
      if (way.pc == inst.pc && way.signature == sig) {
        way.stamp = clock_;
        ++hits_;
        return true;
      }
      if (way.stamp < victim->stamp) victim = &way;
    }
    // Miss: replace the LRU way of the set.
    victim->pc = inst.pc;
    victim->signature = sig;
    victim->stamp = clock_;
    ++misses_;
    return false;
  }

  u64 entries() const { return ways_.size(); }
  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }

 private:
  struct Way {
    isa::Pc pc = isa::kInvalidPc;
    Digest128 signature;
    u64 stamp = 0;
  };

  u64 set_count_;
  u32 assoc_;
  std::vector<Way> ways_;  // sets * assoc, set-major
  u64 clock_ = 0;
  u64 hits_ = 0;
  u64 misses_ = 0;
};

}  // namespace tlr::reuse
