// Instruction-level reuse history tables.
//
// InfiniteInstrTable is the "perfect engine" of the limit study
// (Fig 3): it remembers every distinct input tuple each static
// instruction has ever executed with.
//
// FiniteInstrTable is the bounded table the realistic RTM experiment
// (§4.6) pairs with the ILR collection heuristics: "a different reuse
// memory used for testing instruction-level reusability is also
// needed. This memory has as many entries as the RTM." Each entry
// records one (static instruction, input signature) instance;
// set-associative with LRU replacement.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "isa/dyn_inst.hpp"
#include "reuse/signature.hpp"
#include "util/types.hpp"

namespace tlr::reuse {

class InfiniteInstrTable {
 public:
  /// Returns true iff this exact (pc, inputs) instance was seen before;
  /// records the instance either way.
  bool lookup_insert(const isa::DynInst& inst);

  u64 distinct_pcs() const { return table_.size(); }
  u64 stored_instances() const { return instances_; }

 private:
  std::unordered_map<isa::Pc,
                     std::unordered_set<Digest128, Digest128Hash>>
      table_;
  u64 instances_ = 0;
};

class FiniteInstrTable {
 public:
  /// `entries` is rounded up to a multiple of the associativity.
  explicit FiniteInstrTable(u64 entries, u32 assoc = 4);

  /// Returns true on hit; inserts (evicting LRU) on miss.
  bool lookup_insert(const isa::DynInst& inst);

  u64 entries() const { return ways_.size(); }
  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }

 private:
  struct Way {
    isa::Pc pc = isa::kInvalidPc;
    Digest128 signature;
    u64 stamp = 0;
  };

  u64 set_count_;
  u32 assoc_;
  std::vector<Way> ways_;  // sets * assoc, set-major
  u64 clock_ = 0;
  u64 hits_ = 0;
  u64 misses_ = 0;
};

}  // namespace tlr::reuse
