#include "reuse/accumulator.hpp"

#include "util/assert.hpp"

namespace tlr::reuse {

using isa::DynInst;
using isa::Loc;

bool TraceAccumulator::written(u64 raw_loc) const {
  for (const LocVal& out : outputs_) {
    if (out.loc == raw_loc) return true;
  }
  return false;
}

const LocVal* TraceAccumulator::find_input(u64 raw_loc) const {
  for (const LocVal& in : inputs_) {
    if (in.loc == raw_loc) return &in;
  }
  return nullptr;
}

bool TraceAccumulator::try_add(const DynInst& inst) {
  // Dry-run the limit checks before mutating anything. Register
  // membership is answered by the bit masks; only memory locations
  // (tag bit set, at most 4 per trace) walk the lists.
  u32 new_reg_in = 0, new_mem_in = 0;
  u64 pending_reg = 0;  // registers this instruction already counted
  for (u8 k = 0; k < inst.num_inputs; ++k) {
    const u64 raw = inst.inputs[k].loc.raw();
    if ((raw & Loc::kMemTag) == 0) {
      const u64 bit = u64{1} << raw;
      if ((out_reg_mask_ | in_reg_mask_ | pending_reg) & bit) continue;
      pending_reg |= bit;
      ++new_reg_in;
    } else {
      if (written(raw) || find_input(raw) != nullptr) continue;
      // Count duplicates within this instruction only once.
      bool dup = false;
      for (u8 j = 0; j < k; ++j) {
        if (inst.inputs[j].loc.raw() == raw) dup = true;
      }
      if (dup) continue;
      ++new_mem_in;
    }
  }
  u32 new_reg_out = 0, new_mem_out = 0;
  if (inst.has_output) {
    const u64 raw = inst.output.raw();
    if ((raw & Loc::kMemTag) == 0) {
      if ((out_reg_mask_ & (u64{1} << raw)) == 0) ++new_reg_out;
    } else if (!written(raw)) {
      ++new_mem_out;
    }
  }

  if (reg_in_ + new_reg_in > limits_.max_reg_inputs) return false;
  if (mem_in_ + new_mem_in > limits_.max_mem_inputs) return false;
  if (reg_out_ + new_reg_out > limits_.max_reg_outputs) return false;
  if (mem_out_ + new_mem_out > limits_.max_mem_outputs) return false;

  // Commit.
  if (length_ == 0) start_pc_ = inst.pc;
  for (u8 k = 0; k < inst.num_inputs; ++k) {
    const u64 raw = inst.inputs[k].loc.raw();
    if ((raw & Loc::kMemTag) == 0) {
      const u64 bit = u64{1} << raw;
      if ((out_reg_mask_ | in_reg_mask_) & bit) continue;
      in_reg_mask_ |= bit;
      inputs_.push_back(LocVal{raw, inst.inputs[k].value});
      ++reg_in_;
    } else {
      if (written(raw) || find_input(raw) != nullptr) continue;
      inputs_.push_back(LocVal{raw, inst.inputs[k].value});
      ++mem_in_;
    }
  }
  if (inst.has_output) {
    const u64 raw = inst.output.raw();
    const bool is_reg = (raw & Loc::kMemTag) == 0;
    bool rewritten = false;
    if (!is_reg || (out_reg_mask_ & (u64{1} << raw)) != 0) {
      for (LocVal& out : outputs_) {
        if (out.loc == raw) {
          out.value = inst.output_value;  // later write wins
          rewritten = true;
          break;
        }
      }
    }
    if (!rewritten) {
      outputs_.push_back(LocVal{raw, inst.output_value});
      if (is_reg) {
        out_reg_mask_ |= u64{1} << raw;
        ++reg_out_;
      } else {
        ++mem_out_;
      }
    }
  }
  next_pc_ = inst.next_pc;
  ++length_;
  return true;
}

StoredTrace TraceAccumulator::finalize() {
  TLR_ASSERT(length_ > 0);
  StoredTrace trace;
  trace.start_pc = start_pc_;
  trace.next_pc = next_pc_;
  trace.length = length_;
  trace.inputs = std::move(inputs_);
  trace.outputs = std::move(outputs_);
  trace.reg_inputs = reg_in_;
  trace.mem_inputs = mem_in_;
  trace.reg_outputs = reg_out_;
  trace.mem_outputs = mem_out_;
  reset();
  return trace;
}

void TraceAccumulator::reset() {
  start_pc_ = isa::kInvalidPc;
  next_pc_ = isa::kInvalidPc;
  length_ = 0;
  inputs_.clear();
  outputs_.clear();
  reg_in_ = mem_in_ = reg_out_ = mem_out_ = 0;
  in_reg_mask_ = out_reg_mask_ = 0;
}

std::optional<StoredTrace> TraceAccumulator::merge(const StoredTrace& a,
                                                   const StoredTrace& b,
                                                   const TraceLimits& limits) {
  StoredTrace merged;
  merged.start_pc = a.start_pc;
  merged.next_pc = b.next_pc;
  merged.length = a.length + b.length;
  merged.inputs = a.inputs;
  merged.outputs = a.outputs;
  merged.reg_inputs = a.reg_inputs;
  merged.mem_inputs = a.mem_inputs;
  merged.reg_outputs = a.reg_outputs;
  merged.mem_outputs = a.mem_outputs;

  auto has_loc = [](const SmallVector<LocVal, 12>& list, u64 raw) {
    for (const LocVal& lv : list) {
      if (lv.loc == raw) return true;
    }
    return false;
  };

  // b's live-ins that a does not produce become live-ins of the merge.
  for (const LocVal& in : b.inputs) {
    if (has_loc(merged.outputs, in.loc) || has_loc(merged.inputs, in.loc)) {
      continue;
    }
    merged.inputs.push_back(in);
    const bool is_reg = (in.loc & isa::Loc::kMemTag) == 0;
    if (is_reg) {
      ++merged.reg_inputs;
    } else {
      ++merged.mem_inputs;
    }
  }
  // b's outputs override a's for the same location.
  for (const LocVal& out : b.outputs) {
    bool overridden = false;
    for (LocVal& existing : merged.outputs) {
      if (existing.loc == out.loc) {
        existing.value = out.value;
        overridden = true;
        break;
      }
    }
    if (!overridden) {
      merged.outputs.push_back(out);
      const bool is_reg = (out.loc & isa::Loc::kMemTag) == 0;
      if (is_reg) {
        ++merged.reg_outputs;
      } else {
        ++merged.mem_outputs;
      }
    }
  }

  if (merged.reg_inputs > limits.max_reg_inputs ||
      merged.mem_inputs > limits.max_mem_inputs ||
      merged.reg_outputs > limits.max_reg_outputs ||
      merged.mem_outputs > limits.max_mem_outputs) {
    return std::nullopt;
  }
  return merged;
}

}  // namespace tlr::reuse
