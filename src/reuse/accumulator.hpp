// TraceAccumulator: incremental live-in/live-out construction for a
// trace being collected (§3.2), enforcing the per-trace input/output
// limits. When adding an instruction would overflow a limit the caller
// finalises the current trace and starts a new one — this is how the
// realistic implementation keeps RTM entries bounded (§4.6).
#pragma once

#include "isa/dyn_inst.hpp"
#include "reuse/rtm.hpp"
#include "util/small_vector.hpp"
#include "util/types.hpp"

namespace tlr::reuse {

class TraceAccumulator {
 public:
  explicit TraceAccumulator(const TraceLimits& limits) : limits_(limits) {}

  /// Try to extend the trace with `inst`. Returns false — leaving the
  /// accumulator unchanged — if a limit would be exceeded.
  bool try_add(const isa::DynInst& inst);

  bool empty() const { return length_ == 0; }
  u32 length() const { return length_; }
  isa::Pc start_pc() const { return start_pc_; }

  /// Produce the StoredTrace and reset the accumulator.
  StoredTrace finalize();

  void reset();

  /// Merge a stored trace A with a stored trace B that immediately
  /// followed it dynamically (ILR EXP trace merging, §4.6). Returns
  /// nullopt if the merged trace would exceed `limits`.
  static std::optional<StoredTrace> merge(const StoredTrace& a,
                                          const StoredTrace& b,
                                          const TraceLimits& limits);

 private:
  bool written(u64 raw_loc) const;
  const LocVal* find_input(u64 raw_loc) const;

  TraceLimits limits_;
  isa::Pc start_pc_ = isa::kInvalidPc;
  isa::Pc next_pc_ = isa::kInvalidPc;
  u32 length_ = 0;
  SmallVector<LocVal, 12> inputs_;
  SmallVector<LocVal, 12> outputs_;  // current (latest) values
  u32 reg_in_ = 0, mem_in_ = 0, reg_out_ = 0, mem_out_ = 0;
  /// Register membership summaries of inputs_/outputs_ (register locs
  /// are raw values 0..63, so one bit each): try_add runs per executed
  /// instruction and its membership checks are the hot part — a bit
  /// test replaces the list scan for register operands (DESIGN.md
  /// §10); memory locations (≤ 4 per trace) still scan.
  u64 in_reg_mask_ = 0, out_reg_mask_ = 0;
};

}  // namespace tlr::reuse
