// The Reuse Trace Memory (paper §3.1 and §4.6).
//
// Geometry decoded from §4.6 (see DESIGN.md): the RTM is organised as
//   sets x pc_ways x traces_per_pc
// where each *way* holds one initial-PC tag plus up to `traces_per_pc`
// stored traces beginning at that PC ("4 entries per initial PC").
// Indexing uses the least-significant bits of the PC; replacement is
// LRU at both levels (ways within a set, traces within a way).
//
// A stored trace is identified by its input: the live-in locations and
// their values (§3.1). The reuse test (§3.3, value-compare flavour)
// matches every stored input value against the current architectural
// state; the invalidation/valid-bit flavour is implemented alongside it
// in rtm.cpp (selected with ReuseTestKind::kValidBit below).
#pragma once

#include <array>
#include <optional>
#include <unordered_map>
#include <vector>

#include "isa/dyn_inst.hpp"
#include "util/small_vector.hpp"
#include "util/types.hpp"

namespace tlr::reuse {

/// (location, value) pair as stored in an RTM entry.
struct LocVal {
  u64 loc = 0;  // Loc::raw()
  u64 value = 0;

  friend bool operator==(const LocVal&, const LocVal&) = default;
};

/// A trace as stored in the RTM: input and output sections plus the
/// next PC (Fig 1 of the paper).
struct StoredTrace {
  isa::Pc start_pc = isa::kInvalidPc;
  isa::Pc next_pc = isa::kInvalidPc;
  u32 length = 0;  // dynamic instructions covered

  SmallVector<LocVal, 12> inputs;   // live-in locations with values
  SmallVector<LocVal, 12> outputs;  // written locations with final values

  u32 reg_inputs = 0;
  u32 mem_inputs = 0;
  u32 reg_outputs = 0;
  u32 mem_outputs = 0;

  bool same_content(const StoredTrace& other) const {
    return start_pc == other.start_pc && next_pc == other.next_pc &&
           length == other.length && inputs == other.inputs &&
           outputs == other.outputs;
  }
};

/// Per-trace input/output limits (§4.6: "the number of inputs and
/// outputs have been limited to 8 registers and 4 memory values").
struct TraceLimits {
  u32 max_reg_inputs = 8;
  u32 max_mem_inputs = 4;
  u32 max_reg_outputs = 8;
  u32 max_mem_outputs = 4;
};

/// RTM sizing. total_entries() = sets * pc_ways * traces_per_pc.
struct RtmGeometry {
  u32 sets = 128;
  u32 pc_ways = 4;
  u32 traces_per_pc = 8;

  u64 total_entries() const {
    return u64{sets} * pc_ways * traces_per_pc;
  }

  // The four configurations evaluated in §4.6.
  static RtmGeometry rtm512() { return {32, 4, 4}; }
  static RtmGeometry rtm4k() { return {128, 4, 8}; }
  static RtmGeometry rtm32k() { return {256, 8, 16}; }
  static RtmGeometry rtm256k() { return {2048, 8, 16}; }
};

/// Tracks the values the simulated fetch engine can know: registers
/// and memory words whose contents have been observed (read or
/// written) so far. The reuse test reads current values from here.
class ArchShadow {
 public:
  ArchShadow() {
    reg_known_.fill(false);
    mem_.reserve(1 << 12);
  }

  std::optional<u64> value(u64 raw_loc) const {
    if ((raw_loc & isa::Loc::kMemTag) == 0) {
      const auto reg = static_cast<usize>(raw_loc);
      if (!reg_known_[reg]) return std::nullopt;
      return reg_value_[reg];
    }
    const auto it = mem_.find(raw_loc);
    if (it == mem_.end()) return std::nullopt;
    return it->second;
  }

  void set(u64 raw_loc, u64 value) {
    if ((raw_loc & isa::Loc::kMemTag) == 0) {
      const auto reg = static_cast<usize>(raw_loc);
      reg_known_[reg] = true;
      reg_value_[reg] = value;
    } else {
      mem_[raw_loc] = value;
    }
  }

  /// Record everything an executed instruction reveals: its input
  /// values (pre-state of the locations it read) and its output.
  void observe(const isa::DynInst& inst) {
    for (u8 k = 0; k < inst.num_inputs; ++k) {
      set(inst.inputs[k].loc.raw(), inst.inputs[k].value);
    }
    if (inst.has_output) set(inst.output.raw(), inst.output_value);
  }

 private:
  std::array<u64, isa::kNumRegs> reg_value_{};
  std::array<bool, isa::kNumRegs> reg_known_{};
  std::unordered_map<u64, u64> mem_;
};

/// Which reuse test the RTM implements (§3.3 describes both):
/// value-compare reads the current values of all trace inputs and
/// compares; valid-bit invalidates entries whenever any of their input
/// locations is written, making the test a single bit check (simpler
/// hardware, strictly less reuse — our ablation quantifies the gap).
enum class ReuseTestKind : u8 {
  kValueCompare,
  kValidBit,
};

class Rtm {
 public:
  /// Stable-enough reference to a stored trace, used to replace an
  /// entry after dynamic expansion. Validated on use (the slot may
  /// have been evicted in between).
  struct Handle {
    u32 set = 0;
    u32 way = 0;
    u32 slot = 0;
    isa::Pc start_pc = isa::kInvalidPc;
    u32 length = 0;
  };

  struct LookupResult {
    const StoredTrace* trace = nullptr;
    Handle handle;
  };

  struct Stats {
    u64 lookups = 0;
    u64 hits = 0;
    u64 insertions = 0;
    u64 duplicate_insertions = 0;  // content already present
    u64 way_evictions = 0;
    u64 trace_evictions = 0;
    u64 replacements = 0;          // successful expansions
    u64 stale_replacements = 0;    // expansion target was evicted
    u64 invalidations = 0;         // valid-bit mode only
  };

  explicit Rtm(const RtmGeometry& geometry,
               ReuseTestKind test = ReuseTestKind::kValueCompare);

  /// Reuse test at fetch: search the traces stored for `pc` (MRU
  /// first) for one whose every input matches the current state.
  std::optional<LookupResult> lookup(isa::Pc pc, const ArchShadow& state);

  /// Side-effect-free candidate enumeration: every trace stored for
  /// `pc`, MRU first, with no value test, no LRU touch and no stats.
  /// This is what a speculative mechanism sees at fetch — the stored
  /// traces, but not which of them (if any) still matches the state
  /// (spec::RtmSpecSimulator). In valid-bit mode only live entries are
  /// listed, mirroring the lookup filter. Pointers stay valid until the
  /// next insert/replace.
  void peek(isa::Pc pc, SmallVector<const StoredTrace*, 16>& out) const;

  /// Store a collected trace (LRU replacement at both levels). A trace
  /// with identical content to a stored one only refreshes LRU.
  void insert(const StoredTrace& trace);

  /// Replace the trace behind `handle` with an expanded version.
  /// Returns false (and inserts nothing) if the slot no longer holds
  /// the original trace.
  bool replace(const Handle& handle, const StoredTrace& expanded);

  /// Valid-bit mode: a write to `raw_loc` invalidates every stored
  /// trace with that location in its input list. No-op in
  /// value-compare mode.
  void notify_write(u64 raw_loc);

  const Stats& stats() const { return stats_; }
  const RtmGeometry& geometry() const { return geometry_; }
  ReuseTestKind test_kind() const { return test_; }

  /// Upper bound on the length of any trace currently stored (monotone
  /// over the RTM's lifetime). The streaming simulator uses it to size
  /// its lookahead: with this many instructions buffered, any lookup
  /// hit is guaranteed to fit in the buffer.
  u32 max_stored_length() const { return max_stored_length_; }

 private:
  struct Slot {
    StoredTrace trace;
    u64 stamp = 0;
    bool valid = false;
    bool live = false;  // valid-bit mode reuse test
    u32 generation = 0; // guards stale reverse-index references
  };

  struct SlotRef {
    u32 set = 0;
    u32 way = 0;
    u32 slot = 0;
    u32 generation = 0;
  };

  Slot& slot_at(const SlotRef& ref) {
    return ways_[u64{ref.set} * geometry_.pc_ways + ref.way].slots[ref.slot];
  }

  void register_inputs(const SlotRef& ref, const StoredTrace& trace);

  struct Way {
    isa::Pc pc = isa::kInvalidPc;
    u64 stamp = 0;
    bool valid = false;
    std::vector<Slot> slots;
  };

  u32 set_index(isa::Pc pc) const { return pc & (geometry_.sets - 1); }
  Way* find_way(u32 set, isa::Pc pc);

  RtmGeometry geometry_;
  ReuseTestKind test_;
  std::vector<Way> ways_;  // sets * pc_ways, set-major
  u64 clock_ = 0;
  u32 max_stored_length_ = 0;
  Stats stats_;
  /// Valid-bit mode reverse index: input location -> traces to kill on
  /// write. Entries are validated against slot generations lazily.
  std::unordered_map<u64, std::vector<SlotRef>> watchers_;
};

}  // namespace tlr::reuse
