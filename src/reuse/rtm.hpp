// The Reuse Trace Memory (paper §3.1 and §4.6).
//
// Geometry decoded from §4.6 (see DESIGN.md): the RTM is organised as
//   sets x pc_ways x traces_per_pc
// where each *way* holds one initial-PC tag plus up to `traces_per_pc`
// stored traces beginning at that PC ("4 entries per initial PC").
// Indexing uses the least-significant bits of the PC; replacement is
// LRU at both levels (ways within a set, traces within a way).
//
// A stored trace is identified by its input: the live-in locations and
// their values (§3.1). The reuse test (§3.3, value-compare flavour)
// matches every stored input value against the current architectural
// state; the invalidation/valid-bit flavour is implemented alongside it
// in rtm.cpp (selected with ReuseTestKind::kValidBit below).
#pragma once

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "isa/dyn_inst.hpp"
#include "util/flat_hash_map.hpp"
#include "util/hash.hpp"
#include "util/small_vector.hpp"
#include "util/types.hpp"

namespace tlr::reuse {

/// (location, value) pair as stored in an RTM entry.
struct LocVal {
  u64 loc = 0;  // Loc::raw()
  u64 value = 0;

  friend bool operator==(const LocVal&, const LocVal&) = default;
};

/// Order-independent 64-bit hash of a (loc, value) multiset — the RTM
/// reuse test's fast-reject key (DESIGN.md §10). Equal multisets hash
/// equal by construction, so a hash mismatch proves at least one input
/// value differs and the linear value-compare walk can be skipped; a
/// colliding-but-unequal multiset (false positive) merely falls
/// through to the exact walk, which still decides the match. Values
/// enter linearly (per-element mix64 of the location only, wrapping
/// sum combine): distribution is ample for a reject filter on real
/// value streams, and collisions stay constructible for tests
/// (shifting value mass between two locations preserves the sum).
inline u64 input_hash_seed(usize count) { return mix64(count); }
inline u64 input_hash_term(u64 loc, u64 value) {
  return mix64(loc + 0x9e3779b97f4a7c15ULL) + value;
}
inline u64 input_multiset_hash(std::span<const LocVal> inputs) {
  u64 hash = input_hash_seed(inputs.size());
  for (const LocVal& in : inputs) {
    hash += input_hash_term(in.loc, in.value);
  }
  return hash;
}

/// A trace as stored in the RTM: input and output sections plus the
/// next PC (Fig 1 of the paper).
struct StoredTrace {
  isa::Pc start_pc = isa::kInvalidPc;
  isa::Pc next_pc = isa::kInvalidPc;
  u32 length = 0;  // dynamic instructions covered

  SmallVector<LocVal, 12> inputs;   // live-in locations with values
  SmallVector<LocVal, 12> outputs;  // written locations with final values

  u32 reg_inputs = 0;
  u32 mem_inputs = 0;
  u32 reg_outputs = 0;
  u32 mem_outputs = 0;

  bool same_content(const StoredTrace& other) const {
    return start_pc == other.start_pc && next_pc == other.next_pc &&
           length == other.length && inputs == other.inputs &&
           outputs == other.outputs;
  }
};

/// Per-trace input/output limits (§4.6: "the number of inputs and
/// outputs have been limited to 8 registers and 4 memory values").
struct TraceLimits {
  u32 max_reg_inputs = 8;
  u32 max_mem_inputs = 4;
  u32 max_reg_outputs = 8;
  u32 max_mem_outputs = 4;
};

/// RTM sizing. total_entries() = sets * pc_ways * traces_per_pc.
struct RtmGeometry {
  u32 sets = 128;
  u32 pc_ways = 4;
  u32 traces_per_pc = 8;

  u64 total_entries() const {
    return u64{sets} * pc_ways * traces_per_pc;
  }

  // The four configurations evaluated in §4.6.
  static RtmGeometry rtm512() { return {32, 4, 4}; }
  static RtmGeometry rtm4k() { return {128, 4, 8}; }
  static RtmGeometry rtm32k() { return {256, 8, 16}; }
  static RtmGeometry rtm256k() { return {2048, 8, 16}; }
};

/// Tracks the values the simulated fetch engine can know: registers
/// and memory words whose contents have been observed (read or
/// written) so far. The reuse test reads current values from here.
class ArchShadow {
 public:
  ArchShadow() { mem_.reserve(1 << 12); }

  std::optional<u64> value(u64 raw_loc) const {
    if ((raw_loc & isa::Loc::kMemTag) == 0) {
      if ((known_mask_ >> raw_loc & 1) == 0) return std::nullopt;
      return reg_value_[static_cast<usize>(raw_loc)];
    }
    const u64* value = mem_.find(raw_loc);
    if (value == nullptr) return std::nullopt;
    return *value;
  }

  /// Exactly `value(raw_loc) == expected` without materialising the
  /// optional — the reuse test's inner comparison (DESIGN.md §10).
  bool matches(u64 raw_loc, u64 expected) const {
    if ((raw_loc & isa::Loc::kMemTag) == 0) {
      return (known_mask_ >> raw_loc & 1) != 0 &&
             reg_value_[static_cast<usize>(raw_loc)] == expected;
    }
    const u64* value = mem_.find(raw_loc);
    return value != nullptr && *value == expected;
  }

  /// Bulk register view (bit r of known_regs ⇔ reg_values()[r] is
  /// live): lets batched consumers — the predictor's keyed training
  /// delta — replace per-register value() calls with mask arithmetic.
  u64 known_regs() const { return known_mask_; }
  const std::array<u64, isa::kNumRegs>& reg_values() const {
    return reg_value_;
  }

  void set(u64 raw_loc, u64 value) {
    if ((raw_loc & isa::Loc::kMemTag) == 0) {
      known_mask_ |= u64{1} << raw_loc;
      reg_value_[static_cast<usize>(raw_loc)] = value;
    } else {
      mem_[raw_loc] = value;
    }
  }

  /// Record everything an executed instruction reveals: its input
  /// values (pre-state of the locations it read) and its output.
  /// Runs once per executed instruction (DESIGN.md §10).
  void observe(const isa::DynInst& inst) {
    for (u8 k = 0; k < inst.num_inputs; ++k) {
      set(inst.inputs[k].loc.raw(), inst.inputs[k].value);
    }
    if (inst.has_output) set(inst.output.raw(), inst.output_value);
  }

 private:
  std::array<u64, isa::kNumRegs> reg_value_{};
  /// Bit per register (the 64 register locs are raw values 0..63):
  /// one-instruction wide known/unknown state instead of a bool array.
  u64 known_mask_ = 0;
  FlatHashMap<u64, u64> mem_;
};

/// Which reuse test the RTM implements (§3.3 describes both):
/// value-compare reads the current values of all trace inputs and
/// compares; valid-bit invalidates entries whenever any of their input
/// locations is written, making the test a single bit check (simpler
/// hardware, strictly less reuse — our ablation quantifies the gap).
enum class ReuseTestKind : u8 {
  kValueCompare,
  kValidBit,
};

class Rtm {
 public:
  /// Stable-enough reference to a stored trace, used to replace an
  /// entry after dynamic expansion. Validated on use (the slot may
  /// have been evicted in between).
  struct Handle {
    u32 set = 0;
    u32 way = 0;
    u32 slot = 0;
    isa::Pc start_pc = isa::kInvalidPc;
    u32 length = 0;
  };

  struct LookupResult {
    const StoredTrace* trace = nullptr;
    Handle handle;
  };

  /// What the fused gated scan already knows about one stored trace's
  /// value test (lookup_gated): decided slots carry their verdict,
  /// slots the MRU scan skipped (older than an already-found match)
  /// stay kUnknown and must be walked on demand.
  enum class Verdict : i8 {
    kUnknown = -1,
    kFail = 0,
    kPass = 1,
  };

  /// Result of one fused gated probe (lookup_gated). `traces` and
  /// `verdict` are parallel, MRU first by post-touch stamps — the
  /// exact order the old lookup()-then-peek() pair produced. Pointers
  /// stay valid until the next insert/replace.
  struct GatedProbe {
    SmallVector<const StoredTrace*, 16> traces;
    SmallVector<Verdict, 16> verdict;
    /// The reuse test's pick (already LRU-touched), or nullptr on an
    /// actual miss. Unlike LookupResult this is just the trace: the
    /// gated path never expands in place.
    const StoredTrace* hit = nullptr;
    /// Number of traces stored for the PC — also filled when the
    /// caller asked not to enumerate them (enumerate=false), so gates
    /// that never read candidates still learn whether any exist.
    u32 stored = 0;
  };

  struct Stats {
    u64 lookups = 0;
    u64 hits = 0;
    /// Trace slots examined across all reuse tests (MRU-walk length
    /// summed over lookups) — the probe-chain length distribution's
    /// numerator; pathological chains show as probe_slots/lookups
    /// far above 1.
    u64 probe_slots = 0;
    u64 insertions = 0;
    u64 duplicate_insertions = 0;  // content already present
    u64 way_evictions = 0;
    u64 trace_evictions = 0;
    u64 replacements = 0;          // successful expansions
    u64 stale_replacements = 0;    // expansion target was evicted
    u64 invalidations = 0;         // valid-bit mode only
  };

  explicit Rtm(const RtmGeometry& geometry,
               ReuseTestKind test = ReuseTestKind::kValueCompare);

  /// Reuse test at fetch: search the traces stored for `pc` (MRU
  /// first) for one whose every input matches the current state.
  /// Defined inline below: this runs once per simulated fetch and is
  /// the hottest loop in the finite-RTM experiments (DESIGN.md §10).
  std::optional<LookupResult> lookup(isa::Pc pc, const ArchShadow& state);

  /// Side-effect-free candidate enumeration: every trace stored for
  /// `pc`, MRU first, with no value test, no LRU touch and no stats.
  /// This is what a speculative mechanism sees at fetch — the stored
  /// traces, but not which of them (if any) still matches the state
  /// (spec::RtmSpecSimulator). In valid-bit mode only live entries are
  /// listed, mirroring the lookup filter. Pointers stay valid until the
  /// next insert/replace.
  void peek(isa::Pc pc, SmallVector<const StoredTrace*, 16>& out) const;

  /// One fused probe for the gated (speculative) path: the reuse test
  /// of lookup() — bit-identical accept condition, LRU touch and stats
  /// — and the candidate enumeration of peek(), off a single ScanRec
  /// walk (DESIGN.md §10). Each candidate carries the value-test
  /// verdict the scan already computed for it, so verifying the gate's
  /// pick re-walks inputs only for stamp-skipped slots the scan never
  /// decided. Value-compare mode only (the speculation precondition).
  /// With enumerate=false only the test and `stored` are produced —
  /// for gates that never read the candidate list (the oracle).
  void lookup_gated(isa::Pc pc, const ArchShadow& state, GatedProbe& out,
                    bool enumerate = true);

  /// How an insert changed the start PC's way — enough for a
  /// speculation gate to maintain a cached view of the way's contents
  /// (the predictor's candidate-input union) without rescanning it.
  enum class StoreKind : u8 {
    kFreshWay,   // way (re)allocated: the way now holds exactly this trace
    kAppended,   // a free slot filled: the way grew by this trace
    kRefreshed,  // duplicate content: the way is unchanged
    kEvicted,    // LRU slot overwritten: some other trace left the way
  };

  /// What insert() did, plus the trace's long-lived slot copy (for
  /// kRefreshed the already-stored trace with identical content).
  /// The pointer stays valid until the next insert/replace.
  struct StoreResult {
    StoreKind kind;
    const StoredTrace* stored;
  };

  /// Store a collected trace (LRU replacement at both levels). A trace
  /// with identical content to a stored one only refreshes LRU. Taken
  /// by value: the collection paths hand over freshly finalized traces,
  /// which then move into the slot instead of being deep-copied.
  StoreResult insert(StoredTrace trace);

  /// Replace the trace behind `handle` with an expanded version.
  /// Returns false (and inserts nothing) if the slot no longer holds
  /// the original trace.
  bool replace(const Handle& handle, const StoredTrace& expanded);

  /// Valid-bit mode: a write to `raw_loc` invalidates every stored
  /// trace with that location in its input list. No-op in value-compare
  /// mode — and called once per simulated write, so the mode check
  /// stays inline.
  void notify_write(u64 raw_loc) {
    if (test_ == ReuseTestKind::kValidBit) [[unlikely]] {
      notify_write_slow(raw_loc);
    }
  }

  const Stats& stats() const { return stats_; }
  const RtmGeometry& geometry() const { return geometry_; }
  ReuseTestKind test_kind() const { return test_; }

  /// Upper bound on the length of any trace currently stored (monotone
  /// over the RTM's lifetime). The streaming simulator uses it to size
  /// its lookahead: with this many instructions buffered, any lookup
  /// hit is guaranteed to fit in the buffer.
  u32 max_stored_length() const { return max_stored_length_; }

 private:
  /// Trace payload of one slot. All per-slot reuse-test metadata lives
  /// in the parallel ScanRec array so the per-fetch scan never touches
  /// these fat records until a slot survives the fast reject.
  struct Slot {
    StoredTrace trace;
    u32 generation = 0; // guards stale reverse-index references
  };

  /// Compact 32-byte per-slot scan record (DESIGN.md §10). The reuse
  /// test walks these contiguously: LRU stamp (0 = empty slot; live
  /// stamps start at 1), the trace's leading input for the
  /// first-operand reject, and the input_multiset_hash fast-reject key
  /// that also decides duplicate detection in insert() with one
  /// compare. Per-slot booleans (no-inputs, valid-bit liveness) live
  /// in Way-level bit masks.
  struct ScanRec {
    u64 stamp = 0;
    u64 input_hash = 0;
    u64 first_loc = 0;
    u64 first_value = 0;
  };

  struct SlotRef {
    u32 set = 0;
    u32 way = 0;
    u32 slot = 0;
    u32 generation = 0;
  };

  struct Way {
    isa::Pc pc = isa::kInvalidPc;
    u64 stamp = 0;
    bool valid = false;
    /// Slots in use. Stored traces fill slot indices from 0 upward and
    /// a filled slot never empties (eviction replaces in place), so
    /// every scan — reuse test, duplicate check, peek — runs over
    /// [0, used) instead of the full geometry width.
    u32 used = 0;
    u32 empty_inputs_mask = 0;  // slots whose trace has no live-ins
    u32 live_mask = 0;          // valid-bit mode liveness, bit per slot
    std::vector<Slot> slots;
    std::vector<ScanRec> scan;  // parallel to slots
    /// Slot indices of [0, used) ordered most-recently-stamped first —
    /// the stamp order materialised (DESIGN.md §10). Scans visit slots
    /// through this array, so the reuse test stops at its first full
    /// match (provably the max-stamp match) instead of stamp-skipping
    /// through the whole way, candidate enumeration needs no per-fetch
    /// sort, and the LRU victim is simply the tail. Maintained by
    /// move-to-front wherever a stamp is written.
    std::array<u8, 32> mru{};

    void touch_mru(u32 slot) {
      u32 at = 0;
      while (mru[at] != slot) ++at;
      for (; at > 0; --at) mru[at] = mru[at - 1];
      mru[0] = static_cast<u8>(slot);
    }
  };

  Way& way_at(const SlotRef& ref) {
    return ways_[u64{ref.set} * geometry_.pc_ways + ref.way];
  }
  Slot& slot_at(const SlotRef& ref) { return way_at(ref).slots[ref.slot]; }

  void register_inputs(const SlotRef& ref, const StoredTrace& trace);

  /// Fills slot `s`'s scan metadata in `way` (stamp set by callers).
  static void set_scan_inputs(Way& way, u32 s, const StoredTrace& trace,
                              u64 input_hash) {
    ScanRec& rec = way.scan[s];
    rec.input_hash = input_hash;
    if (trace.inputs.empty()) {
      way.empty_inputs_mask |= u32{1} << s;
      rec.first_loc = 0;
      rec.first_value = 0;
    } else {
      way.empty_inputs_mask &= ~(u32{1} << s);
      rec.first_loc = trace.inputs[0].loc;
      rec.first_value = trace.inputs[0].value;
    }
  }

  u32 set_index(isa::Pc pc) const { return pc & (geometry_.sets - 1); }
  Way* find_way(u32 set, isa::Pc pc);
  void notify_write_slow(u64 raw_loc);

  RtmGeometry geometry_;
  ReuseTestKind test_;
  std::vector<Way> ways_;  // sets * pc_ways, set-major
  /// Initial-PC tags parallel to ways_ (kInvalidPc when the way is
  /// empty): the per-fetch way match scans this dense array instead of
  /// striding through the fat Way records (DESIGN.md §10).
  std::vector<isa::Pc> way_tags_;
  u64 clock_ = 0;
  u32 max_stored_length_ = 0;
  Stats stats_;
  /// Valid-bit mode reverse index: input location -> traces to kill on
  /// write. Entries are validated against slot generations lazily.
  FlatHashMap<u64, std::vector<SlotRef>> watchers_;
};

// ---- hot-path inline definitions -------------------------------------

inline Rtm::Way* Rtm::find_way(u32 set, isa::Pc pc) {
  // Tag scan over the dense PC array; kInvalidPc marks empty ways and
  // can never equal a fetch PC, so no validity check is needed.
  const isa::Pc* tags = &way_tags_[u64{set} * geometry_.pc_ways];
  for (u32 w = 0; w < geometry_.pc_ways; ++w) {
    if (tags[w] == pc) return &ways_[u64{set} * geometry_.pc_ways + w];
  }
  return nullptr;
}

inline std::optional<Rtm::LookupResult> Rtm::lookup(isa::Pc pc,
                                                    const ArchShadow& state) {
  ++stats_.lookups;
  const u32 set = set_index(pc);
  Way* way = find_way(set, pc);
  if (way == nullptr) return std::nullopt;

  // Visit stored traces in materialised MRU order (Way::mru): the
  // first slot whose full test passes is provably the max-stamp match
  // the original whole-way scan selected, so the walk stops there. In
  // value-compare mode the ScanRec's leading (loc, value) pair rejects
  // ~90% of candidate slots without touching the fat trace storage at
  // all; only survivors walk their remaining inputs, early-exiting on
  // the first mismatch. The accept condition is bit-for-bit the
  // original full walk.
  const ScanRec* const scan = way->scan.data();
  const u32 used = way->used;
  u32 best_slot = 0;
  bool found = false;
  u32 visited = 0;
  for (; visited < used; ++visited) {
    const u32 s = way->mru[visited];
    bool match;
    if (test_ == ReuseTestKind::kValidBit) {
      // Single-bit test: live means no input location was written
      // since the trace was stored (§3.3, second approach).
      match = (way->live_mask >> s & 1) != 0;
    } else if ((way->empty_inputs_mask >> s & 1) == 0) {
      const ScanRec& rec = scan[s];
      if (!state.matches(rec.first_loc, rec.first_value)) continue;
      const SmallVector<LocVal, 12>& inputs = way->slots[s].trace.inputs;
      match = true;
      const LocVal* in = inputs.begin() + 1;
      const LocVal* const in_end = inputs.end();
      for (; in != in_end; ++in) {
        if (!state.matches(in->loc, in->value)) {
          match = false;
          break;
        }
      }
    } else {
      match = true;  // a trace with no live-ins always passes the test
    }
    if (match) {
      found = true;
      best_slot = s;
      break;
    }
  }
  // One add after the walk, outside the per-slot path.
  stats_.probe_slots += found ? visited + 1 : visited;
  if (!found) return std::nullopt;

  ++clock_;
  way->stamp = clock_;
  way->scan[best_slot].stamp = clock_;
  way->touch_mru(best_slot);
  ++stats_.hits;

  const StoredTrace* best = &way->slots[best_slot].trace;
  LookupResult result;
  result.trace = best;
  result.handle =
      Handle{set, static_cast<u32>(way - &ways_[u64{set} * geometry_.pc_ways]),
             best_slot, pc, best->length};
  return result;
}

}  // namespace tlr::reuse
