// Plain-text and CSV table rendering for the figure/ table reproduction
// harness. Every bench binary prints the same rows the paper's figures
// plot; this keeps the formatting in one place.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace tlr {

/// A rectangular table: a title, column headers, and string cells.
/// Numeric convenience setters format with fixed precision.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_columns(std::vector<std::string> headers);
  /// Starts a new row; subsequent add_* calls append cells to it.
  void begin_row();
  void add_cell(std::string text);
  void add_number(double value, int precision = 2);
  void add_integer(u64 value);
  void add_percent(double fraction, int precision = 1);

  usize rows() const { return cells_.size(); }
  usize columns() const { return headers_.size(); }
  const std::string& cell(usize row, usize col) const;

  /// Render as an aligned ASCII table.
  void render(std::ostream& os) const;
  /// Render as CSV (title as a comment line).
  void render_csv(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace tlr
