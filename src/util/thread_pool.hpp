// Minimal task-based thread pool.
//
// Figure reproduction runs 14 independent per-benchmark simulations; the
// harness dispatches them across hardware threads. Each simulation is
// fully self-contained (own interpreter, own tables), so the only shared
// state is the queue itself.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/types.hpp"

namespace tlr {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(usize threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw (the simulator reports errors
  /// through its own result channels); an escaping exception aborts.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  usize thread_count() const { return workers_.size(); }

  /// Convenience: run fn(i) for i in [0, n) across the pool and wait.
  void parallel_for(usize n, const std::function<void(usize)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  usize in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace tlr
