// Minimal task-based thread pool.
//
// Figure reproduction runs 14 independent per-benchmark simulations; the
// harness dispatches them across hardware threads. Each simulation is
// fully self-contained (own interpreter, own tables), so the only shared
// state is the queue itself.
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/function.hpp"
#include "util/types.hpp"

namespace tlr {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(usize threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. An exception escaping a task is captured on its
  /// worker thread and rethrown from the next wait_idle()/parallel_for
  /// — workers keep draining the queue either way. When several tasks
  /// throw before the wait, the first one captured wins and the rest
  /// are dropped (which of a batch's failures that is depends on
  /// completion order). Tasks are SmallFunctions: small closures (like
  /// parallel_for's per-index lambdas) are stored inline, so enqueueing
  /// a task performs no allocation beyond the queue node itself.
  void submit(SmallFunction task);

  /// Block until every submitted task has finished; rethrows the first
  /// captured task exception, leaving the pool reusable.
  void wait_idle();

  usize thread_count() const { return workers_.size(); }

  /// Convenience: run fn(i) for i in [0, n) across the pool and wait.
  /// Rethrows like wait_idle (remaining jobs still run to completion).
  void parallel_for(usize n, const std::function<void(usize)>& fn);

 private:
  void worker_loop(usize index);

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<SmallFunction> queue_;
  std::vector<std::thread> workers_;
  std::exception_ptr error_;  // first escaping task exception
  usize in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace tlr
