// Minimal JSON document model, writer and parser for the report
// pipeline (core/report.hpp, tools/reuse_study).
//
// Design constraints, in order:
//   1. Deterministic output. Objects preserve insertion order and
//      dump() is byte-stable for a given document — the golden-snapshot
//      test diffs committed reports across refactors, so no hash-map
//      iteration order may leak into the bytes.
//   2. Exact numbers. Cycle counts are u64; integers round-trip
//      exactly (no double detour), and doubles serialize with the
//      shortest representation that parses back to the same bits
//      (std::to_chars).
//   3. No dependencies. The toolchain image has no JSON library and
//      the container must not install one.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace tlr::util {

class Json {
 public:
  enum class Kind : u8 { kNull, kBool, kInt, kUint, kDouble, kString,
                         kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(std::nullptr_t) : kind_(Kind::kNull) {}
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  Json(i64 value) : kind_(Kind::kInt), int_(value) {}
  Json(u64 value) : kind_(Kind::kUint), uint_(value) {}
  Json(int value) : Json(static_cast<i64>(value)) {}
  Json(unsigned value) : Json(static_cast<u64>(value)) {}
  Json(double value) : kind_(Kind::kDouble), double_(value) {}
  Json(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}
  Json(std::string_view value) : Json(std::string(value)) {}
  Json(const char* value) : Json(std::string(value)) {}

  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const;
  /// Numeric value as double whatever the stored flavour.
  double as_double() const;
  /// Exact integer access; asserts when the stored number is not
  /// exactly representable in the requested type.
  i64 as_i64() const;
  u64 as_u64() const;
  const std::string& as_string() const;

  // ---- arrays --------------------------------------------------------
  usize size() const;
  Json& push_back(Json value);
  const Json& at(usize index) const;
  const Json& operator[](usize index) const { return at(index); }

  // ---- objects (insertion-ordered) -----------------------------------
  /// Sets `key` (replacing an existing entry in place) and returns the
  /// stored value.
  Json& set(std::string_view key, Json value);
  bool contains(std::string_view key) const;
  /// Null-kind sentinel reference when the key is missing.
  const Json& at(std::string_view key) const;
  const Json& operator[](std::string_view key) const { return at(key); }
  const Json* find(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& items() const;

  friend bool operator==(const Json& a, const Json& b);

  /// Serialize. indent < 0: compact one-liner; indent >= 0: pretty-
  /// printed with that many spaces per level and a trailing newline at
  /// the top call. Byte-deterministic either way.
  std::string dump(int indent = -1) const;

  /// Parse a complete document (trailing whitespace allowed, trailing
  /// garbage rejected). On failure returns nullopt and, when `error`
  /// is non-null, a "line:col: message" description.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* error = nullptr);

  /// Escape `text` as a JSON string literal including the quotes.
  static std::string escape(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  i64 int_ = 0;
  u64 uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace tlr::util
