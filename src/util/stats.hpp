// Statistics helpers.
//
// The paper reports average speed-ups as harmonic means and average
// percentages as arithmetic means (§4.1); these helpers are used by the
// figure runners so the aggregation discipline matches the paper's.
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace tlr {

double arithmetic_mean(std::span<const double> xs);
double harmonic_mean(std::span<const double> xs);
double geometric_mean(std::span<const double> xs);

/// Single-pass accumulator for count / mean / min / max.
class RunningStats {
 public:
  void add(double x);

  u64 count() const { return n_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double sum() const { return sum_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  u64 n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram over [0, limit); the last bucket absorbs
/// overflow. Used for trace-size distributions.
class Histogram {
 public:
  Histogram(usize buckets, double limit);

  void add(double x);
  u64 bucket_count(usize i) const { return counts_[i]; }
  usize buckets() const { return counts_.size(); }
  u64 total() const { return total_; }
  /// Smallest x such that at least `q` (0..1) of the mass lies at or
  /// below x's bucket upper edge.
  double quantile(double q) const;

 private:
  double limit_;
  std::vector<u64> counts_;
  u64 total_ = 0;
};

}  // namespace tlr
