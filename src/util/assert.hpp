// Lightweight always-on assertion macro. Simulator correctness bugs are
// silent-result bugs, so invariant checks stay on in release builds; the
// checks on hot paths are cheap (integer compares).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tlr::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "tlr: assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace tlr::detail

#define TLR_ASSERT(expr)                                                  \
  do {                                                                    \
    if (!(expr)) [[unlikely]]                                             \
      ::tlr::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);     \
  } while (0)

#define TLR_ASSERT_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) [[unlikely]]                                             \
      ::tlr::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));       \
  } while (0)
