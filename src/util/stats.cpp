#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace tlr {

double arithmetic_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double harmonic_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double inv = 0.0;
  for (double x : xs) {
    TLR_ASSERT_MSG(x > 0.0, "harmonic mean requires positive values");
    inv += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / inv;
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    TLR_ASSERT_MSG(x > 0.0, "geometric mean requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++n_;
}

Histogram::Histogram(usize buckets, double limit)
    : limit_(limit), counts_(buckets, 0) {
  TLR_ASSERT(buckets >= 1);
  TLR_ASSERT(limit > 0.0);
}

void Histogram::add(double x) {
  const double frac = x / limit_;
  usize idx = frac >= 1.0 ? counts_.size() - 1
                          : static_cast<usize>(frac *
                                static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
  ++total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (usize i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) {
      return limit_ * static_cast<double>(i + 1) /
             static_cast<double>(counts_.size());
    }
  }
  return limit_;
}

}  // namespace tlr
