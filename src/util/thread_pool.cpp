#include "util/thread_pool.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/trace.hpp"

namespace tlr {

ThreadPool::ThreadPool(usize threads) {
  if (threads == 0) {
    threads = std::max<usize>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (usize i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(SmallFunction task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(error_, nullptr);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(usize n, const std::function<void(usize)>& fn) {
  for (usize i = 0; i < n; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::worker_loop(usize index) {
  // Profilers, gdb and trace timelines show "tlr-worker-N" instead of
  // an anonymous thread (obs/trace.hpp; 15-char OS name limit holds
  // for any realistic worker count).
  obs::set_thread_name("tlr-worker-" + std::to_string(index));
  for (;;) {
    // Queue-wait spans make idle workers visible in the trace: a long
    // "queue_wait" next to a long task on another row is the
    // load-imbalance signature. Recorded only after a task was
    // dequeued, so a worker blocked at shutdown leaves no open span.
    const bool trace = obs::trace_enabled();
    const u64 wait_start_us = trace ? obs::trace_now_us() : 0;
    SmallFunction task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (trace) {
      obs::record_span("queue_wait", "pool", {}, {}, wait_start_us,
                       obs::trace_now_us());
    }
    std::exception_ptr error;
    try {
      obs::Span span("task", "pool");
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error != nullptr && error_ == nullptr) error_ = error;
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace tlr
