#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace tlr {

ThreadPool::ThreadPool(usize threads) {
  if (threads == 0) {
    threads = std::max<usize>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (usize i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(SmallFunction task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(error_, nullptr);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(usize n, const std::function<void(usize)>& fn) {
  for (usize i = 0; i < n; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    SmallFunction task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error != nullptr && error_ == nullptr) error_ = error;
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace tlr
