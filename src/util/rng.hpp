// Deterministic, seedable pseudo-random number generation.
//
// Workload generators must be bit-reproducible across runs and platforms:
// the reuse statistics we report depend on the exact data the synthetic
// programs touch. std::mt19937 would work but its distributions are not
// portable; we implement xoshiro256** + splitmix64 (public-domain
// algorithms by Blackman & Vigna) and our own bounded-draw helpers.
#pragma once

#include <array>
#include <limits>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace tlr {

/// splitmix64: used to expand a single 64-bit seed into a full
/// xoshiro256** state. Also a decent standalone mixer.
constexpr u64 splitmix64(u64& state) {
  state += 0x9e3779b97f4a7c15ULL;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256**: fast, high-quality 64-bit PRNG with 256-bit state.
class Rng {
 public:
  explicit constexpr Rng(u64 seed = 0x1234567890abcdefULL) { reseed(seed); }

  constexpr void reseed(u64 seed) {
    u64 sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Next raw 64-bit draw.
  constexpr u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform draw in [0, bound). bound == 0 is invalid.
  constexpr u64 below(u64 bound) {
    TLR_ASSERT(bound != 0);
    // Multiply-shift bounded draw (Lemire); bias is negligible for the
    // bounds used by workload generators (<< 2^32).
    const u64 x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    return static_cast<u64>(m >> 64);
  }

  /// Uniform draw in [lo, hi] inclusive.
  constexpr u64 range(u64 lo, u64 hi) {
    TLR_ASSERT(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli draw: true with probability num/den.
  constexpr bool chance(u64 num, u64 den) {
    TLR_ASSERT(den != 0);
    return below(den) < num;
  }

  /// Uniform double in [0, 1).
  constexpr double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * unit();
  }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<u64, 4> state_{};
};

/// Zipf-like skewed index generator over [0, n): index i is drawn with
/// probability roughly proportional to 1/(i+1)^s. Workloads use this to
/// model hot/cold data (hot table slots, frequent opcodes, common
/// characters), which is the origin of much of the value locality the
/// paper exploits.
class ZipfDraw {
 public:
  ZipfDraw(u64 n, double s, u64 seed);

  u64 next();
  u64 size() const { return n_; }

 private:
  u64 n_;
  Rng rng_;
  // Inverse-CDF table with 4096 buckets; coarse but fully deterministic.
  std::array<u32, 4096> bucket_{};
};

}  // namespace tlr
