#include "util/rng.hpp"

#include <cmath>
#include <vector>

namespace tlr {

ZipfDraw::ZipfDraw(u64 n, double s, u64 seed) : n_(n), rng_(seed) {
  TLR_ASSERT(n >= 1);
  std::vector<double> cdf(n);
  double sum = 0.0;
  for (u64 i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[i] = sum;
  }
  for (u64 i = 0; i < n; ++i) cdf[i] /= sum;
  // Invert the CDF into fixed buckets: bucket b covers quantile
  // (b+0.5)/4096 and maps to the first index whose CDF exceeds it.
  u64 idx = 0;
  for (usize b = 0; b < bucket_.size(); ++b) {
    const double q = (static_cast<double>(b) + 0.5) / 4096.0;
    while (idx + 1 < n && cdf[idx] < q) ++idx;
    bucket_[b] = static_cast<u32>(idx);
  }
}

u64 ZipfDraw::next() { return bucket_[rng_.below(bucket_.size())]; }

}  // namespace tlr
