// Fundamental fixed-width type aliases used across the trace-level reuse
// library. Kept in one place so every subsystem shares the same vocabulary.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tlr {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// Simulated cycle count. 64 bits: streams of hundreds of millions of
/// instructions with latencies up to ~60 cycles never overflow.
using Cycle = std::uint64_t;

/// Byte address in the simulated machine's memory space.
using Addr = std::uint64_t;

}  // namespace tlr
