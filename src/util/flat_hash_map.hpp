// Open-addressing hash containers for the per-instruction hot paths.
//
// std::unordered_map costs one heap node per entry and a pointer chase
// per probe; at tens of millions of lookups per simulated workload that
// dominates several engine loops (DESIGN.md §10). FlatHashMap stores
// slots in one contiguous array with a parallel byte of control state
// (empty / tombstone / full), probes linearly from a mixed hash, and
// keeps capacity a power of two so the index mask is a single AND.
//
// Scope: exactly what the engine needs, not a drop-in std replacement.
//   - keys and values must be default-constructible and move-assignable
//     (erase resets the slot to a default-constructed state);
//   - pointer-returning find (no iterator invalidation contract to
//     honour beyond "insert and erase may rehash");
//   - iteration order is unspecified — callers on results-bearing paths
//     must not depend on it (tests/util/flat_hash_map_test.cpp checks
//     the engine-facing behaviour against std::unordered_map).
#pragma once

#include <bit>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"
#include "util/types.hpp"

namespace tlr {

/// Default hasher: mix64 for anything convertible to u64 (the common
/// key shape here: raw Loc names, addresses, PCs, page indices).
struct FlatHashU64 {
  constexpr u64 operator()(u64 key) const noexcept { return mix64(key); }
};

template <class Key, class T, class Hash = FlatHashU64>
class FlatHashMap {
  enum : u8 { kEmpty = 0, kTombstone = 1, kFull = 2 };

  struct Slot {
    Key key{};
    T value{};
  };

 public:
  FlatHashMap() = default;

  usize size() const { return size_; }
  bool empty() const { return size_ == 0; }
  usize capacity() const { return ctrl_.size(); }

  void clear() {
    ctrl_.assign(ctrl_.size(), u8{kEmpty});
    for (Slot& slot : slots_) slot = Slot{};
    size_ = 0;
    tombstones_ = 0;
  }

  /// Grow so that `count` entries fit without rehashing.
  void reserve(usize count) {
    const usize needed = required_capacity(count);
    if (needed > ctrl_.size()) rehash(needed);
  }

  T* find(const Key& key) {
    const usize index = find_index(key);
    return index == kNotFound ? nullptr : &slots_[index].value;
  }
  const T* find(const Key& key) const {
    const usize index = find_index(key);
    return index == kNotFound ? nullptr : &slots_[index].value;
  }
  bool contains(const Key& key) const { return find_index(key) != kNotFound; }

  /// Insert a default-constructed value if absent; returns the value
  /// slot either way (the std::unordered_map::operator[] contract).
  T& operator[](const Key& key) { return *try_emplace(key).first; }

  /// {value slot, inserted?}. The value is default-constructed on
  /// insertion (callers assign); an existing entry is left untouched.
  std::pair<T*, bool> try_emplace(const Key& key) {
    grow_if_needed();
    const u64 mask = ctrl_.size() - 1;
    usize index = static_cast<usize>(hash_(key)) & mask;
    usize insert_at = kNotFound;
    for (;;) {
      const u8 state = ctrl_[index];
      if (state == kFull) {
        if (slots_[index].key == key) return {&slots_[index].value, false};
      } else if (state == kTombstone) {
        if (insert_at == kNotFound) insert_at = index;
      } else {  // kEmpty terminates the probe chain
        if (insert_at == kNotFound) insert_at = index;
        break;
      }
      index = (index + 1) & mask;
    }
    if (ctrl_[insert_at] == kTombstone) --tombstones_;
    ctrl_[insert_at] = kFull;
    slots_[insert_at].key = key;
    ++size_;
    return {&slots_[insert_at].value, true};
  }

  /// Returns true if the key was present. The slot's key/value are
  /// reset to default-constructed state (releasing owned resources).
  /// May rehash (invalidating find() pointers): an erase-heavy phase
  /// with no interleaved inserts never reaches grow_if_needed, so
  /// probe chains would stay at the table's high-water length forever.
  /// Past a quarter of the table, tombstones are reclaimed in place —
  /// same capacity, freshly packed chains.
  bool erase(const Key& key) {
    const usize index = find_index(key);
    if (index == kNotFound) return false;
    ctrl_[index] = kTombstone;
    slots_[index] = Slot{};
    --size_;
    ++tombstones_;
    if (tombstones_ * 4 > ctrl_.size()) {
      obs::count(obs::Counter::kTableTombstoneReclaims);
      rehash(ctrl_.size());
    }
    return true;
  }

  /// Dead control slots awaiting reclaim (diagnostics/tests).
  usize tombstones() const { return tombstones_; }

  /// Longest contiguous run of occupied (full or tombstone) control
  /// slots, wrapping — an upper bound on any probe chain the table can
  /// produce. O(capacity); diagnostics/tests only.
  usize longest_occupied_run() const {
    usize longest = 0;
    usize run = 0;
    // Two passes over the array resolve the wrap-around run; runs are
    // capped at capacity when the table has no empty slot at all.
    for (usize pass = 0; pass < 2; ++pass) {
      for (const u8 state : ctrl_) {
        if (state == kEmpty) {
          longest = std::max(longest, run);
          run = 0;
        } else if (++run >= ctrl_.size()) {
          return ctrl_.size();
        }
      }
    }
    return std::max(longest, run);
  }

  // ---- iteration (unspecified order; tests and cold paths only) ------
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (usize i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == kFull) fn(slots_[i].key, slots_[i].value);
    }
  }

 private:
  static constexpr usize kNotFound = ~usize{0};
  static constexpr usize kMinCapacity = 16;

  /// Max load factor 7/8 counting tombstones (they lengthen probe
  /// chains exactly like live entries).
  static usize required_capacity(usize count) {
    if (count == 0) return 0;
    return std::bit_ceil(std::max(kMinCapacity, count + count / 7 + 1));
  }

  usize find_index(const Key& key) const {
    if (ctrl_.empty()) return kNotFound;
    const u64 mask = ctrl_.size() - 1;
    usize index = static_cast<usize>(hash_(key)) & mask;
    for (;;) {
      const u8 state = ctrl_[index];
      if (state == kFull && slots_[index].key == key) return index;
      if (state == kEmpty) return kNotFound;
      index = (index + 1) & mask;
    }
  }

  void grow_if_needed() {
    // size+tombstones is the occupied-probe count; keep it under 7/8.
    if (ctrl_.empty() ||
        (size_ + tombstones_ + 1) * 8 > ctrl_.size() * 7) {
      // When tombstones dominate, rehashing at the same capacity
      // reclaims them instead of doubling forever.
      const usize target = std::max(kMinCapacity, size_ + size_ / 2 + 1);
      rehash(std::max(required_capacity(target), ctrl_.size()));
    }
  }

  void rehash(usize new_capacity) {
    TLR_ASSERT(std::has_single_bit(new_capacity));
    // Rare structural event with no job-end summary to fold into;
    // counted directly (obs/counters.hpp aggregation contract).
    obs::count(obs::Counter::kTableRehashes);
    std::vector<u8> old_ctrl = std::move(ctrl_);
    std::vector<Slot> old_slots = std::move(slots_);
    ctrl_.assign(new_capacity, u8{kEmpty});
    slots_.clear();
    slots_.resize(new_capacity);  // (not assign: Slot may be move-only)
    tombstones_ = 0;
    const u64 mask = new_capacity - 1;
    for (usize i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] != kFull) continue;
      usize index = static_cast<usize>(hash_(old_slots[i].key)) & mask;
      while (ctrl_[index] == kFull) index = (index + 1) & mask;
      ctrl_[index] = kFull;
      slots_[index] = std::move(old_slots[i]);
    }
  }

  std::vector<u8> ctrl_;
  std::vector<Slot> slots_;
  usize size_ = 0;
  usize tombstones_ = 0;
  [[no_unique_address]] Hash hash_;
};

/// Same layout without a value array: membership testing (the
/// infinite-history reuse tables).
template <class Key, class Hash = FlatHashU64>
class FlatHashSet {
  struct Empty {};

 public:
  usize size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(usize count) { map_.reserve(count); }
  bool contains(const Key& key) const { return map_.contains(key); }

  /// Returns true if the key was newly inserted.
  bool insert(const Key& key) { return map_.try_emplace(key).second; }
  bool erase(const Key& key) { return map_.erase(key); }

  template <class Fn>
  void for_each(Fn&& fn) const {
    map_.for_each([&fn](const Key& key, const Empty&) { fn(key); });
  }

 private:
  FlatHashMap<Key, Empty, Hash> map_;
};

}  // namespace tlr
