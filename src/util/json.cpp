#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace tlr::util {

namespace {

/// Sentinel returned by object lookups for missing keys.
const Json kNullJson{};

constexpr int kMaxDepth = 256;

void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no NaN/Inf literals; the report pipeline never produces
    // them, but degrade to null rather than emit an unparsable token.
    out += "null";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  TLR_ASSERT(ec == std::errc());
  const std::string_view token(buf, static_cast<usize>(ptr - buf));
  out += token;
  // Keep a fractional marker so the value re-parses as a double
  // (to_chars prints e.g. 2.0 as "2", which would round-trip as an
  // integer and change the document's number flavour).
  if (token.find_first_of(".eE") == std::string_view::npos) out += ".0";
}

template <typename T>
void append_integer(std::string& out, T value) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  TLR_ASSERT(ec == std::errc());
  out.append(buf, ptr);
}

}  // namespace

Json Json::array() {
  Json json;
  json.kind_ = Kind::kArray;
  return json;
}

Json Json::object() {
  Json json;
  json.kind_ = Kind::kObject;
  return json;
}

bool Json::as_bool() const {
  TLR_ASSERT_MSG(kind_ == Kind::kBool, "as_bool on non-bool");
  return bool_;
}

double Json::as_double() const {
  switch (kind_) {
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kUint: return static_cast<double>(uint_);
    case Kind::kDouble: return double_;
    default:
      TLR_ASSERT_MSG(false, "as_double on non-number");
      return 0.0;
  }
}

i64 Json::as_i64() const {
  switch (kind_) {
    case Kind::kInt: return int_;
    case Kind::kUint:
      TLR_ASSERT_MSG(uint_ <= static_cast<u64>(INT64_MAX),
                     "as_i64 overflow");
      return static_cast<i64>(uint_);
    case Kind::kDouble: {
      const auto as_int = static_cast<i64>(double_);
      TLR_ASSERT_MSG(static_cast<double>(as_int) == double_,
                     "as_i64 on non-integral double");
      return as_int;
    }
    default:
      TLR_ASSERT_MSG(false, "as_i64 on non-number");
      return 0;
  }
}

u64 Json::as_u64() const {
  switch (kind_) {
    case Kind::kUint: return uint_;
    case Kind::kInt:
      TLR_ASSERT_MSG(int_ >= 0, "as_u64 on negative");
      return static_cast<u64>(int_);
    case Kind::kDouble: {
      TLR_ASSERT_MSG(double_ >= 0, "as_u64 on negative");
      const auto as_uint = static_cast<u64>(double_);
      TLR_ASSERT_MSG(static_cast<double>(as_uint) == double_,
                     "as_u64 on non-integral double");
      return as_uint;
    }
    default:
      TLR_ASSERT_MSG(false, "as_u64 on non-number");
      return 0;
  }
}

const std::string& Json::as_string() const {
  TLR_ASSERT_MSG(kind_ == Kind::kString, "as_string on non-string");
  return string_;
}

usize Json::size() const {
  switch (kind_) {
    case Kind::kArray: return array_.size();
    case Kind::kObject: return object_.size();
    default: return 0;
  }
}

Json& Json::push_back(Json value) {
  TLR_ASSERT_MSG(kind_ == Kind::kArray, "push_back on non-array");
  array_.push_back(std::move(value));
  return array_.back();
}

const Json& Json::at(usize index) const {
  TLR_ASSERT_MSG(kind_ == Kind::kArray && index < array_.size(),
                 "array index out of range");
  return array_[index];
}

Json& Json::set(std::string_view key, Json value) {
  TLR_ASSERT_MSG(kind_ == Kind::kObject, "set on non-object");
  for (auto& [existing, stored] : object_) {
    if (existing == key) {
      stored = std::move(value);
      return stored;
    }
  }
  object_.emplace_back(std::string(key), std::move(value));
  return object_.back().second;
}

bool Json::contains(std::string_view key) const {
  return find(key) != nullptr;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [existing, stored] : object_) {
    if (existing == key) return &stored;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  return found != nullptr ? *found : kNullJson;
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  TLR_ASSERT_MSG(kind_ == Kind::kObject, "items on non-object");
  return object_;
}

bool operator==(const Json& a, const Json& b) {
  if (a.is_number() && b.is_number()) {
    // Numbers compare by value across storage flavours; integral
    // flavours compare exactly.
    if (a.kind_ != Json::Kind::kDouble && b.kind_ != Json::Kind::kDouble) {
      const bool a_neg = a.kind_ == Json::Kind::kInt && a.int_ < 0;
      const bool b_neg = b.kind_ == Json::Kind::kInt && b.int_ < 0;
      if (a_neg != b_neg) return false;
      if (a_neg) return a.int_ == b.int_;
      return a.as_u64() == b.as_u64();
    }
    return a.as_double() == b.as_double();
  }
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Json::Kind::kNull: return true;
    case Json::Kind::kBool: return a.bool_ == b.bool_;
    case Json::Kind::kString: return a.string_ == b.string_;
    case Json::Kind::kArray: return a.array_ == b.array_;
    case Json::Kind::kObject: return a.object_ == b.object_;
    default: return false;  // numbers handled above
  }
}

std::string Json::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_indent = [&](int levels) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<usize>(indent * levels), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: append_integer(out, int_); break;
    case Kind::kUint: append_integer(out, uint_); break;
    case Kind::kDouble: append_double(out, double_); break;
    case Kind::kString: out += escape(string_); break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (usize i = 0; i < array_.size(); ++i) {
        if (i > 0) out += indent < 0 ? "," : ",";
        newline_indent(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (usize i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ",";
        newline_indent(depth + 1);
        out += escape(object_[i].first);
        out += indent < 0 ? ":" : ": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

// ---- parser ----------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> parse(std::string* error) {
    Json value;
    if (!parse_value(value, 0)) {
      emit(error);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      emit(error);
      return std::nullopt;
    }
    return value;
  }

 private:
  bool fail(const char* message) {
    if (error_.empty()) {
      usize line = 1, col = 1;
      for (usize i = 0; i < pos_ && i < text_.size(); ++i) {
        if (text_[i] == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
      }
      error_ = std::to_string(line) + ":" + std::to_string(col) + ": " +
               message;
    }
    return false;
  }

  void emit(std::string* error) const {
    if (error != nullptr) *error = error_;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected, const char* message) {
    if (pos_ >= text_.size() || text_[pos_] != expected) {
      return fail(message);
    }
    ++pos_;
    return true;
  }

  bool literal(std::string_view word, Json value, Json& out) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    out = std::move(value);
    return true;
  }

  bool parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n': return literal("null", Json(), out);
      case 't': return literal("true", Json(true), out);
      case 'f': return literal("false", Json(false), out);
      case '"': return parse_string(out);
      case '[': return parse_array(out, depth);
      case '{': return parse_object(out, depth);
      default: return parse_number(out);
    }
  }

  bool parse_number(Json& out) {
    const usize start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return fail("invalid number");
    const char* first = token.data();
    const char* last = token.data() + token.size();
    if (!is_double) {
      if (token[0] == '-') {
        i64 value = 0;
        const auto [ptr, ec] = std::from_chars(first, last, value);
        if (ec == std::errc() && ptr == last) {
          out = Json(value);
          return true;
        }
      } else {
        u64 value = 0;
        const auto [ptr, ec] = std::from_chars(first, last, value);
        if (ec == std::errc() && ptr == last) {
          out = Json(value);
          return true;
        }
      }
      // Out-of-range integer: fall through to double.
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) return fail("invalid number");
    out = Json(value);
    return true;
  }

  static void append_utf8(std::string& out, u32 code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code_point >> 18));
      out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  bool parse_hex4(u32& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    u32 value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<usize>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<u32>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<u32>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<u32>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    out = value;
    return true;
  }

  bool parse_string(Json& out) {
    if (!consume('"', "expected string")) return false;
    std::string value;
    for (;;) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        value += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': value += '"'; break;
        case '\\': value += '\\'; break;
        case '/': value += '/'; break;
        case 'b': value += '\b'; break;
        case 'f': value += '\f'; break;
        case 'n': value += '\n'; break;
        case 'r': value += '\r'; break;
        case 't': value += '\t'; break;
        case 'u': {
          u32 code_point = 0;
          if (!parse_hex4(code_point)) return false;
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("unpaired surrogate");
            }
            pos_ += 2;
            u32 low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("unpaired surrogate");
            }
            code_point =
                0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(value, code_point);
          break;
        }
        default: return fail("invalid escape character");
      }
    }
    out = Json(std::move(value));
    return true;
  }

  bool parse_array(Json& out, int depth) {
    if (!consume('[', "expected array")) return false;
    out = Json::array();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Json element;
      if (!parse_value(element, depth + 1)) return false;
      out.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(Json& out, int depth) {
    if (!consume('{', "expected object")) return false;
    out = Json::object();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      Json key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':', "expected ':' after object key")) return false;
      Json value;
      if (!parse_value(value, depth + 1)) return false;
      out.set(key.as_string(), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  usize pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace tlr::util
