// Hashing utilities shared by the reuse tables.
//
// Input signatures of instructions and traces are (location, value)
// tuples; the infinite-history limit study keys hash sets by a 128-bit
// digest so that collisions are statistically impossible at our stream
// sizes (< 2^-64 per pair) while storage stays O(16 bytes) per distinct
// input instead of the full tuple.
#pragma once

#include <functional>

#include "util/types.hpp"

namespace tlr {

/// Strong 64-bit mixer (Stafford variant 13 of the MurmurHash3 finalizer).
constexpr u64 mix64(u64 x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// 128-bit accumulating digest. Order-sensitive: feeding the same words
/// in a different order yields a different digest, which is what input
/// *sequences* (paper appendix: IL(T)/IV(T) are sequences) require.
class Digest128 {
 public:
  constexpr void feed(u64 word) {
    lo_ = mix64(lo_ ^ word);
    hi_ = mix64(hi_ + word + 0x9e3779b97f4a7c15ULL);
  }

  constexpr u64 lo() const { return lo_; }
  constexpr u64 hi() const { return hi_; }

  friend constexpr bool operator==(const Digest128&, const Digest128&) =
      default;

 private:
  u64 lo_ = 0x6a09e667f3bcc908ULL;
  u64 hi_ = 0xbb67ae8584caa73bULL;
};

struct Digest128Hash {
  usize operator()(const Digest128& d) const noexcept {
    return static_cast<usize>(d.lo() ^ mix64(d.hi()));
  }
};

/// Combine helper for composite keys in ordinary hash maps.
constexpr u64 hash_combine(u64 seed, u64 value) {
  return mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

}  // namespace tlr
