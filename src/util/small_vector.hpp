// SmallVector<T, N>: a vector with inline storage for N elements.
//
// Trace live-in/live-out sets are tiny (the realistic RTM caps them at 8
// registers + 4 memory values), and the RTM simulator creates and
// destroys millions of them; inline storage removes the allocation from
// the hot path. Only the operations the library needs are provided.
#pragma once

#include <algorithm>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace tlr {

template <typename T, usize N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is specialised for trivially copyable "
                "payloads (location/value records)");

 public:
  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) { copy_from(other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear_storage();
      copy_from(other);
    }
    return *this;
  }

  SmallVector(SmallVector&& other) noexcept { move_from(std::move(other)); }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      clear_storage();
      move_from(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { clear_storage(); }

  void push_back(const T& value) {
    if (size_ == capacity_) grow();
    data()[size_++] = value;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    push_back(T{std::forward<Args>(args)...});
    return back();
  }

  void pop_back() {
    TLR_ASSERT(size_ > 0);
    --size_;
  }

  void clear() { size_ = 0; }

  void resize(usize n) {
    while (capacity_ < n) grow();
    if (n > size_) std::fill(data() + size_, data() + n, T{});
    size_ = n;
  }

  T& operator[](usize i) {
    TLR_ASSERT(i < size_);
    return data()[i];
  }
  const T& operator[](usize i) const {
    TLR_ASSERT(i < size_);
    return data()[i];
  }

  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  T* data() { return heap_ ? heap_ : reinterpret_cast<T*>(inline_); }
  const T* data() const {
    return heap_ ? heap_ : reinterpret_cast<const T*>(inline_);
  }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  usize size() const { return size_; }
  bool empty() const { return size_ == 0; }
  usize capacity() const { return capacity_; }
  bool on_heap() const { return heap_ != nullptr; }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  void grow() {
    const usize new_cap = capacity_ * 2;
    T* fresh = new T[new_cap];
    std::copy(data(), data() + size_, fresh);
    if (heap_) delete[] heap_;
    heap_ = fresh;
    capacity_ = new_cap;
  }

  void copy_from(const SmallVector& other) {
    // Bulk copy: trace live-in/out sets are copied millions of times on
    // the RTM hot paths, and per-element push_back (a capacity branch
    // per element) showed up in profiles. T is trivially copyable, so
    // std::copy lowers to memmove.
    while (capacity_ < other.size_) grow();
    std::copy(other.data(), other.data() + other.size_, data());
    size_ = other.size_;
  }

  void move_from(SmallVector&& other) {
    if (other.heap_) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      std::copy(other.data(), other.data() + other.size_,
                reinterpret_cast<T*>(inline_));
      size_ = other.size_;
      other.size_ = 0;
    }
  }

  void clear_storage() {
    if (heap_) {
      delete[] heap_;
      heap_ = nullptr;
      capacity_ = N;
    }
    size_ = 0;
  }

  alignas(T) unsigned char inline_[sizeof(T) * N];
  T* heap_ = nullptr;
  usize size_ = 0;
  usize capacity_ = N;
};

}  // namespace tlr
