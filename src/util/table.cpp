#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace tlr {

void TextTable::set_columns(std::vector<std::string> headers) {
  headers_ = std::move(headers);
}

void TextTable::begin_row() { cells_.emplace_back(); }

void TextTable::add_cell(std::string text) {
  TLR_ASSERT_MSG(!cells_.empty(), "begin_row() before add_cell()");
  cells_.back().push_back(std::move(text));
}

void TextTable::add_number(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  add_cell(buf);
}

void TextTable::add_integer(u64 value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  add_cell(buf);
}

void TextTable::add_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  add_cell(buf);
}

const std::string& TextTable::cell(usize row, usize col) const {
  TLR_ASSERT(row < cells_.size());
  TLR_ASSERT(col < cells_[row].size());
  return cells_[row][col];
}

void TextTable::render(std::ostream& os) const {
  std::vector<usize> widths(headers_.size(), 0);
  for (usize c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : cells_) {
    for (usize c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  os << "== " << title_ << " ==\n";
  auto pad = [&](const std::string& s, usize w) {
    os << s;
    for (usize i = s.size(); i < w; ++i) os << ' ';
  };
  for (usize c = 0; c < headers_.size(); ++c) {
    if (c) os << "  ";
    pad(headers_[c], widths[c]);
  }
  os << '\n';
  for (usize c = 0; c < headers_.size(); ++c) {
    if (c) os << "  ";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : cells_) {
    for (usize c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      pad(row[c], c < widths.size() ? widths[c] : row[c].size());
    }
    os << '\n';
  }
}

void TextTable::render_csv(std::ostream& os) const {
  os << "# " << title_ << '\n';
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (usize c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : cells_) emit_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  render(oss);
  return oss.str();
}

}  // namespace tlr
