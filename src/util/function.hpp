// SmallFunction: a move-only `void()` callable with inline storage.
//
// The thread pool enqueues one task per parallel_for index; wrapping
// each tiny lambda in std::function heap-allocates per task (libstdc++
// only inlines trivially-copyable callables up to two words). This
// wrapper stores any callable up to kInlineBytes in the object itself
// — comfortably covering the pool's `[&fn, i]` closures — and only
// falls back to the heap beyond that. Move-only on purpose: tasks own
// their captures and are invoked exactly once from one thread, so
// copyability would only force std::function's copy machinery back in.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace tlr {

class SmallFunction {
  static constexpr usize kInlineBytes = 48;

  /// Per-callable-type operation table (manual vtable: one static
  /// instance per F, no RTTI, no virtual dispatch on the hot path
  /// beyond a single indirect call).
  struct Ops {
    void (*call)(void* payload);
    /// Move-construct the payload into `dst` storage and destroy the
    /// source (used when the SmallFunction object itself moves).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* payload);
  };

  template <class F>
  static constexpr bool kFitsInline =
      sizeof(F) <= kInlineBytes && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <class F>
  struct InlineOps {
    static void call(void* payload) { (*static_cast<F*>(payload))(); }
    static void relocate(void* dst, void* src) {
      F* from = static_cast<F*>(src);
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void destroy(void* payload) { static_cast<F*>(payload)->~F(); }
    static constexpr Ops ops{call, relocate, destroy};
  };

  template <class F>
  struct HeapOps {
    // Payload is F*, stored by value in the inline buffer.
    static void call(void* payload) { (**static_cast<F**>(payload))(); }
    static void relocate(void* dst, void* src) {
      *static_cast<F**>(dst) = *static_cast<F**>(src);
    }
    static void destroy(void* payload) { delete *static_cast<F**>(payload); }
    static constexpr Ops ops{call, relocate, destroy};
  };

 public:
  SmallFunction() = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction>>>
  SmallFunction(F&& fn) {  // NOLINT: implicit from callables, like std::function
    using Decayed = std::decay_t<F>;
    if constexpr (kFitsInline<Decayed>) {
      ::new (storage_) Decayed(std::forward<F>(fn));
      ops_ = &InlineOps<Decayed>::ops;
    } else {
      *reinterpret_cast<Decayed**>(storage_) =
          new Decayed(std::forward<F>(fn));
      ops_ = &HeapOps<Decayed>::ops;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    TLR_ASSERT_MSG(ops_ != nullptr, "calling an empty SmallFunction");
    ops_->call(storage_);
  }

 private:
  void move_from(SmallFunction& other) {
    if (other.ops_ == nullptr) return;
    ops_ = other.ops_;
    ops_->relocate(storage_, other.storage_);
    other.ops_ = nullptr;
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace tlr
