#include "core/profile.hpp"

#include <array>

namespace tlr::core {

SuiteConfig ScaleProfile::config_for(std::string_view workload) const {
  SuiteConfig config = base;
  for (const Override& entry : overrides) {
    if (entry.workload == workload) {
      config.skip = entry.skip;
      config.length = entry.length;
      break;
    }
  }
  return config;
}

ScaleProfile ScaleProfile::laptop() {
  ScaleProfile profile;
  profile.name = "laptop";
  profile.base = SuiteConfig{};  // skip 50K / measure 400K (DESIGN.md §6)
  return profile;
}

ScaleProfile ScaleProfile::ci() {
  ScaleProfile profile;
  profile.name = "ci";
  profile.base.skip = 10'000;
  profile.base.length = 80'000;
  // The table-driven analogs with the largest working sets (go's board
  // tables, fpppp's coefficient blocks) fill their reuse tables the
  // slowest; give them the laptop warm-up so the short CI measure
  // window still starts from steady state.
  profile.overrides.push_back({"go", 50'000, 80'000});
  profile.overrides.push_back({"fpppp", 50'000, 80'000});
  return profile;
}

ScaleProfile ScaleProfile::paper() {
  ScaleProfile profile;
  profile.name = "paper";
  profile.base.skip = 25'000'000;
  profile.base.length = 50'000'000;
  return profile;
}

ScaleProfile ScaleProfile::custom(const SuiteConfig& config) {
  ScaleProfile profile;
  profile.name = "custom";
  profile.base = config;
  return profile;
}

std::optional<ScaleProfile> ScaleProfile::named(std::string_view name) {
  if (name == "laptop") return laptop();
  if (name == "ci") return ci();
  if (name == "paper") return paper();
  return std::nullopt;
}

std::span<const std::string_view> ScaleProfile::names() {
  static constexpr std::array<std::string_view, 3> kNames = {
      "laptop", "ci", "paper"};
  return kNames;
}

}  // namespace tlr::core
