#include "core/shard.hpp"

#include <chrono>
#include <mutex>

#include "core/engine.hpp"
#include "obs/trace.hpp"
#include "spec/predictor.hpp"
#include "util/assert.hpp"
#include "workloads/workload.hpp"

namespace tlr::core {

using util::Json;

// ---- the plan --------------------------------------------------------

ShardPlan ShardPlan::enumerate(const SectionSelection& sections,
                               std::span<const std::string> workload_names) {
  ShardPlan plan;
  plan.sections_ = sections;
  plan.workloads_.assign(workload_names.begin(), workload_names.end());
  if (plan.workloads_.empty()) {
    for (const std::string_view name : workloads::workload_names()) {
      plan.workloads_.emplace_back(name);
    }
  }
  const auto add_section = [&](std::string_view section) {
    for (const std::string& workload : plan.workloads_) {
      plan.keys_.push_back({workload, std::string(section)});
    }
  };
  add_section(kShardSectionSuite);
  if (sections.fig9) add_section(kShardSectionFig9);
  if (sections.fig10) add_section(kShardSectionFig10);
  return plan;
}

std::vector<ShardKey> ShardPlan::slice(usize index, usize count) const {
  TLR_ASSERT_MSG(count >= 1 && index >= 1 && index <= count,
                 "shard index must be in [1, count]");
  std::vector<ShardKey> keys;
  for (usize i = index - 1; i < keys_.size(); i += count) {
    keys.push_back(keys_[i]);
  }
  return keys;
}

std::string shard_file_name(usize index, usize count) {
  std::string digits = std::to_string(count);
  std::string padded = std::to_string(index);
  while (padded.size() < digits.size()) padded.insert(0, 1, '0');
  return "shard-" + padded + "-of-" + digits + ".json";
}

std::vector<spec::PredictorConfig> ShardRunOptions::resolved_predictors()
    const {
  return fig10.predictors.empty() ? fig10_predictors() : fig10.predictors;
}

// ---- partial serialization -------------------------------------------

namespace {

Json strings_to_json(std::span<const std::string> values) {
  Json json = Json::array();
  for (const std::string& value : values) json.push_back(Json(value));
  return json;
}

Json selection_to_json(const SectionSelection& sections) {
  Json json = Json::object();
  json.set("series", sections.series);
  json.set("fig9", sections.fig9);
  json.set("fig10", sections.fig10);
  return json;
}

Json keys_to_json(std::span<const ShardKey> keys) {
  Json json = Json::array();
  for (const ShardKey& key : keys) {
    Json item = Json::object();
    item.set("workload", key.workload);
    item.set("section", key.section);
    json.push_back(std::move(item));
  }
  return json;
}

/// The raw-block headers: the *complete* experiment shape every
/// partial of a run must agree on — not just row labels but every
/// parameter that changes the numbers (predictor confidence shape,
/// trace-collection heuristic, reuse-test kind), so partials computed
/// under different configurations can never silently merge.
Json fig9_header_json(const ShardRunOptions& options) {
  Json json = Json::object();
  Json heuristics = Json::array();
  for (const Fig9Heuristic& h : fig9_heuristics()) {
    heuristics.push_back(Json(h.label));
  }
  json.set("heuristics", std::move(heuristics));
  Json geometries = Json::array();
  for (const auto& [label, geometry] : fig9_geometries()) {
    geometries.push_back(Json(label));
  }
  json.set("geometries", std::move(geometries));
  json.set("test", u64{static_cast<u64>(options.fig9.test)});
  return json;
}

Json fig10_header_json(const ShardRunOptions& options) {
  Json json = Json::object();
  Json predictors = Json::array();
  for (const spec::PredictorConfig& config : options.resolved_predictors()) {
    Json predictor = Json::object();
    predictor.set("name", spec::predictor_name(config.kind));
    predictor.set("confidence_bits", u64{config.confidence_bits});
    predictor.set("confidence_threshold", u64{config.confidence_threshold});
    predictor.set("initial_confidence", u64{config.initial_confidence});
    predictors.push_back(std::move(predictor));
  }
  json.set("predictors", std::move(predictors));
  Json penalties = Json::array();
  for (const Cycle penalty : options.fig10.penalties) {
    penalties.push_back(Json(u64{penalty}));
  }
  json.set("penalties", std::move(penalties));
  Json geometries = Json::array();
  for (const auto& [label, geometry] : fig9_geometries()) {
    geometries.push_back(Json(label));
  }
  json.set("geometries", std::move(geometries));
  json.set("heuristic", u64{static_cast<u64>(options.fig10.heuristic)});
  json.set("fixed_n", u64{options.fig10.fixed_n});
  return json;
}

Json fig9_cells_to_json(const std::vector<std::vector<Fig9Cell>>& cells) {
  Json fractions = Json::array();
  Json sizes = Json::array();
  for (const auto& row : cells) {
    Json fraction_row = Json::array();
    Json size_row = Json::array();
    for (const Fig9Cell& cell : row) {
      fraction_row.push_back(Json(cell.reuse_fraction));
      size_row.push_back(Json(cell.avg_trace_size));
    }
    fractions.push_back(std::move(fraction_row));
    sizes.push_back(std::move(size_row));
  }
  Json json = Json::object();
  json.set("reuse_fraction", std::move(fractions));
  json.set("avg_trace_size", std::move(sizes));
  return json;
}

Json fig10_cells_to_json(
    const std::vector<std::vector<Fig10WorkloadCell>>& cells) {
  Json fractions = Json::array();
  Json correct = Json::array();
  Json attempts = Json::array();
  Json rates = Json::array();
  Json speedups = Json::array();
  for (const auto& row : cells) {
    Json fraction_row = Json::array();
    Json correct_row = Json::array();
    Json attempts_row = Json::array();
    Json rate_row = Json::array();
    Json speedup_row = Json::array();
    for (const Fig10WorkloadCell& cell : row) {
      fraction_row.push_back(Json(cell.reuse_fraction));
      correct_row.push_back(Json(u64{cell.correct}));
      attempts_row.push_back(Json(u64{cell.attempts}));
      rate_row.push_back(Json(cell.misspec_rate));
      Json per_penalty = Json::array();
      for (const double speedup : cell.speedups) {
        per_penalty.push_back(Json(speedup));
      }
      speedup_row.push_back(std::move(per_penalty));
    }
    fractions.push_back(std::move(fraction_row));
    correct.push_back(std::move(correct_row));
    attempts.push_back(std::move(attempts_row));
    rates.push_back(std::move(rate_row));
    speedups.push_back(std::move(speedup_row));
  }
  Json json = Json::object();
  json.set("reuse_fraction", std::move(fractions));
  json.set("correct", std::move(correct));
  json.set("attempts", std::move(attempts));
  json.set("misspec_rate", std::move(rates));
  // speedup[p][g][q]: predictor p, geometry g, penalty q.
  json.set("speedup", std::move(speedups));
  return json;
}

// ---- partial parsing -------------------------------------------------

bool note(std::string* why, std::string message) {
  if (why != nullptr) *why = std::move(message);
  return false;
}

// Partial content is untrusted bytes: every numeric read below must
// kind-check via json_is_u64 (report.hpp) before touching the
// asserting accessors (as_u64 aborts on negatives and non-integral
// doubles by design).

struct ShardBlock {
  usize index = 0;
  usize count = 0;
  SectionSelection sections;
  std::vector<std::string> workloads;
  std::vector<ShardKey> keys;
};

bool parse_shard_block(const Json& partial, ShardBlock& out,
                       std::string* why) {
  const Json* schema = partial.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kReportSchema) {
    return note(why, "missing or unknown schema (want \"" +
                         std::string(kReportSchema) + "\")");
  }
  const Json* shard = partial.find("shard");
  if (shard == nullptr || !shard->is_object()) {
    return note(why, "not a partial report: no shard block");
  }
  const Json* index = shard->find("index");
  const Json* count = shard->find("count");
  if (index == nullptr || count == nullptr || !json_is_u64(*index) ||
      !json_is_u64(*count)) {
    return note(why, "shard block lacks a valid index/count");
  }
  out.index = index->as_u64();
  out.count = count->as_u64();
  if (out.count < 1 || out.count > kMaxShardCount || out.index < 1 ||
      out.index > out.count) {
    return note(why, "shard index " + std::to_string(out.index) + "/" +
                         std::to_string(out.count) + " out of range");
  }
  const Json* figures = shard->find("figures");
  if (figures == nullptr || !figures->is_object() ||
      !figures->at("series").is_bool() || !figures->at("fig9").is_bool() ||
      !figures->at("fig10").is_bool()) {
    return note(why, "shard block lacks the figures selection");
  }
  out.sections.series = figures->at("series").as_bool();
  out.sections.fig9 = figures->at("fig9").as_bool();
  out.sections.fig10 = figures->at("fig10").as_bool();
  const Json* workloads = shard->find("workloads");
  if (workloads == nullptr || !workloads->is_array()) {
    return note(why, "shard block lacks the workload list");
  }
  for (usize i = 0; i < workloads->size(); ++i) {
    if (!workloads->at(i).is_string()) {
      return note(why, "shard workload list holds a non-string");
    }
    out.workloads.push_back(workloads->at(i).as_string());
  }
  const Json* keys = shard->find("keys");
  if (keys == nullptr || !keys->is_array()) {
    return note(why, "shard block lacks its key list");
  }
  for (usize i = 0; i < keys->size(); ++i) {
    const Json& item = keys->at(i);
    if (!item.is_object() || !item.at("workload").is_string() ||
        !item.at("section").is_string()) {
      return note(why, "shard key list holds a malformed key");
    }
    out.keys.push_back(
        {item.at("workload").as_string(), item.at("section").as_string()});
  }
  return true;
}

std::optional<std::vector<std::vector<Fig9Cell>>> fig9_cells_from_json(
    const Json& json) {
  const usize heuristics = fig9_heuristics().size();
  const usize geometries = fig9_geometries().size();
  const Json* fractions = json.find("reuse_fraction");
  const Json* sizes = json.find("avg_trace_size");
  if (fractions == nullptr || sizes == nullptr || !fractions->is_array() ||
      !sizes->is_array() || fractions->size() != heuristics ||
      sizes->size() != heuristics) {
    return std::nullopt;
  }
  std::vector<std::vector<Fig9Cell>> cells(
      heuristics, std::vector<Fig9Cell>(geometries));
  for (usize h = 0; h < heuristics; ++h) {
    const Json& fraction_row = fractions->at(h);
    const Json& size_row = sizes->at(h);
    if (!fraction_row.is_array() || !size_row.is_array() ||
        fraction_row.size() != geometries || size_row.size() != geometries) {
      return std::nullopt;
    }
    for (usize g = 0; g < geometries; ++g) {
      if (!fraction_row.at(g).is_number() || !size_row.at(g).is_number()) {
        return std::nullopt;
      }
      cells[h][g].reuse_fraction = fraction_row.at(g).as_double();
      cells[h][g].avg_trace_size = size_row.at(g).as_double();
    }
  }
  return cells;
}

std::optional<std::vector<std::vector<Fig10WorkloadCell>>>
fig10_cells_from_json(const Json& json, usize predictors, usize penalties) {
  const usize geometries = fig9_geometries().size();
  const Json* fractions = json.find("reuse_fraction");
  const Json* correct = json.find("correct");
  const Json* attempts = json.find("attempts");
  const Json* rates = json.find("misspec_rate");
  const Json* speedups = json.find("speedup");
  for (const Json* matrix : {fractions, correct, attempts, rates, speedups}) {
    if (matrix == nullptr || !matrix->is_array() ||
        matrix->size() != predictors) {
      return std::nullopt;
    }
  }
  std::vector<std::vector<Fig10WorkloadCell>> cells(
      predictors, std::vector<Fig10WorkloadCell>(geometries));
  for (usize p = 0; p < predictors; ++p) {
    for (const Json* matrix :
         {fractions, correct, attempts, rates, speedups}) {
      if (!matrix->at(p).is_array() || matrix->at(p).size() != geometries) {
        return std::nullopt;
      }
    }
    for (usize g = 0; g < geometries; ++g) {
      Fig10WorkloadCell& cell = cells[p][g];
      const Json& frac = fractions->at(p).at(g);
      const Json& corr = correct->at(p).at(g);
      const Json& att = attempts->at(p).at(g);
      const Json& rate = rates->at(p).at(g);
      const Json& per_penalty = speedups->at(p).at(g);
      if (!frac.is_number() || !json_is_u64(corr) || !json_is_u64(att) ||
          !rate.is_number() || !per_penalty.is_array() ||
          per_penalty.size() != penalties) {
        return std::nullopt;
      }
      cell.reuse_fraction = frac.as_double();
      cell.correct = corr.as_u64();
      cell.attempts = att.as_u64();
      cell.misspec_rate = rate.as_double();
      for (usize q = 0; q < penalties; ++q) {
        if (!per_penalty.at(q).is_number()) return std::nullopt;
        cell.speedups.push_back(per_penalty.at(q).as_double());
      }
    }
  }
  return cells;
}

}  // namespace

// ---- running shards --------------------------------------------------

namespace {

/// Per-shard in-flight state for one batch run.
struct ShardSlot {
  usize index = 0;
  std::vector<ShardKey> keys;
  usize jobs_remaining = 0;
  double wall_seconds = 0.0;  // summed job wall time
  std::vector<WorkloadMetrics> suite_results;
  std::vector<std::vector<std::vector<Fig9Cell>>> fig9_results;      // [k][h][g]
  std::vector<std::vector<std::vector<Fig10WorkloadCell>>> fig10_results;
};

Json assemble_partial(const ShardSlot& slot, usize count,
                      const ScaleProfile& profile, const ShardPlan& plan,
                      const ShardRunOptions& options, ReportMeta meta) {
  meta.wall_seconds = slot.wall_seconds;

  Json partial = Json::object();
  partial.set("schema", kReportSchema);
  partial.set("meta", meta_to_json(meta));

  Json shard = Json::object();
  shard.set("index", u64{slot.index});
  shard.set("count", u64{count});
  shard.set("figures", selection_to_json(plan.sections()));
  shard.set("workloads", strings_to_json(plan.workloads()));
  shard.set("keys", keys_to_json(slot.keys));
  partial.set("shard", std::move(shard));

  partial.set("profile", profile_to_json(profile));
  partial.set("options", options_to_json(options.metrics));

  Json suite_json = Json::array();
  Json fig9_workloads = Json::object();
  Json fig10_workloads = Json::object();
  for (usize k = 0; k < slot.keys.size(); ++k) {
    if (slot.keys[k].section == kShardSectionSuite) {
      suite_json.push_back(workload_to_json(slot.suite_results[k]));
    } else if (slot.keys[k].section == kShardSectionFig9) {
      fig9_workloads.set(slot.keys[k].workload,
                         fig9_cells_to_json(slot.fig9_results[k]));
    } else {
      fig10_workloads.set(slot.keys[k].workload,
                          fig10_cells_to_json(slot.fig10_results[k]));
    }
  }
  partial.set("workloads", std::move(suite_json));

  Json raw = Json::object();
  if (fig9_workloads.size() > 0) {
    Json fig9_json = fig9_header_json(options);
    fig9_json.set("workloads", std::move(fig9_workloads));
    raw.set("fig9", std::move(fig9_json));
  }
  if (fig10_workloads.size() > 0) {
    Json fig10_json = fig10_header_json(options);
    fig10_json.set("workloads", std::move(fig10_workloads));
    raw.set("fig10", std::move(fig10_json));
  }
  partial.set("raw", std::move(raw));
  return partial;
}

}  // namespace

void run_shard_partials(
    StudyEngine& engine, const ScaleProfile& profile, const ShardPlan& plan,
    std::span<const usize> indices, usize count,
    const ShardRunOptions& options, const ReportMeta& meta,
    const std::function<void(usize index, Json partial)>& on_partial,
    const ShardProgress& progress) {
  using Clock = std::chrono::steady_clock;
  const auto heuristics = fig9_heuristics();
  const std::vector<spec::PredictorConfig> predictors =
      options.resolved_predictors();

  // Flatten every requested shard's keys into one job list at the
  // monolithic run's granularity, with fixed result slots per key —
  // one fan-out saturates the pool even when individual shards hold a
  // single job.
  struct JobRef {
    usize slot;
    usize key;
    usize sub;  // heuristic / predictor row; 0 for suite keys
  };
  std::vector<ShardSlot> slots(indices.size());
  std::vector<JobRef> jobs;
  for (usize s = 0; s < indices.size(); ++s) {
    ShardSlot& slot = slots[s];
    slot.index = indices[s];
    slot.keys = plan.slice(slot.index, count);
    slot.suite_results.resize(slot.keys.size());
    slot.fig9_results.resize(slot.keys.size());
    slot.fig10_results.resize(slot.keys.size());
    for (usize k = 0; k < slot.keys.size(); ++k) {
      if (slot.keys[k].section == kShardSectionSuite) {
        jobs.push_back({s, k, 0});
      } else if (slot.keys[k].section == kShardSectionFig9) {
        slot.fig9_results[k].resize(heuristics.size());
        for (usize h = 0; h < heuristics.size(); ++h) {
          jobs.push_back({s, k, h});
        }
      } else {
        TLR_ASSERT_MSG(slot.keys[k].section == kShardSectionFig10,
                       "unknown shard section");
        slot.fig10_results[k].resize(predictors.size());
        for (usize p = 0; p < predictors.size(); ++p) {
          jobs.push_back({s, k, p});
        }
      }
    }
  }
  for (const JobRef& job : jobs) ++slots[job.slot].jobs_remaining;

  // Empty shards (count beyond the plan size) complete immediately.
  std::mutex mutex;  // guards progress counters and on_partial
  usize done = 0;
  for (ShardSlot& slot : slots) {
    if (slot.jobs_remaining == 0 && on_partial) {
      on_partial(slot.index,
                 assemble_partial(slot, count, profile, plan, options, meta));
    }
  }

  engine.parallel_for(jobs.size(), [&](usize j) {
    obs::Span span("shard_job", "shard");
    const JobRef& job = jobs[j];
    ShardSlot& slot = slots[job.slot];
    const ShardKey& key = slot.keys[job.key];
    const SuiteConfig config = profile.config_for(key.workload);
    const auto start = Clock::now();
    std::string label = key.workload + " " + key.section;
    if (key.section == kShardSectionSuite) {
      slot.suite_results[job.key] =
          engine.analyze(key.workload, config, options.metrics);
    } else if (key.section == kShardSectionFig9) {
      slot.fig9_results[job.key][job.sub] = fig9_workload_heuristic(
          engine, config, key.workload, heuristics[job.sub],
          options.fig9.test);
      label += " " + heuristics[job.sub].label;
    } else {
      slot.fig10_results[job.key][job.sub] = fig10_workload_predictor(
          engine, config, key.workload, predictors[job.sub], options.fig10);
      label += " ";
      label += spec::predictor_name(predictors[job.sub].kind);
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    span.set_arg("key", label);

    const std::lock_guard<std::mutex> lock(mutex);
    slot.wall_seconds += elapsed;
    if (progress) progress(label, ++done, jobs.size());
    if (--slot.jobs_remaining == 0 && on_partial) {
      // All of this shard's slots are final (their writers finished
      // before the counter hit zero under this lock).
      on_partial(slot.index,
                 assemble_partial(slot, count, profile, plan, options, meta));
    }
  });
}

Json run_shard_partial(StudyEngine& engine, const ScaleProfile& profile,
                       const ShardPlan& plan, usize index, usize count,
                       const ShardRunOptions& options, ReportMeta meta,
                       const ShardProgress& progress) {
  Json partial;
  const usize indices[] = {index};
  run_shard_partials(
      engine, profile, plan, indices, count, options, meta,
      [&](usize, Json assembled) { partial = std::move(assembled); },
      progress);
  return partial;
}

// ---- validation ------------------------------------------------------

bool validate_partial(const Json& partial, const ScaleProfile& profile,
                      const ShardRunOptions& options, const ShardPlan& plan,
                      usize index, usize count, std::string* why) {
  if (!partial.is_object()) return note(why, "not a JSON object");
  ShardBlock block;
  if (!parse_shard_block(partial, block, why)) return false;
  if (block.index != index || block.count != count) {
    return note(why, "shard " + std::to_string(block.index) + "/" +
                         std::to_string(block.count) + ", expected " +
                         std::to_string(index) + "/" +
                         std::to_string(count));
  }
  if (block.sections != plan.sections()) {
    return note(why, "figure selection differs from this run");
  }
  if (block.workloads != plan.workloads()) {
    return note(why, "workload list differs from this run");
  }
  const Json* meta = partial.find("meta");
  if (meta == nullptr || !meta->is_object() ||
      !meta->at("git_sha").is_string()) {
    return note(why, "meta block lacks git_sha");
  }
  if (meta->at("git_sha").as_string() != report_git_sha()) {
    return note(why, "git_sha " + meta->at("git_sha").as_string() +
                         " != this build (" +
                         std::string(report_git_sha()) + ")");
  }
  const Json* profile_json = partial.find("profile");
  if (profile_json == nullptr || *profile_json != profile_to_json(profile)) {
    return note(why, "profile differs from this run");
  }
  const Json* options_json = partial.find("options");
  if (options_json == nullptr ||
      *options_json != options_to_json(options.metrics)) {
    return note(why, "metric options differ from this run");
  }

  const std::vector<ShardKey> expected_keys = plan.slice(index, count);
  if (block.keys != expected_keys) {
    return note(why, "key list is not slice " + std::to_string(index) + "/" +
                         std::to_string(count) + " of the plan");
  }

  // Content coverage, at the validity level the merge parse enforces.
  const Json* workloads = partial.find("workloads");
  const Json* raw = partial.find("raw");
  if (workloads == nullptr || !workloads->is_array() || raw == nullptr ||
      !raw->is_object()) {
    return note(why, "partial lacks workloads[]/raw blocks");
  }
  const usize predictors = options.resolved_predictors().size();
  const usize penalties = options.fig10.penalties.size();
  for (const ShardKey& key : expected_keys) {
    if (key.section == kShardSectionSuite) {
      bool found = false;
      for (usize i = 0; i < workloads->size() && !found; ++i) {
        const Json& entry = workloads->at(i);
        found = entry.is_object() && entry.at("name").is_string() &&
                entry.at("name").as_string() == key.workload &&
                workload_from_json(entry).has_value();
      }
      if (!found) {
        return note(why, "suite metrics for " + key.workload +
                             " missing or malformed");
      }
    } else if (key.section == kShardSectionFig9) {
      const Json* fig9 = raw->find("fig9");
      const Json expected_header = fig9_header_json(options);
      if (fig9 == nullptr ||
          fig9->at("heuristics") != expected_header.at("heuristics") ||
          fig9->at("geometries") != expected_header.at("geometries") ||
          fig9->at("test") != expected_header.at("test") ||
          fig9->find("workloads") == nullptr) {
        return note(why, "raw fig9 block missing or mismatched");
      }
      const Json* cells = fig9->at("workloads").find(key.workload);
      if (cells == nullptr || !fig9_cells_from_json(*cells).has_value()) {
        return note(why, "raw fig9 cells for " + key.workload +
                             " missing or malformed");
      }
    } else {
      const Json* fig10 = raw->find("fig10");
      const Json expected_header = fig10_header_json(options);
      if (fig10 == nullptr ||
          fig10->at("predictors") != expected_header.at("predictors") ||
          fig10->at("penalties") != expected_header.at("penalties") ||
          fig10->at("heuristic") != expected_header.at("heuristic") ||
          fig10->at("fixed_n") != expected_header.at("fixed_n") ||
          fig10->find("workloads") == nullptr) {
        return note(why, "raw fig10 block missing or mismatched");
      }
      const Json* cells = fig10->at("workloads").find(key.workload);
      if (cells == nullptr ||
          !fig10_cells_from_json(*cells, predictors, penalties)
               .has_value()) {
        return note(why, "raw fig10 cells for " + key.workload +
                             " missing or malformed");
      }
    }
  }
  return true;
}

// ---- merging ---------------------------------------------------------

namespace {

void merge_error(std::vector<std::string>* errors, std::string message) {
  if (errors != nullptr) errors->push_back(std::move(message));
}

/// How error messages cite partial `i`: its source file when the
/// caller provided one, the bare positional index otherwise (in-memory
/// merges, tests).
std::string partial_label(usize i, std::span<const std::string> labels) {
  if (i < labels.size() && !labels[i].empty()) {
    return "partial " + labels[i];
  }
  return "partial " + std::to_string(i);
}

}  // namespace

std::optional<Json> merge_partials(std::span<const Json> partials,
                                   std::vector<std::string>* errors,
                                   std::span<const std::string> labels) {
  obs::Span span("merge", "shard");
  if (partials.empty()) {
    merge_error(errors, "no partials to merge");
    return std::nullopt;
  }

  // Parse every shard block and pin provenance against the first
  // partial: a merged report must come from ONE run configuration.
  std::vector<ShardBlock> blocks(partials.size());
  for (usize i = 0; i < partials.size(); ++i) {
    std::string why;
    if (!partials[i].is_object() ||
        !parse_shard_block(partials[i], blocks[i], &why)) {
      merge_error(errors, partial_label(i, labels) + ": " +
                              (why.empty() ? "malformed" : why));
      return std::nullopt;
    }
  }
  const ShardBlock& reference = blocks[0];
  const Json* reference_profile = partials[0].find("profile");
  const Json* reference_options = partials[0].find("options");
  const Json* reference_meta = partials[0].find("meta");
  if (reference_profile == nullptr || reference_options == nullptr ||
      reference_meta == nullptr || !reference_meta->is_object() ||
      !reference_meta->at("git_sha").is_string()) {
    merge_error(errors, partial_label(0, labels) +
                            ": missing profile/options/meta blocks");
    return std::nullopt;
  }
  const std::string git_sha = reference_meta->at("git_sha").as_string();

  bool consistent = true;
  double wall_seconds = 0.0;
  // Which partial first claimed each shard slot, so a duplicate can
  // name both offending files, not just an index.
  std::vector<std::optional<usize>> claimed_by(reference.count);
  for (usize i = 0; i < partials.size(); ++i) {
    const std::string label = partial_label(i, labels);
    const ShardBlock& block = blocks[i];
    if (block.count != reference.count) {
      merge_error(errors, label + ": shard count " +
                              std::to_string(block.count) + " != " +
                              std::to_string(reference.count));
      consistent = false;
      continue;
    }
    if (claimed_by[block.index - 1].has_value()) {
      merge_error(errors, label + ": duplicate shard index " +
                              std::to_string(block.index) +
                              " (already provided by " +
                              partial_label(*claimed_by[block.index - 1],
                                            labels) +
                              ")");
      consistent = false;
    } else {
      claimed_by[block.index - 1] = i;
    }
    if (block.sections != reference.sections) {
      merge_error(errors, label + ": figure selection differs");
      consistent = false;
    }
    if (block.workloads != reference.workloads) {
      merge_error(errors, label + ": workload list differs");
      consistent = false;
    }
    const Json* meta = partials[i].find("meta");
    if (meta == nullptr || !meta->is_object() ||
        !meta->at("git_sha").is_string()) {
      merge_error(errors, label + ": meta block lacks git_sha");
      consistent = false;
    } else {
      if (meta->at("git_sha").as_string() != git_sha) {
        merge_error(errors, label + ": git_sha " +
                                meta->at("git_sha").as_string() + " != " +
                                git_sha);
        consistent = false;
      }
      if (meta->at("wall_seconds").is_number()) {
        wall_seconds += meta->at("wall_seconds").as_double();
      }
    }
    const Json* profile = partials[i].find("profile");
    if (profile == nullptr || *profile != *reference_profile) {
      merge_error(errors, label + ": profile differs");
      consistent = false;
    }
    const Json* options = partials[i].find("options");
    if (options == nullptr || *options != *reference_options) {
      merge_error(errors, label + ": metric options differ");
      consistent = false;
    }
  }
  if (!consistent) return std::nullopt;

  // Completeness: every shard of the run, exactly once, and each
  // partial's key list must be its slice of the recomputed plan.
  const ShardPlan plan =
      ShardPlan::enumerate(reference.sections, reference.workloads);
  for (usize k = 0; k < reference.count; ++k) {
    if (!claimed_by[k].has_value()) {
      merge_error(errors, "missing shard " + std::to_string(k + 1) + "/" +
                              std::to_string(reference.count) +
                              " (no partial for " +
                              shard_file_name(k + 1, reference.count) + ")");
      consistent = false;
    }
  }
  for (usize i = 0; i < partials.size(); ++i) {
    if (blocks[i].keys != plan.slice(blocks[i].index, reference.count)) {
      merge_error(errors, partial_label(i, labels) +
                              ": key list is not slice " +
                              std::to_string(blocks[i].index) + "/" +
                              std::to_string(reference.count) +
                              " of the plan");
      consistent = false;
    }
  }
  if (!consistent) return std::nullopt;

  // Gather content. Slices partition the plan, so each key's payload
  // lives in exactly one partial.
  std::vector<WorkloadMetrics> suite;
  std::vector<std::vector<std::vector<Fig9Cell>>> fig9_cells;
  std::vector<std::vector<std::vector<Fig10WorkloadCell>>> fig10_cells;
  const Json* fig9_header = nullptr;
  const Json* fig10_header = nullptr;

  const auto partial_for_key = [&](const ShardKey& key) -> const Json& {
    for (usize i = 0; i < partials.size(); ++i) {
      for (const ShardKey& have : blocks[i].keys) {
        if (have == key) return partials[i];
      }
    }
    TLR_ASSERT_MSG(false, "plan key not covered despite complete slices");
    return partials[0];
  };

  for (const std::string& workload : reference.workloads) {
    // Suite metrics, in workload order — the monolithic workloads[]
    // order, which the derived figure series also follow.
    {
      const Json& partial =
          partial_for_key({workload, std::string(kShardSectionSuite)});
      const Json* workloads = partial.find("workloads");
      std::optional<WorkloadMetrics> metrics;
      if (workloads != nullptr && workloads->is_array()) {
        for (usize i = 0; i < workloads->size() && !metrics; ++i) {
          const Json& entry = workloads->at(i);
          if (entry.is_object() && entry.at("name").is_string() &&
              entry.at("name").as_string() == workload) {
            metrics = workload_from_json(entry);
          }
        }
      }
      if (!metrics.has_value()) {
        merge_error(errors, "suite metrics for " + workload +
                                " missing or malformed");
        return std::nullopt;
      }
      suite.push_back(std::move(*metrics));
    }

    if (reference.sections.fig9) {
      const Json& partial =
          partial_for_key({workload, std::string(kShardSectionFig9)});
      const Json* fig9 = partial.at("raw").find("fig9");
      const Json* cells_json =
          fig9 == nullptr ? nullptr : fig9->at("workloads").find(workload);
      auto cells = cells_json == nullptr
                       ? std::nullopt
                       : fig9_cells_from_json(*cells_json);
      if (!cells.has_value()) {
        merge_error(errors,
                    "raw fig9 cells for " + workload + " missing or malformed");
        return std::nullopt;
      }
      if (fig9_header == nullptr) {
        fig9_header = fig9;
      } else if (fig9->at("heuristics") != fig9_header->at("heuristics") ||
                 fig9->at("geometries") != fig9_header->at("geometries") ||
                 fig9->at("test") != fig9_header->at("test")) {
        merge_error(errors, "fig9 headers differ between partials");
        return std::nullopt;
      }
      fig9_cells.push_back(std::move(*cells));
    }

    if (reference.sections.fig10) {
      const Json& partial =
          partial_for_key({workload, std::string(kShardSectionFig10)});
      const Json* fig10 = partial.at("raw").find("fig10");
      if (fig10 == nullptr || !fig10->at("predictors").is_array() ||
          !fig10->at("penalties").is_array()) {
        merge_error(errors, "raw fig10 block for " + workload +
                                " missing its header");
        return std::nullopt;
      }
      if (fig10_header == nullptr) {
        fig10_header = fig10;
      } else if (fig10->at("predictors") != fig10_header->at("predictors") ||
                 fig10->at("penalties") != fig10_header->at("penalties") ||
                 fig10->at("heuristic") != fig10_header->at("heuristic") ||
                 fig10->at("fixed_n") != fig10_header->at("fixed_n")) {
        merge_error(errors,
                    "fig10 predictor/penalty configs differ between partials");
        return std::nullopt;
      }
      const Json* cells_json = fig10->at("workloads").find(workload);
      auto cells = cells_json == nullptr
                       ? std::nullopt
                       : fig10_cells_from_json(
                             *cells_json, fig10->at("predictors").size(),
                             fig10->at("penalties").size());
      if (!cells.has_value()) {
        merge_error(errors, "raw fig10 cells for " + workload +
                                " missing or malformed");
        return std::nullopt;
      }
      fig10_cells.push_back(std::move(*cells));
    }
  }

  // Rebuild the monolithic document: parsed inputs are bit-exact, the
  // reductions are the same code in the same workload order, so the
  // bytes match the monolithic run outside `meta`.
  const auto profile = profile_from_json(*reference_profile);
  const auto metric_options = metric_options_from_json(*reference_options);
  if (!profile.has_value() || !metric_options.has_value()) {
    merge_error(errors, "profile/options blocks failed to parse");
    return std::nullopt;
  }

  ReportFigures figures;
  if (reference.sections.series) {
    figures.series = ReportFigures::all_series().series;
  }
  if (reference.sections.fig9) figures.fig9 = fig9_aggregate(fig9_cells);
  if (reference.sections.fig10) {
    std::vector<std::string> labels;
    std::vector<Cycle> penalties;
    const Json& predictor_configs = fig10_header->at("predictors");
    for (usize p = 0; p < predictor_configs.size(); ++p) {
      const Json& predictor = predictor_configs.at(p);
      if (!predictor.is_object() || !predictor.at("name").is_string()) {
        merge_error(errors, "fig10 header holds a malformed predictor");
        return std::nullopt;
      }
      labels.push_back(predictor.at("name").as_string());
    }
    const Json& penalty_values = fig10_header->at("penalties");
    for (usize q = 0; q < penalty_values.size(); ++q) {
      if (!json_is_u64(penalty_values.at(q))) {
        merge_error(errors, "fig10 header holds a non-integral penalty");
        return std::nullopt;
      }
      penalties.push_back(penalty_values.at(q).as_u64());
    }
    figures.fig10 =
        fig10_aggregate(std::move(labels), std::move(penalties), fig10_cells);
  }

  ReportMeta meta;
  meta.git_sha = git_sha;
  meta.threads = 0;
  meta.chunk_size = 0;
  meta.wall_seconds = wall_seconds;
  return build_report(*profile, *metric_options, suite, meta, figures);
}

}  // namespace tlr::core
