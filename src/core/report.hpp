// Machine-readable study reports (DESIGN.md §7).
//
// Every surface that publishes numbers — tools/reuse_study, the bench
// binaries' TLR_REPORT hook, CI artifacts — serializes through this
// module so results carry their provenance (profile, git SHA, thread
// count, wall time) and can be diffed across commits with one process
// invocation. The document schema is stable ("tlr-report/1"): key
// order is fixed by construction order, integers are exact, doubles
// are shortest-round-trip — the committed golden baseline in tools/
// pins the bytes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/figures.hpp"
#include "core/profile.hpp"
#include "core/study.hpp"
#include "util/json.hpp"

namespace tlr::core {

/// Schema identifier embedded in (and checked against) every report.
inline constexpr std::string_view kReportSchema = "tlr-report/1";

/// Git SHA baked in at configure time; "unknown" outside a checkout.
std::string_view report_git_sha();

/// Provenance block. Everything here describes the run, not the
/// results, and is excluded from report comparison.
struct ReportMeta {
  std::string tool = "reuse_study";
  std::string git_sha = std::string(report_git_sha());
  usize threads = 0;
  usize chunk_size = 0;
  double wall_seconds = 0.0;
};

/// Figure payload for build_report: the fig 3-8 series are derived
/// from the workload metrics on demand; fig 9 results are attached
/// when the (expensive) matrix was computed.
struct ReportFigures {
  /// Which of figures 3-8 to derive ("3".."8"); empty means none.
  std::vector<std::string> series;
  std::optional<Fig9Result> fig9;
  /// Speculative-reuse matrix (ours). Emitted as an ordered "fig10"
  /// key after fig9 when present — the schema stays "tlr-report/1"
  /// because the section is additive and absent unless the matrix ran,
  /// so every previously committed golden stays byte-identical.
  std::optional<Fig10Result> fig10;

  static ReportFigures all_series();
};

util::Json meta_to_json(const ReportMeta& meta);
util::Json profile_to_json(const ScaleProfile& profile);
util::Json options_to_json(const MetricOptions& options);
util::Json workload_to_json(const WorkloadMetrics& metrics);
util::Json series_to_json(const BenchSeries& series);
util::Json fig9_to_json(const Fig9Result& result);
util::Json fig10_to_json(const Fig10Result& result);

// ---- inverses (the shard merge path, core/shard.cpp) -----------------
//
// Deserialization is lossless: integers are exact and doubles are
// written shortest-round-trip, so to_json(from_json(x)) == x bit for
// bit — which is what lets a merged report reproduce the monolithic
// bytes. Each returns nullopt on structurally malformed input.

/// Whether `value` is an exactly-representable non-negative integer —
/// the required check before the asserting Json::as_u64 on untrusted
/// bytes (it aborts on negatives and non-integral doubles by design).
bool json_is_u64(const util::Json& value);
std::optional<WorkloadMetrics> workload_from_json(const util::Json& json);
std::optional<ScaleProfile> profile_from_json(const util::Json& json);
std::optional<MetricOptions> metric_options_from_json(const util::Json& json);

/// Assembles the full report document. Key order is part of the
/// schema: schema, meta, profile, options, workloads, figures.
util::Json build_report(const ScaleProfile& profile,
                        const MetricOptions& options,
                        const std::vector<WorkloadMetrics>& suite,
                        const ReportMeta& meta,
                        const ReportFigures& figures = {});

// ---- comparison ------------------------------------------------------

struct CompareOptions {
  /// A numeric leaf passes when |a-b| <= abs_tol + rel_tol*max(|a|,|b|).
  double rel_tol = 1e-9;
  double abs_tol = 1e-12;
};

/// Structural diff of two reports: every mismatching path yields one
/// human-readable line ("workloads[3].reusability: 0.52 != 0.53 ...").
/// The "meta" subtree is provenance and never compared. Empty result
/// means the reports match within tolerance.
std::vector<std::string> compare_reports(const util::Json& ours,
                                         const util::Json& baseline,
                                         const CompareOptions& options = {});

// ---- file IO ---------------------------------------------------------

/// Pretty-printed write (2-space indent, trailing newline). Missing
/// parent directories are created; failures yield a clear error.
bool write_report_file(const util::Json& report, const std::string& path,
                       std::string* error = nullptr);
std::optional<util::Json> read_report_file(const std::string& path,
                                           std::string* error = nullptr);

}  // namespace tlr::core
