// ReuseStudy core: runs one workload through the full analysis stack
// (interpreter -> reusability -> traces -> dataflow timing) and collects
// every number the paper's figures need. This is the primary public
// entry point of the library; the figure runners (figures.hpp), the
// benches and the examples are all built on it. The implementation is
// the streaming StudyEngine (core/engine.hpp): one chunked interpreter
// pass per workload feeds every metric simultaneously, and suite runs
// fan workloads across a thread pool.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "isa/latency.hpp"
#include "reuse/trace_builder.hpp"
#include "timing/timer.hpp"
#include "util/types.hpp"
#include "workloads/workload.hpp"

namespace tlr::core {

/// Stream extraction parameters shared by a whole study. The paper
/// skips 25M instructions and measures 50M; the library defaults are
/// laptop-scale (see DESIGN.md §6) and every bench accepts overrides.
struct SuiteConfig {
  u64 skip = 50'000;
  u64 length = 400'000;
  u64 seed = 0xC0FFEE;
  u32 window = 256;  // the paper's finite instruction window
};

/// Which (potentially expensive) analyses to run per workload.
struct MetricOptions {
  bool timing = true;
  bool trace_stats = true;
  std::vector<Cycle> ilr_latencies = {1, 2, 3, 4};
  std::vector<Cycle> trace_latencies = {1, 2, 3, 4};
  std::vector<double> proportional_ks = {1.0 / 32, 1.0 / 16, 1.0 / 8,
                                         1.0 / 4,  1.0 / 2,  1.0};
};

/// Everything the limit-study figures need for one benchmark.
struct WorkloadMetrics {
  std::string name;
  bool is_fp = false;
  u64 instructions = 0;

  /// Fig 3: fraction of dynamic instructions reusable under a perfect
  /// engine.
  double reusability = 0.0;

  // Base-machine cycle counts (infinite window / finite window).
  Cycle base_inf = 0;
  Cycle base_win = 0;

  // Instruction-level reuse cycle counts per reuse latency (Fig 4/5).
  std::vector<Cycle> ilr_inf;
  std::vector<Cycle> ilr_win;

  // Trace-level reuse cycle counts (Fig 6/8a): infinite window at
  // 1-cycle latency; finite window per constant latency.
  Cycle trace_inf = 0;
  std::vector<Cycle> trace_win;

  // Finite window, proportional latency per k (Fig 8b).
  std::vector<Cycle> trace_win_prop;

  /// Maximal-trace statistics (Fig 7, §4.5 bandwidth discussion).
  reuse::TraceStats trace_stats;

  double ilr_speedup_inf(usize lat_index) const {
    return ratio(base_inf, ilr_inf[lat_index]);
  }
  double ilr_speedup_win(usize lat_index) const {
    return ratio(base_win, ilr_win[lat_index]);
  }
  double trace_speedup_inf() const { return ratio(base_inf, trace_inf); }
  double trace_speedup_win(usize lat_index) const {
    return ratio(base_win, trace_win[lat_index]);
  }
  double trace_speedup_prop(usize k_index) const {
    return ratio(base_win, trace_win_prop[k_index]);
  }

 private:
  static double ratio(Cycle base, Cycle other) {
    return other == 0 ? 0.0
                      : static_cast<double>(base) /
                            static_cast<double>(other);
  }
};

/// Full analysis of one workload in a single chunked interpreter pass.
/// Peak stream storage is O(chunk + longest reusable run) — the open
/// maximal-trace run is buffered — independent of `config.length`.
WorkloadMetrics analyze_workload(std::string_view workload_name,
                                 const SuiteConfig& config,
                                 const MetricOptions& options = {});

/// Analyse the whole 14-benchmark suite (figure order). Workloads run
/// concurrently; results are deterministic and thread-count invariant.
std::vector<WorkloadMetrics> analyze_suite(const SuiteConfig& config,
                                           const MetricOptions& options = {});

/// Collect the dynamic stream for a workload under `config` (exposed
/// for tests, examples and custom experiments).
std::vector<isa::DynInst> collect_workload_stream(
    std::string_view workload_name, const SuiteConfig& config);

}  // namespace tlr::core
