#include "core/report.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/assert.hpp"

namespace tlr::core {

using util::Json;

std::string_view report_git_sha() {
#ifdef TLR_GIT_SHA
  return TLR_GIT_SHA;
#else
  return "unknown";
#endif
}

ReportFigures ReportFigures::all_series() {
  ReportFigures figures;
  figures.series = {"3", "4", "5", "6", "7", "8"};
  return figures;
}

namespace {

Json trace_stats_to_json(const reuse::TraceStats& stats) {
  Json json = Json::object();
  json.set("traces", stats.traces);
  json.set("covered_instructions", stats.covered_instructions);
  json.set("avg_size", stats.avg_size);
  json.set("avg_reg_inputs", stats.avg_reg_inputs);
  json.set("avg_mem_inputs", stats.avg_mem_inputs);
  json.set("avg_reg_outputs", stats.avg_reg_outputs);
  json.set("avg_mem_outputs", stats.avg_mem_outputs);
  return json;
}

Json cycles_to_json(const std::vector<Cycle>& cycles) {
  Json json = Json::array();
  for (const Cycle value : cycles) json.push_back(Json(u64{value}));
  return json;
}

Json doubles_to_json(const std::vector<double>& values) {
  Json json = Json::array();
  for (const double value : values) json.push_back(Json(value));
  return json;
}

Json sweep_to_json(const std::vector<Cycle>& latencies,
                   const std::vector<double>& speedups) {
  Json json = Json::object();
  json.set("latencies", cycles_to_json(latencies));
  json.set("speedups", doubles_to_json(speedups));
  return json;
}

bool wants_series(const ReportFigures& figures, std::string_view figure) {
  for (const std::string& entry : figures.series) {
    if (entry == figure) return true;
  }
  return false;
}

}  // namespace

Json meta_to_json(const ReportMeta& meta) {
  Json json = Json::object();
  json.set("tool", meta.tool);
  json.set("git_sha", meta.git_sha);
  json.set("threads", u64{meta.threads});
  json.set("chunk_size", u64{meta.chunk_size});
  json.set("wall_seconds", meta.wall_seconds);
  return json;
}

Json profile_to_json(const ScaleProfile& profile) {
  Json json = Json::object();
  json.set("name", profile.name);
  json.set("skip", profile.base.skip);
  json.set("length", profile.base.length);
  json.set("seed", profile.base.seed);
  json.set("window", u64{profile.base.window});
  Json overrides = Json::array();
  for (const ScaleProfile::Override& entry : profile.overrides) {
    Json item = Json::object();
    item.set("workload", entry.workload);
    item.set("skip", entry.skip);
    item.set("length", entry.length);
    overrides.push_back(std::move(item));
  }
  json.set("overrides", std::move(overrides));
  return json;
}

Json options_to_json(const MetricOptions& options) {
  Json json = Json::object();
  json.set("timing", options.timing);
  json.set("trace_stats", options.trace_stats);
  json.set("ilr_latencies", cycles_to_json(options.ilr_latencies));
  json.set("trace_latencies", cycles_to_json(options.trace_latencies));
  json.set("proportional_ks", doubles_to_json(options.proportional_ks));
  return json;
}

Json workload_to_json(const WorkloadMetrics& metrics) {
  Json json = Json::object();
  json.set("name", metrics.name);
  json.set("is_fp", metrics.is_fp);
  json.set("instructions", metrics.instructions);
  json.set("reusability", metrics.reusability);
  json.set("base_inf", u64{metrics.base_inf});
  json.set("base_win", u64{metrics.base_win});
  json.set("ilr_inf", cycles_to_json(metrics.ilr_inf));
  json.set("ilr_win", cycles_to_json(metrics.ilr_win));
  json.set("trace_inf", u64{metrics.trace_inf});
  json.set("trace_win", cycles_to_json(metrics.trace_win));
  json.set("trace_win_prop", cycles_to_json(metrics.trace_win_prop));
  json.set("trace_stats", trace_stats_to_json(metrics.trace_stats));
  return json;
}

Json series_to_json(const BenchSeries& series) {
  Json json = Json::object();
  json.set("title", series.title);
  Json values = Json::object();
  for (usize i = 0; i < series.names.size(); ++i) {
    values.set(series.names[i], Json(series.values[i]));
  }
  json.set("values", std::move(values));
  json.set("avg_fp", series.avg_fp);
  json.set("avg_int", series.avg_int);
  json.set("avg_all", series.avg_all);
  return json;
}

Json fig9_to_json(const Fig9Result& result) {
  Json json = Json::object();
  Json heuristics = Json::array();
  for (const Fig9Heuristic& h : fig9_heuristics()) {
    heuristics.push_back(Json(h.label));
  }
  json.set("heuristics", std::move(heuristics));
  Json geometries = Json::array();
  for (const auto& [label, geometry] : fig9_geometries()) {
    geometries.push_back(Json(label));
  }
  json.set("geometries", std::move(geometries));
  Json fractions = Json::array();
  Json sizes = Json::array();
  for (const auto& row : result.cells) {
    Json fraction_row = Json::array();
    Json size_row = Json::array();
    for (const Fig9Cell& cell : row) {
      fraction_row.push_back(Json(cell.reuse_fraction));
      size_row.push_back(Json(cell.avg_trace_size));
    }
    fractions.push_back(std::move(fraction_row));
    sizes.push_back(std::move(size_row));
  }
  json.set("reuse_fraction", std::move(fractions));
  json.set("avg_trace_size", std::move(sizes));
  return json;
}

Json fig10_to_json(const Fig10Result& result) {
  Json json = Json::object();
  Json predictors = Json::array();
  for (const std::string& label : result.predictors) {
    predictors.push_back(Json(label));
  }
  json.set("predictors", std::move(predictors));
  Json penalties = Json::array();
  for (const Cycle penalty : result.penalties) {
    penalties.push_back(Json(u64{penalty}));
  }
  json.set("penalties", std::move(penalties));
  Json geometries = Json::array();
  for (const std::string& label : result.geometries) {
    geometries.push_back(Json(label));
  }
  json.set("geometries", std::move(geometries));

  Json fractions = Json::array();
  Json accuracies = Json::array();
  Json rates = Json::array();
  Json speedups = Json::array();
  for (const auto& row : result.cells) {
    Json fraction_row = Json::array();
    Json accuracy_row = Json::array();
    Json rate_row = Json::array();
    Json speedup_row = Json::array();
    for (const Fig10Cell& cell : row) {
      fraction_row.push_back(Json(cell.reuse_fraction));
      accuracy_row.push_back(Json(cell.accuracy));
      rate_row.push_back(Json(cell.misspec_rate));
      speedup_row.push_back(doubles_to_json(cell.speedups));
    }
    fractions.push_back(std::move(fraction_row));
    accuracies.push_back(std::move(accuracy_row));
    rates.push_back(std::move(rate_row));
    speedups.push_back(std::move(speedup_row));
  }
  json.set("reuse_fraction", std::move(fractions));
  json.set("accuracy", std::move(accuracies));
  json.set("misspec_rate", std::move(rates));
  // speedup[p][g][q]: predictor p, geometry g, penalty q.
  json.set("speedup", std::move(speedups));
  return json;
}

Json build_report(const ScaleProfile& profile, const MetricOptions& options,
                  const std::vector<WorkloadMetrics>& suite,
                  const ReportMeta& meta, const ReportFigures& figures) {
  Json report = Json::object();
  report.set("schema", kReportSchema);
  report.set("meta", meta_to_json(meta));

  report.set("profile", profile_to_json(profile));
  report.set("options", options_to_json(options));

  Json workloads = Json::array();
  for (const WorkloadMetrics& metrics : suite) {
    workloads.push_back(workload_to_json(metrics));
  }
  report.set("workloads", std::move(workloads));

  Json figures_json = Json::object();
  const bool have_timing = options.timing && !suite.empty();
  if (wants_series(figures, "3") && !suite.empty()) {
    figures_json.set("fig3", series_to_json(fig3_reusability(suite)));
  }
  if (wants_series(figures, "4") && have_timing) {
    figures_json.set("fig4a", series_to_json(fig4a_ilr_speedup_inf(suite)));
    figures_json.set("fig4b", sweep_to_json(options.ilr_latencies,
                                            fig4b_ilr_latency_sweep(suite)));
  }
  if (wants_series(figures, "5") && have_timing) {
    figures_json.set("fig5a", series_to_json(fig5a_ilr_speedup_win(suite)));
    figures_json.set("fig5b", sweep_to_json(options.ilr_latencies,
                                            fig5b_ilr_latency_sweep(suite)));
  }
  if (wants_series(figures, "6") && have_timing) {
    figures_json.set("fig6a", series_to_json(fig6a_trace_speedup_inf(suite)));
    figures_json.set("fig6b", series_to_json(fig6b_trace_speedup_win(suite)));
  }
  if (wants_series(figures, "7") && !suite.empty() && options.trace_stats) {
    figures_json.set("fig7", series_to_json(fig7_trace_size(suite)));
    const TraceIoStats io = trace_io_stats(suite);
    Json io_json = Json::object();
    io_json.set("avg_size", io.avg_size);
    io_json.set("reg_inputs", io.reg_inputs);
    io_json.set("mem_inputs", io.mem_inputs);
    io_json.set("reg_outputs", io.reg_outputs);
    io_json.set("mem_outputs", io.mem_outputs);
    io_json.set("reads_per_inst", io.reads_per_inst);
    io_json.set("writes_per_inst", io.writes_per_inst);
    figures_json.set("trace_io", std::move(io_json));
  }
  if (wants_series(figures, "8") && have_timing) {
    figures_json.set("fig8a", sweep_to_json(options.trace_latencies,
                                            fig8a_latency_sweep(suite)));
    Json fig8b = Json::object();
    fig8b.set("ks", doubles_to_json(options.proportional_ks));
    fig8b.set("speedups",
              doubles_to_json(fig8b_proportional_sweep(suite)));
    figures_json.set("fig8b", std::move(fig8b));
  }
  if (figures.fig9.has_value()) {
    figures_json.set("fig9", fig9_to_json(*figures.fig9));
  }
  if (figures.fig10.has_value()) {
    figures_json.set("fig10", fig10_to_json(*figures.fig10));
  }
  report.set("figures", std::move(figures_json));
  return report;
}

// ---- inverses --------------------------------------------------------

namespace {

/// Typed field extraction with structural validation: every getter
/// returns false (rather than asserting) on a missing key or a value
/// of the wrong JSON flavour, so malformed partials surface as merge
/// errors instead of aborts.
bool get_u64(const Json& json, std::string_view key, u64& out) {
  const Json* value = json.find(key);
  if (value == nullptr || !json_is_u64(*value)) return false;
  out = value->as_u64();
  return true;
}

bool get_double(const Json& json, std::string_view key, double& out) {
  const Json* value = json.find(key);
  if (value == nullptr || !value->is_number()) return false;
  out = value->as_double();
  return true;
}

bool get_bool(const Json& json, std::string_view key, bool& out) {
  const Json* value = json.find(key);
  if (value == nullptr || !value->is_bool()) return false;
  out = value->as_bool();
  return true;
}

bool get_string(const Json& json, std::string_view key, std::string& out) {
  const Json* value = json.find(key);
  if (value == nullptr || !value->is_string()) return false;
  out = value->as_string();
  return true;
}

bool get_cycles(const Json& json, std::string_view key,
                std::vector<Cycle>& out) {
  const Json* value = json.find(key);
  if (value == nullptr || !value->is_array()) return false;
  out.clear();
  for (usize i = 0; i < value->size(); ++i) {
    if (!json_is_u64(value->at(i))) return false;
    out.push_back(value->at(i).as_u64());
  }
  return true;
}

bool get_doubles(const Json& json, std::string_view key,
                 std::vector<double>& out) {
  const Json* value = json.find(key);
  if (value == nullptr || !value->is_array()) return false;
  out.clear();
  for (usize i = 0; i < value->size(); ++i) {
    if (!value->at(i).is_number()) return false;
    out.push_back(value->at(i).as_double());
  }
  return true;
}

}  // namespace

bool json_is_u64(const Json& value) {
  return value.kind() == Json::Kind::kUint ||
         (value.kind() == Json::Kind::kInt && value.as_i64() >= 0);
}

std::optional<WorkloadMetrics> workload_from_json(const Json& json) {
  if (!json.is_object()) return std::nullopt;
  WorkloadMetrics m;
  u64 base_inf = 0, base_win = 0, trace_inf = 0;
  if (!get_string(json, "name", m.name) ||
      !get_bool(json, "is_fp", m.is_fp) ||
      !get_u64(json, "instructions", m.instructions) ||
      !get_double(json, "reusability", m.reusability) ||
      !get_u64(json, "base_inf", base_inf) ||
      !get_u64(json, "base_win", base_win) ||
      !get_cycles(json, "ilr_inf", m.ilr_inf) ||
      !get_cycles(json, "ilr_win", m.ilr_win) ||
      !get_u64(json, "trace_inf", trace_inf) ||
      !get_cycles(json, "trace_win", m.trace_win) ||
      !get_cycles(json, "trace_win_prop", m.trace_win_prop)) {
    return std::nullopt;
  }
  m.base_inf = base_inf;
  m.base_win = base_win;
  m.trace_inf = trace_inf;
  const Json* stats = json.find("trace_stats");
  if (stats == nullptr || !stats->is_object()) return std::nullopt;
  if (!get_u64(*stats, "traces", m.trace_stats.traces) ||
      !get_u64(*stats, "covered_instructions",
               m.trace_stats.covered_instructions) ||
      !get_double(*stats, "avg_size", m.trace_stats.avg_size) ||
      !get_double(*stats, "avg_reg_inputs", m.trace_stats.avg_reg_inputs) ||
      !get_double(*stats, "avg_mem_inputs", m.trace_stats.avg_mem_inputs) ||
      !get_double(*stats, "avg_reg_outputs",
                  m.trace_stats.avg_reg_outputs) ||
      !get_double(*stats, "avg_mem_outputs",
                  m.trace_stats.avg_mem_outputs)) {
    return std::nullopt;
  }
  return m;
}

std::optional<ScaleProfile> profile_from_json(const Json& json) {
  if (!json.is_object()) return std::nullopt;
  ScaleProfile profile;
  u64 window = 0;
  if (!get_string(json, "name", profile.name) ||
      !get_u64(json, "skip", profile.base.skip) ||
      !get_u64(json, "length", profile.base.length) ||
      !get_u64(json, "seed", profile.base.seed) ||
      !get_u64(json, "window", window) ||
      window > std::numeric_limits<u32>::max()) {
    return std::nullopt;  // an out-of-range window must not truncate
  }
  profile.base.window = static_cast<u32>(window);
  const Json* overrides = json.find("overrides");
  if (overrides == nullptr || !overrides->is_array()) return std::nullopt;
  for (usize i = 0; i < overrides->size(); ++i) {
    ScaleProfile::Override entry;
    const Json& item = overrides->at(i);
    if (!item.is_object() || !get_string(item, "workload", entry.workload) ||
        !get_u64(item, "skip", entry.skip) ||
        !get_u64(item, "length", entry.length)) {
      return std::nullopt;
    }
    profile.overrides.push_back(std::move(entry));
  }
  return profile;
}

std::optional<MetricOptions> metric_options_from_json(const Json& json) {
  if (!json.is_object()) return std::nullopt;
  MetricOptions options;
  if (!get_bool(json, "timing", options.timing) ||
      !get_bool(json, "trace_stats", options.trace_stats) ||
      !get_cycles(json, "ilr_latencies", options.ilr_latencies) ||
      !get_cycles(json, "trace_latencies", options.trace_latencies) ||
      !get_doubles(json, "proportional_ks", options.proportional_ks)) {
    return std::nullopt;
  }
  return options;
}

// ---- comparison ------------------------------------------------------

namespace {

constexpr usize kMaxDiffs = 100;

std::string number_repr(const Json& value) {
  return value.dump();
}

void diff_values(const Json& ours, const Json& baseline,
                 const std::string& path, const CompareOptions& options,
                 std::vector<std::string>& diffs);

void add_diff(std::vector<std::string>& diffs, std::string line) {
  if (diffs.size() < kMaxDiffs) {
    diffs.push_back(std::move(line));
  } else if (diffs.size() == kMaxDiffs) {
    diffs.push_back("... further differences suppressed");
  }
}

const char* kind_name(Json::Kind kind) {
  switch (kind) {
    case Json::Kind::kNull: return "null";
    case Json::Kind::kBool: return "bool";
    case Json::Kind::kInt:
    case Json::Kind::kUint:
    case Json::Kind::kDouble: return "number";
    case Json::Kind::kString: return "string";
    case Json::Kind::kArray: return "array";
    case Json::Kind::kObject: return "object";
  }
  return "?";
}

void diff_objects(const Json& ours, const Json& baseline,
                  const std::string& path, const CompareOptions& options,
                  std::vector<std::string>& diffs) {
  for (const auto& [key, value] : baseline.items()) {
    const std::string child = path.empty() ? key : path + "." + key;
    const Json* mine = ours.find(key);
    if (mine == nullptr) {
      add_diff(diffs, child + ": missing from report");
      continue;
    }
    diff_values(*mine, value, child, options, diffs);
  }
  for (const auto& [key, value] : ours.items()) {
    if (!baseline.contains(key)) {
      add_diff(diffs,
               (path.empty() ? key : path + "." + key) +
                   ": not present in baseline");
    }
  }
}

/// Exact |a-b| for two integral-flavoured numbers, when representable.
/// A double detour would alias u64 cycle counts above 2^53 — exactly
/// the paper-scale values the exact-integer JSON path exists for.
std::optional<double> exact_integral_diff(const Json& a, const Json& b) {
  const auto non_negative = [](const Json& v) {
    return v.kind() == Json::Kind::kUint ||
           (v.kind() == Json::Kind::kInt && v.as_i64() >= 0);
  };
  const auto negative_int = [](const Json& v) {
    return v.kind() == Json::Kind::kInt && v.as_i64() < 0;
  };
  if (non_negative(a) && non_negative(b)) {
    const u64 x = a.as_u64(), y = b.as_u64();
    return static_cast<double>(x > y ? x - y : y - x);
  }
  if (negative_int(a) && negative_int(b)) {
    const i64 x = a.as_i64(), y = b.as_i64();
    // Modular u64 subtraction of the ordered pair is the exact
    // magnitude even when it exceeds INT64_MAX.
    return static_cast<double>(x > y ? static_cast<u64>(x) -
                                           static_cast<u64>(y)
                                     : static_cast<u64>(y) -
                                           static_cast<u64>(x));
  }
  return std::nullopt;  // mixed signs or a double involved
}

void diff_values(const Json& ours, const Json& baseline,
                 const std::string& path, const CompareOptions& options,
                 std::vector<std::string>& diffs) {
  if (ours.is_number() && baseline.is_number()) {
    const double a = ours.as_double();
    const double b = baseline.as_double();
    const double tolerance =
        options.abs_tol +
        options.rel_tol * std::max(std::fabs(a), std::fabs(b));
    const double difference =
        exact_integral_diff(ours, baseline).value_or(std::fabs(a - b));
    if (std::isnan(a) || std::isnan(b) || difference > tolerance) {
      std::ostringstream line;
      line << path << ": " << number_repr(ours) << " != "
           << number_repr(baseline) << " (tolerance " << tolerance << ")";
      add_diff(diffs, line.str());
    }
    return;
  }
  if (ours.kind() != baseline.kind() ||
      (ours.is_number() != baseline.is_number())) {
    add_diff(diffs, path + ": kind " + kind_name(ours.kind()) + " != " +
                        kind_name(baseline.kind()));
    return;
  }
  switch (baseline.kind()) {
    case Json::Kind::kNull:
      return;
    case Json::Kind::kBool:
      if (ours.as_bool() != baseline.as_bool()) {
        add_diff(diffs, path + ": " + (ours.as_bool() ? "true" : "false") +
                            " != " +
                            (baseline.as_bool() ? "true" : "false"));
      }
      return;
    case Json::Kind::kString:
      if (ours.as_string() != baseline.as_string()) {
        add_diff(diffs, path + ": \"" + ours.as_string() + "\" != \"" +
                            baseline.as_string() + "\"");
      }
      return;
    case Json::Kind::kArray: {
      if (ours.size() != baseline.size()) {
        add_diff(diffs, path + ": array length " +
                            std::to_string(ours.size()) + " != " +
                            std::to_string(baseline.size()));
        return;
      }
      for (usize i = 0; i < baseline.size(); ++i) {
        diff_values(ours.at(i), baseline.at(i),
                    path + "[" + std::to_string(i) + "]", options, diffs);
      }
      return;
    }
    case Json::Kind::kObject:
      diff_objects(ours, baseline, path, options, diffs);
      return;
    default:
      return;  // numbers handled above
  }
}

}  // namespace

std::vector<std::string> compare_reports(const Json& ours,
                                         const Json& baseline,
                                         const CompareOptions& options) {
  std::vector<std::string> diffs;
  if (!ours.is_object() || !baseline.is_object()) {
    add_diff(diffs, "report documents must be JSON objects");
    return diffs;
  }
  // Top-level walk, skipping the provenance block (no document copy —
  // paper-scale reports run to megabytes).
  for (const auto& [key, value] : baseline.items()) {
    if (key == "meta") continue;
    const Json* mine = ours.find(key);
    if (mine == nullptr) {
      add_diff(diffs, key + ": missing from report");
      continue;
    }
    diff_values(*mine, value, key, options, diffs);
  }
  for (const auto& [key, value] : ours.items()) {
    if (key != "meta" && !baseline.contains(key)) {
      add_diff(diffs, key + ": not present in baseline");
    }
  }
  return diffs;
}

// ---- file IO ---------------------------------------------------------

bool write_report_file(const Json& report, const std::string& path,
                       std::string* error) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      if (error != nullptr) {
        *error = "cannot create directory " + parent.string() + ": " +
                 ec.message();
      }
      return false;
    }
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << report.dump(/*indent=*/2);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

std::optional<Json> read_report_file(const std::string& path,
                                     std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  std::optional<Json> parsed = Json::parse(buffer.str(), &parse_error);
  if (!parsed.has_value() && error != nullptr) {
    *error = path + ": " + parse_error;
  }
  return parsed;
}

}  // namespace tlr::core
