// StudyEngine: single-pass, multi-consumer, parallel analysis over
// chunked instruction streams.
//
// The limit study needs many numbers per workload (reusability, a
// dozen timing configurations, trace statistics, finite-RTM
// simulations). Materialising the dynamic stream and re-walking it per
// analysis costs O(stream) memory and N passes; at the paper's scale
// (50M instructions per benchmark) neither is acceptable. The engine
// instead drives one interpreter pass per (workload, SuiteConfig)
// through a chunked vm::StreamSource and fans every chunk out to a set
// of StreamConsumers, so all metrics are computed simultaneously with
// O(chunk) stream storage (plus the currently open maximal-trace run,
// bounded by the longest reusable run, when trace consumers are
// registered — see MaxTraceStreamer). Workload-level jobs are dispatched across
// util::thread_pool with deterministic result slots: the engine
// produces bit-identical results for any thread count and any chunk
// size (see tests/core/engine_test.cpp).
//
// Consumer families (DESIGN.md §5): the per-instruction consumers and
// the shared maximal-trace stage below, the finite-RTM limit simulator
// (RtmSimConsumer), and the speculative-reuse simulator
// (spec::SpecSimConsumer, DESIGN.md §8) which layers prediction and
// misspeculation pricing on the same single-pass contract.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/profile.hpp"
#include "core/study.hpp"
#include "reuse/rtm_sim.hpp"
#include "reuse/trace_builder.hpp"
#include "timing/timer.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"
#include "vm/interpreter.hpp"
#include "workloads/workload.hpp"

namespace tlr::core {

/// One chunk of the dynamic stream as seen by consumers: the
/// instruction records plus — when any registered consumer asked for
/// it — the perfect-engine reusability flag per instruction, computed
/// once by the engine's shared InfiniteInstrTable stage. Spans are
/// valid only for the duration of the consume() call.
struct ChunkView {
  std::span<const isa::DynInst> insts;
  std::span<const u8> reusable;  // 0/1 per instruction; may be empty
  u64 first_index = 0;
};

/// A metric computed incrementally over a chunked stream. Consumers
/// receive consecutive chunks in stream order, then one finish() call
/// with the final stream length.
class StreamConsumer {
 public:
  virtual ~StreamConsumer() = default;

  /// Whether this consumer needs ChunkView::reusable populated.
  virtual bool wants_reusability() const { return false; }

  virtual void consume(const ChunkView& chunk) = 0;
  virtual void finish(u64 total_instructions) = 0;
};

// ---- concrete consumers ----------------------------------------------

/// Fig 3 front-end: counts perfect-engine reusable instructions.
class ReusabilityConsumer final : public StreamConsumer {
 public:
  bool wants_reusability() const override { return true; }
  void consume(const ChunkView& chunk) override;
  void finish(u64) override {}

  u64 total() const { return total_; }
  u64 reusable_count() const { return reusable_; }
  double fraction() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(reusable_) /
                             static_cast<double>(total_);
  }

 private:
  u64 total_ = 0;
  u64 reusable_ = 0;
};

/// Base-machine or instruction-level-reuse dataflow timing: the
/// streaming equivalent of compute_timing with a null plan or a
/// build_instr_plan annotation.
class TimingConsumer final : public StreamConsumer {
 public:
  enum class Mode : u8 { kBase, kInstReuse };

  TimingConsumer(Mode mode, const timing::TimerConfig& config)
      : mode_(mode), timer_(config) {}

  bool wants_reusability() const override {
    return mode_ == Mode::kInstReuse;
  }
  void consume(const ChunkView& chunk) override;
  void finish(u64) override {}

  timing::TimerResult result() const { return timer_.result(); }

 private:
  Mode mode_;
  timing::StreamingTimer timer_;
};

/// Trace-level-reuse timing fed by a MaxTraceConsumer: the streaming
/// equivalent of compute_timing over a build_max_trace_plan annotation.
class TraceTimingSink final : public reuse::TraceRunSink {
 public:
  explicit TraceTimingSink(const timing::TimerConfig& config)
      : timer_(config) {}

  void on_normal(const isa::DynInst& inst) override {
    timer_.step_normal(inst);
  }
  void on_trace(std::span<const isa::DynInst> run,
                const timing::PlanTrace& trace) override {
    timer_.step_trace(run, trace);
  }

  timing::TimerResult result() const { return timer_.result(); }

 private:
  timing::StreamingTimer timer_;
};

/// Incremental maximal-trace statistics (Fig 7): the streaming
/// equivalent of compute_trace_stats over a build_max_trace_plan.
class TraceStatsSink final : public reuse::TraceRunSink {
 public:
  void on_normal(const isa::DynInst&) override {}
  void on_trace(std::span<const isa::DynInst> run,
                const timing::PlanTrace& trace) override;

  reuse::TraceStats stats() const;

 private:
  u64 traces_ = 0;
  u64 covered_ = 0;
  double size_ = 0, reg_in_ = 0, mem_in_ = 0, reg_out_ = 0, mem_out_ = 0;
};

/// The shared maximal-trace partition stage: one run buffer and one
/// live-in extraction serving every registered TraceRunSink (trace
/// timers for all latency configurations plus the statistics sink).
class MaxTraceConsumer final : public StreamConsumer {
 public:
  void add_sink(reuse::TraceRunSink* sink) {
    streamer_.add_sink(sink);
    ++sink_count_;
  }
  bool has_sinks() const { return sink_count_ > 0; }

  bool wants_reusability() const override { return true; }
  void consume(const ChunkView& chunk) override;
  void finish(u64) override { streamer_.finish(); }

 private:
  reuse::MaxTraceStreamer streamer_;
  usize sink_count_ = 0;
};

/// Finite-RTM simulation as a stream consumer (Fig 9 and the realistic
/// timing extension). Optionally prices the simulated fetch stream
/// with a dataflow timer riding on the simulator's event stream — no
/// materialised plan needed.
class RtmSimConsumer final : public StreamConsumer,
                             private reuse::RtmEventSink {
 public:
  explicit RtmSimConsumer(const reuse::RtmSimConfig& config)
      : sim_(config) {}
  RtmSimConsumer(const reuse::RtmSimConfig& config,
                 const timing::TimerConfig& timing_config)
      : sim_(config), timer_(timing_config) {
    sim_.set_event_sink(this);
  }

  // The simulator holds a pointer back to this object as its event
  // sink; copying or moving would leave that pointer dangling.
  RtmSimConsumer(const RtmSimConsumer&) = delete;
  RtmSimConsumer& operator=(const RtmSimConsumer&) = delete;

  void consume(const ChunkView& chunk) override { sim_.feed(chunk.insts); }
  void finish(u64) override {
    result_ = sim_.finish();
    obs::MetricsBlock block;
    reuse::accumulate_metrics(result_, block);
    obs::flush(block);
  }

  const reuse::RtmSimResult& result() const { return result_; }
  timing::TimerResult timing_result() const;

 private:
  void on_executed(const isa::DynInst& inst) override {
    timer_->step_normal(inst);
  }
  void on_reused(std::span<const isa::DynInst> insts,
                 const timing::PlanTrace& trace) override {
    timer_->step_trace(insts, trace);
  }

  reuse::RtmSimulator sim_;
  std::optional<timing::StreamingTimer> timer_;
  reuse::RtmSimResult result_;
};

// ---- the engine ------------------------------------------------------

struct EngineOptions {
  /// Worker threads for workload-level fan-out; 0 means
  /// std::thread::hardware_concurrency.
  usize threads = 0;
  /// Instructions per stream chunk. Results are chunk-size invariant;
  /// this only trades peak memory against per-chunk overhead.
  usize chunk_size = vm::StreamSource::kDefaultChunkSize;
};

class StudyEngine {
 public:
  explicit StudyEngine(const EngineOptions& options = {});
  ~StudyEngine();

  StudyEngine(const StudyEngine&) = delete;
  StudyEngine& operator=(const StudyEngine&) = delete;

  /// One chunked interpreter pass over `program`, fanning every chunk
  /// out to `consumers` (with the shared reusability stage when any of
  /// them asks for it). Returns the stream length. The shared-pointer
  /// overload avoids copying the program into the stream source; the
  /// reference overload copies once for callers holding a temporary.
  u64 run_stream(const vm::Program& program, const vm::RunLimits& limits,
                 std::span<StreamConsumer* const> consumers) const;
  u64 run_stream(std::shared_ptr<const vm::Program> program,
                 const vm::RunLimits& limits,
                 std::span<StreamConsumer* const> consumers) const;

  /// Same, for a registry workload under a SuiteConfig.
  u64 run_workload_stream(std::string_view workload_name,
                          const SuiteConfig& config,
                          std::span<StreamConsumer* const> consumers) const;

  /// The registry workload for (name, seed), built once per engine and
  /// shared by every job that streams it: the fig9/fig10 fan-out runs
  /// many (workload × configuration) jobs, and sharing stops each one
  /// from rebuilding and copying the program (instruction vector +
  /// data image). Thread-safe; entries live as long as the engine.
  std::shared_ptr<const workloads::Workload> shared_workload(
      std::string_view name, u64 seed) const;

  /// Full single-workload analysis — every WorkloadMetrics field from
  /// exactly one interpreter pass.
  WorkloadMetrics analyze(std::string_view workload_name,
                          const SuiteConfig& config,
                          const MetricOptions& options = {}) const;

  /// Whole-suite analysis: one job per workload across the pool,
  /// results in figure order regardless of completion order.
  std::vector<WorkloadMetrics> analyze_suite(
      const SuiteConfig& config, const MetricOptions& options = {});

  /// Invoked (under a lock, from worker threads) each time a workload
  /// finishes; `done` counts completions so far.
  using SuiteProgress =
      std::function<void(std::string_view workload, usize done, usize total)>;

  /// Profile-driven suite analysis: each workload runs under
  /// profile.config_for(name). `workload_names` empty means the full
  /// suite in figure order; results follow the request order.
  std::vector<WorkloadMetrics> analyze_profile(
      const ScaleProfile& profile, const MetricOptions& options = {},
      std::span<const std::string> workload_names = {},
      const SuiteProgress& progress = nullptr);

  /// Deterministic parallel map: runs job(i) for i in [0, n) across
  /// the pool and waits. Jobs must write only into their own result
  /// slots. The pool is spawned lazily on first use.
  void parallel_for(usize n, const std::function<void(usize)>& job);

  const EngineOptions& options() const { return options_; }
  usize thread_count();

 private:
  ThreadPool& pool();

  EngineOptions options_;
  std::optional<ThreadPool> pool_;
  mutable std::mutex workload_mutex_;
  mutable std::map<std::pair<std::string, u64>,
                   std::shared_ptr<const workloads::Workload>>
      workload_cache_;
};

/// vm::RunLimits for the stream window a SuiteConfig describes.
vm::RunLimits suite_limits(const SuiteConfig& config);

}  // namespace tlr::core
