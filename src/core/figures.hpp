// Figure runners: assemble the exact series each paper figure plots,
// with the paper's aggregation discipline (§4.1: speed-ups average with
// harmonic means, percentages with arithmetic means) and render them as
// tables. One bench binary per figure calls into these.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/profile.hpp"
#include "core/study.hpp"
#include "reuse/rtm_sim.hpp"
#include "spec/predictor.hpp"
#include "util/table.hpp"

namespace tlr::core {

class StudyEngine;

/// One per-benchmark series (a bar chart in the paper): values for the
/// 14 programs plus AVG_FP / AVG_INT / AVERAGE aggregates.
struct BenchSeries {
  std::string title;
  std::vector<std::string> names;  // 14 benchmarks, figure order
  std::vector<bool> is_fp;
  std::vector<double> values;
  double avg_fp = 0.0;
  double avg_int = 0.0;
  double avg_all = 0.0;

  TextTable to_table(const std::string& value_header,
                     int precision = 2) const;
};

/// Aggregation discipline for BenchSeries construction.
enum class Aggregate { kArithmetic, kHarmonic };

BenchSeries make_series(std::string title,
                        const std::vector<WorkloadMetrics>& suite,
                        double (*extract)(const WorkloadMetrics&),
                        Aggregate aggregate);

// ---- Figure 3: instruction-level reusability, perfect engine ---------
BenchSeries fig3_reusability(const std::vector<WorkloadMetrics>& suite);

// ---- Figures 4a/5a: ILR speed-up at 1-cycle latency -------------------
BenchSeries fig4a_ilr_speedup_inf(const std::vector<WorkloadMetrics>& suite);
BenchSeries fig5a_ilr_speedup_win(const std::vector<WorkloadMetrics>& suite);

// ---- Figures 4b/5b: average ILR speed-up vs reuse latency -------------
/// Returns one harmonic-mean speed-up per configured latency.
std::vector<double> fig4b_ilr_latency_sweep(
    const std::vector<WorkloadMetrics>& suite);
std::vector<double> fig5b_ilr_latency_sweep(
    const std::vector<WorkloadMetrics>& suite);

// ---- Figure 6: trace-level reuse speed-up ------------------------------
BenchSeries fig6a_trace_speedup_inf(const std::vector<WorkloadMetrics>& suite);
BenchSeries fig6b_trace_speedup_win(const std::vector<WorkloadMetrics>& suite);

// ---- Figure 7: average maximal trace size ------------------------------
BenchSeries fig7_trace_size(const std::vector<WorkloadMetrics>& suite);

// ---- Figure 8: trace reuse latency sensitivity (finite window) --------
std::vector<double> fig8a_latency_sweep(
    const std::vector<WorkloadMetrics>& suite);
std::vector<double> fig8b_proportional_sweep(
    const std::vector<WorkloadMetrics>& suite);

/// §4.5 text statistics: average trace inputs/outputs and per-
/// instruction read/write bandwidth.
struct TraceIoStats {
  double avg_size = 0.0;
  double reg_inputs = 0.0, mem_inputs = 0.0;
  double reg_outputs = 0.0, mem_outputs = 0.0;
  double reads_per_inst = 0.0, writes_per_inst = 0.0;
};
TraceIoStats trace_io_stats(const std::vector<WorkloadMetrics>& suite);

// ---- Figure 9: realistic implementation (finite RTM) -------------------
/// The heuristics on Fig 9's X axis, in order.
struct Fig9Heuristic {
  std::string label;  // "ILR NE", "ILR EXP", "I1 EXP" ... "I8 EXP"
  reuse::CollectHeuristic heuristic;
  u32 fixed_n = 0;
};
std::vector<Fig9Heuristic> fig9_heuristics();

/// The RTM capacities on Fig 9's legend, in order.
std::vector<std::pair<std::string, reuse::RtmGeometry>> fig9_geometries();

struct Fig9Cell {
  double reuse_fraction = 0.0;      // Fig 9a (suite arithmetic mean)
  double avg_trace_size = 0.0;      // Fig 9b
};
struct Fig9Result {
  // result[h][g]: heuristic h under geometry g.
  std::vector<std::vector<Fig9Cell>> cells;
  TextTable reusability_table() const;
  TextTable trace_size_table() const;
};

/// One (workload, heuristic) fig9 job: the raw per-geometry values the
/// suite matrix aggregates. This is the unit both the monolithic
/// fig9_finite_rtm fan-out and the shard runner (core/shard.hpp)
/// dispatch, so a shard's numbers are bit-identical to the monolithic
/// run's contribution for that workload.
std::vector<Fig9Cell> fig9_workload_heuristic(
    const StudyEngine& engine, const SuiteConfig& config,
    std::string_view workload, const Fig9Heuristic& heuristic,
    reuse::ReuseTestKind test = reuse::ReuseTestKind::kValueCompare);

/// The suite reduction fig9_finite_rtm applies: arithmetic mean across
/// workloads, in slot order, per (heuristic, geometry) cell.
/// `workload_cells[w][h][g]` must be rectangular over the full
/// heuristic x geometry matrix.
Fig9Result fig9_aggregate(
    const std::vector<std::vector<std::vector<Fig9Cell>>>& workload_cells);

/// Runs the finite-RTM simulation matrix over the suite. This is the
/// most expensive experiment; `config.length` governs its cost.
Fig9Result fig9_finite_rtm(const SuiteConfig& config,
                           reuse::ReuseTestKind test =
                               reuse::ReuseTestKind::kValueCompare);

struct Fig9Options {
  reuse::ReuseTestKind test = reuse::ReuseTestKind::kValueCompare;
  /// Workload subset; empty means the full suite in figure order.
  std::vector<std::string> workloads;
  /// Invoked (under a lock) after each (workload, heuristic) job.
  std::function<void(usize done, usize total)> progress;
};

/// Same matrix on a caller-owned engine, with per-workload stream
/// windows from `profile` (the report pipeline's entry point).
Fig9Result fig9_finite_rtm(StudyEngine& engine, const ScaleProfile& profile,
                           const Fig9Options& options = {});

// ---- Figure 10 (ours): speculative trace reuse -------------------------
//
// The limit study prices reuse with the oracle rule; fig10 sweeps the
// realizable side of that bound: (predictor x squash penalty x RTM
// capacity) under one trace-collection heuristic, reporting committed
// reuse, attempt accuracy, misspeculation rate and the finite-window
// speed-up against the base machine (DESIGN.md §8). The oracle
// predictor at any penalty recovers the limit pricing exactly.

/// The default predictor set, in row order: oracle, last_value,
/// confidence.
std::vector<spec::PredictorConfig> fig10_predictors();

struct Fig10Options {
  /// Predictor rows; empty means fig10_predictors().
  std::vector<spec::PredictorConfig> predictors;
  /// Squash/recovery penalties (cycles) for the speed-up sweep.
  std::vector<Cycle> penalties = {0, 8, 32};
  /// Trace-collection heuristic shared by every cell (the predictor is
  /// the axis under study; I4 EXP is fig9's balanced middle).
  reuse::CollectHeuristic heuristic = reuse::CollectHeuristic::kFixedExpand;
  u32 fixed_n = 4;
  /// Workload subset; empty means the full suite in figure order.
  std::vector<std::string> workloads;
  /// Invoked (under a lock) after each (workload, predictor) job.
  std::function<void(usize done, usize total)> progress;
};

struct Fig10Cell {
  double reuse_fraction = 0.0;  // committed reuse (arithmetic mean)
  double accuracy = 0.0;        // attempt accuracy (suite-pooled ratio)
  double misspec_rate = 0.0;    // misspecs/instruction (arithmetic mean)
  /// Harmonic-mean speed-up vs the base machine, one per penalty.
  std::vector<double> speedups;
};

struct Fig10Result {
  std::vector<std::string> predictors;  // labels, row order
  std::vector<Cycle> penalties;
  std::vector<std::string> geometries;  // fig9's capacity labels
  // cells[p][g]: predictor p under geometry g.
  std::vector<std::vector<Fig10Cell>> cells;

  TextTable speedup_table(usize penalty_index) const;
  TextTable reuse_table() const;
};

/// Raw per-workload fig10 values: everything the suite reduction needs
/// (the pooled-accuracy numerator/denominator stay exact u64s — the
/// per-workload ratio alone cannot reproduce the pooled accuracy).
struct Fig10WorkloadCell {
  double reuse_fraction = 0.0;
  double misspec_rate = 0.0;
  u64 correct = 0;
  u64 attempts = 0;
  std::vector<double> speedups;  // one per penalty, workload-level
};

/// One (workload, predictor) fig10 job: raw per-geometry cells. Shared
/// by the monolithic fan-out and the shard runner; `options` supplies
/// penalties/heuristic/fixed_n (its predictors/workloads are ignored).
std::vector<Fig10WorkloadCell> fig10_workload_predictor(
    const StudyEngine& engine, const SuiteConfig& config,
    std::string_view workload, const spec::PredictorConfig& predictor,
    const Fig10Options& options);

/// The suite reduction fig10_speculative_reuse applies: arithmetic
/// means for fractions/rates, pooled correct/attempts for accuracy,
/// harmonic means for speed-ups — across workloads in slot order.
/// `workload_cells[w][p][g]` must be rectangular.
Fig10Result fig10_aggregate(
    std::vector<std::string> predictor_labels, std::vector<Cycle> penalties,
    const std::vector<std::vector<std::vector<Fig10WorkloadCell>>>&
        workload_cells);

/// Runs the speculative-reuse matrix over the suite: one chunked pass
/// per (workload, predictor) feeds all geometries, each priced at
/// every penalty (the functional simulation is penalty-independent).
Fig10Result fig10_speculative_reuse(StudyEngine& engine,
                                    const ScaleProfile& profile,
                                    const Fig10Options& options = {});

}  // namespace tlr::core
