// Named scale profiles over core::SuiteConfig (DESIGN.md §6).
//
// The paper reports every figure at skip-25M / measure-50M per
// benchmark; the library's defaults are laptop-scale. A ScaleProfile
// names one point on that axis — `laptop`, `ci`, `paper` — as a base
// SuiteConfig plus optional per-workload skip/measure overrides (some
// analogs need a longer warm-up than the suite-wide default before
// their reuse tables reach steady state). Everything that publishes
// numbers (tools/reuse_study, the report module, CI) selects runs by
// profile name so a report is reproducible from its own metadata.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/study.hpp"

namespace tlr::core {

struct ScaleProfile {
  /// Per-workload stream-window override (skip/measure only; seed and
  /// window size always come from the base config).
  struct Override {
    std::string workload;
    u64 skip = 0;
    u64 length = 0;
  };

  std::string name;
  SuiteConfig base;
  std::vector<Override> overrides;

  /// The effective SuiteConfig for one workload: the base with this
  /// workload's skip/measure override applied, if any.
  SuiteConfig config_for(std::string_view workload) const;

  // ---- the named presets (DESIGN.md §6 table) -------------------------
  /// Library defaults: skip 50K / measure 400K, full suite in seconds.
  static ScaleProfile laptop();
  /// CI budget: skip 10K / measure 80K, with longer warm-up for the
  /// analogs whose reuse tables fill slowest.
  static ScaleProfile ci();
  /// The paper's Figures 3-9 scale: skip 25M / measure 50M.
  static ScaleProfile paper();

  /// An anonymous profile wrapping an explicit config (bench env
  /// overrides, tests).
  static ScaleProfile custom(const SuiteConfig& config);

  /// Preset lookup by name; nullopt for unknown names.
  static std::optional<ScaleProfile> named(std::string_view name);
  /// The preset names, in documentation order.
  static std::span<const std::string_view> names();
};

}  // namespace tlr::core
