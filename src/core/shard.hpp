// Sharded, resumable study runs (DESIGN.md §9).
//
// A profile run splits into independent shards keyed by
// (workload x figure section): the per-workload suite pass that feeds
// workloads[] and figures 3-8, the finite-RTM matrix column (fig9),
// and the speculative-reuse matrix column (fig10). Each shard runs off
// the same single-pass StudyEngine consumers as the monolithic run and
// emits a self-describing partial report — schema `tlr-report/1` plus
// a `shard` metadata block and a `raw` block holding the per-workload
// values the suite reductions aggregate. merge_partials() validates a
// complete, provenance-consistent partial set (same git SHA, profile,
// options, predictor config) and rebuilds the monolithic report
// byte-identically: raw values round-trip exactly through JSON
// (integers exact, doubles shortest-round-trip) and the merge applies
// the exact reductions of core/figures.cpp in the same workload order,
// so `merge(shards(run)) == run` down to the bytes — pinned against
// the committed laptop golden by tests/core/shard_test.cpp and the
// `tools.reuse_study_sharded_golden` ctest entry.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/figures.hpp"
#include "core/profile.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "util/json.hpp"

namespace tlr::core {

class StudyEngine;

/// Section names, as they appear in shard keys and partial reports.
/// `suite` is the per-workload metrics pass (always planned — every
/// report carries workloads[]); fig9/fig10 are the optional matrices.
inline constexpr std::string_view kShardSectionSuite = "suite";
inline constexpr std::string_view kShardSectionFig9 = "fig9";
inline constexpr std::string_view kShardSectionFig10 = "fig10";

struct ShardKey {
  std::string workload;
  std::string section;
  friend bool operator==(const ShardKey&, const ShardKey&) = default;
};

/// Upper bound on a run's shard count, far above any useful fan-out
/// (the default plan has 28 keys). Enforced when parsing partials and
/// by the CLI, so a corrupt or hostile `count` cannot drive the
/// merge's per-shard bookkeeping to absurd allocations.
inline constexpr usize kMaxShardCount = 1'000'000;

/// What the run computes beyond the always-on suite pass: `series`
/// derives figures 3-8 from the suite metrics, fig9/fig10 add their
/// matrices (and their per-workload shard keys).
struct SectionSelection {
  bool series = true;
  bool fig9 = true;
  bool fig10 = false;
  friend bool operator==(const SectionSelection&,
                         const SectionSelection&) = default;
};

/// The full, stably-ordered shard key list for one run. Enumeration
/// depends only on the selection and the workload list — never on
/// thread count, chunk size, or profile scale — so every participant
/// of a fanned-out run (local shells, CI matrix jobs, the merge)
/// reconstructs the identical plan from the run parameters alone.
class ShardPlan {
 public:
  /// Keys in section-major order: one `suite` key per workload, then
  /// one `fig9` key per workload (when selected), then `fig10`.
  /// Workloads keep request order; empty means the full suite in
  /// figure order.
  static ShardPlan enumerate(const SectionSelection& sections,
                             std::span<const std::string> workload_names = {});

  const std::vector<ShardKey>& keys() const { return keys_; }
  usize size() const { return keys_.size(); }
  const std::vector<std::string>& workloads() const { return workloads_; }
  const SectionSelection& sections() const { return sections_; }

  /// The keys of 1-based shard `index` of `count`: the round-robin
  /// slice keys()[i] with i % count == index-1, order preserved.
  /// Slices partition the plan for any count >= 1 (shards beyond
  /// size() are empty, which is valid).
  std::vector<ShardKey> slice(usize index, usize count) const;

 private:
  std::vector<ShardKey> keys_;
  std::vector<std::string> workloads_;
  SectionSelection sections_;
};

/// Canonical partial file name inside a --resume directory:
/// "shard-<K>-of-<N>.json", K zero-padded to N's width so names sort
/// in shard order.
std::string shard_file_name(usize index, usize count);

/// Everything a shard run needs beyond the profile: the suite metric
/// options plus the fig9/fig10 experiment shapes. The `workloads` and
/// `progress` members of the nested fig options are ignored (the plan
/// owns workload selection; progress flows through ShardProgress).
struct ShardRunOptions {
  MetricOptions metrics;
  Fig9Options fig9;
  Fig10Options fig10;

  /// The fig10 predictor rows this run resolves to (the default set
  /// when fig10.predictors is empty).
  std::vector<spec::PredictorConfig> resolved_predictors() const;
};

/// Invoked (under a lock, from worker threads) after each completed
/// shard job with a human-readable label ("compress fig9 I4 EXP").
using ShardProgress =
    std::function<void(std::string_view label, usize done, usize total)>;

/// Runs shard `index` of `count` on the engine and returns its partial
/// report. Jobs fan across the engine pool at the same granularity as
/// the monolithic run — (workload) for the suite pass, (workload x
/// heuristic) for fig9, (workload x predictor) for fig10 — so a
/// shard's raw values are bit-identical to the monolithic run's
/// contribution for those keys. `meta.wall_seconds` is filled with the
/// summed wall time of the shard's jobs.
util::Json run_shard_partial(StudyEngine& engine, const ScaleProfile& profile,
                             const ShardPlan& plan, usize index, usize count,
                             const ShardRunOptions& options, ReportMeta meta,
                             const ShardProgress& progress = nullptr);

/// Runs several shards through ONE engine fan-out: the union of their
/// jobs saturates the pool (sequential per-shard runs would barrier
/// after every slice — fatal when the default plan makes each suite
/// shard a single job), while `on_partial(index, partial)` fires as
/// each shard's keys complete, so checkpoint granularity stays
/// per-shard. `on_partial` is invoked from worker threads, serialized
/// under a lock; it may do I/O. This is --resume's engine.
void run_shard_partials(
    StudyEngine& engine, const ScaleProfile& profile, const ShardPlan& plan,
    std::span<const usize> indices, usize count,
    const ShardRunOptions& options, const ReportMeta& meta,
    const std::function<void(usize index, util::Json partial)>& on_partial,
    const ShardProgress& progress = nullptr);

/// Whether `partial` is a complete partial for shard `index`/`count`
/// of this exact run context: schema, git SHA (of this build), profile,
/// metric options, selection, workload list, fig9/fig10 headers, and
/// content coverage of every key in the slice. --resume skips shards
/// whose on-disk partial validates; anything else is re-run.
bool validate_partial(const util::Json& partial, const ScaleProfile& profile,
                      const ShardRunOptions& options, const ShardPlan& plan,
                      usize index, usize count, std::string* why = nullptr);

/// Combines a complete set of partials into the monolithic report.
/// Refuses (returns nullopt, appending human-readable messages to
/// `errors`) on mismatched provenance — git SHA, profile, options,
/// selection, workload list, fig9/fig10 headers — on missing or
/// duplicate shards, and on structurally malformed partials. The
/// result is byte-identical to the monolithic run's report outside
/// the `meta` block (merged meta: threads/chunk_size 0, wall_seconds
/// summed across partials).
///
/// `labels` optionally names each partial's source (the file path the
/// CLI read it from, parallel to `partials`): error messages then cite
/// the offending file instead of the bare positional index — a
/// duplicate names both files that claim the slot, a missing shard
/// names its canonical checkpoint file.
std::optional<util::Json> merge_partials(
    std::span<const util::Json> partials,
    std::vector<std::string>* errors = nullptr,
    std::span<const std::string> labels = {});

}  // namespace tlr::core
