#include "core/figures.hpp"

#include <memory>
#include <mutex>
#include <utility>

#include "core/engine.hpp"
#include "obs/trace.hpp"
#include "spec/consumer.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace tlr::core {

TextTable BenchSeries::to_table(const std::string& value_header,
                                int precision) const {
  TextTable table(title);
  table.set_columns({"benchmark", value_header});
  for (usize i = 0; i < names.size(); ++i) {
    table.begin_row();
    table.add_cell(names[i]);
    table.add_number(values[i], precision);
  }
  auto add_avg = [&](const char* label, double value) {
    table.begin_row();
    table.add_cell(label);
    table.add_number(value, precision);
  };
  add_avg("AVG_FP", avg_fp);
  add_avg("AVG_INT", avg_int);
  add_avg("AVERAGE", avg_all);
  return table;
}

BenchSeries make_series(std::string title,
                        const std::vector<WorkloadMetrics>& suite,
                        double (*extract)(const WorkloadMetrics&),
                        Aggregate aggregate) {
  BenchSeries series;
  series.title = std::move(title);
  std::vector<double> fp_values, int_values, all_values;
  for (const WorkloadMetrics& metrics : suite) {
    const double value = extract(metrics);
    series.names.push_back(metrics.name);
    series.is_fp.push_back(metrics.is_fp);
    series.values.push_back(value);
    (metrics.is_fp ? fp_values : int_values).push_back(value);
    all_values.push_back(value);
  }
  const auto mean = [aggregate](std::span<const double> xs) {
    return aggregate == Aggregate::kHarmonic ? harmonic_mean(xs)
                                             : arithmetic_mean(xs);
  };
  series.avg_fp = mean(fp_values);
  series.avg_int = mean(int_values);
  series.avg_all = mean(all_values);
  return series;
}

BenchSeries fig3_reusability(const std::vector<WorkloadMetrics>& suite) {
  return make_series(
      "Figure 3: instruction-level reusability (%), perfect engine", suite,
      [](const WorkloadMetrics& m) { return m.reusability * 100.0; },
      Aggregate::kArithmetic);
}

BenchSeries fig4a_ilr_speedup_inf(const std::vector<WorkloadMetrics>& suite) {
  return make_series(
      "Figure 4a: ILR speed-up, infinite window, 1-cycle reuse latency",
      suite, [](const WorkloadMetrics& m) { return m.ilr_speedup_inf(0); },
      Aggregate::kHarmonic);
}

BenchSeries fig5a_ilr_speedup_win(const std::vector<WorkloadMetrics>& suite) {
  return make_series(
      "Figure 5a: ILR speed-up, 256-entry window, 1-cycle reuse latency",
      suite, [](const WorkloadMetrics& m) { return m.ilr_speedup_win(0); },
      Aggregate::kHarmonic);
}

namespace {

std::vector<double> latency_sweep(const std::vector<WorkloadMetrics>& suite,
                                  usize points,
                                  double (*extract)(const WorkloadMetrics&,
                                                    usize)) {
  std::vector<double> sweep;
  for (usize lat = 0; lat < points; ++lat) {
    std::vector<double> speedups;
    speedups.reserve(suite.size());
    for (const WorkloadMetrics& metrics : suite) {
      speedups.push_back(extract(metrics, lat));
    }
    sweep.push_back(harmonic_mean(speedups));
  }
  return sweep;
}

}  // namespace

std::vector<double> fig4b_ilr_latency_sweep(
    const std::vector<WorkloadMetrics>& suite) {
  TLR_ASSERT(!suite.empty());
  return latency_sweep(suite, suite.front().ilr_inf.size(),
                       [](const WorkloadMetrics& m, usize lat) {
                         return m.ilr_speedup_inf(lat);
                       });
}

std::vector<double> fig5b_ilr_latency_sweep(
    const std::vector<WorkloadMetrics>& suite) {
  TLR_ASSERT(!suite.empty());
  return latency_sweep(suite, suite.front().ilr_win.size(),
                       [](const WorkloadMetrics& m, usize lat) {
                         return m.ilr_speedup_win(lat);
                       });
}

BenchSeries fig6a_trace_speedup_inf(const std::vector<WorkloadMetrics>& suite) {
  return make_series(
      "Figure 6a: trace-level reuse speed-up, infinite window, 1-cycle "
      "latency",
      suite, [](const WorkloadMetrics& m) { return m.trace_speedup_inf(); },
      Aggregate::kHarmonic);
}

BenchSeries fig6b_trace_speedup_win(const std::vector<WorkloadMetrics>& suite) {
  return make_series(
      "Figure 6b: trace-level reuse speed-up, 256-entry window, 1-cycle "
      "latency",
      suite, [](const WorkloadMetrics& m) { return m.trace_speedup_win(0); },
      Aggregate::kHarmonic);
}

BenchSeries fig7_trace_size(const std::vector<WorkloadMetrics>& suite) {
  return make_series(
      "Figure 7: average maximal trace size (instructions)", suite,
      [](const WorkloadMetrics& m) { return m.trace_stats.avg_size; },
      Aggregate::kArithmetic);
}

std::vector<double> fig8a_latency_sweep(
    const std::vector<WorkloadMetrics>& suite) {
  TLR_ASSERT(!suite.empty());
  return latency_sweep(suite, suite.front().trace_win.size(),
                       [](const WorkloadMetrics& m, usize lat) {
                         return m.trace_speedup_win(lat);
                       });
}

std::vector<double> fig8b_proportional_sweep(
    const std::vector<WorkloadMetrics>& suite) {
  TLR_ASSERT(!suite.empty());
  return latency_sweep(suite, suite.front().trace_win_prop.size(),
                       [](const WorkloadMetrics& m, usize k) {
                         return m.trace_speedup_prop(k);
                       });
}

TraceIoStats trace_io_stats(const std::vector<WorkloadMetrics>& suite) {
  TraceIoStats stats;
  std::vector<double> size, reg_in, mem_in, reg_out, mem_out;
  for (const WorkloadMetrics& metrics : suite) {
    size.push_back(metrics.trace_stats.avg_size);
    reg_in.push_back(metrics.trace_stats.avg_reg_inputs);
    mem_in.push_back(metrics.trace_stats.avg_mem_inputs);
    reg_out.push_back(metrics.trace_stats.avg_reg_outputs);
    mem_out.push_back(metrics.trace_stats.avg_mem_outputs);
  }
  stats.avg_size = arithmetic_mean(size);
  stats.reg_inputs = arithmetic_mean(reg_in);
  stats.mem_inputs = arithmetic_mean(mem_in);
  stats.reg_outputs = arithmetic_mean(reg_out);
  stats.mem_outputs = arithmetic_mean(mem_out);
  if (stats.avg_size > 0) {
    stats.reads_per_inst =
        (stats.reg_inputs + stats.mem_inputs) / stats.avg_size;
    stats.writes_per_inst =
        (stats.reg_outputs + stats.mem_outputs) / stats.avg_size;
  }
  return stats;
}

// ---- Figure 9 --------------------------------------------------------

std::vector<Fig9Heuristic> fig9_heuristics() {
  std::vector<Fig9Heuristic> heuristics;
  heuristics.push_back({"ILR NE", reuse::CollectHeuristic::kIlrNoExpand, 0});
  heuristics.push_back({"ILR EXP", reuse::CollectHeuristic::kIlrExpand, 0});
  for (u32 n = 1; n <= 8; ++n) {
    heuristics.push_back({"I" + std::to_string(n) + " EXP",
                          reuse::CollectHeuristic::kFixedExpand, n});
  }
  return heuristics;
}

std::vector<std::pair<std::string, reuse::RtmGeometry>> fig9_geometries() {
  return {
      {"512", reuse::RtmGeometry::rtm512()},
      {"4K", reuse::RtmGeometry::rtm4k()},
      {"32K", reuse::RtmGeometry::rtm32k()},
      {"256K", reuse::RtmGeometry::rtm256k()},
  };
}

namespace {

TextTable fig9_table(const Fig9Result& result, const std::string& title,
                     double (*pick)(const Fig9Cell&), int precision) {
  TextTable table(title);
  std::vector<std::string> headers = {"heuristic"};
  for (const auto& [label, geometry] : fig9_geometries()) {
    headers.push_back(label + " traces");
  }
  table.set_columns(std::move(headers));
  const auto heuristics = fig9_heuristics();
  for (usize h = 0; h < heuristics.size(); ++h) {
    table.begin_row();
    table.add_cell(heuristics[h].label);
    for (usize g = 0; g < result.cells[h].size(); ++g) {
      table.add_number(pick(result.cells[h][g]), precision);
    }
  }
  return table;
}

}  // namespace

TextTable Fig9Result::reusability_table() const {
  return fig9_table(
      *this, "Figure 9a: reused instructions (%), realistic RTM",
      [](const Fig9Cell& cell) { return cell.reuse_fraction * 100.0; }, 1);
}

TextTable Fig9Result::trace_size_table() const {
  return fig9_table(
      *this, "Figure 9b: average reused trace size, realistic RTM",
      [](const Fig9Cell& cell) { return cell.avg_trace_size; }, 2);
}

Fig9Result fig9_finite_rtm(const SuiteConfig& config,
                           reuse::ReuseTestKind test) {
  StudyEngine engine;
  Fig9Options options;
  options.test = test;
  return fig9_finite_rtm(engine, ScaleProfile::custom(config), options);
}

std::vector<Fig9Cell> fig9_workload_heuristic(const StudyEngine& engine,
                                              const SuiteConfig& config,
                                              std::string_view workload,
                                              const Fig9Heuristic& heuristic,
                                              reuse::ReuseTestKind test) {
  obs::Span span("fig9_job", "figures");
  span.set_arg("workload", workload);
  const auto geometries = fig9_geometries();
  std::vector<std::unique_ptr<RtmSimConsumer>> sims;
  std::vector<StreamConsumer*> consumers;
  for (usize g = 0; g < geometries.size(); ++g) {
    reuse::RtmSimConfig sim_config;
    sim_config.geometry = geometries[g].second;
    sim_config.heuristic = heuristic.heuristic;
    sim_config.fixed_n = heuristic.fixed_n == 0 ? 4 : heuristic.fixed_n;
    sim_config.reuse_test = test;
    sims.push_back(std::make_unique<RtmSimConsumer>(sim_config));
    consumers.push_back(sims.back().get());
  }
  engine.run_workload_stream(workload, config, consumers);
  std::vector<Fig9Cell> cells(geometries.size());
  for (usize g = 0; g < geometries.size(); ++g) {
    const reuse::RtmSimResult& sim = sims[g]->result();
    cells[g].reuse_fraction = sim.reuse_fraction();
    cells[g].avg_trace_size = sim.avg_reused_trace_size();
  }
  return cells;
}

Fig9Result fig9_aggregate(
    const std::vector<std::vector<std::vector<Fig9Cell>>>& workload_cells) {
  const usize heuristics = fig9_heuristics().size();
  const usize geometries = fig9_geometries().size();
  Fig9Result result;
  result.cells.assign(heuristics, std::vector<Fig9Cell>(geometries));
  // Per-benchmark values accumulate in workload slot order, so the
  // reduction is deterministic whatever order the values were produced
  // in — and identical between the monolithic and sharded paths.
  std::vector<double> fracs(workload_cells.size());
  std::vector<double> sizes(workload_cells.size());
  for (usize h = 0; h < heuristics; ++h) {
    for (usize g = 0; g < geometries; ++g) {
      for (usize w = 0; w < workload_cells.size(); ++w) {
        TLR_ASSERT(workload_cells[w].size() == heuristics &&
                   workload_cells[w][h].size() == geometries);
        fracs[w] = workload_cells[w][h][g].reuse_fraction;
        sizes[w] = workload_cells[w][h][g].avg_trace_size;
      }
      result.cells[h][g].reuse_fraction = arithmetic_mean(fracs);
      result.cells[h][g].avg_trace_size = arithmetic_mean(sizes);
    }
  }
  return result;
}

Fig9Result fig9_finite_rtm(StudyEngine& engine, const ScaleProfile& profile,
                           const Fig9Options& options) {
  const auto heuristics = fig9_heuristics();
  std::vector<std::string> names(options.workloads.begin(),
                                 options.workloads.end());
  if (names.empty()) {
    for (const std::string_view name : workloads::workload_names()) {
      names.emplace_back(name);
    }
  }

  // Raw accumulators in fixed [workload][heuristic] slots.
  std::vector<std::vector<std::vector<Fig9Cell>>> raw(
      names.size(), std::vector<std::vector<Fig9Cell>>(heuristics.size()));

  // Fan (workload x heuristic) jobs across the pool; within a job one
  // chunked interpreter pass feeds all four RTM capacities at once.
  // (Grouping by heuristic rather than running all 40 simulators off
  // one pass bounds the number of live RTMs — a 256K-entry RTM is
  // ~100MB — while still never materialising a stream.)
  std::mutex progress_mutex;
  usize done = 0;
  const usize total = names.size() * heuristics.size();
  engine.parallel_for(total, [&](usize job) {
    const usize w = job / heuristics.size();
    const usize h = job % heuristics.size();
    raw[w][h] = fig9_workload_heuristic(
        engine, profile.config_for(names[w]), names[w], heuristics[h],
        options.test);
    if (options.progress) {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      options.progress(++done, total);
    }
  });

  return fig9_aggregate(raw);
}

// ---- Figure 10 -------------------------------------------------------

std::vector<spec::PredictorConfig> fig10_predictors() {
  std::vector<spec::PredictorConfig> predictors(3);
  predictors[0].kind = spec::PredictorKind::kOracle;
  predictors[1].kind = spec::PredictorKind::kLastValue;
  predictors[2].kind = spec::PredictorKind::kConfidence;
  return predictors;
}

TextTable Fig10Result::speedup_table(usize penalty_index) const {
  TLR_ASSERT(penalty_index < penalties.size());
  TextTable table("Figure 10: speculative trace-reuse speed-up, penalty " +
                  std::to_string(penalties[penalty_index]) + " cycles");
  std::vector<std::string> headers = {"predictor"};
  for (const std::string& label : geometries) {
    headers.push_back(label + " traces");
  }
  table.set_columns(std::move(headers));
  for (usize p = 0; p < predictors.size(); ++p) {
    table.begin_row();
    table.add_cell(predictors[p]);
    for (usize g = 0; g < geometries.size(); ++g) {
      table.add_number(cells[p][g].speedups[penalty_index], 3);
    }
  }
  return table;
}

TextTable Fig10Result::reuse_table() const {
  TextTable table(
      "Figure 10: committed reuse (%) and attempt accuracy (%), "
      "speculative RTM");
  std::vector<std::string> headers = {"predictor"};
  for (const std::string& label : geometries) {
    headers.push_back(label + " reused");
    headers.push_back(label + " accuracy");
  }
  table.set_columns(std::move(headers));
  for (usize p = 0; p < predictors.size(); ++p) {
    table.begin_row();
    table.add_cell(predictors[p]);
    for (usize g = 0; g < geometries.size(); ++g) {
      table.add_number(cells[p][g].reuse_fraction * 100.0, 1);
      table.add_number(cells[p][g].accuracy * 100.0, 1);
    }
  }
  return table;
}

std::vector<Fig10WorkloadCell> fig10_workload_predictor(
    const StudyEngine& engine, const SuiteConfig& config,
    std::string_view workload, const spec::PredictorConfig& predictor,
    const Fig10Options& options) {
  obs::Span span("fig10_job", "figures");
  span.set_arg("workload", workload);
  TLR_ASSERT(!options.penalties.empty());
  const auto geometries = fig9_geometries();

  // One chunked pass per (workload, predictor): all four RTM
  // capacities consume it at once, each priced at every penalty off a
  // single simulator (the functional run is penalty-independent), plus
  // the shared base-machine denominator.
  timing::TimerConfig timer_config;
  timer_config.window = config.window;

  TimingConsumer base(TimingConsumer::Mode::kBase, timer_config);
  std::vector<std::unique_ptr<spec::SpecSimConsumer>> sims;
  std::vector<StreamConsumer*> consumers = {&base};
  for (usize g = 0; g < geometries.size(); ++g) {
    spec::RtmSpecConfig spec_config;
    spec_config.sim.geometry = geometries[g].second;
    spec_config.sim.heuristic = options.heuristic;
    spec_config.sim.fixed_n = options.fixed_n;
    spec_config.predictor = predictor;
    sims.push_back(std::make_unique<spec::SpecSimConsumer>(spec_config));
    for (const Cycle penalty : options.penalties) {
      sims.back()->add_timer(timer_config, penalty);
    }
    consumers.push_back(sims.back().get());
  }
  engine.run_workload_stream(workload, config, consumers);

  const timing::TimerResult base_result = base.result();
  std::vector<Fig10WorkloadCell> cells(geometries.size());
  for (usize g = 0; g < geometries.size(); ++g) {
    const spec::RtmSpecResult& sim = sims[g]->result();
    Fig10WorkloadCell& cell = cells[g];
    cell.reuse_fraction = sim.sim.reuse_fraction();
    cell.correct = sim.spec.correct;
    cell.attempts = sim.spec.attempts();
    cell.misspec_rate = sim.misspec_rate();
    for (usize q = 0; q < options.penalties.size(); ++q) {
      cell.speedups.push_back(
          timing::speedup(base_result, sims[g]->timer(q).result()));
    }
  }
  return cells;
}

Fig10Result fig10_aggregate(
    std::vector<std::string> predictor_labels, std::vector<Cycle> penalties,
    const std::vector<std::vector<std::vector<Fig10WorkloadCell>>>&
        workload_cells) {
  const auto geometries = fig9_geometries();
  Fig10Result result;
  result.predictors = std::move(predictor_labels);
  result.penalties = std::move(penalties);
  for (const auto& [label, geometry] : geometries) {
    result.geometries.push_back(label);
  }
  result.cells.assign(result.predictors.size(),
                      std::vector<Fig10Cell>(geometries.size()));

  for (usize p = 0; p < result.predictors.size(); ++p) {
    for (usize g = 0; g < geometries.size(); ++g) {
      Fig10Cell& cell = result.cells[p][g];
      std::vector<double> fracs, rates;
      u64 correct = 0, attempts = 0;
      for (const auto& per_workload : workload_cells) {
        TLR_ASSERT(per_workload.size() == result.predictors.size() &&
                   per_workload[p].size() == geometries.size());
        const Fig10WorkloadCell& raw_cell = per_workload[p][g];
        fracs.push_back(raw_cell.reuse_fraction);
        rates.push_back(raw_cell.misspec_rate);
        correct += raw_cell.correct;
        attempts += raw_cell.attempts;
      }
      cell.reuse_fraction = arithmetic_mean(fracs);
      // Pooled, not a mean of per-workload ratios: a workload that
      // never attempts must not contribute phantom accuracy.
      cell.accuracy = attempts == 0 ? 0.0
                                    : static_cast<double>(correct) /
                                          static_cast<double>(attempts);
      cell.misspec_rate = arithmetic_mean(rates);
      for (usize q = 0; q < result.penalties.size(); ++q) {
        std::vector<double> speedups;
        for (const auto& per_workload : workload_cells) {
          TLR_ASSERT(per_workload[p][g].speedups.size() ==
                     result.penalties.size());
          speedups.push_back(per_workload[p][g].speedups[q]);
        }
        cell.speedups.push_back(harmonic_mean(speedups));
      }
    }
  }
  return result;
}

Fig10Result fig10_speculative_reuse(StudyEngine& engine,
                                    const ScaleProfile& profile,
                                    const Fig10Options& options) {
  const std::vector<spec::PredictorConfig> predictors =
      options.predictors.empty() ? fig10_predictors() : options.predictors;
  TLR_ASSERT(!options.penalties.empty());
  std::vector<std::string> names(options.workloads.begin(),
                                 options.workloads.end());
  if (names.empty()) {
    for (const std::string_view name : workloads::workload_names()) {
      names.emplace_back(name);
    }
  }

  // Raw accumulators in fixed [workload][predictor] slots —
  // deterministic aggregation for any job completion order.
  std::vector<std::vector<std::vector<Fig10WorkloadCell>>> raw(
      names.size(),
      std::vector<std::vector<Fig10WorkloadCell>>(predictors.size()));

  std::mutex progress_mutex;
  usize done = 0;
  const usize total = names.size() * predictors.size();
  engine.parallel_for(total, [&](usize job) {
    const usize w = job / predictors.size();
    const usize p = job % predictors.size();
    raw[w][p] = fig10_workload_predictor(
        engine, profile.config_for(names[w]), names[w], predictors[p],
        options);
    if (options.progress) {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      options.progress(++done, total);
    }
  });

  std::vector<std::string> labels;
  for (const spec::PredictorConfig& config : predictors) {
    labels.emplace_back(spec::predictor_name(config.kind));
  }
  return fig10_aggregate(std::move(labels), options.penalties, raw);
}

}  // namespace tlr::core
