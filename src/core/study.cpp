#include "core/study.hpp"

#include "reuse/reusability.hpp"
#include "util/assert.hpp"
#include "vm/interpreter.hpp"

namespace tlr::core {

using timing::TimerConfig;
using timing::TimerResult;

std::vector<isa::DynInst> collect_workload_stream(
    std::string_view workload_name, const SuiteConfig& config) {
  workloads::WorkloadParams params;
  params.seed = config.seed;
  const workloads::Workload workload =
      workloads::make_workload(workload_name, params);

  vm::RunLimits limits;
  limits.skip = config.skip;
  limits.max_emitted = config.length;
  return vm::collect_stream(workload.program, limits);
}

WorkloadMetrics analyze_workload(std::string_view workload_name,
                                 const SuiteConfig& config,
                                 const MetricOptions& options) {
  workloads::WorkloadParams params;
  params.seed = config.seed;
  const workloads::Workload workload =
      workloads::make_workload(workload_name, params);

  vm::RunLimits limits;
  limits.skip = config.skip;
  limits.max_emitted = config.length;
  const std::vector<isa::DynInst> stream =
      vm::collect_stream(workload.program, limits);
  TLR_ASSERT_MSG(!stream.empty(), "workload produced no instructions");

  WorkloadMetrics metrics;
  metrics.name = workload.name;
  metrics.is_fp = workload.is_fp;
  metrics.instructions = stream.size();

  // Perfect-engine reusability (Fig 3).
  const reuse::ReusabilityResult reusability =
      reuse::analyze_reusability(stream);
  metrics.reusability = reusability.fraction();

  // Plans for the two reuse styles.
  const timing::ReusePlan instr_plan =
      reuse::build_instr_plan(stream, reusability.reusable);
  const timing::ReusePlan trace_plan =
      reuse::build_max_trace_plan(stream, reusability.reusable);

  if (options.trace_stats) {
    metrics.trace_stats = reuse::compute_trace_stats(trace_plan);
  }

  if (options.timing) {
    TimerConfig base_cfg;
    base_cfg.window = 0;
    metrics.base_inf = timing::compute_timing(stream, nullptr, base_cfg).cycles;
    base_cfg.window = config.window;
    metrics.base_win = timing::compute_timing(stream, nullptr, base_cfg).cycles;

    for (const Cycle latency : options.ilr_latencies) {
      TimerConfig cfg;
      cfg.inst_reuse_latency = latency;
      cfg.window = 0;
      metrics.ilr_inf.push_back(
          timing::compute_timing(stream, &instr_plan, cfg).cycles);
      cfg.window = config.window;
      metrics.ilr_win.push_back(
          timing::compute_timing(stream, &instr_plan, cfg).cycles);
    }

    {
      TimerConfig cfg;
      cfg.trace_reuse_latency = 1;
      cfg.window = 0;
      metrics.trace_inf =
          timing::compute_timing(stream, &trace_plan, cfg).cycles;
    }
    for (const Cycle latency : options.trace_latencies) {
      TimerConfig cfg;
      cfg.trace_reuse_latency = latency;
      cfg.window = config.window;
      metrics.trace_win.push_back(
          timing::compute_timing(stream, &trace_plan, cfg).cycles);
    }
    for (const double k : options.proportional_ks) {
      TimerConfig cfg;
      cfg.proportional_trace_latency = true;
      cfg.trace_latency_k = k;
      cfg.window = config.window;
      metrics.trace_win_prop.push_back(
          timing::compute_timing(stream, &trace_plan, cfg).cycles);
    }
  }

  return metrics;
}

std::vector<WorkloadMetrics> analyze_suite(const SuiteConfig& config,
                                           const MetricOptions& options) {
  std::vector<WorkloadMetrics> all;
  all.reserve(workloads::workload_names().size());
  // One workload at a time: each stream is tens of MB and is released
  // before the next is generated.
  for (const std::string_view name : workloads::workload_names()) {
    all.push_back(analyze_workload(name, config, options));
  }
  return all;
}

}  // namespace tlr::core
