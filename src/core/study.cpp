#include "core/study.hpp"

#include "core/engine.hpp"
#include "vm/interpreter.hpp"

namespace tlr::core {

std::vector<isa::DynInst> collect_workload_stream(
    std::string_view workload_name, const SuiteConfig& config) {
  workloads::WorkloadParams params;
  params.seed = config.seed;
  const workloads::Workload workload =
      workloads::make_workload(workload_name, params);
  return vm::collect_stream(workload.program, suite_limits(config));
}

WorkloadMetrics analyze_workload(std::string_view workload_name,
                                 const SuiteConfig& config,
                                 const MetricOptions& options) {
  return StudyEngine().analyze(workload_name, config, options);
}

std::vector<WorkloadMetrics> analyze_suite(const SuiteConfig& config,
                                           const MetricOptions& options) {
  StudyEngine engine;
  return engine.analyze_suite(config, options);
}

}  // namespace tlr::core
