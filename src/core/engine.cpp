#include "core/engine.hpp"

#include <mutex>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "reuse/instr_table.hpp"
#include "util/assert.hpp"
#include "workloads/workload.hpp"

namespace tlr::core {

using timing::TimerConfig;

// ---- consumers -------------------------------------------------------

void ReusabilityConsumer::consume(const ChunkView& chunk) {
  TLR_ASSERT(chunk.reusable.size() == chunk.insts.size());
  total_ += chunk.insts.size();
  for (const u8 flag : chunk.reusable) reusable_ += flag;
}

void TimingConsumer::consume(const ChunkView& chunk) {
  if (mode_ == Mode::kBase) {
    for (const isa::DynInst& inst : chunk.insts) timer_.step_normal(inst);
    return;
  }
  TLR_ASSERT(chunk.reusable.size() == chunk.insts.size());
  for (usize i = 0; i < chunk.insts.size(); ++i) {
    if (chunk.reusable[i] != 0) {
      timer_.step_inst_reuse(chunk.insts[i]);
    } else {
      timer_.step_normal(chunk.insts[i]);
    }
  }
}

void TraceStatsSink::on_trace(std::span<const isa::DynInst> run,
                              const timing::PlanTrace& trace) {
  (void)run;
  ++traces_;
  covered_ += trace.length;
  size_ += trace.length;
  reg_in_ += trace.reg_inputs;
  mem_in_ += trace.mem_inputs;
  reg_out_ += trace.reg_outputs;
  mem_out_ += trace.mem_outputs;
}

reuse::TraceStats TraceStatsSink::stats() const {
  reuse::TraceStats stats;
  stats.traces = traces_;
  if (traces_ == 0) return stats;
  stats.covered_instructions = covered_;
  const double n = static_cast<double>(traces_);
  stats.avg_size = size_ / n;
  stats.avg_reg_inputs = reg_in_ / n;
  stats.avg_mem_inputs = mem_in_ / n;
  stats.avg_reg_outputs = reg_out_ / n;
  stats.avg_mem_outputs = mem_out_ / n;
  return stats;
}

void MaxTraceConsumer::consume(const ChunkView& chunk) {
  TLR_ASSERT(chunk.reusable.size() == chunk.insts.size());
  for (usize i = 0; i < chunk.insts.size(); ++i) {
    streamer_.push(chunk.insts[i], chunk.reusable[i] != 0);
  }
}

timing::TimerResult RtmSimConsumer::timing_result() const {
  TLR_ASSERT_MSG(timer_.has_value(),
                 "RtmSimConsumer was built without a timing config");
  return timer_->result();
}

// ---- the engine ------------------------------------------------------

vm::RunLimits suite_limits(const SuiteConfig& config) {
  vm::RunLimits limits;
  limits.skip = config.skip;
  limits.max_emitted = config.length;
  return limits;
}

StudyEngine::StudyEngine(const EngineOptions& options) : options_(options) {
  TLR_ASSERT_MSG(options_.chunk_size > 0, "chunk size must be positive");
}

StudyEngine::~StudyEngine() = default;

ThreadPool& StudyEngine::pool() {
  if (!pool_.has_value()) pool_.emplace(options_.threads);
  return *pool_;
}

usize StudyEngine::thread_count() { return pool().thread_count(); }

void StudyEngine::parallel_for(usize n,
                               const std::function<void(usize)>& job) {
  if (n > 0) obs::count(obs::Counter::kEngineJobs, n);
  pool().parallel_for(n, job);
}

u64 StudyEngine::run_stream(const vm::Program& program,
                            const vm::RunLimits& limits,
                            std::span<StreamConsumer* const> consumers) const {
  return run_stream(std::make_shared<const vm::Program>(program), limits,
                    consumers);
}

u64 StudyEngine::run_stream(std::shared_ptr<const vm::Program> program,
                            const vm::RunLimits& limits,
                            std::span<StreamConsumer* const> consumers) const {
  bool want_flags = false;
  for (StreamConsumer* consumer : consumers) {
    want_flags = want_flags || consumer->wants_reusability();
  }

  obs::Span span("stream", "engine");
  vm::StreamSource source(std::move(program), limits, options_.chunk_size);
  reuse::InfiniteInstrTable table;
  std::vector<u8> flags;
  vm::StreamChunk chunk;
  while (source.next(chunk)) {
    ChunkView view;
    view.insts = chunk.view();
    view.first_index = chunk.first_index;
    if (want_flags) {
      flags.resize(chunk.insts.size());
      for (usize i = 0; i < chunk.insts.size(); ++i) {
        flags[i] = table.lookup_insert(chunk.insts[i]) ? 1 : 0;
      }
      view.reusable = std::span<const u8>(flags.data(), flags.size());
    }
    for (StreamConsumer* consumer : consumers) consumer->consume(view);
  }
  const u64 total = source.emitted();
  for (StreamConsumer* consumer : consumers) consumer->finish(total);
  obs::MetricsBlock block;
  block.add(obs::Counter::kEngineStreams, 1);
  block.add(obs::Counter::kEngineInstructions, total);
  obs::flush(block);
  return total;
}

std::shared_ptr<const workloads::Workload> StudyEngine::shared_workload(
    std::string_view name, u64 seed) const {
  const std::lock_guard<std::mutex> lock(workload_mutex_);
  auto& entry = workload_cache_[{std::string(name), seed}];
  if (entry == nullptr) {
    workloads::WorkloadParams params;
    params.seed = seed;
    entry = std::make_shared<const workloads::Workload>(
        workloads::make_workload(name, params));
  }
  return entry;
}

u64 StudyEngine::run_workload_stream(
    std::string_view workload_name, const SuiteConfig& config,
    std::span<StreamConsumer* const> consumers) const {
  const auto workload = shared_workload(workload_name, config.seed);
  // Aliasing shared_ptr: the stream source keeps the whole Workload
  // (hence the program) alive without copying either.
  return run_stream(
      std::shared_ptr<const vm::Program>(workload, &workload->program),
      suite_limits(config), consumers);
}

WorkloadMetrics StudyEngine::analyze(std::string_view workload_name,
                                     const SuiteConfig& config,
                                     const MetricOptions& options) const {
  obs::Span span("analyze", "engine");
  span.set_arg("workload", workload_name);
  const auto workload_ptr = shared_workload(workload_name, config.seed);
  const workloads::Workload& workload = *workload_ptr;

  std::vector<StreamConsumer*> consumers;

  // Perfect-engine reusability (Fig 3).
  ReusabilityConsumer reusability;
  consumers.push_back(&reusability);

  // The shared maximal-trace partition and its sinks.
  MaxTraceConsumer traces;
  TraceStatsSink trace_stats;
  if (options.trace_stats) traces.add_sink(&trace_stats);

  std::optional<TimingConsumer> base_inf, base_win;
  std::vector<std::unique_ptr<TimingConsumer>> ilr_inf, ilr_win;
  std::optional<TraceTimingSink> trace_inf;
  std::vector<std::unique_ptr<TraceTimingSink>> trace_win, trace_prop;

  if (options.timing) {
    TimerConfig base_cfg;
    base_cfg.window = 0;
    base_inf.emplace(TimingConsumer::Mode::kBase, base_cfg);
    consumers.push_back(&*base_inf);
    base_cfg.window = config.window;
    base_win.emplace(TimingConsumer::Mode::kBase, base_cfg);
    consumers.push_back(&*base_win);

    for (const Cycle latency : options.ilr_latencies) {
      TimerConfig cfg;
      cfg.inst_reuse_latency = latency;
      cfg.window = 0;
      ilr_inf.push_back(std::make_unique<TimingConsumer>(
          TimingConsumer::Mode::kInstReuse, cfg));
      consumers.push_back(ilr_inf.back().get());
      cfg.window = config.window;
      ilr_win.push_back(std::make_unique<TimingConsumer>(
          TimingConsumer::Mode::kInstReuse, cfg));
      consumers.push_back(ilr_win.back().get());
    }

    {
      TimerConfig cfg;
      cfg.trace_reuse_latency = 1;
      cfg.window = 0;
      trace_inf.emplace(cfg);
      traces.add_sink(&*trace_inf);
    }
    for (const Cycle latency : options.trace_latencies) {
      TimerConfig cfg;
      cfg.trace_reuse_latency = latency;
      cfg.window = config.window;
      trace_win.push_back(std::make_unique<TraceTimingSink>(cfg));
      traces.add_sink(trace_win.back().get());
    }
    for (const double k : options.proportional_ks) {
      TimerConfig cfg;
      cfg.proportional_trace_latency = true;
      cfg.trace_latency_k = k;
      cfg.window = config.window;
      trace_prop.push_back(std::make_unique<TraceTimingSink>(cfg));
      traces.add_sink(trace_prop.back().get());
    }
  }
  if (traces.has_sinks()) consumers.push_back(&traces);

  const u64 total = run_stream(
      std::shared_ptr<const vm::Program>(workload_ptr, &workload.program),
      suite_limits(config), consumers);
  // A zero-length measure window deliberately skips the workload (the
  // consumers all report empty results); a non-empty window that
  // produced nothing means the stream source is broken.
  TLR_ASSERT_MSG(total > 0 || config.length == 0,
                 "workload produced no instructions");

  WorkloadMetrics metrics;
  metrics.name = workload.name;
  metrics.is_fp = workload.is_fp;
  metrics.instructions = total;
  metrics.reusability = reusability.fraction();
  if (options.trace_stats) metrics.trace_stats = trace_stats.stats();
  if (options.timing) {
    metrics.base_inf = base_inf->result().cycles;
    metrics.base_win = base_win->result().cycles;
    for (const auto& consumer : ilr_inf) {
      metrics.ilr_inf.push_back(consumer->result().cycles);
    }
    for (const auto& consumer : ilr_win) {
      metrics.ilr_win.push_back(consumer->result().cycles);
    }
    metrics.trace_inf = trace_inf->result().cycles;
    for (const auto& sink : trace_win) {
      metrics.trace_win.push_back(sink->result().cycles);
    }
    for (const auto& sink : trace_prop) {
      metrics.trace_win_prop.push_back(sink->result().cycles);
    }
  }
  return metrics;
}

std::vector<WorkloadMetrics> StudyEngine::analyze_suite(
    const SuiteConfig& config, const MetricOptions& options) {
  return analyze_profile(ScaleProfile::custom(config), options);
}

std::vector<WorkloadMetrics> StudyEngine::analyze_profile(
    const ScaleProfile& profile, const MetricOptions& options,
    std::span<const std::string> workload_names,
    const SuiteProgress& progress) {
  std::vector<std::string> names(workload_names.begin(),
                                 workload_names.end());
  if (names.empty()) {
    for (const std::string_view name : workloads::workload_names()) {
      names.emplace_back(name);
    }
  }
  std::vector<WorkloadMetrics> all(names.size());
  std::mutex progress_mutex;
  usize done = 0;
  parallel_for(names.size(), [&](usize i) {
    all[i] = analyze(names[i], profile.config_for(names[i]), options);
    if (progress) {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      progress(names[i], ++done, names.size());
    }
  });
  return all;
}

}  // namespace tlr::core
