// The interpreter executes a Program over a MachineState and streams
// one DynInst per executed instruction to a caller-provided sink.
//
// This plays the role ATOM instrumentation plays in the paper (§4.1):
// it exposes the dynamic instruction stream together with every operand
// location and value. Like the paper we support skipping a warm-up
// prefix (their 25M) and emitting a bounded window (their 50M).
//
// The front end is predecoded (DESIGN.md §10): construction resolves
// every static instruction once into a dense handler index plus a flat
// operand record, so the per-dynamic-instruction step dispatches
// through a compact jump table without re-examining the Instruction
// encoding (immediate-vs-register selection, target casts) each time.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "isa/dyn_inst.hpp"
#include "vm/program.hpp"
#include "vm/state.hpp"

namespace tlr::vm {

struct RunLimits {
  /// Instructions to execute *without* emitting (warm-up skip).
  u64 skip = 0;
  /// Maximum instructions to emit after the skip.
  u64 max_emitted = ~u64{0};
  /// Absolute safety cap on total executed instructions.
  u64 max_executed = u64{1} << 33;
};

struct RunResult {
  u64 executed = 0;   // total instructions executed (incl. skipped)
  u64 emitted = 0;    // instructions delivered to the sink
  bool halted = false;  // program reached kHalt / fell off the end
};

/// Per-instruction sink. Return false to stop the run early.
using InstSink = std::function<bool(const isa::DynInst&)>;

class Interpreter {
 public:
  /// Programs are shared, not copied: the study fans one workload's
  /// program out to many (section × configuration) jobs, and sharing
  /// keeps the instruction vector and data image single-instanced
  /// across all of them. The by-value overload wraps a temporary
  /// (e.g. `Interpreter interp(builder.build());`) without lifetime
  /// hazards.
  explicit Interpreter(Program program);
  explicit Interpreter(std::shared_ptr<const Program> program);

  /// Execute from the program's entry point. The machine state is reset
  /// and the initial data image applied.
  RunResult run(const RunLimits& limits, const InstSink& sink);

  /// Incremental flavour of `run` for chunked streaming: `begin` resets
  /// the machine and arms `limits`; each `emit` call then appends up to
  /// `max` emitted instructions to `out` and returns how many were
  /// appended. A short (possibly zero) count means the program halted
  /// or hit a limit — the stream is exhausted.
  void begin(const RunLimits& limits);
  usize emit(std::vector<isa::DynInst>& out, usize max);

  /// Totals of the incremental run so far (also the `run` result).
  const RunResult& progress() const { return progress_; }

  /// Final architectural state of the last run (for tests and examples).
  const MachineState& state() const { return state_; }

 private:
  /// One predecoded static instruction: the dense dispatch index, the
  /// operand registers, and the already-resolved immediate/target.
  /// `op` is kept for the DynInst record.
  struct Decoded {
    i64 imm = 0;
    isa::Pc target = 0;  // pre-cast branch/call target
    isa::Op op = isa::Op::kHalt;
    u8 handler = 0;      // Handler enum (interpreter.cpp)
    isa::Reg ra = 0, rb = 0, rc = 0;
  };

  void predecode();

  /// Executes one instruction at pc_, filling `out`. Returns false when
  /// the program halts.
  bool step(isa::DynInst& out);

  std::shared_ptr<const Program> program_;
  std::vector<Decoded> decoded_;
  MachineState state_;
  isa::Pc pc_ = 0;
  RunLimits limits_;
  RunResult progress_;
};

/// One chunk of the dynamic stream: the instruction records plus the
/// dynamic index (position in the emitted window) of the first one.
struct StreamChunk {
  std::vector<isa::DynInst> insts;
  u64 first_index = 0;

  std::span<const isa::DynInst> view() const { return insts; }
};

/// Chunked stream source: yields the same dynamic window `run` /
/// `collect_stream` would produce, but in fixed-size chunks, so callers
/// can analyse arbitrarily long streams with O(chunk) memory. This is
/// the vm-side half of the single-pass study engine (core/engine.hpp).
/// The chunk's instruction buffer is caller-owned and reused across
/// `next` calls, so a steady-state stream performs no allocation.
class StreamSource {
 public:
  static constexpr usize kDefaultChunkSize = usize{1} << 15;

  StreamSource(Program program, const RunLimits& limits,
               usize chunk_size = kDefaultChunkSize);
  StreamSource(std::shared_ptr<const Program> program,
               const RunLimits& limits,
               usize chunk_size = kDefaultChunkSize);
  /// Flushes the chunk count to the run counters (obs::kVmChunks, a
  /// run-*shape* counter: it depends on the chunk size by definition).
  ~StreamSource();

  /// Refills `chunk` with the next instructions of the stream. Returns
  /// false — leaving the chunk empty — once the stream is exhausted.
  bool next(StreamChunk& chunk);

  /// Instructions emitted so far (the final stream length once
  /// `next` has returned false).
  u64 emitted() const { return interp_.progress().emitted; }
  bool exhausted() const { return done_; }
  usize chunk_size() const { return chunk_size_; }

 private:
  Interpreter interp_;
  usize chunk_size_;
  u64 next_index_ = 0;
  u64 chunks_ = 0;  // non-empty chunks handed out
  bool done_ = false;
};

/// Convenience: run `program` and materialise the emitted window.
std::vector<isa::DynInst> collect_stream(const Program& program,
                                         const RunLimits& limits);

}  // namespace tlr::vm
