// A Program is the static artifact the interpreter executes: the
// instruction sequence plus the initial memory image (the "data
// segment") and entry point. Programs are built with ProgramBuilder.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "isa/instruction.hpp"
#include "util/types.hpp"

namespace tlr::vm {

struct DataWord {
  Addr addr = 0;  // byte address, 8-aligned
  u64 value = 0;
};

class Program {
 public:
  Program() = default;
  Program(std::string name, std::vector<isa::Instruction> code,
          std::vector<DataWord> data, isa::Pc entry)
      : name_(std::move(name)),
        code_(std::move(code)),
        data_(std::move(data)),
        entry_(entry) {}

  const std::string& name() const { return name_; }
  const std::vector<isa::Instruction>& code() const { return code_; }
  const std::vector<DataWord>& initial_data() const { return data_; }
  isa::Pc entry() const { return entry_; }

  usize size() const { return code_.size(); }
  const isa::Instruction& at(isa::Pc pc) const {
    TLR_ASSERT(pc < code_.size());
    return code_[pc];
  }

 private:
  std::string name_;
  std::vector<isa::Instruction> code_;
  std::vector<DataWord> data_;
  isa::Pc entry_ = 0;
};

}  // namespace tlr::vm
