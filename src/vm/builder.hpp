// ProgramBuilder: a small in-memory assembler with labels, backpatching
// and a bump allocator for the data segment. The fourteen workload
// generators are written directly against this API.
#pragma once

#include <bit>
#include <string>
#include <vector>

#include "isa/instruction.hpp"
#include "isa/reg.hpp"
#include "vm/program.hpp"

namespace tlr::vm {

/// Opaque forward-referenceable code label.
struct Label {
  u32 id = ~u32{0};
};

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  // ---- labels -----------------------------------------------------
  /// Create an unbound label (usable as a branch target immediately).
  Label label();
  /// Bind `l` to the current emission position.
  void bind(Label l);
  /// Create a label already bound to the current position.
  Label here();

  // ---- data segment -----------------------------------------------
  /// Reserve `words` consecutive 8-byte words; returns the base byte
  /// address. Memory is zero-initialised unless poked.
  Addr alloc(usize words);
  /// Set the initial value of the word at `addr`.
  void init_word(Addr addr, u64 value);
  /// Set the initial value to a double's bit pattern.
  void init_double(Addr addr, double value);

  // ---- integer ops (rc <- ra OP rb / imm) ---------------------------
  void add(isa::Reg rc, isa::Reg ra, isa::Reg rb);
  void addi(isa::Reg rc, isa::Reg ra, i64 imm);
  void sub(isa::Reg rc, isa::Reg ra, isa::Reg rb);
  void subi(isa::Reg rc, isa::Reg ra, i64 imm);
  void mul(isa::Reg rc, isa::Reg ra, isa::Reg rb);
  void muli(isa::Reg rc, isa::Reg ra, i64 imm);
  void div(isa::Reg rc, isa::Reg ra, isa::Reg rb);
  void rem(isa::Reg rc, isa::Reg ra, isa::Reg rb);
  void remi(isa::Reg rc, isa::Reg ra, i64 imm);
  void and_(isa::Reg rc, isa::Reg ra, isa::Reg rb);
  void andi(isa::Reg rc, isa::Reg ra, i64 imm);
  void or_(isa::Reg rc, isa::Reg ra, isa::Reg rb);
  void ori(isa::Reg rc, isa::Reg ra, i64 imm);
  void xor_(isa::Reg rc, isa::Reg ra, isa::Reg rb);
  void xori(isa::Reg rc, isa::Reg ra, i64 imm);
  void sll(isa::Reg rc, isa::Reg ra, isa::Reg rb);
  void slli(isa::Reg rc, isa::Reg ra, i64 imm);
  void srl(isa::Reg rc, isa::Reg ra, isa::Reg rb);
  void srli(isa::Reg rc, isa::Reg ra, i64 imm);
  void sra(isa::Reg rc, isa::Reg ra, isa::Reg rb);
  void srai(isa::Reg rc, isa::Reg ra, i64 imm);
  void cmpeq(isa::Reg rc, isa::Reg ra, isa::Reg rb);
  void cmpeqi(isa::Reg rc, isa::Reg ra, i64 imm);
  void cmplt(isa::Reg rc, isa::Reg ra, isa::Reg rb);
  void cmplti(isa::Reg rc, isa::Reg ra, i64 imm);
  void cmple(isa::Reg rc, isa::Reg ra, isa::Reg rb);
  void cmpult(isa::Reg rc, isa::Reg ra, isa::Reg rb);
  void ldi(isa::Reg rc, i64 imm);
  void mov(isa::Reg rc, isa::Reg ra);

  // ---- memory -------------------------------------------------------
  void ldq(isa::Reg rc, isa::Reg base, i64 disp = 0);
  void stq(isa::Reg value, isa::Reg base, i64 disp = 0);
  void ldt(isa::Reg fc, isa::Reg base, i64 disp = 0);
  void stt(isa::Reg fvalue, isa::Reg base, i64 disp = 0);

  // ---- control ------------------------------------------------------
  void br(Label target);
  void beqz(isa::Reg ra, Label target);
  void bnez(isa::Reg ra, Label target);
  void bltz(isa::Reg ra, Label target);
  void bgez(isa::Reg ra, Label target);
  void call(Label target);
  void jmp(isa::Reg ra);
  void ret();
  void halt();

  // ---- floating point ------------------------------------------------
  void fadd(isa::Reg fc, isa::Reg fa, isa::Reg fb);
  void fsub(isa::Reg fc, isa::Reg fa, isa::Reg fb);
  void fmul(isa::Reg fc, isa::Reg fa, isa::Reg fb);
  void fdiv(isa::Reg fc, isa::Reg fa, isa::Reg fb);
  void fsqrt(isa::Reg fc, isa::Reg fa);
  void fneg(isa::Reg fc, isa::Reg fa);
  void fabs_(isa::Reg fc, isa::Reg fa);
  void fcmplt(isa::Reg rc, isa::Reg fa, isa::Reg fb);
  void fcmpeq(isa::Reg rc, isa::Reg fa, isa::Reg fb);
  void fldi(isa::Reg fc, double value);
  void cvtqt(isa::Reg fc, isa::Reg ra);
  void cvttq(isa::Reg rc, isa::Reg fa);

  /// Generic three-register emitter (rc <- ra OP rb). Useful for
  /// parameterised tests and custom workload generators.
  void op3(isa::Op op, isa::Reg rc, isa::Reg ra, isa::Reg rb) {
    emit3(op, rc, ra, rb);
  }

  /// Current emission position.
  isa::Pc pc() const { return static_cast<isa::Pc>(code_.size()); }

  /// Resolve all labels and produce the Program. The builder must not
  /// be reused afterwards. Every referenced label must be bound.
  Program build(isa::Pc entry = 0);

 private:
  void emit(isa::Instruction inst);
  void emit_branch(isa::Op op, isa::Reg ra, Label target);
  void emit3(isa::Op op, isa::Reg rc, isa::Reg ra, isa::Reg rb);
  void emit3i(isa::Op op, isa::Reg rc, isa::Reg ra, i64 imm);

  std::string name_;
  std::vector<isa::Instruction> code_;
  std::vector<DataWord> data_;
  std::vector<isa::Pc> label_pos_;             // kInvalidPc if unbound
  std::vector<std::pair<isa::Pc, u32>> fixups_;  // (inst index, label id)
  Addr next_data_ = 0x10000;  // data segment base; leaves page 0 unused
  bool built_ = false;
};

}  // namespace tlr::vm
