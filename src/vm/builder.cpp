#include "vm/builder.hpp"

#include <bit>
#include <utility>

#include "util/assert.hpp"

namespace tlr::vm {

using isa::Instruction;
using isa::Op;
using isa::Reg;

ProgramBuilder::ProgramBuilder(std::string name) : name_(std::move(name)) {}

Label ProgramBuilder::label() {
  label_pos_.push_back(isa::kInvalidPc);
  return Label{static_cast<u32>(label_pos_.size() - 1)};
}

void ProgramBuilder::bind(Label l) {
  TLR_ASSERT(l.id < label_pos_.size());
  TLR_ASSERT_MSG(label_pos_[l.id] == isa::kInvalidPc,
                 "label bound twice");
  label_pos_[l.id] = pc();
}

Label ProgramBuilder::here() {
  Label l = label();
  bind(l);
  return l;
}

Addr ProgramBuilder::alloc(usize words) {
  const Addr base = next_data_;
  next_data_ += static_cast<Addr>(words) * 8;
  return base;
}

void ProgramBuilder::init_word(Addr addr, u64 value) {
  TLR_ASSERT((addr & 7) == 0);
  data_.push_back(DataWord{addr, value});
}

void ProgramBuilder::init_double(Addr addr, double value) {
  init_word(addr, std::bit_cast<u64>(value));
}

void ProgramBuilder::emit(Instruction inst) {
  TLR_ASSERT(!built_);
  code_.push_back(inst);
}

void ProgramBuilder::emit3(Op op, Reg rc, Reg ra, Reg rb) {
  emit(Instruction{op, ra, rb, rc, 0, false});
}

void ProgramBuilder::emit3i(Op op, Reg rc, Reg ra, i64 imm) {
  emit(Instruction{op, ra, isa::kIntZero, rc, imm, true});
}

void ProgramBuilder::emit_branch(Op op, Reg ra, Label target) {
  TLR_ASSERT(target.id < label_pos_.size());
  fixups_.emplace_back(pc(), target.id);
  emit(Instruction{op, ra, isa::kIntZero, isa::kIntZero, 0, false});
}

// ---- integer -------------------------------------------------------

void ProgramBuilder::add(Reg rc, Reg ra, Reg rb) { emit3(Op::kAdd, rc, ra, rb); }
void ProgramBuilder::addi(Reg rc, Reg ra, i64 imm) { emit3i(Op::kAdd, rc, ra, imm); }
void ProgramBuilder::sub(Reg rc, Reg ra, Reg rb) { emit3(Op::kSub, rc, ra, rb); }
void ProgramBuilder::subi(Reg rc, Reg ra, i64 imm) { emit3i(Op::kSub, rc, ra, imm); }
void ProgramBuilder::mul(Reg rc, Reg ra, Reg rb) { emit3(Op::kMul, rc, ra, rb); }
void ProgramBuilder::muli(Reg rc, Reg ra, i64 imm) { emit3i(Op::kMul, rc, ra, imm); }
void ProgramBuilder::div(Reg rc, Reg ra, Reg rb) { emit3(Op::kDiv, rc, ra, rb); }
void ProgramBuilder::rem(Reg rc, Reg ra, Reg rb) { emit3(Op::kRem, rc, ra, rb); }
void ProgramBuilder::remi(Reg rc, Reg ra, i64 imm) { emit3i(Op::kRem, rc, ra, imm); }
void ProgramBuilder::and_(Reg rc, Reg ra, Reg rb) { emit3(Op::kAnd, rc, ra, rb); }
void ProgramBuilder::andi(Reg rc, Reg ra, i64 imm) { emit3i(Op::kAnd, rc, ra, imm); }
void ProgramBuilder::or_(Reg rc, Reg ra, Reg rb) { emit3(Op::kOr, rc, ra, rb); }
void ProgramBuilder::ori(Reg rc, Reg ra, i64 imm) { emit3i(Op::kOr, rc, ra, imm); }
void ProgramBuilder::xor_(Reg rc, Reg ra, Reg rb) { emit3(Op::kXor, rc, ra, rb); }
void ProgramBuilder::xori(Reg rc, Reg ra, i64 imm) { emit3i(Op::kXor, rc, ra, imm); }
void ProgramBuilder::sll(Reg rc, Reg ra, Reg rb) { emit3(Op::kSll, rc, ra, rb); }
void ProgramBuilder::slli(Reg rc, Reg ra, i64 imm) { emit3i(Op::kSll, rc, ra, imm); }
void ProgramBuilder::srl(Reg rc, Reg ra, Reg rb) { emit3(Op::kSrl, rc, ra, rb); }
void ProgramBuilder::srli(Reg rc, Reg ra, i64 imm) { emit3i(Op::kSrl, rc, ra, imm); }
void ProgramBuilder::sra(Reg rc, Reg ra, Reg rb) { emit3(Op::kSra, rc, ra, rb); }
void ProgramBuilder::srai(Reg rc, Reg ra, i64 imm) { emit3i(Op::kSra, rc, ra, imm); }
void ProgramBuilder::cmpeq(Reg rc, Reg ra, Reg rb) { emit3(Op::kCmpEq, rc, ra, rb); }
void ProgramBuilder::cmpeqi(Reg rc, Reg ra, i64 imm) { emit3i(Op::kCmpEq, rc, ra, imm); }
void ProgramBuilder::cmplt(Reg rc, Reg ra, Reg rb) { emit3(Op::kCmpLt, rc, ra, rb); }
void ProgramBuilder::cmplti(Reg rc, Reg ra, i64 imm) { emit3i(Op::kCmpLt, rc, ra, imm); }
void ProgramBuilder::cmple(Reg rc, Reg ra, Reg rb) { emit3(Op::kCmpLe, rc, ra, rb); }
void ProgramBuilder::cmpult(Reg rc, Reg ra, Reg rb) { emit3(Op::kCmpULt, rc, ra, rb); }

void ProgramBuilder::ldi(Reg rc, i64 imm) {
  emit(Instruction{Op::kLdi, isa::kIntZero, isa::kIntZero, rc, imm, true});
}

void ProgramBuilder::mov(Reg rc, Reg ra) {
  emit(Instruction{Op::kMov, ra, isa::kIntZero, rc, 0, false});
}

// ---- memory --------------------------------------------------------

void ProgramBuilder::ldq(Reg rc, Reg base, i64 disp) {
  emit(Instruction{Op::kLdq, base, isa::kIntZero, rc, disp, false});
}

void ProgramBuilder::stq(Reg value, Reg base, i64 disp) {
  emit(Instruction{Op::kStq, base, value, isa::kIntZero, disp, false});
}

void ProgramBuilder::ldt(Reg fc, Reg base, i64 disp) {
  TLR_ASSERT(isa::is_fp_reg(fc));
  emit(Instruction{Op::kLdt, base, isa::kIntZero, fc, disp, false});
}

void ProgramBuilder::stt(Reg fvalue, Reg base, i64 disp) {
  TLR_ASSERT(isa::is_fp_reg(fvalue));
  emit(Instruction{Op::kStt, base, fvalue, isa::kIntZero, disp, false});
}

// ---- control -------------------------------------------------------

void ProgramBuilder::br(Label target) {
  emit_branch(Op::kBr, isa::kIntZero, target);
}
void ProgramBuilder::beqz(Reg ra, Label target) {
  emit_branch(Op::kBeqz, ra, target);
}
void ProgramBuilder::bnez(Reg ra, Label target) {
  emit_branch(Op::kBnez, ra, target);
}
void ProgramBuilder::bltz(Reg ra, Label target) {
  emit_branch(Op::kBltz, ra, target);
}
void ProgramBuilder::bgez(Reg ra, Label target) {
  emit_branch(Op::kBgez, ra, target);
}
void ProgramBuilder::call(Label target) {
  emit_branch(Op::kCall, isa::kIntZero, target);
}
void ProgramBuilder::jmp(Reg ra) {
  emit(Instruction{Op::kJmp, ra, isa::kIntZero, isa::kIntZero, 0, false});
}
void ProgramBuilder::ret() {
  emit(Instruction{Op::kRet, isa::kLinkReg, isa::kIntZero, isa::kIntZero, 0,
                   false});
}
void ProgramBuilder::halt() { emit(Instruction{Op::kHalt}); }

// ---- floating point --------------------------------------------------

void ProgramBuilder::fadd(Reg fc, Reg fa, Reg fb) { emit3(Op::kFAdd, fc, fa, fb); }
void ProgramBuilder::fsub(Reg fc, Reg fa, Reg fb) { emit3(Op::kFSub, fc, fa, fb); }
void ProgramBuilder::fmul(Reg fc, Reg fa, Reg fb) { emit3(Op::kFMul, fc, fa, fb); }
void ProgramBuilder::fdiv(Reg fc, Reg fa, Reg fb) { emit3(Op::kFDiv, fc, fa, fb); }
void ProgramBuilder::fsqrt(Reg fc, Reg fa) {
  emit(Instruction{Op::kFSqrt, fa, isa::kFpZero, fc, 0, false});
}
void ProgramBuilder::fneg(Reg fc, Reg fa) {
  emit(Instruction{Op::kFNeg, fa, isa::kFpZero, fc, 0, false});
}
void ProgramBuilder::fabs_(Reg fc, Reg fa) {
  emit(Instruction{Op::kFAbs, fa, isa::kFpZero, fc, 0, false});
}
void ProgramBuilder::fcmplt(Reg rc, Reg fa, Reg fb) {
  TLR_ASSERT(isa::is_int_reg(rc));
  emit3(Op::kFCmpLt, rc, fa, fb);
}
void ProgramBuilder::fcmpeq(Reg rc, Reg fa, Reg fb) {
  TLR_ASSERT(isa::is_int_reg(rc));
  emit3(Op::kFCmpEq, rc, fa, fb);
}
void ProgramBuilder::fldi(Reg fc, double value) {
  TLR_ASSERT(isa::is_fp_reg(fc));
  emit(Instruction{Op::kFLdi, isa::kFpZero, isa::kFpZero, fc,
                   static_cast<i64>(std::bit_cast<u64>(value)), true});
}
void ProgramBuilder::cvtqt(Reg fc, Reg ra) {
  TLR_ASSERT(isa::is_fp_reg(fc) && isa::is_int_reg(ra));
  emit(Instruction{Op::kCvtQT, ra, isa::kIntZero, fc, 0, false});
}
void ProgramBuilder::cvttq(Reg rc, Reg fa) {
  TLR_ASSERT(isa::is_int_reg(rc) && isa::is_fp_reg(fa));
  emit(Instruction{Op::kCvtTQ, fa, isa::kFpZero, rc, 0, false});
}

Program ProgramBuilder::build(isa::Pc entry) {
  TLR_ASSERT(!built_);
  built_ = true;
  for (const auto& [inst_idx, label_id] : fixups_) {
    const isa::Pc target = label_pos_[label_id];
    TLR_ASSERT_MSG(target != isa::kInvalidPc, "unbound label referenced");
    code_[inst_idx].imm = static_cast<i64>(target);
  }
  TLR_ASSERT(entry < code_.size());
  return Program{std::move(name_), std::move(code_), std::move(data_), entry};
}

}  // namespace tlr::vm
