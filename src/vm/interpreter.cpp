#include "vm/interpreter.hpp"

#include <bit>
#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace tlr::vm {

using isa::DynInst;
using isa::Instruction;
using isa::Loc;
using isa::Op;

Interpreter::Interpreter(Program program) : program_(std::move(program)) {}

RunResult Interpreter::run(const RunLimits& limits, const InstSink& sink) {
  begin(limits);
  DynInst inst;
  while (progress_.executed < limits_.max_executed &&
         progress_.emitted < limits_.max_emitted) {
    if (!step(inst)) {
      progress_.halted = true;
      break;
    }
    ++progress_.executed;
    if (progress_.executed > limits_.skip) {
      ++progress_.emitted;
      if (!sink(inst)) break;
    }
  }
  return progress_;
}

void Interpreter::begin(const RunLimits& limits) {
  state_ = MachineState{};
  for (const DataWord& w : program_.initial_data()) {
    state_.store(w.addr, w.value);
  }
  pc_ = program_.entry();
  limits_ = limits;
  progress_ = RunResult{};
}

usize Interpreter::emit(std::vector<isa::DynInst>& out, usize max) {
  usize appended = 0;
  DynInst inst;
  while (appended < max && progress_.executed < limits_.max_executed &&
         progress_.emitted < limits_.max_emitted) {
    if (!step(inst)) {
      progress_.halted = true;
      break;
    }
    ++progress_.executed;
    if (progress_.executed > limits_.skip) {
      ++progress_.emitted;
      out.push_back(inst);
      ++appended;
    }
  }
  return appended;
}

namespace {

/// Records a register read on the DynInst (zero registers excluded; see
/// dyn_inst.hpp) and returns the value.
u64 read_src(MachineState& state, DynInst& inst, isa::Reg reg) {
  const u64 value = state.read_reg(reg);
  if (!isa::is_zero_reg(reg)) inst.add_input(Loc::reg(reg), value);
  return value;
}

/// Register write + output record (discarded for zero registers).
void write_dest(MachineState& state, DynInst& inst, isa::Reg reg, u64 value) {
  state.write_reg(reg, value);
  if (!isa::is_zero_reg(reg)) inst.set_output(Loc::reg(reg), value);
}

double as_fp(u64 bits) { return std::bit_cast<double>(bits); }
u64 fp_bits(double value) { return std::bit_cast<u64>(value); }

}  // namespace

bool Interpreter::step(DynInst& out) {
  if (pc_ >= program_.size()) return false;
  const Instruction& si = program_.at(pc_);
  if (si.op == Op::kHalt) return false;

  out = DynInst{};
  out.pc = pc_;
  out.op = si.op;
  isa::Pc next = pc_ + 1;

  auto binary_int = [&](auto fn) {
    const u64 a = read_src(state_, out, si.ra);
    const u64 b = si.use_imm ? static_cast<u64>(si.imm)
                             : read_src(state_, out, si.rb);
    write_dest(state_, out, si.rc, fn(a, b));
  };
  auto binary_fp = [&](auto fn) {
    const double a = as_fp(read_src(state_, out, si.ra));
    const double b = as_fp(read_src(state_, out, si.rb));
    write_dest(state_, out, si.rc, fp_bits(fn(a, b)));
  };
  auto unary_fp = [&](auto fn) {
    const double a = as_fp(read_src(state_, out, si.ra));
    write_dest(state_, out, si.rc, fp_bits(fn(a)));
  };

  switch (si.op) {
    case Op::kAdd: binary_int([](u64 a, u64 b) { return a + b; }); break;
    case Op::kSub: binary_int([](u64 a, u64 b) { return a - b; }); break;
    case Op::kMul: binary_int([](u64 a, u64 b) { return a * b; }); break;
    case Op::kDiv:
      // Division by zero is defined to produce 0 (the ISA has no traps).
      binary_int([](u64 a, u64 b) {
        if (b == 0) return u64{0};
        return static_cast<u64>(static_cast<i64>(a) / static_cast<i64>(b));
      });
      break;
    case Op::kRem:
      binary_int([](u64 a, u64 b) {
        if (b == 0) return u64{0};
        return static_cast<u64>(static_cast<i64>(a) % static_cast<i64>(b));
      });
      break;
    case Op::kAnd: binary_int([](u64 a, u64 b) { return a & b; }); break;
    case Op::kOr: binary_int([](u64 a, u64 b) { return a | b; }); break;
    case Op::kXor: binary_int([](u64 a, u64 b) { return a ^ b; }); break;
    case Op::kAndNot: binary_int([](u64 a, u64 b) { return a & ~b; }); break;
    case Op::kSll: binary_int([](u64 a, u64 b) { return a << (b & 63); }); break;
    case Op::kSrl: binary_int([](u64 a, u64 b) { return a >> (b & 63); }); break;
    case Op::kSra:
      binary_int([](u64 a, u64 b) {
        return static_cast<u64>(static_cast<i64>(a) >> (b & 63));
      });
      break;
    case Op::kCmpEq:
      binary_int([](u64 a, u64 b) { return static_cast<u64>(a == b); });
      break;
    case Op::kCmpLt:
      binary_int([](u64 a, u64 b) {
        return static_cast<u64>(static_cast<i64>(a) < static_cast<i64>(b));
      });
      break;
    case Op::kCmpLe:
      binary_int([](u64 a, u64 b) {
        return static_cast<u64>(static_cast<i64>(a) <= static_cast<i64>(b));
      });
      break;
    case Op::kCmpULt:
      binary_int([](u64 a, u64 b) { return static_cast<u64>(a < b); });
      break;

    case Op::kLdi:
      write_dest(state_, out, si.rc, static_cast<u64>(si.imm));
      break;
    case Op::kMov:
      write_dest(state_, out, si.rc, read_src(state_, out, si.ra));
      break;

    case Op::kLdq:
    case Op::kLdt: {
      const u64 base = read_src(state_, out, si.ra);
      const Addr ea = base + static_cast<u64>(si.imm);
      const u64 value = state_.load(ea);
      out.add_input(Loc::mem(ea), value);
      write_dest(state_, out, si.rc, value);
      break;
    }
    case Op::kStq:
    case Op::kStt: {
      const u64 base = read_src(state_, out, si.ra);
      const u64 value = read_src(state_, out, si.rb);
      const Addr ea = base + static_cast<u64>(si.imm);
      state_.store(ea, value);
      out.set_output(Loc::mem(ea), value);
      break;
    }

    case Op::kBr:
      next = static_cast<isa::Pc>(si.imm);
      break;
    case Op::kBeqz:
      if (read_src(state_, out, si.ra) == 0) next = static_cast<isa::Pc>(si.imm);
      break;
    case Op::kBnez:
      if (read_src(state_, out, si.ra) != 0) next = static_cast<isa::Pc>(si.imm);
      break;
    case Op::kBltz:
      if (static_cast<i64>(read_src(state_, out, si.ra)) < 0) {
        next = static_cast<isa::Pc>(si.imm);
      }
      break;
    case Op::kBgez:
      if (static_cast<i64>(read_src(state_, out, si.ra)) >= 0) {
        next = static_cast<isa::Pc>(si.imm);
      }
      break;
    case Op::kCall:
      write_dest(state_, out, isa::kLinkReg, pc_ + 1);
      next = static_cast<isa::Pc>(si.imm);
      break;
    case Op::kJmp:
    case Op::kRet:
      next = static_cast<isa::Pc>(read_src(state_, out, si.ra));
      break;

    case Op::kFAdd: binary_fp([](double a, double b) { return a + b; }); break;
    case Op::kFSub: binary_fp([](double a, double b) { return a - b; }); break;
    case Op::kFMul: binary_fp([](double a, double b) { return a * b; }); break;
    case Op::kFDiv: binary_fp([](double a, double b) { return a / b; }); break;
    case Op::kFSqrt: unary_fp([](double a) { return std::sqrt(a); }); break;
    case Op::kFNeg: unary_fp([](double a) { return -a; }); break;
    case Op::kFAbs: unary_fp([](double a) { return std::fabs(a); }); break;
    case Op::kFCmpLt: {
      const double a = as_fp(read_src(state_, out, si.ra));
      const double b = as_fp(read_src(state_, out, si.rb));
      write_dest(state_, out, si.rc, static_cast<u64>(a < b));
      break;
    }
    case Op::kFCmpEq: {
      const double a = as_fp(read_src(state_, out, si.ra));
      const double b = as_fp(read_src(state_, out, si.rb));
      write_dest(state_, out, si.rc, static_cast<u64>(a == b));
      break;
    }
    case Op::kFLdi:
      write_dest(state_, out, si.rc, static_cast<u64>(si.imm));
      break;
    case Op::kCvtQT:
      write_dest(state_, out, si.rc,
                 fp_bits(static_cast<double>(
                     static_cast<i64>(read_src(state_, out, si.ra)))));
      break;
    case Op::kCvtTQ: {
      const double a = as_fp(read_src(state_, out, si.ra));
      write_dest(state_, out, si.rc, static_cast<u64>(static_cast<i64>(a)));
      break;
    }

    case Op::kHalt:
      return false;
  }

  out.next_pc = next;
  pc_ = next;
  return true;
}

StreamSource::StreamSource(Program program, const RunLimits& limits,
                           usize chunk_size)
    : interp_(std::move(program)), chunk_size_(chunk_size) {
  TLR_ASSERT_MSG(chunk_size_ > 0, "chunk size must be positive");
  interp_.begin(limits);
}

bool StreamSource::next(StreamChunk& chunk) {
  chunk.insts.clear();
  chunk.first_index = next_index_;
  if (done_) return false;
  chunk.insts.reserve(chunk_size_);
  const usize got = interp_.emit(chunk.insts, chunk_size_);
  if (got < chunk_size_) done_ = true;
  next_index_ += got;
  return got > 0;
}

std::vector<isa::DynInst> collect_stream(const Program& program,
                                         const RunLimits& limits) {
  std::vector<isa::DynInst> stream;
  if (limits.max_emitted != ~u64{0}) stream.reserve(limits.max_emitted);
  Interpreter interp(program);
  interp.run(limits, [&stream](const isa::DynInst& inst) {
    stream.push_back(inst);
    return true;
  });
  return stream;
}

}  // namespace tlr::vm
