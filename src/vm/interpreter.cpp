#include "vm/interpreter.hpp"

#include <bit>
#include <cmath>
#include <utility>

#include "obs/counters.hpp"
#include "util/assert.hpp"

namespace tlr::vm {

using isa::DynInst;
using isa::Instruction;
using isa::Loc;
using isa::Op;

namespace {

/// Dense dispatch index. Binary integer operations are split into
/// register and immediate variants at predecode time, so the per-step
/// dispatch needs no use_imm test; loads (kLdq/kLdt) and indirect
/// jumps (kJmp/kRet) collapse to one handler each — the DynInst record
/// still carries the original Op.
enum class Handler : u8 {
  kAddR, kAddI, kSubR, kSubI, kMulR, kMulI, kDivR, kDivI, kRemR, kRemI,
  kAndR, kAndI, kOrR, kOrI, kXorR, kXorI, kAndNotR, kAndNotI,
  kSllR, kSllI, kSrlR, kSrlI, kSraR, kSraI,
  kCmpEqR, kCmpEqI, kCmpLtR, kCmpLtI, kCmpLeR, kCmpLeI, kCmpULtR, kCmpULtI,
  kLdi, kMov, kLoad, kStore,
  kBr, kBeqz, kBnez, kBltz, kBgez, kCall, kJmpInd,
  kFAdd, kFSub, kFMul, kFDiv, kFSqrt, kFNeg, kFAbs, kFCmpLt, kFCmpEq,
  kFLdi, kCvtQT, kCvtTQ,
  kHalt,
};

/// Handler for a binary integer op: base + 1 selects the immediate
/// variant.
constexpr Handler int_handler(Handler base, bool use_imm) {
  return static_cast<Handler>(static_cast<u8>(base) +
                              static_cast<u8>(use_imm));
}

/// Records a register read on the DynInst (zero registers excluded; see
/// dyn_inst.hpp) and returns the value.
u64 read_src(MachineState& state, DynInst& inst, isa::Reg reg) {
  const u64 value = state.read_reg(reg);
  if (!isa::is_zero_reg(reg)) inst.add_input(Loc::reg(reg), value);
  return value;
}

/// Register write + output record (discarded for zero registers).
void write_dest(MachineState& state, DynInst& inst, isa::Reg reg, u64 value) {
  state.write_reg(reg, value);
  if (!isa::is_zero_reg(reg)) inst.set_output(Loc::reg(reg), value);
}

double as_fp(u64 bits) { return std::bit_cast<double>(bits); }
u64 fp_bits(double value) { return std::bit_cast<u64>(value); }

}  // namespace

Interpreter::Interpreter(Program program)
    : Interpreter(std::make_shared<const Program>(std::move(program))) {}

Interpreter::Interpreter(std::shared_ptr<const Program> program)
    : program_(std::move(program)) {
  TLR_ASSERT(program_ != nullptr);
  predecode();
}

void Interpreter::predecode() {
  decoded_.resize(program_->size());
  for (usize pc = 0; pc < program_->size(); ++pc) {
    const Instruction& si = program_->code()[pc];
    Decoded& d = decoded_[pc];
    d.imm = si.imm;
    d.op = si.op;
    d.ra = si.ra;
    d.rb = si.rb;
    d.rc = si.rc;
    Handler handler = Handler::kHalt;
    switch (si.op) {
      case Op::kAdd: handler = int_handler(Handler::kAddR, si.use_imm); break;
      case Op::kSub: handler = int_handler(Handler::kSubR, si.use_imm); break;
      case Op::kMul: handler = int_handler(Handler::kMulR, si.use_imm); break;
      case Op::kDiv: handler = int_handler(Handler::kDivR, si.use_imm); break;
      case Op::kRem: handler = int_handler(Handler::kRemR, si.use_imm); break;
      case Op::kAnd: handler = int_handler(Handler::kAndR, si.use_imm); break;
      case Op::kOr: handler = int_handler(Handler::kOrR, si.use_imm); break;
      case Op::kXor: handler = int_handler(Handler::kXorR, si.use_imm); break;
      case Op::kAndNot:
        handler = int_handler(Handler::kAndNotR, si.use_imm);
        break;
      case Op::kSll: handler = int_handler(Handler::kSllR, si.use_imm); break;
      case Op::kSrl: handler = int_handler(Handler::kSrlR, si.use_imm); break;
      case Op::kSra: handler = int_handler(Handler::kSraR, si.use_imm); break;
      case Op::kCmpEq:
        handler = int_handler(Handler::kCmpEqR, si.use_imm);
        break;
      case Op::kCmpLt:
        handler = int_handler(Handler::kCmpLtR, si.use_imm);
        break;
      case Op::kCmpLe:
        handler = int_handler(Handler::kCmpLeR, si.use_imm);
        break;
      case Op::kCmpULt:
        handler = int_handler(Handler::kCmpULtR, si.use_imm);
        break;
      case Op::kLdi: handler = Handler::kLdi; break;
      case Op::kMov: handler = Handler::kMov; break;
      case Op::kLdq:
      case Op::kLdt: handler = Handler::kLoad; break;
      case Op::kStq:
      case Op::kStt: handler = Handler::kStore; break;
      case Op::kBr: handler = Handler::kBr; break;
      case Op::kBeqz: handler = Handler::kBeqz; break;
      case Op::kBnez: handler = Handler::kBnez; break;
      case Op::kBltz: handler = Handler::kBltz; break;
      case Op::kBgez: handler = Handler::kBgez; break;
      case Op::kCall: handler = Handler::kCall; break;
      case Op::kJmp:
      case Op::kRet: handler = Handler::kJmpInd; break;
      case Op::kFAdd: handler = Handler::kFAdd; break;
      case Op::kFSub: handler = Handler::kFSub; break;
      case Op::kFMul: handler = Handler::kFMul; break;
      case Op::kFDiv: handler = Handler::kFDiv; break;
      case Op::kFSqrt: handler = Handler::kFSqrt; break;
      case Op::kFNeg: handler = Handler::kFNeg; break;
      case Op::kFAbs: handler = Handler::kFAbs; break;
      case Op::kFCmpLt: handler = Handler::kFCmpLt; break;
      case Op::kFCmpEq: handler = Handler::kFCmpEq; break;
      case Op::kFLdi: handler = Handler::kFLdi; break;
      case Op::kCvtQT: handler = Handler::kCvtQT; break;
      case Op::kCvtTQ: handler = Handler::kCvtTQ; break;
      case Op::kHalt: handler = Handler::kHalt; break;
    }
    d.handler = static_cast<u8>(handler);
    // Direct control transfers resolve their target once, here.
    switch (handler) {
      case Handler::kBr:
      case Handler::kBeqz:
      case Handler::kBnez:
      case Handler::kBltz:
      case Handler::kBgez:
      case Handler::kCall:
        d.target = static_cast<isa::Pc>(si.imm);
        break;
      default:
        break;
    }
  }
}

RunResult Interpreter::run(const RunLimits& limits, const InstSink& sink) {
  begin(limits);
  DynInst inst;
  while (progress_.executed < limits_.max_executed &&
         progress_.emitted < limits_.max_emitted) {
    if (!step(inst)) {
      progress_.halted = true;
      break;
    }
    ++progress_.executed;
    if (progress_.executed > limits_.skip) {
      ++progress_.emitted;
      if (!sink(inst)) break;
    }
  }
  return progress_;
}

void Interpreter::begin(const RunLimits& limits) {
  state_ = MachineState{};
  for (const DataWord& w : program_->initial_data()) {
    state_.store(w.addr, w.value);
  }
  pc_ = program_->entry();
  limits_ = limits;
  progress_ = RunResult{};
}

usize Interpreter::emit(std::vector<isa::DynInst>& out, usize max) {
  // The warm-up prefix steps into a scratch record; emitted
  // instructions are stepped directly into the output buffer, so the
  // hot phase performs no extra per-instruction copy.
  usize appended = 0;
  DynInst scratch;
  while (appended < max && progress_.executed < limits_.max_executed &&
         progress_.emitted < limits_.max_emitted) {
    if (progress_.executed >= limits_.skip) {
      out.emplace_back();
      if (!step(out.back())) {
        out.pop_back();
        progress_.halted = true;
        break;
      }
      ++progress_.executed;
      ++progress_.emitted;
      ++appended;
    } else {
      if (!step(scratch)) {
        progress_.halted = true;
        break;
      }
      ++progress_.executed;
    }
  }
  return appended;
}

bool Interpreter::step(DynInst& out) {
  if (pc_ >= decoded_.size()) return false;
  const Decoded& d = decoded_[pc_];

  out.pc = pc_;
  out.op = d.op;
  out.num_inputs = 0;
  out.has_output = false;
  out.output_value = 0;  // observable even without an output (tests pin it)
  isa::Pc next = pc_ + 1;

  auto bin_r = [&](auto fn) {
    const u64 a = read_src(state_, out, d.ra);
    const u64 b = read_src(state_, out, d.rb);
    write_dest(state_, out, d.rc, fn(a, b));
  };
  auto bin_i = [&](auto fn) {
    const u64 a = read_src(state_, out, d.ra);
    write_dest(state_, out, d.rc, fn(a, static_cast<u64>(d.imm)));
  };
  auto binary_fp = [&](auto fn) {
    const double a = as_fp(read_src(state_, out, d.ra));
    const double b = as_fp(read_src(state_, out, d.rb));
    write_dest(state_, out, d.rc, fp_bits(fn(a, b)));
  };
  auto unary_fp = [&](auto fn) {
    const double a = as_fp(read_src(state_, out, d.ra));
    write_dest(state_, out, d.rc, fp_bits(fn(a)));
  };

  const auto add = [](u64 a, u64 b) { return a + b; };
  const auto sub = [](u64 a, u64 b) { return a - b; };
  const auto mul = [](u64 a, u64 b) { return a * b; };
  // Division by zero is defined to produce 0 (the ISA has no traps).
  // INT64_MIN / -1 overflows (SIGFPE on x86); it quotients to the
  // dividend with remainder 0, the two's-complement wrap.
  const auto div = [](u64 a, u64 b) {
    if (b == 0) return u64{0};
    if (b == ~u64{0} && a == (u64{1} << 63)) return a;
    return static_cast<u64>(static_cast<i64>(a) / static_cast<i64>(b));
  };
  const auto rem = [](u64 a, u64 b) {
    if (b == 0) return u64{0};
    if (b == ~u64{0} && a == (u64{1} << 63)) return u64{0};
    return static_cast<u64>(static_cast<i64>(a) % static_cast<i64>(b));
  };
  const auto band = [](u64 a, u64 b) { return a & b; };
  const auto bor = [](u64 a, u64 b) { return a | b; };
  const auto bxor = [](u64 a, u64 b) { return a ^ b; };
  const auto bandnot = [](u64 a, u64 b) { return a & ~b; };
  const auto sll = [](u64 a, u64 b) { return a << (b & 63); };
  const auto srl = [](u64 a, u64 b) { return a >> (b & 63); };
  const auto sra = [](u64 a, u64 b) {
    return static_cast<u64>(static_cast<i64>(a) >> (b & 63));
  };
  const auto cmp_eq = [](u64 a, u64 b) { return static_cast<u64>(a == b); };
  const auto cmp_lt = [](u64 a, u64 b) {
    return static_cast<u64>(static_cast<i64>(a) < static_cast<i64>(b));
  };
  const auto cmp_le = [](u64 a, u64 b) {
    return static_cast<u64>(static_cast<i64>(a) <= static_cast<i64>(b));
  };
  const auto cmp_ult = [](u64 a, u64 b) { return static_cast<u64>(a < b); };

  switch (static_cast<Handler>(d.handler)) {
    case Handler::kAddR: bin_r(add); break;
    case Handler::kAddI: bin_i(add); break;
    case Handler::kSubR: bin_r(sub); break;
    case Handler::kSubI: bin_i(sub); break;
    case Handler::kMulR: bin_r(mul); break;
    case Handler::kMulI: bin_i(mul); break;
    case Handler::kDivR: bin_r(div); break;
    case Handler::kDivI: bin_i(div); break;
    case Handler::kRemR: bin_r(rem); break;
    case Handler::kRemI: bin_i(rem); break;
    case Handler::kAndR: bin_r(band); break;
    case Handler::kAndI: bin_i(band); break;
    case Handler::kOrR: bin_r(bor); break;
    case Handler::kOrI: bin_i(bor); break;
    case Handler::kXorR: bin_r(bxor); break;
    case Handler::kXorI: bin_i(bxor); break;
    case Handler::kAndNotR: bin_r(bandnot); break;
    case Handler::kAndNotI: bin_i(bandnot); break;
    case Handler::kSllR: bin_r(sll); break;
    case Handler::kSllI: bin_i(sll); break;
    case Handler::kSrlR: bin_r(srl); break;
    case Handler::kSrlI: bin_i(srl); break;
    case Handler::kSraR: bin_r(sra); break;
    case Handler::kSraI: bin_i(sra); break;
    case Handler::kCmpEqR: bin_r(cmp_eq); break;
    case Handler::kCmpEqI: bin_i(cmp_eq); break;
    case Handler::kCmpLtR: bin_r(cmp_lt); break;
    case Handler::kCmpLtI: bin_i(cmp_lt); break;
    case Handler::kCmpLeR: bin_r(cmp_le); break;
    case Handler::kCmpLeI: bin_i(cmp_le); break;
    case Handler::kCmpULtR: bin_r(cmp_ult); break;
    case Handler::kCmpULtI: bin_i(cmp_ult); break;

    case Handler::kLdi:
      write_dest(state_, out, d.rc, static_cast<u64>(d.imm));
      break;
    case Handler::kMov:
      write_dest(state_, out, d.rc, read_src(state_, out, d.ra));
      break;

    case Handler::kLoad: {
      const u64 base = read_src(state_, out, d.ra);
      const Addr ea = base + static_cast<u64>(d.imm);
      const u64 value = state_.load(ea);
      out.add_input(Loc::mem(ea), value);
      write_dest(state_, out, d.rc, value);
      break;
    }
    case Handler::kStore: {
      const u64 base = read_src(state_, out, d.ra);
      const u64 value = read_src(state_, out, d.rb);
      const Addr ea = base + static_cast<u64>(d.imm);
      state_.store(ea, value);
      out.set_output(Loc::mem(ea), value);
      break;
    }

    case Handler::kBr:
      next = d.target;
      break;
    case Handler::kBeqz:
      if (read_src(state_, out, d.ra) == 0) next = d.target;
      break;
    case Handler::kBnez:
      if (read_src(state_, out, d.ra) != 0) next = d.target;
      break;
    case Handler::kBltz:
      if (static_cast<i64>(read_src(state_, out, d.ra)) < 0) next = d.target;
      break;
    case Handler::kBgez:
      if (static_cast<i64>(read_src(state_, out, d.ra)) >= 0) next = d.target;
      break;
    case Handler::kCall:
      write_dest(state_, out, isa::kLinkReg, pc_ + 1);
      next = d.target;
      break;
    case Handler::kJmpInd:
      next = static_cast<isa::Pc>(read_src(state_, out, d.ra));
      break;

    case Handler::kFAdd: binary_fp([](double a, double b) { return a + b; }); break;
    case Handler::kFSub: binary_fp([](double a, double b) { return a - b; }); break;
    case Handler::kFMul: binary_fp([](double a, double b) { return a * b; }); break;
    case Handler::kFDiv: binary_fp([](double a, double b) { return a / b; }); break;
    case Handler::kFSqrt: unary_fp([](double a) { return std::sqrt(a); }); break;
    case Handler::kFNeg: unary_fp([](double a) { return -a; }); break;
    case Handler::kFAbs: unary_fp([](double a) { return std::fabs(a); }); break;
    case Handler::kFCmpLt: {
      const double a = as_fp(read_src(state_, out, d.ra));
      const double b = as_fp(read_src(state_, out, d.rb));
      write_dest(state_, out, d.rc, static_cast<u64>(a < b));
      break;
    }
    case Handler::kFCmpEq: {
      const double a = as_fp(read_src(state_, out, d.ra));
      const double b = as_fp(read_src(state_, out, d.rb));
      write_dest(state_, out, d.rc, static_cast<u64>(a == b));
      break;
    }
    case Handler::kFLdi:
      write_dest(state_, out, d.rc, static_cast<u64>(d.imm));
      break;
    case Handler::kCvtQT:
      write_dest(state_, out, d.rc,
                 fp_bits(static_cast<double>(
                     static_cast<i64>(read_src(state_, out, d.ra)))));
      break;
    case Handler::kCvtTQ: {
      const double a = as_fp(read_src(state_, out, d.ra));
      write_dest(state_, out, d.rc, static_cast<u64>(static_cast<i64>(a)));
      break;
    }

    case Handler::kHalt:
      return false;
  }

  out.next_pc = next;
  pc_ = next;
  return true;
}

StreamSource::StreamSource(Program program, const RunLimits& limits,
                           usize chunk_size)
    : StreamSource(std::make_shared<const Program>(std::move(program)),
                   limits, chunk_size) {}

StreamSource::StreamSource(std::shared_ptr<const Program> program,
                           const RunLimits& limits, usize chunk_size)
    : interp_(std::move(program)), chunk_size_(chunk_size) {
  TLR_ASSERT_MSG(chunk_size_ > 0, "chunk size must be positive");
  interp_.begin(limits);
}

StreamSource::~StreamSource() {
  if (chunks_ > 0) obs::count(obs::Counter::kVmChunks, chunks_);
}

bool StreamSource::next(StreamChunk& chunk) {
  chunk.insts.clear();
  chunk.first_index = next_index_;
  if (done_) return false;
  chunk.insts.reserve(chunk_size_);
  const usize got = interp_.emit(chunk.insts, chunk_size_);
  if (got < chunk_size_) done_ = true;
  next_index_ += got;
  if (got > 0) ++chunks_;
  return got > 0;
}

std::vector<isa::DynInst> collect_stream(const Program& program,
                                         const RunLimits& limits) {
  std::vector<isa::DynInst> stream;
  if (limits.max_emitted != ~u64{0}) stream.reserve(limits.max_emitted);
  Interpreter interp(program);
  interp.run(limits, [&stream](const isa::DynInst& inst) {
    stream.push_back(inst);
    return true;
  });
  return stream;
}

}  // namespace tlr::vm
