// Architectural machine state: the 64 register cells plus a sparse,
// page-granular memory image. Registers hold raw u64 words; FP values
// are double bit patterns (helpers convert).
#pragma once

#include <array>
#include <bit>
#include <memory>

#include "isa/reg.hpp"
#include "util/assert.hpp"
#include "util/flat_hash_map.hpp"
#include "util/types.hpp"

namespace tlr::vm {

class MachineState {
 public:
  static constexpr usize kPageWords = 512;  // 4 KiB pages
  static constexpr Addr kPageBytes = kPageWords * 8;

  MachineState() { regs_.fill(0); }

  // ---- registers ----------------------------------------------------
  u64 read_reg(isa::Reg reg) const {
    TLR_ASSERT(reg < isa::kNumRegs);
    if (isa::is_zero_reg(reg)) return 0;
    return regs_[reg];
  }

  void write_reg(isa::Reg reg, u64 value) {
    TLR_ASSERT(reg < isa::kNumRegs);
    if (isa::is_zero_reg(reg)) return;  // writes to r31/f31 are discarded
    regs_[reg] = value;
  }

  double read_fp(isa::Reg reg) const {
    return std::bit_cast<double>(read_reg(reg));
  }

  void write_fp(isa::Reg reg, double value) {
    write_reg(reg, std::bit_cast<u64>(value));
  }

  // ---- memory (8-byte aligned word access) ---------------------------
  //
  // Loads and stores run once per simulated memory instruction, so the
  // page walk is a hot path (DESIGN.md §10): pages live in a flat hash
  // map, and a one-entry cache short-circuits the lookup entirely for
  // the sequential/strided access the workloads mostly perform. Page
  // storage is heap-allocated and never freed during a run, so cached
  // pointers survive map rehashes.
  u64 load(Addr addr) const {
    TLR_ASSERT_MSG((addr & 7) == 0, "unaligned load");
    const u64 page_index = addr / kPageBytes;
    if (page_index + 1 == cached_index_plus_1_) {
      return (*cached_page_)[(addr % kPageBytes) / 8];
    }
    const auto* slot = pages_.find(page_index);
    if (slot == nullptr) return 0;
    cached_index_plus_1_ = page_index + 1;
    cached_page_ = slot->get();
    return (**slot)[(addr % kPageBytes) / 8];
  }

  void store(Addr addr, u64 value) {
    TLR_ASSERT_MSG((addr & 7) == 0, "unaligned store");
    const u64 page_index = addr / kPageBytes;
    if (page_index + 1 != cached_index_plus_1_) {
      auto [slot, inserted] = pages_.try_emplace(page_index);
      if (inserted) {
        *slot = std::make_unique<Page>();
        (*slot)->fill(0);
      }
      cached_index_plus_1_ = page_index + 1;
      cached_page_ = slot->get();
    }
    (*cached_page_)[(addr % kPageBytes) / 8] = value;
  }

  double load_fp(Addr addr) const { return std::bit_cast<double>(load(addr)); }
  void store_fp(Addr addr, double value) {
    store(addr, std::bit_cast<u64>(value));
  }

  usize resident_pages() const { return pages_.size(); }

 private:
  using Page = std::array<u64, kPageWords>;

  std::array<u64, isa::kNumRegs> regs_;
  FlatHashMap<u64, std::unique_ptr<Page>> pages_;
  // Last page touched (index biased by one so zero means "none").
  // Mutable: a load warming the cache is still logically const.
  mutable u64 cached_index_plus_1_ = 0;
  mutable Page* cached_page_ = nullptr;
};

}  // namespace tlr::vm
