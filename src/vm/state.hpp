// Architectural machine state: the 64 register cells plus a sparse,
// page-granular memory image. Registers hold raw u64 words; FP values
// are double bit patterns (helpers convert).
#pragma once

#include <array>
#include <bit>
#include <memory>
#include <unordered_map>

#include "isa/reg.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace tlr::vm {

class MachineState {
 public:
  static constexpr usize kPageWords = 512;  // 4 KiB pages
  static constexpr Addr kPageBytes = kPageWords * 8;

  MachineState() { regs_.fill(0); }

  // ---- registers ----------------------------------------------------
  u64 read_reg(isa::Reg reg) const {
    TLR_ASSERT(reg < isa::kNumRegs);
    if (isa::is_zero_reg(reg)) return 0;
    return regs_[reg];
  }

  void write_reg(isa::Reg reg, u64 value) {
    TLR_ASSERT(reg < isa::kNumRegs);
    if (isa::is_zero_reg(reg)) return;  // writes to r31/f31 are discarded
    regs_[reg] = value;
  }

  double read_fp(isa::Reg reg) const {
    return std::bit_cast<double>(read_reg(reg));
  }

  void write_fp(isa::Reg reg, double value) {
    write_reg(reg, std::bit_cast<u64>(value));
  }

  // ---- memory (8-byte aligned word access) ---------------------------
  u64 load(Addr addr) const {
    TLR_ASSERT_MSG((addr & 7) == 0, "unaligned load");
    const auto it = pages_.find(addr / kPageBytes);
    if (it == pages_.end()) return 0;
    return (*it->second)[(addr % kPageBytes) / 8];
  }

  void store(Addr addr, u64 value) {
    TLR_ASSERT_MSG((addr & 7) == 0, "unaligned store");
    page(addr / kPageBytes)[(addr % kPageBytes) / 8] = value;
  }

  double load_fp(Addr addr) const { return std::bit_cast<double>(load(addr)); }
  void store_fp(Addr addr, double value) {
    store(addr, std::bit_cast<u64>(value));
  }

  usize resident_pages() const { return pages_.size(); }

 private:
  using Page = std::array<u64, kPageWords>;

  Page& page(u64 page_index) {
    auto& slot = pages_[page_index];
    if (!slot) {
      slot = std::make_unique<Page>();
      slot->fill(0);
    }
    return *slot;
  }

  std::array<u64, isa::kNumRegs> regs_;
  std::unordered_map<u64, std::unique_ptr<Page>> pages_;
};

}  // namespace tlr::vm
