// Deterministic run counters (DESIGN.md §11).
//
// The study engine computes a wealth of internal event counts — RTM
// lookups and evictions, speculation outcomes, interpreter stream
// lengths, hash-table rehashes — that the paper's own analysis hinges
// on, yet until now they died with the job that produced them. This
// registry aggregates them into one process-wide array of named u64
// counters with a determinism contract: every counter in the
// *invariant* class has the same final value for any engine thread
// count and any stream chunk size, because each is a pure sum of
// per-job event counts and u64 addition commutes. Run-shape counters
// (chunk counts) are kept in a separate class so the pinned golden
// never depends on how a run was sliced.
//
// Aggregation is two-level to keep hot paths clean: simulation loops
// keep counting into the per-component stats structs they already
// maintain (Rtm::Stats, RtmSimResult, spec::SpecStats); at job
// completion those totals are folded into a local MetricsBlock and
// flushed with one call — a handful of relaxed atomic adds per
// *job*, never per instruction. Only rare structural events with no
// natural job-end summary (FlatHashMap rehashes) count directly via
// count().
#pragma once

#include <array>
#include <span>
#include <string>
#include <string_view>

#include "util/types.hpp"

namespace tlr::util {
class Json;
}

namespace tlr::obs {

/// The counter catalog. Order is part of the tlr-metrics/1 schema:
/// the exported document lists counters exactly in this order.
enum class Counter : u32 {
  // Study engine (core/engine.cpp).
  kEngineStreams,       // chunked interpreter passes run
  kEngineInstructions,  // dynamic instructions streamed (sum of passes)
  kEngineJobs,          // parallel_for jobs dispatched across the pool
  // Finite-RTM reuse trace memory (reuse/rtm.cpp, per-simulation
  // Rtm::Stats summed over every simulator the engine ran).
  kRtmLookups,
  kRtmHits,
  kRtmProbeSlots,  // trace slots examined across all reuse tests
  kRtmInsertions,
  kRtmDuplicateInsertions,
  kRtmWayEvictions,
  kRtmTraceEvictions,
  kRtmReplacements,
  kRtmStaleReplacements,
  kRtmInvalidations,
  // Finite-RTM simulation results (reuse/rtm_sim.cpp).
  kSimInstructions,
  kSimReusedInstructions,
  kSimReuseOps,
  kSimExpansions,
  kSimMerges,
  // Speculative reuse outcomes (spec/spec_sim.cpp taxonomy).
  kSpecCorrect,
  kSpecMisspecs,
  kSpecMissed,
  kSpecDeclines,
  // Flat hash tables (util/flat_hash_map.hpp), whole-process.
  kTableRehashes,
  kTableTombstoneReclaims,
  // Run shape (not invariant): how the stream was sliced.
  kVmChunks,

  kCount,
};

inline constexpr usize kCounterCount = static_cast<usize>(Counter::kCount);

struct CounterDef {
  std::string_view name;  // dotted, e.g. "rtm.lookups"
  /// Whether the counter's final value is independent of engine thread
  /// count and chunk size (the determinism contract above). Invariant
  /// counters form the pinned "counters" section of tlr-metrics/1;
  /// the rest go to "shape".
  bool invariant = true;
};

/// Catalog entry per Counter, in enum order.
std::span<const CounterDef> counter_catalog();

/// Local, allocation-free accumulator: fold a job's stats in, then
/// flush() once. Zero-initialised.
class MetricsBlock {
 public:
  void add(Counter counter, u64 delta) {
    values_[static_cast<usize>(counter)] += delta;
  }
  u64 value(Counter counter) const {
    return values_[static_cast<usize>(counter)];
  }
  const std::array<u64, kCounterCount>& values() const { return values_; }

 private:
  std::array<u64, kCounterCount> values_{};
};

/// Add `block` to the process-wide totals (one relaxed atomic add per
/// non-zero entry). Thread-safe; ordering-independent by construction.
void flush(const MetricsBlock& block);

/// Directly count a rare structural event (hash-table rehashes). Do
/// not call this from per-instruction paths — fold into a stats
/// struct and flush() at job end instead.
void count(Counter counter, u64 delta = 1);

/// Point-in-time copy of the process-wide totals.
struct MetricsSnapshot {
  std::array<u64, kCounterCount> values{};

  u64 value(Counter counter) const {
    return values[static_cast<usize>(counter)];
  }
  /// Equality over the invariant counters only — the determinism
  /// contract two runs of the same work must satisfy.
  bool invariant_equal(const MetricsSnapshot& other) const;
};

MetricsSnapshot metrics_snapshot();

/// Reset every total to zero (tests; a fresh CLI process starts at
/// zero anyway).
void reset_metrics();

/// Run-description keys for the metrics document's meta block. These
/// describe the run shape and are never part of the pinned counters.
struct MetricsMeta {
  std::string_view tool = "reuse_study";
  usize threads = 0;
  usize chunk_size = 0;
};

/// The tlr-metrics/1 document: schema, meta, then the "counters"
/// object (invariant counters, catalog order) and the "shape" object
/// (the rest). Byte-deterministic for a given snapshot and meta.
util::Json metrics_json(const MetricsSnapshot& snapshot,
                        const MetricsMeta& meta);

/// Write metrics_json(...) pretty-printed to `path` (parent
/// directories created). False + `error` on I/O failure.
bool write_metrics_file(const MetricsSnapshot& snapshot,
                        const MetricsMeta& meta, const std::string& path,
                        std::string* error = nullptr);

}  // namespace tlr::obs
