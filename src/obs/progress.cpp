#include "obs/progress.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#if defined(__unix__)
#include <unistd.h>
#endif

#include "util/json.hpp"

namespace tlr::obs {

namespace {

using Clock = std::chrono::steady_clock;

/// Minimum gap between throttled emissions: fast enough to feel live,
/// slow enough that tiny --chunk runs with thousands of jobs cannot
/// spam a terminal or a CI log.
constexpr double kMinEmitIntervalSeconds = 0.25;

double seconds_since(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

std::string format_fixed(double value, int decimals) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return std::string(buffer);
}

u64 process_id() {
#if defined(__unix__)
  return static_cast<u64>(::getpid());
#else
  return 0;
#endif
}

}  // namespace

std::optional<ProgressMode> progress_mode_from_name(std::string_view name) {
  if (name == "none") return ProgressMode::kNone;
  if (name == "line") return ProgressMode::kLine;
  if (name == "json") return ProgressMode::kJson;
  return std::nullopt;
}

std::string format_minstr_rate(u64 instructions, double wall_seconds) {
  if (instructions == 0 || !std::isfinite(wall_seconds) ||
      wall_seconds < 1e-9) {
    return "--";
  }
  std::ostringstream out;
  out << static_cast<double>(instructions) / 1e6 / wall_seconds;
  return out.str();
}

ProgressReporter::ProgressReporter(ProgressMode mode, std::ostream* out,
                                   std::string_view tool)
    : mode_(mode), out_(out != nullptr ? out : &std::cerr), tool_(tool) {}

void ProgressReporter::emit_json(const std::string& event_body) {
  *out_ << event_body << "\n";
}

double ProgressReporter::section_elapsed() const {
  return seconds_since(section_start_);
}

void ProgressReporter::note(std::string_view text) {
  if (mode_ == ProgressMode::kNone) return;
  if (mode_ == ProgressMode::kLine) {
    *out_ << tool_ << ": " << text << "\n";
    return;
  }
  util::Json event = util::Json::object();
  event.set("event", util::Json("note"));
  event.set("tool", util::Json(tool_));
  event.set("text", util::Json(text));
  emit_json(event.dump(/*indent=*/-1));
}

void ProgressReporter::begin_section(std::string_view section,
                                     usize total_jobs) {
  section_ = section;
  total_jobs_ = total_jobs;
  section_start_ = Clock::now();
  last_emit_ = section_start_;
  emitted_any_ = false;
  if (mode_ != ProgressMode::kJson) return;
  util::Json event = util::Json::object();
  event.set("event", util::Json("begin_section"));
  event.set("tool", util::Json(tool_));
  event.set("section", util::Json(section_));
  event.set("total_jobs", util::Json(static_cast<u64>(total_jobs_)));
  emit_json(event.dump(/*indent=*/-1));
}

void ProgressReporter::update(usize done, usize total,
                              std::string_view label) {
  if (mode_ == ProgressMode::kNone) return;
  if (total != 0) total_jobs_ = total;
  const Clock::time_point now = Clock::now();
  const bool final_tick = total_jobs_ != 0 && done >= total_jobs_;
  if (emitted_any_ && !final_tick &&
      std::chrono::duration<double>(now - last_emit_).count() <
          kMinEmitIntervalSeconds) {
    return;
  }
  emitted_any_ = true;
  last_emit_ = now;

  const double elapsed = section_elapsed();
  const double rate = elapsed > 1e-9 ? static_cast<double>(done) / elapsed
                                     : 0.0;
  const double eta =
      rate > 1e-12 && total_jobs_ >= done
          ? static_cast<double>(total_jobs_ - done) / rate
          : -1.0;

  if (mode_ == ProgressMode::kLine) {
    *out_ << tool_ << ": ";
    if (!label.empty()) {
      *out_ << "[" << done << "/" << total_jobs_ << "] " << label;
      if (rate > 0.0 && eta >= 0.0 && done < total_jobs_) {
        *out_ << " (" << format_fixed(rate, 1) << " jobs/s, ETA "
              << format_fixed(eta, 0) << "s)";
      }
    } else {
      const usize percent = total_jobs_ != 0 ? done * 100 / total_jobs_ : 0;
      *out_ << section_ << " " << percent << "% (" << done << "/"
            << total_jobs_ << " jobs";
      if (rate > 0.0 && eta >= 0.0 && done < total_jobs_) {
        *out_ << ", ETA " << format_fixed(eta, 0) << "s";
      }
      *out_ << ")";
    }
    *out_ << "\n";
    return;
  }

  util::Json event = util::Json::object();
  event.set("event", util::Json("progress"));
  event.set("tool", util::Json(tool_));
  event.set("section", util::Json(section_));
  event.set("done", util::Json(static_cast<u64>(done)));
  event.set("total", util::Json(static_cast<u64>(total_jobs_)));
  if (!label.empty()) event.set("label", util::Json(label));
  event.set("jobs_per_s", util::Json(rate));
  if (eta >= 0.0) event.set("eta_s", util::Json(eta));
  emit_json(event.dump(/*indent=*/-1));
}

void ProgressReporter::end_section(u64 instructions) {
  const double seconds = section_elapsed();
  rates_.push_back({section_, instructions, seconds});
  if (mode_ != ProgressMode::kJson) return;
  util::Json event = util::Json::object();
  event.set("event", util::Json("end_section"));
  event.set("tool", util::Json(tool_));
  event.set("section", util::Json(section_));
  event.set("instructions", util::Json(instructions));
  event.set("wall_seconds", util::Json(seconds));
  const std::string rate = format_minstr_rate(instructions, seconds);
  if (rate != "--") {
    event.set("minstr_per_s",
              util::Json(static_cast<double>(instructions) / 1e6 / seconds));
  }
  emit_json(event.dump(/*indent=*/-1));
}

void ProgressReporter::finish(double wall_seconds) {
  if (mode_ == ProgressMode::kNone) return;
  if (mode_ == ProgressMode::kLine) {
    // Historical footer format: scripts and the skipped-throughput test
    // grep these exact bytes.
    if (!rates_.empty()) {
      *out_ << tool_ << ": throughput:";
      for (const SectionRate& rate : rates_) {
        *out_ << " " << rate.label << " "
              << format_minstr_rate(rate.instructions, rate.seconds)
              << " Minstr/s";
      }
      *out_ << "\n";
    }
    *out_ << tool_ << ": done in " << wall_seconds << "s\n";
    return;
  }
  util::Json event = util::Json::object();
  event.set("event", util::Json("done"));
  event.set("tool", util::Json(tool_));
  event.set("wall_seconds", util::Json(wall_seconds));
  util::Json sections = util::Json::object();
  for (const SectionRate& rate : rates_) {
    sections.set(rate.label,
                 util::Json(format_minstr_rate(rate.instructions,
                                               rate.seconds)));
  }
  event.set("minstr_per_s", std::move(sections));
  emit_json(event.dump(/*indent=*/-1));
}

Heartbeat::Heartbeat(std::string path, double min_interval_s)
    : path_(std::move(path)),
      min_interval_s_(min_interval_s),
      start_(Clock::now()),
      last_write_(start_) {}

void Heartbeat::update(usize done, usize total, std::string_view label) {
  if (!enabled()) return;
  const Clock::time_point now = Clock::now();
  if (wrote_any_ &&
      std::chrono::duration<double>(now - last_write_).count() <
          min_interval_s_) {
    return;
  }
  write(done, total, label);
}

void Heartbeat::finish(usize done, usize total) {
  if (!enabled()) return;
  write(done, total, "done");
}

void Heartbeat::write(usize done, usize total, std::string_view label) {
  util::Json doc = util::Json::object();
  doc.set("schema", util::Json("tlr-heartbeat/1"));
  doc.set("pid", util::Json(process_id()));
  doc.set("done", util::Json(static_cast<u64>(done)));
  doc.set("total", util::Json(static_cast<u64>(total)));
  doc.set("label", util::Json(label));
  doc.set("wall_seconds", util::Json(seconds_since(start_)));
  doc.set("updated_unix",
          util::Json(static_cast<u64>(
              std::chrono::duration_cast<std::chrono::seconds>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count())));

  // tmp + rename: a reader polling the file never observes a torn
  // write. Failures are swallowed — the heartbeat is best-effort.
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) return;
    out << doc.dump(/*indent=*/2);
    out.flush();
    if (!out) return;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (!ec) {
    wrote_any_ = true;
    last_write_ = Clock::now();
  }
}

}  // namespace tlr::obs
