// Host provenance for published measurement documents (DESIGN.md §11).
//
// Perf numbers without the machine that produced them are folklore:
// tools/bench_report stamps its tlr-bench/1 meta with the hostname
// and the process peak RSS so a trajectory of committed documents is
// attributable to a host and a memory footprint. Kept out of the
// report schema proper — run provenance, never a result.
#pragma once

#include <string>

#include "util/types.hpp"

namespace tlr::obs {

struct RunInfo {
  std::string hostname;  // "unknown" when the platform cannot say
  u64 peak_rss_kb = 0;   // peak resident set, kilobytes; 0 if unknown
};

/// Snapshot of the current process's host info. Peak RSS is as of the
/// call — sample it after the measured work.
RunInfo run_info();

}  // namespace tlr::obs
