#include "obs/runinfo.hpp"

#if defined(__unix__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace tlr::obs {

RunInfo run_info() {
  RunInfo info;
  info.hostname = "unknown";
#if defined(__unix__)
  char buffer[256];
  if (::gethostname(buffer, sizeof(buffer)) == 0) {
    buffer[sizeof(buffer) - 1] = '\0';
    info.hostname = buffer;
  }
  struct rusage usage{};
  if (::getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
    // Linux reports ru_maxrss in kilobytes (BSD reports bytes; this
    // codebase targets the Linux toolchain image).
    info.peak_rss_kb = static_cast<u64>(usage.ru_maxrss);
  }
#endif
  return info;
}

}  // namespace tlr::obs
