#include "obs/counters.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>

#include "util/json.hpp"

namespace tlr::obs {

namespace {

constexpr CounterDef kCatalog[kCounterCount] = {
    {"engine.streams", true},
    {"engine.instructions", true},
    {"engine.jobs", true},
    {"rtm.lookups", true},
    {"rtm.hits", true},
    {"rtm.probe_slots", true},
    {"rtm.insertions", true},
    {"rtm.duplicate_insertions", true},
    {"rtm.way_evictions", true},
    {"rtm.trace_evictions", true},
    {"rtm.replacements", true},
    {"rtm.stale_replacements", true},
    {"rtm.invalidations", true},
    {"sim.instructions", true},
    {"sim.reused_instructions", true},
    {"sim.reuse_ops", true},
    {"sim.expansions", true},
    {"sim.merges", true},
    {"spec.correct", true},
    {"spec.misspecs", true},
    {"spec.missed", true},
    {"spec.declines", true},
    {"table.rehashes", true},
    {"table.tombstone_reclaims", true},
    {"vm.chunks", false},
};

/// The process-wide totals. Relaxed atomics: every mutation is an
/// unordered add and every read a whole-array snapshot, so the only
/// guarantee needed is per-counter atomicity — the sum is the same
/// whatever interleaving the threads produced.
std::atomic<u64> g_totals[kCounterCount]{};

}  // namespace

std::span<const CounterDef> counter_catalog() {
  return std::span<const CounterDef>(kCatalog, kCounterCount);
}

void flush(const MetricsBlock& block) {
  for (usize i = 0; i < kCounterCount; ++i) {
    const u64 delta = block.values()[i];
    if (delta != 0) g_totals[i].fetch_add(delta, std::memory_order_relaxed);
  }
}

void count(Counter counter, u64 delta) {
  g_totals[static_cast<usize>(counter)].fetch_add(delta,
                                                  std::memory_order_relaxed);
}

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot snapshot;
  for (usize i = 0; i < kCounterCount; ++i) {
    snapshot.values[i] = g_totals[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

void reset_metrics() {
  for (usize i = 0; i < kCounterCount; ++i) {
    g_totals[i].store(0, std::memory_order_relaxed);
  }
}

bool MetricsSnapshot::invariant_equal(const MetricsSnapshot& other) const {
  for (usize i = 0; i < kCounterCount; ++i) {
    if (kCatalog[i].invariant && values[i] != other.values[i]) return false;
  }
  return true;
}

util::Json metrics_json(const MetricsSnapshot& snapshot,
                        const MetricsMeta& meta) {
  util::Json doc = util::Json::object();
  doc.set("schema", util::Json("tlr-metrics/1"));
  util::Json meta_json = util::Json::object();
  meta_json.set("tool", util::Json(meta.tool));
  meta_json.set("threads", util::Json(static_cast<u64>(meta.threads)));
  meta_json.set("chunk_size", util::Json(static_cast<u64>(meta.chunk_size)));
  doc.set("meta", std::move(meta_json));
  util::Json counters = util::Json::object();
  util::Json shape = util::Json::object();
  for (usize i = 0; i < kCounterCount; ++i) {
    (kCatalog[i].invariant ? counters : shape)
        .set(kCatalog[i].name, util::Json(snapshot.values[i]));
  }
  doc.set("counters", std::move(counters));
  doc.set("shape", std::move(shape));
  return doc;
}

bool write_metrics_file(const MetricsSnapshot& snapshot,
                        const MetricsMeta& meta, const std::string& path,
                        std::string* error) {
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
    if (ec) {
      if (error != nullptr) {
        *error = "cannot create directory " + target.parent_path().string() +
                 ": " + ec.message();
      }
      return false;
    }
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << metrics_json(snapshot, meta).dump(/*indent=*/2);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace tlr::obs
