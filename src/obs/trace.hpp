// Scoped spans and Chrome trace_event emission (DESIGN.md §11).
//
// A Span marks a timed region — an engine section, one per-workload
// job, a pool task, a shard merge — on the thread that runs it. Spans
// accumulate in per-thread buffers and serialize as Chrome
// `trace_event` JSON, so any run's --trace file opens directly in
// Perfetto or chrome://tracing with one timeline row per worker.
//
// Overhead contract:
//   - Disabled (the default): constructing a Span is one relaxed
//     atomic load and a branch; members are empty SSO strings, so no
//     allocation happens anywhere on the disabled path.
//   - Enabled: the record fast path is lock-free — only the owner
//     thread appends to its buffer, records live in fixed-capacity
//     blocks that never move, and a mutex is taken only to link a new
//     block (every 512 spans) or to register a thread's buffer once.
//
// Each span is recorded at *destruction* as an adjacent B/E event
// pair carrying the saved start timestamp. Scoped lifetimes nest, so
// file-order stack balance holds by construction (the well-formedness
// test checks exactly this); viewers sort events by timestamp.
//
// write_trace_file / trace_json / reset_trace must be called at a
// quiescent point (no spans being recorded) — in the tools that is
// after the engine finished, when workers are idle with no open spans.
#pragma once

#include <atomic>
#include <string>
#include <string_view>

#include "util/types.hpp"

namespace tlr::util {
class Json;
}

namespace tlr::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool enabled);

/// Microseconds since the process trace epoch (steady clock).
u64 trace_now_us();

/// Names the calling thread for spans, profilers and gdb: sets the OS
/// thread name where supported (Linux, 15-char limit) and attaches
/// the full name to this thread's trace timeline as a `thread_name`
/// metadata event.
void set_thread_name(std::string_view name);

/// Append one completed span to the calling thread's buffer. Prefer
/// the Span RAII wrapper; this is the primitive it records through.
void record_span(std::string_view name, std::string_view category,
                 std::string_view arg_key, std::string_view arg_value,
                 u64 start_us, u64 end_us);

/// Scoped span. Captures the start timestamp at construction when
/// tracing is enabled and records the completed B/E pair when the
/// scope exits. Inactive spans (tracing disabled, or default-
/// constructed) cost nothing and allocate nothing.
class Span {
 public:
  Span() = default;
  Span(std::string_view name, std::string_view category) {
    if (trace_enabled()) begin(name, category);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { if (active_) finish(); }

  bool active() const { return active_; }

  /// Attach one key/value argument shown in the viewer's span detail
  /// pane. Guard arg *construction* behind active() at the call site
  /// so building the value string is skipped when tracing is off.
  void set_arg(std::string_view key, std::string_view value) {
    if (active_) {
      arg_key_ = key;
      arg_value_ = value;
    }
  }

 private:
  void begin(std::string_view name, std::string_view category);
  void finish();

  bool active_ = false;
  u64 start_us_ = 0;
  std::string name_;
  std::string category_;
  std::string arg_key_;
  std::string arg_value_;
};

/// The Chrome trace document: {"displayTimeUnit":..,"traceEvents":[..]}
/// over every committed span from every registered thread.
util::Json trace_json();

/// Write trace_json() to `path` (parent directories created).
/// False + `error` on I/O failure.
bool write_trace_file(const std::string& path, std::string* error = nullptr);

/// Drop every recorded span (thread registrations survive). Tests
/// only; callers must be quiescent.
void reset_trace();

}  // namespace tlr::obs
