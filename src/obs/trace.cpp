#include "obs/trace.hpp"

#include <array>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "util/json.hpp"

namespace tlr::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

struct SpanRecord {
  std::string name;
  std::string category;
  std::string arg_key;
  std::string arg_value;
  u64 start_us = 0;
  u64 end_us = 0;
};

/// One thread's span log. Only the owner thread appends; records live
/// in fixed blocks that never move once linked, and the committed
/// count is published with release ordering, so a reader that loads
/// it with acquire may copy the first `committed` records without a
/// lock. The mutex guards only block-list growth and the dump-side
/// copy of the list.
class ThreadBuffer {
 public:
  static constexpr usize kBlockCapacity = 512;
  using Block = std::array<SpanRecord, kBlockCapacity>;

  explicit ThreadBuffer(u32 tid) : tid_(tid) {}

  void push(SpanRecord record) {
    const usize n = committed_.load(std::memory_order_relaxed);
    if (n == capacity_) {
      std::lock_guard<std::mutex> lock(mutex_);
      blocks_.push_back(std::make_unique<Block>());
      capacity_ += kBlockCapacity;
    }
    (*blocks_[n / kBlockCapacity])[n % kBlockCapacity] = std::move(record);
    committed_.store(n + 1, std::memory_order_release);
  }

  std::vector<SpanRecord> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    const usize n = committed_.load(std::memory_order_acquire);
    std::vector<SpanRecord> records;
    records.reserve(n);
    for (usize i = 0; i < n; ++i) {
      records.push_back((*blocks_[i / kBlockCapacity])[i % kBlockCapacity]);
    }
    return records;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    committed_.store(0, std::memory_order_release);
    blocks_.clear();
    capacity_ = 0;
  }

  u32 tid() const { return tid_; }

  void set_name(std::string name) {
    std::lock_guard<std::mutex> lock(mutex_);
    name_ = std::move(name);
  }
  std::string name() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return name_;
  }

 private:
  const u32 tid_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Block>> blocks_;
  usize capacity_ = 0;
  std::atomic<usize> committed_{0};
  std::string name_;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  u32 next_tid = 1;
};

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: outlives all threads
  return *instance;
}

/// The calling thread's buffer, registered on first use. shared_ptr:
/// the registry keeps buffers of exited threads alive for the dump.
ThreadBuffer& thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto created = std::make_shared<ThreadBuffer>(reg.next_tid++);
    reg.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

void set_trace_enabled(bool enabled) {
  if (enabled) trace_epoch();  // pin the epoch before the first span
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

u64 trace_now_us() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - trace_epoch())
                              .count());
}

void set_thread_name(std::string_view name) {
#if defined(__linux__)
  // The kernel limit is 15 characters + NUL; truncate rather than fail.
  char short_name[16];
  const usize n = name.size() < 15 ? name.size() : 15;
  name.copy(short_name, n);
  short_name[n] = '\0';
  pthread_setname_np(pthread_self(), short_name);
#endif
  thread_buffer().set_name(std::string(name));
}

void record_span(std::string_view name, std::string_view category,
                 std::string_view arg_key, std::string_view arg_value,
                 u64 start_us, u64 end_us) {
  SpanRecord record;
  record.name = std::string(name);
  record.category = std::string(category);
  record.arg_key = std::string(arg_key);
  record.arg_value = std::string(arg_value);
  record.start_us = start_us;
  record.end_us = end_us;
  thread_buffer().push(std::move(record));
}

void Span::begin(std::string_view name, std::string_view category) {
  active_ = true;
  name_ = name;
  category_ = category;
  start_us_ = trace_now_us();
}

void Span::finish() {
  const u64 end_us = trace_now_us();
  record_span(name_, category_, arg_key_, arg_value_, start_us_, end_us);
}

util::Json trace_json() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    buffers = reg.buffers;
  }

  util::Json events = util::Json::array();
  for (const auto& buffer : buffers) {
    const u64 tid = buffer->tid();
    const std::string name = buffer->name();
    if (!name.empty()) {
      util::Json meta = util::Json::object();
      meta.set("name", util::Json("thread_name"));
      meta.set("ph", util::Json("M"));
      meta.set("pid", util::Json(u64{1}));
      meta.set("tid", util::Json(tid));
      util::Json args = util::Json::object();
      args.set("name", util::Json(name));
      meta.set("args", std::move(args));
      events.push_back(std::move(meta));
    }
    for (SpanRecord& record : buffer->snapshot()) {
      util::Json begin = util::Json::object();
      begin.set("name", util::Json(record.name));
      begin.set("cat", util::Json(record.category.empty()
                                      ? std::string("tlr")
                                      : record.category));
      begin.set("ph", util::Json("B"));
      begin.set("pid", util::Json(u64{1}));
      begin.set("tid", util::Json(tid));
      begin.set("ts", util::Json(record.start_us));
      if (!record.arg_key.empty()) {
        util::Json args = util::Json::object();
        args.set(record.arg_key, util::Json(record.arg_value));
        begin.set("args", std::move(args));
      }
      events.push_back(std::move(begin));

      util::Json end = util::Json::object();
      end.set("name", util::Json(std::move(record.name)));
      end.set("ph", util::Json("E"));
      end.set("pid", util::Json(u64{1}));
      end.set("tid", util::Json(tid));
      end.set("ts", util::Json(record.end_us));
      events.push_back(std::move(end));
    }
  }

  util::Json doc = util::Json::object();
  doc.set("displayTimeUnit", util::Json("ms"));
  doc.set("traceEvents", std::move(events));
  return doc;
}

bool write_trace_file(const std::string& path, std::string* error) {
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
    if (ec) {
      if (error != nullptr) {
        *error = "cannot create directory " + target.parent_path().string() +
                 ": " + ec.message();
      }
      return false;
    }
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << trace_json().dump(/*indent=*/-1) << "\n";
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

void reset_trace() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    buffers = reg.buffers;
  }
  for (const auto& buffer : buffers) buffer->clear();
}

}  // namespace tlr::obs
