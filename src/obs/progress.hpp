// Throttled run telemetry for the CLI tools (DESIGN.md §11).
//
// ProgressReporter replaces the tools' ad-hoc stderr prints with one
// stateful reporter: free-form notes, throttled per-job progress
// ticks with rate and ETA, and a per-section Minstr/s summary.
// Three modes:
//   kNone  — silent (--quiet / --progress none)
//   kLine  — human-readable stderr lines, prefixed "<tool>: " (the
//            historical format; scripts that grep the throughput
//            summary keep working byte-for-byte)
//   kJson  — one compact JSON object per line on stderr
//            ({"event":...}), machine-tailable run telemetry
//
// Heartbeat writes a small tlr-heartbeat/1 JSON file (atomically:
// tmp + rename) at a bounded rate so resumable paper-scale runs are
// observable from outside the process — a stalled shard shows up as
// a stale mtime, not as silence.
#pragma once

#include <chrono>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace tlr::obs {

enum class ProgressMode : u8 { kNone, kLine, kJson };

/// Parses a --progress value; nullopt on unknown names.
std::optional<ProgressMode> progress_mode_from_name(std::string_view name);

class ProgressReporter {
 public:
  /// `out` defaults to std::cerr. `tool` is the line prefix and the
  /// "tool" key of JSON events.
  explicit ProgressReporter(ProgressMode mode, std::ostream* out = nullptr,
                            std::string_view tool = "reuse_study");

  ProgressMode mode() const { return mode_; }
  bool enabled() const { return mode_ != ProgressMode::kNone; }

  /// Unthrottled free-form status ("profile ci (...), 4 thread(s)").
  /// kLine emits the text verbatim after the tool prefix.
  void note(std::string_view text);

  /// Starts a section: resets the throttle window and the section
  /// clock that update() rates and end_section() Minstr/s use.
  void begin_section(std::string_view section, usize total_jobs);

  /// One job-completion tick; emitted at most every ~0.25s (the first
  /// and final ticks always emit). `total` refreshes the job count —
  /// the fig9/fig10 fan-outs only learn it inside their progress
  /// callback (0 keeps the begin_section() value). `label` names the
  /// finished unit for list-style sections (suite workloads, shard
  /// keys); empty renders the percent style used by the job grids.
  void update(usize done, usize total = 0, std::string_view label = {});

  /// Ends the current section, recording `instructions` streamed for
  /// the final throughput summary.
  void end_section(u64 instructions);

  /// The run footer: the per-section "throughput: <name> <rate>
  /// Minstr/s ..." line and the total wall time.
  void finish(double wall_seconds);

 private:
  struct SectionRate {
    std::string label;
    u64 instructions = 0;
    double seconds = 0.0;
  };

  void emit_json(const std::string& event_body);
  double section_elapsed() const;

  ProgressMode mode_;
  std::ostream* out_;
  std::string tool_;
  std::string section_;
  usize total_jobs_ = 0;
  std::chrono::steady_clock::time_point section_start_;
  std::chrono::steady_clock::time_point last_emit_;
  bool emitted_any_ = false;
  std::vector<SectionRate> rates_;
};

/// Formats instructions/seconds as the Minstr/s rate string used in
/// throughput summaries; "--" when the section streamed nothing or
/// finished under the clock's resolution (matches
/// tools::format_minstr byte-for-byte).
std::string format_minstr_rate(u64 instructions, double wall_seconds);

class Heartbeat {
 public:
  /// Disabled: update()/finish() are no-ops.
  Heartbeat() = default;
  /// Writes `path` at most every `min_interval_s` (plus one final
  /// unconditional write from finish()).
  explicit Heartbeat(std::string path, double min_interval_s = 5.0);

  bool enabled() const { return !path_.empty(); }

  /// Throttled progress write; silently keeps the previous file on
  /// I/O failure (a heartbeat must never fail the run).
  void update(usize done, usize total, std::string_view label);

  /// Unconditional final write.
  void finish(usize done, usize total);

 private:
  void write(usize done, usize total, std::string_view label);

  std::string path_;
  double min_interval_s_ = 5.0;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_write_;
  bool wrote_any_ = false;
};

}  // namespace tlr::obs
