// Dataflow timing models (paper §4, extending Austin & Sohi's dynamic
// dependence analysis).
//
// Base machine, infinite window:
//   C(i) = max over producers p of inputs(i) of C(p) + lat(i)
// Base machine, window of W instructions:
//   G(i) = max_{j <= i} C(j)    (graduation time)
//   C(i) = max(producer times, G(i - W)) + lat(i)
// Instruction-level reuse (oracle rule):
//   C(i) = readiness + min(lat(i), reuse_latency)      if i is reusable
// Trace-level reuse:
//   every output of a reusable trace completes at
//   max over producers of the trace's live-ins (+ window constraint at
//   the trace's first slot) + trace reuse latency; per instruction the
//   better of normal/reused execution is chosen (oracle rule, §4.5).
//   Instructions of reused traces do not occupy window slots; the
//   reuse operation occupies `trace_slots(outputs)` slots (§3.3 writes
//   the outputs through the window for precise exceptions).
//
// Functional units are infinite throughout (§4: "limited instruction
// window but infinite number of functional units").
#pragma once

#include <algorithm>
#include <array>
#include <span>
#include <vector>

#include "isa/dyn_inst.hpp"
#include "isa/latency.hpp"
#include "timing/plan.hpp"
#include "util/flat_hash_map.hpp"
#include "util/types.hpp"

namespace tlr::timing {

/// How many window slots a reused trace's state update occupies.
enum class TraceSlotPolicy : u8 {
  kNone,     // idealised: reuse is free of window cost
  kOne,      // the reuse operation itself takes one slot
  kOutputs,  // one slot per output value written (default; §3.3)
};

struct TimerConfig {
  isa::LatencyTable latencies = isa::kAlpha21164Latencies;

  /// Instruction window size in instructions; 0 means infinite.
  u32 window = 0;

  /// Latency charged per instruction-level reuse operation.
  Cycle inst_reuse_latency = 1;

  /// Trace reuse latency: constant, or proportional to (inputs +
  /// outputs) with factor `k` (Fig 8b; k = 1/bandwidth). When
  /// `proportional` is set, `trace_reuse_latency` is ignored.
  Cycle trace_reuse_latency = 1;
  bool proportional_trace_latency = false;
  double trace_latency_k = 1.0 / 16.0;

  TraceSlotPolicy trace_slots = TraceSlotPolicy::kOutputs;
};

struct TimerResult {
  u64 instructions = 0;
  Cycle cycles = 0;
  double ipc = 0.0;
};

/// Incremental dataflow timer: the streaming core every timing model is
/// built on. Callers drive it in stream order with one call per
/// dynamic event — a normally executed instruction, an instruction-
/// level reuse, or a whole reused trace — and read the result when the
/// stream ends. O(distinct locations + W) space regardless of stream
/// length, which is what lets the study engine price arbitrarily long
/// chunked streams without materialising them.
class StreamingTimer {
 public:
  explicit StreamingTimer(const TimerConfig& config);

  /// Base-machine execution of one instruction.
  void step_normal(const isa::DynInst& inst);

  /// Instruction-level reuse (oracle rule, §4.3): same readiness as
  /// normal execution, the better of the two latencies applies.
  void step_inst_reuse(const isa::DynInst& inst);

  /// One whole reused trace: `insts` are the trace's dynamic
  /// instructions in order, `trace` its live-in / IO summary.
  void step_trace(std::span<const isa::DynInst> insts,
                  const PlanTrace& trace);

  u64 instructions() const { return instructions_; }
  TimerResult result() const;

 protected:
  // Extension surface for derived pricing models (spec::SpecTimer): the
  // readiness primitives plus an issue floor folded into every
  // subsequent step's window constraint.
  const TimerConfig& config() const { return config_; }
  Cycle loc_ready(isa::Loc loc) const;
  Cycle operand_ready(const isa::DynInst& inst) const;
  Cycle window_constraint() const;

  /// Readiness of a trace's reuse operation at the current stream
  /// point: producers of every live-in, plus the window constraint.
  Cycle trace_ready(const PlanTrace& trace) const;

  /// Lower-bounds every subsequent issue (speculation squash recovery).
  /// Monotone; zero until raised, so it costs nothing when unused.
  void raise_issue_floor(Cycle cycle) { floor_ = std::max(floor_, cycle); }

 private:
  void set_loc_ready(isa::Loc loc, Cycle cycle);
  void push_slot(Cycle cycle);
  void finish_inst(const isa::DynInst& inst, Cycle completion);

  TimerConfig config_;
  std::array<Cycle, isa::kNumRegs> reg_ready_;
  FlatHashMap<u64, Cycle> mem_ready_;
  std::vector<Cycle> ring_;  // prefix-max graduation times
  u64 slots_ = 0;
  Cycle gmax_ = 0;
  Cycle last_ = 0;
  Cycle floor_ = 0;  // issue floor (raise_issue_floor)
  u64 instructions_ = 0;
};

/// Computes execution time of `stream` under `config`; `plan` may be
/// null (base machine) or annotate reuse. Single forward pass over a
/// materialised stream — a thin wrapper around StreamingTimer.
TimerResult compute_timing(std::span<const isa::DynInst> stream,
                           const ReusePlan* plan, const TimerConfig& config);

/// speed-up = base.cycles / with_reuse.cycles for the same stream.
double speedup(const TimerResult& base, const TimerResult& with_reuse);

}  // namespace tlr::timing
