#include "timing/timer.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace tlr::timing {

using isa::DynInst;
using isa::Loc;

namespace {

Cycle trace_latency(const TimerConfig& config, const PlanTrace& trace) {
  if (!config.proportional_trace_latency) return config.trace_reuse_latency;
  const double raw =
      config.trace_latency_k * static_cast<double>(trace.inputs() +
                                                   trace.outputs());
  return static_cast<Cycle>(std::max(1.0, std::ceil(raw)));
}

u32 trace_slot_count(const TimerConfig& config, const PlanTrace& trace) {
  switch (config.trace_slots) {
    case TraceSlotPolicy::kNone:
      return 0;
    case TraceSlotPolicy::kOne:
      return 1;
    case TraceSlotPolicy::kOutputs:
      return trace.outputs();
  }
  return trace.outputs();
}

}  // namespace

StreamingTimer::StreamingTimer(const TimerConfig& config)
    : config_(config), ring_(std::max<u32>(config.window, 1), 0) {
  reg_ready_.fill(0);
  mem_ready_.reserve(1 << 12);
}

Cycle StreamingTimer::loc_ready(Loc loc) const {
  if (loc.is_reg()) return reg_ready_[loc.reg_index()];
  const Cycle* ready = mem_ready_.find(loc.raw());
  return ready == nullptr ? 0 : *ready;
}

void StreamingTimer::set_loc_ready(Loc loc, Cycle cycle) {
  if (loc.is_reg()) {
    reg_ready_[loc.reg_index()] = cycle;
  } else {
    mem_ready_[loc.raw()] = cycle;
  }
}

/// Readiness of an instruction's own operands.
Cycle StreamingTimer::operand_ready(const DynInst& inst) const {
  Cycle ready = 0;
  for (u8 k = 0; k < inst.num_inputs; ++k) {
    ready = std::max(ready, loc_ready(inst.inputs[k].loc));
  }
  return ready;
}

/// Graduation-time constraint for the next window slot: the completion
/// of the instruction W slots earlier (0 when the window is infinite or
/// not yet full), never below the issue floor.
Cycle StreamingTimer::window_constraint() const {
  if (config_.window == 0 || slots_ < config_.window) return floor_;
  return std::max(floor_, ring_[(slots_ - config_.window) % config_.window]);
}

Cycle StreamingTimer::trace_ready(const PlanTrace& trace) const {
  Cycle ready = window_constraint();
  for (const Loc& loc : trace.live_in) {
    ready = std::max(ready, loc_ready(loc));
  }
  return ready;
}

/// Record one occupied window slot completing at `cycle`.
void StreamingTimer::push_slot(Cycle cycle) {
  gmax_ = std::max(gmax_, cycle);
  if (config_.window != 0) {
    ring_[slots_ % config_.window] = gmax_;
  }
  ++slots_;
}

void StreamingTimer::finish_inst(const DynInst& inst, Cycle completion) {
  if (inst.has_output) set_loc_ready(inst.output, completion);
  last_ = std::max(last_, completion);
  ++instructions_;
}

void StreamingTimer::step_normal(const DynInst& inst) {
  const Cycle lat = config_.latencies.get(inst.op);
  const Cycle ready = std::max(operand_ready(inst), window_constraint());
  const Cycle completion = ready + lat;
  push_slot(completion);
  finish_inst(inst, completion);
}

void StreamingTimer::step_inst_reuse(const DynInst& inst) {
  // Oracle rule: same readiness either way, so the better of the two
  // latencies applies (§4.3).
  const Cycle lat = config_.latencies.get(inst.op);
  const Cycle ready = std::max(operand_ready(inst), window_constraint());
  const Cycle completion = ready + std::min(lat, config_.inst_reuse_latency);
  push_slot(completion);
  finish_inst(inst, completion);
}

void StreamingTimer::step_trace(std::span<const DynInst> insts,
                                const PlanTrace& trace) {
  TLR_ASSERT_MSG(insts.size() == trace.length,
                 "trace body does not match its plan record");
  // The reuse operation: gated by the producers of every trace live-in,
  // plus the window constraint for its first slot.
  const Cycle trace_completion =
      trace_ready(trace) + trace_latency(config_, trace);
  const u32 slots = trace_slot_count(config_, trace);
  for (u32 s = 0; s < slots; ++s) {
    push_slot(trace_completion);
  }
  // Oracle rule (§4.5): an instruction whose normal dataflow completion
  // beats the trace reuse keeps the normal time. The normal path needs
  // no window slot here — its instruction is not fetched; this matches
  // the upper-bound character of the study.
  for (const DynInst& inst : insts) {
    const Cycle lat = config_.latencies.get(inst.op);
    const Cycle normal = operand_ready(inst) + lat;
    finish_inst(inst, std::min(trace_completion, normal));
  }
}

TimerResult StreamingTimer::result() const {
  TimerResult result;
  result.instructions = instructions_;
  result.cycles = last_;
  result.ipc = result.cycles == 0
                   ? 0.0
                   : static_cast<double>(result.instructions) /
                         static_cast<double>(result.cycles);
  return result;
}

TimerResult compute_timing(std::span<const DynInst> stream,
                           const ReusePlan* plan, const TimerConfig& config) {
  if (plan != nullptr) {
    TLR_ASSERT_MSG(plan->kind.size() == stream.size(),
                   "plan does not annotate this stream");
  }

  StreamingTimer timer(config);
  usize i = 0;
  while (i < stream.size()) {
    const InstKind kind = plan ? plan->kind[i] : InstKind::kNormal;
    switch (kind) {
      case InstKind::kNormal:
        timer.step_normal(stream[i]);
        ++i;
        break;
      case InstKind::kInstReuse:
        timer.step_inst_reuse(stream[i]);
        ++i;
        break;
      case InstKind::kTraceReuse: {
        const PlanTrace& trace = plan->traces[plan->trace_of[i]];
        TLR_ASSERT_MSG(trace.first_index == i && i + trace.length <= stream.size(),
                       "trace annotation is not a contiguous run");
        timer.step_trace(stream.subspan(i, trace.length), trace);
        i += trace.length;
        break;
      }
    }
  }
  return timer.result();
}

double speedup(const TimerResult& base, const TimerResult& with_reuse) {
  TLR_ASSERT(with_reuse.cycles > 0);
  return static_cast<double>(base.cycles) /
         static_cast<double>(with_reuse.cycles);
}

}  // namespace tlr::timing
