#include "timing/timer.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "util/assert.hpp"

namespace tlr::timing {

using isa::DynInst;
using isa::Loc;

namespace {

/// Mutable timing state for one forward pass.
class TimingState {
 public:
  explicit TimingState(const TimerConfig& config)
      : config_(config), ring_(std::max<u32>(config.window, 1), 0) {
    reg_ready_.fill(0);
    mem_ready_.reserve(1 << 12);
  }

  Cycle loc_ready(Loc loc) const {
    if (loc.is_reg()) return reg_ready_[loc.reg_index()];
    const auto it = mem_ready_.find(loc.raw());
    return it == mem_ready_.end() ? 0 : it->second;
  }

  void set_loc_ready(Loc loc, Cycle cycle) {
    if (loc.is_reg()) {
      reg_ready_[loc.reg_index()] = cycle;
    } else {
      mem_ready_[loc.raw()] = cycle;
    }
  }

  /// Readiness of an instruction's own operands.
  Cycle operand_ready(const DynInst& inst) const {
    Cycle ready = 0;
    for (u8 k = 0; k < inst.num_inputs; ++k) {
      ready = std::max(ready, loc_ready(inst.inputs[k].loc));
    }
    return ready;
  }

  /// Graduation-time constraint for the next window slot: the
  /// completion of the instruction W slots earlier (0 when the window
  /// is infinite or not yet full).
  Cycle window_constraint() const {
    if (config_.window == 0 || slots_ < config_.window) return 0;
    return ring_[(slots_ - config_.window) % config_.window];
  }

  /// Record one occupied window slot completing at `cycle`.
  void push_slot(Cycle cycle) {
    gmax_ = std::max(gmax_, cycle);
    if (config_.window != 0) {
      ring_[slots_ % config_.window] = gmax_;
    }
    ++slots_;
  }

  void note_completion(Cycle cycle) { last_ = std::max(last_, cycle); }
  Cycle last_completion() const { return last_; }

 private:
  const TimerConfig& config_;
  std::array<Cycle, isa::kNumRegs> reg_ready_;
  std::unordered_map<u64, Cycle> mem_ready_;
  std::vector<Cycle> ring_;  // prefix-max graduation times
  u64 slots_ = 0;
  Cycle gmax_ = 0;
  Cycle last_ = 0;
};

Cycle trace_latency(const TimerConfig& config, const PlanTrace& trace) {
  if (!config.proportional_trace_latency) return config.trace_reuse_latency;
  const double raw =
      config.trace_latency_k * static_cast<double>(trace.inputs() +
                                                   trace.outputs());
  return static_cast<Cycle>(std::max(1.0, std::ceil(raw)));
}

u32 trace_slot_count(const TimerConfig& config, const PlanTrace& trace) {
  switch (config.trace_slots) {
    case TraceSlotPolicy::kNone:
      return 0;
    case TraceSlotPolicy::kOne:
      return 1;
    case TraceSlotPolicy::kOutputs:
      return trace.outputs();
  }
  return trace.outputs();
}

}  // namespace

TimerResult compute_timing(std::span<const DynInst> stream,
                           const ReusePlan* plan, const TimerConfig& config) {
  if (plan != nullptr) {
    TLR_ASSERT_MSG(plan->kind.size() == stream.size(),
                   "plan does not annotate this stream");
  }

  TimingState state(config);
  // Completion of the current reused trace, valid while inside one.
  Cycle cur_trace_completion = 0;

  for (usize i = 0; i < stream.size(); ++i) {
    const DynInst& inst = stream[i];
    const InstKind kind = plan ? plan->kind[i] : InstKind::kNormal;
    const Cycle lat = config.latencies.get(inst.op);

    Cycle completion = 0;
    switch (kind) {
      case InstKind::kNormal: {
        const Cycle ready =
            std::max(state.operand_ready(inst), state.window_constraint());
        completion = ready + lat;
        state.push_slot(completion);
        break;
      }
      case InstKind::kInstReuse: {
        // Oracle rule: same readiness either way, so the better of the
        // two latencies applies (§4.3).
        const Cycle ready =
            std::max(state.operand_ready(inst), state.window_constraint());
        completion = ready + std::min(lat, config.inst_reuse_latency);
        state.push_slot(completion);
        break;
      }
      case InstKind::kTraceReuse: {
        const PlanTrace& trace = plan->traces[plan->trace_of[i]];
        if (i == trace.first_index) {
          // The reuse operation: gated by the producers of every trace
          // live-in, plus the window constraint for its first slot.
          Cycle ready = state.window_constraint();
          for (const Loc& loc : trace.live_in) {
            ready = std::max(ready, state.loc_ready(loc));
          }
          cur_trace_completion = ready + trace_latency(config, trace);
          const u32 slots = trace_slot_count(config, trace);
          for (u32 s = 0; s < slots; ++s) {
            state.push_slot(cur_trace_completion);
          }
        }
        // Oracle rule (§4.5): an instruction whose normal dataflow
        // completion beats the trace reuse keeps the normal time. The
        // normal path needs no window slot here — its instruction is
        // not fetched; this matches the upper-bound character of the
        // study.
        const Cycle normal = state.operand_ready(inst) + lat;
        completion = std::min(cur_trace_completion, normal);
        break;
      }
    }

    if (inst.has_output) state.set_loc_ready(inst.output, completion);
    state.note_completion(completion);
  }

  TimerResult result;
  result.instructions = stream.size();
  result.cycles = state.last_completion();
  result.ipc = result.cycles == 0
                   ? 0.0
                   : static_cast<double>(result.instructions) /
                         static_cast<double>(result.cycles);
  return result;
}

double speedup(const TimerResult& base, const TimerResult& with_reuse) {
  TLR_ASSERT(with_reuse.cycles > 0);
  return static_cast<double>(base.cycles) /
         static_cast<double>(with_reuse.cycles);
}

}  // namespace tlr::timing
