// ReusePlan: the interface between the reuse analyses and the timing
// models.
//
// A plan annotates every dynamic instruction of a stream as executed
// normally, reused individually (instruction-level reuse), or covered
// by a reused trace; trace annotations carry the trace's live-in
// location set (whose producers gate the reuse operation) and its
// input/output counts (which price the proportional-latency model of
// Fig 8b and decide how many instruction-window slots the reused trace
// occupies).
#pragma once

#include <vector>

#include "isa/reg.hpp"
#include "util/small_vector.hpp"
#include "util/types.hpp"

namespace tlr::timing {

enum class InstKind : u8 {
  kNormal,
  kInstReuse,
  kTraceReuse,
};

/// One reusable trace in the plan.
struct PlanTrace {
  u64 first_index = 0;  // dynamic index of the trace's first instruction
  u32 length = 0;       // instructions covered

  /// Live-in locations: read before written inside the trace. Their
  /// producers' completion times gate the trace reuse operation.
  SmallVector<isa::Loc, 8> live_in;

  u32 reg_inputs = 0;
  u32 mem_inputs = 0;
  u32 reg_outputs = 0;
  u32 mem_outputs = 0;

  u32 inputs() const { return reg_inputs + mem_inputs; }
  u32 outputs() const { return reg_outputs + mem_outputs; }
};

/// Per-stream reuse annotation. `kind.size()` equals the stream length;
/// `trace_of[i]` indexes `traces` when `kind[i] == kTraceReuse`.
struct ReusePlan {
  std::vector<InstKind> kind;
  std::vector<u32> trace_of;
  std::vector<PlanTrace> traces;

  bool empty() const { return kind.empty(); }

  /// Fraction of instructions covered by any reuse annotation.
  double reuse_coverage() const {
    if (kind.empty()) return 0.0;
    u64 covered = 0;
    for (InstKind k : kind) {
      if (k != InstKind::kNormal) ++covered;
    }
    return static_cast<double>(covered) / static_cast<double>(kind.size());
  }
};

}  // namespace tlr::timing
