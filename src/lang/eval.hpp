// TLC reference evaluator — the differential-testing oracle.
//
// A direct tree walk over the parsed Unit, sharing only arith.hpp with
// the code generator. If the compiled program and this evaluator agree
// on main's return value and on every global (scalars and array
// contents), the compilation pipeline is exercised end to end with an
// independent second opinion on the semantics.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "util/types.hpp"

namespace tlr::lang {

struct EvalLimits {
  /// Statement + expression-node budget; generated programs terminate
  /// by construction, but the oracle must survive any input.
  u64 max_steps = u64{1} << 26;
  u32 max_call_depth = 200;
};

struct EvalResult {
  bool ok = false;
  std::string error;  // "step limit exceeded" / "call depth exceeded"
  i64 return_value = 0;
  u64 steps = 0;
  /// Final global state, keyed by symbol name.
  std::map<std::string, i64> globals;
  std::map<std::string, std::vector<i64>> arrays;
};

/// Runs `unit`'s main function from the initial state (globals at their
/// initialisers, arrays zeroed).
EvalResult evaluate(const Unit& unit, const EvalLimits& limits = {});

}  // namespace tlr::lang
