// Source locations and one-line diagnostics for the TLC frontend.
//
// Every frontend failure — lex error, parse error, type error, codegen
// restriction — is reported as a single Diag carrying the 1-based
// line:col of the offending token, so tools can print the conventional
// `file:line:col: message` form and property tests can pin the exact
// position (tests/lang/lang_test.cpp).
#pragma once

#include <string>

#include "util/types.hpp"

namespace tlr::lang {

/// 1-based position inside a TLC source buffer.
struct SourceLoc {
  u32 line = 1;
  u32 col = 1;
};

struct Diag {
  std::string message;
  SourceLoc loc;

  /// `file:line:col: message` — the one-line form the CLI prints.
  std::string to_string(std::string_view file) const {
    std::string out(file);
    out += ':';
    out += std::to_string(loc.line);
    out += ':';
    out += std::to_string(loc.col);
    out += ": ";
    out += message;
    return out;
  }
};

}  // namespace tlr::lang
