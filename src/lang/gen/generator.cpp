#include "lang/gen/generator.hpp"

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace tlr::lang::gen {

namespace {

struct ArrayInfo {
  std::string name;
  u32 len = 0;
};

class Generator {
 public:
  explicit Generator(const GenConfig& config)
      : config_(config), rng_(config.seed) {
    config_.size = std::min(config_.size, u32{4});
  }

  std::string run() {
    line("// tlgen seed=" + std::to_string(config_.seed) +
         " size=" + std::to_string(config_.size));
    emit_globals();
    emit_helpers();
    emit_main();
    return std::move(out_);
  }

 private:
  // ---- output helpers ------------------------------------------------
  void line(const std::string& text) {
    out_.append(static_cast<usize>(indent_) * 2, ' ');
    out_ += text;
    out_ += '\n';
  }
  void open(const std::string& head) {
    line(head + " {");
    ++indent_;
  }
  void close() {
    --indent_;
    line("}");
  }

  std::string num(u64 bound) { return std::to_string(rng_.below(bound)); }

  // ---- expressions ---------------------------------------------------
  /// A random scalar the current scope can read.
  std::string scalar() {
    const usize n = scalars_.size();
    return n == 0 ? num(64) : scalars_[rng_.below(n)];
  }

  /// An array element; the language masks the index, so any integer
  /// subexpression is a valid subscript.
  std::string array_read() {
    const ArrayInfo& arr = arrays_[rng_.below(arrays_.size())];
    std::string index = scalar();
    if (rng_.chance(1, 2)) index += " + " + num(arr.len);
    return arr.name + "[" + index + "]";
  }

  std::string leaf() {
    const u64 kind = rng_.below(10);
    if (kind < 4) return scalar();
    if (kind < 7 && !arrays_.empty()) return array_read();
    if (kind < 9) return num(256);
    return "0x" + std::to_string(rng_.below(0xfff));  // decimal digits: fine
  }

  /// Random expression of bounded depth. Shift amounts are literal and
  /// small; divisor/modulus operands are forced odd (`| 1`) so values
  /// stay lively without ever dividing by zero (which TLC defines
  /// anyway, but zero quotients everywhere make dull programs).
  std::string expr(u32 depth) {
    if (depth == 0 || rng_.chance(1, 4)) return leaf();
    const u64 pick = rng_.below(20);
    const std::string a = expr(depth - 1);
    if (pick < 1) return "(-" + a + ")";
    if (pick < 2) return "(~" + a + ")";
    if (pick < 4) return "(" + a + " >> " + num(5) + ")";
    if (pick < 6) return "(" + a + " << " + num(4) + ")";
    const std::string b = expr(depth - 1);
    if (pick < 9) return "(" + a + " + " + b + ")";
    if (pick < 11) return "(" + a + " - " + b + ")";
    if (pick < 13) return "(" + a + " * " + b + ")";
    if (pick < 15) return "(" + a + " ^ " + b + ")";
    if (pick < 16) return "(" + a + " & " + b + ")";
    if (pick < 17) return "(" + a + " | " + b + ")";
    if (pick < 18) return "(" + a + " / (" + b + " | 1))";
    if (pick < 19) return "(" + a + " % (" + b + " | 1))";
    return "(" + a + (rng_.chance(1, 2) ? " < " : " == ") + b + ")";
  }

  /// A call expression over a deliberately small argument domain, so
  /// the same (function, arguments) pairs recur — the paper's repeated
  /// computation at function granularity.
  std::string call_expr() {
    const usize which = rng_.below(helpers_.size());
    std::string call = helpers_[which] + "(";
    for (u32 i = 0; i < helper_arity_[which]; ++i) {
      if (i > 0) call += ", ";
      call += scalar() + " & " + std::to_string((u64{1} << rng_.range(2, 4)) - 1);
    }
    return call + ")";
  }

  // ---- program sections ----------------------------------------------
  void emit_globals() {
    const u64 num_arrays = rng_.range(1, 2 + (config_.size >= 2 ? 1 : 0));
    for (u64 i = 0; i < num_arrays; ++i) {
      ArrayInfo arr;
      arr.name = std::string(1, static_cast<char>('A' + i));
      arr.len = u32{1} << rng_.range(4, 5 + config_.size);
      line("int " + arr.name + "[" + std::to_string(arr.len) + "];");
      arrays_.push_back(arr);
    }
    const u64 num_globals = rng_.range(1, 3);
    for (u64 i = 0; i < num_globals; ++i) {
      const std::string name = "g" + std::to_string(i);
      line("int " + name + " = (SEED >> " + std::to_string(8 * i) +
           ") & " + num(4096) + ";");
      globals_.push_back(name);
      scalars_.push_back(name);
    }
    line("");
  }

  void emit_helpers() {
    const u64 count = rng_.range(config_.size >= 1 ? 1 : 0, 2);
    for (u64 i = 0; i < count; ++i) {
      const std::string name = "h" + std::to_string(i);
      const u32 arity = static_cast<u32>(rng_.range(1, 3));
      // Helper scope: parameters (+ globals, already in scalars_).
      const std::vector<std::string> saved = scalars_;
      std::string head = "int " + name + "(";
      for (u32 p = 0; p < arity; ++p) {
        const std::string param = "p" + std::to_string(p);
        if (p > 0) head += ", ";
        head += "int " + param;
        scalars_.push_back(param);
      }
      open(head + ")");
      if (i == 0 && rng_.chance(1, 2)) {
        // Constant-depth recursion on the first parameter.
        open("if (p0 < 1)");
        line("return " + expr(2) + ";");
        close();
        std::string rec = name + "(p0 - 1";
        for (u32 p = 1; p < arity; ++p) rec += ", " + expr(1);
        line("return " + rec + ") ^ p0;");
      } else {
        line("int u = " + expr(2) + ";");
        scalars_.push_back("u");
        if (rng_.chance(1, 2)) {
          open("for (int k = 0; k < " + std::to_string(rng_.range(2, 6)) +
               "; k = k + 1)");
          line("u = " + expr(2) + ";");
          close();
        }
        line("return " + expr(2) + ";");
      }
      close();
      line("");
      scalars_ = saved;
      helpers_.push_back(name);
      helper_arity_.push_back(arity);
    }
  }

  void emit_main() {
    open("int main()");
    line("int t = SEED & 0xffff;");
    line("int acc = 0;");
    scalars_.push_back("t");
    scalars_.push_back("acc");

    // Initialise every array from a cheap index recurrence.
    for (const ArrayInfo& arr : arrays_) {
      open("for (int i = 0; i < " + std::to_string(arr.len) +
           "; i = i + 1)");
      scalars_.push_back("i");
      line(arr.name + "[i] = " + expr(2) + ";");
      scalars_.pop_back();
      close();
    }

    // Re-traversal rounds: the reuse-heavy core. The traversed prefix
    // stretches with SCALE (indices self-mask past the array length).
    const u64 rounds = rng_.range(2, 3 + config_.size);
    const ArrayInfo& hot = arrays_[rng_.below(arrays_.size())];
    const u64 span = std::min<u64>(hot.len, u64{1} << rng_.range(4, 6));
    line("int limit = " + std::to_string(span) +
         (config_.use_scale ? " * SCALE;" : ";"));
    scalars_.push_back("limit");
    open("for (int r = 0; r < " + std::to_string(rounds) + "; r = r + 1)");
    scalars_.push_back("r");
    open("for (int j = 0; j < limit; j = j + 1)");
    scalars_.push_back("j");
    line("acc = acc + " + hot.name + "[j] * " + num(16) + ";");
    const u64 extras = rng_.range(1, 2 + config_.size / 2);
    for (u64 i = 0; i < extras; ++i) {
      switch (rng_.below(4)) {
        case 0:  // slow mutation: a sparse subset of elements changes
          open("if ((j & " + std::to_string((u64{1} << rng_.range(3, 5)) - 1) +
               ") == 0)");
          line(hot.name + "[j] = " + hot.name + "[j] + " + num(8) + ";");
          close();
          break;
        case 1:
          if (!helpers_.empty()) {
            line("t = " + call_expr() + ";");
            break;
          }
          [[fallthrough]];
        case 2:
          line("acc = " + expr(3) + ";");
          break;
        default: {
          const ArrayInfo& arr = arrays_[rng_.below(arrays_.size())];
          line(arr.name + "[" + expr(1) + "] = " + expr(2) + ";");
          break;
        }
      }
    }
    // Quasi-invariant global: written rarely, read every iteration.
    line("acc = acc ^ " + globals_[0] + ";");
    open("if ((r ^ j) == " + std::to_string(rounds - 1) + ")");
    line(globals_[0] + " = " + globals_[0] + " + 1;");
    close();
    close();  // inner for
    scalars_.pop_back();
    close();  // outer for
    scalars_.pop_back();

    // Strictly-shrinking while loop (halving terminates in <= 64 steps).
    line("int x = (acc | 1) & 0xffffff;");
    open("while (x > 0)");
    line("x = x >> 1;");
    line("t = t + 1;");
    close();

    line("return acc ^ t;");
    close();
  }

  GenConfig config_;
  Rng rng_;
  std::string out_;
  u32 indent_ = 0;
  std::vector<ArrayInfo> arrays_;
  std::vector<std::string> globals_;
  std::vector<std::string> scalars_;  // readable scalars in scope
  std::vector<std::string> helpers_;
  std::vector<u32> helper_arity_;
};

}  // namespace

std::string generate_program(const GenConfig& config) {
  Generator generator(config);
  return generator.run();
}

}  // namespace tlr::lang::gen
