// tlgen: seeded random TLC program generator.
//
// Emits well-formed, terminating-by-construction TLC sources biased
// toward the shapes the reuse study cares about (PAPER.md): nested
// loops re-traversing slowly-mutating global arrays, repeated calls
// over small argument domains, and quasi-invariant globals. Every
// loop has a constant trip bound or a strictly-shrinking shift
// variable, and recursion depth is a compile-time constant, so the
// differential oracle never needs a timeout verdict.
//
// Generation is bit-deterministic: the same GenConfig always yields
// the same source text (tlr::Rng, no global state).
#pragma once

#include <string>

#include "util/types.hpp"

namespace tlr::lang::gen {

struct GenConfig {
  u64 seed = 1;
  /// Program size/complexity knob, 0 (tiny) .. 4 (large). Values above
  /// 4 are clamped.
  u32 size = 2;
  /// Reference the SCALE builtin in traversal bounds so the working
  /// set stretches with WorkloadParams::scale.
  bool use_scale = true;
};

/// Returns the TLC source text for `config`.
std::string generate_program(const GenConfig& config);

}  // namespace tlr::lang::gen
