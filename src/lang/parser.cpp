#include "lang/parser.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "lang/arith.hpp"
#include "lang/lexer.hpp"

namespace tlr::lang {

namespace {

/// Parenthesis/unary/call nesting cap: malformed or adversarial input
/// must produce a Diag, not a stack overflow in the parser itself.
constexpr u32 kMaxNesting = 64;

class Parser {
 public:
  Parser(std::vector<Token> tokens, const ParseParams& params, Diag* diag)
      : tokens_(std::move(tokens)), diag_(diag) {
    unit_.seed = params.seed;
    unit_.scale = params.scale;
  }

  std::optional<Unit> run() {
    // Builtins live in the global scope as const symbols.
    scopes_.emplace_back();
    declare_const("SCALE", static_cast<i64>(unit_.scale));
    declare_const("SEED", static_cast<i64>(unit_.seed));

    while (!at(Tok::kEof)) {
      if (!parse_top_level()) return std::nullopt;
    }
    if (!finalize()) return std::nullopt;
    return std::move(unit_);
  }

 private:
  // ---- token helpers -------------------------------------------------
  const Token& peek(usize ahead = 0) const {
    const usize i = pos_ + ahead;
    return tokens_[i < tokens_.size() ? i : tokens_.size() - 1];
  }
  bool at(Tok kind) const { return peek().kind == kind; }
  const Token& take() { return tokens_[pos_++]; }

  bool error(SourceLoc loc, std::string message) {
    if (diag_ != nullptr && diag_->message.empty()) {
      *diag_ = {std::move(message), loc};
    }
    return false;
  }

  bool expect(Tok kind, const char* context) {
    if (at(kind)) {
      take();
      return true;
    }
    return error(peek().loc, std::string("expected ") +
                                 std::string(tok_name(kind)) + " " + context +
                                 ", got " + std::string(tok_name(peek().kind)));
  }

  // ---- symbols -------------------------------------------------------
  void declare_const(std::string name, i64 value) {
    Symbol sym;
    sym.kind = Symbol::Kind::kConst;
    sym.name = name;
    sym.init = value;
    scopes_[0].push_back(static_cast<u32>(unit_.symbols.size()));
    unit_.symbols.push_back(std::move(sym));
  }

  const Symbol* lookup(std::string_view name, u32* index) const {
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
      for (auto it = scope->rbegin(); it != scope->rend(); ++it) {
        if (unit_.symbols[*it].name == name) {
          *index = *it;
          return &unit_.symbols[*it];
        }
      }
    }
    return nullptr;
  }

  bool declared_in_current_scope(std::string_view name) const {
    for (const u32 index : scopes_.back()) {
      if (unit_.symbols[index].name == name) return true;
    }
    return false;
  }

  bool declare(Symbol sym, u32* index) {
    if (declared_in_current_scope(sym.name)) {
      const bool builtin = sym.name == "SCALE" || sym.name == "SEED";
      return error(sym.loc, std::string("redefinition of ") +
                                (builtin ? "builtin '" : "'") + sym.name +
                                "'");
    }
    if (scopes_.size() == 1 && functions_by_name_.count(sym.name) != 0) {
      return error(sym.loc, "redefinition of '" + sym.name +
                                "' (already a function)");
    }
    *index = static_cast<u32>(unit_.symbols.size());
    scopes_.back().push_back(*index);
    unit_.symbols.push_back(std::move(sym));
    return true;
  }

  // ---- constant expressions ------------------------------------------
  /// Folds `expr` to a constant; only literals, builtins, and operators
  /// are allowed (array sizes, global initialisers).
  bool fold_const(const Expr& expr, i64* out) {
    switch (expr.kind) {
      case Expr::Kind::kNum:
        *out = expr.number;
        return true;
      case Expr::Kind::kVar: {
        const Symbol& sym = unit_.symbols[expr.sym];
        if (sym.kind == Symbol::Kind::kConst) {
          *out = sym.init;
          return true;
        }
        return error(expr.loc, "'" + expr.name +
                                   "' is not a constant (only literals and "
                                   "SCALE/SEED are allowed here)");
      }
      case Expr::Kind::kUnary: {
        i64 a = 0;
        if (!fold_const(*expr.lhs, &a)) return false;
        *out = apply_un(expr.un_op, a);
        return true;
      }
      case Expr::Kind::kBinary: {
        i64 a = 0, b = 0;
        if (!fold_const(*expr.lhs, &a) || !fold_const(*expr.rhs, &b)) {
          return false;
        }
        *out = apply_bin(expr.bin_op, a, b);
        return true;
      }
      default:
        return error(expr.loc, "expected a constant expression");
    }
  }

  // ---- expressions ---------------------------------------------------
  ExprPtr parse_primary() {
    const Token& token = peek();
    if (token.kind == Tok::kNumber) {
      take();
      auto expr = std::make_unique<Expr>();
      expr->kind = Expr::Kind::kNum;
      expr->loc = token.loc;
      expr->number = token.number;
      return expr;
    }
    if (token.kind == Tok::kLParen) {
      if (++nesting_ > kMaxNesting) {
        error(token.loc, "expression nesting too deep");
        return nullptr;
      }
      take();
      ExprPtr inner = parse_expr();
      --nesting_;
      if (inner == nullptr) return nullptr;
      if (!expect(Tok::kRParen, "to close '('")) return nullptr;
      return inner;
    }
    if (token.kind == Tok::kIdent) {
      take();
      if (at(Tok::kLParen)) return parse_call(token);
      auto expr = std::make_unique<Expr>();
      expr->loc = token.loc;
      expr->name = std::string(token.text);
      u32 index = 0;
      const Symbol* sym = lookup(token.text, &index);
      if (sym == nullptr) {
        error(token.loc,
              "undefined name '" + std::string(token.text) + "'");
        return nullptr;
      }
      expr->sym = index;
      if (at(Tok::kLBracket)) {
        if (sym->kind != Symbol::Kind::kGlobalArray) {
          error(token.loc,
                "cannot index scalar '" + std::string(token.text) + "'");
          return nullptr;
        }
        take();
        expr->kind = Expr::Kind::kIndex;
        expr->lhs = parse_expr();
        if (expr->lhs == nullptr) return nullptr;
        if (!expect(Tok::kRBracket, "to close '['")) return nullptr;
        return expr;
      }
      if (sym->kind == Symbol::Kind::kGlobalArray) {
        error(token.loc,
              "array '" + std::string(token.text) + "' needs an index");
        return nullptr;
      }
      expr->kind = Expr::Kind::kVar;
      return expr;
    }
    error(token.loc, std::string("expected an expression, got ") +
                         std::string(tok_name(token.kind)));
    return nullptr;
  }

  ExprPtr parse_call(const Token& name) {
    if (++nesting_ > kMaxNesting) {
      error(name.loc, "expression nesting too deep");
      return nullptr;
    }
    take();  // '('
    auto expr = std::make_unique<Expr>();
    expr->kind = Expr::Kind::kCall;
    expr->loc = name.loc;
    expr->name = std::string(name.text);
    if (!at(Tok::kRParen)) {
      for (;;) {
        ExprPtr arg = parse_expr();
        if (arg == nullptr) return nullptr;
        expr->args.push_back(std::move(arg));
        if (!at(Tok::kComma)) break;
        take();
      }
    }
    --nesting_;
    if (!expect(Tok::kRParen, "to close the call")) return nullptr;
    return expr;
  }

  ExprPtr parse_unary() {
    const Token& token = peek();
    UnOp op;
    if (token.kind == Tok::kMinus) op = UnOp::kNeg;
    else if (token.kind == Tok::kTilde) op = UnOp::kBitNot;
    else if (token.kind == Tok::kBang) op = UnOp::kLogNot;
    else return parse_primary();
    if (++nesting_ > kMaxNesting) {
      error(token.loc, "expression nesting too deep");
      return nullptr;
    }
    take();
    ExprPtr operand = parse_unary();
    --nesting_;
    if (operand == nullptr) return nullptr;
    auto expr = std::make_unique<Expr>();
    expr->kind = Expr::Kind::kUnary;
    expr->loc = token.loc;
    expr->un_op = op;
    expr->lhs = std::move(operand);
    return expr;
  }

  /// Binary precedence, C-like (tightest last).
  static int precedence(Tok kind) {
    switch (kind) {
      case Tok::kOrOr: return 1;
      case Tok::kAndAnd: return 2;
      case Tok::kPipe: return 3;
      case Tok::kCaret: return 4;
      case Tok::kAmp: return 5;
      case Tok::kEq: case Tok::kNe: return 6;
      case Tok::kLt: case Tok::kLe: case Tok::kGt: case Tok::kGe: return 7;
      case Tok::kShl: case Tok::kShr: return 8;
      case Tok::kPlus: case Tok::kMinus: return 9;
      case Tok::kStar: case Tok::kSlash: case Tok::kPercent: return 10;
      default: return 0;
    }
  }

  static BinOp bin_op_for(Tok kind) {
    switch (kind) {
      case Tok::kOrOr: return BinOp::kLOr;
      case Tok::kAndAnd: return BinOp::kLAnd;
      case Tok::kPipe: return BinOp::kOr;
      case Tok::kCaret: return BinOp::kXor;
      case Tok::kAmp: return BinOp::kAnd;
      case Tok::kEq: return BinOp::kEq;
      case Tok::kNe: return BinOp::kNe;
      case Tok::kLt: return BinOp::kLt;
      case Tok::kLe: return BinOp::kLe;
      case Tok::kGt: return BinOp::kGt;
      case Tok::kGe: return BinOp::kGe;
      case Tok::kShl: return BinOp::kShl;
      case Tok::kShr: return BinOp::kShr;
      case Tok::kPlus: return BinOp::kAdd;
      case Tok::kMinus: return BinOp::kSub;
      case Tok::kStar: return BinOp::kMul;
      case Tok::kSlash: return BinOp::kDiv;
      default: return BinOp::kRem;
    }
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    if (lhs == nullptr) return nullptr;
    for (;;) {
      const Token& token = peek();
      const int prec = precedence(token.kind);
      if (prec == 0 || prec < min_prec) return lhs;
      take();
      ExprPtr rhs = parse_binary(prec + 1);  // left-associative
      if (rhs == nullptr) return nullptr;
      auto expr = std::make_unique<Expr>();
      expr->kind = Expr::Kind::kBinary;
      expr->loc = token.loc;
      expr->bin_op = bin_op_for(token.kind);
      expr->lhs = std::move(lhs);
      expr->rhs = std::move(rhs);
      lhs = std::move(expr);
    }
  }

  ExprPtr parse_expr() { return parse_binary(1); }

  // ---- statements ----------------------------------------------------
  /// Local declaration: `int name (= expr)? ;` (the ';' is consumed by
  /// the caller when `consume_semi` is false, for `for` headers).
  StmtPtr parse_decl(bool consume_semi) {
    const Token& kw = take();  // 'int'
    if (!at(Tok::kIdent)) {
      error(peek().loc, "expected a name after 'int'");
      return nullptr;
    }
    const Token& name = take();
    if (at(Tok::kLBracket)) {
      error(name.loc, "arrays must be global (locals are scalars)");
      return nullptr;
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kDecl;
    stmt->loc = kw.loc;
    stmt->name = std::string(name.text);
    if (at(Tok::kAssign)) {
      take();
      stmt->value = parse_expr();
      if (stmt->value == nullptr) return nullptr;
    }
    // The name enters scope only after its initialiser parses, so
    // `int x = x;` is an undefined-name error, as in C.
    Symbol sym;
    sym.kind = Symbol::Kind::kLocal;
    sym.name = std::string(name.text);
    sym.loc = name.loc;
    sym.slot = static_cast<u32>(current_fn_->locals.size());
    u32 index = 0;
    if (!declare(std::move(sym), &index)) return nullptr;
    current_fn_->locals.push_back(index);
    stmt->sym = index;
    if (consume_semi && !expect(Tok::kSemi, "after declaration")) {
      return nullptr;
    }
    return stmt;
  }

  /// Assignment or call statement (the only expression statements TLC
  /// has — a computed-and-discarded value cannot affect state).
  StmtPtr parse_simple() {
    if (!at(Tok::kIdent)) {
      error(peek().loc, std::string("expected a statement, got ") +
                            std::string(tok_name(peek().kind)));
      return nullptr;
    }
    const Token& name = take();
    auto stmt = std::make_unique<Stmt>();
    stmt->loc = name.loc;
    stmt->name = std::string(name.text);

    if (at(Tok::kLParen)) {
      stmt->kind = Stmt::Kind::kCallStmt;
      stmt->value = parse_call(name);
      return stmt->value == nullptr ? nullptr : std::move(stmt);
    }

    u32 index = 0;
    const Symbol* sym = lookup(name.text, &index);
    if (sym == nullptr) {
      error(name.loc, "undefined name '" + std::string(name.text) + "'");
      return nullptr;
    }
    if (sym->kind == Symbol::Kind::kConst) {
      error(name.loc, "cannot assign to builtin constant '" +
                          std::string(name.text) + "'");
      return nullptr;
    }
    stmt->sym = index;
    if (at(Tok::kLBracket)) {
      if (sym->kind != Symbol::Kind::kGlobalArray) {
        error(name.loc,
              "cannot index scalar '" + std::string(name.text) + "'");
        return nullptr;
      }
      take();
      stmt->index = parse_expr();
      if (stmt->index == nullptr) return nullptr;
      if (!expect(Tok::kRBracket, "to close '['")) return nullptr;
    } else if (sym->kind == Symbol::Kind::kGlobalArray) {
      error(name.loc,
            "array '" + std::string(name.text) + "' needs an index");
      return nullptr;
    }
    stmt->kind = Stmt::Kind::kAssign;
    if (!expect(Tok::kAssign, "in assignment")) return nullptr;
    stmt->value = parse_expr();
    return stmt->value == nullptr ? nullptr : std::move(stmt);
  }

  bool parse_block_into(std::vector<StmtPtr>* body) {
    if (!expect(Tok::kLBrace, "to open a block")) return false;
    scopes_.emplace_back();
    while (!at(Tok::kRBrace)) {
      if (at(Tok::kEof)) {
        scopes_.pop_back();
        return error(peek().loc, "unexpected end of input inside a block");
      }
      StmtPtr stmt = parse_stmt();
      if (stmt == nullptr) {
        scopes_.pop_back();
        return false;
      }
      body->push_back(std::move(stmt));
    }
    take();  // '}'
    scopes_.pop_back();
    return true;
  }

  StmtPtr parse_stmt() {
    const Token& token = peek();
    switch (token.kind) {
      case Tok::kLBrace: {
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = Stmt::Kind::kBlock;
        stmt->loc = token.loc;
        if (!parse_block_into(&stmt->body)) return nullptr;
        return stmt;
      }
      case Tok::kIf: {
        take();
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = Stmt::Kind::kIf;
        stmt->loc = token.loc;
        if (!expect(Tok::kLParen, "after 'if'")) return nullptr;
        stmt->cond = parse_expr();
        if (stmt->cond == nullptr) return nullptr;
        if (!expect(Tok::kRParen, "to close the condition")) return nullptr;
        if (!parse_block_into(&stmt->body)) return nullptr;
        if (at(Tok::kElse)) {
          take();
          if (at(Tok::kIf)) {  // else-if chains nest as a one-stmt body
            StmtPtr nested = parse_stmt();
            if (nested == nullptr) return nullptr;
            stmt->else_body.push_back(std::move(nested));
          } else if (!parse_block_into(&stmt->else_body)) {
            return nullptr;
          }
        }
        return stmt;
      }
      case Tok::kWhile: {
        take();
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = Stmt::Kind::kWhile;
        stmt->loc = token.loc;
        if (!expect(Tok::kLParen, "after 'while'")) return nullptr;
        stmt->cond = parse_expr();
        if (stmt->cond == nullptr) return nullptr;
        if (!expect(Tok::kRParen, "to close the condition")) return nullptr;
        if (!parse_block_into(&stmt->body)) return nullptr;
        return stmt;
      }
      case Tok::kFor: {
        take();
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = Stmt::Kind::kFor;
        stmt->loc = token.loc;
        if (!expect(Tok::kLParen, "after 'for'")) return nullptr;
        scopes_.emplace_back();  // `for (int i = ...)` scopes to the loop
        const auto fail = [&]() -> StmtPtr {
          scopes_.pop_back();
          return nullptr;
        };
        stmt->init = at(Tok::kInt) ? parse_decl(/*consume_semi=*/false)
                                   : parse_simple();
        if (stmt->init == nullptr) return fail();
        if (!expect(Tok::kSemi, "after the 'for' initialiser")) return fail();
        stmt->cond = parse_expr();
        if (stmt->cond == nullptr) return fail();
        if (!expect(Tok::kSemi, "after the 'for' condition")) return fail();
        stmt->step = parse_simple();
        if (stmt->step == nullptr) return fail();
        if (!expect(Tok::kRParen, "to close the 'for' header")) return fail();
        if (!parse_block_into(&stmt->body)) return fail();
        scopes_.pop_back();
        return stmt;
      }
      case Tok::kReturn: {
        take();
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = Stmt::Kind::kReturn;
        stmt->loc = token.loc;
        stmt->value = parse_expr();
        if (stmt->value == nullptr) return nullptr;
        if (!expect(Tok::kSemi, "after 'return'")) return nullptr;
        return stmt;
      }
      case Tok::kInt:
        return parse_decl(/*consume_semi=*/true);
      default: {
        StmtPtr stmt = parse_simple();
        if (stmt == nullptr) return nullptr;
        if (!expect(Tok::kSemi, "after the statement")) return nullptr;
        return stmt;
      }
    }
  }

  // ---- top level -----------------------------------------------------
  bool parse_top_level() {
    if (!at(Tok::kInt)) {
      return error(peek().loc,
                   std::string("expected 'int' at top level, got ") +
                       std::string(tok_name(peek().kind)));
    }
    take();
    if (!at(Tok::kIdent)) {
      return error(peek().loc, "expected a name after 'int'");
    }
    const Token& name = take();
    if (at(Tok::kLParen)) return parse_function(name);
    return parse_global(name);
  }

  bool parse_global(const Token& name) {
    Symbol sym;
    sym.name = std::string(name.text);
    sym.loc = name.loc;
    if (at(Tok::kLBracket)) {
      take();
      ExprPtr size = parse_expr();
      if (size == nullptr) return false;
      if (!expect(Tok::kRBracket, "to close the array size")) return false;
      i64 len = 0;
      if (!fold_const(*size, &len)) return false;
      if (len < 1 || len > static_cast<i64>(kMaxArrayLen) ||
          (len & (len - 1)) != 0) {
        return error(size->loc,
                     "array length must be a power of two in [1, " +
                         std::to_string(kMaxArrayLen) + "], got " +
                         std::to_string(len));
      }
      sym.kind = Symbol::Kind::kGlobalArray;
      sym.array_len = static_cast<u32>(len);
    } else {
      sym.kind = Symbol::Kind::kGlobalScalar;
      if (at(Tok::kAssign)) {
        take();
        ExprPtr init = parse_expr();
        if (init == nullptr) return false;
        if (!fold_const(*init, &sym.init)) return false;
      }
    }
    u32 index = 0;
    if (!declare(std::move(sym), &index)) return false;
    return expect(Tok::kSemi, "after the global declaration");
  }

  bool parse_function(const Token& name) {
    if (functions_by_name_.count(std::string(name.text)) != 0) {
      return error(name.loc,
                   "redefinition of '" + std::string(name.text) + "'");
    }
    u32 shadow = 0;
    if (lookup(name.text, &shadow) != nullptr) {
      return error(name.loc, "redefinition of '" + std::string(name.text) +
                                 "' (already a variable)");
    }
    Function fn;
    fn.name = std::string(name.text);
    fn.loc = name.loc;
    unit_.functions.push_back(std::move(fn));
    current_fn_ = &unit_.functions.back();
    functions_by_name_[current_fn_->name] =
        static_cast<u32>(unit_.functions.size() - 1);

    take();  // '('
    scopes_.emplace_back();  // parameter + body scope
    if (!at(Tok::kRParen)) {
      for (;;) {
        if (!at(Tok::kInt)) {
          return error(peek().loc, "expected 'int' parameter");
        }
        take();
        if (!at(Tok::kIdent)) {
          return error(peek().loc, "expected a parameter name");
        }
        const Token& param = take();
        Symbol sym;
        sym.kind = Symbol::Kind::kLocal;
        sym.name = std::string(param.text);
        sym.loc = param.loc;
        sym.slot = static_cast<u32>(current_fn_->locals.size());
        u32 index = 0;
        if (!declare(std::move(sym), &index)) return false;
        current_fn_->locals.push_back(index);
        ++current_fn_->num_params;
        if (current_fn_->num_params > kMaxParams) {
          return error(param.loc,
                       "too many parameters (max " +
                           std::to_string(kMaxParams) + ")");
        }
        if (!at(Tok::kComma)) break;
        take();
      }
    }
    if (!expect(Tok::kRParen, "to close the parameter list")) return false;
    const bool ok = parse_block_into(&current_fn_->body);
    scopes_.pop_back();
    current_fn_ = nullptr;
    return ok;
  }

  // ---- finalize: call resolution + register-need bounds ---------------
  bool resolve_calls_expr(Expr& expr) {
    if (expr.kind == Expr::Kind::kCall) {
      const auto it = functions_by_name_.find(expr.name);
      if (it == functions_by_name_.end()) {
        u32 index = 0;
        if (lookup(expr.name, &index) != nullptr) {
          return error(expr.loc, "'" + expr.name + "' is not a function");
        }
        return error(expr.loc,
                     "call to undefined function '" + expr.name + "'");
      }
      expr.sym = it->second;
      const Function& fn = unit_.functions[it->second];
      if (fn.num_params != expr.args.size()) {
        return error(expr.loc, "function '" + expr.name + "' takes " +
                                   std::to_string(fn.num_params) +
                                   " argument(s), got " +
                                   std::to_string(expr.args.size()));
      }
    }
    if (expr.lhs != nullptr && !resolve_calls_expr(*expr.lhs)) return false;
    if (expr.rhs != nullptr && !resolve_calls_expr(*expr.rhs)) return false;
    for (const ExprPtr& arg : expr.args) {
      if (!resolve_calls_expr(*arg)) return false;
    }
    return true;
  }

  bool resolve_calls_stmt(Stmt& stmt) {
    for (const ExprPtr* expr : {&stmt.index, &stmt.cond, &stmt.value}) {
      if (*expr != nullptr && !resolve_calls_expr(**expr)) return false;
    }
    for (const StmtPtr* sub : {&stmt.init, &stmt.step}) {
      if (*sub != nullptr && !resolve_calls_stmt(**sub)) return false;
    }
    for (const StmtPtr& sub : stmt.body) {
      if (!resolve_calls_stmt(*sub)) return false;
    }
    for (const StmtPtr& sub : stmt.else_body) {
      if (!resolve_calls_stmt(*sub)) return false;
    }
    return true;
  }

  /// Registers the code generator needs to evaluate `expr` (its
  /// operand plus everything held live beneath it). Mirrors
  /// compile.cpp's evaluation scheme exactly.
  u32 need_regs(const Expr& expr) const {
    switch (expr.kind) {
      case Expr::Kind::kNum:
      case Expr::Kind::kVar:
        return 1;
      case Expr::Kind::kIndex:
      case Expr::Kind::kUnary:
        return need_regs(*expr.lhs);
      case Expr::Kind::kBinary:
        return std::max(need_regs(*expr.lhs), need_regs(*expr.rhs) + 1);
      case Expr::Kind::kCall: {
        u32 need = 1;  // the result slot
        for (usize i = 0; i < expr.args.size(); ++i) {
          need = std::max(need,
                          need_regs(*expr.args[i]) + static_cast<u32>(i));
        }
        return need;
      }
    }
    return 1;
  }

  bool check_depth_expr(const Expr& expr, u32 base) {
    if (base + need_regs(expr) > kMaxExprRegs) {
      return error(expr.loc, "expression too deep (needs more than " +
                                 std::to_string(kMaxExprRegs) +
                                 " evaluation registers)");
    }
    return true;
  }

  bool check_depth_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kAssign:
        if (stmt.index != nullptr) {
          // Array store: index at depth 0, value at depth 1.
          if (!check_depth_expr(*stmt.index, 0)) return false;
          if (!check_depth_expr(*stmt.value, 1)) return false;
          return true;
        }
        return check_depth_expr(*stmt.value, 0);
      case Stmt::Kind::kDecl:
        return stmt.value == nullptr || check_depth_expr(*stmt.value, 0);
      case Stmt::Kind::kReturn:
      case Stmt::Kind::kCallStmt:
        return check_depth_expr(*stmt.value, 0);
      default:
        break;
    }
    if (stmt.cond != nullptr && !check_depth_expr(*stmt.cond, 0)) {
      return false;
    }
    for (const StmtPtr* sub : {&stmt.init, &stmt.step}) {
      if (*sub != nullptr && !check_depth_stmt(**sub)) return false;
    }
    for (const StmtPtr& sub : stmt.body) {
      if (!check_depth_stmt(*sub)) return false;
    }
    for (const StmtPtr& sub : stmt.else_body) {
      if (!check_depth_stmt(*sub)) return false;
    }
    return true;
  }

  bool finalize() {
    for (Function& fn : unit_.functions) {
      for (const StmtPtr& stmt : fn.body) {
        if (!resolve_calls_stmt(*stmt)) return false;
        if (!check_depth_stmt(*stmt)) return false;
      }
    }
    const auto main_it = functions_by_name_.find("main");
    if (main_it == functions_by_name_.end()) {
      return error({1, 1}, "program has no 'main' function");
    }
    unit_.main_index = main_it->second;
    const Function& main_fn = unit_.functions[unit_.main_index];
    if (main_fn.num_params != 0) {
      return error(main_fn.loc, "'main' must take no parameters");
    }
    return true;
  }

  std::vector<Token> tokens_;
  usize pos_ = 0;
  Diag* diag_;
  Unit unit_;
  std::vector<std::vector<u32>> scopes_;
  std::map<std::string, u32> functions_by_name_;
  Function* current_fn_ = nullptr;
  u32 nesting_ = 0;
};

}  // namespace

std::optional<Unit> parse(std::string_view source, const ParseParams& params,
                          Diag* diag) {
  if (diag != nullptr) *diag = {};
  auto tokens = lex(source, diag);
  if (!tokens.has_value()) return std::nullopt;
  Parser parser(std::move(*tokens), params, diag);
  return parser.run();
}

}  // namespace tlr::lang
