// TLC recursive-descent parser and checker.
//
// One pass builds the AST with names resolved against lexical scopes;
// a finalize pass resolves forward function calls, checks arities, and
// bounds every expression's register need against the code generator's
// evaluation stack (kMaxExprRegs). All failures are Diags with
// line:col — the parser never asserts on malformed source.
//
// Language restrictions enforced here (docs/tlc.md):
//  * values are 64-bit ints; arrays are global-only,
//  * array lengths are power-of-two constants (indices are masked),
//  * functions take at most kMaxParams int parameters,
//  * array sizes and global initialisers are constant expressions over
//    literals and the SCALE/SEED builtins.
#pragma once

#include <optional>
#include <string_view>

#include "lang/ast.hpp"
#include "lang/diag.hpp"

namespace tlr::lang {

/// Values bound to the builtin constants: SEED is the workload data
/// seed, SCALE the working-set multiplier (WorkloadParams).
struct ParseParams {
  u64 seed = 0xC0FFEE;
  u32 scale = 1;
};

/// The code generator evaluates expressions on a register stack of
/// this many registers; the parser rejects programs that would need
/// more ("expression too deep").
inline constexpr u32 kMaxExprRegs = 16;
/// Arguments are passed in registers r20..r25.
inline constexpr u32 kMaxParams = 6;
/// Array length ceiling (words); keeps data segments sane.
inline constexpr u32 kMaxArrayLen = 1u << 20;

/// Parses and checks `source`. On failure returns nullopt and fills
/// `*diag` with a one-line message plus the offending line:col.
std::optional<Unit> parse(std::string_view source, const ParseParams& params,
                          Diag* diag);

}  // namespace tlr::lang
