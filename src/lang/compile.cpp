#include "lang/compile.hpp"

#include <utility>

#include "isa/reg.hpp"
#include "util/assert.hpp"
#include "vm/builder.hpp"
#include "workloads/common.hpp"

namespace tlr::lang {

namespace {

using isa::Reg;
using isa::r;

/// Expression register stack base: values live in r1..r16.
constexpr unsigned kExprBase = 1;
/// First argument register (r20..r25).
constexpr unsigned kArgBase = 20;
constexpr Reg kRetReg = r(19);
constexpr Reg kCounterReg = r(27);  // outer-loop pass counter
/// Stack region size in words (512 KiB): kMaxParams-wide frames at the
/// evaluator's call-depth ceiling fit with two orders of margin.
constexpr usize kStackWords = usize{1} << 16;

class CodeGen {
 public:
  CodeGen(const Unit& unit, const CompileOptions& options)
      : unit_(unit), options_(options), builder_(options.name) {}

  CompiledProgram finish() {
    CompiledProgram out;

    // Data layout: result word, then globals in declaration order,
    // then the stack region. Symbol order makes it reproducible.
    out.result_addr = builder_.alloc(1);
    global_addr_.assign(unit_.symbols.size(), 0);
    for (usize i = 0; i < unit_.symbols.size(); ++i) {
      const Symbol& sym = unit_.symbols[i];
      if (sym.kind == Symbol::Kind::kGlobalScalar) {
        const Addr addr = builder_.alloc(1);
        global_addr_[i] = addr;
        if (sym.init != 0) {
          builder_.init_word(addr, static_cast<u64>(sym.init));
        }
        out.globals.push_back({sym.name, addr, 0});
      } else if (sym.kind == Symbol::Kind::kGlobalArray) {
        const Addr addr = builder_.alloc(sym.array_len);
        global_addr_[i] = addr;
        out.globals.push_back({sym.name, addr, sym.array_len});
      }
    }
    const Addr stack_base = builder_.alloc(kStackWords);
    const Addr stack_top = stack_base + kStackWords * 8;

    fn_labels_.reserve(unit_.functions.size());
    for (usize i = 0; i < unit_.functions.size(); ++i) {
      fn_labels_.push_back(builder_.label());
    }

    // Entry stub first, so the program's entry point is pc 0.
    builder_.ldi(isa::kStackReg, static_cast<i64>(stack_top));
    if (options_.stream) {
      workloads::detail::OuterLoop outer(builder_, kCounterReg);
      builder_.call(fn_labels_[unit_.main_index]);
      builder_.stq(kRetReg, isa::kIntZero, static_cast<i64>(out.result_addr));
      outer.close();
    } else {
      builder_.call(fn_labels_[unit_.main_index]);
      builder_.stq(kRetReg, isa::kIntZero, static_cast<i64>(out.result_addr));
      builder_.halt();
    }

    for (usize i = 0; i < unit_.functions.size(); ++i) {
      emit_function(static_cast<u32>(i));
    }

    out.program = builder_.build();
    return out;
  }

 private:
  static Reg expr_reg(u32 depth) { return r(kExprBase + depth); }
  static i64 local_disp(u32 slot) { return 8 + 8 * static_cast<i64>(slot); }

  void emit_function(u32 fn_index) {
    const Function& fn = unit_.functions[fn_index];
    builder_.bind(fn_labels_[fn_index]);
    epilogue_ = builder_.label();

    const i64 frame_bytes = 8 * (1 + static_cast<i64>(fn.locals.size()));
    builder_.subi(isa::kStackReg, isa::kStackReg, frame_bytes);
    builder_.stq(isa::kLinkReg, isa::kStackReg, 0);
    for (u32 slot = 0; slot < fn.num_params; ++slot) {
      builder_.stq(r(kArgBase + slot), isa::kStackReg, local_disp(slot));
    }
    // Stack memory is recycled across calls; zero the remaining locals
    // to match the evaluator's zero-initialisation.
    for (u32 slot = fn.num_params; slot < fn.locals.size(); ++slot) {
      builder_.stq(isa::kIntZero, isa::kStackReg, local_disp(slot));
    }

    for (const StmtPtr& stmt : fn.body) emit_stmt(*stmt);

    // Implicit `return 0` on fallthrough.
    builder_.mov(kRetReg, isa::kIntZero);
    builder_.bind(epilogue_);
    builder_.ldq(isa::kLinkReg, isa::kStackReg, 0);
    builder_.addi(isa::kStackReg, isa::kStackReg, frame_bytes);
    builder_.ret();
  }

  void emit_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kBlock:
        for (const StmtPtr& sub : stmt.body) emit_stmt(*sub);
        return;
      case Stmt::Kind::kIf: {
        emit_expr(*stmt.cond, 0);
        if (stmt.else_body.empty()) {
          vm::Label end = builder_.label();
          builder_.beqz(expr_reg(0), end);
          for (const StmtPtr& sub : stmt.body) emit_stmt(*sub);
          builder_.bind(end);
        } else {
          vm::Label other = builder_.label();
          vm::Label end = builder_.label();
          builder_.beqz(expr_reg(0), other);
          for (const StmtPtr& sub : stmt.body) emit_stmt(*sub);
          builder_.br(end);
          builder_.bind(other);
          for (const StmtPtr& sub : stmt.else_body) emit_stmt(*sub);
          builder_.bind(end);
        }
        return;
      }
      case Stmt::Kind::kWhile: {
        vm::Label top = builder_.here();
        vm::Label end = builder_.label();
        emit_expr(*stmt.cond, 0);
        builder_.beqz(expr_reg(0), end);
        for (const StmtPtr& sub : stmt.body) emit_stmt(*sub);
        builder_.br(top);
        builder_.bind(end);
        return;
      }
      case Stmt::Kind::kFor: {
        emit_stmt(*stmt.init);
        vm::Label top = builder_.here();
        vm::Label end = builder_.label();
        emit_expr(*stmt.cond, 0);
        builder_.beqz(expr_reg(0), end);
        for (const StmtPtr& sub : stmt.body) emit_stmt(*sub);
        emit_stmt(*stmt.step);
        builder_.br(top);
        builder_.bind(end);
        return;
      }
      case Stmt::Kind::kReturn:
        emit_expr(*stmt.value, 0);
        builder_.mov(kRetReg, expr_reg(0));
        builder_.br(epilogue_);
        return;
      case Stmt::Kind::kDecl: {
        const Symbol& sym = unit_.symbols[stmt.sym];
        if (stmt.value != nullptr) {
          emit_expr(*stmt.value, 0);
          builder_.stq(expr_reg(0), isa::kStackReg, local_disp(sym.slot));
        } else {
          builder_.stq(isa::kIntZero, isa::kStackReg, local_disp(sym.slot));
        }
        return;
      }
      case Stmt::Kind::kAssign: {
        const Symbol& sym = unit_.symbols[stmt.sym];
        if (stmt.index != nullptr) {
          // Index at depth 0, value at depth 1 (the evaluator matches).
          emit_expr(*stmt.index, 0);
          emit_expr(*stmt.value, 1);
          const Reg idx = expr_reg(0);
          builder_.andi(idx, idx, static_cast<i64>(sym.array_len) - 1);
          builder_.slli(idx, idx, 3);
          builder_.stq(expr_reg(1), idx,
                       static_cast<i64>(global_addr_[stmt.sym]));
          return;
        }
        emit_expr(*stmt.value, 0);
        if (sym.kind == Symbol::Kind::kLocal) {
          builder_.stq(expr_reg(0), isa::kStackReg, local_disp(sym.slot));
        } else {
          builder_.stq(expr_reg(0), isa::kIntZero,
                       static_cast<i64>(global_addr_[stmt.sym]));
        }
        return;
      }
      case Stmt::Kind::kCallStmt:
        emit_expr(*stmt.value, 0);  // result discarded
        return;
    }
  }

  /// Tries the immediate form for `dst <- dst OP literal`; returns
  /// false when the operator has no immediate encoding.
  bool emit_bin_imm(BinOp op, Reg dst, i64 imm) {
    switch (op) {
      case BinOp::kAdd: builder_.addi(dst, dst, imm); return true;
      case BinOp::kSub: builder_.subi(dst, dst, imm); return true;
      case BinOp::kMul: builder_.muli(dst, dst, imm); return true;
      case BinOp::kRem: builder_.remi(dst, dst, imm); return true;
      case BinOp::kAnd: builder_.andi(dst, dst, imm); return true;
      case BinOp::kOr: builder_.ori(dst, dst, imm); return true;
      case BinOp::kXor: builder_.xori(dst, dst, imm); return true;
      case BinOp::kShl: builder_.slli(dst, dst, imm); return true;
      case BinOp::kShr: builder_.srai(dst, dst, imm); return true;
      case BinOp::kEq: builder_.cmpeqi(dst, dst, imm); return true;
      case BinOp::kLt: builder_.cmplti(dst, dst, imm); return true;
      default: return false;
    }
  }

  void emit_bin_reg(BinOp op, Reg dst, Reg rhs) {
    switch (op) {
      case BinOp::kAdd: builder_.add(dst, dst, rhs); return;
      case BinOp::kSub: builder_.sub(dst, dst, rhs); return;
      case BinOp::kMul: builder_.mul(dst, dst, rhs); return;
      case BinOp::kDiv: builder_.div(dst, dst, rhs); return;
      case BinOp::kRem: builder_.rem(dst, dst, rhs); return;
      case BinOp::kAnd: builder_.and_(dst, dst, rhs); return;
      case BinOp::kOr: builder_.or_(dst, dst, rhs); return;
      case BinOp::kXor: builder_.xor_(dst, dst, rhs); return;
      case BinOp::kShl: builder_.sll(dst, dst, rhs); return;
      case BinOp::kShr: builder_.sra(dst, dst, rhs); return;
      case BinOp::kEq: builder_.cmpeq(dst, dst, rhs); return;
      case BinOp::kNe:
        builder_.cmpeq(dst, dst, rhs);
        builder_.cmpeqi(dst, dst, 0);
        return;
      case BinOp::kLt: builder_.cmplt(dst, dst, rhs); return;
      case BinOp::kLe: builder_.cmple(dst, dst, rhs); return;
      case BinOp::kGt: builder_.cmplt(dst, rhs, dst); return;
      case BinOp::kGe: builder_.cmple(dst, rhs, dst); return;
      case BinOp::kLAnd:
        // both nonzero == !(a==0 | b==0); no short circuit by design.
        builder_.cmpeqi(dst, dst, 0);
        builder_.cmpeqi(rhs, rhs, 0);
        builder_.or_(dst, dst, rhs);
        builder_.cmpeqi(dst, dst, 0);
        return;
      case BinOp::kLOr:
        // (a|b) != 0
        builder_.or_(dst, dst, rhs);
        builder_.cmpeqi(dst, dst, 0);
        builder_.cmpeqi(dst, dst, 0);
        return;
    }
  }

  /// Evaluates `expr` into expr_reg(depth); regs below `depth` are live.
  void emit_expr(const Expr& expr, u32 depth) {
    TLR_ASSERT_MSG(kExprBase + depth <= kMaxExprRegs, "parser bounds depth");
    const Reg dst = expr_reg(depth);
    switch (expr.kind) {
      case Expr::Kind::kNum:
        builder_.ldi(dst, expr.number);
        return;
      case Expr::Kind::kVar: {
        const Symbol& sym = unit_.symbols[expr.sym];
        switch (sym.kind) {
          case Symbol::Kind::kLocal:
            builder_.ldq(dst, isa::kStackReg, local_disp(sym.slot));
            return;
          case Symbol::Kind::kGlobalScalar:
            builder_.ldq(dst, isa::kIntZero,
                         static_cast<i64>(global_addr_[expr.sym]));
            return;
          case Symbol::Kind::kConst:
            builder_.ldi(dst, sym.init);
            return;
          case Symbol::Kind::kGlobalArray:
            TLR_ASSERT_MSG(false, "parser rejects unindexed arrays");
            return;
        }
        return;
      }
      case Expr::Kind::kIndex: {
        const Symbol& sym = unit_.symbols[expr.sym];
        emit_expr(*expr.lhs, depth);
        builder_.andi(dst, dst, static_cast<i64>(sym.array_len) - 1);
        builder_.slli(dst, dst, 3);
        builder_.ldq(dst, dst, static_cast<i64>(global_addr_[expr.sym]));
        return;
      }
      case Expr::Kind::kUnary:
        emit_expr(*expr.lhs, depth);
        switch (expr.un_op) {
          case UnOp::kNeg: builder_.sub(dst, isa::kIntZero, dst); return;
          case UnOp::kBitNot: builder_.xori(dst, dst, -1); return;
          case UnOp::kLogNot: builder_.cmpeqi(dst, dst, 0); return;
        }
        return;
      case Expr::Kind::kBinary:
        emit_expr(*expr.lhs, depth);
        if (expr.rhs->kind == Expr::Kind::kNum &&
            emit_bin_imm_probe(expr.bin_op)) {
          emit_bin_imm(expr.bin_op, dst, expr.rhs->number);
          return;
        }
        emit_expr(*expr.rhs, depth + 1);
        emit_bin_reg(expr.bin_op, dst, expr_reg(depth + 1));
        return;
      case Expr::Kind::kCall:
        emit_call(expr, depth);
        return;
    }
  }

  static bool emit_bin_imm_probe(BinOp op) {
    switch (op) {
      case BinOp::kAdd: case BinOp::kSub: case BinOp::kMul:
      case BinOp::kRem: case BinOp::kAnd: case BinOp::kOr:
      case BinOp::kXor: case BinOp::kShl: case BinOp::kShr:
      case BinOp::kEq: case BinOp::kLt:
        return true;
      default:
        return false;
    }
  }

  void emit_call(const Expr& expr, u32 depth) {
    // Arguments evaluate left to right onto the stack above `depth`.
    for (usize i = 0; i < expr.args.size(); ++i) {
      emit_expr(*expr.args[i], depth + static_cast<u32>(i));
    }
    // Spill the live registers below `depth`; the callee reuses the
    // whole expression stack.
    const i64 spill_bytes = 8 * static_cast<i64>(depth);
    if (depth > 0) {
      builder_.subi(isa::kStackReg, isa::kStackReg, spill_bytes);
      for (u32 j = 0; j < depth; ++j) {
        builder_.stq(expr_reg(j), isa::kStackReg, 8 * static_cast<i64>(j));
      }
    }
    for (usize i = 0; i < expr.args.size(); ++i) {
      builder_.mov(r(kArgBase + static_cast<unsigned>(i)),
                   expr_reg(depth + static_cast<u32>(i)));
    }
    builder_.call(fn_labels_[expr.sym]);
    builder_.mov(expr_reg(depth), kRetReg);
    if (depth > 0) {
      for (u32 j = 0; j < depth; ++j) {
        builder_.ldq(expr_reg(j), isa::kStackReg, 8 * static_cast<i64>(j));
      }
      builder_.addi(isa::kStackReg, isa::kStackReg, spill_bytes);
    }
  }

  const Unit& unit_;
  const CompileOptions& options_;
  vm::ProgramBuilder builder_;
  std::vector<Addr> global_addr_;    // symbol-indexed
  std::vector<vm::Label> fn_labels_;
  vm::Label epilogue_;               // current function's exit
};

}  // namespace

CompiledProgram compile(const Unit& unit, const CompileOptions& options) {
  CodeGen gen(unit, options);
  return gen.finish();
}

std::optional<CompiledProgram> compile_source(std::string_view source,
                                              const ParseParams& params,
                                              const CompileOptions& options,
                                              Diag* diag) {
  std::optional<Unit> unit = parse(source, params, diag);
  if (!unit.has_value()) return std::nullopt;
  return compile(*unit, options);
}

}  // namespace tlr::lang
