// TLC code generator: lowers a parsed Unit onto vm::ProgramBuilder.
//
// Calling convention (docs/tlc.md):
//  * expressions evaluate on a register stack r1..r16 (kMaxExprRegs;
//    the parser bounds every expression's need, so codegen never
//    spills mid-expression),
//  * arguments pass in r20..r25, the result returns in r19,
//  * r26 is the link register, r30 the stack pointer, and r27 is left
//    untouched for the streaming outer-loop counter,
//  * frames hold the saved link word plus one 8-byte slot per local
//    (parameters occupy the first slots); locals are zeroed on entry.
//
// In stream mode the program wraps `call main` in the same
// workloads::detail::OuterLoop the hand-written workloads use, so a
// TLC program streams through StudyEngine exactly like an analog.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lang/ast.hpp"
#include "lang/diag.hpp"
#include "lang/parser.hpp"
#include "vm/program.hpp"

namespace tlr::lang {

struct CompileOptions {
  std::string name = "tlc";
  /// true: wrap main in an unbounded outer loop (study streaming).
  /// false: run main once, store its result, halt (differential tests).
  bool stream = true;
};

/// Where a global landed in the data segment (for state comparison).
struct GlobalSlot {
  std::string name;
  Addr addr = 0;
  u32 array_len = 0;  // 0 for scalars
};

struct CompiledProgram {
  vm::Program program;
  /// Word receiving main's return value after each pass.
  Addr result_addr = 0;
  std::vector<GlobalSlot> globals;
};

/// Lowers a checked Unit. Cannot fail: the parser's finalize pass
/// already enforced every bound the generator relies on.
CompiledProgram compile(const Unit& unit, const CompileOptions& options = {});

/// parse + compile in one step. On failure returns nullopt with `*diag`
/// holding the one-line message and location.
std::optional<CompiledProgram> compile_source(std::string_view source,
                                              const ParseParams& params,
                                              const CompileOptions& options,
                                              Diag* diag);

}  // namespace tlr::lang
