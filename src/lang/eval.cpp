#include "lang/eval.hpp"

#include <utility>

#include "lang/arith.hpp"
#include "util/assert.hpp"

namespace tlr::lang {

namespace {

struct Frame {
  std::vector<i64> locals;  // slot-indexed, zero-initialised
};

class Evaluator {
 public:
  Evaluator(const Unit& unit, const EvalLimits& limits)
      : unit_(unit), limits_(limits) {
    scalars_.resize(unit.symbols.size(), 0);
    arrays_.resize(unit.symbols.size());
    for (usize i = 0; i < unit.symbols.size(); ++i) {
      const Symbol& sym = unit.symbols[i];
      if (sym.kind == Symbol::Kind::kGlobalScalar ||
          sym.kind == Symbol::Kind::kConst) {
        scalars_[i] = sym.init;
      } else if (sym.kind == Symbol::Kind::kGlobalArray) {
        arrays_[i].assign(sym.array_len, 0);
      }
    }
  }

  EvalResult run() {
    EvalResult result;
    i64 value = 0;
    if (!call(unit_.main_index, {}, &value)) {
      result.error = error_;
      result.steps = steps_;
      return result;
    }
    result.ok = true;
    result.return_value = value;
    result.steps = steps_;
    for (usize i = 0; i < unit_.symbols.size(); ++i) {
      const Symbol& sym = unit_.symbols[i];
      if (sym.kind == Symbol::Kind::kGlobalScalar) {
        result.globals[sym.name] = scalars_[i];
      } else if (sym.kind == Symbol::Kind::kGlobalArray) {
        result.arrays[sym.name] = arrays_[i];
      }
    }
    return result;
  }

 private:
  bool tick() {
    if (++steps_ > limits_.max_steps) {
      if (error_.empty()) error_ = "step limit exceeded";
      return false;
    }
    return true;
  }

  bool call(u32 fn_index, std::vector<i64> args, i64* out) {
    if (++depth_ > limits_.max_call_depth) {
      if (error_.empty()) error_ = "call depth exceeded";
      --depth_;
      return false;
    }
    const Function& fn = unit_.functions[fn_index];
    Frame frame;
    frame.locals.resize(fn.locals.size(), 0);
    TLR_ASSERT_MSG(args.size() == fn.num_params,
                   "arity checked by the parser");
    for (usize i = 0; i < args.size(); ++i) frame.locals[i] = args[i];
    frames_.push_back(std::move(frame));

    i64 ret = 0;  // implicit `return 0` when the body falls off the end
    bool ok = true;
    for (const StmtPtr& stmt : fn.body) {
      Flow flow = exec(*stmt, &ret);
      if (flow == Flow::kError) {
        ok = false;
        break;
      }
      if (flow == Flow::kReturn) break;
    }
    frames_.pop_back();
    --depth_;
    if (ok) *out = ret;
    return ok;
  }

  enum class Flow : u8 { kNext, kReturn, kError };

  Flow exec(const Stmt& stmt, i64* ret) {
    if (!tick()) return Flow::kError;
    switch (stmt.kind) {
      case Stmt::Kind::kBlock: {
        for (const StmtPtr& sub : stmt.body) {
          const Flow flow = exec(*sub, ret);
          if (flow != Flow::kNext) return flow;
        }
        return Flow::kNext;
      }
      case Stmt::Kind::kIf: {
        i64 cond = 0;
        if (!eval(*stmt.cond, &cond)) return Flow::kError;
        const auto& arm = cond != 0 ? stmt.body : stmt.else_body;
        for (const StmtPtr& sub : arm) {
          const Flow flow = exec(*sub, ret);
          if (flow != Flow::kNext) return flow;
        }
        return Flow::kNext;
      }
      case Stmt::Kind::kWhile: {
        for (;;) {
          if (!tick()) return Flow::kError;
          i64 cond = 0;
          if (!eval(*stmt.cond, &cond)) return Flow::kError;
          if (cond == 0) return Flow::kNext;
          for (const StmtPtr& sub : stmt.body) {
            const Flow flow = exec(*sub, ret);
            if (flow != Flow::kNext) return flow;
          }
        }
      }
      case Stmt::Kind::kFor: {
        const Flow init = exec(*stmt.init, ret);
        if (init != Flow::kNext) return init;
        for (;;) {
          if (!tick()) return Flow::kError;
          i64 cond = 0;
          if (!eval(*stmt.cond, &cond)) return Flow::kError;
          if (cond == 0) return Flow::kNext;
          for (const StmtPtr& sub : stmt.body) {
            const Flow flow = exec(*sub, ret);
            if (flow != Flow::kNext) return flow;
          }
          const Flow step = exec(*stmt.step, ret);
          if (step != Flow::kNext) return step;
        }
      }
      case Stmt::Kind::kReturn: {
        if (!eval(*stmt.value, ret)) return Flow::kError;
        return Flow::kReturn;
      }
      case Stmt::Kind::kDecl: {
        i64 value = 0;
        if (stmt.value != nullptr && !eval(*stmt.value, &value)) {
          return Flow::kError;
        }
        frames_.back().locals[unit_.symbols[stmt.sym].slot] = value;
        return Flow::kNext;
      }
      case Stmt::Kind::kAssign: {
        // Index evaluates before the value (matches the compiler).
        if (stmt.index != nullptr) {
          i64 index = 0, value = 0;
          if (!eval(*stmt.index, &index)) return Flow::kError;
          if (!eval(*stmt.value, &value)) return Flow::kError;
          std::vector<i64>& arr = arrays_[stmt.sym];
          arr[static_cast<u64>(index) & (arr.size() - 1)] = value;
          return Flow::kNext;
        }
        i64 value = 0;
        if (!eval(*stmt.value, &value)) return Flow::kError;
        const Symbol& sym = unit_.symbols[stmt.sym];
        if (sym.kind == Symbol::Kind::kLocal) {
          frames_.back().locals[sym.slot] = value;
        } else {
          scalars_[stmt.sym] = value;
        }
        return Flow::kNext;
      }
      case Stmt::Kind::kCallStmt: {
        i64 discard = 0;
        return eval(*stmt.value, &discard) ? Flow::kNext : Flow::kError;
      }
    }
    return Flow::kError;
  }

  bool eval(const Expr& expr, i64* out) {
    if (!tick()) return false;
    switch (expr.kind) {
      case Expr::Kind::kNum:
        *out = expr.number;
        return true;
      case Expr::Kind::kVar: {
        const Symbol& sym = unit_.symbols[expr.sym];
        *out = sym.kind == Symbol::Kind::kLocal
                   ? frames_.back().locals[sym.slot]
                   : scalars_[expr.sym];
        return true;
      }
      case Expr::Kind::kIndex: {
        i64 index = 0;
        if (!eval(*expr.lhs, &index)) return false;
        const std::vector<i64>& arr = arrays_[expr.sym];
        *out = arr[static_cast<u64>(index) & (arr.size() - 1)];
        return true;
      }
      case Expr::Kind::kUnary: {
        i64 a = 0;
        if (!eval(*expr.lhs, &a)) return false;
        *out = apply_un(expr.un_op, a);
        return true;
      }
      case Expr::Kind::kBinary: {
        // Left to right; && and || still evaluate both sides.
        i64 a = 0, b = 0;
        if (!eval(*expr.lhs, &a)) return false;
        if (!eval(*expr.rhs, &b)) return false;
        *out = apply_bin(expr.bin_op, a, b);
        return true;
      }
      case Expr::Kind::kCall: {
        std::vector<i64> args(expr.args.size(), 0);
        for (usize i = 0; i < expr.args.size(); ++i) {
          if (!eval(*expr.args[i], &args[i])) return false;
        }
        return call(expr.sym, std::move(args), out);
      }
    }
    return false;
  }

  const Unit& unit_;
  const EvalLimits& limits_;
  std::vector<i64> scalars_;               // symbol-indexed
  std::vector<std::vector<i64>> arrays_;   // symbol-indexed
  std::vector<Frame> frames_;
  u64 steps_ = 0;
  u32 depth_ = 0;
  std::string error_;
};

}  // namespace

EvalResult evaluate(const Unit& unit, const EvalLimits& limits) {
  Evaluator evaluator(unit, limits);
  return evaluator.run();
}

}  // namespace tlr::lang
