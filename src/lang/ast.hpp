// TLC typed AST (docs/tlc.md).
//
// The parser produces a fully resolved Unit: every name reference
// carries the index of its Symbol, every call the index of its
// Function, and every array length / global initialiser is already
// constant-folded. Both back ends — the ProgramBuilder code generator
// (compile.hpp) and the reference evaluator (eval.hpp) — consume this
// one representation, which is what makes the differential oracle
// meaningful: they share the front end and nothing else.
//
// TLC values are 64-bit signed integers with wrapping arithmetic (the
// mini-ISA's semantics). Arrays are global-only with power-of-two
// lengths; indices are masked by `len - 1`, which makes every access
// total and identical between the evaluator and the compiled `andi`.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lang/diag.hpp"
#include "util/types.hpp"

namespace tlr::lang {

enum class BinOp : u8 {
  kAdd, kSub, kMul, kDiv, kRem,
  kAnd, kOr, kXor, kShl, kShr,   // kShr is arithmetic (values are signed)
  kEq, kNe, kLt, kLe, kGt, kGe,
  kLAnd, kLOr,  // non-short-circuiting: both operands always evaluate
};

enum class UnOp : u8 { kNeg, kBitNot, kLogNot };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : u8 { kNum, kVar, kIndex, kUnary, kBinary, kCall };

  Kind kind = Kind::kNum;
  SourceLoc loc;
  i64 number = 0;        // kNum
  u32 sym = ~u32{0};     // kVar/kIndex: symbol index; kCall: function index
  std::string name;      // spelling, for diagnostics
  UnOp un_op = UnOp::kNeg;
  BinOp bin_op = BinOp::kAdd;
  ExprPtr lhs, rhs;      // kUnary uses lhs; kIndex uses lhs as the index
  std::vector<ExprPtr> args;  // kCall
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : u8 {
    kBlock,    // body
    kIf,       // cond, body, else_body
    kWhile,    // cond, body
    kFor,      // init, cond, step, body
    kReturn,   // value
    kAssign,   // sym [index] = value
    kDecl,     // local decl: sym = value (value may be null -> 0)
    kCallStmt, // value holds a kCall expression; result discarded
  };

  Kind kind = Kind::kBlock;
  SourceLoc loc;
  u32 sym = ~u32{0};     // kAssign/kDecl target symbol
  std::string name;      // target spelling, for diagnostics
  ExprPtr index;         // kAssign to an array element (null for scalar)
  ExprPtr cond;          // kIf/kWhile/kFor
  ExprPtr value;         // kAssign/kDecl/kReturn/kCallStmt
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;
  StmtPtr init, step;    // kFor (both kAssign or kDecl / kAssign)
};

struct Symbol {
  enum class Kind : u8 {
    kGlobalScalar,
    kGlobalArray,
    kLocal,    // locals and parameters; parameters fill the first slots
    kConst,    // the SCALE / SEED builtins
  };

  Kind kind = Kind::kGlobalScalar;
  std::string name;
  SourceLoc loc;
  i64 init = 0;          // global-scalar initialiser / kConst value
  u32 array_len = 0;     // kGlobalArray: element count (power of two)
  u32 slot = 0;          // kLocal: frame slot within its function
};

struct Function {
  std::string name;
  SourceLoc loc;
  u32 num_params = 0;
  std::vector<u32> locals;  // symbol indices, slot order (params first)
  std::vector<StmtPtr> body;
};

/// A parsed, resolved, checked TLC program. `seed`/`scale` record the
/// values the SCALE/SEED builtins were bound to.
struct Unit {
  std::vector<Symbol> symbols;
  std::vector<Function> functions;
  u32 main_index = ~u32{0};
  u64 seed = 0;
  u32 scale = 1;
};

}  // namespace tlr::lang
