// TLC lexer: source text -> token stream.
//
// TLC is the tiny C-like workload language (docs/tlc.md): `int`
// scalars and global arrays, `if`/`while`/`for`, functions, and the
// arithmetic/bitwise/comparison operator set of the mini-ISA. The
// lexer handles `//` comments, decimal and hex integer literals, and
// reports malformed input as a Diag with the exact line:col.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lang/diag.hpp"
#include "util/types.hpp"

namespace tlr::lang {

enum class Tok : u8 {
  kEof,
  kIdent,
  kNumber,
  // keywords
  kInt,
  kIf,
  kElse,
  kWhile,
  kFor,
  kReturn,
  // punctuation
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemi,
  // operators
  kAssign,   // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,
  kPipe,
  kCaret,
  kTilde,
  kBang,
  kShl,      // <<
  kShr,      // >>
  kEq,       // ==
  kNe,       // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kAndAnd,
  kOrOr,
};

/// Token spelling for diagnostics ("expected ';', got '}'").
std::string_view tok_name(Tok tok);

struct Token {
  Tok kind = Tok::kEof;
  SourceLoc loc;
  std::string_view text;  // identifier spelling (view into the source)
  i64 number = 0;         // kNumber value
};

/// Tokenizes `source` in one pass. On failure returns nullopt and
/// fills `*diag` (never asserts: source text is untrusted input).
std::optional<std::vector<Token>> lex(std::string_view source, Diag* diag);

}  // namespace tlr::lang
