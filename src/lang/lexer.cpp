#include "lang/lexer.hpp"

#include <cctype>

namespace tlr::lang {

namespace {

bool is_ident_start(char c) {
  return c == '_' || std::isalpha(static_cast<unsigned char>(c));
}
bool is_ident_char(char c) {
  return c == '_' || std::isalnum(static_cast<unsigned char>(c));
}

struct Cursor {
  std::string_view source;
  usize pos = 0;
  u32 line = 1;
  u32 col = 1;

  bool done() const { return pos >= source.size(); }
  char peek(usize ahead = 0) const {
    return pos + ahead < source.size() ? source[pos + ahead] : '\0';
  }
  char take() {
    const char c = source[pos++];
    if (c == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    return c;
  }
  SourceLoc loc() const { return {line, col}; }
};

}  // namespace

std::string_view tok_name(Tok tok) {
  switch (tok) {
    case Tok::kEof: return "end of input";
    case Tok::kIdent: return "identifier";
    case Tok::kNumber: return "number";
    case Tok::kInt: return "'int'";
    case Tok::kIf: return "'if'";
    case Tok::kElse: return "'else'";
    case Tok::kWhile: return "'while'";
    case Tok::kFor: return "'for'";
    case Tok::kReturn: return "'return'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kComma: return "','";
    case Tok::kSemi: return "';'";
    case Tok::kAssign: return "'='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kAmp: return "'&'";
    case Tok::kPipe: return "'|'";
    case Tok::kCaret: return "'^'";
    case Tok::kTilde: return "'~'";
    case Tok::kBang: return "'!'";
    case Tok::kShl: return "'<<'";
    case Tok::kShr: return "'>>'";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kOrOr: return "'||'";
  }
  return "?";
}

std::optional<std::vector<Token>> lex(std::string_view source, Diag* diag) {
  std::vector<Token> tokens;
  Cursor cur{source};

  const auto fail = [&](SourceLoc loc, std::string message) {
    if (diag != nullptr) *diag = {std::move(message), loc};
    return std::nullopt;
  };

  while (!cur.done()) {
    const char c = cur.peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      cur.take();
      continue;
    }
    if (c == '/' && cur.peek(1) == '/') {
      while (!cur.done() && cur.peek() != '\n') cur.take();
      continue;
    }

    Token token;
    token.loc = cur.loc();

    if (is_ident_start(c)) {
      const usize start = cur.pos;
      while (!cur.done() && is_ident_char(cur.peek())) cur.take();
      token.text = source.substr(start, cur.pos - start);
      if (token.text == "int") token.kind = Tok::kInt;
      else if (token.text == "if") token.kind = Tok::kIf;
      else if (token.text == "else") token.kind = Tok::kElse;
      else if (token.text == "while") token.kind = Tok::kWhile;
      else if (token.text == "for") token.kind = Tok::kFor;
      else if (token.text == "return") token.kind = Tok::kReturn;
      else token.kind = Tok::kIdent;
      tokens.push_back(token);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      const bool hex = c == '0' && (cur.peek(1) == 'x' || cur.peek(1) == 'X');
      u64 value = 0;
      if (hex) {
        cur.take();
        cur.take();
        if (!std::isxdigit(static_cast<unsigned char>(cur.peek()))) {
          return fail(token.loc, "malformed hex literal");
        }
        while (std::isxdigit(static_cast<unsigned char>(cur.peek()))) {
          const char d = cur.take();
          const u64 digit =
              std::isdigit(static_cast<unsigned char>(d))
                  ? static_cast<u64>(d - '0')
                  : static_cast<u64>(std::tolower(d) - 'a') + 10;
          if (value > (~u64{0} >> 4)) {
            return fail(token.loc, "integer literal overflows 64 bits");
          }
          value = (value << 4) | digit;
        }
      } else {
        while (std::isdigit(static_cast<unsigned char>(cur.peek()))) {
          const u64 digit = static_cast<u64>(cur.take() - '0');
          if (value > (~u64{0} - digit) / 10) {
            return fail(token.loc, "integer literal overflows 64 bits");
          }
          value = value * 10 + digit;
        }
      }
      if (is_ident_start(cur.peek())) {
        return fail(cur.loc(), "unexpected character in number");
      }
      token.kind = Tok::kNumber;
      token.number = static_cast<i64>(value);
      tokens.push_back(token);
      continue;
    }

    cur.take();
    const auto two = [&](char second, Tok with, Tok without) {
      if (cur.peek() == second) {
        cur.take();
        return with;
      }
      return without;
    };
    switch (c) {
      case '(': token.kind = Tok::kLParen; break;
      case ')': token.kind = Tok::kRParen; break;
      case '{': token.kind = Tok::kLBrace; break;
      case '}': token.kind = Tok::kRBrace; break;
      case '[': token.kind = Tok::kLBracket; break;
      case ']': token.kind = Tok::kRBracket; break;
      case ',': token.kind = Tok::kComma; break;
      case ';': token.kind = Tok::kSemi; break;
      case '+': token.kind = Tok::kPlus; break;
      case '-': token.kind = Tok::kMinus; break;
      case '*': token.kind = Tok::kStar; break;
      case '/': token.kind = Tok::kSlash; break;
      case '%': token.kind = Tok::kPercent; break;
      case '^': token.kind = Tok::kCaret; break;
      case '~': token.kind = Tok::kTilde; break;
      case '=': token.kind = two('=', Tok::kEq, Tok::kAssign); break;
      case '!': token.kind = two('=', Tok::kNe, Tok::kBang); break;
      case '&': token.kind = two('&', Tok::kAndAnd, Tok::kAmp); break;
      case '|': token.kind = two('|', Tok::kOrOr, Tok::kPipe); break;
      case '<':
        if (cur.peek() == '<') {
          cur.take();
          token.kind = Tok::kShl;
        } else {
          token.kind = two('=', Tok::kLe, Tok::kLt);
        }
        break;
      case '>':
        if (cur.peek() == '>') {
          cur.take();
          token.kind = Tok::kShr;
        } else {
          token.kind = two('=', Tok::kGe, Tok::kGt);
        }
        break;
      default:
        return fail(token.loc,
                    std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(token);
  }

  Token eof;
  eof.kind = Tok::kEof;
  eof.loc = cur.loc();
  tokens.push_back(eof);
  return tokens;
}

}  // namespace tlr::lang
