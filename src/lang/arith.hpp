// TLC operator semantics, shared by the parser's constant folder and
// the reference evaluator so a folded constant can never disagree with
// a runtime value. These mirror the mini-ISA exactly (vm/interpreter):
// wrapping two's-complement arithmetic, division by zero yields 0,
// INT64_MIN / -1 yields INT64_MIN (remainder 0), shift counts are
// masked to 6 bits, `>>` is arithmetic. All computation runs on u64 to
// keep signed overflow out of the C++ abstract machine.
#pragma once

#include <limits>

#include "lang/ast.hpp"
#include "util/types.hpp"

namespace tlr::lang {

inline i64 apply_un(UnOp op, i64 a) {
  const u64 ua = static_cast<u64>(a);
  switch (op) {
    case UnOp::kNeg: return static_cast<i64>(u64{0} - ua);
    case UnOp::kBitNot: return static_cast<i64>(~ua);
    case UnOp::kLogNot: return a == 0 ? 1 : 0;
  }
  return 0;
}

inline i64 apply_bin(BinOp op, i64 a, i64 b) {
  const u64 ua = static_cast<u64>(a);
  const u64 ub = static_cast<u64>(b);
  switch (op) {
    case BinOp::kAdd: return static_cast<i64>(ua + ub);
    case BinOp::kSub: return static_cast<i64>(ua - ub);
    case BinOp::kMul: return static_cast<i64>(ua * ub);
    case BinOp::kDiv:
      if (b == 0) return 0;
      if (a == std::numeric_limits<i64>::min() && b == -1) return a;
      return a / b;
    case BinOp::kRem:
      if (b == 0) return 0;
      if (a == std::numeric_limits<i64>::min() && b == -1) return 0;
      return a % b;
    case BinOp::kAnd: return static_cast<i64>(ua & ub);
    case BinOp::kOr: return static_cast<i64>(ua | ub);
    case BinOp::kXor: return static_cast<i64>(ua ^ ub);
    case BinOp::kShl: return static_cast<i64>(ua << (ub & 63));
    case BinOp::kShr: return a >> (ub & 63);  // i64 >> is arithmetic
    case BinOp::kEq: return a == b ? 1 : 0;
    case BinOp::kNe: return a != b ? 1 : 0;
    case BinOp::kLt: return a < b ? 1 : 0;
    case BinOp::kLe: return a <= b ? 1 : 0;
    case BinOp::kGt: return a > b ? 1 : 0;
    case BinOp::kGe: return a >= b ? 1 : 0;
    case BinOp::kLAnd: return (a != 0) && (b != 0) ? 1 : 0;
    case BinOp::kLOr: return (a != 0) || (b != 0) ? 1 : 0;
  }
  return 0;
}

}  // namespace tlr::lang
