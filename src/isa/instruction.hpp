// Static instruction encoding.
//
// `Instruction` is what programs are made of; `DynInst` (dyn_inst.hpp)
// is what executing one produces. Branch/call targets are absolute
// instruction indices resolved by the ProgramBuilder.
#pragma once

#include "isa/op.hpp"
#include "isa/reg.hpp"
#include "util/types.hpp"

namespace tlr::isa {

/// Static instruction index inside a Program ("the PC").
using Pc = u32;

inline constexpr Pc kInvalidPc = ~Pc{0};

struct Instruction {
  Op op = Op::kHalt;
  Reg ra = kIntZero;  // first source (also address base for memory ops)
  Reg rb = kIntZero;  // second source (also store data)
  Reg rc = kIntZero;  // destination
  /// Immediate operand / memory displacement / branch target / FP bits,
  /// depending on op.
  i64 imm = 0;
  /// For 2-source integer ops: use imm instead of rb as second operand.
  bool use_imm = false;
};

static_assert(sizeof(Instruction) <= 24);

}  // namespace tlr::isa
