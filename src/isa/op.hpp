// Operation set of the simulated machine.
//
// A compact load/store RISC ISA sufficient to express the fourteen
// SPEC95-analog workloads: integer ALU/mul/div, logical and shift ops,
// compares, 64-bit loads/stores (integer and FP views), conditional
// branches on a register, direct and indirect jumps, call/return, and
// the usual FP arithmetic. Operation *classes* carry the timing model's
// latency class and drive the interpreter's operand decoding.
#pragma once

#include <string_view>

#include "util/types.hpp"

namespace tlr::isa {

enum class Op : u8 {
  // Integer arithmetic / logic (rc <- ra OP rb|imm).
  kAdd,
  kSub,
  kMul,
  kDiv,   // synthesized on real Alphas; modeled as a long-latency unit
  kRem,   // likewise
  kAnd,
  kOr,
  kXor,
  kAndNot,
  kSll,
  kSrl,
  kSra,
  kCmpEq,   // rc <- (ra == rb|imm) ? 1 : 0
  kCmpLt,   // signed <
  kCmpLe,   // signed <=
  kCmpULt,  // unsigned <

  // Immediate materialisation / moves.
  kLdi,    // rc <- imm (64-bit)
  kMov,    // rc <- ra

  // Memory (effective address = ra + imm; 8-byte aligned words).
  kLdq,    // rc(int) <- mem[ea]
  kStq,    // mem[ea] <- rb(int)
  kLdt,    // rc(fp)  <- mem[ea] (bit pattern)
  kStt,    // mem[ea] <- rb(fp)  (bit pattern)

  // Control (targets are absolute instruction indices in imm).
  kBr,     // unconditional
  kBeqz,   // branch if ra == 0
  kBnez,
  kBltz,   // signed
  kBgez,
  kCall,   // link reg <- pc+1; jump to imm
  kJmp,    // jump to instruction index in ra (indirect)
  kRet,    // jump to instruction index in ra (alias of kJmp, reads link)

  // Floating point (doubles held as bit patterns).
  kFAdd,
  kFSub,
  kFMul,
  kFDiv,
  kFSqrt,  // rc <- sqrt(ra)
  kFNeg,
  kFAbs,
  kFCmpLt,  // rc(int) <- (fa < fb) ? 1 : 0
  kFCmpEq,
  kFLdi,    // rc(fp) <- imm bit pattern
  kCvtQT,   // rc(fp) <- double(ra as signed int)
  kCvtTQ,   // rc(int) <- trunc(ra as double)

  kHalt,   // stop execution
};

inline constexpr usize kNumOps = static_cast<usize>(Op::kHalt) + 1;

/// Latency classes; one Alpha-21164-derived latency per class.
enum class OpClass : u8 {
  kIntAlu,
  kIntMul,
  kIntDiv,
  kLoad,
  kStore,
  kBranch,
  kFpAdd,   // add/sub/compare/convert class
  kFpMul,
  kFpDiv,
  kFpSqrt,
  kNop,
};

/// Dense Op -> OpClass map. The timing models call this once per
/// dynamic instruction per timer configuration, so it is an inline
/// table lookup rather than an out-of-line switch (DESIGN.md §10).
namespace detail {
inline constexpr OpClass kOpClassTable[kNumOps] = {
    /*kAdd=*/OpClass::kIntAlu,    /*kSub=*/OpClass::kIntAlu,
    /*kMul=*/OpClass::kIntMul,    /*kDiv=*/OpClass::kIntDiv,
    /*kRem=*/OpClass::kIntDiv,    /*kAnd=*/OpClass::kIntAlu,
    /*kOr=*/OpClass::kIntAlu,     /*kXor=*/OpClass::kIntAlu,
    /*kAndNot=*/OpClass::kIntAlu, /*kSll=*/OpClass::kIntAlu,
    /*kSrl=*/OpClass::kIntAlu,    /*kSra=*/OpClass::kIntAlu,
    /*kCmpEq=*/OpClass::kIntAlu,  /*kCmpLt=*/OpClass::kIntAlu,
    /*kCmpLe=*/OpClass::kIntAlu,  /*kCmpULt=*/OpClass::kIntAlu,
    /*kLdi=*/OpClass::kIntAlu,    /*kMov=*/OpClass::kIntAlu,
    /*kLdq=*/OpClass::kLoad,      /*kStq=*/OpClass::kStore,
    /*kLdt=*/OpClass::kLoad,      /*kStt=*/OpClass::kStore,
    /*kBr=*/OpClass::kBranch,     /*kBeqz=*/OpClass::kBranch,
    /*kBnez=*/OpClass::kBranch,   /*kBltz=*/OpClass::kBranch,
    /*kBgez=*/OpClass::kBranch,   /*kCall=*/OpClass::kBranch,
    /*kJmp=*/OpClass::kBranch,    /*kRet=*/OpClass::kBranch,
    /*kFAdd=*/OpClass::kFpAdd,    /*kFSub=*/OpClass::kFpAdd,
    /*kFMul=*/OpClass::kFpMul,    /*kFDiv=*/OpClass::kFpDiv,
    /*kFSqrt=*/OpClass::kFpSqrt,  /*kFNeg=*/OpClass::kFpAdd,
    /*kFAbs=*/OpClass::kFpAdd,    /*kFCmpLt=*/OpClass::kFpAdd,
    /*kFCmpEq=*/OpClass::kFpAdd,  /*kFLdi=*/OpClass::kFpAdd,
    /*kCvtQT=*/OpClass::kFpAdd,   /*kCvtTQ=*/OpClass::kFpAdd,
    /*kHalt=*/OpClass::kNop,
};
}  // namespace detail

constexpr OpClass op_class(Op op) {
  return detail::kOpClassTable[static_cast<usize>(op)];
}

/// True for kLdq/kLdt.
constexpr bool is_load(Op op) { return op == Op::kLdq || op == Op::kLdt; }
/// True for kStq/kStt.
constexpr bool is_store(Op op) { return op == Op::kStq || op == Op::kStt; }
/// True for every control-transfer op (branches, jumps, call, ret).
constexpr bool is_control(Op op) {
  return op_class(op) == OpClass::kBranch;
}
/// True if the op conditionally diverges (kBeqz..kBgez).
constexpr bool is_cond_branch(Op op) {
  return op == Op::kBeqz || op == Op::kBnez || op == Op::kBltz ||
         op == Op::kBgez;
}
/// True if the destination is an FP register.
bool writes_fp(Op op);
/// Mnemonic for disassembly and error messages.
std::string_view op_name(Op op);

}  // namespace tlr::isa
