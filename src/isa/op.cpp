#include "isa/op.hpp"

namespace tlr::isa {

// op_class and the small predicates are inline constexpr in op.hpp
// (hot-path table lookup); this cross-check pins the table against the
// reference switch so a reordered enum cannot silently skew latencies.
namespace {
constexpr OpClass reference_op_class(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kAndNot:
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
    case Op::kCmpEq:
    case Op::kCmpLt:
    case Op::kCmpLe:
    case Op::kCmpULt:
    case Op::kLdi:
    case Op::kMov:
      return OpClass::kIntAlu;
    case Op::kMul:
      return OpClass::kIntMul;
    case Op::kDiv:
    case Op::kRem:
      return OpClass::kIntDiv;
    case Op::kLdq:
    case Op::kLdt:
      return OpClass::kLoad;
    case Op::kStq:
    case Op::kStt:
      return OpClass::kStore;
    case Op::kBr:
    case Op::kBeqz:
    case Op::kBnez:
    case Op::kBltz:
    case Op::kBgez:
    case Op::kCall:
    case Op::kJmp:
    case Op::kRet:
      return OpClass::kBranch;
    case Op::kFAdd:
    case Op::kFSub:
    case Op::kFNeg:
    case Op::kFAbs:
    case Op::kFCmpLt:
    case Op::kFCmpEq:
    case Op::kFLdi:
    case Op::kCvtQT:
    case Op::kCvtTQ:
      return OpClass::kFpAdd;
    case Op::kFMul:
      return OpClass::kFpMul;
    case Op::kFDiv:
      return OpClass::kFpDiv;
    case Op::kFSqrt:
      return OpClass::kFpSqrt;
    case Op::kHalt:
      return OpClass::kNop;
  }
  return OpClass::kNop;
}

constexpr bool table_matches_reference() {
  for (usize i = 0; i < kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    if (op_class(op) != reference_op_class(op)) return false;
  }
  return true;
}
static_assert(table_matches_reference(),
              "kOpClassTable diverges from the reference switch");
}  // namespace

bool writes_fp(Op op) {
  switch (op) {
    case Op::kLdt:
    case Op::kFAdd:
    case Op::kFSub:
    case Op::kFMul:
    case Op::kFDiv:
    case Op::kFSqrt:
    case Op::kFNeg:
    case Op::kFAbs:
    case Op::kFLdi:
    case Op::kCvtQT:
      return true;
    default:
      return false;
  }
}

std::string_view op_name(Op op) {
  switch (op) {
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kRem: return "rem";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kAndNot: return "andnot";
    case Op::kSll: return "sll";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kCmpEq: return "cmpeq";
    case Op::kCmpLt: return "cmplt";
    case Op::kCmpLe: return "cmple";
    case Op::kCmpULt: return "cmpult";
    case Op::kLdi: return "ldi";
    case Op::kMov: return "mov";
    case Op::kLdq: return "ldq";
    case Op::kStq: return "stq";
    case Op::kLdt: return "ldt";
    case Op::kStt: return "stt";
    case Op::kBr: return "br";
    case Op::kBeqz: return "beqz";
    case Op::kBnez: return "bnez";
    case Op::kBltz: return "bltz";
    case Op::kBgez: return "bgez";
    case Op::kCall: return "call";
    case Op::kJmp: return "jmp";
    case Op::kRet: return "ret";
    case Op::kFAdd: return "fadd";
    case Op::kFSub: return "fsub";
    case Op::kFMul: return "fmul";
    case Op::kFDiv: return "fdiv";
    case Op::kFSqrt: return "fsqrt";
    case Op::kFNeg: return "fneg";
    case Op::kFAbs: return "fabs";
    case Op::kFCmpLt: return "fcmplt";
    case Op::kFCmpEq: return "fcmpeq";
    case Op::kFLdi: return "fldi";
    case Op::kCvtQT: return "cvtqt";
    case Op::kCvtTQ: return "cvttq";
    case Op::kHalt: return "halt";
  }
  return "?";
}

}  // namespace tlr::isa
