// Instruction latencies, borrowed (like the paper, §4) from the Alpha
// 21164 Hardware Reference Manual. One latency per operation class; the
// dataflow timing model charges this many cycles between the readiness
// of an instruction's inputs and the availability of its result.
#pragma once

#include "isa/op.hpp"
#include "util/types.hpp"

namespace tlr::isa {

/// Latency table, indexable by OpClass and overridable per experiment
/// (the default constructor loads the 21164 numbers).
class LatencyTable {
 public:
  constexpr LatencyTable() = default;

  constexpr Cycle get(OpClass cls) const {
    return cycles_[static_cast<usize>(cls)];
  }
  Cycle get(Op op) const { return get(op_class(op)); }

  constexpr void set(OpClass cls, Cycle cycles) {
    cycles_[static_cast<usize>(cls)] = cycles;
  }

 private:
  // Alpha 21164: integer ALU ops 1 cycle; MULQ 8..16 (we use 12, the
  // 64x64 latency); loads 2 (D-cache hit); FP add/sub/cmp/cvt 4; FP mul
  // 4; FP div 22..60 for T-format (we use 31, the worst-case divt);
  // sqrt has no hardware unit on the 21164 — we model a 30-cycle unit.
  // Integer divide is synthesized in software on Alpha; modeled as a
  // 40-cycle unit so it stays a "long-latency op" like the paper's
  // related work (result caches) assumes.
  Cycle cycles_[11] = {
      /*kIntAlu=*/1,
      /*kIntMul=*/12,
      /*kIntDiv=*/40,
      /*kLoad=*/2,
      /*kStore=*/1,
      /*kBranch=*/1,
      /*kFpAdd=*/4,
      /*kFpMul=*/4,
      /*kFpDiv=*/31,
      /*kFpSqrt=*/30,
      /*kNop=*/1,
  };
};

/// The default 21164-derived table used throughout the evaluation.
inline constexpr LatencyTable kAlpha21164Latencies{};

}  // namespace tlr::isa
