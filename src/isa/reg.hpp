// Register-file and storage-location naming.
//
// The simulated machine is Alpha-flavoured: 32 integer registers
// (R0..R31, with R31 hard-wired to zero) and 32 floating-point registers
// (F0..F31, F31 hard-wired to zero). FP values are stored as IEEE-754
// double bit patterns in 64-bit cells, so the whole architectural state
// is uniform u64 words — which is exactly what the reuse machinery needs
// to compare and hash.
//
// `Loc` is the unified storage-location name used by the reuse engines
// and the dataflow timers: a register index, or a memory word address
// with the top bit set. The paper defines trace inputs/outputs as sets
// of registers *and* memory locations; a single comparable/hashable
// 64-bit name keeps the live-in/live-out machinery simple.
#pragma once

#include "util/assert.hpp"
#include "util/types.hpp"

namespace tlr::isa {

/// Register index: 0..31 integer, 32..63 floating point.
using Reg = u8;

inline constexpr Reg kNumIntRegs = 32;
inline constexpr Reg kNumFpRegs = 32;
inline constexpr Reg kNumRegs = kNumIntRegs + kNumFpRegs;

/// Integer register i (0..31).
constexpr Reg r(unsigned i) {
  TLR_ASSERT(i < kNumIntRegs);
  return static_cast<Reg>(i);
}

/// Floating-point register i (0..31), mapped into [32, 64).
constexpr Reg f(unsigned i) {
  TLR_ASSERT(i < kNumFpRegs);
  return static_cast<Reg>(kNumIntRegs + i);
}

/// Hard-wired zero registers: reads yield 0, writes are discarded.
inline constexpr Reg kIntZero = r(31);
inline constexpr Reg kFpZero = f(31);

/// Conventional link register written by CALL and read by RET.
inline constexpr Reg kLinkReg = r(26);
/// Conventional stack pointer (pure convention; the ISA does not treat
/// it specially).
inline constexpr Reg kStackReg = r(30);

constexpr bool is_int_reg(Reg reg) { return reg < kNumIntRegs; }
constexpr bool is_fp_reg(Reg reg) {
  return reg >= kNumIntRegs && reg < kNumRegs;
}
constexpr bool is_zero_reg(Reg reg) {
  return reg == kIntZero || reg == kFpZero;
}

/// Unified storage-location name: register or aligned memory word.
/// Encoding: registers are their index; memory word at byte address A
/// (A % 8 == 0) is (A | kMemTag). The tag bit cannot collide with real
/// addresses because the simulated address space is < 2^48.
class Loc {
 public:
  static constexpr u64 kMemTag = u64{1} << 63;

  constexpr Loc() : raw_(~u64{0}) {}

  static constexpr Loc reg(Reg r) {
    TLR_ASSERT(r < kNumRegs);
    Loc loc;
    loc.raw_ = r;
    return loc;
  }

  /// Rebuild a Loc from a raw() value (e.g. out of an RTM entry).
  static constexpr Loc from_raw(u64 raw) {
    Loc loc;
    loc.raw_ = raw;
    return loc;
  }

  static constexpr Loc mem(Addr byte_addr) {
    TLR_ASSERT_MSG((byte_addr & 7) == 0, "memory locations are 8-byte words");
    TLR_ASSERT(byte_addr < kMemTag);
    Loc loc;
    loc.raw_ = byte_addr | kMemTag;
    return loc;
  }

  constexpr bool is_mem() const { return (raw_ & kMemTag) != 0; }
  constexpr bool is_reg() const { return !is_mem(); }

  constexpr Reg reg_index() const {
    TLR_ASSERT(is_reg());
    return static_cast<Reg>(raw_);
  }

  constexpr Addr mem_addr() const {
    TLR_ASSERT(is_mem());
    return raw_ & ~kMemTag;
  }

  /// Raw 64-bit name; stable, hashable, order-comparable.
  constexpr u64 raw() const { return raw_; }

  friend constexpr bool operator==(Loc, Loc) = default;
  friend constexpr auto operator<=>(Loc, Loc) = default;

 private:
  u64 raw_;
};

struct LocHash {
  usize operator()(Loc loc) const noexcept {
    // mix so that dense register indices and aligned addresses spread.
    u64 x = loc.raw();
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<usize>(x);
  }
};

}  // namespace tlr::isa
