// Dynamic instruction record: the unit of the simulated dynamic stream.
//
// This is the exact information the paper's methodology extracts with
// ATOM (§4.1): for each executed instruction, the storage locations it
// read with their values, the location it wrote with its value, and the
// next PC. Everything downstream — the reusability analyses, the
// dataflow timers, the RTM simulator — consumes only this record.
//
// Reads of the hard-wired zero registers are *not* recorded as inputs
// (their value is a constant, so they can never distinguish two dynamic
// instances), and writes to them are discarded, mirroring how Alpha
// reuse studies treat r31/f31.
#pragma once

#include "isa/instruction.hpp"
#include "isa/op.hpp"
#include "isa/reg.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace tlr::isa {

/// One operand read: which location and what value it held.
struct OperandRead {
  Loc loc;
  u64 value = 0;
};

struct DynInst {
  Pc pc = kInvalidPc;
  Pc next_pc = kInvalidPc;
  Op op = Op::kHalt;

  /// Input reads in program-defined order (register operands first,
  /// then — for loads — the memory word). At most 3 (store: addr reg,
  /// data reg; load: addr reg, memory word).
  u8 num_inputs = 0;
  OperandRead inputs[3];

  /// Output write, if any (register for most ops, memory word for
  /// stores). Branches produce no output (their effect is next_pc).
  bool has_output = false;
  Loc output;
  u64 output_value = 0;

  void add_input(Loc loc, u64 value) {
    TLR_ASSERT(num_inputs < 3);
    inputs[num_inputs++] = OperandRead{loc, value};
  }

  void set_output(Loc loc, u64 value) {
    has_output = true;
    output = loc;
    output_value = value;
  }

  bool is_load() const { return isa::is_load(op); }
  bool is_store() const { return isa::is_store(op); }
  bool is_control() const { return isa::is_control(op); }
};

}  // namespace tlr::isa
