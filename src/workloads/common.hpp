// Internal helpers shared by the workload generators. Not part of the
// public API.
#pragma once

#include "isa/reg.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"
#include "vm/builder.hpp"

namespace tlr::workloads::detail {

/// Emit a loop prologue/epilogue that repeats the code between
/// `begin_outer` and `end_outer` a practically unbounded number of
/// times (2^31 passes); streams are cut off by the interpreter's emit
/// limit long before that. The pass counter lives in `counter_reg`.
/// Its decrement and test are the only instructions whose inputs never
/// repeat, mirroring the once-per-iteration bookkeeping real programs
/// have.
class OuterLoop {
 public:
  OuterLoop(vm::ProgramBuilder& builder, isa::Reg counter_reg)
      : builder_(builder), counter_(counter_reg) {
    builder_.ldi(counter_, i64{1} << 31);
    top_ = builder_.here();
  }

  /// Close the loop: decrement, branch back, then halt.
  void close() {
    builder_.subi(counter_, counter_, 1);
    builder_.bnez(counter_, top_);
    builder_.halt();
  }

 private:
  vm::ProgramBuilder& builder_;
  isa::Reg counter_;
  vm::Label top_;
};

/// Fill `words` consecutive memory words starting at `base` with values
/// produced by `gen(i)`.
template <typename Gen>
void init_array(vm::ProgramBuilder& builder, Addr base, usize words,
                Gen&& gen) {
  for (usize i = 0; i < words; ++i) {
    builder.init_word(base + i * 8, gen(i));
  }
}

/// Same, for doubles.
template <typename Gen>
void init_array_fp(vm::ProgramBuilder& builder, Addr base, usize words,
                   Gen&& gen) {
  for (usize i = 0; i < words; ++i) {
    builder.init_double(base + i * 8, gen(i));
  }
}

}  // namespace tlr::workloads::detail
