// `go` analog: board-scan position evaluator.
//
// SPECint95 099.go repeatedly evaluates a 19x19 board that changes by
// one stone per move: between consecutive evaluations almost all of
// the board — and therefore almost all loads, neighbour sums and
// branch conditions — carry the values they had before. The evaluation
// accumulators are the non-repeating part: each changed stone breaks
// the running-score chain from that point in scan order.
//
// Analog structure: a 19x19 board (stored with a sentinel border so
// the stencil needs no bounds checks) is mutated by one move per
// iteration from a long precomputed move list, then fully evaluated
// with a 5-point influence stencil feeding two colour scores.
#include "util/rng.hpp"
#include "vm/builder.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace tlr::workloads {

using isa::r;
using vm::Label;
using vm::ProgramBuilder;

Workload make_go(const WorkloadParams& params) {
  ProgramBuilder b("go");
  Rng rng(params.seed ^ 0x676f6f6fULL);

  constexpr usize kSide = 19;
  constexpr usize kRow = kSide + 2;  // sentinel border
  const usize n_moves = 512 * params.scale;

  // --- data segment --------------------------------------------------
  const Addr board = b.alloc(kRow * kRow);
  const Addr moves = b.alloc(n_moves);  // packed: cell_offset*4 | color
  const Addr scores = b.alloc(4);

  // Sparse opening position.
  for (usize i = 1; i <= kSide; ++i) {
    for (usize j = 1; j <= kSide; ++j) {
      const u64 stone = rng.chance(1, 4) ? 1 + rng.below(2) : 0;
      b.init_word(board + (i * kRow + j) * 8, stone);
    }
  }
  // Moves: interior cells only; color cycles 0 (capture), 1, 2.
  for (usize m = 0; m < n_moves; ++m) {
    const u64 i = 1 + rng.below(kSide);
    const u64 j = 1 + rng.below(kSide);
    const u64 color = m % 3;
    b.init_word(moves + m * 8, ((i * kRow + j) * 8) << 2 | color);
  }

  // --- registers -----------------------------------------------------
  constexpr auto kBoard = r(1);
  constexpr auto kMovePtr = r(2);
  constexpr auto kMoveEnd = r(3);
  constexpr auto kCell = r(4);    // cursor over board interior
  constexpr auto kRowEnd = r(5);
  constexpr auto kSelf = r(6);
  constexpr auto kSum = r(7);
  constexpr auto kScoreB = r(8);
  constexpr auto kScoreW = r(9);
  constexpr auto kTmp = r(10);
  constexpr auto kTmp2 = r(11);
  constexpr auto kRowIdx = r(12);
  constexpr auto kScores = r(13);
  constexpr auto kOuter = r(14);
  constexpr auto kSpine = r(15);  // never-repeating game-history spine
  constexpr auto kHist = r(16);   // per-eval position hash (reusable chain)

  constexpr i64 kRowBytes = static_cast<i64>(kRow * 8);

  b.ldi(kBoard, static_cast<i64>(board));
  b.ldi(kScores, static_cast<i64>(scores));
  b.ldi(kMovePtr, static_cast<i64>(moves));
  b.ldi(kMoveEnd, static_cast<i64>(moves + n_moves * 8));
  // Real go engines thread global state (move history, hash of the
  // game) through every evaluation; this spine models it: one
  // dependent 1-cycle op per cell whose value never repeats. It
  // serialises successive evaluations (bounding the infinite-window
  // parallelism) and breaks reusable runs at the ~1-cell scale.
  b.ldi(kSpine, 0x9e3779b9);

  detail::OuterLoop outer(b, kOuter);

  // ---- play one move -------------------------------------------------
  b.ldq(kTmp, kMovePtr, 0);
  b.andi(kTmp2, kTmp, 3);        // color
  b.srli(kTmp, kTmp, 2);         // cell byte offset
  b.add(kTmp, kTmp, kBoard);
  b.stq(kTmp2, kTmp, 0);
  b.addi(kMovePtr, kMovePtr, 8);
  b.cmpult(kTmp, kMovePtr, kMoveEnd);
  {
    Label no_wrap = b.label();
    b.bnez(kTmp, no_wrap);
    b.ldi(kMovePtr, static_cast<i64>(moves));  // cycle the move list
    b.bind(no_wrap);
  }

  // ---- full-board evaluation ------------------------------------------
  b.ldi(kScoreB, 0);
  b.ldi(kScoreW, 0);
  b.ldi(kHist, 11);  // per-eval reset: chain values repeat across evals
  b.ldi(kRowIdx, static_cast<i64>(kSide));

  Label row_loop = b.here();
  // kCell = board + rowIdx*kRowBytes + 8 (start of interior row rowIdx).
  b.muli(kCell, kRowIdx, kRowBytes);
  b.add(kCell, kCell, kBoard);
  b.addi(kCell, kCell, 8);
  b.addi(kRowEnd, kCell, static_cast<i64>(kSide * 8));

  Label cell_loop = b.here();
  b.ldq(kSelf, kCell, 0);
  b.ldq(kSum, kCell, -kRowBytes);      // north
  b.ldq(kTmp, kCell, kRowBytes);       // south
  b.add(kSum, kSum, kTmp);
  b.ldq(kTmp, kCell, -8);              // west
  b.add(kSum, kSum, kTmp);
  b.ldq(kTmp, kCell, 8);               // east
  b.add(kSum, kSum, kTmp);
  b.slli(kTmp, kSelf, 2);              // influence = 4*self + neighbours
  b.add(kSum, kSum, kTmp);

  {
    Label not_black = b.label();
    Label next = b.label();
    b.cmpeqi(kTmp, kSelf, 1);
    b.beqz(kTmp, not_black);
    b.add(kScoreB, kScoreB, kSum);
    b.br(next);
    b.bind(not_black);
    b.cmpeqi(kTmp, kSelf, 2);
    b.beqz(kTmp, next);
    b.add(kScoreW, kScoreW, kSum);
    b.bind(next);
  }

  // Position-hash chain (like Zobrist hashing): two dependent 1-cycle
  // ops per cell, serial across the evaluation, reusable (resets per
  // evaluation). ILR cannot shorten it; trace reuse can.
  b.add(kHist, kHist, kSum);
  b.xori(kHist, kHist, 0x55);
  // History spine (never repeats), every 4th cell.
  b.andi(kTmp, kCell, 24);
  {
    Label no_spine = b.label();
    b.bnez(kTmp, no_spine);
    b.add(kSpine, kSpine, kSum);
    b.addi(kSpine, kSpine, 1);
    b.bind(no_spine);
  }

  b.addi(kCell, kCell, 8);
  b.cmpult(kTmp, kCell, kRowEnd);
  b.bnez(kTmp, cell_loop);

  b.subi(kRowIdx, kRowIdx, 1);
  b.bnez(kRowIdx, row_loop);

  // Publish the evaluation.
  b.stq(kScoreB, kScores, 0);
  b.stq(kScoreW, kScores, 8);
  b.stq(kSpine, kScores, 16);

  outer.close();

  Workload w;
  w.name = "go";
  w.is_fp = false;
  w.description =
      "19x19 board evaluator: one stone changes per move, 5-point "
      "influence stencil re-scanned over a mostly unchanged board";
  w.program = b.build();
  return w;
}

}  // namespace tlr::workloads
