// `li` analog: a small expression-tree interpreter (XLISP core loop).
//
// SPECint95 130.li evaluates s-expressions: pointer-chasing over cons
// cells, a tag dispatch per node, and real recursion. The same small
// set of expressions is evaluated over and over against an environment
// that changes slowly — so whole eval() call trees repeat with
// identical inputs, which is precisely the "subroutine-grain" reuse
// the paper motivates trace-level reuse with.
//
// Analog structure: a heap of {tag, left, right, value} nodes encodes
// 32 expression trees over 8 environment variables. The interpreter is
// a genuinely recursive eval() (CALL/RET with a memory frame stack).
// The main loop cycles a Zipf-ordered tree sequence, rebinding one
// environment variable every 64 evaluations from a per-pass mutation
// list (absolute rebinds, so passes repeat exactly from pass 2 on).
#include <vector>

#include "util/rng.hpp"
#include "vm/builder.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace tlr::workloads {

using isa::r;
using vm::Label;
using vm::ProgramBuilder;

namespace {

constexpr u64 kTagConst = 0;
constexpr u64 kTagVar = 1;
constexpr u64 kTagAdd = 2;
constexpr u64 kTagSub = 3;
constexpr u64 kTagMul = 4;

struct Node {
  u64 tag, left, right, value;
};

/// Builds random expression trees into a flat node arena; returns the
/// arena index of the root.
class TreeGen {
 public:
  explicit TreeGen(Rng& rng) : rng_(rng) {}

  usize build(int max_depth) {
    if (max_depth == 0 || rng_.chance(2, 5)) {
      if (rng_.chance(1, 2)) {
        return emit({kTagConst, 0, 0, rng_.below(64)});
      }
      return emit({kTagVar, 0, 0, rng_.below(8)});
    }
    const u64 tag = kTagAdd + rng_.below(3);
    const usize left = build(max_depth - 1);
    const usize right = build(max_depth - 1);
    return emit({tag, left, right, 0});
  }

  const std::vector<Node>& arena() const { return arena_; }

 private:
  usize emit(Node n) {
    arena_.push_back(n);
    return arena_.size() - 1;
  }

  Rng& rng_;
  std::vector<Node> arena_;
};

}  // namespace

Workload make_li(const WorkloadParams& params) {
  ProgramBuilder b("li");
  Rng rng(params.seed ^ 0x6c697370ULL);

  const usize n_trees = 32;
  const usize seq_len = 256 * params.scale;
  const usize mut_every = 64;

  TreeGen gen(rng);
  std::vector<usize> roots;
  roots.reserve(n_trees);
  for (usize t = 0; t < n_trees; ++t) roots.push_back(gen.build(4));
  const auto& arena = gen.arena();

  // --- data segment --------------------------------------------------
  const Addr heap = b.alloc(arena.size() * 4);  // 32 bytes per node
  const Addr env = b.alloc(8);
  const Addr frames = b.alloc(256);             // recursion stack
  const Addr seq = b.alloc(seq_len);            // tree pointers, in order
  const Addr muts = b.alloc(seq_len / mut_every + 1);
  const Addr result = b.alloc(1);

  auto node_addr = [&](usize idx) { return heap + idx * 32; };
  for (usize i = 0; i < arena.size(); ++i) {
    const Node& n = arena[i];
    b.init_word(node_addr(i) + 0, n.tag);
    b.init_word(node_addr(i) + 8,
                n.tag >= kTagAdd ? node_addr(n.left) : 0);
    b.init_word(node_addr(i) + 16,
                n.tag >= kTagAdd ? node_addr(n.right) : 0);
    b.init_word(node_addr(i) + 24, n.value);
  }
  for (usize v = 0; v < 8; ++v) b.init_word(env + v * 8, rng.below(256));

  ZipfDraw pick(n_trees, 1.0, rng.next());
  for (usize s = 0; s < seq_len; ++s) {
    b.init_word(seq + s * 8, node_addr(roots[pick.next()]));
  }
  // Mutation list: absolute rebinds env[var] = val, val from a small
  // cycling set so bindings revisit old values.
  for (usize m = 0; m <= seq_len / mut_every; ++m) {
    const u64 var = rng.below(8);
    const u64 val = 16 * (1 + m % 4);
    b.init_word(muts + m * 8, (val << 3) | var);
  }

  // --- registers -----------------------------------------------------
  constexpr auto kNode = r(4);   // eval() argument
  constexpr auto kRet = r(5);    // eval() result
  constexpr auto kTag = r(6);
  constexpr auto kTmp = r(7);
  constexpr auto kA = r(8);      // left-operand temporary
  constexpr auto kEnvB = r(9);
  constexpr auto kSeqP = r(10);
  constexpr auto kSeqEnd = r(11);
  constexpr auto kCount = r(12);
  constexpr auto kMutP = r(13);
  constexpr auto kResB = r(14);
  constexpr auto kOuter = r(15);
  constexpr auto kSpine = r(16); // never-repeating eval-count spine
  constexpr auto kChk = r(17);   // per-pass result checksum (reusable)
  constexpr auto kSp = isa::kStackReg;
  constexpr auto kLink = isa::kLinkReg;

  b.ldi(kEnvB, static_cast<i64>(env));
  b.ldi(kResB, static_cast<i64>(result));
  // Interpreter bookkeeping spine (GC allocation pointer / eval
  // counter): one dependent 1-cycle op per eval() node, never
  // repeating.
  b.ldi(kSpine, 3);

  Label eval = b.label();
  Label main_top = b.label();
  b.br(main_top);

  // ---- eval(node) -> ret ------------------------------------------------
  b.bind(eval);
  b.addi(kSpine, kSpine, 3);     // eval-count spine (never repeats)
  // Intern-hash chain: three dependent 1-cycle ops per visited node,
  // fed by the (static) node address; serial within a pass, reusable
  // because kChk resets each pass.
  b.add(kChk, kChk, kNode);
  b.srli(kTmp, kChk, 7);
  b.xor_(kChk, kChk, kTmp);
  b.ldq(kTag, kNode, 0);
  {
    Label not_const = b.label();
    b.bnez(kTag, not_const);
    b.ldq(kRet, kNode, 24);     // const: literal value
    b.ret();
    b.bind(not_const);
  }
  {
    Label binop = b.label();
    b.cmpeqi(kTmp, kTag, static_cast<i64>(kTagVar));
    b.beqz(kTmp, binop);
    b.ldq(kTmp, kNode, 24);     // var: env[index]
    b.slli(kTmp, kTmp, 3);
    b.add(kTmp, kTmp, kEnvB);
    b.ldq(kRet, kTmp, 0);
    b.ret();
    b.bind(binop);
  }
  // Binary operator: push {link, node}, recurse on both children.
  b.stq(kLink, kSp, 0);
  b.stq(kNode, kSp, 8);
  b.addi(kSp, kSp, 24);         // frame: link, node, saved-left
  b.ldq(kNode, kNode, 8);       // left child
  b.call(eval);
  b.stq(kRet, kSp, -8);         // save left value
  b.ldq(kNode, kSp, -16);
  b.ldq(kNode, kNode, 16);      // right child
  b.call(eval);
  b.ldq(kA, kSp, -8);           // left value
  b.ldq(kNode, kSp, -16);
  b.ldq(kTag, kNode, 0);
  b.subi(kSp, kSp, 24);
  b.ldq(kLink, kSp, 0);
  {
    Label do_add = b.label();
    Label do_sub = b.label();
    b.cmpeqi(kTmp, kTag, static_cast<i64>(kTagAdd));
    b.bnez(kTmp, do_add);
    b.cmpeqi(kTmp, kTag, static_cast<i64>(kTagSub));
    b.bnez(kTmp, do_sub);
    b.mul(kRet, kA, kRet);      // mul case
    b.ret();
    b.bind(do_add);
    b.add(kRet, kA, kRet);
    b.ret();
    b.bind(do_sub);
    b.sub(kRet, kA, kRet);
    b.ret();
  }

  // ---- main loop ---------------------------------------------------------
  b.bind(main_top);
  detail::OuterLoop outer(b, kOuter);

  b.ldi(kSeqP, static_cast<i64>(seq));
  b.ldi(kSeqEnd, static_cast<i64>(seq + seq_len * 8));
  b.ldi(kMutP, static_cast<i64>(muts));
  b.ldi(kCount, 0);
  b.ldi(kChk, 1);  // per-pass reset: chain values repeat across passes

  Label eval_loop = b.here();
  b.ldi(kSp, static_cast<i64>(frames));  // reset recursion stack
  b.ldq(kNode, kSeqP, 0);
  b.call(eval);
  b.stq(kRet, kResB, 0);

  b.addi(kCount, kCount, 1);
  b.andi(kTmp, kCount, static_cast<i64>(mut_every - 1));
  {
    Label no_mut = b.label();
    b.bnez(kTmp, no_mut);
    b.ldq(kTmp, kMutP, 0);      // packed (val<<3)|var
    b.andi(kA, kTmp, 7);
    b.slli(kA, kA, 3);
    b.add(kA, kA, kEnvB);
    b.srli(kTmp, kTmp, 3);
    b.stq(kTmp, kA, 0);         // env[var] = val
    b.addi(kMutP, kMutP, 8);
    b.bind(no_mut);
  }

  b.addi(kSeqP, kSeqP, 8);
  b.cmpult(kTmp, kSeqP, kSeqEnd);
  b.bnez(kTmp, eval_loop);

  outer.close();

  Workload w;
  w.name = "li";
  w.is_fp = false;
  w.description =
      "recursive expression-tree interpreter: tag dispatch, pointer "
      "chasing, call/return frames, slowly mutating environment";
  w.program = b.build();
  return w;
}

}  // namespace tlr::workloads
