// `fpppp` analog: two-electron integral blocks feeding global
// accumulator chains.
//
// SPECfp95 145.fpppp evaluates enormous straight-line FP blocks per
// atom-pair and folds every block's contributions into running energy
// sums. The pair data is static, so from the second visit onward the
// per-pair block repeats exactly — high instruction-level reusability —
// yet the paper measures essentially *no* speed-up for fpppp (Fig 4a/6a):
// the critical path is the accumulator chains, whose values never
// repeat, and the reusable work hangs off that spine. The accumulates
// are also interleaved throughout the block, so reusable runs (traces)
// stay very short (Fig 7).
//
// Analog structure: for each pair in a static pair list, an unrolled
// ~40-op FP block computes four partial "integrals"; after every
// partial, the value is folded into one of four global energy sums
// (serial FP chains that never repeat).
#include "util/rng.hpp"
#include "vm/builder.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace tlr::workloads {

using isa::f;
using isa::r;
using vm::Label;
using vm::ProgramBuilder;

Workload make_fpppp(const WorkloadParams& params) {
  ProgramBuilder b("fpppp");
  Rng rng(params.seed ^ 0x66707070ULL);

  const usize n_pairs = 320 * params.scale;

  // Static pair table: 6 doubles per pair (exponents, centres, weights).
  const Addr pairs = b.alloc(n_pairs * 6);
  const Addr energies = b.alloc(4);

  detail::init_array_fp(b, pairs, n_pairs * 6,
                        [&](usize) { return rng.uniform(0.1, 1.9); });

  constexpr auto kPtr = r(1);
  constexpr auto kEnd = r(2);
  constexpr auto kTmp = r(3);
  constexpr auto kEnB = r(4);
  constexpr auto kOuter = r(5);

  constexpr auto kA = f(1);
  constexpr auto kB = f(2);
  constexpr auto kC = f(3);
  constexpr auto kD = f(4);
  constexpr auto kE = f(5);
  constexpr auto kW = f(6);
  constexpr auto kT0 = f(7);
  constexpr auto kT1 = f(8);
  constexpr auto kSum0 = f(9);   // the four never-repeating spines
  constexpr auto kSum1 = f(10);
  constexpr auto kSum2 = f(11);
  constexpr auto kSum3 = f(12);
  constexpr auto kDamp = f(13);

  b.ldi(kEnB, static_cast<i64>(energies));
  b.fldi(kSum0, 0.0);
  b.fldi(kSum1, 0.0);
  b.fldi(kSum2, 0.0);
  b.fldi(kSum3, 0.0);
  b.fldi(kDamp, 0.99951171875);  // keeps the sums bounded but moving

  detail::OuterLoop outer(b, kOuter);

  b.ldi(kPtr, static_cast<i64>(pairs));
  b.ldi(kEnd, static_cast<i64>(pairs + n_pairs * 48));

  Label pair_loop = b.here();
  b.ldt(kA, kPtr, 0);
  b.ldt(kB, kPtr, 8);
  b.ldt(kC, kPtr, 16);
  b.ldt(kD, kPtr, 24);
  b.ldt(kE, kPtr, 32);
  b.ldt(kW, kPtr, 40);

  // Partial 1: overlap-like term  s = w / (a + b).
  b.fadd(kT0, kA, kB);
  b.fdiv(kT0, kW, kT0);
  b.fmul(kT1, kT0, kT0);
  b.fadd(kT1, kT1, kC);
  // fold -> sum0 (serial spine, never repeats)
  b.fmul(kSum0, kSum0, kDamp);
  b.fadd(kSum0, kSum0, kT1);

  // Partial 2: kinetic-like term  t = (a*b) / (a+b) * d.
  b.fmul(kT0, kA, kB);
  b.fadd(kT1, kA, kB);
  b.fdiv(kT0, kT0, kT1);
  b.fmul(kT0, kT0, kD);
  b.fmul(kSum1, kSum1, kDamp);
  b.fadd(kSum1, kSum1, kT0);

  // Partial 3: gaussian-product distance term.
  b.fsub(kT0, kC, kD);
  b.fmul(kT0, kT0, kT0);
  b.fmul(kT1, kA, kT0);
  b.fadd(kT1, kT1, kE);
  b.fsqrt(kT1, kT1);
  b.fmul(kSum2, kSum2, kDamp);
  b.fadd(kSum2, kSum2, kT1);

  // Partial 4: weighted repulsion-like term (widened: fpppp's blocks
  // are hundreds of FP ops between accumulator folds).
  b.fmul(kT0, kE, kW);
  b.fadd(kT1, kA, kC);
  b.fdiv(kT0, kT0, kT1);
  b.fmul(kT0, kT0, kB);
  b.fadd(kT0, kT0, kD);
  b.fmul(kT1, kT0, kT0);
  b.fadd(kT1, kT1, kA);
  b.fmul(kT1, kT1, kW);
  b.fsub(kT1, kT1, kC);
  b.fmul(kT0, kT0, kT1);
  b.fadd(kT0, kT0, kE);
  b.fmul(kT1, kB, kD);
  b.fadd(kT1, kT1, kT0);
  b.fmul(kT0, kT1, kW);
  b.fadd(kT0, kT0, kA);
  b.fmul(kSum3, kSum3, kDamp);
  b.fadd(kSum3, kSum3, kT0);

  b.addi(kPtr, kPtr, 48);
  b.cmpult(kTmp, kPtr, kEnd);
  b.bnez(kTmp, pair_loop);

  // Publish the energies once per pass.
  b.stt(kSum0, kEnB, 0);
  b.stt(kSum1, kEnB, 8);
  b.stt(kSum2, kEnB, 16);
  b.stt(kSum3, kEnB, 24);

  outer.close();

  Workload w;
  w.name = "fpppp";
  w.is_fp = true;
  w.description =
      "two-electron integral blocks over a static pair table; four "
      "interleaved serial energy chains defeat reuse on the critical path";
  w.program = b.build();
  return w;
}

}  // namespace tlr::workloads
