// `vortex` analog: an in-memory object database running a transaction
// mix.
//
// SPECint95 147.vortex performs object lookups, integrity checks and
// field updates against memory-resident tables. Reuse is plentiful
// because the key distribution is skewed (hot objects are fetched
// repeatedly between modifications) and the per-object work — hash,
// probe, field copies, checksum validation — is identical whenever the
// object's fields are unchanged. Updates inject fresh values at a
// bounded rate, and updated fields cycle through a small domain, so
// even modified objects eventually revisit earlier states.
//
// Analog structure: 1024 records x 8 fields with a 2048-slot hash
// index; a 2048-transaction stream (92% lookup+validate+copy-out, 8%
// field update with checksum maintenance), Zipf keys, re-run per pass.
#include "util/rng.hpp"
#include "vm/builder.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace tlr::workloads {

using isa::r;
using vm::Label;
using vm::ProgramBuilder;

Workload make_vortex(const WorkloadParams& params) {
  ProgramBuilder b("vortex");
  Rng rng(params.seed ^ 0x766f7274ULL);

  const usize n_records = 1024;
  const usize n_slots = 2048;  // power of two
  const usize n_txns = 2048 * params.scale;
  const i64 slot_mask = static_cast<i64>(n_slots - 1);

  // --- data segment --------------------------------------------------
  const Addr records = b.alloc(n_records * 8);
  const Addr index = b.alloc(n_slots * 2);  // {key+1, record addr}
  const Addr txns = b.alloc(n_txns);
  const Addr outbuf = b.alloc(8);
  const Addr counters = b.alloc(2);

  // Records: key + 6 payload fields + checksum.
  std::vector<u64> payload(n_records * 8, 0);
  for (usize rec = 0; rec < n_records; ++rec) {
    payload[rec * 8 + 0] = rec;  // key == record number
    u64 checksum = 0;
    for (usize fld = 1; fld <= 6; ++fld) {
      const u64 v = rng.below(64);
      payload[rec * 8 + fld] = v;
      checksum += v;
    }
    payload[rec * 8 + 7] = checksum;
    for (usize fld = 0; fld < 8; ++fld) {
      b.init_word(records + (rec * 8 + fld) * 8, payload[rec * 8 + fld]);
    }
  }

  // Hash index built host-side with the same multiplicative hash the
  // guest uses; linear probing.
  {
    std::vector<u64> slots(n_slots * 2, 0);
    for (usize rec = 0; rec < n_records; ++rec) {
      const u64 key = rec;
      u64 h = ((key * 2654435761ULL) >> 21) & static_cast<u64>(slot_mask);
      while (slots[h * 2] != 0) h = (h + 1) & static_cast<u64>(slot_mask);
      slots[h * 2] = key + 1;
      slots[h * 2 + 1] = records + rec * 64;
    }
    for (usize s = 0; s < n_slots * 2; ++s) {
      b.init_word(index + s * 8, slots[s]);
    }
  }

  // Transactions: packed (delta << 18) | (key << 2) | op.
  ZipfDraw keys(n_records, 1.0, rng.next());
  for (usize t = 0; t < n_txns; ++t) {
    const u64 op = rng.chance(8, 100) ? 1 : 0;  // 8% updates
    const u64 key = keys.next();
    const u64 delta = 1 + rng.below(15);
    b.init_word(txns + t * 8, (delta << 18) | (key << 2) | op);
  }

  // --- registers -----------------------------------------------------
  constexpr auto kTxnP = r(1);
  constexpr auto kTxnEnd = r(2);
  constexpr auto kWordV = r(3);   // packed transaction word
  constexpr auto kKey = r(4);
  constexpr auto kHash = r(5);
  constexpr auto kIdxB = r(6);
  constexpr auto kRec = r(7);     // record base address
  constexpr auto kSum = r(8);
  constexpr auto kTmp = r(9);
  constexpr auto kTmp2 = r(10);
  constexpr auto kOutB = r(11);
  constexpr auto kCntB = r(12);
  constexpr auto kF = r(16);      // field temp
  constexpr auto kOuter = r(13);
  constexpr auto kSpine = r(14);  // never-repeating transaction-id spine
  constexpr auto kVer = r(15);    // per-pass audit hash (reusable chain)

  b.ldi(kIdxB, static_cast<i64>(index));
  b.ldi(kOutB, static_cast<i64>(outbuf));
  b.ldi(kCntB, static_cast<i64>(counters));
  // Transaction-id spine: databases stamp every transaction with a
  // monotonically increasing id; one dependent 1-cycle op per txn.
  b.ldi(kSpine, 1);

  detail::OuterLoop outer(b, kOuter);

  b.ldi(kTxnP, static_cast<i64>(txns));
  b.ldi(kTxnEnd, static_cast<i64>(txns + n_txns * 8));
  b.ldi(kVer, 5);  // per-pass reset: audit-chain values repeat

  Label txn_loop = b.here();
  b.ldq(kWordV, kTxnP, 0);
  b.srli(kKey, kWordV, 2);
  b.andi(kKey, kKey, static_cast<i64>(n_records - 1));

  // Probe the index.
  b.muli(kHash, kKey, 2654435761);
  b.srli(kHash, kHash, 21);
  b.andi(kHash, kHash, slot_mask);
  Label probe = b.here();
  b.slli(kTmp, kHash, 4);
  b.add(kTmp, kTmp, kIdxB);
  b.ldq(kTmp2, kTmp, 0);          // stored key+1
  b.addi(kF, kKey, 1);
  b.cmpeq(kF, kTmp2, kF);
  {
    Label found = b.label();
    b.bnez(kF, found);
    b.addi(kHash, kHash, 1);
    b.andi(kHash, kHash, slot_mask);
    b.br(probe);
    b.bind(found);
  }
  b.ldq(kRec, kTmp, 8);           // record base

  b.andi(kTmp, kWordV, 1);
  Label do_update = b.label();
  Label next_txn = b.label();
  b.bnez(kTmp, do_update);

  // ---- lookup: validate checksum, copy fields out --------------------
  b.ldq(kSum, kRec, 8);
  b.ldq(kTmp, kRec, 16);
  b.add(kSum, kSum, kTmp);
  b.ldq(kTmp, kRec, 24);
  b.add(kSum, kSum, kTmp);
  b.ldq(kTmp, kRec, 32);
  b.add(kSum, kSum, kTmp);
  b.ldq(kTmp, kRec, 40);
  b.add(kSum, kSum, kTmp);
  b.ldq(kTmp, kRec, 48);
  b.add(kSum, kSum, kTmp);
  b.ldq(kTmp, kRec, 56);          // stored checksum
  b.cmpeq(kTmp, kSum, kTmp);
  {
    Label valid = b.label();
    b.bnez(kTmp, valid);
    b.stq(kSum, kCntB, 8);        // corruption sink (never reached)
    b.bind(valid);
  }
  // Copy the object out (fixed staging buffer, like vortex's object
  // materialisation).
  b.ldq(kTmp, kRec, 8);
  b.stq(kTmp, kOutB, 0);
  b.ldq(kTmp, kRec, 16);
  b.stq(kTmp, kOutB, 8);
  b.ldq(kTmp, kRec, 24);
  b.stq(kTmp, kOutB, 16);
  b.ldq(kTmp, kRec, 32);
  b.stq(kTmp, kOutB, 24);
  b.ldq(kTmp, kRec, 40);
  b.stq(kTmp, kOutB, 32);
  b.ldq(kTmp, kRec, 48);
  b.stq(kTmp, kOutB, 40);
  b.stq(kSum, kOutB, 48);
  b.br(next_txn);

  // ---- update: mutate one field within a small domain, fix checksum --
  b.bind(do_update);
  b.andi(kTmp, kKey, 3);          // field 1..4
  b.addi(kTmp, kTmp, 1);
  b.slli(kTmp, kTmp, 3);
  b.add(kTmp, kTmp, kRec);        // field address
  b.ldq(kF, kTmp, 0);
  b.srli(kTmp2, kWordV, 18);      // delta
  b.add(kF, kF, kTmp2);
  b.andi(kF, kF, 63);             // bounded domain -> values revisit
  b.stq(kF, kTmp, 0);
  // Recompute the checksum over fields 1..6.
  b.ldq(kSum, kRec, 8);
  b.ldq(kTmp, kRec, 16);
  b.add(kSum, kSum, kTmp);
  b.ldq(kTmp, kRec, 24);
  b.add(kSum, kSum, kTmp);
  b.ldq(kTmp, kRec, 32);
  b.add(kSum, kSum, kTmp);
  b.ldq(kTmp, kRec, 40);
  b.add(kSum, kSum, kTmp);
  b.ldq(kTmp, kRec, 48);
  b.add(kSum, kSum, kTmp);
  b.stq(kSum, kRec, 56);

  b.bind(next_txn);
  // Audit-hash chain: databases fold every transaction into integrity
  // digests. Five dependent 1-cycle ops per transaction, serial across
  // the pass, reusable (resets per pass).
  b.add(kVer, kVer, kKey);
  b.srli(kTmp, kVer, 11);
  b.xor_(kVer, kVer, kTmp);
  b.addi(kVer, kVer, 5);
  b.xori(kVer, kVer, 0x33);
  b.add(kSpine, kSpine, kKey);   // txn-id spine (never repeats)
  b.addi(kSpine, kSpine, 1);     // strictly increasing even for key 0
  b.addi(kTxnP, kTxnP, 8);
  b.cmpult(kTmp, kTxnP, kTxnEnd);
  b.bnez(kTmp, txn_loop);

  outer.close();

  Workload w;
  w.name = "vortex";
  w.is_fp = false;
  w.description =
      "object database transaction mix: hash-index probes, checksum "
      "validation, field copy-out, bounded-domain updates";
  w.program = b.build();
  return w;
}

}  // namespace tlr::workloads
