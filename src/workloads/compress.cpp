// `compress` analog: an LZW-style dictionary compressor.
//
// SPECint95 129.compress repeatedly compresses a buffer; its inner
// loop hashes a (prefix-code, next-char) pair into a dictionary. Two
// properties matter for the reuse study:
//
//  * The paper names compress as one of the two big instruction-level
//    reuse winners (Fig 4a: ~2.5x at infinite window). That requires a
//    *serial, reusable* chain with multi-cycle operations on the
//    critical path: here the prefix-code recurrence threaded through
//    the multiplicative hash (12-cycle multiply) and two dependent
//    table loads. The chain is never reset — the prefix carries across
//    passes, and because the text and dictionary are cyclic its values
//    repeat, so the whole chain is reusable yet serial.
//  * Real compress also advances never-repeating state (input offsets,
//    output byte counts). The `crc` spine models this: two dependent
//    1-cycle ops per character whose values never recur. It bounds
//    trace sizes near the paper's compress trace length and keeps
//    trace-level reuse from collapsing the program to nothing.
//
// The dictionary is pre-converged host-side (we iterate the guest's
// exact insert logic to a fixpoint) so the measured window sees the
// steady state, like the paper's 25M-instruction skip does.
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "vm/builder.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace tlr::workloads {

using isa::r;
using vm::Label;
using vm::ProgramBuilder;

namespace {

constexpr u64 kHashMul = 2654435761ULL;
constexpr unsigned kHashShift = 20;

/// Host-side replica of the guest dictionary probe/insert, iterated
/// until a full pass over the text inserts nothing (fixpoint). The
/// prefix is carried across passes exactly as the guest does.
struct ConvergedDictionary {
  std::vector<u64> slots;  // {key+1, code} pairs, flattened
  u64 next_code;
  u64 final_prefix;  // prefix value at the fixpoint pass boundary
};

ConvergedDictionary converge(const std::vector<u64>& text, usize table_slots) {
  ConvergedDictionary dict;
  dict.slots.assign(table_slots * 2, 0);
  dict.next_code = 32;
  const u64 mask = table_slots - 1;

  u64 prefix = 0;
  for (int pass = 0; pass < 200; ++pass) {
    bool inserted = false;
    for (const u64 c : text) {
      const u64 key = ((prefix & 31) << 5) | c;
      u64 h = ((key * kHashMul) >> kHashShift) & mask;
      for (;;) {
        if (dict.slots[h * 2] == key + 1) {  // hit
          prefix = dict.slots[h * 2 + 1];
          break;
        }
        if (dict.slots[h * 2] == 0) {  // empty: insert
          dict.slots[h * 2] = key + 1;
          dict.slots[h * 2 + 1] = dict.next_code++;
          prefix = c;
          inserted = true;
          break;
        }
        h = (h + 1) & mask;
      }
    }
    if (!inserted) break;
    TLR_ASSERT_MSG(dict.next_code < table_slots / 2,
                   "compress dictionary failed to converge");
  }
  dict.final_prefix = prefix;
  return dict;
}

}  // namespace

Workload make_compress(const WorkloadParams& params) {
  ProgramBuilder b("compress");
  Rng rng(params.seed ^ 0x636f6d70ULL);

  const usize text_chars = 1024 * params.scale;
  const usize table_slots = 4096 * params.scale;  // power of two

  // --- data segment --------------------------------------------------
  const Addr text = b.alloc(text_chars);
  const Addr table = b.alloc(table_slots * 2);  // {key+1, code} pairs
  const Addr out_buf = b.alloc(1);

  // Text from a 32-symbol Zipf alphabet: natural-language-style
  // repetition so (prefix, char) pairs recur.
  ZipfDraw chars(32, 1.2, rng.next());
  std::vector<u64> text_image(text_chars);
  for (u64& c : text_image) c = chars.next();
  detail::init_array(b, text, text_chars,
                     [&](usize i) { return text_image[i]; });

  const ConvergedDictionary dict = converge(text_image, table_slots);
  for (usize s = 0; s < table_slots * 2; ++s) {
    if (dict.slots[s] != 0) b.init_word(table + s * 8, dict.slots[s]);
  }

  // --- registers -----------------------------------------------------
  constexpr auto kPtr = r(1);
  constexpr auto kEnd = r(2);
  constexpr auto kPrefix = r(3);
  constexpr auto kChar = r(4);
  constexpr auto kKey = r(5);
  constexpr auto kHash = r(6);
  constexpr auto kTab = r(7);
  constexpr auto kEntry = r(8);
  constexpr auto kStored = r(9);
  constexpr auto kNextCode = r(10);
  constexpr auto kTmp = r(11);
  constexpr auto kCrc = r(12);   // never-repeating spine
  constexpr auto kOuter = r(13);

  const i64 mask = static_cast<i64>(table_slots - 1);

  b.ldi(kTab, static_cast<i64>(table));
  b.ldi(kNextCode, static_cast<i64>(dict.next_code));
  b.ldi(kPrefix, static_cast<i64>(dict.final_prefix));
  b.ldi(kCrc, 0x9e3779b9);

  detail::OuterLoop outer(b, kOuter);

  // Per-pass cursor reset only; the prefix chain continues across
  // passes (cyclic -> reusable, serial -> on the critical path).
  b.ldi(kPtr, static_cast<i64>(text));
  b.ldi(kEnd, static_cast<i64>(text + text_chars * 8));

  Label scan = b.here();
  b.ldq(kChar, kPtr);               // c = text[p]
  b.andi(kKey, kPrefix, 31);       // bounded context (9-bit model)
  b.slli(kKey, kKey, 5);
  b.or_(kKey, kKey, kChar);         // key = (prefix&31)<<5 | c
  b.muli(kHash, kKey, static_cast<i64>(kHashMul));
  b.srli(kHash, kHash, kHashShift);
  b.andi(kHash, kHash, mask);

  Label probe = b.label();
  Label hit = b.label();
  Label insert = b.label();
  Label advance = b.label();

  b.bind(probe);
  b.slli(kEntry, kHash, 4);         // 16 bytes per slot
  b.add(kEntry, kEntry, kTab);
  b.ldq(kStored, kEntry, 0);        // stored key+1 (0 = empty)
  b.beqz(kStored, insert);
  b.addi(kTmp, kKey, 1);
  b.cmpeq(kTmp, kStored, kTmp);
  b.bnez(kTmp, hit);
  b.addi(kHash, kHash, 1);          // linear probe
  b.andi(kHash, kHash, mask);
  b.br(probe);

  b.bind(hit);
  b.ldq(kPrefix, kEntry, 8);        // prefix = dictionary code
  b.br(advance);

  b.bind(insert);                   // unreachable after convergence,
  b.addi(kTmp, kKey, 1);            // kept for structural fidelity
  b.stq(kTmp, kEntry, 0);
  b.stq(kNextCode, kEntry, 8);
  b.addi(kNextCode, kNextCode, 1);
  b.mov(kPrefix, kChar);

  b.bind(advance);
  // Output-byte-count spine: two dependent 1-cycle ops per character
  // whose values never repeat (monotone mixing).
  b.add(kCrc, kCrc, kPrefix);
  b.xori(kCrc, kCrc, 0x5bd1e995);

  b.addi(kPtr, kPtr, 8);
  b.cmpult(kTmp, kPtr, kEnd);
  b.bnez(kTmp, scan);

  b.ldi(kTmp, static_cast<i64>(out_buf));
  b.stq(kCrc, kTmp, 0);

  outer.close();

  Workload w;
  w.name = "compress";
  w.is_fp = false;
  w.description =
      "LZW-style compressor: serial prefix/hash chain (reusable, "
      "multi-cycle) over Zipf text with a converged dictionary plus a "
      "never-repeating output-count spine";
  w.program = b.build();
  return w;
}

}  // namespace tlr::workloads
