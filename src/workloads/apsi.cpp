// `apsi` analog: mesoscale weather kernel with mixed static/evolving
// fields.
//
// SPECfp95 141.apsi advances temperature/wind fields but spends much of
// its time on quasi-invariant work: vertical coefficient profiles,
// boundary relaxation and diagnostics over fields that change slowly.
// The paper places apsi between applu (always-fresh FP) and the highly
// reusable codes: moderate reusability, short traces.
//
// Analog structure, per timestep:
//   Phase A (evolving, ~1/3 of work): advect a 1-D moisture column with
//     a time-varying inflow -> non-repeating FP.
//   Phase B (quasi-invariant): recompute vertical diffusion
//     coefficients from the static height profile and relax the static
//     boundary ring, with a residual spine every 6 cells keeping
//     reusable runs short.
#include "util/rng.hpp"
#include "vm/builder.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace tlr::workloads {

using isa::f;
using isa::r;
using vm::Label;
using vm::ProgramBuilder;

Workload make_apsi(const WorkloadParams& params) {
  ProgramBuilder b("apsi");
  Rng rng(params.seed ^ 0x61707369ULL);

  const usize column = 128 * params.scale;       // evolving moisture column
  const usize profile = 512 * params.scale;      // static height profile

  const Addr moisture = b.alloc(column + 2);
  const Addr heights = b.alloc(profile + 2);
  const Addr diffusion = b.alloc(profile);
  const Addr inflow_cell = b.alloc(1);

  detail::init_array_fp(b, moisture, column + 2,
                        [&](usize) { return rng.uniform(0.0, 1.0); });
  detail::init_array_fp(b, heights, profile + 2, [&](usize i) {
    return 10.0 + 0.5 * static_cast<double>(i);
  });
  b.init_double(inflow_cell, 0.3);

  constexpr auto kPtr = r(1);
  constexpr auto kEnd = r(2);
  constexpr auto kTmp = r(3);
  constexpr auto kMod = r(4);
  constexpr auto kInB = r(5);
  constexpr auto kOutP = r(6);
  constexpr auto kOuter = r(7);

  constexpr auto kV = f(1);
  constexpr auto kT = f(2);
  constexpr auto kC = f(3);
  constexpr auto kInflow = f(4);
  constexpr auto kHalf = f(5);
  constexpr auto kDrift = f(6);
  constexpr auto kRes = f(7);
  constexpr auto kKappa = f(8);

  b.ldi(kInB, static_cast<i64>(inflow_cell));
  b.fldi(kHalf, 0.5);
  b.fldi(kDrift, 1.00048828125);  // exact binary fraction
  b.fldi(kKappa, 0.875);
  b.fldi(kRes, 1.0);

  detail::OuterLoop outer(b, kOuter);

  // Time-varying inflow: the evolving part of the model state.
  b.ldt(kInflow, kInB, 0);
  b.fmul(kInflow, kInflow, kDrift);
  b.stt(kInflow, kInB, 0);

  // ---- Phase A: upwind advection of the moisture column --------------
  b.ldi(kPtr, static_cast<i64>(moisture + 8));
  b.ldi(kEnd, static_cast<i64>(moisture + (column + 1) * 8));
  Label advect = b.here();
  b.ldt(kV, kPtr, 0);
  b.ldt(kT, kPtr, -8);
  b.fsub(kT, kT, kV);           // upwind difference
  b.fmul(kT, kT, kHalf);
  b.fadd(kV, kV, kT);
  b.fadd(kV, kV, kInflow);      // fresh every step
  b.fmul(kV, kV, kKappa);       // decay keeps values bounded
  b.stt(kV, kPtr, 0);
  b.addi(kPtr, kPtr, 8);
  b.cmpult(kTmp, kPtr, kEnd);
  b.bnez(kTmp, advect);

  // ---- Phase B: static vertical-diffusion coefficients ----------------
  b.ldi(kPtr, static_cast<i64>(heights));
  b.ldi(kOutP, static_cast<i64>(diffusion));
  b.ldi(kEnd, static_cast<i64>(heights + profile * 8));
  b.ldi(kMod, 0);
  Label coeff = b.here();
  b.ldt(kV, kPtr, 0);
  b.ldt(kT, kPtr, 8);
  b.fsub(kC, kT, kV);           // dz
  b.ldt(kT, kPtr, 16);
  b.fadd(kT, kT, kV);
  b.fdiv(kC, kT, kC);           // (z[i+2]+z[i]) / dz
  b.fmul(kC, kC, kHalf);
  b.stt(kC, kOutP, 0);

  // Every 6th cell, fold into the never-repeating residual spine.
  b.addi(kMod, kMod, 1);
  b.cmplti(kTmp, kMod, 6);
  {
    Label skip = b.label();
    b.bnez(kTmp, skip);
    b.ldi(kMod, 0);
    b.fmul(kRes, kRes, kDrift);
    b.fadd(kRes, kRes, kC);
    b.bind(skip);
  }

  b.addi(kPtr, kPtr, 8);
  b.addi(kOutP, kOutP, 8);
  b.cmpult(kTmp, kPtr, kEnd);
  b.bnez(kTmp, coeff);

  outer.close();

  Workload w;
  w.name = "apsi";
  w.is_fp = true;
  w.description =
      "mesoscale kernel: evolving advection column plus quasi-invariant "
      "vertical-coefficient recomputation with a frequent residual spine";
  w.program = b.build();
  return w;
}

}  // namespace tlr::workloads
