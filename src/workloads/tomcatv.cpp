// `tomcatv` analog: mesh relaxation that converges cell-by-cell.
//
// SPECfp95 101.tomcatv iterates a mesh smoother whose corrections
// shrink toward zero; once a region converges its per-sweep work
// repeats exactly. We model convergence with a threshold-gated update:
// a cell whose correction magnitude falls below epsilon stops being
// written, freezing its neighbourhood bit-for-bit, after which every
// instruction touching it is reusable. The initial mesh is
// near-converged with a perturbed band, so within the measured window
// most sweeps run over frozen cells -> high reusability, long traces.
#include "util/rng.hpp"
#include "vm/builder.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace tlr::workloads {

using isa::f;
using isa::r;
using vm::Label;
using vm::ProgramBuilder;

Workload make_tomcatv(const WorkloadParams& params) {
  ProgramBuilder b("tomcatv");
  Rng rng(params.seed ^ 0x746f6d63ULL);

  constexpr usize kSide = 32;
  constexpr i64 kRowB = kSide * 8;

  const Addr mesh = b.alloc(kSide * kSide);
  const Addr resid_cell = b.alloc(1);

  // Near-converged mesh: smooth bilinear surface + a perturbed band of
  // rows that needs a few sweeps to settle.
  for (usize i = 0; i < kSide; ++i) {
    for (usize j = 0; j < kSide; ++j) {
      double v = 1.0 + 0.002 * static_cast<double>(i + j);
      if (i >= 13 && i < 18) v += rng.uniform(-0.02, 0.02);
      b.init_double(mesh + (i * kSide + j) * 8, v);
    }
  }

  constexpr auto kMesh = r(1);
  constexpr auto kCell = r(2);
  constexpr auto kRowEnd = r(3);
  constexpr auto kRow = r(4);
  constexpr auto kTmp = r(5);
  constexpr auto kMod = r(6);
  constexpr auto kOuter = r(7);

  constexpr auto kV = f(1);
  constexpr auto kT = f(2);
  constexpr auto kAvg = f(3);
  constexpr auto kDiff = f(4);
  constexpr auto kQ = f(5);
  constexpr auto kEps = f(6);
  constexpr auto kOmega = f(7);
  constexpr auto kRes = f(8);
  constexpr auto kDrift = f(9);

  b.ldi(kMesh, static_cast<i64>(mesh));
  b.fldi(kQ, 0.25);
  b.fldi(kEps, 1e-4);  // settles the perturbed band within ~10 sweeps
  b.fldi(kOmega, 0.875);
  b.fldi(kRes, 1.0);
  b.fldi(kDrift, 1.000244140625);

  detail::OuterLoop outer(b, kOuter);

  b.ldi(kRow, 1);
  b.ldi(kMod, 0);
  Label row_loop = b.here();
  b.muli(kCell, kRow, kRowB);
  b.add(kCell, kCell, kMesh);
  b.addi(kRowEnd, kCell, kRowB - 8);
  b.addi(kCell, kCell, 8);

  Label cell_loop = b.here();
  b.ldt(kV, kCell, 0);
  b.ldt(kAvg, kCell, -8);
  b.ldt(kT, kCell, 8);
  b.fadd(kAvg, kAvg, kT);
  b.ldt(kT, kCell, -kRowB);
  b.fadd(kAvg, kAvg, kT);
  b.ldt(kT, kCell, kRowB);
  b.fadd(kAvg, kAvg, kT);
  b.fmul(kAvg, kAvg, kQ);
  b.fsub(kDiff, kAvg, kV);
  b.fabs_(kT, kDiff);
  b.fcmplt(kTmp, kEps, kT);     // |diff| > eps ?
  {
    Label frozen = b.label();
    b.beqz(kTmp, frozen);       // converged: no write -> cell freezes
    b.fmul(kDiff, kDiff, kOmega);
    b.fadd(kV, kV, kDiff);
    b.stt(kV, kCell, 0);
    b.bind(frozen);
  }

  // Residual spine every 10 cells keeps traces bounded.
  b.addi(kMod, kMod, 1);
  b.cmplti(kTmp, kMod, 10);
  {
    Label skip = b.label();
    b.bnez(kTmp, skip);
    b.ldi(kMod, 0);
    b.fmul(kRes, kRes, kDrift);
    b.fadd(kRes, kRes, kAvg);
    b.bind(skip);
  }

  b.addi(kCell, kCell, 8);
  b.cmpult(kTmp, kCell, kRowEnd);
  b.bnez(kTmp, cell_loop);

  b.addi(kRow, kRow, 1);
  b.cmplti(kTmp, kRow, static_cast<i64>(kSide - 1));
  b.bnez(kTmp, row_loop);

  b.ldi(kTmp, static_cast<i64>(resid_cell));
  b.stt(kRes, kTmp, 0);

  outer.close();

  Workload w;
  w.name = "tomcatv";
  w.is_fp = true;
  w.description =
      "mesh smoother with threshold-gated updates: cells freeze as they "
      "converge, after which whole rows of work repeat bit-for-bit";
  w.program = b.build();
  return w;
}

}  // namespace tlr::workloads
