// `gcc` analog: a table-driven expression parser / constant folder.
//
// SPECint95 126.gcc is dominated by token dispatch over big switch
// statements, symbol-table probing, and short, branchy handler bodies
// made of 1-cycle ALU ops. Its instruction-level reusability is high
// (most tokens and symbols recur) yet ILR barely speeds it up (paper
// Fig 4a: ~1.1x) because the critical path consists of 1-cycle
// operations — a 1-cycle reuse cannot shorten them.
//
// Analog structure: a token stream generated from a tiny expression
// grammar is parsed repeatedly. Dispatch goes through an indirect jump
// table (like a compiled switch); handlers manipulate an explicit value
// stack and probe a persistent symbol table that is populated by DECL
// tokens during the first pass.
#include <array>
#include <vector>

#include "util/rng.hpp"
#include "vm/builder.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace tlr::workloads {

using isa::r;
using vm::Label;
using vm::ProgramBuilder;

namespace {

enum TokenKind : u64 {
  kIdent = 0,
  kNumber,
  kPlus,
  kMinus,
  kStar,
  kLParen,
  kRParen,
  kSemi,
  kDecl,
  kIf,
  kAssign,
  kComma,
  kNumKinds,
};

struct Token {
  u64 kind;
  u64 arg;
};

/// Recursive-descent generator for a valid token stream: a sequence of
/// `DECL*` then statements `expr ;` with optional leading `IF`.
class TokenGen {
 public:
  TokenGen(Rng& rng, usize symbols) : rng_(rng), symbols_(symbols) {}

  std::vector<Token> generate(usize approx_tokens) {
    for (usize s = 0; s < symbols_; ++s) {
      out_.push_back({kDecl, s});
    }
    while (out_.size() < approx_tokens) {
      if (rng_.chance(1, 8)) out_.push_back({kIf, 0});
      expr(/*depth=*/0);
      if (rng_.chance(1, 6)) {
        out_.push_back({kAssign, rng_.below(symbols_)});
      }
      out_.push_back({kSemi, 0});
    }
    return std::move(out_);
  }

 private:
  void expr(int depth) {
    term(depth);
    const usize ops = rng_.below(3);
    for (usize i = 0; i < ops; ++i) {
      static constexpr u64 kOps[3] = {kPlus, kMinus, kStar};
      out_.push_back({kOps[rng_.below(3)], 0});
      term(depth);
    }
  }

  void term(int depth) {
    if (depth < 2 && rng_.chance(1, 5)) {
      out_.push_back({kLParen, 0});
      expr(depth + 1);
      out_.push_back({kRParen, 0});
    } else if (rng_.chance(1, 2)) {
      // Identifiers drawn with Zipf skew: hot symbols recur, like the
      // handful of hot tree codes / registers inside gcc.
      out_.push_back({kIdent, zipf_symbol()});
    } else {
      out_.push_back({kNumber, rng_.below(64)});
    }
  }

  u64 zipf_symbol() {
    // Inline 2-level skew: 75% of draws from the 8 hottest symbols.
    if (rng_.chance(3, 4)) return rng_.below(8);
    return rng_.below(symbols_);
  }

  Rng& rng_;
  usize symbols_;
  std::vector<Token> out_;
};

}  // namespace

Workload make_gcc(const WorkloadParams& params) {
  ProgramBuilder b("gcc");
  Rng rng(params.seed ^ 0x67636300ULL);

  const usize n_symbols = 96 * params.scale;
  const usize approx_tokens = 1600 * params.scale;
  const usize table_slots = 512 * params.scale;  // power of two
  const i64 table_mask = static_cast<i64>(table_slots - 1);

  TokenGen gen(rng, n_symbols);
  const std::vector<Token> tokens = gen.generate(approx_tokens);

  // --- data segment --------------------------------------------------
  const Addr stream = b.alloc(tokens.size() * 2);  // {kind, arg} pairs
  const Addr jump_table = b.alloc(kNumKinds);
  const Addr symtab = b.alloc(table_slots * 2);    // {key+1, value}
  const Addr vstack = b.alloc(64);                 // expression stack
  const Addr results = b.alloc(16);                // per-statement sinks

  for (usize i = 0; i < tokens.size(); ++i) {
    b.init_word(stream + i * 16, tokens[i].kind);
    b.init_word(stream + i * 16 + 8, tokens[i].arg);
  }

  // --- registers -----------------------------------------------------
  constexpr auto kPtr = r(1);
  constexpr auto kEnd = r(2);
  constexpr auto kKind = r(3);
  constexpr auto kArg = r(4);
  constexpr auto kSp = r(5);     // value-stack pointer (grows upward)
  constexpr auto kBase = r(6);   // value-stack base
  constexpr auto kTab = r(7);
  constexpr auto kJt = r(8);
  constexpr auto kTarget = r(9);
  constexpr auto kA = r(10);
  constexpr auto kB = r(11);
  constexpr auto kTmp = r(12);
  constexpr auto kFlag = r(13);  // IF condition flag
  constexpr auto kRes = r(14);   // results base
  constexpr auto kOuter = r(15);
  constexpr auto kSpine = r(16); // never-repeating line/position spine
  constexpr auto kCheck = r(17); // per-pass tree checksum (reusable chain)

  b.ldi(kTab, static_cast<i64>(symtab));
  b.ldi(kJt, static_cast<i64>(jump_table));
  b.ldi(kBase, static_cast<i64>(vstack));
  b.ldi(kRes, static_cast<i64>(results));
  // Source-position spine: compilers thread line/column counters and
  // allocation pointers through everything; one dependent 1-cycle op
  // per token, never repeating.
  b.ldi(kSpine, 0x12345);

  detail::OuterLoop outer(b, kOuter);

  b.ldi(kPtr, static_cast<i64>(stream));
  b.ldi(kEnd, static_cast<i64>(stream + tokens.size() * 16));
  b.mov(kSp, kBase);
  b.ldi(kFlag, 0);
  b.ldi(kCheck, 7);  // per-pass reset: the chain's values repeat

  Label dispatch = b.here();
  b.ldq(kKind, kPtr, 0);
  b.ldq(kArg, kPtr, 8);
  b.slli(kTmp, kKind, 3);
  b.add(kTmp, kTmp, kJt);
  b.ldq(kTarget, kTmp, 0);
  b.jmp(kTarget);

  Label advance = b.label();

  // Handler bodies. Each records its entry PC for the jump table.
  std::array<isa::Pc, kNumKinds> handler_pc{};

  // A guarded pop: if the stack is empty, reuses the top-of-stack slot
  // anyway (reads whatever is there) — keeps the stream safe under any
  // token order while staying branch-light.
  auto pop_into = [&](isa::Reg dst) {
    b.cmpult(kTmp, kBase, kSp);   // sp > base ?
    Label ok = b.label();
    Label done = b.label();
    b.bnez(kTmp, ok);
    b.ldq(dst, kBase, 0);         // underflow: read base slot
    b.br(done);
    b.bind(ok);
    b.subi(kSp, kSp, 8);
    b.ldq(dst, kSp, 0);
    b.bind(done);
  };
  auto push_from = [&](isa::Reg src) {
    b.stq(src, kSp, 0);
    b.addi(kSp, kSp, 8);
  };

  // IDENT: probe symbol table; hit -> push bound value, miss -> arg.
  handler_pc[kIdent] = b.pc();
  b.muli(kTmp, kArg, 40503);       // Fibonacci-style hash
  b.srli(kTmp, kTmp, 7);
  b.andi(kTmp, kTmp, table_mask);
  b.slli(kTmp, kTmp, 4);
  b.add(kTmp, kTmp, kTab);
  b.ldq(kA, kTmp, 0);              // stored key+1
  b.addi(kB, kArg, 1);
  b.cmpeq(kB, kA, kB);
  {
    Label miss = b.label();
    Label done = b.label();
    b.beqz(kB, miss);
    b.ldq(kA, kTmp, 8);            // bound value
    b.br(done);
    b.bind(miss);
    b.mov(kA, kArg);
    b.bind(done);
  }
  push_from(kA);
  b.br(advance);

  // NUMBER: push the literal.
  handler_pc[kNumber] = b.pc();
  push_from(kArg);
  b.br(advance);

  // PLUS / MINUS / STAR: binary fold on the stack.
  handler_pc[kPlus] = b.pc();
  pop_into(kB);
  pop_into(kA);
  b.add(kA, kA, kB);
  push_from(kA);
  b.br(advance);

  handler_pc[kMinus] = b.pc();
  pop_into(kB);
  pop_into(kA);
  b.sub(kA, kA, kB);
  push_from(kA);
  b.br(advance);

  handler_pc[kStar] = b.pc();
  pop_into(kB);
  pop_into(kA);
  b.mul(kA, kA, kB);
  push_from(kA);
  b.br(advance);

  // LPAREN / RPAREN: bracket bookkeeping (kept cheap, like real
  // parsers' paren depth tracking).
  handler_pc[kLParen] = b.pc();
  b.addi(kFlag, kFlag, 2);
  b.br(advance);

  handler_pc[kRParen] = b.pc();
  b.subi(kFlag, kFlag, 2);
  b.br(advance);

  // SEMI: sink the statement value, reset the stack.
  handler_pc[kSemi] = b.pc();
  pop_into(kA);
  b.andi(kTmp, kA, 15);
  b.slli(kTmp, kTmp, 3);
  b.add(kTmp, kTmp, kRes);
  b.stq(kA, kTmp, 0);              // results[value & 15] = value
  b.mov(kSp, kBase);
  b.ldi(kFlag, 0);
  b.br(advance);

  // DECL: insert/update the symbol table (first pass populates; later
  // passes rewrite the identical binding, so even these stores reuse).
  handler_pc[kDecl] = b.pc();
  b.muli(kTmp, kArg, 40503);
  b.srli(kTmp, kTmp, 7);
  b.andi(kTmp, kTmp, table_mask);
  b.slli(kTmp, kTmp, 4);
  b.add(kTmp, kTmp, kTab);
  b.addi(kA, kArg, 1);
  b.stq(kA, kTmp, 0);
  b.muli(kA, kArg, 11);
  b.andi(kA, kA, 1023);
  b.stq(kA, kTmp, 8);
  b.br(advance);

  // IF: set the condition flag from the last statement value.
  handler_pc[kIf] = b.pc();
  b.ldq(kA, kRes, 0);
  b.cmplti(kFlag, kA, 512);
  b.br(advance);

  // ASSIGN: rebind symbol `arg` to the current top of stack.
  handler_pc[kAssign] = b.pc();
  pop_into(kA);
  push_from(kA);                   // non-destructive peek
  b.muli(kTmp, kArg, 40503);
  b.srli(kTmp, kTmp, 7);
  b.andi(kTmp, kTmp, table_mask);
  b.slli(kTmp, kTmp, 4);
  b.add(kTmp, kTmp, kTab);
  b.andi(kA, kA, 1023);            // clamp so rebinding converges
  b.stq(kA, kTmp, 8);
  b.br(advance);

  // COMMA: no-op separator.
  handler_pc[kComma] = b.pc();
  b.br(advance);

  b.bind(advance);
  // Tree-checksum chain: real compilers hash every construct they
  // build. Three dependent 1-cycle ops per token, serial across the
  // pass and fully reusable (it resets each pass). Instruction-level
  // reuse cannot shorten 1-cycle ops (paper 4.3), but a reused trace
  // delivers the whole run in one operation — this chain is what
  // separates Fig 5a from Fig 6b.
  b.add(kCheck, kCheck, kArg);
  b.xori(kCheck, kCheck, 0x2d);
  b.add(kSpine, kSpine, kKind);  // position spine (never repeats)
  b.addi(kPtr, kPtr, 16);
  b.cmpult(kTmp, kPtr, kEnd);
  b.bnez(kTmp, dispatch);

  outer.close();

  for (usize k = 0; k < kNumKinds; ++k) {
    b.init_word(jump_table + k * 8, handler_pc[k]);
  }

  Workload w;
  w.name = "gcc";
  w.is_fp = false;
  w.description =
      "table-driven expression parser: indirect-jump token dispatch, "
      "symbol-table probes, short 1-cycle handler bodies";
  w.program = b.build();
  return w;
}

}  // namespace tlr::workloads
