// `hydro2d` analog: Navier-Stokes-style relaxation over a mostly
// quiescent 2-D field.
//
// SPECfp95 104.hydro2d is the paper's *most* reusable program (Fig 3:
// ~99%) with by far the largest traces (Fig 7: ~203 instructions): the
// hydrodynamic field is quiescent over most of the domain, so entire
// rows of stencil updates repeat bit-for-bit every sweep.
//
// Analog structure: a 16x48 field, uniform (value C) everywhere except
// a 1-row active channel isolated by fixed internal boundary strips
// (so the disturbance cannot diffuse into the quiescent region — the
// average of four C's is exactly C in IEEE arithmetic, keeping the
// background bitwise frozen). A residual spine every 24 quiet cells
// bounds the reusable runs at roughly the paper's 200-instruction
// hydro2d trace scale.
#include "util/rng.hpp"
#include "vm/builder.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace tlr::workloads {

using isa::f;
using isa::r;
using vm::Label;
using vm::ProgramBuilder;

Workload make_hydro2d(const WorkloadParams& params) {
  ProgramBuilder b("hydro2d");
  Rng rng(params.seed ^ 0x68796472ULL);

  // Tall, narrow domain: many short rows keep one sweep small, so the
  // measured window covers ~30 sweeps and the cold (first-sweep) cost
  // of the infinite history table stays negligible, as it does for the
  // paper's 50M-instruction windows.
  constexpr usize kWidth = 16;   // cells per row
  constexpr usize kHeight = 48;  // rows
  constexpr i64 kRowB = kWidth * 8;
  // Active channel row and its isolating boundary strips.
  constexpr u64 kBoundLo = 23, kActive0 = 24, kBoundHi = 25;

  const Addr grid = b.alloc(kWidth * kHeight);
  const Addr inflow_cell = b.alloc(1);
  const Addr residual_cell = b.alloc(1);

  for (usize i = 0; i < kHeight; ++i) {
    for (usize j = 0; j < kWidth; ++j) {
      const bool active = i == kActive0;
      const double v = active ? rng.uniform(0.8, 1.2) : 1.0;
      b.init_double(grid + (i * kWidth + j) * 8, v);
    }
  }
  b.init_double(inflow_cell, 0.01);

  constexpr auto kGrid = r(1);
  constexpr auto kCell = r(2);
  constexpr auto kRowEnd = r(3);
  constexpr auto kRow = r(4);
  constexpr auto kTmp = r(5);
  constexpr auto kMod = r(6);
  constexpr auto kInB = r(7);
  constexpr auto kOuter = r(8);

  constexpr auto kV = f(1);
  constexpr auto kT = f(2);
  constexpr auto kQ = f(3);      // quarter constant
  constexpr auto kInflow = f(4);
  constexpr auto kRes = f(5);

  b.ldi(kGrid, static_cast<i64>(grid));
  b.ldi(kInB, static_cast<i64>(inflow_cell));
  b.fldi(kQ, 0.25);
  b.fldi(kRes, 1.0);

  detail::OuterLoop outer(b, kOuter);

  // Advance the channel forcing (the only evolving model input).
  b.ldt(kInflow, kInB, 0);
  b.fldi(kT, 1.000244140625);
  b.fmul(kInflow, kInflow, kT);
  b.stt(kInflow, kInB, 0);

  b.ldi(kRow, 1);
  b.ldi(kMod, 0);
  Label row_loop = b.here();

  // Skip the fixed internal boundary strips.
  Label next_row = b.label();
  b.cmpeqi(kTmp, kRow, static_cast<i64>(kBoundLo));
  b.bnez(kTmp, next_row);
  b.cmpeqi(kTmp, kRow, static_cast<i64>(kBoundHi));
  b.bnez(kTmp, next_row);

  // kCell = &grid[row][1], kRowEnd = &grid[row][kSide-1].
  b.muli(kCell, kRow, kRowB);
  b.add(kCell, kCell, kGrid);
  b.addi(kRowEnd, kCell, kRowB - 8);
  b.addi(kCell, kCell, 8);

  // Is this the active-channel row? (decides which update runs)
  b.cmpeqi(kTmp, kRow, static_cast<i64>(kActive0));
  {
    Label quiet = b.label();
    b.beqz(kTmp, quiet);

    // ---- active channel: jacobi + evolving forcing -------------------
    Label active_cell = b.here();
    b.ldt(kV, kCell, -8);
    b.ldt(kT, kCell, 8);
    b.fadd(kV, kV, kT);
    b.ldt(kT, kCell, -kRowB);
    b.fadd(kV, kV, kT);
    b.ldt(kT, kCell, kRowB);
    b.fadd(kV, kV, kT);
    b.fmul(kV, kV, kQ);
    b.fadd(kV, kV, kInflow);    // fresh every sweep
    b.stt(kV, kCell, 0);
    b.addi(kCell, kCell, 8);
    b.cmpult(kTmp, kCell, kRowEnd);
    b.bnez(kTmp, active_cell);
    b.br(next_row);

    // ---- quiescent bulk: avg of four equal values == the value -------
    b.bind(quiet);
  }
  Label quiet_cell = b.here();
  b.ldt(kV, kCell, -8);
  b.ldt(kT, kCell, 8);
  b.fadd(kV, kV, kT);
  b.ldt(kT, kCell, -kRowB);
  b.fadd(kV, kV, kT);
  b.ldt(kT, kCell, kRowB);
  b.fadd(kV, kV, kT);
  b.fmul(kV, kV, kQ);
  b.stt(kV, kCell, 0);

  // Residual spine every 12 cells: kRes grows by ~1.0 each fold, so
  // its value never repeats; one 4-cycle op bounds the reusable runs
  // at the paper's ~200-instruction hydro2d trace scale.
  b.addi(kMod, kMod, 1);
  b.cmplti(kTmp, kMod, 24);
  {
    Label skip = b.label();
    b.bnez(kTmp, skip);
    b.ldi(kMod, 0);
    b.fadd(kRes, kRes, kV);
    b.bind(skip);
  }

  b.addi(kCell, kCell, 8);
  b.cmpult(kTmp, kCell, kRowEnd);
  b.bnez(kTmp, quiet_cell);

  b.bind(next_row);
  b.addi(kRow, kRow, 1);
  b.cmplti(kTmp, kRow, static_cast<i64>(kHeight - 1));
  b.bnez(kTmp, row_loop);

  // Publish the residual once per sweep.
  b.ldi(kTmp, static_cast<i64>(residual_cell));
  b.stt(kRes, kTmp, 0);

  outer.close();

  Workload w;
  w.name = "hydro2d";
  w.is_fp = true;
  w.description =
      "2-D relaxation: bitwise-frozen quiescent bulk with an isolated "
      "1-row active channel; reusable runs of hundreds of instructions";
  w.program = b.build();
  return w;
}

}  // namespace tlr::workloads
