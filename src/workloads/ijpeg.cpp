// `ijpeg` analog: blockwise integer DCT-style image transform.
//
// SPECint95 132.ijpeg spends its time in 8x8 block transforms whose
// *register-resident arithmetic* repeats heavily: synthetic and
// graphic images contain many identical blocks (flat regions, repeated
// texture), so the butterfly/multiply networks see the same operand
// values over and over even though each block sits at a different
// address. Blocks are also independent (no accumulator threads them),
// which is exactly the situation where trace-level reuse shines — the
// paper reports its largest trace-reuse speed-up (≈11.6x at infinite
// window) for ijpeg.
//
// Analog structure: the image is a sequence of 8-element rows drawn
// from a small palette of row patterns (flat regions repeat rows).
// Per row: 8 loads, then a 3-stage integer butterfly + constant-
// multiply network (~40 register-only ops), then 8 stores to the
// output plane. Loads/stores differ per row address; the arithmetic
// between them matches whenever the row pattern recurs.
#include "util/rng.hpp"
#include "vm/builder.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace tlr::workloads {

using isa::r;
using vm::Label;
using vm::ProgramBuilder;

Workload make_ijpeg(const WorkloadParams& params) {
  ProgramBuilder b("ijpeg");
  Rng rng(params.seed ^ 0x6a706567ULL);

  const usize n_rows = 384 * params.scale;  // 8 pixels each
  const usize palette = 24;                 // distinct row patterns

  // --- data segment --------------------------------------------------
  const Addr image = b.alloc(n_rows * 8);
  const Addr output = b.alloc(n_rows * 8);

  // Palette of row patterns; Zipf choice so flat/common rows dominate.
  u64 patterns[24][8];
  for (auto& row : patterns) {
    for (u64& px : row) px = rng.below(256);
  }
  ZipfDraw pick(palette, 1.1, rng.next());
  for (usize row = 0; row < n_rows; ++row) {
    const u64* pat = patterns[pick.next()];
    for (usize x = 0; x < 8; ++x) {
      b.init_word(image + (row * 8 + x) * 8, pat[x]);
    }
  }

  // --- registers -----------------------------------------------------
  // p0..p7 hold the row; the butterfly network works in place.
  constexpr auto kP0 = r(1);
  constexpr auto kP1 = r(2);
  constexpr auto kP2 = r(3);
  constexpr auto kP3 = r(4);
  constexpr auto kP4 = r(5);
  constexpr auto kP5 = r(6);
  constexpr auto kP6 = r(7);
  constexpr auto kP7 = r(8);
  constexpr auto kT0 = r(9);
  constexpr auto kT1 = r(10);
  constexpr auto kIn = r(11);    // input cursor
  constexpr auto kOut = r(12);   // output cursor
  constexpr auto kEnd = r(13);
  constexpr auto kOuter = r(14);
  constexpr auto kFeed = r(15);  // cross-row DC-predictor feedback
  constexpr auto kSpine = r(16); // never-repeating output-size spine

  // The predictor feedback makes consecutive rows *serially dependent*
  // through the full butterfly depth (like JPEG's DC prediction): the
  // base machine must walk ~35 cycles of adds/multiplies per row, while
  // a reused trace delivers the whole row in one reuse operation — this
  // is the mechanism behind ijpeg's outlier trace-level speed-up
  // (paper Fig 6a: 11.57x). The feedback is masked to 3 bits so its
  // orbit across passes is short and its values repeat (reusable).
  b.ldi(kFeed, 0);
  b.ldi(kSpine, 0x1234567);

  detail::OuterLoop outer(b, kOuter);

  b.ldi(kIn, static_cast<i64>(image));
  b.ldi(kOut, static_cast<i64>(output));
  b.ldi(kEnd, static_cast<i64>(image + n_rows * 64));

  Label row_loop = b.here();
  b.ldq(kP0, kIn, 0);
  b.ldq(kP1, kIn, 8);
  b.ldq(kP2, kIn, 16);
  b.ldq(kP3, kIn, 24);
  b.ldq(kP4, kIn, 32);
  b.ldq(kP5, kIn, 40);
  b.ldq(kP6, kIn, 48);
  b.ldq(kP7, kIn, 56);
  b.add(kP0, kP0, kFeed);    // DC-predictor feedback (serial chain)

  // Stage 1: butterflies (a+b, a-b) — the classic even/odd split.
  b.add(kT0, kP0, kP7);
  b.sub(kP7, kP0, kP7);
  b.mov(kP0, kT0);
  b.add(kT0, kP1, kP6);
  b.sub(kP6, kP1, kP6);
  b.mov(kP1, kT0);
  b.add(kT0, kP2, kP5);
  b.sub(kP5, kP2, kP5);
  b.mov(kP2, kT0);
  b.add(kT0, kP3, kP4);
  b.sub(kP4, kP3, kP4);
  b.mov(kP3, kT0);

  // Stage 2: even part (p0..p3), fixed-point constant rotations.
  b.add(kT0, kP0, kP3);
  b.sub(kP3, kP0, kP3);
  b.mov(kP0, kT0);
  b.add(kT0, kP1, kP2);
  b.sub(kP2, kP1, kP2);
  b.mov(kP1, kT0);
  b.muli(kT0, kP2, 277);     // ~ c4 in Q9 fixed point
  b.muli(kT1, kP3, 669);     // ~ c2
  b.add(kP2, kT0, kT1);
  b.srai(kP2, kP2, 9);
  b.muli(kT0, kP3, 277);
  b.muli(kT1, kP1, 669);
  b.sub(kP3, kT0, kT1);
  b.srai(kP3, kP3, 9);

  // Stage 3: odd part (p4..p7).
  b.muli(kT0, kP4, 362);
  b.muli(kT1, kP7, 196);
  b.add(kP4, kT0, kT1);
  b.srai(kP4, kP4, 9);
  b.muli(kT0, kP5, 473);
  b.muli(kT1, kP6, 97);
  b.sub(kP5, kT0, kT1);
  b.srai(kP5, kP5, 9);
  b.add(kT0, kP6, kP5);
  b.sub(kP6, kP6, kP5);
  b.mov(kP5, kT0);
  b.add(kT0, kP7, kP4);
  b.sub(kP7, kP7, kP4);
  b.mov(kP4, kT0);

  // Quantise (shift) and emit coefficients.
  b.srai(kP0, kP0, 3);
  b.srai(kP1, kP1, 3);
  b.stq(kP0, kOut, 0);
  b.stq(kP1, kOut, 8);
  b.stq(kP2, kOut, 16);
  b.stq(kP3, kOut, 24);
  b.stq(kP4, kOut, 32);
  b.stq(kP5, kOut, 40);
  b.stq(kP6, kOut, 48);
  b.stq(kP7, kOut, 56);

  // Next row's predictor: derived from this row's deepest output, so
  // the inter-row chain runs through the whole transform.
  b.andi(kFeed, kP2, 7);
  // End-of-row spine fold.
  b.add(kSpine, kSpine, kP4);
  b.xori(kSpine, kSpine, 0x2545f491);

  b.addi(kIn, kIn, 64);
  b.addi(kOut, kOut, 64);
  b.cmpult(kT0, kIn, kEnd);
  b.bnez(kT0, row_loop);

  outer.close();

  Workload w;
  w.name = "ijpeg";
  w.is_fp = false;
  w.description =
      "integer 8-point DCT butterfly network over an image whose rows "
      "come from a small pattern palette (flat regions repeat)";
  w.program = b.build();
  return w;
}

}  // namespace tlr::workloads
