// TLC source workloads: the bridge between the compiled frontend
// (src/lang) and the name-keyed workload factory everything else —
// StudyEngine, the shard planner, the figure tooling — is built on.
// A registered source behaves exactly like a fifteenth analog.
#include <map>
#include <mutex>
#include <utility>

#include "lang/compile.hpp"
#include "workloads/workload.hpp"

namespace tlr::workloads {

namespace {

struct SourceRegistry {
  std::mutex mutex;
  std::map<std::string, std::string, std::less<>> sources;
  std::vector<std::string> order;
};

SourceRegistry& registry() {
  static SourceRegistry instance;
  return instance;
}

bool is_builtin(std::string_view name) {
  for (std::string_view builtin : workload_names()) {
    if (builtin == name) return true;
  }
  return false;
}

}  // namespace

std::optional<Workload> make_from_source(std::string_view name,
                                         std::string_view source,
                                         const WorkloadParams& params,
                                         std::string* error) {
  lang::ParseParams parse_params;
  parse_params.seed = params.seed;
  parse_params.scale = params.scale;
  lang::CompileOptions options;
  options.name = std::string(name);
  options.stream = true;
  lang::Diag diag;
  std::optional<lang::CompiledProgram> compiled =
      lang::compile_source(source, parse_params, options, &diag);
  if (!compiled.has_value()) {
    if (error != nullptr) *error = diag.to_string(std::string(name));
    return std::nullopt;
  }
  Workload workload;
  workload.name = std::string(name);
  workload.is_fp = false;  // TLC is integer-only
  workload.description = "TLC source workload (docs/tlc.md)";
  workload.program = std::move(compiled->program);
  return workload;
}

bool register_source(std::string_view name, std::string_view source,
                     std::string* error) {
  if (is_builtin(name)) {
    if (error != nullptr) {
      *error = std::string(name) + ": name collides with a built-in analog";
    }
    return false;
  }
  // Compile-check up front so later make_workload calls cannot fail.
  if (!make_from_source(name, source, {}, error).has_value()) return false;
  SourceRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  if (reg.sources.count(std::string(name)) != 0) {
    if (error != nullptr) {
      *error = std::string(name) + ": source already registered";
    }
    return false;
  }
  reg.sources.emplace(std::string(name), std::string(source));
  reg.order.emplace_back(name);
  return true;
}

std::vector<std::string> registered_source_names() {
  SourceRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.order;
}

bool is_known_workload(std::string_view name) {
  if (is_builtin(name)) return true;
  SourceRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.sources.find(name) != reg.sources.end();
}

void clear_registered_sources() {
  SourceRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.sources.clear();
  reg.order.clear();
}

namespace detail {

// Called by make_workload when no built-in matches.
std::optional<Workload> make_registered(std::string_view name,
                                        const WorkloadParams& params) {
  std::string source;
  {
    SourceRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = reg.sources.find(name);
    if (it == reg.sources.end()) return std::nullopt;
    source = it->second;
  }
  // Registration validated the default-params compile; other params
  // only rebind SEED/SCALE, which cannot introduce parse errors...
  // except through SCALE-dependent array sizes, so keep the error path.
  std::string error;
  return make_from_source(name, source, params, &error);
}

}  // namespace detail

}  // namespace tlr::workloads
