// `applu` analog: SSOR-style sweeps over an always-evolving 3D field.
//
// SPECfp95 110.applu is the paper's *least* reusable program (Fig 3:
// ~53%): its solver keeps refining the solution, so the FP values seen
// by each sweep are fresh every time. What remains reusable is the
// integer scaffolding (index arithmetic, loop control) and the metric/
// coefficient computations over the static grid geometry. Its traces
// are tiny (Fig 7) and its speed-ups small but nonzero (Figs 5/6):
// reuse frees fetch/window resources for the evolving FP work even
// though it cannot shorten it.
//
// Analog structure, per sweep:
//   Phase A (evolving): ping-pong Jacobi update of a 10x10x5 field
//     with a per-sweep time-varying source term -> FP work never
//     repeats (but carries no long serial chain: the window, not the
//     dataflow, limits it).
//   Phase B (static metrics): recompute flux coefficients from the
//     static coordinate array -> repeats exactly from sweep 2, broken
//     into short runs by a multiplicative residual accumulator.
#include "util/rng.hpp"
#include "vm/builder.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace tlr::workloads {

using isa::f;
using isa::r;
using vm::Label;
using vm::ProgramBuilder;

Workload make_applu(const WorkloadParams& params) {
  ProgramBuilder b("applu");
  Rng rng(params.seed ^ 0x6170706cULL);

  constexpr usize kNx = 10, kNy = 10, kNz = 5;
  constexpr usize kCells = kNx * kNy * kNz;
  const usize metric_cells = 420 * params.scale;

  // --- data segment --------------------------------------------------
  const Addr field_a = b.alloc(kCells);
  const Addr field_b = b.alloc(kCells);
  const Addr coords = b.alloc(metric_cells + 2);  // static geometry
  const Addr coeffs = b.alloc(metric_cells);      // metric outputs
  const Addr time_cell = b.alloc(2);              // evolving source term

  detail::init_array_fp(b, field_a, kCells,
                        [&](usize) { return rng.uniform(0.5, 2.0); });
  detail::init_array_fp(b, field_b, kCells,
                        [&](usize) { return rng.uniform(0.5, 2.0); });
  detail::init_array_fp(b, coords, metric_cells + 2,
                        [&](usize i) { return 0.25 + 0.001 * double(i); });
  b.init_double(time_cell, 1.0);

  // --- registers -----------------------------------------------------
  constexpr auto kOff = r(1);    // byte offset of the current cell
  constexpr auto kEnd = r(2);
  constexpr auto kTmp = r(3);
  constexpr auto kOuter = r(4);
  constexpr auto kTimeB = r(5);
  constexpr auto kCoefP = r(6);
  constexpr auto kCrdP = r(7);
  constexpr auto kMod = r(8);    // cells-since-last-residual counter
  constexpr auto kSrcB = r(9);   // ping-pong source buffer base
  constexpr auto kDstB = r(10);  // ping-pong destination buffer base
  constexpr auto kAddr = r(11);

  constexpr auto kV = f(1);      // centre value
  constexpr auto kSum = f(2);
  constexpr auto kT = f(3);
  constexpr auto kOmega = f(4);
  constexpr auto kSrc = f(5);    // per-sweep source term
  constexpr auto kSix = f(6);
  constexpr auto kRes = f(7);    // multiplicative residual accumulator
  constexpr auto kDrift = f(8);

  constexpr i64 kRowB = kNx * 8;           // +/- y neighbour
  constexpr i64 kPlaneB = kNx * kNy * 8;   // +/- z neighbour

  b.ldi(kTimeB, static_cast<i64>(time_cell));
  b.fldi(kOmega, 0.121);
  b.fldi(kSix, 6.0);
  b.fldi(kDrift, 1.0009765625);  // exactly representable drift factor
  b.fldi(kRes, 1.0);
  b.ldi(kSrcB, static_cast<i64>(field_a));
  b.ldi(kDstB, static_cast<i64>(field_b));

  detail::OuterLoop outer(b, kOuter);

  // Advance the source term: src *= drift, then re-centre it so the
  // field stays bounded while the *value* never repeats.
  b.ldt(kSrc, kTimeB, 0);
  b.fmul(kSrc, kSrc, kDrift);
  b.stt(kSrc, kTimeB, 0);

  // ---- Phase A: evolving Jacobi sweep (ping-pong buffers) -------------
  b.ldi(kOff, kPlaneB);
  b.ldi(kEnd, static_cast<i64>(kCells * 8 - kPlaneB));
  Label sweep = b.here();
  b.add(kAddr, kSrcB, kOff);
  b.ldt(kV, kAddr, 0);
  b.ldt(kSum, kAddr, -8);
  b.ldt(kT, kAddr, 8);
  b.fadd(kSum, kSum, kT);
  b.ldt(kT, kAddr, -kRowB);
  b.fadd(kSum, kSum, kT);
  b.ldt(kT, kAddr, kRowB);
  b.fadd(kSum, kSum, kT);
  b.ldt(kT, kAddr, -kPlaneB);
  b.fadd(kSum, kSum, kT);
  b.ldt(kT, kAddr, kPlaneB);
  b.fadd(kSum, kSum, kT);
  b.fmul(kT, kV, kSix);
  b.fsub(kSum, kSum, kT);        // residual = sum(neigh) - 6v
  b.fmul(kSum, kSum, kOmega);
  b.fadd(kV, kV, kSum);
  b.fmul(kV, kV, kOmega);        // damping keeps the field bounded
  b.fadd(kV, kV, kSrc);          // time-varying forcing
  b.add(kAddr, kDstB, kOff);
  b.stt(kV, kAddr, 0);
  b.addi(kOff, kOff, 8);
  b.cmpult(kTmp, kOff, kEnd);
  b.bnez(kTmp, sweep);

  // Swap the ping-pong buffers (values alternate A/B -> reusable).
  b.mov(kTmp, kSrcB);
  b.mov(kSrcB, kDstB);
  b.mov(kDstB, kTmp);

  // ---- Phase B: metric coefficients from static geometry -------------
  b.ldi(kCrdP, static_cast<i64>(coords));
  b.ldi(kCoefP, static_cast<i64>(coeffs));
  b.ldi(kEnd, static_cast<i64>(coords + metric_cells * 8));
  b.ldi(kMod, 0);
  Label metrics = b.here();
  b.ldt(kV, kCrdP, 0);
  b.ldt(kT, kCrdP, 8);
  b.fsub(kSum, kT, kV);          // dx
  b.ldt(kT, kCrdP, 16);
  b.fadd(kT, kT, kV);
  b.fmul(kSum, kSum, kT);        // dx * (x[i+2]+x[i])
  b.fmul(kT, kSum, kSum);
  b.fadd(kT, kT, kOmega);
  b.fdiv(kT, kSix, kT);          // 6 / (m^2 + w): a real metric shape
  b.stt(kT, kCoefP, 0);

  // Every 8th cell, fold into the never-repeating residual spine.
  b.addi(kMod, kMod, 1);
  b.andi(kMod, kMod, 7);
  {
    Label skip = b.label();
    b.bnez(kMod, skip);
    b.fmul(kRes, kRes, kDrift);  // evolves forever -> non-reusable
    b.fadd(kRes, kRes, kT);
    b.bind(skip);
  }

  b.addi(kCrdP, kCrdP, 8);
  b.addi(kCoefP, kCoefP, 8);
  b.cmpult(kTmp, kCrdP, kEnd);
  b.bnez(kTmp, metrics);

  outer.close();

  Workload w;
  w.name = "applu";
  w.is_fp = true;
  w.description =
      "SSOR-style sweeps: evolving ping-pong Jacobi field (never-"
      "repeating FP) plus static metric recomputation in short runs";
  w.program = b.build();
  return w;
}

}  // namespace tlr::workloads
