// SPEC95-analog workload suite.
//
// The paper evaluates on seven SPECint95 and seven SPECfp95 programs
// (ATOM-instrumented Alpha binaries, reference inputs). Those binaries
// and traces are not redistributable, so this library substitutes one
// *synthetic analog per benchmark*: a real program for our mini-ISA
// whose dynamic behaviour (instruction mix, value locality, loop
// structure) is engineered to land in the band the paper reports for
// its namesake. Crucially, the redundancy the reuse engines find arises
// the same way it does in SPEC — from loops re-traversing slowly
// changing data, repeated calls on a small set of arguments, quasi-
// invariant fields — and never from replaying canned instruction
// records. See DESIGN.md §2 for the substitution argument and the
// per-workload .cpp files for what each analog computes.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "vm/program.hpp"

namespace tlr::workloads {

struct Workload {
  std::string name;        // paper benchmark name, e.g. "compress"
  bool is_fp = false;      // SPECfp95 analog?
  std::string description; // one-line summary of the analog program
  vm::Program program;
};

/// Construction parameters. The defaults reproduce the library's
/// published numbers; tests shrink them for speed.
struct WorkloadParams {
  u64 seed = 0xC0FFEE;  // seed for the workload's synthetic data
  /// Rough scale knob (1 = default working sets). Scales table/grid
  /// sizes, not the semantics.
  u32 scale = 1;
};

// -- SPECint95 analogs ------------------------------------------------
Workload make_compress(const WorkloadParams& params = {});
Workload make_gcc(const WorkloadParams& params = {});
Workload make_go(const WorkloadParams& params = {});
Workload make_ijpeg(const WorkloadParams& params = {});
Workload make_li(const WorkloadParams& params = {});
Workload make_perl(const WorkloadParams& params = {});
Workload make_vortex(const WorkloadParams& params = {});

// -- SPECfp95 analogs -------------------------------------------------
Workload make_applu(const WorkloadParams& params = {});
Workload make_apsi(const WorkloadParams& params = {});
Workload make_fpppp(const WorkloadParams& params = {});
Workload make_hydro2d(const WorkloadParams& params = {});
Workload make_su2cor(const WorkloadParams& params = {});
Workload make_tomcatv(const WorkloadParams& params = {});
Workload make_turb3d(const WorkloadParams& params = {});

/// Names in the paper's figure order (FP first, then INT, matching the
/// X axes of Figures 3-7).
std::span<const std::string_view> workload_names();
std::span<const std::string_view> int_workload_names();
std::span<const std::string_view> fp_workload_names();

/// Factory by name; asserts on unknown names. Names registered via
/// `register_source` resolve here too, after the built-in analogs.
Workload make_workload(std::string_view name,
                       const WorkloadParams& params = {});

/// The whole suite in figure order.
std::vector<Workload> make_suite(const WorkloadParams& params = {});

// -- TLC source workloads (src/lang, docs/tlc.md) ---------------------

/// Compiles TLC source text into a streaming workload (the program is
/// wrapped in the same outer loop the analogs use). On failure returns
/// nullopt and, when non-null, fills `*error` with the one-line
/// "name:line:col: message" diagnostic.
std::optional<Workload> make_from_source(std::string_view name,
                                         std::string_view source,
                                         const WorkloadParams& params = {},
                                         std::string* error = nullptr);

/// Registers `source` so `make_workload(name)` — and therefore the
/// study engine, shard planner, and figure tooling — can build it by
/// name. The source is compile-checked at registration (with default
/// params); failures are reported like make_from_source. Rejects names
/// that collide with the built-in analogs or an earlier registration.
bool register_source(std::string_view name, std::string_view source,
                     std::string* error = nullptr);

/// Names registered so far, in registration order.
std::vector<std::string> registered_source_names();

/// True if `name` is a built-in analog or a registered source.
bool is_known_workload(std::string_view name);

/// Drops all registered sources (test isolation).
void clear_registered_sources();

}  // namespace tlr::workloads
