// `perl` analog: word hashing and associative counting with a serial
// checksum spine.
//
// SPECint95 134.perl interprets scripts dominated by string hashing and
// associative-array traffic. Its dynamic instructions are highly
// repetitive (the same words hash again and again), yet the paper finds
// almost no *infinite-window* speed-up for perl (Fig 6a: ~1.01):
// the critical path is a serial, never-repeating computation that reuse
// cannot collapse. The benefit perl does get appears only in the
// 256-entry-window configuration, where reused traces free window slots.
//
// Analog structure: a text of Zipf-distributed vocabulary words is
// scanned; per word, a djb2-style hash (serial 1-cycle chain over the
// characters, repeating per word), a character-class sweep via a lookup
// table, and a bucket-count update. A global checksum
//     sum = sum * 33 + word_hash            (integer multiply chain)
// threads every word and never revisits a value: it is the reuse-proof
// critical path.
#include <vector>

#include "util/rng.hpp"
#include "vm/builder.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace tlr::workloads {

using isa::r;
using vm::Label;
using vm::ProgramBuilder;

Workload make_perl(const WorkloadParams& params) {
  ProgramBuilder b("perl");
  Rng rng(params.seed ^ 0x7065726cULL);

  const usize vocab_size = 192;
  const usize text_words = 512 * params.scale;
  const usize buckets = 1024;  // power of two
  const i64 bucket_mask = static_cast<i64>(buckets - 1);

  // Vocabulary: words of 3..9 characters from a 26-letter alphabet.
  struct Word {
    std::vector<u64> chars;
  };
  std::vector<Word> vocab(vocab_size);
  for (auto& word : vocab) {
    const usize len = 3 + rng.below(7);
    word.chars.resize(len);
    for (u64& c : word.chars) c = 'a' + rng.below(26);
  }

  // --- data segment --------------------------------------------------
  // Text: per word, a length-prefixed run of character words.
  usize text_len = 0;
  ZipfDraw pick(vocab_size, 1.15, rng.next());
  std::vector<u64> text_image;
  for (usize w = 0; w < text_words; ++w) {
    const Word& word = vocab[pick.next()];
    text_image.push_back(word.chars.size());
    for (u64 c : word.chars) text_image.push_back(c);
  }
  text_len = text_image.size();

  const Addr text = b.alloc(text_len);
  const Addr counts = b.alloc(buckets);
  const Addr char_class = b.alloc(128);  // isalpha-style table
  const Addr sink = b.alloc(2);

  for (usize i = 0; i < text_len; ++i) b.init_word(text + i * 8, text_image[i]);
  for (usize c = 0; c < 128; ++c) {
    b.init_word(char_class + c * 8, (c >= 'a' && c <= 'z') ? 1 : 0);
  }

  // --- registers -----------------------------------------------------
  constexpr auto kPtr = r(1);
  constexpr auto kEnd = r(2);
  constexpr auto kLen = r(3);
  constexpr auto kChar = r(4);
  constexpr auto kHash = r(5);
  constexpr auto kSum = r(6);     // the serial checksum spine
  constexpr auto kCls = r(7);     // char-class accumulator
  constexpr auto kTab = r(8);
  constexpr auto kCharTab = r(9);
  constexpr auto kTmp = r(10);
  constexpr auto kWEnd = r(11);   // end of current word
  constexpr auto kSink = r(12);
  constexpr auto kOuter = r(13);

  b.ldi(kTab, static_cast<i64>(counts));
  b.ldi(kCharTab, static_cast<i64>(char_class));
  b.ldi(kSink, static_cast<i64>(sink));
  b.ldi(kSum, 1);  // checksum never resets: the non-repeating spine

  detail::OuterLoop outer(b, kOuter);

  b.ldi(kPtr, static_cast<i64>(text));
  b.ldi(kEnd, static_cast<i64>(text + text_len * 8));

  Label word_loop = b.here();
  b.ldq(kLen, kPtr, 0);           // length prefix
  b.addi(kPtr, kPtr, 8);
  b.slli(kWEnd, kLen, 3);
  b.add(kWEnd, kWEnd, kPtr);

  // djb2 hash over the characters + character-class sweep.
  b.ldi(kHash, 5381);
  b.ldi(kCls, 0);
  Label char_loop = b.here();
  b.ldq(kChar, kPtr, 0);
  b.muli(kHash, kHash, 33);       // serial within the word, but the
  b.add(kHash, kHash, kChar);     // word repeats -> reusable
  b.slli(kTmp, kChar, 3);
  b.add(kTmp, kTmp, kCharTab);
  b.ldq(kTmp, kTmp, 0);           // char-class lookup
  b.add(kCls, kCls, kTmp);
  b.addi(kPtr, kPtr, 8);
  b.cmpult(kTmp, kPtr, kWEnd);
  b.bnez(kTmp, char_loop);

  // Bucket count update (counts grow monotonically: non-repeating
  // values, like real hash-table metadata).
  b.andi(kTmp, kHash, bucket_mask);
  b.slli(kTmp, kTmp, 3);
  b.add(kTmp, kTmp, kTab);
  b.ldq(kChar, kTmp, 0);
  b.addi(kChar, kChar, 1);
  b.stq(kChar, kTmp, 0);

  // The serial spine: one 12-cycle multiply per word, never repeating.
  b.muli(kSum, kSum, 33);
  b.add(kSum, kSum, kHash);
  b.stq(kSum, kSink, 0);
  b.stq(kCls, kSink, 8);

  b.cmpult(kTmp, kPtr, kEnd);
  b.bnez(kTmp, word_loop);

  outer.close();

  Workload w;
  w.name = "perl";
  w.is_fp = false;
  w.description =
      "word hashing + associative counting; a never-repeating serial "
      "checksum multiply chain is the critical path";
  w.program = b.build();
  return w;
}

}  // namespace tlr::workloads
