#include <array>

#include "util/assert.hpp"
#include "workloads/workload.hpp"

namespace tlr::workloads {

namespace detail {
// source.cpp: registered-TLC-source fallback for make_workload.
std::optional<Workload> make_registered(std::string_view name,
                                        const WorkloadParams& params);
}  // namespace detail

namespace {

constexpr std::array<std::string_view, 7> kFpNames = {
    "applu", "apsi", "fpppp", "hydro2d", "su2cor", "tomcatv", "turb3d"};

constexpr std::array<std::string_view, 7> kIntNames = {
    "compress", "gcc", "go", "ijpeg", "li", "perl", "vortex"};

constexpr std::array<std::string_view, 14> kAllNames = {
    "applu",    "apsi", "fpppp", "hydro2d", "su2cor", "tomcatv", "turb3d",
    "compress", "gcc",  "go",    "ijpeg",   "li",     "perl",    "vortex"};

}  // namespace

std::span<const std::string_view> workload_names() { return kAllNames; }
std::span<const std::string_view> int_workload_names() { return kIntNames; }
std::span<const std::string_view> fp_workload_names() { return kFpNames; }

Workload make_workload(std::string_view name, const WorkloadParams& params) {
  if (name == "compress") return make_compress(params);
  if (name == "gcc") return make_gcc(params);
  if (name == "go") return make_go(params);
  if (name == "ijpeg") return make_ijpeg(params);
  if (name == "li") return make_li(params);
  if (name == "perl") return make_perl(params);
  if (name == "vortex") return make_vortex(params);
  if (name == "applu") return make_applu(params);
  if (name == "apsi") return make_apsi(params);
  if (name == "fpppp") return make_fpppp(params);
  if (name == "hydro2d") return make_hydro2d(params);
  if (name == "su2cor") return make_su2cor(params);
  if (name == "tomcatv") return make_tomcatv(params);
  if (name == "turb3d") return make_turb3d(params);
  if (std::optional<Workload> registered = detail::make_registered(name, params)) {
    return *std::move(registered);
  }
  TLR_ASSERT_MSG(false, "unknown workload name");
  return {};
}

std::vector<Workload> make_suite(const WorkloadParams& params) {
  std::vector<Workload> suite;
  suite.reserve(kAllNames.size());
  for (std::string_view name : kAllNames) {
    suite.push_back(make_workload(name, params));
  }
  return suite;
}

}  // namespace tlr::workloads
