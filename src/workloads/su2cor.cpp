// `su2cor` analog: lattice gauge matrix products over a quenched
// configuration.
//
// SPECfp95 103.su2cor multiplies small gauge-link matrices along lattice
// paths. In a quenched run the link configuration is frozen, and the
// links take values from a limited set, so the same small-matrix
// products recur constantly — both within a sweep (palette hits) and
// across sweeps (identical traversal). The paper shows high reusability
// and large traces for su2cor.
//
// Analog structure: 256 sites each reference one of 8 link matrices
// (3x3 doubles) via a static index array and one of 4 propagator
// matrices; per site a fully unrolled 3x3 matrix product (~90 FP ops)
// runs with palette-resident operands, then one multiplicative
// normalisation spine instruction pair bounds the reusable run.
#include "util/rng.hpp"
#include "vm/builder.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace tlr::workloads {

using isa::f;
using isa::r;
using vm::Label;
using vm::ProgramBuilder;

Workload make_su2cor(const WorkloadParams& params) {
  ProgramBuilder b("su2cor");
  Rng rng(params.seed ^ 0x73753263ULL);

  const usize n_sites = 128 * params.scale;
  constexpr usize kLinks = 8;    // distinct gauge matrices
  constexpr usize kProps = 4;    // distinct propagators
  constexpr usize kMat = 9;      // 3x3 doubles

  const Addr links = b.alloc(kLinks * kMat);
  const Addr props = b.alloc(kProps * kMat);
  const Addr site_link = b.alloc(n_sites);  // palette index per site
  const Addr out = b.alloc(n_sites * kMat);
  const Addr norm_cell = b.alloc(1);

  detail::init_array_fp(b, links, kLinks * kMat,
                        [&](usize) { return rng.uniform(-1.0, 1.0); });
  detail::init_array_fp(b, props, kProps * kMat,
                        [&](usize) { return rng.uniform(-1.0, 1.0); });
  ZipfDraw pick(kLinks, 0.9, rng.next());
  detail::init_array(b, site_link, n_sites, [&](usize) { return pick.next(); });

  constexpr auto kSiteP = r(1);   // cursor over site_link
  constexpr auto kSiteEnd = r(2);
  constexpr auto kABase = r(3);   // link matrix base
  constexpr auto kBBase = r(4);   // propagator base
  constexpr auto kOutP = r(5);
  constexpr auto kTmp = r(6);
  constexpr auto kSite = r(7);    // site counter (selects propagator)
  constexpr auto kOuter = r(8);

  constexpr auto kA0 = f(1);
  constexpr auto kA1 = f(2);
  constexpr auto kA2 = f(3);
  constexpr auto kBv = f(4);
  constexpr auto kAcc = f(5);
  constexpr auto kT = f(6);
  constexpr auto kChk = r(9);   // never-repeating audit spine (int)

  b.ldi(kChk, 1);

  detail::OuterLoop outer(b, kOuter);

  b.ldi(kSiteP, static_cast<i64>(site_link));
  b.ldi(kSiteEnd, static_cast<i64>(site_link + n_sites * 8));
  b.ldi(kOutP, static_cast<i64>(out));
  b.ldi(kSite, 0);

  Label site_loop = b.here();
  // A = links[site_link[s]]
  b.ldq(kTmp, kSiteP, 0);
  b.muli(kTmp, kTmp, kMat * 8);
  b.addi(kABase, kTmp, static_cast<i64>(links));
  // B = props[s & 3]
  b.andi(kTmp, kSite, kProps - 1);
  b.muli(kTmp, kTmp, kMat * 8);
  b.addi(kBBase, kTmp, static_cast<i64>(props));

  // C = A * B, fully unrolled 3x3.
  for (int i = 0; i < 3; ++i) {
    b.ldt(kA0, kABase, (i * 3 + 0) * 8);
    b.ldt(kA1, kABase, (i * 3 + 1) * 8);
    b.ldt(kA2, kABase, (i * 3 + 2) * 8);
    for (int j = 0; j < 3; ++j) {
      b.ldt(kBv, kBBase, (0 * 3 + j) * 8);
      b.fmul(kAcc, kA0, kBv);
      b.ldt(kBv, kBBase, (1 * 3 + j) * 8);
      b.fmul(kT, kA1, kBv);
      b.fadd(kAcc, kAcc, kT);
      b.ldt(kBv, kBBase, (2 * 3 + j) * 8);
      b.fmul(kT, kA2, kBv);
      b.fadd(kAcc, kAcc, kT);
      b.stt(kAcc, kOutP, (i * 3 + j) * 8);
    }
  }

  // Audit spine: strictly increasing integer chain, two dependent
  // 1-cycle ops per site (never repeats; breaks traces per site).
  b.cvttq(kTmp, kAcc);
  b.add(kChk, kChk, kTmp);
  b.addi(kChk, kChk, 7);

  b.addi(kSiteP, kSiteP, 8);
  b.addi(kOutP, kOutP, kMat * 8);
  b.addi(kSite, kSite, 1);
  b.cmpult(kTmp, kSiteP, kSiteEnd);
  b.bnez(kTmp, site_loop);

  b.ldi(kTmp, static_cast<i64>(norm_cell));
  b.stq(kChk, kTmp, 0);

  outer.close();

  Workload w;
  w.name = "su2cor";
  w.is_fp = true;
  w.description =
      "lattice gauge kernel: unrolled 3x3 matrix products with palette-"
      "resident operands over a quenched (static) link configuration";
  w.program = b.build();
  return w;
}

}  // namespace tlr::workloads
