#include "spec/spec_sim.hpp"

#include "util/assert.hpp"

namespace tlr::spec {

using reuse::SpecOutcome;
using reuse::StoredTrace;

RtmSpecSimulator::RtmSpecSimulator(const RtmSpecConfig& config)
    : sim_(config.sim), predictor_(make_predictor(config.predictor)) {
  sim_.set_spec_gate(this);
  sim_.set_event_sink(this);
}

RtmSpecResult RtmSpecSimulator::finish() {
  RtmSpecResult result;
  result.sim = sim_.finish();
  result.spec = stats_;
  return result;
}

RtmSpecResult RtmSpecSimulator::run(std::span<const isa::DynInst> stream) {
  feed(stream);
  return finish();
}

const StoredTrace* RtmSpecSimulator::decide(const Fetch& fetch) {
  return predictor_->choose(fetch);
}

void RtmSpecSimulator::on_outcome(const Fetch& fetch,
                                  const StoredTrace* attempted,
                                  SpecOutcome outcome) {
  switch (outcome) {
    case SpecOutcome::kCorrect: ++stats_.correct; break;
    case SpecOutcome::kMisspec: ++stats_.misspecs; break;
    case SpecOutcome::kMissed: ++stats_.missed; break;
    case SpecOutcome::kDecline: ++stats_.declines; break;
  }
  if (outcome == SpecOutcome::kMisspec) {
    TLR_ASSERT(attempted != nullptr);
    // Squash event first: the stream index is not meaningful for a
    // trace that never committed, so it stays zero.
    const timing::PlanTrace plan_trace =
        reuse::to_plan_trace(*attempted, /*first_index=*/0);
    for (SpecEventSink* sink : sinks_) sink->on_misspec(plan_trace);
  }
  predictor_->train(fetch, attempted, outcome);
}

void RtmSpecSimulator::on_store(const StoredTrace& trace,
                                reuse::Rtm::StoreKind kind) {
  predictor_->on_store(trace, kind);
}

void RtmSpecSimulator::on_executed(const isa::DynInst& inst) {
  for (SpecEventSink* sink : sinks_) sink->on_executed(inst);
}

void RtmSpecSimulator::on_reused(std::span<const isa::DynInst> insts,
                                 const timing::PlanTrace& trace) {
  for (SpecEventSink* sink : sinks_) sink->on_reused(insts, trace);
}

}  // namespace tlr::spec
