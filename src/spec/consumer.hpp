// Engine integration: speculative reuse as a first-class
// core::StudyEngine stream consumer (DESIGN.md §5 consumer set, §8).
//
// One SpecSimConsumer runs one (geometry, predictor) speculative
// simulation off the shared chunked pass and prices its fetch stream
// with any number of SpecTimers at once — the functional simulation is
// penalty-independent, so a whole penalty sweep rides on a single
// simulator. The §5 invariants hold: the wrapped RtmSimulator buffers
// only its bounded lookahead, and results are bit-identical for any
// thread count and chunk size.
#pragma once

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "spec/spec_sim.hpp"
#include "spec/spec_timer.hpp"

namespace tlr::spec {

class SpecSimConsumer final : public core::StreamConsumer,
                              private SpecEventSink {
 public:
  explicit SpecSimConsumer(const RtmSpecConfig& config) : sim_(config) {
    sim_.add_sink(this);
  }

  // The simulator holds a pointer back to this object as its sink.
  SpecSimConsumer(const SpecSimConsumer&) = delete;
  SpecSimConsumer& operator=(const SpecSimConsumer&) = delete;

  /// Attach a timer pricing the simulated fetch stream with `penalty`
  /// squash/recovery cycles per misspeculation. Call before feeding.
  void add_timer(const timing::TimerConfig& config, Cycle penalty) {
    timers_.push_back(std::make_unique<SpecTimer>(config, penalty));
  }

  void consume(const core::ChunkView& chunk) override {
    sim_.feed(chunk.insts);
  }
  void finish(u64) override {
    result_ = sim_.finish();
    obs::MetricsBlock block;
    reuse::accumulate_metrics(result_.sim, block);
    block.add(obs::Counter::kSpecCorrect, result_.spec.correct);
    block.add(obs::Counter::kSpecMisspecs, result_.spec.misspecs);
    block.add(obs::Counter::kSpecMissed, result_.spec.missed);
    block.add(obs::Counter::kSpecDeclines, result_.spec.declines);
    obs::flush(block);
  }

  const RtmSpecResult& result() const { return result_; }
  usize timer_count() const { return timers_.size(); }
  const SpecTimer& timer(usize index) const { return *timers_[index]; }

 private:
  void on_executed(const isa::DynInst& inst) override {
    for (const auto& timer : timers_) timer->step_normal(inst);
  }
  void on_reused(std::span<const isa::DynInst> insts,
                 const timing::PlanTrace& trace) override {
    for (const auto& timer : timers_) timer->step_trace(insts, trace);
  }
  void on_misspec(const timing::PlanTrace& attempted) override {
    for (const auto& timer : timers_) timer->note_misspec(attempted);
  }

  RtmSpecSimulator sim_;
  std::vector<std::unique_ptr<SpecTimer>> timers_;
  RtmSpecResult result_;
};

}  // namespace tlr::spec
