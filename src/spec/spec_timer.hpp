// SpecTimer: misspeculation-aware dataflow pricing (DESIGN.md §8).
//
// Extends timing::StreamingTimer with one extra event, the squash of a
// misspeculated trace-reuse attempt. The squash is detected when the
// attempted trace's verification resolves — its live-in producers are
// ready plus the reuse-test latency — and issue resumes `penalty`
// cycles later: the timer's issue floor rises to that point, so the
// squashed instructions' re-execution (ordinary step_normal calls) and
// everything after them are priced behind the recovery. With zero
// misspeculations the timer is bit-identical to StreamingTimer, which
// is what lets the oracle predictor recover the limit-study numbers
// exactly.
#pragma once

#include "timing/timer.hpp"
#include "util/types.hpp"

namespace tlr::spec {

class SpecTimer : public timing::StreamingTimer {
 public:
  /// `penalty` is the squash/recovery cost in cycles charged on top of
  /// the verification-resolution point. Zero still serializes at
  /// detection — a squash can never be cheaper than finding out.
  SpecTimer(const timing::TimerConfig& config, Cycle penalty)
      : StreamingTimer(config), penalty_(penalty) {}

  /// A misspeculated attempt of `attempted` at the current stream
  /// point; call before re-executing the squashed instructions.
  void note_misspec(const timing::PlanTrace& attempted) {
    const Cycle detect =
        trace_ready(attempted) + config().trace_reuse_latency;
    raise_issue_floor(detect + penalty_);
    ++misspecs_;
  }

  Cycle penalty() const { return penalty_; }
  u64 misspecs() const { return misspecs_; }

 private:
  Cycle penalty_;
  u64 misspecs_ = 0;
};

}  // namespace tlr::spec
