// RtmSpecSimulator: speculative trace reuse end to end (DESIGN.md §8).
//
// Wraps the chunk-feedable reuse::RtmSimulator with a TracePredictor
// through the SpecGate hook: at every fetch with stored candidates the
// predictor picks a trace to attempt (or declines), the simulator
// verifies against the actual state, and the attempt resolves as
// correct speculation (the reuse commits exactly as in the limit
// simulator), misspeculation (squash — the instructions re-execute
// normally and listeners are told so they can price the recovery), or
// no-attempt (a missed opportunity when the actual test would have
// hit). The oracle predictor makes every classification kCorrect and
// reproduces the unwrapped simulator bit-for-bit — the limit study is
// the zero-misprediction point of this model.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "reuse/rtm_sim.hpp"
#include "spec/predictor.hpp"
#include "util/types.hpp"

namespace tlr::spec {

/// Fetch-decision classification counts. `attempts = correct +
/// misspecs`; decisions at fetches with no stored candidate are not
/// counted anywhere.
struct SpecStats {
  u64 correct = 0;   // attempted, verification agreed: reuse committed
  u64 misspecs = 0;  // attempted, inputs no longer held: squashed
  u64 missed = 0;    // declined although the actual test would hit
  u64 declines = 0;  // declined, and the actual test would miss too

  u64 attempts() const { return correct + misspecs; }

  /// Fraction of attempts that verified; 0 when nothing was attempted
  /// (a predictor that never fires has earned no accuracy).
  double accuracy() const {
    const u64 a = attempts();
    return a == 0 ? 0.0
                  : static_cast<double>(correct) / static_cast<double>(a);
  }
};

struct RtmSpecConfig {
  /// The underlying finite-RTM simulation. Value-compare reuse test
  /// only (the valid-bit flavour is already a one-cycle mechanism).
  reuse::RtmSimConfig sim;
  PredictorConfig predictor;
};

struct RtmSpecResult {
  reuse::RtmSimResult sim;  // committed reuse, RTM stats
  SpecStats spec;

  /// Misspeculations per committed instruction.
  double misspec_rate() const {
    return sim.instructions == 0
               ? 0.0
               : static_cast<double>(spec.misspecs) /
                     static_cast<double>(sim.instructions);
  }
};

/// In-order listener on the speculative fetch stream: the limit
/// simulator's events plus the squash of every misspeculated attempt,
/// reported before the squashed instructions re-execute.
class SpecEventSink {
 public:
  virtual ~SpecEventSink() = default;
  virtual void on_executed(const isa::DynInst& inst) = 0;
  virtual void on_reused(std::span<const isa::DynInst> insts,
                         const timing::PlanTrace& trace) = 0;
  virtual void on_misspec(const timing::PlanTrace& attempted) = 0;
};

class RtmSpecSimulator final : private reuse::SpecGate,
                               private reuse::RtmEventSink {
 public:
  explicit RtmSpecSimulator(const RtmSpecConfig& config);

  // Registered as the inner simulator's gate and event sink; moving
  // would leave those pointers dangling.
  RtmSpecSimulator(const RtmSpecSimulator&) = delete;
  RtmSpecSimulator& operator=(const RtmSpecSimulator&) = delete;

  /// Optional event listeners (e.g. SpecTimers). Add before feeding.
  void add_sink(SpecEventSink* sink) { sinks_.push_back(sink); }

  /// Streaming interface, mirroring RtmSimulator: feed consecutive
  /// stream pieces, then finish() exactly once.
  void feed(std::span<const isa::DynInst> insts) { sim_.feed(insts); }
  RtmSpecResult finish();

  /// One-shot convenience (feed + finish).
  RtmSpecResult run(std::span<const isa::DynInst> stream);

  const TracePredictor& predictor() const { return *predictor_; }

 private:
  // SpecGate
  bool wants_candidates() const override {
    return predictor_->wants_candidates();
  }
  const reuse::StoredTrace* decide(const Fetch& fetch) override;
  void on_outcome(const Fetch& fetch, const reuse::StoredTrace* attempted,
                  reuse::SpecOutcome outcome) override;
  void on_store(const reuse::StoredTrace& trace,
                reuse::Rtm::StoreKind kind) override;

  // RtmEventSink (forwarded to every SpecEventSink)
  void on_executed(const isa::DynInst& inst) override;
  void on_reused(std::span<const isa::DynInst> insts,
                 const timing::PlanTrace& trace) override;

  reuse::RtmSimulator sim_;
  std::unique_ptr<TracePredictor> predictor_;
  std::vector<SpecEventSink*> sinks_;
  SpecStats stats_;
};

}  // namespace tlr::spec
