#include "spec/predictor.hpp"

#include <array>
#include <bit>

#include "util/assert.hpp"
#include "util/flat_hash_map.hpp"
#include "util/small_vector.hpp"

namespace tlr::spec {

using reuse::LocVal;
using reuse::SpecGate;
using reuse::SpecOutcome;
using reuse::StoredTrace;

std::string_view predictor_name(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kOracle: return "oracle";
    case PredictorKind::kLastValue: return "last_value";
    case PredictorKind::kConfidence: return "confidence";
  }
  return "?";
}

std::optional<PredictorKind> predictor_from_name(std::string_view name) {
  if (name == "oracle") return PredictorKind::kOracle;
  if (name == "last_value") return PredictorKind::kLastValue;
  if (name == "confidence") return PredictorKind::kConfidence;
  return std::nullopt;
}

namespace {

class OraclePredictor final : public TracePredictor {
 public:
  std::string_view name() const override { return "oracle"; }
  bool wants_candidates() const override { return false; }
  const StoredTrace* choose(const SpecGate::Fetch& fetch) override {
    return fetch.oracle_choice;
  }
  void train(const SpecGate::Fetch&, const StoredTrace*,
             SpecOutcome) override {}
  void on_store(const StoredTrace&, reuse::Rtm::StoreKind) override {}
};

/// Per-PC last-value input prediction: remember, per initial PC, the
/// values the candidate input locations held at the previous
/// resolution of that PC; predict they still hold and attempt the
/// first (MRU) candidate whose stored inputs match the remembered
/// snapshot. Misspeculates exactly when an input changed between two
/// visits — the loop-carried case a real mechanism has to survive.
class LastValuePredictor : public TracePredictor {
 public:
  std::string_view name() const override { return "last_value"; }

  const StoredTrace* choose(const SpecGate::Fetch& fetch) override {
    Snapshot* snapshot = snapshots_.find(fetch.pc);
    // choose and train run back to back on the same fetch with no map
    // mutation in between (resolution pairs them; on_store clears the
    // cache), so train reuses this probe instead of re-hashing.
    cached_pc_ = fetch.pc;
    cached_ = snapshot;
    if (snapshot == nullptr) return nullptr;
    for (const StoredTrace* candidate : fetch.candidates) {
      if (matches(*candidate, *snapshot)) return candidate;
    }
    return nullptr;
  }

  void train(const SpecGate::Fetch& fetch, const StoredTrace*,
             SpecOutcome) override {
    // Remember the values the candidates' input locations hold *now*:
    // the prediction for this PC's next visit — one merged keyed delta
    // over the distinct input locations of the candidate set. That
    // location set is a function of the way's contents alone (every
    // fetch of a PC lists every stored trace; only the MRU order
    // varies), and the way only changes through insertions the gate
    // sees as on_store — so the union is computed once per way
    // content version and cached on the snapshot, and steady-state
    // training walks it instead of re-deduplicating candidate-by-
    // candidate (DESIGN.md §10). Training runs once per gated fetch.
    Snapshot* snapshot =
        cached_pc_ == fetch.pc && cached_ != nullptr ? cached_ : nullptr;
    if (snapshot == nullptr) snapshot = &snapshots_[fetch.pc];
    cached_ = nullptr;
    cached_pc_ = isa::kInvalidPc;
    if (snapshot->count == kMaxSnapshot) {
      // Saturated snapshot — the steady state for hot PCs. No location
      // can ever be admitted again (count never decreases), so the
      // exact walk's only effect is refreshing remembered locations
      // that appear in some candidate's inputs. Refreshing *every*
      // remembered location instead is indistinguishable: a location
      // outside every candidate's inputs is one choose() cannot
      // compare, and if it later rejoins the way it is re-remembered
      // with its live value by on_store before the next read. That
      // turns steady-state training into one mask-filtered register
      // sweep plus at most kMaxMem value probes — no union, no
      // rebuilds, no per-candidate walk.
      const u64 known = fetch.state->known_regs();
      const auto& live = fetch.state->reg_values();
      u64 update = snapshot->reg_mask & known;
      while (update != 0) {
        const u32 reg = static_cast<u32>(std::countr_zero(update));
        update &= update - 1;
        snapshot->reg_value[reg] = live[reg];
      }
      for (LocVal& entry : snapshot->mem) {
        const auto value = fetch.state->value(entry.loc);
        if (value.has_value()) entry.value = *value;
      }
      return;
    }
    if (!snapshot->union_valid) {
      rebuild_and_train(*snapshot, fetch);
      return;
    }
    // Unsaturated with a current union: applying it in an order other
    // than the per-fetch MRU first-seen order is indistinguishable
    // from the exact walk except when an admission would *partially*
    // fit under the snapshot cap: updates are keyed, and a batch of
    // appends that all fit admits the same location set in any order
    // (the snapshot is keyed too). Only the partial-fit transient (the
    // fetch that crosses the cap) depends on the exact first-seen
    // order and falls back to replaying it.
    const u64 known = fetch.state->known_regs();
    const auto& live = fetch.state->reg_values();
    // Register refresh: union ∩ remembered ∩ live, three mask ANDs and
    // one copy per set bit — no per-register known/value probes.
    u64 update = snapshot->union_regs & snapshot->reg_mask & known;
    while (update != 0) {
      const u32 reg = static_cast<u32>(std::countr_zero(update));
      update &= update - 1;
      snapshot->reg_value[reg] = live[reg];
    }
    SmallVector<LocVal, 12> admit;
    u64 fresh = snapshot->union_regs & ~snapshot->reg_mask & known;
    while (fresh != 0) {
      const u32 reg = static_cast<u32>(std::countr_zero(fresh));
      fresh &= fresh - 1;
      admit.push_back({reg, live[reg]});
    }
    for (const u64 loc : snapshot->union_mem) {
      bool found = false;
      for (LocVal& entry : snapshot->mem) {
        if (entry.loc == loc) {
          const auto value = fetch.state->value(loc);
          if (value.has_value()) entry.value = *value;
          found = true;
          break;
        }
      }
      if (!found) {
        const auto value = fetch.state->value(loc);
        if (value.has_value()) admit.push_back({loc, *value});
      }
    }
    if (admit.empty()) return;
    if (snapshot->count + admit.size() <= kMaxSnapshot) {
      for (const LocVal& add : admit) remember(*snapshot, add.loc, add.value);
    } else {
      // Crossing the cap: which locations get in depends on the exact
      // first-seen order, so replay it (the keyed updates above are
      // idempotent re-writes of the same current values).
      train_exact(*snapshot, fetch);
    }
  }

  void on_store(const StoredTrace& trace,
                reuse::Rtm::StoreKind kind) override {
    // A freshly collected trace's inputs were the live values. The
    // insert may rehash, so any choose-time slot cache dies here —
    // and the store changed (or confirmed) the PC's way contents, so
    // the cached input-location union follows the store kind: a fresh
    // way's union is exactly this trace's inputs, an appended trace
    // only adds its inputs, a duplicate refresh changes nothing, and
    // an eviction removed a trace whose inputs the gate never saw —
    // the one case that forces a rescan (rebuild_and_train).
    cached_ = nullptr;
    cached_pc_ = isa::kInvalidPc;
    Snapshot& snapshot = snapshots_[trace.start_pc];
    if (snapshot.count == kMaxSnapshot) {
      // Saturated snapshots train without the union (see train()).
      snapshot.union_valid = false;
    } else {
      switch (kind) {
        case reuse::Rtm::StoreKind::kFreshWay:
          snapshot.union_regs = 0;
          snapshot.union_mem.clear();
          merge_into_union(snapshot, trace);
          snapshot.union_valid = true;
          break;
        case reuse::Rtm::StoreKind::kAppended:
          if (snapshot.union_valid) merge_into_union(snapshot, trace);
          break;
        case reuse::Rtm::StoreKind::kRefreshed:
          break;  // identical content was already in the way
        case reuse::Rtm::StoreKind::kEvicted:
          // Some trace left the way and its inputs are unknown here:
          // only a rescan can shrink the union, and before saturation
          // a stale location could steal an admission.
          snapshot.union_valid = false;
          break;
      }
    }
    for (const LocVal& in : trace.inputs) {
      remember(snapshot, in.loc, in.value);
    }
  }

 private:
  /// Per-PC remembered input values, split by location kind so both
  /// sides of the predictor are keyed lookups: registers (raw locs
  /// 0..63) index a value array behind a presence bit mask, memory
  /// locations stay a short list. `count` preserves the original
  /// unified cap accounting exactly — a location is admitted iff fewer
  /// than kMaxSnapshot distinct locations were remembered when it
  /// first appeared, in the same remember() order as the old
  /// append-only list, so the remembered set (and hence every choose
  /// decision) is bit-identical to the pre-split layout.
  struct Snapshot {
    u64 reg_mask = 0;
    std::array<u64, isa::kNumRegs> reg_value{};
    SmallVector<LocVal, 8> mem;
    u32 count = 0;
    /// Cached distinct input locations of this PC's candidate set,
    /// split like the snapshot itself: a register bit mask plus the
    /// deduplicated memory locations. Invalidated by on_store (the
    /// only event that changes the PC's way contents).
    bool union_valid = false;
    u64 union_regs = 0;
    SmallVector<u64, 8> union_mem;
  };

  /// The original per-candidate training walk: remember each distinct
  /// input location (this fetch's MRU first-seen order) with the value
  /// it holds now. Repeats are skipped via a register bit mask plus a
  /// short memory-location list; an overflowing list only costs
  /// harmless re-remembering of the same current value.
  static void train_exact(Snapshot& snapshot, const SpecGate::Fetch& fetch) {
    u64 seen_regs = 0;
    SmallVector<u64, 8> seen_mem;
    for (const StoredTrace* candidate : fetch.candidates) {
      for (const LocVal& in : candidate->inputs) {
        if ((in.loc & isa::Loc::kMemTag) == 0) {
          const u64 bit = u64{1} << in.loc;
          if ((seen_regs & bit) != 0) continue;
          seen_regs |= bit;
        } else {
          bool seen = false;
          for (const u64 loc : seen_mem) {
            if (loc == in.loc) {
              seen = true;
              break;
            }
          }
          if (seen) continue;
          if (seen_mem.size() < 8) seen_mem.push_back(in.loc);
        }
        if (const auto value = fetch.state->value(in.loc)) {
          remember(snapshot, in.loc, *value);
        }
      }
    }
  }

  /// train_exact plus rebuilding the candidate-input union cache,
  /// with full (uncapped) memory deduplication so the list holds each
  /// location once (seen_mem saturating at 8 only affects which
  /// remember calls repeat, never the union contents).
  static void rebuild_and_train(Snapshot& snapshot,
                                const SpecGate::Fetch& fetch) {
    snapshot.union_mem.clear();
    u64 seen_regs = 0;
    SmallVector<u64, 8> seen_mem;
    for (const StoredTrace* candidate : fetch.candidates) {
      for (const LocVal& in : candidate->inputs) {
        if ((in.loc & isa::Loc::kMemTag) == 0) {
          const u64 bit = u64{1} << in.loc;
          if ((seen_regs & bit) != 0) continue;
          seen_regs |= bit;
        } else {
          bool seen = false;
          for (const u64 loc : seen_mem) {
            if (loc == in.loc) {
              seen = true;
              break;
            }
          }
          if (seen) continue;
          if (seen_mem.size() < 8) seen_mem.push_back(in.loc);
          bool in_union = false;
          for (const u64 loc : snapshot.union_mem) {
            if (loc == in.loc) {
              in_union = true;
              break;
            }
          }
          if (!in_union) snapshot.union_mem.push_back(in.loc);
        }
        if (const auto value = fetch.state->value(in.loc)) {
          remember(snapshot, in.loc, *value);
        }
      }
    }
    snapshot.union_regs = seen_regs;
    snapshot.union_valid = true;
  }

  /// Adds a stored trace's input locations to the cached union (set
  /// semantics — duplicates collapse into the mask / the deduped list).
  static void merge_into_union(Snapshot& snapshot, const StoredTrace& trace) {
    for (const LocVal& in : trace.inputs) {
      if ((in.loc & isa::Loc::kMemTag) == 0) {
        snapshot.union_regs |= u64{1} << in.loc;
        continue;
      }
      bool present = false;
      for (const u64 loc : snapshot.union_mem) {
        if (loc == in.loc) {
          present = true;
          break;
        }
      }
      if (!present) snapshot.union_mem.push_back(in.loc);
    }
  }

  static void remember(Snapshot& snapshot, u64 loc, u64 value) {
    if ((loc & isa::Loc::kMemTag) == 0) {
      const u64 bit = u64{1} << loc;
      if ((snapshot.reg_mask & bit) != 0) {
        snapshot.reg_value[static_cast<usize>(loc)] = value;
      } else if (snapshot.count < kMaxSnapshot) {
        snapshot.reg_mask |= bit;
        snapshot.reg_value[static_cast<usize>(loc)] = value;
        ++snapshot.count;
      }
      return;
    }
    for (LocVal& entry : snapshot.mem) {
      if (entry.loc == loc) {
        entry.value = value;
        return;
      }
    }
    if (snapshot.count < kMaxSnapshot) {
      snapshot.mem.push_back({loc, value});
      ++snapshot.count;
    }
  }

  static bool matches(const StoredTrace& candidate,
                      const Snapshot& snapshot) {
    for (const LocVal& in : candidate.inputs) {
      if ((in.loc & isa::Loc::kMemTag) == 0) {
        if ((snapshot.reg_mask >> in.loc & 1) == 0 ||
            snapshot.reg_value[static_cast<usize>(in.loc)] != in.value) {
          return false;
        }
        continue;
      }
      bool found = false;
      for (const LocVal& entry : snapshot.mem) {
        if (entry.loc == in.loc) {
          found = entry.value == in.value;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  // Traces carry at most 8 register + 4 memory inputs (TraceLimits);
  // the union over a PC's candidates rarely exceeds that, and a capped
  // snapshot only costs conservative no-attempts.
  static constexpr usize kMaxSnapshot = 24;

  FlatHashMap<isa::Pc, Snapshot> snapshots_;
  /// One-shot choose→train slot cache (invalidated by on_store, and
  /// consumed by the first train after it is set).
  Snapshot* cached_ = nullptr;
  isa::Pc cached_pc_ = isa::kInvalidPc;
};

/// The last-value pick, gated by a per-PC saturating confidence
/// counter trained on the actual reuse test's outcome: a PC only
/// attempts once the test has been seen to hit, and backs off after
/// misses — trading missed opportunities for fewer squashes.
class ConfidencePredictor final : public LastValuePredictor {
 public:
  explicit ConfidencePredictor(const PredictorConfig& config)
      : max_((u64{1} << config.confidence_bits) - 1),
        threshold_(config.confidence_threshold),
        initial_(std::min<u64>(config.initial_confidence, max_)) {
    TLR_ASSERT(config.confidence_bits >= 1 &&
               config.confidence_bits <= 16);
    TLR_ASSERT(threshold_ <= max_);
  }

  std::string_view name() const override { return "confidence"; }

  const StoredTrace* choose(const SpecGate::Fetch& fetch) override {
    u64* counter = counters_.find(fetch.pc);
    // Same one-shot choose→train pairing as the snapshot cache: the
    // counter map only mutates in train, which consumes the cache.
    cached_counter_ = counter;
    cached_counter_pc_ = fetch.pc;
    const u64 confidence = counter == nullptr ? initial_ : *counter;
    if (confidence < threshold_) return nullptr;
    return LastValuePredictor::choose(fetch);
  }

  void train(const SpecGate::Fetch& fetch, const StoredTrace* attempted,
             SpecOutcome outcome) override {
    LastValuePredictor::train(fetch, attempted, outcome);
    u64* slot = cached_counter_pc_ == fetch.pc ? cached_counter_ : nullptr;
    cached_counter_ = nullptr;
    cached_counter_pc_ = isa::kInvalidPc;
    if (slot == nullptr) {
      const auto [fresh, inserted] = counters_.try_emplace(fetch.pc);
      if (inserted) *fresh = initial_;
      slot = fresh;
    }
    u64& counter = *slot;
    if (outcome == SpecOutcome::kMisspec) {
      counter = 0;  // a squash costs real cycles: back off hard
    } else if (outcome == SpecOutcome::kCorrect ||
               fetch.oracle_choice != nullptr) {
      counter = std::min(max_, counter + 1);
    } else if (counter > 0) {
      --counter;
    }
  }

 private:
  u64 max_;
  u64 threshold_;
  u64 initial_;
  FlatHashMap<isa::Pc, u64> counters_;
  /// One-shot choose→train counter-slot cache (nullptr also encodes
  /// "probed and absent": train then inserts the initial counter).
  u64* cached_counter_ = nullptr;
  isa::Pc cached_counter_pc_ = isa::kInvalidPc;
};

}  // namespace

std::unique_ptr<TracePredictor> make_predictor(const PredictorConfig& config) {
  switch (config.kind) {
    case PredictorKind::kOracle:
      return std::make_unique<OraclePredictor>();
    case PredictorKind::kLastValue:
      return std::make_unique<LastValuePredictor>();
    case PredictorKind::kConfidence:
      return std::make_unique<ConfidencePredictor>(config);
  }
  TLR_ASSERT_MSG(false, "unknown predictor kind");
  return nullptr;
}

}  // namespace tlr::spec
