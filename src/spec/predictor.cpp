#include "spec/predictor.hpp"

#include "util/assert.hpp"
#include "util/flat_hash_map.hpp"
#include "util/small_vector.hpp"

namespace tlr::spec {

using reuse::LocVal;
using reuse::SpecGate;
using reuse::SpecOutcome;
using reuse::StoredTrace;

std::string_view predictor_name(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kOracle: return "oracle";
    case PredictorKind::kLastValue: return "last_value";
    case PredictorKind::kConfidence: return "confidence";
  }
  return "?";
}

std::optional<PredictorKind> predictor_from_name(std::string_view name) {
  if (name == "oracle") return PredictorKind::kOracle;
  if (name == "last_value") return PredictorKind::kLastValue;
  if (name == "confidence") return PredictorKind::kConfidence;
  return std::nullopt;
}

namespace {

class OraclePredictor final : public TracePredictor {
 public:
  std::string_view name() const override { return "oracle"; }
  const StoredTrace* choose(const SpecGate::Fetch& fetch) override {
    return fetch.oracle_choice;
  }
  void train(const SpecGate::Fetch&, const StoredTrace*,
             SpecOutcome) override {}
  void on_store(const StoredTrace&) override {}
};

/// Per-PC last-value input prediction: remember, per initial PC, the
/// values the candidate input locations held at the previous
/// resolution of that PC; predict they still hold and attempt the
/// first (MRU) candidate whose stored inputs match the remembered
/// snapshot. Misspeculates exactly when an input changed between two
/// visits — the loop-carried case a real mechanism has to survive.
class LastValuePredictor : public TracePredictor {
 public:
  std::string_view name() const override { return "last_value"; }

  const StoredTrace* choose(const SpecGate::Fetch& fetch) override {
    const Snapshot* snapshot = snapshots_.find(fetch.pc);
    if (snapshot == nullptr) return nullptr;
    for (const StoredTrace* candidate : fetch.candidates) {
      if (matches(*candidate, *snapshot)) return candidate;
    }
    return nullptr;
  }

  void train(const SpecGate::Fetch& fetch, const StoredTrace*,
             SpecOutcome) override {
    // Remember the values the candidates' input locations hold *now*:
    // the prediction for this PC's next visit. Candidates of one PC
    // overwhelmingly share input locations, and remembering the same
    // location twice in one resolution writes the same current value —
    // so repeats are skipped outright (a register bit mask plus a
    // short memory-location list; an overflowing list only costs
    // harmless re-remembering). Training runs once per gated fetch
    // (DESIGN.md §10).
    Snapshot& snapshot = snapshots_[fetch.pc];
    u64 seen_regs = 0;
    SmallVector<u64, 8> seen_mem;
    for (const StoredTrace* candidate : fetch.candidates) {
      for (const LocVal& in : candidate->inputs) {
        if ((in.loc & isa::Loc::kMemTag) == 0) {
          const u64 bit = u64{1} << in.loc;
          if ((seen_regs & bit) != 0) continue;
          seen_regs |= bit;
        } else {
          bool seen = false;
          for (const u64 loc : seen_mem) {
            if (loc == in.loc) {
              seen = true;
              break;
            }
          }
          if (seen) continue;
          if (seen_mem.size() < 8) seen_mem.push_back(in.loc);
        }
        if (const auto value = fetch.state->value(in.loc)) {
          remember(snapshot, in.loc, *value);
        }
      }
    }
  }

  void on_store(const StoredTrace& trace) override {
    // A freshly collected trace's inputs were the live values.
    Snapshot& snapshot = snapshots_[trace.start_pc];
    for (const LocVal& in : trace.inputs) {
      remember(snapshot, in.loc, in.value);
    }
  }

 private:
  using Snapshot = SmallVector<LocVal, 12>;

  static void remember(Snapshot& snapshot, u64 loc, u64 value) {
    for (LocVal& entry : snapshot) {
      if (entry.loc == loc) {
        entry.value = value;
        return;
      }
    }
    if (snapshot.size() < kMaxSnapshot) snapshot.push_back({loc, value});
  }

  static bool matches(const StoredTrace& candidate,
                      const Snapshot& snapshot) {
    for (const LocVal& in : candidate.inputs) {
      bool found = false;
      for (const LocVal& entry : snapshot) {
        if (entry.loc == in.loc) {
          found = entry.value == in.value;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  // Traces carry at most 8 register + 4 memory inputs (TraceLimits);
  // the union over a PC's candidates rarely exceeds that, and a capped
  // snapshot only costs conservative no-attempts.
  static constexpr usize kMaxSnapshot = 24;

  FlatHashMap<isa::Pc, Snapshot> snapshots_;
};

/// The last-value pick, gated by a per-PC saturating confidence
/// counter trained on the actual reuse test's outcome: a PC only
/// attempts once the test has been seen to hit, and backs off after
/// misses — trading missed opportunities for fewer squashes.
class ConfidencePredictor final : public LastValuePredictor {
 public:
  explicit ConfidencePredictor(const PredictorConfig& config)
      : max_((u64{1} << config.confidence_bits) - 1),
        threshold_(config.confidence_threshold),
        initial_(std::min<u64>(config.initial_confidence, max_)) {
    TLR_ASSERT(config.confidence_bits >= 1 &&
               config.confidence_bits <= 16);
    TLR_ASSERT(threshold_ <= max_);
  }

  std::string_view name() const override { return "confidence"; }

  const StoredTrace* choose(const SpecGate::Fetch& fetch) override {
    const u64* counter = counters_.find(fetch.pc);
    const u64 confidence = counter == nullptr ? initial_ : *counter;
    if (confidence < threshold_) return nullptr;
    return LastValuePredictor::choose(fetch);
  }

  void train(const SpecGate::Fetch& fetch, const StoredTrace* attempted,
             SpecOutcome outcome) override {
    LastValuePredictor::train(fetch, attempted, outcome);
    const auto [slot, inserted] = counters_.try_emplace(fetch.pc);
    if (inserted) *slot = initial_;
    u64& counter = *slot;
    if (outcome == SpecOutcome::kMisspec) {
      counter = 0;  // a squash costs real cycles: back off hard
    } else if (outcome == SpecOutcome::kCorrect ||
               fetch.oracle_choice != nullptr) {
      counter = std::min(max_, counter + 1);
    } else if (counter > 0) {
      --counter;
    }
  }

 private:
  u64 max_;
  u64 threshold_;
  u64 initial_;
  FlatHashMap<isa::Pc, u64> counters_;
};

}  // namespace

std::unique_ptr<TracePredictor> make_predictor(const PredictorConfig& config) {
  switch (config.kind) {
    case PredictorKind::kOracle:
      return std::make_unique<OraclePredictor>();
    case PredictorKind::kLastValue:
      return std::make_unique<LastValuePredictor>();
    case PredictorKind::kConfidence:
      return std::make_unique<ConfidencePredictor>(config);
  }
  TLR_ASSERT_MSG(false, "unknown predictor kind");
  return nullptr;
}

}  // namespace tlr::spec
