// Trace-reuse predictors (DESIGN.md §8).
//
// The limit study commits a reuse whenever the RTM's value-compare
// test passes — an oracle: reading and comparing every stored input
// value at fetch is exactly the serial work a real front end cannot
// afford. A realizable mechanism *predicts* whether a stored trace's
// inputs still hold, consumes its outputs speculatively, and verifies
// in the background; a wrong prediction squashes and pays a recovery
// penalty (spec::SpecTimer). A TracePredictor is that fetch-time
// policy: it picks which stored trace to attempt — or none — from the
// candidate set alone, without running the value test.
//
// Three policies span the design space:
//   kOracle     always attempts the actual test's pick: reproduces the
//               limit study bit-for-bit (zero misspeculation).
//   kLastValue  per-PC last-value input prediction: attempt the first
//               (MRU) candidate whose stored inputs match the values
//               those locations held at this PC's previous resolution.
//   kConfidence the last-value pick, gated by a per-PC saturating
//               confidence counter trained on whether the actual test
//               hits; cold or recently-wrong PCs do not attempt.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "reuse/rtm_sim.hpp"
#include "util/types.hpp"

namespace tlr::spec {

enum class PredictorKind : u8 {
  kOracle,
  kLastValue,
  kConfidence,
};

struct PredictorConfig {
  PredictorKind kind = PredictorKind::kOracle;

  // Confidence gate shape (kConfidence only): an n-bit saturating
  // counter per initial PC, attempt at `threshold` and above. The
  // default 2-bit / threshold-2 / start-1 counter needs one observed
  // would-hit before the first attempt and two consecutive would-
  // misses to back off — the classic weakly-biased two-bit scheme.
  u32 confidence_bits = 2;
  u32 confidence_threshold = 2;
  u32 initial_confidence = 1;
};

/// Stable policy names ("oracle", "last_value", "confidence") — CLI
/// flags and report labels.
std::string_view predictor_name(PredictorKind kind);
std::optional<PredictorKind> predictor_from_name(std::string_view name);

/// Fetch-time reuse policy. One instance serves one simulated stream;
/// implementations are deterministic functions of the fetch sequence.
class TracePredictor {
 public:
  virtual ~TracePredictor() = default;

  virtual std::string_view name() const = 0;

  /// Whether choose/train ever read `fetch.candidates`. The oracle
  /// policy decides from `fetch.oracle_choice` alone and returns
  /// false, letting the simulator skip candidate enumeration
  /// (reuse::SpecGate::wants_candidates).
  virtual bool wants_candidates() const { return true; }

  /// The stored trace to speculatively attempt, or nullptr. Realizable
  /// policies must decide from `fetch.candidates` and their own
  /// trained state only; `fetch.oracle_choice` is for kOracle.
  virtual const reuse::StoredTrace* choose(
      const reuse::SpecGate::Fetch& fetch) = 0;

  /// Resolution-time training: by the time a fetch resolves (the
  /// attempt verified, or the instructions executed) the mechanism has
  /// learned the actual input values, so reading `fetch.state` and the
  /// actual outcome here is realizable.
  virtual void train(const reuse::SpecGate::Fetch& fetch,
                     const reuse::StoredTrace* attempted,
                     reuse::SpecOutcome outcome) = 0;

  /// A trace was stored at its start PC (its recorded inputs were the
  /// live values at collection time — free training data). `kind` says
  /// how the store changed the PC's stored-trace set (SpecGate
  /// contract), so cached per-PC views of it can be kept current.
  virtual void on_store(const reuse::StoredTrace& trace,
                        reuse::Rtm::StoreKind kind) = 0;
};

std::unique_ptr<TracePredictor> make_predictor(const PredictorConfig& config);

}  // namespace tlr::spec
