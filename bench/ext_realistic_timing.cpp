// Extension (ours): speed-up of the *realistic* implementation.
//
// The paper prices only the limit study (infinite history tables,
// Figs 4-8) and reports the finite-RTM configurations of Fig 9 purely
// as coverage/granularity. This bench closes the loop: the
// RtmSimulator emits a timing::ReusePlan for exactly the traces it
// actually reused, and the §4 dataflow timer prices it — i.e. "what
// does the 4K/256K-entry RTM of Fig 9 buy in Fig 6b terms?".
#include "bench_common.hpp"
#include "reuse/reusability.hpp"
#include "reuse/rtm_sim.hpp"
#include "reuse/trace_builder.hpp"
#include "timing/timer.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace tlr;
  core::SuiteConfig config = bench::config_from_env(/*default_length=*/150000);

  const std::pair<const char*, reuse::RtmGeometry> geometries[] = {
      {"4K", reuse::RtmGeometry::rtm4k()},
      {"256K", reuse::RtmGeometry::rtm256k()},
  };

  TextTable table(
      "Extension: realistic trace-reuse speed-up (I4 EXP, 256-entry "
      "window, 1-cycle reuse latency)");
  table.set_columns({"benchmark", "4K reused %", "4K speed-up",
                     "256K reused %", "256K speed-up", "limit (Fig 6b)"});

  std::vector<double> speed4k, speed256k;
  for (const std::string_view name : workloads::workload_names()) {
    const auto stream = core::collect_workload_stream(name, config);

    timing::TimerConfig timer_config;
    timer_config.window = config.window;
    const auto base = timing::compute_timing(stream, nullptr, timer_config);

    table.begin_row();
    table.add_cell(std::string(name));
    double speedups[2];
    for (int g = 0; g < 2; ++g) {
      reuse::RtmSimConfig sim_config;
      sim_config.geometry = geometries[g].second;
      sim_config.heuristic = reuse::CollectHeuristic::kFixedExpand;
      sim_config.fixed_n = 4;
      sim_config.build_plan = true;
      const auto sim = reuse::RtmSimulator(sim_config).run(stream);
      const auto timed =
          timing::compute_timing(stream, &sim.plan, timer_config);
      speedups[g] = timing::speedup(base, timed);
      table.add_percent(sim.reuse_fraction());
      table.add_number(speedups[g]);
    }
    speed4k.push_back(speedups[0]);
    speed256k.push_back(speedups[1]);

    // Limit-study reference for this stream length.
    const auto reusable = reuse::analyze_reusability(stream);
    const auto limit_plan =
        reuse::build_max_trace_plan(stream, reusable.reusable);
    const auto limit = timing::compute_timing(stream, &limit_plan,
                                              timer_config);
    table.add_number(timing::speedup(base, limit));

    benchmark::RegisterBenchmark(
        ("ext_realistic/" + std::string(name)).c_str(),
        [s4 = speedups[0], s256 = speedups[1]](benchmark::State& state) {
          for (auto _ : state) benchmark::DoNotOptimize(s4);
          state.counters["speedup_4k"] = s4;
          state.counters["speedup_256k"] = s256;
        })
        ->Iterations(1);
  }
  std::cout << table.to_string() << "suite harmonic means: 4K "
            << harmonic_mean(speed4k) << "x, 256K "
            << harmonic_mean(speed256k)
            << "x — the preliminary realistic implementation captures "
               "only a sliver of the limit study's gain: short reused "
               "traces (Fig 9b) pay one reuse operation per few "
               "instructions, so most of the window/fetch benefit "
               "remains on the table\n\n";
  return bench::run_benchmarks(argc, argv);
}
