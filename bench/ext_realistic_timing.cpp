// Extension (ours): speed-up of the *realistic* implementation.
//
// The paper prices only the limit study (infinite history tables,
// Figs 4-8) and reports the finite-RTM configurations of Fig 9 purely
// as coverage/granularity. This bench closes the loop: the
// RtmSimulator's event stream drives the §4 dataflow timer directly —
// i.e. "what does the 4K/256K-entry RTM of Fig 9 buy in Fig 6b
// terms?". Everything — base timing, both RTM capacities with their
// timers, and the limit-study reference — comes from one chunked
// interpreter pass per workload, with workloads fanned across the
// StudyEngine's thread pool.
#include "bench_common.hpp"
#include "core/engine.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace tlr;
  core::SuiteConfig config = bench::config_from_env(/*default_length=*/150000);

  const std::pair<const char*, reuse::RtmGeometry> geometries[] = {
      {"4K", reuse::RtmGeometry::rtm4k()},
      {"256K", reuse::RtmGeometry::rtm256k()},
  };

  const auto names = workloads::workload_names();
  struct Row {
    double frac[2] = {0, 0};
    double speedup[2] = {0, 0};
    double limit_speedup = 0;
  };
  std::vector<Row> rows(names.size());

  core::StudyEngine engine(bench::engine_options_from_env());
  engine.parallel_for(names.size(), [&](usize w) {
    timing::TimerConfig timer_config;
    timer_config.window = config.window;

    core::TimingConsumer base(core::TimingConsumer::Mode::kBase,
                              timer_config);
    std::vector<std::unique_ptr<core::RtmSimConsumer>> sims;
    for (const auto& [label, geometry] : geometries) {
      reuse::RtmSimConfig sim_config;
      sim_config.geometry = geometry;
      sim_config.heuristic = reuse::CollectHeuristic::kFixedExpand;
      sim_config.fixed_n = 4;
      sims.push_back(
          std::make_unique<core::RtmSimConsumer>(sim_config, timer_config));
    }
    // Limit-study reference for this stream length.
    core::MaxTraceConsumer traces;
    core::TraceTimingSink limit(timer_config);
    traces.add_sink(&limit);

    std::vector<core::StreamConsumer*> consumers = {&base, sims[0].get(),
                                                    sims[1].get(), &traces};
    engine.run_workload_stream(names[w], config, consumers);

    const auto base_result = base.result();
    for (int g = 0; g < 2; ++g) {
      rows[w].frac[g] = sims[g]->result().reuse_fraction();
      rows[w].speedup[g] =
          timing::speedup(base_result, sims[g]->timing_result());
    }
    rows[w].limit_speedup = timing::speedup(base_result, limit.result());
  });

  TextTable table(
      "Extension: realistic trace-reuse speed-up (I4 EXP, 256-entry "
      "window, 1-cycle reuse latency)");
  table.set_columns({"benchmark", "4K reused %", "4K speed-up",
                     "256K reused %", "256K speed-up", "limit (Fig 6b)"});

  std::vector<double> speed4k, speed256k;
  for (usize w = 0; w < names.size(); ++w) {
    const Row& row = rows[w];
    table.begin_row();
    table.add_cell(std::string(names[w]));
    for (int g = 0; g < 2; ++g) {
      table.add_percent(row.frac[g]);
      table.add_number(row.speedup[g]);
    }
    table.add_number(row.limit_speedup);
    speed4k.push_back(row.speedup[0]);
    speed256k.push_back(row.speedup[1]);

    benchmark::RegisterBenchmark(
        ("ext_realistic/" + std::string(names[w])).c_str(),
        [s4 = row.speedup[0], s256 = row.speedup[1]](benchmark::State& state) {
          for (auto _ : state) benchmark::DoNotOptimize(s4);
          state.counters["speedup_4k"] = s4;
          state.counters["speedup_256k"] = s256;
        })
        ->Iterations(1);
  }
  std::cout << table.to_string() << "suite harmonic means: 4K "
            << harmonic_mean(speed4k) << "x, 256K "
            << harmonic_mean(speed256k)
            << "x — the preliminary realistic implementation captures "
               "only a sliver of the limit study's gain: short reused "
               "traces (Fig 9b) pay one reuse operation per few "
               "instructions, so most of the window/fetch benefit "
               "remains on the table\n\n";
  return bench::run_benchmarks(argc, argv);
}
