// Shared plumbing for the figure-reproduction bench binaries.
//
// Every binary prints the same rows/series its paper figure plots (as
// aligned text tables) and registers google-benchmark entries whose
// counters carry the headline values, so both humans and tooling can
// consume the results. Stream parameters can be overridden without
// rebuilding:
//   TLR_LENGTH  instructions measured per program (default 400000)
//   TLR_SKIP    warm-up instructions skipped      (default 50000)
//   TLR_SEED    workload data seed
//   TLR_THREADS worker threads for the study engine (default: all)
//   TLR_CHUNK   stream chunk size in instructions
//   TLR_PROFILE scale profile (laptop/ci/paper) instead of the
//               explicit TLR_LENGTH/TLR_SKIP knobs
//   TLR_REPORT  path: also write the suite metrics as a tlr-report/1
//               JSON document (same writer as tools/reuse_study)
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "core/engine.hpp"
#include "core/figures.hpp"
#include "core/profile.hpp"
#include "core/report.hpp"
#include "core/study.hpp"

namespace tlr::bench {

inline u64 env_u64(const char* name, u64 fallback) {
  const char* value = std::getenv(name);
  // Reject non-numeric input rather than let strtoull wrap negatives
  // into astronomically long runs.
  if (value == nullptr || value[0] < '0' || value[0] > '9') return fallback;
  return std::strtoull(value, nullptr, 10);
}

inline core::SuiteConfig config_from_env(u64 default_length = 400000) {
  core::SuiteConfig config;
  config.length = env_u64("TLR_LENGTH", default_length);
  config.skip = env_u64("TLR_SKIP", 50000);
  config.seed = env_u64("TLR_SEED", config.seed);
  return config;
}

inline core::EngineOptions engine_options_from_env() {
  core::EngineOptions options;
  options.threads = env_u64("TLR_THREADS", 0);
  options.chunk_size =
      env_u64("TLR_CHUNK", vm::StreamSource::kDefaultChunkSize);
  return options;
}

/// The scale profile the environment selects: TLR_PROFILE by name, or
/// an anonymous profile from the TLR_LENGTH/TLR_SKIP/TLR_SEED knobs.
inline core::ScaleProfile profile_from_env(u64 default_length = 400000) {
  if (const char* name = std::getenv("TLR_PROFILE")) {
    if (auto profile = core::ScaleProfile::named(name)) return *profile;
    std::cerr << "bench: unknown TLR_PROFILE '" << name
              << "', using env/default config\n";
  }
  return core::ScaleProfile::custom(config_from_env(default_length));
}

/// Computes the suite metrics once per process (the figure tables and
/// the benchmark counters share them): one chunked interpreter pass
/// per workload, workloads fanned across the engine's thread pool.
/// When TLR_REPORT is set, the metrics are also published as a JSON
/// report through core::build_report.
inline const std::vector<core::WorkloadMetrics>& suite_metrics(
    const core::MetricOptions& options = {}) {
  static const std::vector<core::WorkloadMetrics> metrics = [&options] {
    const auto start = std::chrono::steady_clock::now();
    const core::ScaleProfile profile = profile_from_env();
    core::StudyEngine engine(engine_options_from_env());
    std::vector<core::WorkloadMetrics> suite =
        engine.analyze_profile(profile, options);
    if (const char* path = std::getenv("TLR_REPORT")) {
      core::ReportMeta meta;
      meta.tool = "bench";
      meta.threads = engine.thread_count();
      meta.chunk_size = engine.options().chunk_size;
      meta.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      std::string error;
      if (!core::write_report_file(
              core::build_report(profile, options, suite, meta,
                                 core::ReportFigures::all_series()),
              path, &error)) {
        std::cerr << "bench: TLR_REPORT failed: " << error << "\n";
      }
    }
    return suite;
  }();
  return metrics;
}

/// Registers one no-op benchmark per suite entry that reports `value`
/// extracted from the cached metrics, so `--benchmark_format=json`
/// exports the figure's series.
inline void register_series(const std::string& prefix,
                            double (*extract)(const core::WorkloadMetrics&)) {
  for (const core::WorkloadMetrics& m : suite_metrics()) {
    benchmark::RegisterBenchmark(
        (prefix + "/" + m.name).c_str(),
        [extract, &m](benchmark::State& state) {
          for (auto _ : state) {
            benchmark::DoNotOptimize(extract(m));
          }
          state.counters["value"] = extract(m);
        })
        ->Iterations(1);
  }
}

inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace tlr::bench
