// Shared plumbing for the figure-reproduction bench binaries.
//
// Every binary prints the same rows/series its paper figure plots (as
// aligned text tables) and registers google-benchmark entries whose
// counters carry the headline values, so both humans and tooling can
// consume the results. Stream parameters can be overridden without
// rebuilding:
//   TLR_LENGTH  instructions measured per program (default 400000)
//   TLR_SKIP    warm-up instructions skipped      (default 50000)
//   TLR_SEED    workload data seed
//   TLR_THREADS worker threads for the study engine (default: all)
//   TLR_CHUNK   stream chunk size in instructions
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "core/engine.hpp"
#include "core/figures.hpp"
#include "core/study.hpp"

namespace tlr::bench {

inline u64 env_u64(const char* name, u64 fallback) {
  const char* value = std::getenv(name);
  return value ? std::strtoull(value, nullptr, 10) : fallback;
}

inline core::SuiteConfig config_from_env(u64 default_length = 400000) {
  core::SuiteConfig config;
  config.length = env_u64("TLR_LENGTH", default_length);
  config.skip = env_u64("TLR_SKIP", 50000);
  config.seed = env_u64("TLR_SEED", config.seed);
  return config;
}

inline core::EngineOptions engine_options_from_env() {
  core::EngineOptions options;
  options.threads = env_u64("TLR_THREADS", 0);
  options.chunk_size =
      env_u64("TLR_CHUNK", vm::StreamSource::kDefaultChunkSize);
  return options;
}

/// Computes the suite metrics once per process (the figure tables and
/// the benchmark counters share them): one chunked interpreter pass
/// per workload, workloads fanned across the engine's thread pool.
inline const std::vector<core::WorkloadMetrics>& suite_metrics(
    const core::MetricOptions& options = {}) {
  static const std::vector<core::WorkloadMetrics> metrics =
      core::StudyEngine(engine_options_from_env())
          .analyze_suite(config_from_env(), options);
  return metrics;
}

/// Registers one no-op benchmark per suite entry that reports `value`
/// extracted from the cached metrics, so `--benchmark_format=json`
/// exports the figure's series.
inline void register_series(const std::string& prefix,
                            double (*extract)(const core::WorkloadMetrics&)) {
  for (const core::WorkloadMetrics& m : suite_metrics()) {
    benchmark::RegisterBenchmark(
        (prefix + "/" + m.name).c_str(),
        [extract, &m](benchmark::State& state) {
          for (auto _ : state) {
            benchmark::DoNotOptimize(extract(m));
          }
          state.counters["value"] = extract(m);
        })
        ->Iterations(1);
  }
}

inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace tlr::bench
