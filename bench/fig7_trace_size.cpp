// Figure 7: average maximal-trace size per benchmark (the paper plots
// this on a log axis: INT programs 14.5-36.7 instructions; FP bimodal —
// applu/apsi/fpppp tiny, hydro2d up to ~203).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tlr;
  const auto& suite = bench::suite_metrics();

  std::cout << core::fig7_trace_size(suite).to_table("avg trace size", 1)
                   .to_string()
            << "(paper: larger traces correlate with higher Fig 6b "
               "speed-ups)\n\n";

  bench::register_series("fig7/avg_trace_size",
                         [](const core::WorkloadMetrics& m) {
                           return m.trace_stats.avg_size;
                         });
  return bench::run_benchmarks(argc, argv);
}
