// Figure 10 (ours): speculative trace reuse — what the limit study's
// oracle pricing is worth once a realizable mechanism must *predict*
// that a stored trace's inputs still hold and pay to be wrong.
// Sweeps (predictor x squash penalty x RTM capacity) under the I4 EXP
// collection heuristic and reports committed reuse, attempt accuracy
// and the 256-entry-window speed-up against the base machine. The
// oracle predictor row reproduces the limit pricing of
// ext_realistic_timing exactly (DESIGN.md §8).
#include "bench_common.hpp"
#include "core/engine.hpp"

int main(int argc, char** argv) {
  using namespace tlr;
  const core::ScaleProfile profile =
      bench::profile_from_env(/*default_length=*/150000);

  core::StudyEngine engine(bench::engine_options_from_env());
  core::Fig10Options options;
  const core::Fig10Result result =
      core::fig10_speculative_reuse(engine, profile, options);

  std::cout << result.reuse_table().to_string()
            << "(the oracle row is the limit study; realizable "
               "prediction trades most of that coverage for the right "
               "to be wrong cheaply)\n\n";
  for (usize q = 0; q < result.penalties.size(); ++q) {
    std::cout << result.speedup_table(q).to_string();
  }
  std::cout << "(oracle speed-ups are penalty-invariant — zero "
               "misspeculation is the free lunch the limit study "
               "assumes; the gap to the gated predictor prices "
               "realizability)\n\n";

  // Counters: one benchmark per (predictor, geometry) cell with the
  // zero-penalty and worst-penalty speed-ups.
  for (usize p = 0; p < result.predictors.size(); ++p) {
    for (usize g = 0; g < result.geometries.size(); ++g) {
      const core::Fig10Cell cell = result.cells[p][g];
      benchmark::RegisterBenchmark(
          ("fig10/" + result.predictors[p] + "/" + result.geometries[g])
              .c_str(),
          [cell](benchmark::State& state) {
            for (auto _ : state) benchmark::DoNotOptimize(cell);
            state.counters["reused_pct"] = cell.reuse_fraction * 100.0;
            state.counters["accuracy_pct"] = cell.accuracy * 100.0;
            state.counters["speedup_p0"] = cell.speedups.front();
            state.counters["speedup_pmax"] = cell.speedups.back();
          })
          ->Iterations(1);
    }
  }
  return bench::run_benchmarks(argc, argv);
}
