// Figure 9: the realistic implementation — finite Reuse Trace Memory
// (512 / 4K / 32K / 256K entries) with the dynamic trace-collection
// heuristics ILR NE, ILR EXP and I(1)..I(8) EXP. (a) percentage of
// dynamic instructions reused; (b) average reused-trace size.
//
// This is the most expensive experiment (10 heuristics x 4 capacities x
// 14 benchmarks); it defaults to a shorter window than the limit-study
// benches. Override with TLR_LENGTH.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tlr;
  core::SuiteConfig config = bench::config_from_env(/*default_length=*/150000);

  const core::Fig9Result result = core::fig9_finite_rtm(config);
  std::cout << result.reusability_table().to_string()
            << "(paper: ~25% reused at 4K entries with ~6-inst traces, "
               "~60% at 256K; expansion grows traces at near-constant "
               "reusability)\n\n"
            << result.trace_size_table().to_string()
            << "(paper: I(n) trace size grows with n; reusability falls "
               "as traces grow — the overhead/coverage trade-off)\n\n";

  // Counters: one benchmark per (heuristic, geometry) cell.
  const auto heuristics = core::fig9_heuristics();
  const auto geometries = core::fig9_geometries();
  for (usize h = 0; h < heuristics.size(); ++h) {
    for (usize g = 0; g < geometries.size(); ++g) {
      const core::Fig9Cell cell = result.cells[h][g];
      benchmark::RegisterBenchmark(
          ("fig9/" + heuristics[h].label + "/" + geometries[g].first)
              .c_str(),
          [cell](benchmark::State& state) {
            for (auto _ : state) benchmark::DoNotOptimize(cell);
            state.counters["reused_pct"] = cell.reuse_fraction * 100.0;
            state.counters["avg_trace_size"] = cell.avg_trace_size;
          })
          ->Iterations(1);
    }
  }
  return bench::run_benchmarks(argc, argv);
}
