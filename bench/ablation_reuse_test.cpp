// Ablation (ours): value-compare reuse test vs the simpler
// invalidation/valid-bit test (§3.3 describes both options; the paper
// evaluates only value-compare for the finite tables). The valid-bit
// scheme needs just one bit per test but kills an entry on *any* write
// to an input location, even a silent one — this bench quantifies how
// much reuse that costs. Both flavours are simulated from one chunked
// interpreter pass per workload, workloads in parallel.
#include <array>
#include <memory>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "reuse/rtm_sim.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace tlr;
  core::SuiteConfig config = bench::config_from_env(/*default_length=*/150000);

  const auto names = workloads::workload_names();
  std::vector<std::array<double, 2>> fracs(names.size());

  core::StudyEngine engine(bench::engine_options_from_env());
  engine.parallel_for(names.size(), [&](usize w) {
    std::vector<std::unique_ptr<core::RtmSimConsumer>> sims;
    std::vector<core::StreamConsumer*> consumers;
    for (int mode = 0; mode < 2; ++mode) {
      reuse::RtmSimConfig sim_config;
      sim_config.geometry = reuse::RtmGeometry::rtm4k();
      sim_config.heuristic = reuse::CollectHeuristic::kFixedExpand;
      sim_config.fixed_n = 4;
      sim_config.reuse_test = mode == 0 ? reuse::ReuseTestKind::kValueCompare
                                        : reuse::ReuseTestKind::kValidBit;
      sims.push_back(std::make_unique<core::RtmSimConsumer>(sim_config));
      consumers.push_back(sims.back().get());
    }
    engine.run_workload_stream(names[w], config, consumers);
    for (int mode = 0; mode < 2; ++mode) {
      fracs[w][static_cast<usize>(mode)] =
          sims[static_cast<usize>(mode)]->result().reuse_fraction();
    }
  });

  TextTable table(
      "Ablation: reuse-test flavour (I4 EXP heuristic, 4K-entry RTM)");
  table.set_columns({"benchmark", "value-compare %", "valid-bit %",
                     "retained"});
  std::vector<double> ratios;
  for (usize w = 0; w < names.size(); ++w) {
    const double* frac = fracs[w].data();
    table.begin_row();
    table.add_cell(std::string(names[w]));
    table.add_percent(frac[0]);
    table.add_percent(frac[1]);
    table.add_cell(frac[0] > 0
                       ? std::to_string(static_cast<int>(
                             100.0 * frac[1] / frac[0])) + "%"
                       : "-");
    if (frac[0] > 0) ratios.push_back(frac[1] / frac[0]);

    benchmark::RegisterBenchmark(
        ("ablation_reuse_test/" + std::string(names[w])).c_str(),
        [frac0 = frac[0], frac1 = frac[1]](benchmark::State& state) {
          for (auto _ : state) benchmark::DoNotOptimize(frac0);
          state.counters["value_compare_pct"] = frac0 * 100.0;
          state.counters["valid_bit_pct"] = frac1 * 100.0;
        })
        ->Iterations(1);
  }
  std::cout << table.to_string() << "valid-bit retains "
            << static_cast<int>(100.0 * tlr::arithmetic_mean(ratios))
            << "% of value-compare reuse on average (silent writes and "
               "register churn invalidate aggressively)\n\n";
  return bench::run_benchmarks(argc, argv);
}
