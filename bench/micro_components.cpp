// Microbenchmarks of the library's hot components: interpreter
// throughput, dataflow-timer throughput, reusability analysis, and RTM
// lookup/insert. These are genuine google-benchmark timing loops (the
// figure benches above report reproduced values instead).
#include <benchmark/benchmark.h>

#include "core/engine.hpp"
#include "core/study.hpp"
#include "reuse/instr_table.hpp"
#include "reuse/reusability.hpp"
#include "reuse/rtm_sim.hpp"
#include "timing/timer.hpp"
#include "vm/interpreter.hpp"
#include "workloads/workload.hpp"

namespace tlr {
namespace {

const std::vector<isa::DynInst>& sample_stream() {
  static const std::vector<isa::DynInst> stream = [] {
    vm::RunLimits limits;
    limits.skip = 10000;
    limits.max_emitted = 100000;
    return vm::collect_stream(workloads::make_compress({}).program, limits);
  }();
  return stream;
}

void BM_InterpreterThroughput(benchmark::State& state) {
  const workloads::Workload w = workloads::make_compress({});
  for (auto _ : state) {
    vm::Interpreter interp(w.program);
    vm::RunLimits limits;
    limits.max_emitted = static_cast<u64>(state.range(0));
    u64 sink = 0;
    interp.run(limits, [&sink](const isa::DynInst& inst) {
      sink += inst.pc;
      return true;
    });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InterpreterThroughput)->Arg(50000);

void BM_ReusabilityAnalysis(benchmark::State& state) {
  const auto& stream = sample_stream();
  for (auto _ : state) {
    const auto result = reuse::analyze_reusability(stream);
    benchmark::DoNotOptimize(result.reusable_count);
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_ReusabilityAnalysis);

void BM_InfiniteWindowTimer(benchmark::State& state) {
  const auto& stream = sample_stream();
  for (auto _ : state) {
    const auto result = timing::compute_timing(stream, nullptr, {});
    benchmark::DoNotOptimize(result.cycles);
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_InfiniteWindowTimer);

void BM_WindowedTimer(benchmark::State& state) {
  const auto& stream = sample_stream();
  timing::TimerConfig config;
  config.window = static_cast<u32>(state.range(0));
  for (auto _ : state) {
    const auto result = timing::compute_timing(stream, nullptr, config);
    benchmark::DoNotOptimize(result.cycles);
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_WindowedTimer)->Arg(64)->Arg(256)->Arg(1024);

void BM_RtmSimulator(benchmark::State& state) {
  const auto& stream = sample_stream();
  for (auto _ : state) {
    reuse::RtmSimConfig config;
    config.fixed_n = static_cast<u32>(state.range(0));
    reuse::RtmSimulator sim(config);
    const auto result = sim.run(stream);
    benchmark::DoNotOptimize(result.reused_instructions);
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_RtmSimulator)->Arg(1)->Arg(4)->Arg(8);

void BM_FiniteInstrTable(benchmark::State& state) {
  const auto& stream = sample_stream();
  for (auto _ : state) {
    reuse::FiniteInstrTable table(4096);
    u64 hits = 0;
    for (const auto& inst : stream) hits += table.lookup_insert(inst);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_FiniteInstrTable);

void BM_EngineSinglePassAnalyze(benchmark::State& state) {
  // The full single-workload analysis (every metric from one chunked
  // pass) at the given chunk size — the end-to-end hot path of suite
  // runs.
  core::SuiteConfig config;
  config.skip = 10000;
  config.length = 100000;
  core::EngineOptions options;
  options.chunk_size = static_cast<usize>(state.range(0));
  for (auto _ : state) {
    core::StudyEngine engine(options);
    const auto metrics = engine.analyze("compress", config);
    benchmark::DoNotOptimize(metrics.base_win);
  }
  state.SetItemsProcessed(state.iterations() * config.length);
}
BENCHMARK(BM_EngineSinglePassAnalyze)->Arg(4096)->Arg(32768);

}  // namespace
}  // namespace tlr

BENCHMARK_MAIN();
