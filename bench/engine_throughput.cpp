// End-to-end engine throughput in Minstr/s: the numbers
// tools/bench_report records for the perf trajectory, as genuine
// google-benchmark loops over the engine's real entry points. Where
// micro_components times isolated components, these benches time the
// composed paths a study run actually executes — the chunked stream
// pass, the single-pass suite analysis, and one fig9/fig10 job.
// TLR_LENGTH/TLR_SKIP/TLR_SEED shrink or grow the stream window.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/figures.hpp"
#include "core/study.hpp"
#include "spec/predictor.hpp"

namespace tlr {
namespace {

core::SuiteConfig bench_config() {
  core::SuiteConfig config = bench::config_from_env(/*default_length=*/100000);
  return config;
}

/// The floor every analysis pays: predecoded interpretation plus the
/// engine's chunk fan-out, with no consumers registered.
void BM_StreamPassNoConsumers(benchmark::State& state) {
  const core::SuiteConfig config = bench_config();
  core::StudyEngine engine(bench::engine_options_from_env());
  for (auto _ : state) {
    const u64 total = engine.run_workload_stream(
        "compress", config, std::span<core::StreamConsumer* const>{});
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(config.length));
}
BENCHMARK(BM_StreamPassNoConsumers);

/// The shared reusability stage (infinite table) over one stream.
void BM_StreamPassReusability(benchmark::State& state) {
  const core::SuiteConfig config = bench_config();
  core::StudyEngine engine(bench::engine_options_from_env());
  for (auto _ : state) {
    core::ReusabilityConsumer reusability;
    std::vector<core::StreamConsumer*> consumers = {&reusability};
    engine.run_workload_stream("compress", config, consumers);
    benchmark::DoNotOptimize(reusability.reusable_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(config.length));
}
BENCHMARK(BM_StreamPassReusability);

/// Full single-workload suite analysis: every figure-3..8 metric from
/// one chunked pass (the per-workload unit of the suite section).
void BM_SuiteAnalyze(benchmark::State& state) {
  const core::SuiteConfig config = bench_config();
  core::StudyEngine engine(bench::engine_options_from_env());
  for (auto _ : state) {
    const core::WorkloadMetrics metrics = engine.analyze("compress", config);
    benchmark::DoNotOptimize(metrics.base_win);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(config.length));
}
BENCHMARK(BM_SuiteAnalyze);

/// One fig9 job: a single pass feeding all four RTM geometries under
/// the I4 EXP heuristic (the matrix's per-job unit).
void BM_Fig9Job(benchmark::State& state) {
  const core::SuiteConfig config = bench_config();
  core::StudyEngine engine(bench::engine_options_from_env());
  const core::Fig9Heuristic heuristic{
      "I4 EXP", reuse::CollectHeuristic::kFixedExpand, 4};
  for (auto _ : state) {
    const auto cells =
        core::fig9_workload_heuristic(engine, config, "compress", heuristic);
    benchmark::DoNotOptimize(cells.front().reuse_fraction);
  }
  // One pass feeds four simulators; items = simulated positions.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(config.length));
}
BENCHMARK(BM_Fig9Job);

/// One fig10 job: a single pass through the speculative-reuse
/// simulators (last_value predictor, default penalties).
void BM_Fig10Job(benchmark::State& state) {
  const core::SuiteConfig config = bench_config();
  core::StudyEngine engine(bench::engine_options_from_env());
  spec::PredictorConfig predictor;
  predictor.kind = spec::PredictorKind::kLastValue;
  core::Fig10Options options;
  for (auto _ : state) {
    const auto cells = core::fig10_workload_predictor(
        engine, config, "compress", predictor, options);
    benchmark::DoNotOptimize(cells.front().reuse_fraction);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(config.length));
}
BENCHMARK(BM_Fig10Job);

}  // namespace
}  // namespace tlr

BENCHMARK_MAIN();
