// Ablation (ours): RTM organisation at a fixed 4K-entry budget —
// how the split between sets, PC ways and traces-per-PC, and the
// per-trace I/O limits, affect reuse. DESIGN.md decodes the paper's
// geometry descriptions; this bench shows the design space around that
// decoding. All nine simulator configurations per program ride on one
// chunked interpreter pass, programs in parallel.
#include <memory>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "reuse/rtm_sim.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace tlr;
  core::SuiteConfig config = bench::config_from_env(/*default_length=*/150000);

  // A representative mixed subset keeps this ablation affordable.
  static constexpr std::string_view kPrograms[] = {"compress", "li", "vortex",
                                                   "hydro2d", "turb3d"};
  constexpr usize kNumPrograms = std::size(kPrograms);

  struct Shape {
    const char* label;
    reuse::RtmGeometry geometry;
  };
  const Shape shapes[] = {
      {"128x4x8 (paper)", {128, 4, 8}},
      {"256x4x4", {256, 4, 4}},
      {"64x4x16", {64, 4, 16}},
      {"512x8x1", {512, 8, 1}},
      {"32x8x16", {32, 8, 16}},
  };
  constexpr usize kNumShapes = std::size(shapes);

  // I/O limit sweep points at the paper geometry.
  const std::pair<u32, u32> limit_points[] = {{4, 2}, {8, 4}, {16, 8},
                                              {32, 16}};
  constexpr usize kNumLimits = std::size(limit_points);

  // result[config][program]: shapes first, then limit points.
  std::vector<std::vector<double>> fracs(
      kNumShapes + kNumLimits, std::vector<double>(kNumPrograms, 0.0));
  auto sizes = fracs;

  core::StudyEngine engine(bench::engine_options_from_env());
  engine.parallel_for(kNumPrograms, [&](usize p) {
    std::vector<std::unique_ptr<core::RtmSimConsumer>> sims;
    std::vector<core::StreamConsumer*> consumers;
    for (const Shape& shape : shapes) {
      reuse::RtmSimConfig sim_config;
      sim_config.geometry = shape.geometry;
      sim_config.heuristic = reuse::CollectHeuristic::kFixedExpand;
      sim_config.fixed_n = 4;
      sims.push_back(std::make_unique<core::RtmSimConsumer>(sim_config));
      consumers.push_back(sims.back().get());
    }
    for (const auto& [reg_limit, mem_limit] : limit_points) {
      reuse::RtmSimConfig sim_config;
      sim_config.heuristic = reuse::CollectHeuristic::kFixedExpand;
      sim_config.fixed_n = 8;
      sim_config.limits.max_reg_inputs = reg_limit;
      sim_config.limits.max_reg_outputs = reg_limit;
      sim_config.limits.max_mem_inputs = mem_limit;
      sim_config.limits.max_mem_outputs = mem_limit;
      sims.push_back(std::make_unique<core::RtmSimConsumer>(sim_config));
      consumers.push_back(sims.back().get());
    }
    engine.run_workload_stream(kPrograms[p], config, consumers);
    for (usize c = 0; c < sims.size(); ++c) {
      fracs[c][p] = sims[c]->result().reuse_fraction();
      sizes[c][p] = sims[c]->result().avg_reused_trace_size();
    }
  });

  TextTable table("Ablation: RTM shape at a fixed 4096-entry budget "
                  "(I4 EXP, mean over 5 programs)");
  table.set_columns({"sets x ways x traces/pc", "reused %", "avg trace"});
  for (usize s = 0; s < kNumShapes; ++s) {
    table.begin_row();
    table.add_cell(shapes[s].label);
    table.add_percent(arithmetic_mean(fracs[s]));
    table.add_number(arithmetic_mean(sizes[s]));
    benchmark::RegisterBenchmark(
        (std::string("ablation_geometry/") + shapes[s].label).c_str(),
        [v = arithmetic_mean(fracs[s])](benchmark::State& state) {
          for (auto _ : state) benchmark::DoNotOptimize(v);
          state.counters["reused_pct"] = v * 100.0;
        })
        ->Iterations(1);
  }
  std::cout << table.to_string() << "\n";

  TextTable limits_table(
      "Ablation: per-trace I/O limits (paper: 8 reg / 4 mem)");
  limits_table.set_columns({"reg/mem limit", "reused %", "avg trace"});
  for (usize l = 0; l < kNumLimits; ++l) {
    limits_table.begin_row();
    limits_table.add_cell(std::to_string(limit_points[l].first) + "/" +
                          std::to_string(limit_points[l].second));
    limits_table.add_percent(arithmetic_mean(fracs[kNumShapes + l]));
    limits_table.add_number(arithmetic_mean(sizes[kNumShapes + l]));
  }
  std::cout << limits_table.to_string() << "\n";

  return bench::run_benchmarks(argc, argv);
}
