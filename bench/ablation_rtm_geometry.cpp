// Ablation (ours): RTM organisation at a fixed 4K-entry budget —
// how the split between sets, PC ways and traces-per-PC, and the
// per-trace I/O limits, affect reuse. DESIGN.md decodes the paper's
// geometry descriptions; this bench shows the design space around that
// decoding.
#include "bench_common.hpp"
#include "reuse/rtm_sim.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace tlr;
  core::SuiteConfig config = bench::config_from_env(/*default_length=*/150000);

  // A representative mixed subset keeps this ablation affordable.
  static const char* kPrograms[] = {"compress", "li", "vortex", "hydro2d",
                                    "turb3d"};

  struct Shape {
    const char* label;
    reuse::RtmGeometry geometry;
  };
  const Shape shapes[] = {
      {"128x4x8 (paper)", {128, 4, 8}},
      {"256x4x4", {256, 4, 4}},
      {"64x4x16", {64, 4, 16}},
      {"512x8x1", {512, 8, 1}},
      {"32x8x16", {32, 8, 16}},
  };

  TextTable table("Ablation: RTM shape at a fixed 4096-entry budget "
                  "(I4 EXP, mean over 5 programs)");
  table.set_columns({"sets x ways x traces/pc", "reused %", "avg trace"});
  for (const Shape& shape : shapes) {
    std::vector<double> fracs, sizes;
    for (const char* name : kPrograms) {
      const auto stream = core::collect_workload_stream(name, config);
      reuse::RtmSimConfig sim_config;
      sim_config.geometry = shape.geometry;
      sim_config.heuristic = reuse::CollectHeuristic::kFixedExpand;
      sim_config.fixed_n = 4;
      const auto result = reuse::RtmSimulator(sim_config).run(stream);
      fracs.push_back(result.reuse_fraction());
      sizes.push_back(result.avg_reused_trace_size());
    }
    table.begin_row();
    table.add_cell(shape.label);
    table.add_percent(arithmetic_mean(fracs));
    table.add_number(arithmetic_mean(sizes));
    benchmark::RegisterBenchmark(
        (std::string("ablation_geometry/") + shape.label).c_str(),
        [v = arithmetic_mean(fracs)](benchmark::State& state) {
          for (auto _ : state) benchmark::DoNotOptimize(v);
          state.counters["reused_pct"] = v * 100.0;
        })
        ->Iterations(1);
  }
  std::cout << table.to_string() << "\n";

  // I/O limit sweep at the paper geometry.
  TextTable limits_table(
      "Ablation: per-trace I/O limits (paper: 8 reg / 4 mem)");
  limits_table.set_columns({"reg/mem limit", "reused %", "avg trace"});
  const std::pair<u32, u32> limit_points[] = {{4, 2}, {8, 4}, {16, 8},
                                              {32, 16}};
  for (const auto& [reg_limit, mem_limit] : limit_points) {
    std::vector<double> fracs, sizes;
    for (const char* name : kPrograms) {
      const auto stream = core::collect_workload_stream(name, config);
      reuse::RtmSimConfig sim_config;
      sim_config.heuristic = reuse::CollectHeuristic::kFixedExpand;
      sim_config.fixed_n = 8;
      sim_config.limits.max_reg_inputs = reg_limit;
      sim_config.limits.max_reg_outputs = reg_limit;
      sim_config.limits.max_mem_inputs = mem_limit;
      sim_config.limits.max_mem_outputs = mem_limit;
      const auto result = reuse::RtmSimulator(sim_config).run(stream);
      fracs.push_back(result.reuse_fraction());
      sizes.push_back(result.avg_reused_trace_size());
    }
    limits_table.begin_row();
    limits_table.add_cell(std::to_string(reg_limit) + "/" +
                          std::to_string(mem_limit));
    limits_table.add_percent(arithmetic_mean(fracs));
    limits_table.add_number(arithmetic_mean(sizes));
  }
  std::cout << limits_table.to_string() << "\n";

  return bench::run_benchmarks(argc, argv);
}
