// Figure 6: trace-level reuse speed-up at 1-cycle reuse latency.
// (a) infinite instruction window; (b) 256-entry window. The paper's
// headline: trace reuse far exceeds instruction reuse, and — uniquely —
// the *limited* window speed-up exceeds the infinite-window one because
// reused traces neither consume fetch bandwidth nor window slots.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tlr;
  const auto& suite = bench::suite_metrics();

  std::cout << core::fig6a_trace_speedup_inf(suite).to_table("speed-up")
                   .to_string()
            << "(paper: average 3.03; ijpeg highest at 11.57, perl lowest "
               "at 1.01)\n\n";
  std::cout << core::fig6b_trace_speedup_win(suite).to_table("speed-up")
                   .to_string()
            << "(paper: average 3.63 > the 3.03 of the infinite window — "
               "the opposite trend to instruction-level reuse)\n\n";

  bench::register_series("fig6a/trace_speedup_inf",
                         [](const core::WorkloadMetrics& m) {
                           return m.trace_speedup_inf();
                         });
  bench::register_series("fig6b/trace_speedup_win256",
                         [](const core::WorkloadMetrics& m) {
                           return m.trace_speedup_win(0);
                         });
  return bench::run_benchmarks(argc, argv);
}
