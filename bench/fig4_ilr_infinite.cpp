// Figure 4: instruction-level reuse speed-up at an infinite instruction
// window. (a) per benchmark at 1-cycle reuse latency; (b) harmonic-mean
// speed-up for reuse latencies 1..4.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tlr;
  const auto& suite = bench::suite_metrics();

  std::cout << core::fig4a_ilr_speedup_inf(suite).to_table("speed-up")
                   .to_string()
            << "(paper: average ~1.50; turb3d 4.00 and compress 2.50 are "
               "the named winners; fpppp/gcc near 1.0)\n\n";

  TextTable sweep("Figure 4b: average ILR speed-up vs reuse latency "
                  "(infinite window)");
  sweep.set_columns({"latency (cycles)", "speed-up (harmonic mean)"});
  const auto values = core::fig4b_ilr_latency_sweep(suite);
  for (usize i = 0; i < values.size(); ++i) {
    sweep.begin_row();
    sweep.add_integer(i + 1);
    sweep.add_number(values[i]);
  }
  std::cout << sweep.to_string()
            << "(paper: benefits collapse rapidly beyond 1 cycle)\n\n";

  bench::register_series("fig4a/ilr_speedup_inf",
                         [](const core::WorkloadMetrics& m) {
                           return m.ilr_speedup_inf(0);
                         });
  return bench::run_benchmarks(argc, argv);
}
