// Figure 5: instruction-level reuse speed-up with a 256-entry
// instruction window. (a) per benchmark at 1-cycle latency; (b)
// harmonic-mean speed-up for latencies 1..4.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tlr;
  const auto& suite = bench::suite_metrics();

  std::cout << core::fig5a_ilr_speedup_win(suite).to_table("speed-up")
                   .to_string()
            << "(paper: average 1.43 — INT 1.44 / FP 1.42; the big "
               "infinite-window winners are flattened by the window)\n\n";

  TextTable sweep("Figure 5b: average ILR speed-up vs reuse latency "
                  "(256-entry window)");
  sweep.set_columns({"latency (cycles)", "speed-up (harmonic mean)"});
  const auto values = core::fig5b_ilr_latency_sweep(suite);
  for (usize i = 0; i < values.size(); ++i) {
    sweep.begin_row();
    sweep.add_integer(i + 1);
    sweep.add_number(values[i]);
  }
  std::cout << sweep.to_string() << "\n";

  bench::register_series("fig5a/ilr_speedup_win256",
                         [](const core::WorkloadMetrics& m) {
                           return m.ilr_speedup_win(0);
                         });
  return bench::run_benchmarks(argc, argv);
}
