// Figure 8: sensitivity of trace-level reuse (256-entry window) to the
// reuse latency model. (a) constant latency 1..4 cycles; (b) latency
// proportional to (inputs + outputs): K * (n_in + n_out), K = 1/BW.
// Also reports the §4.5 per-trace input/output statistics (the paper:
// 6.5 inputs = 2.7 reg + 3.8 mem; 5.0 outputs = 3.3 reg + 1.7 mem;
// 15.0 instructions -> 0.43 reads and 0.33 writes per reused
// instruction).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tlr;
  const auto& suite = bench::suite_metrics();

  TextTable a("Figure 8a: trace speed-up vs constant reuse latency "
              "(256-entry window)");
  a.set_columns({"latency (cycles)", "speed-up (harmonic mean)"});
  const auto constants = core::fig8a_latency_sweep(suite);
  for (usize i = 0; i < constants.size(); ++i) {
    a.begin_row();
    a.add_integer(i + 1);
    a.add_number(constants[i]);
  }
  std::cout << a.to_string()
            << "(paper: unlike ILR, barely degraded up to 4 cycles)\n\n";

  TextTable b("Figure 8b: trace speed-up vs proportional latency "
              "K*(inputs+outputs)");
  b.set_columns({"K", "speed-up (harmonic mean)"});
  static const char* kLabels[] = {"1/32", "1/16", "1/8", "1/4", "1/2", "1"};
  const auto props = core::fig8b_proportional_sweep(suite);
  for (usize i = 0; i < props.size() && i < 6; ++i) {
    b.begin_row();
    b.add_cell(kLabels[i]);
    b.add_number(props[i]);
  }
  std::cout << b.to_string()
            << "(paper: ~2.7 at K=1/16, the bandwidth of a near-future "
               "processor)\n\n";

  const core::TraceIoStats io = core::trace_io_stats(suite);
  TextTable stats("Section 4.5 statistics: per-trace inputs/outputs");
  stats.set_columns({"metric", "measured", "paper"});
  auto row = [&](const char* name, double measured, const char* paper) {
    stats.begin_row();
    stats.add_cell(name);
    stats.add_number(measured);
    stats.add_cell(paper);
  };
  row("avg trace size", io.avg_size, "15.0");
  row("register inputs", io.reg_inputs, "2.7");
  row("memory inputs", io.mem_inputs, "3.8");
  row("register outputs", io.reg_outputs, "3.3");
  row("memory outputs", io.mem_outputs, "1.7");
  row("reads / reused inst", io.reads_per_inst, "0.43");
  row("writes / reused inst", io.writes_per_inst, "0.33");
  std::cout << stats.to_string() << "\n";

  bench::register_series("fig8/trace_speedup_k16",
                         [](const core::WorkloadMetrics& m) {
                           return m.trace_speedup_prop(1);  // K = 1/16
                         });
  return bench::run_benchmarks(argc, argv);
}
