// Figure 3: instruction-level reusability (%) under a perfect
// (infinite-history) reuse engine, per benchmark with FP/INT/overall
// arithmetic means.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tlr;
  const auto& suite = bench::suite_metrics();
  std::cout << core::fig3_reusability(suite).to_table("reusable %", 1)
                   .to_string()
            << "\n(paper: most programs >90%, average 88%, range 53-99%; "
               "applu lowest, hydro2d highest)\n\n";
  bench::register_series("fig3/reusability_pct",
                         [](const core::WorkloadMetrics& m) {
                           return m.reusability * 100.0;
                         });
  return bench::run_benchmarks(argc, argv);
}
