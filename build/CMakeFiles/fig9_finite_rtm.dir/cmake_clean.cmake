file(REMOVE_RECURSE
  "CMakeFiles/fig9_finite_rtm.dir/bench/fig9_finite_rtm.cpp.o"
  "CMakeFiles/fig9_finite_rtm.dir/bench/fig9_finite_rtm.cpp.o.d"
  "fig9_finite_rtm"
  "fig9_finite_rtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_finite_rtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
