# Empty dependencies file for fig9_finite_rtm.
# This may be replaced when dependencies are built.
