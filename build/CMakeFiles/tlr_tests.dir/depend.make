# Empty dependencies file for tlr_tests.
# This may be replaced when dependencies are built.
