
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/engine_test.cpp" "CMakeFiles/tlr_tests.dir/tests/core/engine_test.cpp.o" "gcc" "CMakeFiles/tlr_tests.dir/tests/core/engine_test.cpp.o.d"
  "/root/repo/tests/core/study_test.cpp" "CMakeFiles/tlr_tests.dir/tests/core/study_test.cpp.o" "gcc" "CMakeFiles/tlr_tests.dir/tests/core/study_test.cpp.o.d"
  "/root/repo/tests/integration/scaling_test.cpp" "CMakeFiles/tlr_tests.dir/tests/integration/scaling_test.cpp.o" "gcc" "CMakeFiles/tlr_tests.dir/tests/integration/scaling_test.cpp.o.d"
  "/root/repo/tests/integration/theorems_test.cpp" "CMakeFiles/tlr_tests.dir/tests/integration/theorems_test.cpp.o" "gcc" "CMakeFiles/tlr_tests.dir/tests/integration/theorems_test.cpp.o.d"
  "/root/repo/tests/isa/isa_test.cpp" "CMakeFiles/tlr_tests.dir/tests/isa/isa_test.cpp.o" "gcc" "CMakeFiles/tlr_tests.dir/tests/isa/isa_test.cpp.o.d"
  "/root/repo/tests/reuse/instr_table_test.cpp" "CMakeFiles/tlr_tests.dir/tests/reuse/instr_table_test.cpp.o" "gcc" "CMakeFiles/tlr_tests.dir/tests/reuse/instr_table_test.cpp.o.d"
  "/root/repo/tests/reuse/rtm_sim_test.cpp" "CMakeFiles/tlr_tests.dir/tests/reuse/rtm_sim_test.cpp.o" "gcc" "CMakeFiles/tlr_tests.dir/tests/reuse/rtm_sim_test.cpp.o.d"
  "/root/repo/tests/reuse/rtm_test.cpp" "CMakeFiles/tlr_tests.dir/tests/reuse/rtm_test.cpp.o" "gcc" "CMakeFiles/tlr_tests.dir/tests/reuse/rtm_test.cpp.o.d"
  "/root/repo/tests/reuse/trace_builder_test.cpp" "CMakeFiles/tlr_tests.dir/tests/reuse/trace_builder_test.cpp.o" "gcc" "CMakeFiles/tlr_tests.dir/tests/reuse/trace_builder_test.cpp.o.d"
  "/root/repo/tests/timing/timer_property_test.cpp" "CMakeFiles/tlr_tests.dir/tests/timing/timer_property_test.cpp.o" "gcc" "CMakeFiles/tlr_tests.dir/tests/timing/timer_property_test.cpp.o.d"
  "/root/repo/tests/timing/timer_test.cpp" "CMakeFiles/tlr_tests.dir/tests/timing/timer_test.cpp.o" "gcc" "CMakeFiles/tlr_tests.dir/tests/timing/timer_test.cpp.o.d"
  "/root/repo/tests/util/containers_test.cpp" "CMakeFiles/tlr_tests.dir/tests/util/containers_test.cpp.o" "gcc" "CMakeFiles/tlr_tests.dir/tests/util/containers_test.cpp.o.d"
  "/root/repo/tests/util/misc_test.cpp" "CMakeFiles/tlr_tests.dir/tests/util/misc_test.cpp.o" "gcc" "CMakeFiles/tlr_tests.dir/tests/util/misc_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "CMakeFiles/tlr_tests.dir/tests/util/rng_test.cpp.o" "gcc" "CMakeFiles/tlr_tests.dir/tests/util/rng_test.cpp.o.d"
  "/root/repo/tests/vm/builder_test.cpp" "CMakeFiles/tlr_tests.dir/tests/vm/builder_test.cpp.o" "gcc" "CMakeFiles/tlr_tests.dir/tests/vm/builder_test.cpp.o.d"
  "/root/repo/tests/vm/interpreter_test.cpp" "CMakeFiles/tlr_tests.dir/tests/vm/interpreter_test.cpp.o" "gcc" "CMakeFiles/tlr_tests.dir/tests/vm/interpreter_test.cpp.o.d"
  "/root/repo/tests/workloads/workloads_test.cpp" "CMakeFiles/tlr_tests.dir/tests/workloads/workloads_test.cpp.o" "gcc" "CMakeFiles/tlr_tests.dir/tests/workloads/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/tlr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
