file(REMOVE_RECURSE
  "CMakeFiles/memoize_interpreter.dir/examples/memoize_interpreter.cpp.o"
  "CMakeFiles/memoize_interpreter.dir/examples/memoize_interpreter.cpp.o.d"
  "memoize_interpreter"
  "memoize_interpreter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memoize_interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
