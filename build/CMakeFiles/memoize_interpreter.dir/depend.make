# Empty dependencies file for memoize_interpreter.
# This may be replaced when dependencies are built.
