
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cpp" "CMakeFiles/tlr.dir/src/core/engine.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/core/engine.cpp.o.d"
  "/root/repo/src/core/figures.cpp" "CMakeFiles/tlr.dir/src/core/figures.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/core/figures.cpp.o.d"
  "/root/repo/src/core/study.cpp" "CMakeFiles/tlr.dir/src/core/study.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/core/study.cpp.o.d"
  "/root/repo/src/isa/op.cpp" "CMakeFiles/tlr.dir/src/isa/op.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/isa/op.cpp.o.d"
  "/root/repo/src/reuse/accumulator.cpp" "CMakeFiles/tlr.dir/src/reuse/accumulator.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/reuse/accumulator.cpp.o.d"
  "/root/repo/src/reuse/instr_table.cpp" "CMakeFiles/tlr.dir/src/reuse/instr_table.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/reuse/instr_table.cpp.o.d"
  "/root/repo/src/reuse/reusability.cpp" "CMakeFiles/tlr.dir/src/reuse/reusability.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/reuse/reusability.cpp.o.d"
  "/root/repo/src/reuse/rtm.cpp" "CMakeFiles/tlr.dir/src/reuse/rtm.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/reuse/rtm.cpp.o.d"
  "/root/repo/src/reuse/rtm_sim.cpp" "CMakeFiles/tlr.dir/src/reuse/rtm_sim.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/reuse/rtm_sim.cpp.o.d"
  "/root/repo/src/reuse/trace_builder.cpp" "CMakeFiles/tlr.dir/src/reuse/trace_builder.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/reuse/trace_builder.cpp.o.d"
  "/root/repo/src/timing/timer.cpp" "CMakeFiles/tlr.dir/src/timing/timer.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/timing/timer.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/tlr.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/tlr.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/tlr.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/tlr.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/util/thread_pool.cpp.o.d"
  "/root/repo/src/vm/builder.cpp" "CMakeFiles/tlr.dir/src/vm/builder.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/vm/builder.cpp.o.d"
  "/root/repo/src/vm/interpreter.cpp" "CMakeFiles/tlr.dir/src/vm/interpreter.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/vm/interpreter.cpp.o.d"
  "/root/repo/src/workloads/applu.cpp" "CMakeFiles/tlr.dir/src/workloads/applu.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/workloads/applu.cpp.o.d"
  "/root/repo/src/workloads/apsi.cpp" "CMakeFiles/tlr.dir/src/workloads/apsi.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/workloads/apsi.cpp.o.d"
  "/root/repo/src/workloads/compress.cpp" "CMakeFiles/tlr.dir/src/workloads/compress.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/workloads/compress.cpp.o.d"
  "/root/repo/src/workloads/fpppp.cpp" "CMakeFiles/tlr.dir/src/workloads/fpppp.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/workloads/fpppp.cpp.o.d"
  "/root/repo/src/workloads/gcc.cpp" "CMakeFiles/tlr.dir/src/workloads/gcc.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/workloads/gcc.cpp.o.d"
  "/root/repo/src/workloads/go.cpp" "CMakeFiles/tlr.dir/src/workloads/go.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/workloads/go.cpp.o.d"
  "/root/repo/src/workloads/hydro2d.cpp" "CMakeFiles/tlr.dir/src/workloads/hydro2d.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/workloads/hydro2d.cpp.o.d"
  "/root/repo/src/workloads/ijpeg.cpp" "CMakeFiles/tlr.dir/src/workloads/ijpeg.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/workloads/ijpeg.cpp.o.d"
  "/root/repo/src/workloads/li.cpp" "CMakeFiles/tlr.dir/src/workloads/li.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/workloads/li.cpp.o.d"
  "/root/repo/src/workloads/perl.cpp" "CMakeFiles/tlr.dir/src/workloads/perl.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/workloads/perl.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "CMakeFiles/tlr.dir/src/workloads/registry.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/workloads/registry.cpp.o.d"
  "/root/repo/src/workloads/su2cor.cpp" "CMakeFiles/tlr.dir/src/workloads/su2cor.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/workloads/su2cor.cpp.o.d"
  "/root/repo/src/workloads/tomcatv.cpp" "CMakeFiles/tlr.dir/src/workloads/tomcatv.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/workloads/tomcatv.cpp.o.d"
  "/root/repo/src/workloads/turb3d.cpp" "CMakeFiles/tlr.dir/src/workloads/turb3d.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/workloads/turb3d.cpp.o.d"
  "/root/repo/src/workloads/vortex.cpp" "CMakeFiles/tlr.dir/src/workloads/vortex.cpp.o" "gcc" "CMakeFiles/tlr.dir/src/workloads/vortex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
