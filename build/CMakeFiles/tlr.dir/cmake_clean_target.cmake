file(REMOVE_RECURSE
  "libtlr.a"
)
