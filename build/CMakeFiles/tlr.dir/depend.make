# Empty dependencies file for tlr.
# This may be replaced when dependencies are built.
