# Empty dependencies file for fig5_ilr_window256.
# This may be replaced when dependencies are built.
