file(REMOVE_RECURSE
  "CMakeFiles/fig5_ilr_window256.dir/bench/fig5_ilr_window256.cpp.o"
  "CMakeFiles/fig5_ilr_window256.dir/bench/fig5_ilr_window256.cpp.o.d"
  "fig5_ilr_window256"
  "fig5_ilr_window256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ilr_window256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
