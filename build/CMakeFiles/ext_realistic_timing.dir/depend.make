# Empty dependencies file for ext_realistic_timing.
# This may be replaced when dependencies are built.
