file(REMOVE_RECURSE
  "CMakeFiles/ext_realistic_timing.dir/bench/ext_realistic_timing.cpp.o"
  "CMakeFiles/ext_realistic_timing.dir/bench/ext_realistic_timing.cpp.o.d"
  "ext_realistic_timing"
  "ext_realistic_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_realistic_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
