file(REMOVE_RECURSE
  "CMakeFiles/fig4_ilr_infinite.dir/bench/fig4_ilr_infinite.cpp.o"
  "CMakeFiles/fig4_ilr_infinite.dir/bench/fig4_ilr_infinite.cpp.o.d"
  "fig4_ilr_infinite"
  "fig4_ilr_infinite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ilr_infinite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
