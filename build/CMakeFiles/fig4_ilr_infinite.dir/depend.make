# Empty dependencies file for fig4_ilr_infinite.
# This may be replaced when dependencies are built.
