file(REMOVE_RECURSE
  "CMakeFiles/fig3_instr_reusability.dir/bench/fig3_instr_reusability.cpp.o"
  "CMakeFiles/fig3_instr_reusability.dir/bench/fig3_instr_reusability.cpp.o.d"
  "fig3_instr_reusability"
  "fig3_instr_reusability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_instr_reusability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
