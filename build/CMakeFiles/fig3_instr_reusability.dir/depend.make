# Empty dependencies file for fig3_instr_reusability.
# This may be replaced when dependencies are built.
