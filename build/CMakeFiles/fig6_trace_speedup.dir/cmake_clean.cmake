file(REMOVE_RECURSE
  "CMakeFiles/fig6_trace_speedup.dir/bench/fig6_trace_speedup.cpp.o"
  "CMakeFiles/fig6_trace_speedup.dir/bench/fig6_trace_speedup.cpp.o.d"
  "fig6_trace_speedup"
  "fig6_trace_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_trace_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
