# Empty dependencies file for rtm_explorer.
# This may be replaced when dependencies are built.
