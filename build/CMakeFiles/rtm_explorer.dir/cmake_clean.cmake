file(REMOVE_RECURSE
  "CMakeFiles/rtm_explorer.dir/examples/rtm_explorer.cpp.o"
  "CMakeFiles/rtm_explorer.dir/examples/rtm_explorer.cpp.o.d"
  "rtm_explorer"
  "rtm_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtm_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
