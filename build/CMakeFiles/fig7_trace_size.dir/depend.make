# Empty dependencies file for fig7_trace_size.
# This may be replaced when dependencies are built.
