file(REMOVE_RECURSE
  "CMakeFiles/fig7_trace_size.dir/bench/fig7_trace_size.cpp.o"
  "CMakeFiles/fig7_trace_size.dir/bench/fig7_trace_size.cpp.o.d"
  "fig7_trace_size"
  "fig7_trace_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_trace_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
