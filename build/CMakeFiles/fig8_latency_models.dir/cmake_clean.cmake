file(REMOVE_RECURSE
  "CMakeFiles/fig8_latency_models.dir/bench/fig8_latency_models.cpp.o"
  "CMakeFiles/fig8_latency_models.dir/bench/fig8_latency_models.cpp.o.d"
  "fig8_latency_models"
  "fig8_latency_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_latency_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
