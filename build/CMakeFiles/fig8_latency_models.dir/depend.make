# Empty dependencies file for fig8_latency_models.
# This may be replaced when dependencies are built.
