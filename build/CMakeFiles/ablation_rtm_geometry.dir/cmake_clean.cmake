file(REMOVE_RECURSE
  "CMakeFiles/ablation_rtm_geometry.dir/bench/ablation_rtm_geometry.cpp.o"
  "CMakeFiles/ablation_rtm_geometry.dir/bench/ablation_rtm_geometry.cpp.o.d"
  "ablation_rtm_geometry"
  "ablation_rtm_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rtm_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
