# Empty dependencies file for ablation_rtm_geometry.
# This may be replaced when dependencies are built.
