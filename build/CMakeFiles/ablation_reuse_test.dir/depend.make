# Empty dependencies file for ablation_reuse_test.
# This may be replaced when dependencies are built.
