file(REMOVE_RECURSE
  "CMakeFiles/ablation_reuse_test.dir/bench/ablation_reuse_test.cpp.o"
  "CMakeFiles/ablation_reuse_test.dir/bench/ablation_reuse_test.cpp.o.d"
  "ablation_reuse_test"
  "ablation_reuse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reuse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
