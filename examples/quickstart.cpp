// Quickstart: analyse one benchmark end-to-end and print the numbers
// the paper's study revolves around.
//
//   ./quickstart [workload] [length]
//
// Runs the workload's interpreter, measures perfect-engine
// instruction-level reusability (Fig 3), prices instruction- and
// trace-level reuse with the dataflow timers (Figs 4-6), and shows the
// maximal-trace statistics (Fig 7).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/study.hpp"

int main(int argc, char** argv) {
  using namespace tlr;

  const std::string name = argc > 1 ? argv[1] : "compress";
  core::SuiteConfig config;
  if (argc > 2) config.length = std::strtoull(argv[2], nullptr, 10);

  std::printf("analysing '%s' (%llu instructions after %llu skipped)...\n",
              name.c_str(),
              static_cast<unsigned long long>(config.length),
              static_cast<unsigned long long>(config.skip));

  const core::WorkloadMetrics m = core::analyze_workload(name, config);

  std::printf("\n-- reusability (perfect engine) --\n");
  std::printf("reusable instructions : %.1f%%\n", m.reusability * 100.0);

  std::printf("\n-- dataflow timing --\n");
  std::printf("base IPC, infinite window : %.2f\n",
              double(m.instructions) / double(m.base_inf));
  std::printf("base IPC, 256-entry window: %.2f\n",
              double(m.instructions) / double(m.base_win));
  std::printf("ILR speed-up   (inf / 256): %.2f / %.2f\n",
              m.ilr_speedup_inf(0), m.ilr_speedup_win(0));
  std::printf("trace speed-up (inf / 256): %.2f / %.2f\n",
              m.trace_speedup_inf(), m.trace_speedup_win(0));

  std::printf("\n-- maximal traces --\n");
  std::printf("traces: %llu, avg size %.1f insts\n",
              static_cast<unsigned long long>(m.trace_stats.traces),
              m.trace_stats.avg_size);
  std::printf("avg inputs %.1f (%.1f reg + %.1f mem), outputs %.1f "
              "(%.1f reg + %.1f mem)\n",
              m.trace_stats.avg_inputs(), m.trace_stats.avg_reg_inputs,
              m.trace_stats.avg_mem_inputs, m.trace_stats.avg_outputs(),
              m.trace_stats.avg_reg_outputs, m.trace_stats.avg_mem_outputs);
  return 0;
}
