// RTM design-space explorer: sweep the realistic implementation's
// knobs (capacity, collection heuristic, reuse-test flavour) for one
// workload and print the coverage/granularity trade-off.
//
//   ./rtm_explorer [workload] [length]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/study.hpp"
#include "reuse/rtm_sim.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tlr;

  const std::string name = argc > 1 ? argv[1] : "li";
  core::SuiteConfig config;
  config.length = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

  std::printf("collecting %llu instructions of '%s'...\n\n",
              static_cast<unsigned long long>(config.length), name.c_str());
  const auto stream = core::collect_workload_stream(name, config);

  const std::pair<const char*, reuse::RtmGeometry> geometries[] = {
      {"512", reuse::RtmGeometry::rtm512()},
      {"4K", reuse::RtmGeometry::rtm4k()},
      {"32K", reuse::RtmGeometry::rtm32k()},
      {"256K", reuse::RtmGeometry::rtm256k()},
  };

  TextTable table("RTM design space for '" + name + "'");
  table.set_columns({"heuristic", "RTM", "reused %", "avg trace",
                     "reuse ops", "insertions", "evictions"});
  for (const auto& [label, heuristic, n] :
       {std::tuple{"ILR NE", reuse::CollectHeuristic::kIlrNoExpand, 0u},
        std::tuple{"ILR EXP", reuse::CollectHeuristic::kIlrExpand, 0u},
        std::tuple{"I2 EXP", reuse::CollectHeuristic::kFixedExpand, 2u},
        std::tuple{"I4 EXP", reuse::CollectHeuristic::kFixedExpand, 4u},
        std::tuple{"I8 EXP", reuse::CollectHeuristic::kFixedExpand, 8u}}) {
    for (const auto& [geo_label, geometry] : geometries) {
      reuse::RtmSimConfig sim_config;
      sim_config.geometry = geometry;
      sim_config.heuristic = heuristic;
      sim_config.fixed_n = n == 0 ? 4 : n;
      const auto result = reuse::RtmSimulator(sim_config).run(stream);
      table.begin_row();
      table.add_cell(label);
      table.add_cell(geo_label);
      table.add_percent(result.reuse_fraction());
      table.add_number(result.avg_reused_trace_size());
      table.add_integer(result.reuse_operations);
      table.add_integer(result.rtm.insertions);
      table.add_integer(result.rtm.way_evictions +
                        result.rtm.trace_evictions);
    }
  }
  std::cout << table.to_string();

  // Reuse-test flavour comparison at the paper's 4K-entry point.
  TextTable flavours("Reuse test flavour (4K entries, I4 EXP)");
  flavours.set_columns({"test", "reused %", "invalidations"});
  for (const auto& [label, test] :
       {std::pair{"value-compare", reuse::ReuseTestKind::kValueCompare},
        std::pair{"valid-bit", reuse::ReuseTestKind::kValidBit}}) {
    reuse::RtmSimConfig sim_config;
    sim_config.reuse_test = test;
    const auto result = reuse::RtmSimulator(sim_config).run(stream);
    flavours.begin_row();
    flavours.add_cell(label);
    flavours.add_percent(result.reuse_fraction());
    flavours.add_integer(result.rtm.invalidations);
  }
  std::cout << '\n' << flavours.to_string();
  return 0;
}
