// RTM design-space explorer: sweep the realistic implementation's
// knobs (capacity, collection heuristic, reuse-test flavour) for one
// workload and print the coverage/granularity trade-off. All 22
// simulator configurations consume one chunked interpreter pass — the
// stream is never materialised.
//
//   ./rtm_explorer [workload] [length]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/engine.hpp"
#include "core/study.hpp"
#include "reuse/rtm_sim.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tlr;

  const std::string name = argc > 1 ? argv[1] : "li";
  core::SuiteConfig config;
  config.length = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

  const std::pair<const char*, reuse::RtmGeometry> geometries[] = {
      {"512", reuse::RtmGeometry::rtm512()},
      {"4K", reuse::RtmGeometry::rtm4k()},
      {"32K", reuse::RtmGeometry::rtm32k()},
      {"256K", reuse::RtmGeometry::rtm256k()},
  };
  const std::tuple<const char*, reuse::CollectHeuristic, u32> heuristics[] = {
      {"ILR NE", reuse::CollectHeuristic::kIlrNoExpand, 0u},
      {"ILR EXP", reuse::CollectHeuristic::kIlrExpand, 0u},
      {"I2 EXP", reuse::CollectHeuristic::kFixedExpand, 2u},
      {"I4 EXP", reuse::CollectHeuristic::kFixedExpand, 4u},
      {"I8 EXP", reuse::CollectHeuristic::kFixedExpand, 8u},
  };

  // One consumer per (heuristic, geometry) cell plus the two reuse-test
  // flavours, all fed from the same pass.
  std::vector<std::unique_ptr<core::RtmSimConsumer>> sims;
  std::vector<core::StreamConsumer*> consumers;
  auto add_sim = [&](const reuse::RtmSimConfig& sim_config) {
    sims.push_back(std::make_unique<core::RtmSimConsumer>(sim_config));
    consumers.push_back(sims.back().get());
  };

  for (const auto& [label, heuristic, n] : heuristics) {
    for (const auto& [geo_label, geometry] : geometries) {
      reuse::RtmSimConfig sim_config;
      sim_config.geometry = geometry;
      sim_config.heuristic = heuristic;
      sim_config.fixed_n = n == 0 ? 4 : n;
      add_sim(sim_config);
    }
  }
  for (const auto test : {reuse::ReuseTestKind::kValueCompare,
                          reuse::ReuseTestKind::kValidBit}) {
    reuse::RtmSimConfig sim_config;
    sim_config.reuse_test = test;
    add_sim(sim_config);
  }

  std::printf("streaming %llu instructions of '%s' through %zu RTM "
              "configurations (single pass)...\n\n",
              static_cast<unsigned long long>(config.length), name.c_str(),
              sims.size());

  core::StudyEngine engine;
  engine.run_workload_stream(name, config, consumers);

  TextTable table("RTM design space for '" + name + "'");
  table.set_columns({"heuristic", "RTM", "reused %", "avg trace",
                     "reuse ops", "insertions", "evictions"});
  usize next = 0;
  for (const auto& [label, heuristic, n] : heuristics) {
    for (const auto& [geo_label, geometry] : geometries) {
      const reuse::RtmSimResult& result = sims[next++]->result();
      table.begin_row();
      table.add_cell(label);
      table.add_cell(geo_label);
      table.add_percent(result.reuse_fraction());
      table.add_number(result.avg_reused_trace_size());
      table.add_integer(result.reuse_operations);
      table.add_integer(result.rtm.insertions);
      table.add_integer(result.rtm.way_evictions +
                        result.rtm.trace_evictions);
    }
  }
  std::cout << table.to_string();

  // Reuse-test flavour comparison at the paper's 4K-entry point.
  TextTable flavours("Reuse test flavour (4K entries, I4 EXP)");
  flavours.set_columns({"test", "reused %", "invalidations"});
  for (const char* label : {"value-compare", "valid-bit"}) {
    const reuse::RtmSimResult& result = sims[next++]->result();
    flavours.begin_row();
    flavours.add_cell(label);
    flavours.add_percent(result.reuse_fraction());
    flavours.add_integer(result.rtm.invalidations);
  }
  std::cout << '\n' << flavours.to_string();
  return 0;
}
