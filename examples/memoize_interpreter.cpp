// Exceeding the dataflow limit (the paper's headline claim, §1).
//
// This example builds a program whose critical path is a long chain of
// *dependent* multiplies over inputs that repeat — the worst case for a
// conventional processor (the dataflow limit forces one multiply after
// another) and the best case for trace-level reuse (one reuse
// operation delivers the whole chain's outputs at once).
//
// It then prices the program on the library's dataflow timers:
//   base machine      -> bound by the 12-cycle multiply chain
//   instruction reuse -> still serial: one reuse per chain link
//   trace reuse       -> whole chains collapse into single reuse ops
//
// All three timings come from one chunked interpreter pass through the
// study engine's consumers.
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "timing/timer.hpp"
#include "vm/builder.hpp"
#include "vm/interpreter.hpp"

int main() {
  using namespace tlr;
  using isa::r;

  // A Horner polynomial evaluator where each evaluation's result picks
  // the next point: x' = 3 + (result & 7). The whole run is one serial
  // dependence chain (the dataflow limit bites hard), yet x cycles
  // through a small set of values, so every chain link repeats —
  // classic memoisation fodder.
  constexpr auto kX = r(1);
  constexpr auto kAcc = r(2);
  constexpr auto kPtr = r(3);
  constexpr auto kIdx = r(4);
  constexpr auto kTmp = r(5);
  constexpr auto kOuter = r(6);

  vm::ProgramBuilder b("horner");
  const Addr results = b.alloc(8);

  b.ldi(kOuter, 1 << 20);
  b.ldi(kX, 3);
  vm::Label outer = b.here();
  b.ldi(kIdx, 8);
  vm::Label point_loop = b.here();
  b.ldi(kAcc, 1);
  // Horner chain: 16 dependent multiply+add pairs (each link costs the
  // full 12-cycle multiply latency on the base machine).
  for (int term = 0; term < 16; ++term) {
    b.mul(kAcc, kAcc, kX);
    b.addi(kAcc, kAcc, 3 + term);
  }
  b.andi(kTmp, kAcc, 7);
  b.slli(kPtr, kTmp, 3);
  b.addi(kPtr, kPtr, static_cast<i64>(results));
  b.stq(kAcc, kPtr, 0);
  // The next point depends on this result: one serial chain end to end.
  b.addi(kX, kTmp, 3);
  b.subi(kIdx, kIdx, 1);
  b.bnez(kIdx, point_loop);
  b.subi(kOuter, kOuter, 1);
  b.bnez(kOuter, outer);
  b.halt();

  vm::RunLimits limits;
  limits.skip = 2000;
  limits.max_emitted = 60000;

  timing::TimerConfig config;  // infinite window: the pure dataflow limit
  core::ReusabilityConsumer reusable;
  core::TimingConsumer base_timer(core::TimingConsumer::Mode::kBase, config);
  core::TimingConsumer ilr_timer(core::TimingConsumer::Mode::kInstReuse,
                                 config);
  core::MaxTraceConsumer traces;
  core::TraceTimingSink trace_timer(config);
  traces.add_sink(&trace_timer);

  std::vector<core::StreamConsumer*> consumers = {&reusable, &base_timer,
                                                  &ilr_timer, &traces};
  core::StudyEngine engine;
  engine.run_stream(b.build(), limits, consumers);

  const auto base = base_timer.result();
  const auto ilr = ilr_timer.result();
  const auto trace = trace_timer.result();

  std::printf("program: Horner evaluation, 16 dependent multiplies per "
              "point, 8 repeating points\n");
  std::printf("reusable instructions       : %.1f%%\n",
              reusable.fraction() * 100);
  std::printf("dataflow limit (base IPC)   : %.2f   (%llu cycles)\n",
              base.ipc, static_cast<unsigned long long>(base.cycles));
  std::printf("instruction-level reuse IPC : %.2f   (speed-up %.2fx)\n",
              ilr.ipc, timing::speedup(base, ilr));
  std::printf("trace-level reuse IPC       : %.2f   (speed-up %.2fx)\n",
              trace.ipc, timing::speedup(base, trace));
  std::printf("\ntrace reuse exceeds the dataflow limit: each 192-cycle "
              "multiply chain\nis delivered whole by a single reuse "
              "operation.\n");
  return 0;
}
