// Bring your own workload: write a program against the ProgramBuilder
// API, then push it through the same single-pass analysis engine the
// suite uses — every metric below comes from one chunked interpreter
// pass, without ever materialising the stream.
//
// The program here is a toy spell-checker: words from a small
// vocabulary are looked up in a trie stored in memory; hot words repeat
// (Zipf), so the walk repeats — a natural trace-reuse candidate.
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "reuse/rtm_sim.hpp"
#include "timing/timer.hpp"
#include "util/rng.hpp"
#include "vm/builder.hpp"
#include "vm/interpreter.hpp"

namespace {

using namespace tlr;
using isa::r;

vm::Program build_spellchecker() {
  Rng rng(0xBEEF);
  vm::ProgramBuilder b("spellcheck");

  // Trie: nodes of 28 words (26 child pointers + terminal flag + pad),
  // built host-side over a 64-word vocabulary.
  struct Node {
    u64 child[26] = {0};
    bool terminal = false;
  };
  std::vector<Node> trie(1);
  std::vector<std::vector<u64>> vocab;
  for (int w = 0; w < 64; ++w) {
    std::vector<u64> word;
    const usize len = 3 + rng.below(6);
    usize node = 0;
    for (usize c = 0; c < len; ++c) {
      const u64 ch = rng.below(26);
      word.push_back(ch);
      if (trie[node].child[ch] == 0) {
        trie[node].child[ch] = trie.size();
        trie.emplace_back();
      }
      node = trie[node].child[ch];
    }
    trie[node].terminal = true;
    vocab.push_back(std::move(word));
  }

  const Addr trie_base = b.alloc(trie.size() * 28);
  for (usize n = 0; n < trie.size(); ++n) {
    for (int c = 0; c < 26; ++c) {
      // Children stored as absolute node base addresses (0 = none).
      const u64 child = trie[n].child[c];
      b.init_word(trie_base + (n * 28 + c) * 8,
                  child ? trie_base + child * 28 * 8 : 0);
    }
    b.init_word(trie_base + (n * 28 + 26) * 8, trie[n].terminal);
  }

  // Text: 512 length-prefixed words, Zipf over the vocabulary.
  std::vector<u64> text;
  ZipfDraw pick(vocab.size(), 1.1, rng.next());
  for (int i = 0; i < 512; ++i) {
    const auto& word = vocab[pick.next()];
    text.push_back(word.size());
    for (u64 ch : word) text.push_back(ch);
  }
  const Addr text_base = b.alloc(text.size());
  for (usize i = 0; i < text.size(); ++i) {
    b.init_word(text_base + i * 8, text[i]);
  }

  constexpr auto kPtr = r(1);
  constexpr auto kEnd = r(2);
  constexpr auto kLen = r(3);
  constexpr auto kNode = r(4);
  constexpr auto kCh = r(5);
  constexpr auto kHits = r(6);
  constexpr auto kTmp = r(7);
  constexpr auto kWEnd = r(8);
  constexpr auto kOuter = r(9);

  b.ldi(kOuter, 1 << 20);
  vm::Label outer = b.here();
  b.ldi(kPtr, static_cast<i64>(text_base));
  b.ldi(kEnd, static_cast<i64>(text_base + text.size() * 8));
  b.ldi(kHits, 0);

  vm::Label word_loop = b.here();
  b.ldq(kLen, kPtr, 0);
  b.addi(kPtr, kPtr, 8);
  b.slli(kWEnd, kLen, 3);
  b.add(kWEnd, kWEnd, kPtr);
  b.ldi(kNode, static_cast<i64>(trie_base));

  vm::Label walk = b.here();
  vm::Label word_done = b.label();
  b.ldq(kCh, kPtr, 0);
  b.slli(kTmp, kCh, 3);
  b.add(kTmp, kTmp, kNode);
  b.ldq(kNode, kTmp, 0);        // follow the child pointer
  b.addi(kPtr, kPtr, 8);
  b.beqz(kNode, word_done);     // not in the dictionary
  b.cmpult(kTmp, kPtr, kWEnd);
  b.bnez(kTmp, walk);
  b.ldq(kTmp, kNode, 26 * 8);   // terminal flag
  b.add(kHits, kHits, kTmp);
  b.bind(word_done);
  b.mov(kPtr, kWEnd);           // skip any remainder
  b.cmpult(kTmp, kPtr, kEnd);
  b.bnez(kTmp, word_loop);

  b.subi(kOuter, kOuter, 1);
  b.bnez(kOuter, outer);
  b.halt();
  return b.build();
}

}  // namespace

int main() {
  const vm::Program program = build_spellchecker();
  std::printf("spell-checker: %zu static instructions\n", program.size());

  vm::RunLimits limits;
  limits.skip = 20000;
  limits.max_emitted = 150000;

  // Wire up the consumers: perfect-engine reusability, base and
  // trace-reuse timing, maximal-trace statistics, and a realistic
  // finite-RTM simulation — all fed by the same pass.
  core::ReusabilityConsumer reusable;

  timing::TimerConfig win;
  win.window = 256;
  core::TimingConsumer base(core::TimingConsumer::Mode::kBase, win);
  core::MaxTraceConsumer traces;
  core::TraceTimingSink trace_timer(win);
  core::TraceStatsSink trace_stats;
  traces.add_sink(&trace_timer);
  traces.add_sink(&trace_stats);

  reuse::RtmSimConfig sim_config;
  sim_config.geometry = reuse::RtmGeometry::rtm4k();
  core::RtmSimConsumer realistic(sim_config);

  std::vector<core::StreamConsumer*> consumers = {&reusable, &base, &traces,
                                                  &realistic};
  core::StudyEngine engine;
  engine.run_stream(program, limits, consumers);

  const auto stats = trace_stats.stats();
  std::printf("reusable instructions : %.1f%%\n", reusable.fraction() * 100);
  std::printf("avg maximal trace     : %.1f instructions\n", stats.avg_size);
  std::printf("trace-reuse speed-up  : %.2fx (256-entry window)\n",
              timing::speedup(base.result(), trace_timer.result()));
  std::printf("realistic 4K-entry RTM: %.1f%% reused, avg trace %.1f\n",
              realistic.result().reuse_fraction() * 100,
              realistic.result().avg_reused_trace_size());
  return 0;
}
