// Parameterised property sweeps over the dataflow timers, run against
// real workload streams: invariants that must hold for any window size
// and any reuse plan.
#include <map>
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "reuse/reusability.hpp"
#include "reuse/trace_builder.hpp"
#include "timing/timer.hpp"
#include "vm/interpreter.hpp"
#include "workloads/workload.hpp"

namespace tlr::timing {
namespace {

std::span<const isa::DynInst> stream_for(std::string_view name) {
  static std::map<std::string, std::vector<isa::DynInst>> cache;
  auto [it, fresh] = cache.try_emplace(std::string(name));
  if (fresh) {
    vm::RunLimits limits;
    limits.skip = 5000;
    limits.max_emitted = 25000;
    it->second = vm::collect_stream(
        workloads::make_workload(name, {}).program, limits);
  }
  return it->second;
}

const ReusePlan& plans_for(std::string_view name, bool trace) {
  static std::map<std::string, std::pair<ReusePlan, ReusePlan>> cache;
  auto [it, fresh] = cache.try_emplace(std::string(name));
  if (fresh) {
    const auto stream = stream_for(name);
    const auto reusable = reuse::analyze_reusability(stream);
    it->second.first = reuse::build_instr_plan(stream, reusable.reusable);
    it->second.second = reuse::build_max_trace_plan(stream,
                                                    reusable.reusable);
  }
  return trace ? it->second.second : it->second.first;
}

using Param = std::tuple<std::string_view, u32>;  // (workload, window)

class TimerProperties : public ::testing::TestWithParam<Param> {};

TEST_P(TimerProperties, WindowMonotoneAndReuseNeverHurts) {
  const auto [name, window] = GetParam();
  const auto stream = stream_for(name);

  TimerConfig config;
  config.window = window;
  const Cycle base = compute_timing(stream, nullptr, config).cycles;

  // Smaller windows can only slow execution down.
  TimerConfig half = config;
  half.window = window == 0 ? 0 : window / 2;
  if (window != 0) {
    const Cycle half_cycles = compute_timing(stream, nullptr, half).cycles;
    EXPECT_GE(half_cycles, base);
  }

  // Oracle reuse rules: any plan is at most as slow as the base.
  const Cycle ilr =
      compute_timing(stream, &plans_for(name, false), config).cycles;
  const Cycle trace =
      compute_timing(stream, &plans_for(name, true), config).cycles;
  EXPECT_LE(ilr, base);
  EXPECT_LE(trace, base);
  // Theorem-1 grouping: trace reuse covers the same instructions with
  // fewer, cheaper operations — never slower than per-instruction reuse.
  EXPECT_LE(trace, ilr);

  // IPC bookkeeping is consistent.
  const TimerResult result = compute_timing(stream, nullptr, config);
  EXPECT_EQ(result.instructions, stream.size());
  EXPECT_NEAR(result.ipc,
              double(result.instructions) / double(result.cycles), 1e-9);
}

TEST_P(TimerProperties, TraceSlotPolicyOrdering) {
  const auto [name, window] = GetParam();
  if (window == 0) GTEST_SKIP() << "slot policies only matter windowed";
  const auto stream = stream_for(name);
  const ReusePlan& plan = plans_for(name, true);

  Cycle previous = 0;
  for (const TraceSlotPolicy policy :
       {TraceSlotPolicy::kNone, TraceSlotPolicy::kOne,
        TraceSlotPolicy::kOutputs}) {
    TimerConfig config;
    config.window = window;
    config.trace_slots = policy;
    const Cycle cycles = compute_timing(stream, &plan, config).cycles;
    // Occupying more slots should not speed things up. The bound is not
    // bitwise-strict: inserting early-completing slots shifts which
    // prefix-max the W-back constraint consults, which can wobble the
    // total by a fraction of a percent — hence the 1% tolerance.
    EXPECT_GE(cycles + cycles / 100 + 1, previous);
    previous = cycles;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TimerProperties,
    ::testing::Combine(::testing::Values("compress", "hydro2d", "gcc",
                                         "turb3d"),
                       ::testing::Values(0u, 64u, 256u, 1024u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tlr::timing
