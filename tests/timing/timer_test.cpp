// Unit tests for the dataflow timing models.
#include <gtest/gtest.h>

#include <vector>

#include "isa/dyn_inst.hpp"
#include "timing/timer.hpp"

namespace tlr {
namespace {

using isa::DynInst;
using isa::Loc;
using isa::Op;
using timing::TimerConfig;
using timing::TimerResult;

/// Builds a register-to-register ALU instruction reading `src` and
/// writing `dst` (values are irrelevant to the timer).
DynInst alu(isa::Pc pc, isa::Reg dst, std::initializer_list<isa::Reg> srcs,
            Op op = Op::kAdd) {
  DynInst inst;
  inst.pc = pc;
  inst.next_pc = pc + 1;
  inst.op = op;
  for (isa::Reg s : srcs) inst.add_input(Loc::reg(s), 0);
  inst.set_output(Loc::reg(dst), 0);
  return inst;
}

TEST(TimerTest, EmptyStream) {
  const TimerResult result = timing::compute_timing({}, nullptr, {});
  EXPECT_EQ(result.instructions, 0u);
  EXPECT_EQ(result.cycles, 0u);
}

TEST(TimerTest, SerialChainIsSequential) {
  // r1 = r1 + r1, N times: a pure dependence chain of 1-cycle adds.
  std::vector<DynInst> stream;
  for (int i = 0; i < 100; ++i) stream.push_back(alu(0, isa::r(1), {isa::r(1)}));
  const TimerResult result = timing::compute_timing(stream, nullptr, {});
  EXPECT_EQ(result.cycles, 100u);
  EXPECT_DOUBLE_EQ(result.ipc, 1.0);
}

TEST(TimerTest, IndependentInstructionsAreParallel) {
  // 100 instructions writing distinct registers from r2: all complete
  // at cycle 1 under an infinite window.
  std::vector<DynInst> stream;
  for (int i = 0; i < 100; ++i) {
    stream.push_back(alu(0, isa::r(1 + (i % 20)), {isa::kIntZero}));
  }
  const TimerResult result = timing::compute_timing(stream, nullptr, {});
  EXPECT_EQ(result.cycles, 1u);
}

TEST(TimerTest, LatencyOfMultiplyIsCharged) {
  std::vector<DynInst> stream;
  stream.push_back(alu(0, isa::r(1), {isa::r(2)}, Op::kMul));
  stream.push_back(alu(1, isa::r(3), {isa::r(1)}));  // dependent add
  const TimerResult result = timing::compute_timing(stream, nullptr, {});
  const Cycle mul_latency = isa::kAlpha21164Latencies.get(isa::OpClass::kIntMul);
  EXPECT_EQ(result.cycles, mul_latency + 1);
}

TEST(TimerTest, MemoryDependenceThroughStoreLoad) {
  // store r1 -> [A]; load [A] -> r2; add r2 -> r3. The load must wait
  // for the store even though no register connects them.
  const Addr addr = 0x1000;
  std::vector<DynInst> stream;
  // Serial chain making the store finish late: r1 = r1+r1 (x5).
  for (int i = 0; i < 5; ++i) stream.push_back(alu(0, isa::r(1), {isa::r(1)}));
  DynInst store;
  store.pc = 1;
  store.op = Op::kStq;
  store.add_input(Loc::reg(isa::r(9)), 0);  // base
  store.add_input(Loc::reg(isa::r(1)), 0);  // data (late)
  store.set_output(Loc::mem(addr), 0);
  stream.push_back(store);

  DynInst load;
  load.pc = 2;
  load.op = Op::kLdq;
  load.add_input(Loc::reg(isa::r(9)), 0);
  load.add_input(Loc::mem(addr), 0);
  load.set_output(Loc::reg(isa::r(2)), 0);
  stream.push_back(load);
  stream.push_back(alu(3, isa::r(3), {isa::r(2)}));

  const TimerResult result = timing::compute_timing(stream, nullptr, {});
  // 5 (chain) + 1 (store) + 2 (load) + 1 (add)
  EXPECT_EQ(result.cycles, 9u);
}

TEST(TimerTest, WindowLimitsParallelism) {
  // One long-latency op, then many independent ops. With W=4 the
  // independents cannot all issue behind the divide.
  std::vector<DynInst> stream;
  stream.push_back(alu(0, isa::r(1), {isa::r(2)}, Op::kDiv));  // 40 cycles
  for (int i = 0; i < 8; ++i) {
    stream.push_back(alu(1 + i, isa::r(3 + i), {isa::kIntZero}));
  }
  TimerConfig infinite;
  const TimerResult inf = timing::compute_timing(stream, nullptr, infinite);
  EXPECT_EQ(inf.cycles, 40u);  // independents hide behind the divide

  TimerConfig windowed;
  windowed.window = 4;
  const TimerResult win = timing::compute_timing(stream, nullptr, windowed);
  // The 5th independent op must wait for the divide (the graduation
  // time of the instruction W=4 slots earlier includes it).
  EXPECT_GT(win.cycles, inf.cycles);
}

TEST(TimerTest, WindowedNeverFasterThanInfinite) {
  std::vector<DynInst> stream;
  for (int i = 0; i < 200; ++i) {
    stream.push_back(alu(i % 7, isa::r(1 + (i % 5)),
                         {isa::r(1 + ((i + 1) % 5))},
                         (i % 11 == 0) ? Op::kMul : Op::kAdd));
  }
  TimerConfig infinite;
  TimerConfig windowed;
  windowed.window = 16;
  const Cycle inf = timing::compute_timing(stream, nullptr, infinite).cycles;
  const Cycle win = timing::compute_timing(stream, nullptr, windowed).cycles;
  EXPECT_GE(win, inf);
}

TEST(TimerTest, InstReuseShortensLongOps) {
  // Serial chain of multiplies; reusing each at 1 cycle collapses the
  // chain from 12N to N cycles.
  std::vector<DynInst> stream;
  for (int i = 0; i < 50; ++i) {
    stream.push_back(alu(0, isa::r(1), {isa::r(1)}, Op::kMul));
  }
  timing::ReusePlan plan;
  plan.kind.assign(stream.size(), timing::InstKind::kInstReuse);
  plan.trace_of.assign(stream.size(), 0);

  TimerConfig config;
  const Cycle base = timing::compute_timing(stream, nullptr, config).cycles;
  const Cycle reused = timing::compute_timing(stream, &plan, config).cycles;
  EXPECT_EQ(base, 50u * 12);
  EXPECT_EQ(reused, 50u);
}

TEST(TimerTest, InstReuseNeverHurts) {
  // Oracle rule: reuse latency 4 on 1-cycle adds must not slow down.
  std::vector<DynInst> stream;
  for (int i = 0; i < 50; ++i) stream.push_back(alu(0, isa::r(1), {isa::r(1)}));
  timing::ReusePlan plan;
  plan.kind.assign(stream.size(), timing::InstKind::kInstReuse);
  plan.trace_of.assign(stream.size(), 0);

  TimerConfig config;
  config.inst_reuse_latency = 4;
  const Cycle base = timing::compute_timing(stream, nullptr, config).cycles;
  const Cycle reused = timing::compute_timing(stream, &plan, config).cycles;
  EXPECT_EQ(base, reused);
}

TEST(TimerTest, TraceReuseCollapsesDependentChain) {
  // A serial chain of 20 multiplies covered by one reused trace
  // completes in trace_latency cycles: beyond the dataflow limit.
  std::vector<DynInst> stream;
  for (int i = 0; i < 20; ++i) {
    stream.push_back(alu(i, isa::r(1), {isa::r(1)}, Op::kMul));
  }
  timing::ReusePlan plan;
  plan.kind.assign(stream.size(), timing::InstKind::kTraceReuse);
  plan.trace_of.assign(stream.size(), 0);
  timing::PlanTrace trace;
  trace.first_index = 0;
  trace.length = 20;
  trace.live_in.push_back(Loc::reg(isa::r(1)));
  trace.reg_inputs = 1;
  trace.reg_outputs = 1;
  plan.traces.push_back(trace);

  TimerConfig config;
  const Cycle base = timing::compute_timing(stream, nullptr, config).cycles;
  const Cycle reused = timing::compute_timing(stream, &plan, config).cycles;
  EXPECT_EQ(base, 240u);
  EXPECT_EQ(reused, 1u);  // one reuse operation, 1-cycle latency
}

TEST(TimerTest, ProportionalTraceLatency) {
  std::vector<DynInst> stream;
  for (int i = 0; i < 10; ++i) {
    stream.push_back(alu(i, isa::r(1), {isa::r(1)}, Op::kMul));
  }
  timing::ReusePlan plan;
  plan.kind.assign(stream.size(), timing::InstKind::kTraceReuse);
  plan.trace_of.assign(stream.size(), 0);
  timing::PlanTrace trace;
  trace.first_index = 0;
  trace.length = 10;
  trace.reg_inputs = 6;
  trace.reg_outputs = 2;  // 8 values, k = 1/2 -> latency 4
  plan.traces.push_back(trace);

  TimerConfig config;
  config.proportional_trace_latency = true;
  config.trace_latency_k = 0.5;
  const Cycle reused = timing::compute_timing(stream, &plan, config).cycles;
  EXPECT_EQ(reused, 4u);
}

TEST(TimerTest, TraceReuseFreesWindow) {
  // With a tiny window, a reused trace occupying fewer slots than its
  // instruction count must beat instruction-level reuse.
  std::vector<DynInst> stream;
  for (int i = 0; i < 400; ++i) {
    stream.push_back(alu(i % 13, isa::r(1 + (i % 3)), {isa::r(1)}));
  }
  timing::ReusePlan trace_plan;
  trace_plan.kind.assign(stream.size(), timing::InstKind::kTraceReuse);
  trace_plan.trace_of.assign(stream.size(), 0);
  for (usize t = 0; t < 400 / 20; ++t) {
    timing::PlanTrace trace;
    trace.first_index = t * 20;
    trace.length = 20;
    trace.live_in.push_back(Loc::reg(isa::r(1)));
    trace.reg_inputs = 1;
    trace.reg_outputs = 3;
    trace_plan.traces.push_back(trace);
    for (usize j = t * 20; j < (t + 1) * 20; ++j) {
      trace_plan.trace_of[j] = static_cast<u32>(t);
    }
  }
  timing::ReusePlan instr_plan;
  instr_plan.kind.assign(stream.size(), timing::InstKind::kInstReuse);
  instr_plan.trace_of.assign(stream.size(), 0);

  TimerConfig config;
  config.window = 8;
  const Cycle ilr = timing::compute_timing(stream, &instr_plan, config).cycles;
  const Cycle trace = timing::compute_timing(stream, &trace_plan, config).cycles;
  EXPECT_LT(trace, ilr);
}

}  // namespace
}  // namespace tlr
