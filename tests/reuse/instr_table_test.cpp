// Instruction-reuse table tests: infinite limit-study table and the
// finite LRU table used by the realistic collection heuristics.
#include <gtest/gtest.h>

#include "isa/dyn_inst.hpp"
#include "reuse/instr_table.hpp"
#include "reuse/reusability.hpp"
#include "reuse/signature.hpp"

namespace tlr::reuse {
namespace {

using isa::DynInst;
using isa::Loc;
using isa::r;

DynInst make_inst(isa::Pc pc, u64 v1, u64 v2) {
  DynInst inst;
  inst.pc = pc;
  inst.op = isa::Op::kAdd;
  inst.add_input(Loc::reg(r(1)), v1);
  inst.add_input(Loc::reg(r(2)), v2);
  inst.set_output(Loc::reg(r(3)), v1 + v2);
  return inst;
}

TEST(SignatureTest, SameInputsSameSignature) {
  EXPECT_EQ(input_signature(make_inst(1, 2, 3)),
            input_signature(make_inst(9, 2, 3)));  // pc not part of it
}

TEST(SignatureTest, ValueSensitive) {
  EXPECT_FALSE(input_signature(make_inst(1, 2, 3)) ==
               input_signature(make_inst(1, 2, 4)));
}

TEST(SignatureTest, LocationSensitive) {
  DynInst a, b;
  a.add_input(Loc::reg(r(1)), 5);
  b.add_input(Loc::reg(r(2)), 5);
  EXPECT_FALSE(input_signature(a) == input_signature(b));
}

TEST(SignatureTest, MemoryLocationMatters) {
  DynInst a, b;
  a.add_input(Loc::mem(0x100), 5);
  b.add_input(Loc::mem(0x108), 5);
  EXPECT_FALSE(input_signature(a) == input_signature(b));
}

TEST(InfiniteTableTest, FirstMissThenHit) {
  InfiniteInstrTable table;
  EXPECT_FALSE(table.lookup_insert(make_inst(1, 2, 3)));
  EXPECT_TRUE(table.lookup_insert(make_inst(1, 2, 3)));
  EXPECT_TRUE(table.lookup_insert(make_inst(1, 2, 3)));
}

TEST(InfiniteTableTest, DistinguishesPcAndInputs) {
  InfiniteInstrTable table;
  EXPECT_FALSE(table.lookup_insert(make_inst(1, 2, 3)));
  EXPECT_FALSE(table.lookup_insert(make_inst(2, 2, 3)));  // other pc
  EXPECT_FALSE(table.lookup_insert(make_inst(1, 2, 4)));  // other value
  EXPECT_TRUE(table.lookup_insert(make_inst(1, 2, 3)));
  EXPECT_EQ(table.distinct_pcs(), 2u);
  EXPECT_EQ(table.stored_instances(), 3u);
}

TEST(InfiniteTableTest, RemembersForever) {
  InfiniteInstrTable table;
  for (u64 v = 0; v < 1000; ++v) table.lookup_insert(make_inst(1, v, 0));
  for (u64 v = 0; v < 1000; ++v) {
    EXPECT_TRUE(table.lookup_insert(make_inst(1, v, 0)));
  }
}

TEST(FiniteTableTest, HitAfterInsert) {
  FiniteInstrTable table(64);
  EXPECT_FALSE(table.lookup_insert(make_inst(1, 2, 3)));
  EXPECT_TRUE(table.lookup_insert(make_inst(1, 2, 3)));
  EXPECT_EQ(table.hits(), 1u);
  EXPECT_EQ(table.misses(), 1u);
}

TEST(FiniteTableTest, CapacityEvictsOldEntries) {
  FiniteInstrTable table(16, 4);
  // Fill far beyond capacity with distinct instances.
  for (u64 v = 0; v < 1000; ++v) table.lookup_insert(make_inst(1, v, 0));
  // Early instances must mostly be gone.
  u64 survivors = 0;
  for (u64 v = 0; v < 100; ++v) {
    if (table.lookup_insert(make_inst(1, v, 0))) ++survivors;
  }
  EXPECT_LT(survivors, 20u);
}

TEST(FiniteTableTest, LruKeepsHotEntry) {
  FiniteInstrTable table(16, 4);
  table.lookup_insert(make_inst(7, 1, 1));  // the hot entry
  for (u64 v = 0; v < 200; ++v) {
    table.lookup_insert(make_inst(7, 1, 1));      // keep it hot
    table.lookup_insert(make_inst(1, v, 0));      // churn
  }
  EXPECT_TRUE(table.lookup_insert(make_inst(7, 1, 1)));
}

TEST(FiniteTableTest, EntriesRoundedToGeometry) {
  FiniteInstrTable table(100, 4);  // rounds up to 128
  EXPECT_GE(table.entries(), 100u);
  EXPECT_EQ(table.entries() % 4, 0u);
}

TEST(ReusabilityTest, AllRepeatsAfterFirst) {
  std::vector<DynInst> stream;
  for (int i = 0; i < 10; ++i) stream.push_back(make_inst(1, 2, 3));
  const ReusabilityResult result = analyze_reusability(stream);
  EXPECT_EQ(result.reusable_count, 9u);
  EXPECT_FALSE(result.reusable[0]);
  for (int i = 1; i < 10; ++i) EXPECT_TRUE(result.reusable[i]);
  EXPECT_DOUBLE_EQ(result.fraction(), 0.9);
}

TEST(ReusabilityTest, FreshValuesNeverReusable) {
  std::vector<DynInst> stream;
  for (u64 i = 0; i < 10; ++i) stream.push_back(make_inst(1, i, 0));
  const ReusabilityResult result = analyze_reusability(stream);
  EXPECT_EQ(result.reusable_count, 0u);
}

}  // namespace
}  // namespace tlr::reuse
