// RtmSimulator end-to-end behaviour on controlled streams.
#include <gtest/gtest.h>

#include <vector>

#include "reuse/rtm_sim.hpp"
#include "vm/builder.hpp"
#include "vm/interpreter.hpp"

namespace tlr::reuse {
namespace {

using isa::r;

/// A program whose inner loop repeats with identical values forever:
/// every pass over the 8-entry static table does the same loads/adds.
vm::Program make_repeating_program() {
  vm::ProgramBuilder b("repeat");
  const Addr table = b.alloc(8);
  for (usize i = 0; i < 8; ++i) b.init_word(table + i * 8, (i * 37) & 255);
  constexpr auto kPtr = r(1);
  constexpr auto kEnd = r(2);
  constexpr auto kVal = r(3);
  constexpr auto kAccum = r(4);
  constexpr auto kOuter = r(5);
  constexpr auto kTmp = r(6);
  b.ldi(kOuter, 1 << 20);
  vm::Label outer = b.here();
  b.ldi(kPtr, static_cast<i64>(table));
  b.ldi(kEnd, static_cast<i64>(table + 64));
  b.ldi(kAccum, 0);
  vm::Label loop = b.here();
  b.ldq(kVal, kPtr, 0);
  b.add(kAccum, kAccum, kVal);
  b.xori(kVal, kVal, 3);
  b.addi(kPtr, kPtr, 8);
  b.cmpult(kTmp, kPtr, kEnd);
  b.bnez(kTmp, loop);
  b.subi(kOuter, kOuter, 1);
  b.bnez(kOuter, outer);
  b.halt();
  return b.build();
}

std::vector<isa::DynInst> repeating_stream(u64 length) {
  vm::RunLimits limits;
  limits.max_emitted = length;
  return vm::collect_stream(make_repeating_program(), limits);
}

class HeuristicParam
    : public ::testing::TestWithParam<CollectHeuristic> {};

TEST_P(HeuristicParam, RepeatingStreamGetsSubstantialReuse) {
  const auto stream = repeating_stream(20000);
  RtmSimConfig config;
  config.heuristic = GetParam();
  config.fixed_n = 4;
  config.verify_matches = true;  // determinism cross-check on every hit
  RtmSimulator sim(config);
  const RtmSimResult result = sim.run(stream);
  EXPECT_GT(result.reuse_fraction(), 0.3)
      << "heuristic " << static_cast<int>(GetParam());
  EXPECT_GT(result.reuse_operations, 0u);
  EXPECT_GE(result.avg_reused_trace_size(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllHeuristics, HeuristicParam,
                         ::testing::Values(CollectHeuristic::kIlrNoExpand,
                                           CollectHeuristic::kIlrExpand,
                                           CollectHeuristic::kFixedExpand),
                         [](const auto& info) {
                           switch (info.param) {
                             case CollectHeuristic::kIlrNoExpand:
                               return "IlrNe";
                             case CollectHeuristic::kIlrExpand:
                               return "IlrExp";
                             case CollectHeuristic::kFixedExpand:
                               return "FixedExp";
                           }
                           return "?";
                         });

TEST(RtmSimTest, ExpansionGrowsTraces) {
  const auto stream = repeating_stream(20000);
  RtmSimConfig ne;
  ne.heuristic = CollectHeuristic::kIlrNoExpand;
  RtmSimConfig exp = ne;
  exp.heuristic = CollectHeuristic::kIlrExpand;
  const RtmSimResult r_ne = RtmSimulator(ne).run(stream);
  const RtmSimResult r_exp = RtmSimulator(exp).run(stream);
  EXPECT_GE(r_exp.avg_reused_trace_size(), r_ne.avg_reused_trace_size());
  EXPECT_GT(r_exp.expansions + r_exp.merges, 0u);
}

TEST(RtmSimTest, LargerNMeansLargerTraces) {
  const auto stream = repeating_stream(20000);
  double last_size = 0.0;
  for (u32 n : {1u, 4u, 8u}) {
    RtmSimConfig config;
    config.heuristic = CollectHeuristic::kFixedExpand;
    config.fixed_n = n;
    const RtmSimResult result = RtmSimulator(config).run(stream);
    EXPECT_GT(result.avg_reused_trace_size(), last_size);
    last_size = result.avg_reused_trace_size();
  }
}

TEST(RtmSimTest, BiggerRtmNeverReusesLess) {
  const auto stream = repeating_stream(30000);
  RtmSimConfig small;
  small.geometry = RtmGeometry::rtm512();
  RtmSimConfig big;
  big.geometry = RtmGeometry::rtm256k();
  const double small_reuse = RtmSimulator(small).run(stream).reuse_fraction();
  const double big_reuse = RtmSimulator(big).run(stream).reuse_fraction();
  EXPECT_GE(big_reuse + 0.02, small_reuse);  // allow tiny LRU noise
}

TEST(RtmSimTest, ValidBitNeverBeatsValueCompare) {
  const auto stream = repeating_stream(20000);
  RtmSimConfig value;
  RtmSimConfig validbit;
  validbit.reuse_test = ReuseTestKind::kValidBit;
  const double v = RtmSimulator(value).run(stream).reuse_fraction();
  const double i = RtmSimulator(validbit).run(stream).reuse_fraction();
  EXPECT_LE(i, v + 1e-9);
}

TEST(RtmSimTest, PlanAnnotatesReusedRegions) {
  const auto stream = repeating_stream(20000);
  RtmSimConfig config;
  config.build_plan = true;
  const RtmSimResult result = RtmSimulator(config).run(stream);
  ASSERT_EQ(result.plan.kind.size(), stream.size());
  u64 marked = 0;
  for (const auto kind : result.plan.kind) {
    if (kind == timing::InstKind::kTraceReuse) ++marked;
  }
  EXPECT_EQ(marked, result.reused_instructions);
  // Every plan trace's region must be annotated consistently.
  for (usize t = 0; t < result.plan.traces.size(); ++t) {
    const auto& trace = result.plan.traces[t];
    for (u64 j = trace.first_index; j < trace.first_index + trace.length;
         ++j) {
      EXPECT_EQ(result.plan.kind[j], timing::InstKind::kTraceReuse);
      EXPECT_EQ(result.plan.trace_of[j], t);
    }
  }
}

TEST(RtmSimTest, FreshValuesProduceNoReuse) {
  // A counter chain never repeats: nothing must ever match.
  vm::ProgramBuilder b("fresh");
  constexpr auto kC = r(1);
  b.ldi(kC, 1);
  vm::Label top = b.here();
  b.addi(kC, kC, 1);
  b.xori(kC, kC, 0x9e);
  b.addi(kC, kC, 3);
  b.br(top);
  vm::RunLimits limits;
  limits.max_emitted = 5000;
  const auto stream = vm::collect_stream(b.build(), limits);
  RtmSimConfig config;
  config.verify_matches = true;
  const RtmSimResult result = RtmSimulator(config).run(stream);
  EXPECT_EQ(result.reused_instructions, 0u);
}

}  // namespace
}  // namespace tlr::reuse
