// RtmSimulator end-to-end behaviour on controlled streams, plus the
// property suite pinning the chunk-feedable simulator against a
// whole-stream reference walk over the same Rtm primitives.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "reuse/accumulator.hpp"
#include "reuse/instr_table.hpp"
#include "reuse/rtm_sim.hpp"
#include "util/rng.hpp"
#include "vm/builder.hpp"
#include "vm/interpreter.hpp"

namespace tlr::reuse {
namespace {

using isa::r;

/// A program whose inner loop repeats with identical values forever:
/// every pass over the 8-entry static table does the same loads/adds.
vm::Program make_repeating_program() {
  vm::ProgramBuilder b("repeat");
  const Addr table = b.alloc(8);
  for (usize i = 0; i < 8; ++i) b.init_word(table + i * 8, (i * 37) & 255);
  constexpr auto kPtr = r(1);
  constexpr auto kEnd = r(2);
  constexpr auto kVal = r(3);
  constexpr auto kAccum = r(4);
  constexpr auto kOuter = r(5);
  constexpr auto kTmp = r(6);
  b.ldi(kOuter, 1 << 20);
  vm::Label outer = b.here();
  b.ldi(kPtr, static_cast<i64>(table));
  b.ldi(kEnd, static_cast<i64>(table + 64));
  b.ldi(kAccum, 0);
  vm::Label loop = b.here();
  b.ldq(kVal, kPtr, 0);
  b.add(kAccum, kAccum, kVal);
  b.xori(kVal, kVal, 3);
  b.addi(kPtr, kPtr, 8);
  b.cmpult(kTmp, kPtr, kEnd);
  b.bnez(kTmp, loop);
  b.subi(kOuter, kOuter, 1);
  b.bnez(kOuter, outer);
  b.halt();
  return b.build();
}

std::vector<isa::DynInst> repeating_stream(u64 length) {
  vm::RunLimits limits;
  limits.max_emitted = length;
  return vm::collect_stream(make_repeating_program(), limits);
}

class HeuristicParam
    : public ::testing::TestWithParam<CollectHeuristic> {};

TEST_P(HeuristicParam, RepeatingStreamGetsSubstantialReuse) {
  const auto stream = repeating_stream(20000);
  RtmSimConfig config;
  config.heuristic = GetParam();
  config.fixed_n = 4;
  config.verify_matches = true;  // determinism cross-check on every hit
  RtmSimulator sim(config);
  const RtmSimResult result = sim.run(stream);
  EXPECT_GT(result.reuse_fraction(), 0.3)
      << "heuristic " << static_cast<int>(GetParam());
  EXPECT_GT(result.reuse_operations, 0u);
  EXPECT_GE(result.avg_reused_trace_size(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllHeuristics, HeuristicParam,
                         ::testing::Values(CollectHeuristic::kIlrNoExpand,
                                           CollectHeuristic::kIlrExpand,
                                           CollectHeuristic::kFixedExpand),
                         [](const auto& info) {
                           switch (info.param) {
                             case CollectHeuristic::kIlrNoExpand:
                               return "IlrNe";
                             case CollectHeuristic::kIlrExpand:
                               return "IlrExp";
                             case CollectHeuristic::kFixedExpand:
                               return "FixedExp";
                           }
                           return "?";
                         });

TEST(RtmSimTest, ExpansionGrowsTraces) {
  const auto stream = repeating_stream(20000);
  RtmSimConfig ne;
  ne.heuristic = CollectHeuristic::kIlrNoExpand;
  RtmSimConfig exp = ne;
  exp.heuristic = CollectHeuristic::kIlrExpand;
  const RtmSimResult r_ne = RtmSimulator(ne).run(stream);
  const RtmSimResult r_exp = RtmSimulator(exp).run(stream);
  EXPECT_GE(r_exp.avg_reused_trace_size(), r_ne.avg_reused_trace_size());
  EXPECT_GT(r_exp.expansions + r_exp.merges, 0u);
}

TEST(RtmSimTest, LargerNMeansLargerTraces) {
  const auto stream = repeating_stream(20000);
  double last_size = 0.0;
  for (u32 n : {1u, 4u, 8u}) {
    RtmSimConfig config;
    config.heuristic = CollectHeuristic::kFixedExpand;
    config.fixed_n = n;
    const RtmSimResult result = RtmSimulator(config).run(stream);
    EXPECT_GT(result.avg_reused_trace_size(), last_size);
    last_size = result.avg_reused_trace_size();
  }
}

TEST(RtmSimTest, BiggerRtmNeverReusesLess) {
  const auto stream = repeating_stream(30000);
  RtmSimConfig small;
  small.geometry = RtmGeometry::rtm512();
  RtmSimConfig big;
  big.geometry = RtmGeometry::rtm256k();
  const double small_reuse = RtmSimulator(small).run(stream).reuse_fraction();
  const double big_reuse = RtmSimulator(big).run(stream).reuse_fraction();
  EXPECT_GE(big_reuse + 0.02, small_reuse);  // allow tiny LRU noise
}

TEST(RtmSimTest, ValidBitNeverBeatsValueCompare) {
  const auto stream = repeating_stream(20000);
  RtmSimConfig value;
  RtmSimConfig validbit;
  validbit.reuse_test = ReuseTestKind::kValidBit;
  const double v = RtmSimulator(value).run(stream).reuse_fraction();
  const double i = RtmSimulator(validbit).run(stream).reuse_fraction();
  EXPECT_LE(i, v + 1e-9);
}

TEST(RtmSimTest, PlanAnnotatesReusedRegions) {
  const auto stream = repeating_stream(20000);
  RtmSimConfig config;
  config.build_plan = true;
  const RtmSimResult result = RtmSimulator(config).run(stream);
  ASSERT_EQ(result.plan.kind.size(), stream.size());
  u64 marked = 0;
  for (const auto kind : result.plan.kind) {
    if (kind == timing::InstKind::kTraceReuse) ++marked;
  }
  EXPECT_EQ(marked, result.reused_instructions);
  // Every plan trace's region must be annotated consistently.
  for (usize t = 0; t < result.plan.traces.size(); ++t) {
    const auto& trace = result.plan.traces[t];
    for (u64 j = trace.first_index; j < trace.first_index + trace.length;
         ++j) {
      EXPECT_EQ(result.plan.kind[j], timing::InstKind::kTraceReuse);
      EXPECT_EQ(result.plan.trace_of[j], t);
    }
  }
}

// ---- property suite: streaming simulator vs whole-stream reference ---

/// A randomized program: a loop nest whose inner-loop body is a
/// randomly generated (but static) block of loads, ALU ops and
/// occasional table mutations. Different seeds give different static
/// code, instruction mixes, and reuse rates — including streams where
/// table slots mutate between passes, so value-compare and valid-bit
/// reuse tests genuinely diverge.
vm::Program make_random_program(u64 seed) {
  Rng rng(seed);
  vm::ProgramBuilder b("random" + std::to_string(seed));
  const usize table_words = 16 + rng.below(48);
  const Addr table = b.alloc(table_words);
  for (usize i = 0; i < table_words; ++i) {
    b.init_word(table + i * 8, rng.next() & 0xFFFF);
  }
  constexpr auto kPtr = r(1);
  constexpr auto kEnd = r(2);
  constexpr auto kOuter = r(7);
  constexpr auto kMut = r(8);
  constexpr auto kTmp = r(9);
  const auto scratch = [&] { return r(3 + rng.below(4)); };  // r3..r6

  b.ldi(kMut, static_cast<i64>(rng.below(1000)));
  b.ldi(kOuter, 1 << 20);
  const vm::Label outer = b.here();
  b.ldi(kPtr, static_cast<i64>(table));
  b.ldi(kEnd, static_cast<i64>(table + table_words * 8));
  const vm::Label loop = b.here();
  const usize block = 3 + rng.below(8);
  for (usize i = 0; i < block; ++i) {
    switch (rng.below(7)) {
      case 0: b.ldq(scratch(), kPtr, 0); break;
      case 1: b.add(scratch(), scratch(), scratch()); break;
      case 2:
        b.xori(scratch(), scratch(),
               static_cast<i64>(rng.below(256)));
        break;
      case 3:
        b.andi(scratch(), scratch(),
               static_cast<i64>(rng.below(1024)));
        break;
      case 4:
        b.muli(scratch(), scratch(), static_cast<i64>(1 + rng.below(7)));
        break;
      case 5: b.cmpult(scratch(), scratch(), kEnd); break;
      case 6: b.mov(scratch(), scratch()); break;
    }
  }
  if (rng.chance(1, 2)) {
    // A slowly changing store: some table slots differ between passes,
    // so part of the stream is genuinely non-reusable.
    b.addi(kMut, kMut, 1);
    b.stq(kMut, kPtr, 0);
  }
  b.addi(kPtr, kPtr, 8);
  b.cmpult(kTmp, kPtr, kEnd);
  b.bnez(kTmp, loop);
  b.subi(kOuter, kOuter, 1);
  b.bnez(kOuter, outer);
  b.halt();
  return b.build();
}

std::vector<isa::DynInst> random_stream(u64 seed, u64 length) {
  vm::RunLimits limits;
  limits.max_emitted = length;
  return vm::collect_stream(make_random_program(seed), limits);
}

/// Whole-stream reference walk: re-derives the realistic-RTM semantics
/// directly over a materialised stream with the Rtm primitives — the
/// reuse test sees the entire remaining stream, so none of the
/// simulator's lookahead/buffer-compaction machinery is involved. Any
/// divergence between this walk and the chunk-fed RtmSimulator is a
/// streaming bug by construction.
RtmSimResult reference_walk(std::span<const isa::DynInst> stream,
                            const RtmSimConfig& config) {
  Rtm rtm(config.geometry, config.reuse_test);
  std::optional<FiniteInstrTable> ilr;
  if (config.heuristic != CollectHeuristic::kFixedExpand) {
    ilr.emplace(config.geometry.total_entries());
  }
  ArchShadow shadow;
  TraceAccumulator acc(config.limits);
  TraceAccumulator ext_acc(config.limits);
  bool ext_active = false;
  StoredTrace ext_base;
  u32 ext_budget = 0;
  RtmSimResult result;

  const auto flush_acc = [&] {
    if (!acc.empty()) rtm.insert(acc.finalize());
  };
  const auto flush_ext = [&] {
    if (!ext_active) return;
    if (!ext_acc.empty()) {
      const StoredTrace tail = ext_acc.finalize();
      if (auto merged =
              TraceAccumulator::merge(ext_base, tail, config.limits)) {
        rtm.insert(*merged);
        ++result.expansions;
      }
    }
    ext_acc.reset();
    ext_active = false;
  };
  const auto collect = [&](const isa::DynInst& inst,
                           std::optional<bool> pre_tested) {
    if (config.heuristic == CollectHeuristic::kFixedExpand) {
      if (!acc.try_add(inst)) {
        flush_acc();
        ASSERT_TRUE(acc.try_add(inst));
      }
      if (acc.length() >= config.fixed_n) flush_acc();
      return;
    }
    const bool reusable =
        pre_tested.has_value() ? *pre_tested : ilr->lookup_insert(inst);
    if (!reusable) {
      flush_acc();
      return;
    }
    if (!acc.try_add(inst)) {
      flush_acc();
      ASSERT_TRUE(acc.try_add(inst));
    }
  };

  usize pos = 0;
  while (pos < stream.size()) {
    const isa::DynInst& inst = stream[pos];
    const auto hit = rtm.lookup(inst.pc, shadow);
    if (hit.has_value() && hit->trace->length <= stream.size() - pos) {
      const StoredTrace trace = *hit->trace;
      if (config.heuristic == CollectHeuristic::kIlrExpand && ext_active &&
          ext_acc.empty()) {
        if (auto merged =
                TraceAccumulator::merge(ext_base, trace, config.limits)) {
          rtm.insert(*merged);
          ++result.merges;
        }
      }
      flush_ext();
      flush_acc();
      ++result.reuse_operations;
      result.reused_instructions += trace.length;
      result.instructions += trace.length;
      for (const LocVal& out : trace.outputs) {
        shadow.set(out.loc, out.value);
        rtm.notify_write(out.loc);
      }
      pos += trace.length;
      if (config.heuristic != CollectHeuristic::kIlrNoExpand) {
        ext_active = true;
        ext_base = trace;
        ext_budget = config.fixed_n;
      }
    } else {
      if (ext_active) {
        if (config.heuristic == CollectHeuristic::kIlrExpand) {
          const bool reusable = ilr->lookup_insert(inst);
          if (!(reusable && ext_acc.try_add(inst))) {
            flush_ext();
            collect(inst, reusable);
          }
        } else {  // kFixedExpand
          if (ext_budget > 0 && ext_acc.try_add(inst)) {
            if (--ext_budget == 0) flush_ext();
          } else {
            flush_ext();
            collect(inst, std::nullopt);
          }
        }
      } else {
        collect(inst, std::nullopt);
      }
      shadow.observe(inst);
      if (inst.has_output) rtm.notify_write(inst.output.raw());
      ++result.instructions;
      ++pos;
    }
  }
  flush_ext();
  flush_acc();
  result.rtm = rtm.stats();
  return result;
}

void expect_same_result(const RtmSimResult& streamed,
                        const RtmSimResult& reference,
                        const std::string& context) {
  EXPECT_EQ(streamed.instructions, reference.instructions) << context;
  EXPECT_EQ(streamed.reused_instructions, reference.reused_instructions)
      << context;
  EXPECT_EQ(streamed.reuse_operations, reference.reuse_operations)
      << context;
  EXPECT_EQ(streamed.expansions, reference.expansions) << context;
  EXPECT_EQ(streamed.merges, reference.merges) << context;
  EXPECT_EQ(streamed.rtm.lookups, reference.rtm.lookups) << context;
  EXPECT_EQ(streamed.rtm.hits, reference.rtm.hits) << context;
  EXPECT_EQ(streamed.rtm.insertions, reference.rtm.insertions) << context;
  EXPECT_EQ(streamed.rtm.duplicate_insertions,
            reference.rtm.duplicate_insertions)
      << context;
  EXPECT_EQ(streamed.rtm.way_evictions, reference.rtm.way_evictions)
      << context;
  EXPECT_EQ(streamed.rtm.trace_evictions, reference.rtm.trace_evictions)
      << context;
  EXPECT_EQ(streamed.rtm.replacements, reference.rtm.replacements)
      << context;
  EXPECT_EQ(streamed.rtm.invalidations, reference.rtm.invalidations)
      << context;
}

void expect_same_plan(const timing::ReusePlan& a, const timing::ReusePlan& b,
                      const std::string& context) {
  ASSERT_EQ(a.kind.size(), b.kind.size()) << context;
  EXPECT_TRUE(a.kind == b.kind) << context;
  EXPECT_TRUE(a.trace_of == b.trace_of) << context;
  ASSERT_EQ(a.traces.size(), b.traces.size()) << context;
  for (usize t = 0; t < a.traces.size(); ++t) {
    EXPECT_EQ(a.traces[t].first_index, b.traces[t].first_index) << context;
    EXPECT_EQ(a.traces[t].length, b.traces[t].length) << context;
    EXPECT_EQ(a.traces[t].inputs(), b.traces[t].inputs()) << context;
    EXPECT_EQ(a.traces[t].outputs(), b.traces[t].outputs()) << context;
  }
}

/// Feed `stream` to a simulator in pseudo-random chunks (including
/// size-1 and jumbo chunks) drawn from `seed`.
RtmSimResult run_chunked(std::span<const isa::DynInst> stream,
                         const RtmSimConfig& config, u64 seed) {
  RtmSimulator sim(config);
  Rng rng(seed);
  usize pos = 0;
  while (pos < stream.size()) {
    usize take = 0;
    switch (rng.below(4)) {
      case 0: take = 1; break;
      case 1: take = 1 + rng.below(7); break;
      case 2: take = 1 + rng.below(100); break;
      default: take = 1 + rng.below(2000); break;
    }
    take = std::min(take, stream.size() - pos);
    sim.feed(stream.subspan(pos, take));
    pos += take;
  }
  return sim.finish();
}

struct PropertyCase {
  u64 stream_seed;
  CollectHeuristic heuristic;
  u32 fixed_n;
  RtmGeometry geometry;
  ReuseTestKind test;
};

std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> cases;
  const RtmGeometry geometries[] = {
      RtmGeometry::rtm512(), RtmGeometry::rtm4k(), {16, 2, 2}, {64, 8, 4}};
  Rng rng(0xFEEDFACE);
  for (u64 stream_seed = 1; stream_seed <= 4; ++stream_seed) {
    for (const CollectHeuristic heuristic :
         {CollectHeuristic::kIlrNoExpand, CollectHeuristic::kIlrExpand,
          CollectHeuristic::kFixedExpand}) {
      PropertyCase c;
      c.stream_seed = stream_seed;
      c.heuristic = heuristic;
      c.fixed_n = 1 + static_cast<u32>(rng.below(8));
      c.geometry = geometries[rng.below(4)];
      c.test = rng.chance(1, 4) ? ReuseTestKind::kValidBit
                                : ReuseTestKind::kValueCompare;
      cases.push_back(c);
    }
  }
  return cases;
}

std::string case_context(const PropertyCase& c) {
  std::ostringstream os;
  os << "stream_seed=" << c.stream_seed << " heuristic="
     << static_cast<int>(c.heuristic) << " fixed_n=" << c.fixed_n
     << " geometry=" << c.geometry.sets << "x" << c.geometry.pc_ways << "x"
     << c.geometry.traces_per_pc << " test=" << static_cast<int>(c.test);
  return os.str();
}

TEST(RtmSimPropertyTest, ChunkedFeedMatchesWholeStreamReferenceWalk) {
  for (const PropertyCase& c : property_cases()) {
    const auto stream = random_stream(c.stream_seed, 8000);
    RtmSimConfig config;
    config.heuristic = c.heuristic;
    config.fixed_n = c.fixed_n;
    config.geometry = c.geometry;
    config.reuse_test = c.test;
    // The determinism cross-check holds for the value-compare test;
    // keep it on wherever it applies.
    config.verify_matches = c.test == ReuseTestKind::kValueCompare;

    const RtmSimResult reference = reference_walk(stream, config);
    for (const u64 chunk_seed : {u64{11}, u64{42}}) {
      const RtmSimResult streamed = run_chunked(stream, config, chunk_seed);
      expect_same_result(streamed, reference,
                         case_context(c) + " chunk_seed=" +
                             std::to_string(chunk_seed));
    }
    // The one-shot whole-stream feed must agree too.
    expect_same_result(RtmSimulator(config).run(stream), reference,
                       case_context(c) + " one-shot");
  }
}

TEST(RtmSimPropertyTest, ChunkingIsInvisibleToPlansAndEvents) {
  // Same property with plan construction on: the annotated regions the
  // timing models consume must be identical whatever the feed
  // granularity.
  for (const u64 stream_seed : {u64{5}, u64{6}}) {
    const auto stream = random_stream(stream_seed, 6000);
    for (const CollectHeuristic heuristic :
         {CollectHeuristic::kIlrNoExpand, CollectHeuristic::kIlrExpand,
          CollectHeuristic::kFixedExpand}) {
      RtmSimConfig config;
      config.heuristic = heuristic;
      config.geometry = RtmGeometry::rtm512();
      config.build_plan = true;
      const std::string context =
          "seed=" + std::to_string(stream_seed) +
          " heuristic=" + std::to_string(static_cast<int>(heuristic));

      const RtmSimResult whole = RtmSimulator(config).run(stream);
      const RtmSimResult chunked = run_chunked(stream, config, 7);
      expect_same_result(chunked, whole, context);
      expect_same_plan(chunked.plan, whole.plan, context);
    }
  }
}

TEST(RtmSimPropertyTest, TinyGeometryStressesEvictionAgreement) {
  // A 2-set RTM maximises conflict evictions and the stale-handle
  // paths; the reference walk must still agree instruction for
  // instruction.
  u64 evictions = 0;
  for (const u64 seed : {u64{9}, u64{10}, u64{11}, u64{12}}) {
    const auto stream = random_stream(seed, 10000);
    for (const CollectHeuristic heuristic :
         {CollectHeuristic::kIlrExpand, CollectHeuristic::kFixedExpand}) {
      RtmSimConfig config;
      config.heuristic = heuristic;
      config.fixed_n = 6;
      config.geometry = {2, 2, 2};
      const RtmSimResult reference = reference_walk(stream, config);
      const RtmSimResult streamed = run_chunked(stream, config, 3);
      expect_same_result(streamed, reference,
                         "tiny geometry seed=" + std::to_string(seed) +
                             " heuristic=" +
                             std::to_string(static_cast<int>(heuristic)));
      evictions +=
          streamed.rtm.way_evictions + streamed.rtm.trace_evictions;
    }
  }
  EXPECT_GT(evictions, 0u);
}

TEST(RtmSimPropertyTest, RandomStreamsExerciseReuseAndItsAbsence) {
  // Meta-check on the generator: across seeds the streams must span a
  // range of reuse behaviour, otherwise the properties above test less
  // than they claim.
  bool saw_reuse = false;
  double min_fraction = 1.0, max_fraction = 0.0;
  for (u64 seed = 1; seed <= 4; ++seed) {
    RtmSimConfig config;
    const RtmSimResult result =
        RtmSimulator(config).run(random_stream(seed, 8000));
    const double fraction = result.reuse_fraction();
    saw_reuse |= fraction > 0.05;
    min_fraction = std::min(min_fraction, fraction);
    max_fraction = std::max(max_fraction, fraction);
  }
  EXPECT_TRUE(saw_reuse);
  EXPECT_GT(max_fraction - min_fraction, 0.01)
      << "generator produced uniform streams";
}

TEST(RtmSimTest, FreshValuesProduceNoReuse) {
  // A counter chain never repeats: nothing must ever match.
  vm::ProgramBuilder b("fresh");
  constexpr auto kC = r(1);
  b.ldi(kC, 1);
  vm::Label top = b.here();
  b.addi(kC, kC, 1);
  b.xori(kC, kC, 0x9e);
  b.addi(kC, kC, 3);
  b.br(top);
  vm::RunLimits limits;
  limits.max_emitted = 5000;
  const auto stream = vm::collect_stream(b.build(), limits);
  RtmSimConfig config;
  config.verify_matches = true;
  const RtmSimResult result = RtmSimulator(config).run(stream);
  EXPECT_EQ(result.reused_instructions, 0u);
}

}  // namespace
}  // namespace tlr::reuse
