// Maximal-trace partitioner: live-in/live-out extraction and plan shape.
#include <gtest/gtest.h>

#include <vector>

#include "reuse/trace_builder.hpp"

namespace tlr::reuse {
namespace {

using isa::DynInst;
using isa::Loc;
using isa::r;
using timing::InstKind;

DynInst rr(isa::Pc pc, isa::Reg dst, isa::Reg src, u64 sv = 0) {
  DynInst inst;
  inst.pc = pc;
  inst.op = isa::Op::kAdd;
  inst.add_input(Loc::reg(src), sv);
  inst.set_output(Loc::reg(dst), sv + 1);
  return inst;
}

TEST(MaxTraceTest, MaximalRunsBecomeTraces) {
  std::vector<DynInst> stream;
  for (int i = 0; i < 10; ++i) stream.push_back(rr(i, r(1), r(2)));
  //           indices: 0 1 2 3 4 5 6 7 8 9
  std::vector<bool> reusable = {false, true, true, true, false,
                                true,  true, false, false, true};
  const timing::ReusePlan plan = build_max_trace_plan(stream, reusable);
  ASSERT_EQ(plan.traces.size(), 3u);
  EXPECT_EQ(plan.traces[0].first_index, 1u);
  EXPECT_EQ(plan.traces[0].length, 3u);
  EXPECT_EQ(plan.traces[1].first_index, 5u);
  EXPECT_EQ(plan.traces[1].length, 2u);
  EXPECT_EQ(plan.traces[2].first_index, 9u);
  EXPECT_EQ(plan.traces[2].length, 1u);
  EXPECT_EQ(plan.kind[0], InstKind::kNormal);
  EXPECT_EQ(plan.kind[1], InstKind::kTraceReuse);
  EXPECT_EQ(plan.trace_of[6], 1u);
}

TEST(MaxTraceTest, LiveInExcludesInternallyProduced) {
  // i0: r3 <- r2 ; i1: r4 <- r3. r3 is internal to the trace, so only
  // r2 is live-in; outputs are r3 and r4.
  std::vector<DynInst> stream = {rr(0, r(3), r(2)), rr(1, r(4), r(3))};
  const std::vector<bool> reusable = {true, true};
  const timing::ReusePlan plan = build_max_trace_plan(stream, reusable);
  ASSERT_EQ(plan.traces.size(), 1u);
  const timing::PlanTrace& trace = plan.traces[0];
  EXPECT_EQ(trace.reg_inputs, 1u);
  ASSERT_EQ(trace.live_in.size(), 1u);
  EXPECT_EQ(trace.live_in[0], Loc::reg(r(2)));
  EXPECT_EQ(trace.reg_outputs, 2u);
}

TEST(MaxTraceTest, ReadBeforeWriteIsLiveIn) {
  // i0 reads r3 then writes it: r3 is both live-in and an output.
  std::vector<DynInst> stream = {rr(0, r(3), r(3))};
  const timing::ReusePlan plan = build_max_trace_plan(stream, {true});
  const timing::PlanTrace& trace = plan.traces[0];
  EXPECT_EQ(trace.reg_inputs, 1u);
  EXPECT_EQ(trace.reg_outputs, 1u);
}

TEST(MaxTraceTest, MemoryLocationsCounted) {
  DynInst load;
  load.pc = 0;
  load.op = isa::Op::kLdq;
  load.add_input(Loc::reg(r(1)), 0x100);
  load.add_input(Loc::mem(0x100), 7);
  load.set_output(Loc::reg(r(2)), 7);
  DynInst store;
  store.pc = 1;
  store.op = isa::Op::kStq;
  store.add_input(Loc::reg(r(1)), 0x100);
  store.add_input(Loc::reg(r(2)), 7);
  store.set_output(Loc::mem(0x108), 7);
  const std::vector<DynInst> stream = {load, store};
  const timing::ReusePlan plan = build_max_trace_plan(stream, {true, true});
  const timing::PlanTrace& trace = plan.traces[0];
  EXPECT_EQ(trace.mem_inputs, 1u);
  EXPECT_EQ(trace.reg_inputs, 1u);   // r1 (r2 produced by the load)
  EXPECT_EQ(trace.mem_outputs, 1u);
  EXPECT_EQ(trace.reg_outputs, 1u);
}

TEST(MaxTraceTest, DuplicateLocationsCountedOnce) {
  // Two instructions reading the same live-in register.
  std::vector<DynInst> stream = {rr(0, r(3), r(2)), rr(1, r(4), r(2))};
  const timing::ReusePlan plan = build_max_trace_plan(stream, {true, true});
  EXPECT_EQ(plan.traces[0].reg_inputs, 1u);
  // Two writes to the same register count once as output.
  std::vector<DynInst> stream2 = {rr(0, r(3), r(2)), rr(1, r(3), r(2))};
  const timing::ReusePlan plan2 = build_max_trace_plan(stream2, {true, true});
  EXPECT_EQ(plan2.traces[0].reg_outputs, 1u);
}

TEST(InstrPlanTest, MarksExactlyReusable) {
  std::vector<DynInst> stream;
  for (int i = 0; i < 6; ++i) stream.push_back(rr(i, r(1), r(2)));
  const std::vector<bool> reusable = {false, true, false, true, true, false};
  const timing::ReusePlan plan = build_instr_plan(stream, reusable);
  for (usize i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(plan.kind[i] == InstKind::kInstReuse, reusable[i]);
  }
  EXPECT_TRUE(plan.traces.empty());
}

TEST(TraceStatsTest, Averages) {
  std::vector<DynInst> stream;
  for (int i = 0; i < 9; ++i) stream.push_back(rr(i, r(1 + i % 3), r(2)));
  // Two traces: lengths 3 and 6.
  std::vector<bool> reusable = {true, true, true, false,
                                true, true, true, true, true};
  // Wait: indices 4..8 is length 5; adjust expectation below.
  const timing::ReusePlan plan = build_max_trace_plan(stream, reusable);
  const TraceStats stats = compute_trace_stats(plan);
  EXPECT_EQ(stats.traces, 2u);
  EXPECT_EQ(stats.covered_instructions, 8u);
  EXPECT_DOUBLE_EQ(stats.avg_size, 4.0);
  EXPECT_GT(stats.reads_per_instruction(), 0.0);
  EXPECT_GT(stats.writes_per_instruction(), 0.0);
}

TEST(TraceStatsTest, EmptyPlan) {
  const TraceStats stats = compute_trace_stats(timing::ReusePlan{});
  EXPECT_EQ(stats.traces, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_size, 0.0);
}

TEST(CoverageTest, ReuseCoverageFraction) {
  std::vector<DynInst> stream;
  for (int i = 0; i < 4; ++i) stream.push_back(rr(i, r(1), r(2)));
  const timing::ReusePlan plan =
      build_max_trace_plan(stream, {true, true, false, false});
  EXPECT_DOUBLE_EQ(plan.reuse_coverage(), 0.5);
}

}  // namespace
}  // namespace tlr::reuse
