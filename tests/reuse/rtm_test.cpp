// RTM structure tests: geometry, two-level LRU, value-compare and
// valid-bit reuse tests, expansion replacement, and the accumulator.
#include <gtest/gtest.h>

#include "reuse/accumulator.hpp"
#include "reuse/rtm.hpp"

namespace tlr::reuse {
namespace {

using isa::Loc;
using isa::r;

StoredTrace make_trace(isa::Pc pc, u64 in_loc, u64 in_val, u64 out_loc,
                       u64 out_val, u32 length = 4) {
  StoredTrace trace;
  trace.start_pc = pc;
  trace.next_pc = pc + length;
  trace.length = length;
  trace.inputs.push_back(LocVal{in_loc, in_val});
  trace.outputs.push_back(LocVal{out_loc, out_val});
  trace.reg_inputs = 1;
  trace.reg_outputs = 1;
  return trace;
}

TEST(RtmGeometryTest, PaperConfigurations) {
  EXPECT_EQ(RtmGeometry::rtm512().total_entries(), 512u);
  EXPECT_EQ(RtmGeometry::rtm4k().total_entries(), 4096u);
  EXPECT_EQ(RtmGeometry::rtm32k().total_entries(), 32768u);
  EXPECT_EQ(RtmGeometry::rtm256k().total_entries(), 262144u);
}

TEST(RtmGeometryTest, NonPowerOfTwoSetCountIsRejected) {
  // set_index masks with (sets - 1); a non-power-of-two set count would
  // silently alias sets, so construction must refuse it.
  RtmGeometry geometry;
  geometry.sets = 100;
  EXPECT_DEATH({ Rtm rtm(geometry); }, "power of two");
  geometry.sets = 0;
  EXPECT_DEATH({ Rtm rtm(geometry); }, "power of two");
  geometry.sets = 1;  // a single set is fine (fully associative ways)
  Rtm rtm(geometry);
  EXPECT_EQ(rtm.geometry().sets, 1u);
}

TEST(ArchShadowTest, UnknownThenKnown) {
  ArchShadow shadow;
  EXPECT_FALSE(shadow.value(Loc::reg(r(1)).raw()).has_value());
  shadow.set(Loc::reg(r(1)).raw(), 42);
  EXPECT_EQ(shadow.value(Loc::reg(r(1)).raw()).value(), 42u);
  const u64 mem = Loc::mem(0x100).raw();
  EXPECT_FALSE(shadow.value(mem).has_value());
  shadow.set(mem, 7);
  EXPECT_EQ(shadow.value(mem).value(), 7u);
}

TEST(ArchShadowTest, ObserveRevealsInputsAndOutput) {
  isa::DynInst inst;
  inst.add_input(Loc::reg(r(2)), 11);
  inst.set_output(Loc::reg(r(3)), 12);
  ArchShadow shadow;
  shadow.observe(inst);
  EXPECT_EQ(shadow.value(Loc::reg(r(2)).raw()).value(), 11u);
  EXPECT_EQ(shadow.value(Loc::reg(r(3)).raw()).value(), 12u);
}

TEST(RtmTest, MissWhenEmptyHitAfterInsert) {
  Rtm rtm(RtmGeometry{8, 2, 2});
  ArchShadow shadow;
  shadow.set(Loc::reg(r(1)).raw(), 5);
  EXPECT_FALSE(rtm.lookup(100, shadow).has_value());
  rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), 5, Loc::reg(r(2)).raw(), 9));
  const auto hit = rtm.lookup(100, shadow);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->trace->length, 4u);
  EXPECT_EQ(rtm.stats().hits, 1u);
}

TEST(RtmTest, InputHashCollisionStillFailsReuseTest) {
  // The reuse test fast-rejects slots by a 64-bit multiset hash of
  // their stored inputs (rtm.hpp). The hash combines per-element terms
  // with a wrapping sum and values enter linearly, so shifting value
  // mass between two locations preserves the hash: the stored trace
  // below and the architectural state constructed here collide by
  // design while disagreeing on every input value. A colliding-but-
  // unequal state is a fast-reject *false positive* — the exact
  // value-compare walk must still reject it, proving false positives
  // are safe and never manufacture a reuse.
  const u64 loc_a = Loc::reg(r(1)).raw();
  const u64 loc_b = Loc::reg(r(2)).raw();

  StoredTrace trace = make_trace(5, loc_a, 100, Loc::reg(r(3)).raw(), 9);
  trace.inputs.push_back(LocVal{loc_b, 200});
  trace.reg_inputs = 2;

  // The colliding input multiset: +1 on one value, -1 on the other.
  const LocVal collided[] = {{loc_a, 101}, {loc_b, 199}};
  ASSERT_EQ(input_multiset_hash(std::span<const LocVal>(
                trace.inputs.begin(), trace.inputs.size())),
            input_multiset_hash(std::span<const LocVal>(collided, 2)));

  Rtm rtm(RtmGeometry{8, 2, 2});
  rtm.insert(trace);

  ArchShadow colliding_state;
  colliding_state.set(loc_a, 101);
  colliding_state.set(loc_b, 199);
  EXPECT_FALSE(rtm.lookup(5, colliding_state).has_value());
  EXPECT_EQ(rtm.stats().hits, 0u);

  // Sanity: the genuinely matching state still hits.
  ArchShadow matching_state;
  matching_state.set(loc_a, 100);
  matching_state.set(loc_b, 200);
  EXPECT_TRUE(rtm.lookup(5, matching_state).has_value());
}

TEST(RtmTest, ValueMismatchMisses) {
  Rtm rtm(RtmGeometry{8, 2, 2});
  rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), 5, Loc::reg(r(2)).raw(), 9));
  ArchShadow shadow;
  shadow.set(Loc::reg(r(1)).raw(), 6);  // wrong value
  EXPECT_FALSE(rtm.lookup(100, shadow).has_value());
  ArchShadow unknown;  // unknown value is a conservative miss
  EXPECT_FALSE(rtm.lookup(100, unknown).has_value());
}

TEST(RtmTest, MultipleVariantsPerPc) {
  Rtm rtm(RtmGeometry{8, 2, 4});
  for (u64 v = 0; v < 3; ++v) {
    rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), v,
                          Loc::reg(r(2)).raw(), v * 10));
  }
  for (u64 v = 0; v < 3; ++v) {
    ArchShadow shadow;
    shadow.set(Loc::reg(r(1)).raw(), v);
    const auto hit = rtm.lookup(100, shadow);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->trace->outputs[0].value, v * 10);
  }
}

TEST(RtmTest, TraceLruEvictsOldestVariant) {
  Rtm rtm(RtmGeometry{8, 2, 2});  // only 2 traces per PC
  for (u64 v = 0; v < 3; ++v) {
    rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), v,
                          Loc::reg(r(2)).raw(), v));
  }
  ArchShadow shadow0;
  shadow0.set(Loc::reg(r(1)).raw(), 0);
  EXPECT_FALSE(rtm.lookup(100, shadow0).has_value());  // evicted
  ArchShadow shadow2;
  shadow2.set(Loc::reg(r(1)).raw(), 2);
  EXPECT_TRUE(rtm.lookup(100, shadow2).has_value());
  EXPECT_EQ(rtm.stats().trace_evictions, 1u);
}

TEST(RtmTest, WayLruEvictsColdPc) {
  Rtm rtm(RtmGeometry{1, 2, 1});  // one set, two PC ways
  rtm.insert(make_trace(10, Loc::reg(r(1)).raw(), 1, Loc::reg(r(2)).raw(), 1));
  rtm.insert(make_trace(20, Loc::reg(r(1)).raw(), 1, Loc::reg(r(2)).raw(), 1));
  // Touch PC 10 to make PC 20 the LRU way.
  ArchShadow shadow;
  shadow.set(Loc::reg(r(1)).raw(), 1);
  EXPECT_TRUE(rtm.lookup(10, shadow).has_value());
  rtm.insert(make_trace(30, Loc::reg(r(1)).raw(), 1, Loc::reg(r(2)).raw(), 1));
  EXPECT_TRUE(rtm.lookup(10, shadow).has_value());
  EXPECT_FALSE(rtm.lookup(20, shadow).has_value());  // evicted way
  EXPECT_TRUE(rtm.lookup(30, shadow).has_value());
  EXPECT_EQ(rtm.stats().way_evictions, 1u);
}

TEST(RtmTest, DuplicateInsertOnlyRefreshesLru) {
  Rtm rtm(RtmGeometry{8, 2, 4});
  const StoredTrace trace =
      make_trace(100, Loc::reg(r(1)).raw(), 5, Loc::reg(r(2)).raw(), 9);
  rtm.insert(trace);
  rtm.insert(trace);
  EXPECT_EQ(rtm.stats().insertions, 1u);
  EXPECT_EQ(rtm.stats().duplicate_insertions, 1u);
}

TEST(RtmTest, ReplaceExpandsEntry) {
  Rtm rtm(RtmGeometry{8, 2, 2});
  rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), 5, Loc::reg(r(2)).raw(), 9));
  ArchShadow shadow;
  shadow.set(Loc::reg(r(1)).raw(), 5);
  const auto hit = rtm.lookup(100, shadow);
  ASSERT_TRUE(hit.has_value());
  StoredTrace bigger = *hit->trace;
  bigger.length = 10;
  bigger.next_pc = 110;
  EXPECT_TRUE(rtm.replace(hit->handle, bigger));
  const auto hit2 = rtm.lookup(100, shadow);
  ASSERT_TRUE(hit2.has_value());
  EXPECT_EQ(hit2->trace->length, 10u);
}

TEST(RtmTest, StaleReplaceRejected) {
  Rtm rtm(RtmGeometry{8, 2, 1});  // 1 trace per PC: insert evicts
  rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), 5, Loc::reg(r(2)).raw(), 9));
  ArchShadow shadow;
  shadow.set(Loc::reg(r(1)).raw(), 5);
  const auto hit = rtm.lookup(100, shadow);
  ASSERT_TRUE(hit.has_value());
  const Rtm::Handle handle = hit->handle;
  // Evict the slot by inserting a different trace for the same PC.
  rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), 6, Loc::reg(r(3)).raw(), 1,
                        7));
  StoredTrace bigger = make_trace(100, Loc::reg(r(1)).raw(), 5,
                                  Loc::reg(r(2)).raw(), 9, 12);
  EXPECT_FALSE(rtm.replace(handle, bigger));
  EXPECT_EQ(rtm.stats().stale_replacements, 1u);
}

TEST(RtmValidBitTest, WriteToInputInvalidates) {
  Rtm rtm(RtmGeometry{8, 2, 2}, ReuseTestKind::kValidBit);
  rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), 5, Loc::reg(r(2)).raw(), 9));
  ArchShadow shadow;  // valid-bit mode ignores values
  EXPECT_TRUE(rtm.lookup(100, shadow).has_value());
  rtm.notify_write(Loc::reg(r(1)).raw());
  EXPECT_FALSE(rtm.lookup(100, shadow).has_value());
  EXPECT_EQ(rtm.stats().invalidations, 1u);
}

TEST(RtmValidBitTest, WriteToUnrelatedLocationKeepsEntry) {
  Rtm rtm(RtmGeometry{8, 2, 2}, ReuseTestKind::kValidBit);
  rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), 5, Loc::reg(r(2)).raw(), 9));
  rtm.notify_write(Loc::reg(r(7)).raw());
  ArchShadow shadow;
  EXPECT_TRUE(rtm.lookup(100, shadow).has_value());
}

TEST(RtmValidBitTest, ReinsertionRevalidates) {
  Rtm rtm(RtmGeometry{8, 2, 2}, ReuseTestKind::kValidBit);
  const StoredTrace trace =
      make_trace(100, Loc::reg(r(1)).raw(), 5, Loc::reg(r(2)).raw(), 9);
  rtm.insert(trace);
  rtm.notify_write(Loc::reg(r(1)).raw());
  ArchShadow shadow;
  EXPECT_FALSE(rtm.lookup(100, shadow).has_value());
  rtm.insert(trace);  // re-collected
  EXPECT_TRUE(rtm.lookup(100, shadow).has_value());
}

// ---- LRU replacement edge cases (§4 decoding) -------------------------

TEST(RtmLruTest, TraceLevelEvictionFollowsInsertionOrder) {
  Rtm rtm(RtmGeometry{8, 2, 3});
  for (u64 v = 0; v < 3; ++v) {
    rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), v,
                          Loc::reg(r(2)).raw(), v));
  }
  // Slots full; each further insert must evict the oldest variant in
  // turn: v=0 first, then v=1.
  rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), 10,
                        Loc::reg(r(2)).raw(), 10));
  ArchShadow shadow0;
  shadow0.set(Loc::reg(r(1)).raw(), 0);
  EXPECT_FALSE(rtm.lookup(100, shadow0).has_value());
  rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), 11,
                        Loc::reg(r(2)).raw(), 11));
  ArchShadow shadow1;
  shadow1.set(Loc::reg(r(1)).raw(), 1);
  EXPECT_FALSE(rtm.lookup(100, shadow1).has_value());
  ArchShadow shadow2;
  shadow2.set(Loc::reg(r(1)).raw(), 2);
  EXPECT_TRUE(rtm.lookup(100, shadow2).has_value());
  EXPECT_EQ(rtm.stats().trace_evictions, 2u);
}

TEST(RtmLruTest, LookupHitPromotesTraceOverYoungerVariant) {
  Rtm rtm(RtmGeometry{8, 2, 2});
  rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), 0,
                        Loc::reg(r(2)).raw(), 0));
  rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), 1,
                        Loc::reg(r(2)).raw(), 1));
  // Re-reference the older variant: the hit must refresh its stamp so
  // the *younger* variant becomes the eviction victim.
  ArchShadow shadow0;
  shadow0.set(Loc::reg(r(1)).raw(), 0);
  EXPECT_TRUE(rtm.lookup(100, shadow0).has_value());
  rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), 2,
                        Loc::reg(r(2)).raw(), 2));
  EXPECT_TRUE(rtm.lookup(100, shadow0).has_value());
  ArchShadow shadow1;
  shadow1.set(Loc::reg(r(1)).raw(), 1);
  EXPECT_FALSE(rtm.lookup(100, shadow1).has_value());
}

TEST(RtmLruTest, DuplicateInsertPromotesAgainstEviction) {
  Rtm rtm(RtmGeometry{8, 2, 2});
  const StoredTrace first =
      make_trace(100, Loc::reg(r(1)).raw(), 0, Loc::reg(r(2)).raw(), 0);
  rtm.insert(first);
  rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), 1,
                        Loc::reg(r(2)).raw(), 1));
  rtm.insert(first);  // duplicate: refreshes LRU only
  rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), 2,
                        Loc::reg(r(2)).raw(), 2));
  ArchShadow shadow0;
  shadow0.set(Loc::reg(r(1)).raw(), 0);
  EXPECT_TRUE(rtm.lookup(100, shadow0).has_value());  // survived
  ArchShadow shadow1;
  shadow1.set(Loc::reg(r(1)).raw(), 1);
  EXPECT_FALSE(rtm.lookup(100, shadow1).has_value());  // evicted instead
  EXPECT_EQ(rtm.stats().duplicate_insertions, 1u);
}

TEST(RtmLruTest, WayEvictionOrderTracksWayTouches) {
  Rtm rtm(RtmGeometry{1, 3, 1});  // one set, three PC ways
  rtm.insert(make_trace(10, Loc::reg(r(1)).raw(), 1, Loc::reg(r(2)).raw(), 1));
  rtm.insert(make_trace(20, Loc::reg(r(1)).raw(), 1, Loc::reg(r(2)).raw(), 1));
  rtm.insert(make_trace(30, Loc::reg(r(1)).raw(), 1, Loc::reg(r(2)).raw(), 1));
  // Touch PC 10 (lookup) then PC 20 (duplicate insert): PC 30 is LRU.
  ArchShadow shadow;
  shadow.set(Loc::reg(r(1)).raw(), 1);
  EXPECT_TRUE(rtm.lookup(10, shadow).has_value());
  rtm.insert(make_trace(20, Loc::reg(r(1)).raw(), 1, Loc::reg(r(2)).raw(), 1));
  rtm.insert(make_trace(40, Loc::reg(r(1)).raw(), 1, Loc::reg(r(2)).raw(), 1));
  EXPECT_TRUE(rtm.lookup(10, shadow).has_value());
  EXPECT_TRUE(rtm.lookup(20, shadow).has_value());
  EXPECT_FALSE(rtm.lookup(30, shadow).has_value());  // evicted way
  EXPECT_TRUE(rtm.lookup(40, shadow).has_value());
  EXPECT_EQ(rtm.stats().way_evictions, 1u);
}

TEST(RtmLruTest, WayEvictionResetsLazilyAllocatedSlots) {
  Rtm rtm(RtmGeometry{1, 1, 3});  // a single way: every new PC evicts
  for (u64 v = 0; v < 2; ++v) {
    rtm.insert(make_trace(10, Loc::reg(r(1)).raw(), v,
                          Loc::reg(r(2)).raw(), v));
  }
  // Evicting the way for a new PC must clear the recycled slot bank:
  // none of PC 10's variants may resurface for PC 20 — or for PC 10
  // after its way is re-allocated.
  rtm.insert(make_trace(20, Loc::reg(r(1)).raw(), 0,
                        Loc::reg(r(2)).raw(), 9));
  EXPECT_EQ(rtm.stats().way_evictions, 1u);
  ArchShadow shadow0;
  shadow0.set(Loc::reg(r(1)).raw(), 0);
  const auto hit = rtm.lookup(20, shadow0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->trace->outputs[0].value, 9u);
  EXPECT_FALSE(rtm.lookup(10, shadow0).has_value());
  rtm.insert(make_trace(10, Loc::reg(r(1)).raw(), 5,
                        Loc::reg(r(2)).raw(), 5));
  ArchShadow shadow1;
  shadow1.set(Loc::reg(r(1)).raw(), 1);
  EXPECT_FALSE(rtm.lookup(10, shadow1).has_value());  // old variant gone
}

TEST(RtmPeekTest, ListsCandidatesMruFirstWithoutSideEffects) {
  Rtm rtm(RtmGeometry{8, 2, 3});
  for (u64 v = 0; v < 3; ++v) {
    rtm.insert(make_trace(100, Loc::reg(r(1)).raw(), v,
                          Loc::reg(r(2)).raw(), v));
  }
  // Promote the oldest variant so MRU order differs from insertion.
  ArchShadow shadow0;
  shadow0.set(Loc::reg(r(1)).raw(), 0);
  EXPECT_TRUE(rtm.lookup(100, shadow0).has_value());
  const Rtm::Stats before = rtm.stats();

  SmallVector<const StoredTrace*, 16> candidates;
  rtm.peek(100, candidates);
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0]->inputs[0].value, 0u);  // promoted by the hit
  EXPECT_EQ(candidates[1]->inputs[0].value, 2u);
  EXPECT_EQ(candidates[2]->inputs[0].value, 1u);
  EXPECT_EQ(rtm.stats().lookups, before.lookups);  // peek is invisible
  EXPECT_EQ(rtm.stats().hits, before.hits);

  candidates.clear();
  rtm.peek(999, candidates);
  EXPECT_EQ(candidates.size(), 0u);
}

// ---- TraceAccumulator -------------------------------------------------

isa::DynInst acc_inst(isa::Pc pc, isa::Reg dst, isa::Reg src, u64 sval,
                      u64 dval) {
  isa::DynInst inst;
  inst.pc = pc;
  inst.next_pc = pc + 1;
  inst.op = isa::Op::kAdd;
  inst.add_input(Loc::reg(src), sval);
  inst.set_output(Loc::reg(dst), dval);
  return inst;
}

TEST(AccumulatorTest, LiveInAndOutputs) {
  TraceAccumulator acc(TraceLimits{});
  EXPECT_TRUE(acc.try_add(acc_inst(5, r(3), r(2), 7, 8)));
  EXPECT_TRUE(acc.try_add(acc_inst(6, r(4), r(3), 8, 9)));  // r3 internal
  const StoredTrace trace = acc.finalize();
  EXPECT_EQ(trace.start_pc, 5u);
  EXPECT_EQ(trace.next_pc, 7u);
  EXPECT_EQ(trace.length, 2u);
  EXPECT_EQ(trace.reg_inputs, 1u);
  EXPECT_EQ(trace.inputs[0].value, 7u);
  EXPECT_EQ(trace.reg_outputs, 2u);
}

TEST(AccumulatorTest, LaterWriteWins) {
  TraceAccumulator acc(TraceLimits{});
  acc.try_add(acc_inst(0, r(3), r(2), 1, 10));
  acc.try_add(acc_inst(1, r(3), r(2), 1, 20));
  const StoredTrace trace = acc.finalize();
  EXPECT_EQ(trace.reg_outputs, 1u);
  EXPECT_EQ(trace.outputs[0].value, 20u);
}

TEST(AccumulatorTest, RegisterInputLimitEnforced) {
  TraceLimits limits;
  limits.max_reg_inputs = 2;
  TraceAccumulator acc(limits);
  EXPECT_TRUE(acc.try_add(acc_inst(0, r(10), r(1), 1, 1)));
  EXPECT_TRUE(acc.try_add(acc_inst(1, r(11), r(2), 2, 2)));
  EXPECT_FALSE(acc.try_add(acc_inst(2, r(12), r(3), 3, 3)));  // 3rd live-in
  EXPECT_EQ(acc.length(), 2u);  // unchanged by the rejected add
}

TEST(AccumulatorTest, MemoryLimitsEnforced) {
  TraceLimits limits;
  limits.max_mem_outputs = 1;
  TraceAccumulator acc(limits);
  auto store = [&](isa::Pc pc, Addr addr) {
    isa::DynInst inst;
    inst.pc = pc;
    inst.next_pc = pc + 1;
    inst.op = isa::Op::kStq;
    inst.add_input(Loc::reg(r(1)), addr);
    inst.add_input(Loc::reg(r(2)), 9);
    inst.set_output(Loc::mem(addr), 9);
    return inst;
  };
  EXPECT_TRUE(acc.try_add(store(0, 0x100)));
  EXPECT_FALSE(acc.try_add(store(1, 0x108)));
  EXPECT_TRUE(acc.try_add(store(2, 0x100)));  // same location: no new output
}

TEST(AccumulatorTest, MergeCombinesTraces) {
  TraceAccumulator a(TraceLimits{}), b(TraceLimits{});
  a.try_add(acc_inst(0, r(3), r(2), 7, 8));
  b.try_add(acc_inst(1, r(4), r(3), 8, 9));  // consumes a's output
  b.try_add(acc_inst(2, r(5), r(6), 1, 2));  // fresh live-in r6
  const StoredTrace ta = a.finalize();
  const StoredTrace tb = b.finalize();
  const auto merged = TraceAccumulator::merge(ta, tb, TraceLimits{});
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->length, 3u);
  EXPECT_EQ(merged->start_pc, 0u);
  EXPECT_EQ(merged->next_pc, 3u);
  EXPECT_EQ(merged->reg_inputs, 2u);   // r2 and r6 (r3 internal)
  EXPECT_EQ(merged->reg_outputs, 3u);  // r3, r4, r5
}

TEST(AccumulatorTest, MergeRespectsLimits) {
  TraceLimits tight;
  tight.max_reg_outputs = 1;
  TraceAccumulator a(TraceLimits{}), b(TraceLimits{});
  a.try_add(acc_inst(0, r(3), r(2), 7, 8));
  b.try_add(acc_inst(1, r(4), r(2), 7, 9));
  const auto merged =
      TraceAccumulator::merge(a.finalize(), b.finalize(), tight);
  EXPECT_FALSE(merged.has_value());
}

}  // namespace
}  // namespace tlr::reuse
