// Interpreter semantics: every operation, control flow, DynInst
// recording invariants.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <vector>

#include "vm/builder.hpp"
#include "vm/interpreter.hpp"

namespace tlr::vm {
namespace {

using isa::DynInst;
using isa::Loc;
using isa::Op;
using isa::f;
using isa::r;

/// Runs a program to completion and returns (stream, final machine).
struct RunOutput {
  std::vector<DynInst> stream;
  RunResult result;
  const MachineState* state;
};

class ProgramRunner {
 public:
  explicit ProgramRunner(Program program) : program_(std::move(program)) {}

  RunOutput run(u64 max = 100000) {
    interp_ = std::make_unique<Interpreter>(program_);
    RunOutput out;
    RunLimits limits;
    limits.max_emitted = max;
    out.result = interp_->run(limits, [&](const DynInst& inst) {
      out.stream.push_back(inst);
      return true;
    });
    out.state = &interp_->state();
    return out;
  }

 private:
  Program program_;
  std::unique_ptr<Interpreter> interp_;
};

// ---- integer ALU semantics (parameterised) ---------------------------

struct AluCase {
  const char* name;
  Op op;
  u64 a, b;
  u64 expected;
};

class AluSemantics : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSemantics, ComputesExpected) {
  const AluCase& c = GetParam();
  ProgramBuilder b("alu");
  b.ldi(r(1), static_cast<i64>(c.a));
  b.ldi(r(2), static_cast<i64>(c.b));
  b.op3(c.op, r(3), r(1), r(2));
  b.halt();
  ProgramRunner runner(b.build());
  const RunOutput out = runner.run();
  EXPECT_EQ(out.state->read_reg(r(3)), c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, AluSemantics,
    ::testing::Values(
        AluCase{"add", Op::kAdd, 3, 4, 7},
        AluCase{"add_wrap", Op::kAdd, ~u64{0}, 1, 0},
        AluCase{"sub", Op::kSub, 10, 3, 7},
        AluCase{"sub_underflow", Op::kSub, 3, 10, static_cast<u64>(-7)},
        AluCase{"mul", Op::kMul, 7, 6, 42},
        AluCase{"div", Op::kDiv, 42, 6, 7},
        AluCase{"div_negative", Op::kDiv, static_cast<u64>(-42), 6,
                static_cast<u64>(-7)},
        AluCase{"div_by_zero", Op::kDiv, 5, 0, 0},
        AluCase{"rem", Op::kRem, 43, 6, 1},
        AluCase{"rem_by_zero", Op::kRem, 5, 0, 0},
        AluCase{"and", Op::kAnd, 0xF0F0, 0xFF00, 0xF000},
        AluCase{"or", Op::kOr, 0xF0F0, 0x0F0F, 0xFFFF},
        AluCase{"xor", Op::kXor, 0xFF, 0x0F, 0xF0},
        AluCase{"andnot", Op::kAndNot, 0xFF, 0x0F, 0xF0},
        AluCase{"sll", Op::kSll, 1, 4, 16},
        AluCase{"sll_mask", Op::kSll, 1, 64, 1},  // shift amounts mod 64
        AluCase{"srl", Op::kSrl, 16, 4, 1},
        AluCase{"sra_sign", Op::kSra, static_cast<u64>(-16), 2,
                static_cast<u64>(-4)},
        AluCase{"cmpeq_true", Op::kCmpEq, 5, 5, 1},
        AluCase{"cmpeq_false", Op::kCmpEq, 5, 6, 0},
        AluCase{"cmplt_signed", Op::kCmpLt, static_cast<u64>(-1), 0, 1},
        AluCase{"cmple", Op::kCmpLe, 5, 5, 1},
        AluCase{"cmpult_unsigned", Op::kCmpULt, static_cast<u64>(-1), 0, 0}),
    [](const auto& info) { return info.param.name; });

// ---- FP semantics -----------------------------------------------------

TEST(FpSemantics, Arithmetic) {
  ProgramBuilder b("fp");
  b.fldi(f(1), 6.0);
  b.fldi(f(2), 1.5);
  b.fadd(f(3), f(1), f(2));
  b.fsub(f(4), f(1), f(2));
  b.fmul(f(5), f(1), f(2));
  b.fdiv(f(6), f(1), f(2));
  b.fsqrt(f(7), f(1));
  b.fneg(f(8), f(2));
  b.fabs_(f(9), f(8));
  b.halt();
  ProgramRunner runner(b.build());
  const RunOutput out = runner.run();
  EXPECT_DOUBLE_EQ(out.state->read_fp(f(3)), 7.5);
  EXPECT_DOUBLE_EQ(out.state->read_fp(f(4)), 4.5);
  EXPECT_DOUBLE_EQ(out.state->read_fp(f(5)), 9.0);
  EXPECT_DOUBLE_EQ(out.state->read_fp(f(6)), 4.0);
  EXPECT_DOUBLE_EQ(out.state->read_fp(f(7)), std::sqrt(6.0));
  EXPECT_DOUBLE_EQ(out.state->read_fp(f(8)), -1.5);
  EXPECT_DOUBLE_EQ(out.state->read_fp(f(9)), 1.5);
}

TEST(FpSemantics, CompareAndConvert) {
  ProgramBuilder b("fpc");
  b.fldi(f(1), 2.5);
  b.fldi(f(2), 3.5);
  b.fcmplt(r(1), f(1), f(2));
  b.fcmpeq(r(2), f(1), f(1));
  b.cvttq(r(3), f(2));   // trunc(3.5) = 3
  b.ldi(r(4), -7);
  b.cvtqt(f(3), r(4));
  b.halt();
  ProgramRunner runner(b.build());
  const RunOutput out = runner.run();
  EXPECT_EQ(out.state->read_reg(r(1)), 1u);
  EXPECT_EQ(out.state->read_reg(r(2)), 1u);
  EXPECT_EQ(out.state->read_reg(r(3)), 3u);
  EXPECT_DOUBLE_EQ(out.state->read_fp(f(3)), -7.0);
}

// ---- memory ------------------------------------------------------------

TEST(MemorySemantics, StoreLoadRoundTrip) {
  ProgramBuilder b("mem");
  const Addr buf = b.alloc(4);
  b.ldi(r(1), static_cast<i64>(buf));
  b.ldi(r(2), 0xDEAD);
  b.stq(r(2), r(1), 8);
  b.ldq(r(3), r(1), 8);
  b.halt();
  ProgramRunner runner(b.build());
  const RunOutput out = runner.run();
  EXPECT_EQ(out.state->read_reg(r(3)), 0xDEADu);
  EXPECT_EQ(out.state->load(buf + 8), 0xDEADu);
}

TEST(MemorySemantics, InitialDataVisible) {
  ProgramBuilder b("init");
  const Addr buf = b.alloc(2);
  b.init_word(buf, 111);
  b.init_double(buf + 8, 2.5);
  b.ldi(r(1), static_cast<i64>(buf));
  b.ldq(r(2), r(1), 0);
  b.ldt(f(1), r(1), 8);
  b.halt();
  ProgramRunner runner(b.build());
  const RunOutput out = runner.run();
  EXPECT_EQ(out.state->read_reg(r(2)), 111u);
  EXPECT_DOUBLE_EQ(out.state->read_fp(f(1)), 2.5);
}

// ---- control flow -------------------------------------------------------

TEST(ControlFlow, LoopRunsExactCount) {
  ProgramBuilder b("loop");
  b.ldi(r(1), 10);
  b.ldi(r(2), 0);
  vm::Label top = b.here();
  b.addi(r(2), r(2), 3);
  b.subi(r(1), r(1), 1);
  b.bnez(r(1), top);
  b.halt();
  ProgramRunner runner(b.build());
  const RunOutput out = runner.run();
  EXPECT_EQ(out.state->read_reg(r(2)), 30u);
  EXPECT_TRUE(out.result.halted);
}

TEST(ControlFlow, CallAndReturn) {
  ProgramBuilder b("call");
  vm::Label func = b.label();
  vm::Label main = b.label();
  b.br(main);
  b.bind(func);
  b.addi(r(1), r(1), 5);
  b.ret();
  b.bind(main);
  b.ldi(r(1), 1);
  b.call(func);
  b.call(func);
  b.halt();
  ProgramRunner runner(b.build());
  const RunOutput out = runner.run();
  EXPECT_EQ(out.state->read_reg(r(1)), 11u);
}

TEST(ControlFlow, IndirectJumpThroughTable) {
  ProgramBuilder b("jmp");
  const Addr table = b.alloc(1);
  vm::Label target = b.label();
  b.ldi(r(1), static_cast<i64>(table));
  b.ldq(r(2), r(1), 0);
  b.jmp(r(2));
  b.ldi(r(3), 1);  // skipped
  b.bind(target);
  b.ldi(r(4), 2);
  b.halt();
  Program p = b.build();
  // Patch the table with the label's resolved pc (the instruction after
  // the skipped one).
  ProgramBuilder b2("jmp2");  // rebuild with known target index 4
  (void)b2;
  // The label bound at index 4 (ldi r4).
  // Write the jump table via a fresh program using init_word:
  ProgramBuilder b3("jmp3");
  const Addr table3 = b3.alloc(1);
  vm::Label t3 = b3.label();
  b3.ldi(r(1), static_cast<i64>(table3));
  b3.ldq(r(2), r(1), 0);
  b3.jmp(r(2));
  b3.ldi(r(3), 1);
  const isa::Pc target_pc = b3.pc();
  b3.bind(t3);
  b3.ldi(r(4), 2);
  b3.halt();
  b3.init_word(table3, target_pc);
  ProgramRunner runner(b3.build());
  const RunOutput out = runner.run();
  EXPECT_EQ(out.state->read_reg(r(4)), 2u);
  EXPECT_EQ(out.state->read_reg(r(3)), 0u);  // skipped
}

// ---- DynInst recording invariants ----------------------------------------

TEST(Recording, ZeroRegisterExcludedFromInputsAndOutputs) {
  ProgramBuilder b("zero");
  b.add(r(1), isa::kIntZero, isa::kIntZero);
  b.add(isa::kIntZero, r(1), r(1));
  b.halt();
  ProgramRunner runner(b.build());
  const RunOutput out = runner.run();
  ASSERT_EQ(out.stream.size(), 2u);
  EXPECT_EQ(out.stream[0].num_inputs, 0);  // reads of r31 not recorded
  EXPECT_TRUE(out.stream[0].has_output);
  EXPECT_EQ(out.stream[1].num_inputs, 2);
  EXPECT_FALSE(out.stream[1].has_output);  // write to r31 discarded
}

TEST(Recording, LoadRecordsAddressRegAndMemoryWord) {
  ProgramBuilder b("load");
  const Addr buf = b.alloc(1);
  b.init_word(buf, 77);
  b.ldi(r(1), static_cast<i64>(buf));
  b.ldq(r(2), r(1), 0);
  b.halt();
  ProgramRunner runner(b.build());
  const RunOutput out = runner.run();
  const DynInst& load = out.stream[1];
  ASSERT_EQ(load.num_inputs, 2);
  EXPECT_EQ(load.inputs[0].loc, Loc::reg(r(1)));
  EXPECT_EQ(load.inputs[1].loc, Loc::mem(buf));
  EXPECT_EQ(load.inputs[1].value, 77u);
  EXPECT_EQ(load.output, Loc::reg(r(2)));
}

TEST(Recording, StoreRecordsMemOutput) {
  ProgramBuilder b("store");
  const Addr buf = b.alloc(1);
  b.ldi(r(1), static_cast<i64>(buf));
  b.ldi(r(2), 5);
  b.stq(r(2), r(1), 0);
  b.halt();
  ProgramRunner runner(b.build());
  const RunOutput out = runner.run();
  const DynInst& store = out.stream[2];
  EXPECT_TRUE(store.has_output);
  EXPECT_EQ(store.output, Loc::mem(buf));
  EXPECT_EQ(store.output_value, 5u);
}

TEST(Recording, NextPcChainsThroughStream) {
  ProgramBuilder b("chain");
  b.ldi(r(1), 3);
  vm::Label top = b.here();
  b.subi(r(1), r(1), 1);
  b.bnez(r(1), top);
  b.halt();
  ProgramRunner runner(b.build());
  const RunOutput out = runner.run();
  for (usize i = 0; i + 1 < out.stream.size(); ++i) {
    EXPECT_EQ(out.stream[i].next_pc, out.stream[i + 1].pc);
  }
}

TEST(RunLimits, SkipSuppressesEmission) {
  ProgramBuilder b("skip");
  b.ldi(r(1), 100);
  vm::Label top = b.here();
  b.subi(r(1), r(1), 1);
  b.bnez(r(1), top);
  b.halt();
  Interpreter interp(b.build());
  RunLimits limits;
  limits.skip = 50;
  u64 emitted = 0;
  const RunResult result = interp.run(limits, [&](const DynInst&) {
    ++emitted;
    return true;
  });
  EXPECT_EQ(result.executed, result.emitted + 50);
  EXPECT_EQ(emitted, result.emitted);
}

TEST(RunLimits, SinkCanStopEarly) {
  ProgramBuilder b("stop");
  b.ldi(r(1), 1000000);
  vm::Label top = b.here();
  b.subi(r(1), r(1), 1);
  b.bnez(r(1), top);
  b.halt();
  Interpreter interp(b.build());
  u64 seen = 0;
  interp.run(RunLimits{}, [&](const DynInst&) { return ++seen < 10; });
  EXPECT_EQ(seen, 10u);
}

TEST(Determinism, SameProgramSameStream) {
  ProgramBuilder make("det");
  const Addr buf = make.alloc(8);
  make.ldi(r(1), static_cast<i64>(buf));
  make.ldi(r(2), 20);
  vm::Label top = make.here();
  make.andi(r(3), r(2), 7);
  make.slli(r(3), r(3), 3);
  make.add(r(3), r(3), r(1));
  make.stq(r(2), r(3), 0);
  make.ldq(r(4), r(3), 0);
  make.subi(r(2), r(2), 1);
  make.bnez(r(2), top);
  make.halt();
  Program p = make.build();
  const auto s1 = collect_stream(p, RunLimits{});
  const auto s2 = collect_stream(p, RunLimits{});
  ASSERT_EQ(s1.size(), s2.size());
  for (usize i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].pc, s2[i].pc);
    EXPECT_EQ(s1[i].output_value, s2[i].output_value);
  }
}

}  // namespace
}  // namespace tlr::vm
