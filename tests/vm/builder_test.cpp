// ProgramBuilder: labels, backpatching, data segment allocation.
#include <gtest/gtest.h>

#include "vm/builder.hpp"
#include "vm/state.hpp"

namespace tlr::vm {
namespace {

using isa::Op;
using isa::r;

TEST(BuilderTest, ForwardLabelBackpatched) {
  ProgramBuilder b("fwd");
  Label target = b.label();
  b.br(target);          // refers forward
  b.ldi(r(1), 1);        // skipped at runtime
  b.bind(target);
  b.halt();
  const Program p = b.build();
  EXPECT_EQ(p.at(0).op, Op::kBr);
  EXPECT_EQ(p.at(0).imm, 2);  // resolved to the halt's index
}

TEST(BuilderTest, BackwardLabelImmediate) {
  ProgramBuilder b("bwd");
  Label top = b.here();
  b.addi(r(1), r(1), 1);
  b.bnez(r(1), top);
  b.halt();
  const Program p = b.build();
  EXPECT_EQ(p.at(1).imm, 0);
}

TEST(BuilderTest, MultipleReferencesToOneLabel) {
  ProgramBuilder b("multi");
  Label common = b.label();
  b.beqz(r(1), common);
  b.bnez(r(2), common);
  b.br(common);
  b.bind(common);
  b.halt();
  const Program p = b.build();
  for (isa::Pc pc = 0; pc < 3; ++pc) EXPECT_EQ(p.at(pc).imm, 3);
}

TEST(BuilderTest, AllocationsAreDisjointAndAligned) {
  ProgramBuilder b("alloc");
  const Addr a = b.alloc(4);
  const Addr c = b.alloc(1);
  const Addr d = b.alloc(100);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_GE(c, a + 4 * 8);
  EXPECT_GE(d, c + 8);
  b.halt();
  (void)b.build();
}

TEST(BuilderTest, InitialDataCarriedIntoProgram) {
  ProgramBuilder b("data");
  const Addr buf = b.alloc(2);
  b.init_word(buf, 42);
  b.init_double(buf + 8, 1.5);
  b.halt();
  const Program p = b.build();
  ASSERT_EQ(p.initial_data().size(), 2u);
  EXPECT_EQ(p.initial_data()[0].addr, buf);
  EXPECT_EQ(p.initial_data()[0].value, 42u);
}

TEST(BuilderTest, ImmediateVariantsEncodeImm) {
  ProgramBuilder b("imm");
  b.addi(r(1), r(2), -5);
  b.andi(r(1), r(2), 0xFF);
  b.halt();
  const Program p = b.build();
  EXPECT_TRUE(p.at(0).use_imm);
  EXPECT_EQ(p.at(0).imm, -5);
  EXPECT_TRUE(p.at(1).use_imm);
}

TEST(BuilderTest, PcTracksEmission) {
  ProgramBuilder b("pc");
  EXPECT_EQ(b.pc(), 0u);
  b.ldi(r(1), 1);
  EXPECT_EQ(b.pc(), 1u);
  b.mov(r(2), r(1));
  EXPECT_EQ(b.pc(), 2u);
  b.halt();
  (void)b.build();
}

TEST(MachineStateTest, SparsePagesAndZeroDefault) {
  MachineState state;
  EXPECT_EQ(state.load(0x5000), 0u);  // untouched memory reads zero
  state.store(0x5000, 7);
  state.store(0x900000, 9);  // far-away page
  EXPECT_EQ(state.load(0x5000), 7u);
  EXPECT_EQ(state.load(0x900000), 9u);
  EXPECT_EQ(state.resident_pages(), 2u);
}

TEST(MachineStateTest, ZeroRegistersPinned) {
  MachineState state;
  state.write_reg(isa::kIntZero, 99);
  state.write_reg(isa::kFpZero, 99);
  EXPECT_EQ(state.read_reg(isa::kIntZero), 0u);
  EXPECT_EQ(state.read_reg(isa::kFpZero), 0u);
}

TEST(MachineStateTest, FpBitPatternRoundTrip) {
  MachineState state;
  state.write_fp(isa::f(3), -2.75);
  EXPECT_DOUBLE_EQ(state.read_fp(isa::f(3)), -2.75);
  state.store_fp(0x100, 3.25);
  EXPECT_DOUBLE_EQ(state.load_fp(0x100), 3.25);
}

}  // namespace
}  // namespace tlr::vm
