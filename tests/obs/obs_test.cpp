// Flight-recorder tests (DESIGN.md §11): the counter registry must
// aggregate identically across thread counts and chunk sizes, the
// span trace must serialize as well-formed Chrome trace_event JSON
// with balanced B/E pairs, and the disabled telemetry path must not
// allocate — the whole subsystem is observationally invisible.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/figures.hpp"
#include "core/profile.hpp"
#include "obs/counters.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

// ---- allocation counter ----------------------------------------------
// Global operator new/delete overrides counting every allocation in
// the test binary. The zero-allocation test below reads the counter
// around disabled-telemetry calls; everything else just pays one
// relaxed increment per allocation.
//
// GCC pairs the replaced operator new with operator delete and flags
// the inlined std::free as mismatched; every new here is malloc and
// every delete is free, so the pairing is consistent by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<unsigned long long> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tlr::obs {
namespace {

core::SuiteConfig small_config() {
  core::SuiteConfig config;
  config.skip = 10000;
  config.length = 50000;
  return config;
}

/// One engine pass that touches every counter family: the suite
/// analysis (engine/sim/table counters) plus a one-workload fig9
/// matrix (RTM counters) and fig10 column (spec counters).
void run_instrumented_study(const core::EngineOptions& engine_options) {
  core::StudyEngine engine(engine_options);
  const core::ScaleProfile profile =
      core::ScaleProfile::custom(small_config());
  engine.analyze("compress", profile.config_for("compress"),
                 core::MetricOptions{});
  core::Fig9Options fig9;
  fig9.workloads = {"compress"};
  core::fig9_finite_rtm(engine, profile, fig9);
  core::Fig10Options fig10;
  fig10.workloads = {"compress"};
  core::fig10_speculative_reuse(engine, profile, fig10);
}

TEST(ObsCounters, CatalogMatchesEnum) {
  const auto catalog = counter_catalog();
  ASSERT_EQ(catalog.size(), kCounterCount);
  // Names are unique and dotted ("family.counter"); exactly one
  // counter (vm.chunks) is a run-shape counter.
  usize shape = 0;
  for (usize i = 0; i < catalog.size(); ++i) {
    EXPECT_NE(catalog[i].name.find('.'), std::string_view::npos)
        << catalog[i].name;
    for (usize j = i + 1; j < catalog.size(); ++j) {
      EXPECT_NE(catalog[i].name, catalog[j].name);
    }
    if (!catalog[i].invariant) ++shape;
  }
  EXPECT_EQ(shape, 1u);
  EXPECT_FALSE(catalog[static_cast<usize>(Counter::kVmChunks)].invariant);
}

TEST(ObsCounters, InvariantAcrossThreadsAndChunks) {
  reset_metrics();
  core::EngineOptions parallel;
  parallel.threads = 4;
  run_instrumented_study(parallel);
  const MetricsSnapshot with_threads = metrics_snapshot();

  reset_metrics();
  core::EngineOptions serial;
  serial.threads = 1;
  serial.chunk_size = 1009;  // deliberately odd: no chunk ever aligns
  run_instrumented_study(serial);
  const MetricsSnapshot serial_odd = metrics_snapshot();

  // The study actually counted something in every family.
  EXPECT_GT(serial_odd.value(Counter::kEngineInstructions), 0u);
  EXPECT_GT(serial_odd.value(Counter::kRtmLookups), 0u);
  EXPECT_GT(serial_odd.value(Counter::kSimInstructions), 0u);
  EXPECT_GT(serial_odd.value(Counter::kSpecCorrect), 0u);
  EXPECT_GT(serial_odd.value(Counter::kVmChunks), 0u);

  // Deterministic counters are bit-identical whatever the thread
  // count or chunk size; the chunk count itself must differ (that is
  // why it is a shape counter, excluded from the golden).
  EXPECT_TRUE(with_threads.invariant_equal(serial_odd));
  EXPECT_NE(with_threads.value(Counter::kVmChunks),
            serial_odd.value(Counter::kVmChunks));

  reset_metrics();
}

TEST(ObsCounters, MetricsJsonShape) {
  reset_metrics();
  MetricsBlock block;
  block.add(Counter::kEngineStreams, 3);
  block.add(Counter::kVmChunks, 7);
  flush(block);

  MetricsMeta meta;
  meta.threads = 2;
  meta.chunk_size = 4096;
  const util::Json doc = metrics_json(metrics_snapshot(), meta);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema").as_string(), "tlr-metrics/1");
  EXPECT_EQ(doc.at("meta").at("threads").as_u64(), 2u);
  const util::Json& counters = doc.at("counters");
  EXPECT_EQ(counters.at("engine.streams").as_u64(), 3u);
  // Shape counters live outside the golden-pinned object.
  EXPECT_FALSE(counters.contains("vm.chunks"));
  EXPECT_EQ(doc.at("shape").at("vm.chunks").as_u64(), 7u);
  // Key order is the catalog order — the golden diff depends on it.
  const auto catalog = counter_catalog();
  usize at = 0;
  for (const CounterDef& def : catalog) {
    if (!def.invariant) continue;
    ASSERT_LT(at, counters.items().size());
    EXPECT_EQ(counters.items()[at].first, def.name);
    ++at;
  }
  reset_metrics();
}

TEST(ObsTrace, WellFormedBalancedTrace) {
  reset_trace();
  set_trace_enabled(true);
  set_thread_name("tlr-test-main");
  {
    core::EngineOptions engine_options;
    engine_options.threads = 2;
    core::StudyEngine engine(engine_options);
    // analyze_profile, not analyze: the suite fan-out spawns the
    // pool, so the trace gets task/queue_wait spans and the worker
    // thread_name metadata alongside the engine spans.
    const std::vector<std::string> names = {"compress"};
    engine.analyze_profile(core::ScaleProfile::custom(small_config()),
                           core::MetricOptions{}, names);
  }  // pool joined: every span is closed before the dump
  set_trace_enabled(false);
  const util::Json doc = trace_json();
  reset_trace();

  // Round-trip through the serialized form: the emitted bytes, not
  // just the in-memory tree, must parse.
  std::string parse_error;
  const auto parsed = util::Json::parse(doc.dump(/*indent=*/-1),
                                        &parse_error);
  ASSERT_TRUE(parsed.has_value()) << parse_error;
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->at("displayTimeUnit").as_string(), "ms");
  const util::Json& events = parsed->at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_GT(events.size(), 0u);

  // Balanced B/E per thread, in file order; every event carries the
  // keys viewers require. M metadata events name the worker threads.
  std::map<u64, std::vector<std::string>> open;
  bool saw_worker_name = false;
  bool saw_engine_span = false;
  for (usize i = 0; i < events.size(); ++i) {
    const util::Json& event = events.at(i);
    const std::string& phase = event.at("ph").as_string();
    if (phase == "M") {
      const std::string& name = event.at("args").at("name").as_string();
      if (name.rfind("tlr-worker-", 0) == 0) saw_worker_name = true;
      continue;
    }
    ASSERT_TRUE(phase == "B" || phase == "E") << phase;
    ASSERT_TRUE(event.at("ts").is_number());
    const u64 tid = event.at("tid").as_u64();
    const std::string& name = event.at("name").as_string();
    if (phase == "B") {
      if (name == "analyze" || name == "stream") saw_engine_span = true;
      open[tid].push_back(name);
    } else {
      ASSERT_FALSE(open[tid].empty()) << "E without B: " << name;
      EXPECT_EQ(open[tid].back(), name);
      open[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
  EXPECT_TRUE(saw_worker_name);
  EXPECT_TRUE(saw_engine_span);
}

TEST(ObsDisabled, TelemetryOffDoesNotAllocate) {
  ASSERT_FALSE(trace_enabled());
  MetricsBlock block;
  ProgressReporter reporter(ProgressMode::kNone);
  Heartbeat heartbeat;  // disabled

  const unsigned long long before =
      g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    Span span("steady.state.span", "category");
    block.add(Counter::kEngineInstructions, 17);
    reporter.update(static_cast<usize>(i), 1000, "label");
    heartbeat.update(static_cast<usize>(i), 1000, "label");
  }
  flush(block);
  const unsigned long long after =
      g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace tlr::obs
