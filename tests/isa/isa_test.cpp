// ISA model tests: registers, locations, op classification, latencies.
#include <gtest/gtest.h>

#include "isa/dyn_inst.hpp"
#include "isa/latency.hpp"
#include "isa/op.hpp"
#include "isa/reg.hpp"

namespace tlr::isa {
namespace {

TEST(RegTest, IntAndFpRanges) {
  EXPECT_TRUE(is_int_reg(r(0)));
  EXPECT_TRUE(is_int_reg(r(31)));
  EXPECT_TRUE(is_fp_reg(f(0)));
  EXPECT_TRUE(is_fp_reg(f(31)));
  EXPECT_FALSE(is_fp_reg(r(5)));
  EXPECT_FALSE(is_int_reg(f(5)));
  EXPECT_EQ(f(0), kNumIntRegs);
}

TEST(RegTest, ZeroRegisters) {
  EXPECT_TRUE(is_zero_reg(kIntZero));
  EXPECT_TRUE(is_zero_reg(kFpZero));
  EXPECT_FALSE(is_zero_reg(r(0)));
  EXPECT_FALSE(is_zero_reg(f(0)));
}

TEST(LocTest, RegisterRoundTrip) {
  for (unsigned i = 0; i < 32; ++i) {
    const Loc loc = Loc::reg(r(i));
    EXPECT_TRUE(loc.is_reg());
    EXPECT_FALSE(loc.is_mem());
    EXPECT_EQ(loc.reg_index(), r(i));
  }
}

TEST(LocTest, MemoryRoundTrip) {
  for (Addr addr : {Addr{0}, Addr{8}, Addr{0x10000}, Addr{1} << 40}) {
    const Loc loc = Loc::mem(addr);
    EXPECT_TRUE(loc.is_mem());
    EXPECT_EQ(loc.mem_addr(), addr);
  }
}

TEST(LocTest, RegAndMemNeverCollide) {
  const Loc reg_loc = Loc::reg(r(8));
  const Loc mem_loc = Loc::mem(8);
  EXPECT_NE(reg_loc.raw(), mem_loc.raw());
  EXPECT_FALSE(reg_loc == mem_loc);
}

TEST(LocTest, FromRawRestores) {
  const Loc original = Loc::mem(0x12340);
  EXPECT_EQ(Loc::from_raw(original.raw()), original);
  const Loc reg_loc = Loc::reg(f(3));
  EXPECT_EQ(Loc::from_raw(reg_loc.raw()), reg_loc);
}

TEST(OpTest, Classification) {
  EXPECT_EQ(op_class(Op::kAdd), OpClass::kIntAlu);
  EXPECT_EQ(op_class(Op::kMul), OpClass::kIntMul);
  EXPECT_EQ(op_class(Op::kLdq), OpClass::kLoad);
  EXPECT_EQ(op_class(Op::kStt), OpClass::kStore);
  EXPECT_EQ(op_class(Op::kBeqz), OpClass::kBranch);
  EXPECT_EQ(op_class(Op::kFMul), OpClass::kFpMul);
  EXPECT_EQ(op_class(Op::kFDiv), OpClass::kFpDiv);
  EXPECT_EQ(op_class(Op::kFSqrt), OpClass::kFpSqrt);
}

TEST(OpTest, Predicates) {
  EXPECT_TRUE(is_load(Op::kLdq));
  EXPECT_TRUE(is_load(Op::kLdt));
  EXPECT_FALSE(is_load(Op::kStq));
  EXPECT_TRUE(is_store(Op::kStt));
  EXPECT_TRUE(is_control(Op::kBr));
  EXPECT_TRUE(is_control(Op::kRet));
  EXPECT_FALSE(is_control(Op::kAdd));
  EXPECT_TRUE(is_cond_branch(Op::kBnez));
  EXPECT_FALSE(is_cond_branch(Op::kBr));
  EXPECT_TRUE(writes_fp(Op::kFAdd));
  EXPECT_TRUE(writes_fp(Op::kLdt));
  EXPECT_FALSE(writes_fp(Op::kLdq));
}

TEST(OpTest, EveryOpHasNameAndClass) {
  for (usize i = 0; i < kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    EXPECT_NE(op_name(op), "?");
    // op_class asserts internally on unknown ops; calling it is the test.
    (void)op_class(op);
  }
}

TEST(LatencyTest, Alpha21164Values) {
  const LatencyTable& lat = kAlpha21164Latencies;
  EXPECT_EQ(lat.get(OpClass::kIntAlu), 1u);
  EXPECT_EQ(lat.get(OpClass::kIntMul), 12u);
  EXPECT_EQ(lat.get(OpClass::kLoad), 2u);
  EXPECT_EQ(lat.get(OpClass::kFpAdd), 4u);
  EXPECT_EQ(lat.get(OpClass::kFpDiv), 31u);
  EXPECT_EQ(lat.get(Op::kMul), 12u);
}

TEST(LatencyTest, Overridable) {
  LatencyTable lat;
  lat.set(OpClass::kLoad, 10);
  EXPECT_EQ(lat.get(Op::kLdq), 10u);
  EXPECT_EQ(kAlpha21164Latencies.get(Op::kLdq), 2u);  // default untouched
}

TEST(DynInstTest, InputRecording) {
  DynInst inst;
  inst.add_input(Loc::reg(r(1)), 42);
  inst.add_input(Loc::mem(0x100), 7);
  ASSERT_EQ(inst.num_inputs, 2);
  EXPECT_EQ(inst.inputs[0].loc, Loc::reg(r(1)));
  EXPECT_EQ(inst.inputs[0].value, 42u);
  EXPECT_EQ(inst.inputs[1].loc, Loc::mem(0x100));
  EXPECT_FALSE(inst.has_output);
  inst.set_output(Loc::reg(r(2)), 9);
  EXPECT_TRUE(inst.has_output);
  EXPECT_EQ(inst.output_value, 9u);
}

}  // namespace
}  // namespace tlr::isa
