// core::report — schema shape, serialization determinism, and the
// tolerance semantics --compare relies on for golden snapshots.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "core/profile.hpp"
#include "core/report.hpp"

namespace tlr::core {
namespace {

using util::Json;

WorkloadMetrics fake_metrics(const std::string& name, bool is_fp,
                             u64 scale) {
  WorkloadMetrics m;
  m.name = name;
  m.is_fp = is_fp;
  m.instructions = 1000 * scale;
  m.reusability = 0.25 * static_cast<double>(scale);
  m.base_inf = 400 * scale;
  m.base_win = 500 * scale;
  m.ilr_inf = {300 * scale, 320 * scale, 340 * scale, 360 * scale};
  m.ilr_win = {380 * scale, 400 * scale, 420 * scale, 440 * scale};
  m.trace_inf = 200 * scale;
  m.trace_win = {210 * scale, 220 * scale, 230 * scale, 240 * scale};
  m.trace_win_prop = {250 * scale, 252 * scale, 254 * scale,
                      256 * scale, 258 * scale, 260 * scale};
  m.trace_stats.traces = 10 * scale;
  m.trace_stats.covered_instructions = 250 * scale;
  m.trace_stats.avg_size = 25.0;
  m.trace_stats.avg_reg_inputs = 3.5;
  m.trace_stats.avg_mem_inputs = 1.5;
  m.trace_stats.avg_reg_outputs = 4.0;
  m.trace_stats.avg_mem_outputs = 0.5;
  return m;
}

std::vector<WorkloadMetrics> fake_suite() {
  return {fake_metrics("tomcatv", true, 1), fake_metrics("compress", false, 2)};
}

Json make_report() {
  ReportMeta meta;
  meta.threads = 4;
  meta.chunk_size = 32768;
  meta.wall_seconds = 1.25;
  return build_report(ScaleProfile::ci(), MetricOptions{}, fake_suite(),
                      meta, ReportFigures::all_series());
}

TEST(ReportTest, TopLevelSchemaShape) {
  const Json report = make_report();
  ASSERT_TRUE(report.is_object());
  EXPECT_EQ(report.at("schema").as_string(), kReportSchema);
  // Key order is part of the schema contract.
  const auto& items = report.items();
  ASSERT_EQ(items.size(), 6u);
  EXPECT_EQ(items[0].first, "schema");
  EXPECT_EQ(items[1].first, "meta");
  EXPECT_EQ(items[2].first, "profile");
  EXPECT_EQ(items[3].first, "options");
  EXPECT_EQ(items[4].first, "workloads");
  EXPECT_EQ(items[5].first, "figures");
}

TEST(ReportTest, MetaCarriesProvenance) {
  const Json report = make_report();
  const Json& meta = report.at("meta");
  EXPECT_EQ(meta.at("tool").as_string(), "reuse_study");
  EXPECT_EQ(meta.at("git_sha").as_string(),
            std::string(report_git_sha()));
  EXPECT_EQ(meta.at("threads").as_u64(), 4u);
  EXPECT_DOUBLE_EQ(meta.at("wall_seconds").as_double(), 1.25);
}

TEST(ReportTest, ProfileBlockIncludesOverrides) {
  const Json report = make_report();
  const Json& profile = report.at("profile");
  EXPECT_EQ(profile.at("name").as_string(), "ci");
  EXPECT_EQ(profile.at("skip").as_u64(), ScaleProfile::ci().base.skip);
  ASSERT_EQ(profile.at("overrides").size(),
            ScaleProfile::ci().overrides.size());
  EXPECT_EQ(profile.at("overrides").at(0).at("workload").as_string(),
            ScaleProfile::ci().overrides[0].workload);
}

TEST(ReportTest, WorkloadRoundTripsThroughParse) {
  const WorkloadMetrics metrics = fake_metrics("hydro2d", true, 3);
  const Json json = workload_to_json(metrics);
  const auto parsed = Json::parse(json.dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, json);
  EXPECT_EQ(parsed->at("name").as_string(), "hydro2d");
  EXPECT_TRUE(parsed->at("is_fp").as_bool());
  EXPECT_EQ(parsed->at("instructions").as_u64(), metrics.instructions);
  EXPECT_EQ(parsed->at("ilr_inf").size(), metrics.ilr_inf.size());
  EXPECT_EQ(parsed->at("trace_stats").at("traces").as_u64(),
            metrics.trace_stats.traces);
}

TEST(ReportTest, FiguresDeriveFromMetrics) {
  const Json report = make_report();
  const Json& figures = report.at("figures");
  for (const char* key : {"fig3", "fig4a", "fig4b", "fig5a", "fig5b",
                          "fig6a", "fig6b", "fig7", "trace_io", "fig8a",
                          "fig8b"}) {
    EXPECT_TRUE(figures.contains(key)) << key;
  }
  EXPECT_FALSE(figures.contains("fig9"));  // not computed -> not present
  // fig3 values keyed by workload name.
  EXPECT_TRUE(figures.at("fig3").at("values").contains("tomcatv"));
  EXPECT_TRUE(figures.at("fig3").at("values").contains("compress"));
}

TEST(ReportTest, Fig9SerializesAsMatrix) {
  Fig9Result fig9;
  const usize heuristics = fig9_heuristics().size();
  const usize geometries = fig9_geometries().size();
  fig9.cells.assign(heuristics, std::vector<Fig9Cell>(geometries));
  fig9.cells[1][2] = {0.5, 6.25};
  const Json json = fig9_to_json(fig9);
  EXPECT_EQ(json.at("heuristics").size(), heuristics);
  EXPECT_EQ(json.at("geometries").size(), geometries);
  EXPECT_DOUBLE_EQ(json.at("reuse_fraction").at(1).at(2).as_double(), 0.5);
  EXPECT_DOUBLE_EQ(json.at("avg_trace_size").at(1).at(2).as_double(), 6.25);
}

TEST(ReportTest, DumpIsByteDeterministic) {
  EXPECT_EQ(make_report().dump(2), make_report().dump(2));
}

TEST(ReportTest, CompareIdenticalReportsIsEmpty) {
  EXPECT_TRUE(compare_reports(make_report(), make_report()).empty());
}

TEST(ReportTest, CompareIgnoresMeta) {
  Json ours = make_report();
  Json baseline = make_report();
  Json meta = Json::object();
  meta.set("git_sha", "something-else");
  meta.set("wall_seconds", 99.0);
  ours.set("meta", std::move(meta));
  EXPECT_TRUE(compare_reports(ours, baseline).empty());
}

TEST(ReportTest, CompareToleranceBoundary) {
  Json ours = make_report();
  Json baseline = make_report();
  const double original =
      baseline.at("workloads").at(0).at("reusability").as_double();

  // Within relative tolerance: passes.
  CompareOptions loose;
  loose.rel_tol = 1e-6;
  loose.abs_tol = 0.0;
  Json tweaked = ours;
  {
    Json workloads = Json::array();
    for (usize i = 0; i < ours.at("workloads").size(); ++i) {
      Json w = ours.at("workloads").at(i);
      if (i == 0) w.set("reusability", original * (1.0 + 1e-7));
      workloads.push_back(std::move(w));
    }
    tweaked.set("workloads", std::move(workloads));
  }
  EXPECT_TRUE(compare_reports(tweaked, baseline, loose).empty());

  // Beyond it: one diff naming the path.
  CompareOptions tight;
  tight.rel_tol = 1e-9;
  tight.abs_tol = 0.0;
  const auto diffs = compare_reports(tweaked, baseline, tight);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_NE(diffs[0].find("workloads[0].reusability"), std::string::npos)
      << diffs[0];
}

TEST(ReportTest, CompareAbsoluteToleranceCoversNearZero) {
  Json a = Json::object();
  a.set("x", 0.0);
  Json b = Json::object();
  b.set("x", 1e-13);
  CompareOptions options;  // abs_tol 1e-12 default
  EXPECT_TRUE(compare_reports(a, b, options).empty());
  b.set("x", 1e-3);
  EXPECT_EQ(compare_reports(a, b, options).size(), 1u);
}

TEST(ReportTest, CompareFlagsMissingAndExtraKeys) {
  Json ours = make_report();
  Json baseline = make_report();
  Json stripped = Json::object();
  for (const auto& [key, value] : ours.items()) {
    if (key != "options") stripped.set(key, value);
  }
  stripped.set("surplus", 1);
  const auto diffs = compare_reports(stripped, baseline);
  bool saw_missing = false, saw_extra = false;
  for (const std::string& diff : diffs) {
    saw_missing |= diff.find("options: missing") != std::string::npos;
    saw_extra |= diff.find("surplus") != std::string::npos;
  }
  EXPECT_TRUE(saw_missing);
  EXPECT_TRUE(saw_extra);
}

TEST(ReportTest, CompareFlagsStructuralMismatches) {
  Json a = Json::object();
  a.set("x", Json::array());
  Json b = Json::object();
  b.set("x", "text");
  EXPECT_EQ(compare_reports(a, b).size(), 1u);

  Json c = Json::object();
  Json arr1 = Json::array();
  arr1.push_back(1);
  c.set("x", std::move(arr1));
  Json d = Json::object();
  Json arr2 = Json::array();
  arr2.push_back(1);
  arr2.push_back(2);
  d.set("x", std::move(arr2));
  const auto diffs = compare_reports(c, d);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_NE(diffs[0].find("array length"), std::string::npos);
}

TEST(ReportTest, CompareIntegersExactlyByDefault) {
  Json a = Json::object();
  a.set("cycles", u64{1000000001});
  Json b = Json::object();
  b.set("cycles", u64{1000000002});
  // rel_tol 1e-9 * 1e9 = 1 >= diff: passes (tolerances apply to all
  // numbers uniformly)...
  EXPECT_TRUE(compare_reports(a, b).empty());
  // ...but zero-tolerance compare is exact.
  CompareOptions exact;
  exact.rel_tol = 0.0;
  exact.abs_tol = 0.0;
  EXPECT_EQ(compare_reports(a, b, exact).size(), 1u);
  EXPECT_TRUE(compare_reports(a, a, exact).empty());
}

TEST(ReportTest, CompareDistinguishesIntegersBeyondDoublePrecision) {
  // 2^53 and 2^53+1 alias as doubles; the exact-integer compare path
  // must still tell them apart at zero tolerance.
  Json a = Json::object();
  a.set("cycles", u64{9007199254740992ull});
  Json b = Json::object();
  b.set("cycles", u64{9007199254740993ull});
  CompareOptions exact;
  exact.rel_tol = 0.0;
  exact.abs_tol = 0.0;
  EXPECT_EQ(compare_reports(a, b, exact).size(), 1u);
  EXPECT_TRUE(compare_reports(a, a, exact).empty());
  EXPECT_TRUE(compare_reports(b, b, exact).empty());
  // Negative integral pairs take the same exact path.
  Json c = Json::object();
  c.set("delta", i64{-9007199254740993ll});
  Json d = Json::object();
  d.set("delta", i64{-9007199254740992ll});
  EXPECT_EQ(compare_reports(c, d, exact).size(), 1u);
  EXPECT_TRUE(compare_reports(c, c, exact).empty());
}

TEST(ReportTest, WorkloadFromJsonRoundTripsExactly) {
  // The merge path's losslessness claim: to_json(from_json(x)) == x
  // bit for bit, through a serialized detour.
  const WorkloadMetrics metrics = fake_metrics("swim", true, 7);
  const Json json = workload_to_json(metrics);
  const auto reparsed = Json::parse(json.dump(2));
  ASSERT_TRUE(reparsed.has_value());
  const auto recovered = workload_from_json(*reparsed);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(workload_to_json(*recovered).dump(2), json.dump(2));
}

TEST(ReportTest, ProfileAndOptionsFromJsonRoundTrip) {
  const ScaleProfile profile = ScaleProfile::ci();  // carries overrides
  const auto recovered_profile = profile_from_json(profile_to_json(profile));
  ASSERT_TRUE(recovered_profile.has_value());
  EXPECT_EQ(profile_to_json(*recovered_profile).dump(2),
            profile_to_json(profile).dump(2));

  const MetricOptions options;
  const auto recovered_options =
      metric_options_from_json(options_to_json(options));
  ASSERT_TRUE(recovered_options.has_value());
  EXPECT_EQ(options_to_json(*recovered_options).dump(2),
            options_to_json(options).dump(2));
}

TEST(ReportTest, FromJsonRejectsMalformed) {
  EXPECT_FALSE(workload_from_json(Json("text")).has_value());
  EXPECT_FALSE(profile_from_json(Json::array()).has_value());
  EXPECT_FALSE(metric_options_from_json(Json::object()).has_value());

  Json truncated = workload_to_json(fake_metrics("applu", true, 1));
  truncated.set("instructions", Json("not-a-number"));
  EXPECT_FALSE(workload_from_json(truncated).has_value());
}

TEST(ReportTest, WriteReportCreatesParentDirectories) {
  const Json report = make_report();
  const std::string path =
      testing::TempDir() + "/report_test_mkdir/a/b/report.json";
  std::string error;
  ASSERT_TRUE(write_report_file(report, path, &error)) << error;
  const auto loaded = read_report_file(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(*loaded, report);
}

TEST(ReportTest, FileRoundTrip) {
  const Json report = make_report();
  const std::string path = testing::TempDir() + "/report_test_roundtrip.json";
  std::string error;
  ASSERT_TRUE(write_report_file(report, path, &error)) << error;
  const auto loaded = read_report_file(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(*loaded, report);
  EXPECT_TRUE(compare_reports(*loaded, report).empty());
}

TEST(ReportTest, ReadReportRejectsGarbage) {
  const std::string path = testing::TempDir() + "/report_test_garbage.json";
  {
    std::ofstream out(path);
    out << "{ not json";
  }
  std::string error;
  EXPECT_FALSE(read_report_file(path, &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(read_report_file("/nonexistent/nope.json", &error)
                   .has_value());
}

TEST(ReportTest, EmptyFigureSelectionOmitsSeries) {
  ReportMeta meta;
  const Json report = build_report(ScaleProfile::laptop(), MetricOptions{},
                                   fake_suite(), meta, ReportFigures{});
  EXPECT_EQ(report.at("figures").size(), 0u);
  EXPECT_TRUE(report.at("figures").is_object());
}

}  // namespace
}  // namespace tlr::core
