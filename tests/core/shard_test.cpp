// core::shard — plan stability, shard-run/merge equivalence with the
// monolithic pipeline, resume validation, and provenance rejection
// (DESIGN.md §9).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/report.hpp"
#include "core/shard.hpp"
#include "lang/gen/generator.hpp"

namespace tlr::core {
namespace {

using util::Json;

// Two ci-scale workloads keep the suite+fig9+fig10 matrix runs in
// seconds; `go` carries a ci-profile override, so override plumbing is
// exercised too.
const std::vector<std::string> kWorkloads = {"compress", "go"};

SectionSelection all_sections() {
  SectionSelection sections;
  sections.series = true;
  sections.fig9 = true;
  sections.fig10 = true;
  return sections;
}

/// Reports/partials are compared byte-for-byte outside the provenance
/// block: meta carries wall times and thread counts, which legitimately
/// differ between runs of identical work.
std::string dump_without_meta(Json document) {
  document.set("meta", Json::object());
  return document.dump(2);
}

/// Round-trips a document through its serialized form, as partials
/// round-trip through --resume checkpoint files.
Json reparse(const Json& document) {
  const auto parsed = Json::parse(document.dump(2));
  EXPECT_TRUE(parsed.has_value());
  return parsed.value_or(Json());
}

TEST(ShardPlanTest, EnumerationIsStableAndSectionMajor) {
  const ShardPlan plan = ShardPlan::enumerate(all_sections(), kWorkloads);
  const std::vector<ShardKey> expected = {
      {"compress", "suite"}, {"go", "suite"}, {"compress", "fig9"},
      {"go", "fig9"},        {"compress", "fig10"}, {"go", "fig10"},
  };
  EXPECT_EQ(plan.keys(), expected);
  // Re-enumeration is bit-identical: the plan is a pure function of
  // (selection, workloads) — CI matrix jobs and the merge can each
  // reconstruct it independently.
  EXPECT_EQ(ShardPlan::enumerate(all_sections(), kWorkloads).keys(),
            expected);

  // Deselected sections drop their keys; the suite pass is always
  // planned (every report carries workloads[]).
  SectionSelection none;
  none.series = false;
  none.fig9 = false;
  none.fig10 = false;
  const ShardPlan bare = ShardPlan::enumerate(none, kWorkloads);
  EXPECT_EQ(bare.size(), kWorkloads.size());
  for (const ShardKey& key : bare.keys()) {
    EXPECT_EQ(key.section, kShardSectionSuite);
  }
}

TEST(ShardPlanTest, DefaultWorkloadListIsTheFullSuite) {
  const ShardPlan plan = ShardPlan::enumerate(SectionSelection{});
  EXPECT_EQ(plan.workloads().size(), 14u);
  // Default selection: series + fig9, no fig10.
  EXPECT_EQ(plan.size(), 28u);
}

TEST(ShardPlanTest, SlicesPartitionThePlan) {
  const ShardPlan plan = ShardPlan::enumerate(all_sections(), kWorkloads);
  for (usize count = 1; count <= plan.size() + 2; ++count) {
    std::vector<ShardKey> combined;
    for (usize index = 1; index <= count; ++index) {
      const std::vector<ShardKey> slice = plan.slice(index, count);
      combined.insert(combined.end(), slice.begin(), slice.end());
    }
    // Every key exactly once (counts beyond the plan size yield empty
    // slices, which are valid shards).
    ASSERT_EQ(combined.size(), plan.size()) << "count " << count;
    for (const ShardKey& key : plan.keys()) {
      EXPECT_NE(std::find(combined.begin(), combined.end(), key),
                combined.end())
          << key.workload << "/" << key.section << " count " << count;
    }
    // Round-robin slices preserve plan order within a shard.
    for (usize index = 1; index <= count; ++index) {
      const std::vector<ShardKey> slice = plan.slice(index, count);
      for (usize i = 0; i + 1 < slice.size(); ++i) {
        const auto pos = [&](const ShardKey& key) {
          return std::find(plan.keys().begin(), plan.keys().end(), key) -
                 plan.keys().begin();
        };
        EXPECT_LT(pos(slice[i]), pos(slice[i + 1]));
      }
    }
  }
}

TEST(ShardFileNameTest, ZeroPadsToCountWidth) {
  EXPECT_EQ(shard_file_name(1, 4), "shard-1-of-4.json");
  EXPECT_EQ(shard_file_name(3, 28), "shard-03-of-28.json");
  EXPECT_EQ(shard_file_name(128, 128), "shard-128-of-128.json");
}

TEST(ShardRunTest, PartialIsThreadAndChunkInvariant) {
  // The shard plan never depends on engine configuration, and the
  // engine's determinism contract extends to partials: same shard,
  // different thread counts and chunk sizes, identical bytes outside
  // meta.
  SectionSelection sections;
  sections.series = true;
  sections.fig9 = false;
  sections.fig10 = false;
  const std::vector<std::string> one = {"compress"};
  const ShardPlan plan = ShardPlan::enumerate(sections, one);
  const ScaleProfile profile = ScaleProfile::ci();
  const ShardRunOptions options;

  std::vector<std::string> dumps;
  for (const auto& [threads, chunk] :
       std::vector<std::pair<usize, usize>>{{1, 4096}, {3, 1024}}) {
    EngineOptions engine_options;
    engine_options.threads = threads;
    engine_options.chunk_size = chunk;
    StudyEngine engine(engine_options);
    ReportMeta meta;
    meta.threads = engine.thread_count();
    meta.chunk_size = chunk;
    dumps.push_back(dump_without_meta(
        run_shard_partial(engine, profile, plan, 1, 1, options, meta)));
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

/// Shared fixture state: the monolithic report and a full partial set
/// for the same two-workload ci run are expensive, so compute them
/// once and let every merge/validate test reuse them.
class ShardMergeTest : public ::testing::Test {
 protected:
  static constexpr usize kShardCount = 4;

  static void SetUpTestSuite() {
    state_ = new State();
    StudyEngine engine;
    const ScaleProfile profile = ScaleProfile::ci();
    const ShardRunOptions options;

    // Monolithic run, exactly as tools/reuse_study assembles it.
    const std::vector<WorkloadMetrics> suite =
        engine.analyze_profile(profile, options.metrics, kWorkloads);
    ReportFigures figures = ReportFigures::all_series();
    Fig9Options fig9_options;
    fig9_options.workloads = kWorkloads;
    figures.fig9 = fig9_finite_rtm(engine, profile, fig9_options);
    Fig10Options fig10_options;
    fig10_options.workloads = kWorkloads;
    figures.fig10 = fig10_speculative_reuse(engine, profile, fig10_options);
    state_->monolithic = build_report(profile, options.metrics, suite,
                                      ReportMeta{}, figures);

    // Every shard of the same run, round-tripped through bytes as
    // --resume checkpoints are.
    const ShardPlan plan = ShardPlan::enumerate(all_sections(), kWorkloads);
    for (usize index = 1; index <= kShardCount; ++index) {
      state_->partials.push_back(reparse(run_shard_partial(
          engine, profile, plan, index, kShardCount, options,
          ReportMeta{})));
    }
  }

  static void TearDownTestSuite() {
    delete state_;
    state_ = nullptr;
  }

  struct State {
    Json monolithic;
    std::vector<Json> partials;
  };
  static State* state_;
};

ShardMergeTest::State* ShardMergeTest::state_ = nullptr;

TEST_F(ShardMergeTest, MergeEqualsMonolithicBytes) {
  std::vector<std::string> errors;
  const auto merged = merge_partials(state_->partials, &errors);
  ASSERT_TRUE(merged.has_value()) << (errors.empty() ? "" : errors[0]);
  EXPECT_EQ(dump_without_meta(*merged), dump_without_meta(state_->monolithic));
}

TEST_F(ShardMergeTest, MergeIsOrderInsensitive) {
  std::vector<Json> shuffled = state_->partials;
  std::rotate(shuffled.begin(), shuffled.begin() + 1, shuffled.end());
  std::swap(shuffled[0], shuffled[1]);
  const auto merged = merge_partials(shuffled);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(dump_without_meta(*merged), dump_without_meta(state_->monolithic));
}

TEST_F(ShardMergeTest, ValidatePartialAcceptsEveryShard) {
  const ShardPlan plan = ShardPlan::enumerate(all_sections(), kWorkloads);
  const ShardRunOptions options;
  for (usize index = 1; index <= kShardCount; ++index) {
    std::string why;
    EXPECT_TRUE(validate_partial(state_->partials[index - 1],
                                 ScaleProfile::ci(), options, plan, index,
                                 kShardCount, &why))
        << "shard " << index << ": " << why;
  }
}

TEST_F(ShardMergeTest, ValidatePartialRejectsMismatches) {
  const ShardPlan plan = ShardPlan::enumerate(all_sections(), kWorkloads);
  const ShardRunOptions options;
  const Json& good = state_->partials[0];
  std::string why;

  // Wrong slot.
  EXPECT_FALSE(validate_partial(good, ScaleProfile::ci(), options, plan, 2,
                                kShardCount, &why));

  // Wrong profile for this run.
  EXPECT_FALSE(validate_partial(good, ScaleProfile::laptop(), options, plan,
                                1, kShardCount, &why));
  EXPECT_NE(why.find("profile"), std::string::npos) << why;

  // Stale build: git_sha differs.
  {
    Json tampered = good;
    Json meta = good.at("meta");
    meta.set("git_sha", "0000000000ff");
    tampered.set("meta", std::move(meta));
    EXPECT_FALSE(validate_partial(tampered, ScaleProfile::ci(), options,
                                  plan, 1, kShardCount, &why));
    EXPECT_NE(why.find("git_sha"), std::string::npos) << why;
  }

  // Different fig10 predictor config than this run resolves to — both
  // a different predictor set and, subtler, the same predictor names
  // with a different confidence shape (the header records the full
  // config, not just labels).
  for (const bool same_names : {false, true}) {
    ShardRunOptions tweaked = options;
    if (same_names) {
      tweaked.fig10.predictors = fig10_predictors();
      tweaked.fig10.predictors.back().confidence_threshold = 3;
    } else {
      tweaked.fig10.predictors.resize(1);
      tweaked.fig10.predictors[0].kind = spec::PredictorKind::kOracle;
    }
    bool any_fig10_shard = false;
    for (usize index = 1; index <= kShardCount; ++index) {
      const bool valid =
          validate_partial(state_->partials[index - 1], ScaleProfile::ci(),
                           tweaked, plan, index, kShardCount, &why);
      // Shards without fig10 keys carry no predictor payload and stay
      // valid; at least one shard must reject the tweaked config.
      if (!valid) {
        any_fig10_shard = true;
        EXPECT_NE(why.find("fig10"), std::string::npos) << why;
      }
    }
    EXPECT_TRUE(any_fig10_shard) << "same_names=" << same_names;
  }

  // Not a partial at all.
  EXPECT_FALSE(validate_partial(state_->monolithic, ScaleProfile::ci(),
                                options, plan, 1, kShardCount, &why));
  EXPECT_NE(why.find("shard"), std::string::npos) << why;
}

TEST_F(ShardMergeTest, MergeRejectsMissingAndDuplicateShards) {
  // Missing shard: the message names the absent checkpoint file, not
  // just the slot number, so a --resume user knows what to look for.
  {
    std::vector<Json> incomplete(state_->partials.begin(),
                                 state_->partials.end() - 1);
    std::vector<std::string> errors;
    EXPECT_FALSE(merge_partials(incomplete, &errors).has_value());
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].find("missing shard"), std::string::npos)
        << errors[0];
    EXPECT_NE(errors[0].find(shard_file_name(kShardCount, kShardCount)),
              std::string::npos)
        << errors[0];
  }
  // Duplicate shard.
  {
    std::vector<Json> duplicated = state_->partials;
    duplicated.push_back(duplicated[0]);
    std::vector<std::string> errors;
    EXPECT_FALSE(merge_partials(duplicated, &errors).has_value());
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].find("duplicate"), std::string::npos) << errors[0];
  }
  // Empty set.
  EXPECT_FALSE(merge_partials({}).has_value());
}

TEST_F(ShardMergeTest, MergeErrorsNameSourceFiles) {
  // When the CLI hands over the file paths it read each partial from,
  // duplicate errors cite both offending files (scan order is
  // whatever the directory iterator produced, so "index 0 and 4"
  // alone would send the user back to re-deriving the mapping).
  std::vector<Json> duplicated = state_->partials;
  duplicated.push_back(duplicated[0]);
  std::vector<std::string> labels;
  for (usize i = 1; i <= state_->partials.size(); ++i) {
    labels.push_back("partials/" + shard_file_name(i, kShardCount));
  }
  labels.push_back("stale/" + shard_file_name(1, kShardCount));
  std::vector<std::string> errors;
  EXPECT_FALSE(merge_partials(duplicated, &errors, labels).has_value());
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("stale/" + shard_file_name(1, kShardCount)),
            std::string::npos)
      << errors[0];
  EXPECT_NE(errors[0].find("partials/" + shard_file_name(1, kShardCount)),
            std::string::npos)
      << errors[0];
}

TEST_F(ShardMergeTest, MergeRejectsMismatchedProvenance) {
  const auto tamper = [&](const char* key, Json value) {
    std::vector<Json> partials = state_->partials;
    partials[1].set(key, std::move(value));
    std::vector<std::string> errors;
    EXPECT_FALSE(merge_partials(partials, &errors).has_value()) << key;
    EXPECT_FALSE(errors.empty()) << key;
    return errors.empty() ? std::string() : errors[0];
  };

  // Mismatched git SHA.
  {
    Json meta = state_->partials[1].at("meta");
    meta.set("git_sha", "feedfacef00d");
    const std::string error = tamper("meta", std::move(meta));
    EXPECT_NE(error.find("git_sha"), std::string::npos) << error;
  }
  // Mismatched profile.
  {
    const std::string error =
        tamper("profile", profile_to_json(ScaleProfile::laptop()));
    EXPECT_NE(error.find("profile"), std::string::npos) << error;
  }
  // Mismatched metric options.
  {
    MetricOptions narrowed;
    narrowed.ilr_latencies = {1};
    const std::string error = tamper("options", options_to_json(narrowed));
    EXPECT_NE(error.find("options"), std::string::npos) << error;
  }
}

TEST_F(ShardMergeTest, MergeRejectsMalformedPartialsWithoutAborting) {
  // Partial content is untrusted bytes: structurally broken documents
  // must come back as merge errors, never trip the asserting JSON
  // accessors.
  const auto tamper_shard = [&](const char* key, Json value) {
    std::vector<Json> partials = state_->partials;
    Json shard = partials[0].at("shard");
    shard.set(key, std::move(value));
    partials[0].set("shard", std::move(shard));
    std::vector<std::string> errors;
    EXPECT_FALSE(merge_partials(partials, &errors).has_value()) << key;
    EXPECT_FALSE(errors.empty()) << key;
  };
  tamper_shard("index", Json(i64{-1}));
  tamper_shard("index", Json(1.5));
  tamper_shard("count", Json(u64{1'000'000'000'000'000ull}));

  // Non-string predictors / non-integral penalties in the fig10
  // header.
  std::vector<Json> partials = state_->partials;
  for (Json& partial : partials) {
    const Json* fig10 = partial.at("raw").find("fig10");
    if (fig10 == nullptr) continue;
    Json raw = partial.at("raw");
    Json tampered = *fig10;
    Json bad = Json::array();
    bad.push_back(Json(u64{1}));
    tampered.set("predictors", std::move(bad));
    raw.set("fig10", std::move(tampered));
    partial.set("raw", std::move(raw));
  }
  std::vector<std::string> errors;
  EXPECT_FALSE(merge_partials(partials, &errors).has_value());
  EXPECT_FALSE(errors.empty());
}

TEST_F(ShardMergeTest, MergeRejectsMismatchedPredictorConfig) {
  // Rebuild the fig10-bearing shards under a different predictor set;
  // merging them with the original suite/fig9 shards must fail on the
  // fig10 header even though profile/options/SHA all match.
  StudyEngine engine;
  const ScaleProfile profile = ScaleProfile::ci();
  ShardRunOptions narrowed;
  narrowed.fig10.predictors.resize(1);
  narrowed.fig10.predictors[0].kind = spec::PredictorKind::kOracle;
  const ShardPlan plan = ShardPlan::enumerate(all_sections(), kWorkloads);

  std::vector<Json> partials = state_->partials;
  bool replaced = false;
  for (usize index = 1; index <= kShardCount; ++index) {
    bool has_fig10 = false;
    for (const ShardKey& key : plan.slice(index, kShardCount)) {
      has_fig10 = has_fig10 || key.section == kShardSectionFig10;
    }
    if (!has_fig10) continue;
    partials[index - 1] = reparse(run_shard_partial(
        engine, profile, plan, index, kShardCount, narrowed, ReportMeta{}));
    replaced = true;
    break;  // one mismatched shard is enough to poison the merge
  }
  ASSERT_TRUE(replaced);
  std::vector<std::string> errors;
  EXPECT_FALSE(merge_partials(partials, &errors).has_value());
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("fig10"), std::string::npos) << errors[0];
}

// ---- TLC source workloads through the shard pipeline -----------------
//
// Workloads that enter via workloads::make_from_source /
// register_source (the `reuse_study --workload-file` path, docs/tlc.md)
// must be first-class citizens of the shard plan: partials over a
// generated program merge back to the monolithic report byte for byte,
// exactly like the built-in analogs.
TEST(ShardSourceWorkloadTest, GeneratedWorkloadsMergeToMonolithicBytes) {
  lang::gen::GenConfig config;
  config.seed = 4242;
  config.size = 1;
  std::string error;
  ASSERT_TRUE(workloads::register_source(
      "genshard", lang::gen::generate_program(config), &error))
      << error;
  const std::vector<std::string> mixed = {"compress", "genshard"};

  StudyEngine engine;
  SuiteConfig small;
  small.skip = 10'000;
  small.length = 40'000;
  const ScaleProfile profile = ScaleProfile::custom(small);
  const ShardRunOptions options;

  const std::vector<WorkloadMetrics> suite =
      engine.analyze_profile(profile, options.metrics, mixed);
  const Json monolithic = build_report(profile, options.metrics, suite,
                                       ReportMeta{}, ReportFigures::all_series());

  SectionSelection sections;
  sections.series = true;
  sections.fig9 = false;
  sections.fig10 = false;
  const ShardPlan plan = ShardPlan::enumerate(sections, mixed);
  constexpr usize kCount = 3;
  std::vector<Json> partials;
  for (usize index = 1; index <= kCount; ++index) {
    partials.push_back(reparse(run_shard_partial(
        engine, profile, plan, index, kCount, options, ReportMeta{})));
    // Every partial must validate for --resume before it merges.
    std::string why;
    EXPECT_TRUE(validate_partial(partials.back(), profile, options, plan,
                                 index, kCount, &why))
        << "shard " << index << ": " << why;
  }
  std::vector<std::string> errors;
  const auto merged = merge_partials(partials, &errors);
  ASSERT_TRUE(merged.has_value()) << (errors.empty() ? "" : errors[0]);
  EXPECT_EQ(dump_without_meta(*merged), dump_without_meta(monolithic));
}

}  // namespace
}  // namespace tlr::core
