// Core facade tests: metric consistency, figure assembly, aggregation
// discipline, and a small finite-RTM matrix smoke test.
#include <gtest/gtest.h>

#include "core/figures.hpp"
#include "core/study.hpp"

namespace tlr::core {
namespace {

SuiteConfig small_config() {
  SuiteConfig config;
  config.skip = 10000;
  config.length = 50000;
  return config;
}

TEST(StudyTest, MetricsAreInternallyConsistent) {
  const WorkloadMetrics m = analyze_workload("compress", small_config());
  EXPECT_EQ(m.name, "compress");
  EXPECT_FALSE(m.is_fp);
  EXPECT_EQ(m.instructions, 50000u);
  EXPECT_GT(m.reusability, 0.0);
  EXPECT_LT(m.reusability, 1.0);

  // Reuse can only help (oracle rule): cycle counts never exceed base.
  EXPECT_GT(m.base_inf, 0u);
  EXPECT_GE(m.base_win, m.base_inf);  // a window never speeds things up
  for (const Cycle c : m.ilr_inf) EXPECT_LE(c, m.base_inf);
  for (const Cycle c : m.ilr_win) EXPECT_LE(c, m.base_win);
  EXPECT_LE(m.trace_inf, m.base_inf);
  for (const Cycle c : m.trace_win) EXPECT_LE(c, m.base_win);
  for (const Cycle c : m.trace_win_prop) EXPECT_LE(c, m.base_win);

  // Latency sweeps are monotone: higher reuse latency, no faster.
  for (usize i = 1; i < m.ilr_inf.size(); ++i) {
    EXPECT_GE(m.ilr_inf[i], m.ilr_inf[i - 1]);
    EXPECT_GE(m.ilr_win[i], m.ilr_win[i - 1]);
    EXPECT_GE(m.trace_win[i], m.trace_win[i - 1]);
  }
  for (usize i = 1; i < m.trace_win_prop.size(); ++i) {
    EXPECT_GE(m.trace_win_prop[i], m.trace_win_prop[i - 1]);
  }

  // Speed-up accessors agree with the ratios.
  EXPECT_DOUBLE_EQ(m.ilr_speedup_inf(0),
                   double(m.base_inf) / double(m.ilr_inf[0]));
  EXPECT_GE(m.trace_speedup_win(0), 1.0);
}

TEST(StudyTest, TraceReuseAtLeastInstructionReuse) {
  // Theorem-1 grouping means trace reuse covers the same instructions
  // with less overhead: at equal latency it can never be slower.
  for (const char* name : {"compress", "hydro2d", "gcc"}) {
    const WorkloadMetrics m = analyze_workload(name, small_config());
    EXPECT_LE(m.trace_win[0], m.ilr_win[0]) << name;
    EXPECT_LE(m.trace_inf, m.ilr_inf[0]) << name;
  }
}

TEST(StudyTest, StreamCollectionMatchesLength) {
  const auto stream = collect_workload_stream("perl", small_config());
  EXPECT_EQ(stream.size(), 50000u);
}

TEST(FiguresTest, SeriesAssemblyAndAggregation) {
  std::vector<WorkloadMetrics> suite(3);
  suite[0].name = "a";
  suite[0].is_fp = true;
  suite[0].reusability = 0.5;
  suite[1].name = "b";
  suite[1].is_fp = false;
  suite[1].reusability = 0.9;
  suite[2].name = "c";
  suite[2].is_fp = false;
  suite[2].reusability = 0.7;

  const BenchSeries series = fig3_reusability(suite);
  ASSERT_EQ(series.values.size(), 3u);
  EXPECT_DOUBLE_EQ(series.values[0], 50.0);
  EXPECT_DOUBLE_EQ(series.avg_fp, 50.0);
  EXPECT_DOUBLE_EQ(series.avg_int, 80.0);       // arithmetic
  EXPECT_DOUBLE_EQ(series.avg_all, 70.0);

  const TextTable table = series.to_table("reusable %", 1);
  EXPECT_EQ(table.rows(), 6u);  // 3 benchmarks + 3 aggregates
  EXPECT_EQ(table.cell(3, 0), "AVG_FP");
}

TEST(FiguresTest, HarmonicAggregationForSpeedups) {
  std::vector<WorkloadMetrics> suite(2);
  for (auto& m : suite) {
    m.base_inf = 100;
    m.base_win = 100;
    m.ilr_inf = {50};
    m.ilr_win = {50};
    m.trace_win = {50};
    m.trace_win_prop = {50};
    m.trace_inf = 50;
  }
  suite[0].ilr_inf[0] = 25;  // speed-up 4 vs 2: harmonic mean = 2.67
  const BenchSeries series = fig4a_ilr_speedup_inf(suite);
  EXPECT_NEAR(series.avg_all, 2.0 * 4.0 * 2.0 / (4.0 + 2.0), 1e-9);
}

TEST(FiguresTest, LatencySweepsHaveConfiguredPoints) {
  SuiteConfig config = small_config();
  MetricOptions options;
  options.ilr_latencies = {1, 2};
  options.trace_latencies = {1, 2, 3};
  options.proportional_ks = {0.25, 1.0};
  const WorkloadMetrics m = analyze_workload("go", config, options);
  std::vector<WorkloadMetrics> suite = {m};
  EXPECT_EQ(fig4b_ilr_latency_sweep(suite).size(), 2u);
  EXPECT_EQ(fig8a_latency_sweep(suite).size(), 3u);
  EXPECT_EQ(fig8b_proportional_sweep(suite).size(), 2u);
}

TEST(FiguresTest, TraceIoStatsSaneRanges) {
  const WorkloadMetrics m = analyze_workload("vortex", small_config());
  const TraceIoStats stats = trace_io_stats({m});
  EXPECT_GT(stats.avg_size, 1.0);
  EXPECT_GT(stats.reg_inputs, 0.0);
  EXPECT_GT(stats.reg_outputs, 0.0);
  // The paper's headline: far fewer reads/writes per reused instruction
  // than the >=1 reads a normal execution needs.
  EXPECT_LT(stats.reads_per_inst, 1.0);
  EXPECT_LT(stats.writes_per_inst, 1.0);
}

TEST(FiguresTest, Fig9HeuristicsAndGeometries) {
  const auto heuristics = fig9_heuristics();
  ASSERT_EQ(heuristics.size(), 10u);
  EXPECT_EQ(heuristics[0].label, "ILR NE");
  EXPECT_EQ(heuristics[1].label, "ILR EXP");
  EXPECT_EQ(heuristics[2].label, "I1 EXP");
  EXPECT_EQ(heuristics[9].label, "I8 EXP");
  EXPECT_EQ(fig9_geometries().size(), 4u);
}

}  // namespace
}  // namespace tlr::core
