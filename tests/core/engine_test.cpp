// StudyEngine tests: the single-pass chunked engine must be
// bit-identical to the seed's sequential materialise-then-rewalk
// implementation (golden reference below), invariant to chunk size,
// and invariant to the thread count of the suite fan-out.
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "core/study.hpp"
#include "reuse/reusability.hpp"
#include "reuse/rtm_sim.hpp"
#include "reuse/trace_builder.hpp"
#include "timing/timer.hpp"
#include "vm/interpreter.hpp"
#include "workloads/workload.hpp"

namespace tlr::core {
namespace {

SuiteConfig small_config() {
  SuiteConfig config;
  config.skip = 10000;
  config.length = 50000;
  return config;
}

/// The seed's sequential implementation, kept verbatim as the golden
/// reference: materialise the stream, analyse reusability, build both
/// plans, and price every configuration with compute_timing.
WorkloadMetrics reference_analyze(std::string_view workload_name,
                                  const SuiteConfig& config,
                                  const MetricOptions& options = {}) {
  using timing::TimerConfig;
  workloads::WorkloadParams params;
  params.seed = config.seed;
  const workloads::Workload workload =
      workloads::make_workload(workload_name, params);

  vm::RunLimits limits;
  limits.skip = config.skip;
  limits.max_emitted = config.length;
  const std::vector<isa::DynInst> stream =
      vm::collect_stream(workload.program, limits);

  WorkloadMetrics metrics;
  metrics.name = workload.name;
  metrics.is_fp = workload.is_fp;
  metrics.instructions = stream.size();

  const reuse::ReusabilityResult reusability =
      reuse::analyze_reusability(stream);
  metrics.reusability = reusability.fraction();

  const timing::ReusePlan instr_plan =
      reuse::build_instr_plan(stream, reusability.reusable);
  const timing::ReusePlan trace_plan =
      reuse::build_max_trace_plan(stream, reusability.reusable);

  if (options.trace_stats) {
    metrics.trace_stats = reuse::compute_trace_stats(trace_plan);
  }
  if (options.timing) {
    TimerConfig base_cfg;
    base_cfg.window = 0;
    metrics.base_inf = timing::compute_timing(stream, nullptr, base_cfg).cycles;
    base_cfg.window = config.window;
    metrics.base_win = timing::compute_timing(stream, nullptr, base_cfg).cycles;

    for (const Cycle latency : options.ilr_latencies) {
      TimerConfig cfg;
      cfg.inst_reuse_latency = latency;
      cfg.window = 0;
      metrics.ilr_inf.push_back(
          timing::compute_timing(stream, &instr_plan, cfg).cycles);
      cfg.window = config.window;
      metrics.ilr_win.push_back(
          timing::compute_timing(stream, &instr_plan, cfg).cycles);
    }
    {
      TimerConfig cfg;
      cfg.trace_reuse_latency = 1;
      cfg.window = 0;
      metrics.trace_inf =
          timing::compute_timing(stream, &trace_plan, cfg).cycles;
    }
    for (const Cycle latency : options.trace_latencies) {
      TimerConfig cfg;
      cfg.trace_reuse_latency = latency;
      cfg.window = config.window;
      metrics.trace_win.push_back(
          timing::compute_timing(stream, &trace_plan, cfg).cycles);
    }
    for (const double k : options.proportional_ks) {
      TimerConfig cfg;
      cfg.proportional_trace_latency = true;
      cfg.trace_latency_k = k;
      cfg.window = config.window;
      metrics.trace_win_prop.push_back(
          timing::compute_timing(stream, &trace_plan, cfg).cycles);
    }
  }
  return metrics;
}

/// Exact (bit-identical) equality across every WorkloadMetrics field.
void expect_metrics_identical(const WorkloadMetrics& a,
                              const WorkloadMetrics& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.is_fp, b.is_fp);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.reusability, b.reusability);
  EXPECT_EQ(a.base_inf, b.base_inf);
  EXPECT_EQ(a.base_win, b.base_win);
  EXPECT_EQ(a.ilr_inf, b.ilr_inf);
  EXPECT_EQ(a.ilr_win, b.ilr_win);
  EXPECT_EQ(a.trace_inf, b.trace_inf);
  EXPECT_EQ(a.trace_win, b.trace_win);
  EXPECT_EQ(a.trace_win_prop, b.trace_win_prop);
  EXPECT_EQ(a.trace_stats.traces, b.trace_stats.traces);
  EXPECT_EQ(a.trace_stats.covered_instructions,
            b.trace_stats.covered_instructions);
  EXPECT_EQ(a.trace_stats.avg_size, b.trace_stats.avg_size);
  EXPECT_EQ(a.trace_stats.avg_reg_inputs, b.trace_stats.avg_reg_inputs);
  EXPECT_EQ(a.trace_stats.avg_mem_inputs, b.trace_stats.avg_mem_inputs);
  EXPECT_EQ(a.trace_stats.avg_reg_outputs, b.trace_stats.avg_reg_outputs);
  EXPECT_EQ(a.trace_stats.avg_mem_outputs, b.trace_stats.avg_mem_outputs);
}

TEST(StreamSourceTest, ChunksConcatenateToCollectedStream) {
  workloads::WorkloadParams params;
  const workloads::Workload workload = workloads::make_workload("li", params);
  vm::RunLimits limits;
  limits.skip = 5000;
  limits.max_emitted = 20000;
  const auto reference = vm::collect_stream(workload.program, limits);

  vm::StreamSource source(workload.program, limits, /*chunk_size=*/777);
  vm::StreamChunk chunk;
  std::vector<isa::DynInst> streamed;
  while (source.next(chunk)) {
    EXPECT_LE(chunk.insts.size(), 777u);
    EXPECT_EQ(chunk.first_index, streamed.size());
    streamed.insert(streamed.end(), chunk.insts.begin(), chunk.insts.end());
  }
  EXPECT_TRUE(source.exhausted());
  EXPECT_EQ(source.emitted(), reference.size());

  ASSERT_EQ(streamed.size(), reference.size());
  for (usize i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(streamed[i].pc, reference[i].pc);
    EXPECT_EQ(streamed[i].next_pc, reference[i].next_pc);
    EXPECT_EQ(streamed[i].num_inputs, reference[i].num_inputs);
    EXPECT_EQ(streamed[i].output_value, reference[i].output_value);
  }
}

TEST(StudyEngineTest, MatchesSequentialReferenceBitForBit) {
  const SuiteConfig config = small_config();
  StudyEngine engine;
  for (const char* name : {"compress", "hydro2d"}) {
    expect_metrics_identical(engine.analyze(name, config),
                             reference_analyze(name, config));
  }
}

TEST(StudyEngineTest, ChunkSizeInvariance) {
  const SuiteConfig config = small_config();
  EngineOptions tiny_chunks;
  tiny_chunks.chunk_size = 257;  // forces traces to straddle chunks
  EngineOptions one_chunk;
  one_chunk.chunk_size = usize{1} << 20;  // whole stream in one chunk
  const WorkloadMetrics a =
      StudyEngine(tiny_chunks).analyze("vortex", config);
  const WorkloadMetrics b = StudyEngine(one_chunk).analyze("vortex", config);
  expect_metrics_identical(a, b);
}

TEST(StudyEngineTest, ThreadCountInvariance) {
  SuiteConfig config;
  config.skip = 2000;
  config.length = 15000;
  MetricOptions options;
  options.ilr_latencies = {1, 2};
  options.trace_latencies = {1};
  options.proportional_ks = {0.25};

  EngineOptions serial;
  serial.threads = 1;
  EngineOptions wide;
  wide.threads = 4;
  StudyEngine engine1(serial);
  StudyEngine engineN(wide);
  EXPECT_EQ(engine1.thread_count(), 1u);
  EXPECT_EQ(engineN.thread_count(), 4u);

  const auto suite1 = engine1.analyze_suite(config, options);
  const auto suiteN = engineN.analyze_suite(config, options);
  ASSERT_EQ(suite1.size(), suiteN.size());
  for (usize i = 0; i < suite1.size(); ++i) {
    expect_metrics_identical(suite1[i], suiteN[i]);
  }
}

TEST(StudyEngineTest, SingleInterpreterPassFeedsAllConsumers) {
  // Two timing consumers plus the reusability stage over one pass must
  // agree with two independent sequential runs — and the pass count is
  // observable through the stream length each consumer reports.
  const SuiteConfig config = small_config();
  StudyEngine engine;

  ReusabilityConsumer reusability;
  timing::TimerConfig cfg;
  cfg.window = 256;
  TimingConsumer base(TimingConsumer::Mode::kBase, cfg);
  TimingConsumer ilr(TimingConsumer::Mode::kInstReuse, cfg);
  std::vector<StreamConsumer*> consumers = {&reusability, &base, &ilr};
  const u64 total = engine.run_workload_stream("gcc", config, consumers);

  EXPECT_EQ(total, config.length);
  EXPECT_EQ(reusability.total(), total);
  EXPECT_EQ(base.result().instructions, total);
  EXPECT_EQ(ilr.result().instructions, total);
  EXPECT_LE(ilr.result().cycles, base.result().cycles);
}

TEST(RtmSimStreamingTest, ChunkedFeedMatchesOneShot) {
  const SuiteConfig config = small_config();
  const auto stream = collect_workload_stream("li", config);

  for (const auto heuristic : {reuse::CollectHeuristic::kIlrNoExpand,
                               reuse::CollectHeuristic::kIlrExpand,
                               reuse::CollectHeuristic::kFixedExpand}) {
    reuse::RtmSimConfig sim_config;
    sim_config.geometry = reuse::RtmGeometry::rtm4k();
    sim_config.heuristic = heuristic;
    sim_config.fixed_n = 4;
    sim_config.build_plan = true;
    sim_config.verify_matches = true;

    reuse::RtmSimulator one_shot(sim_config);
    const reuse::RtmSimResult whole = one_shot.run(stream);

    for (const usize feed_size : {usize{1}, usize{7}, usize{1024}}) {
      reuse::RtmSimulator chunked(sim_config);
      for (usize i = 0; i < stream.size(); i += feed_size) {
        const usize n = std::min(feed_size, stream.size() - i);
        chunked.feed(std::span<const isa::DynInst>(&stream[i], n));
      }
      const reuse::RtmSimResult piecewise = chunked.finish();

      EXPECT_EQ(piecewise.instructions, whole.instructions);
      EXPECT_EQ(piecewise.reused_instructions, whole.reused_instructions);
      EXPECT_EQ(piecewise.reuse_operations, whole.reuse_operations);
      EXPECT_EQ(piecewise.expansions, whole.expansions);
      EXPECT_EQ(piecewise.merges, whole.merges);
      EXPECT_EQ(piecewise.rtm.lookups, whole.rtm.lookups);
      EXPECT_EQ(piecewise.rtm.hits, whole.rtm.hits);
      EXPECT_EQ(piecewise.rtm.insertions, whole.rtm.insertions);
      EXPECT_EQ(piecewise.plan.kind, whole.plan.kind);
      EXPECT_EQ(piecewise.plan.trace_of, whole.plan.trace_of);
      ASSERT_EQ(piecewise.plan.traces.size(), whole.plan.traces.size());
      for (usize t = 0; t < whole.plan.traces.size(); ++t) {
        EXPECT_EQ(piecewise.plan.traces[t].first_index,
                  whole.plan.traces[t].first_index);
        EXPECT_EQ(piecewise.plan.traces[t].length,
                  whole.plan.traces[t].length);
      }
    }
  }
}

TEST(RtmSimConsumerTest, EventDrivenTimingMatchesPlanBasedTiming) {
  // The timer riding on the simulator's event stream must price the
  // stream exactly like compute_timing over the materialised plan.
  const SuiteConfig config = small_config();
  const auto stream = collect_workload_stream("vortex", config);

  reuse::RtmSimConfig sim_config;
  sim_config.geometry = reuse::RtmGeometry::rtm4k();
  sim_config.heuristic = reuse::CollectHeuristic::kFixedExpand;
  sim_config.fixed_n = 4;
  sim_config.build_plan = true;

  timing::TimerConfig timer_config;
  timer_config.window = config.window;

  reuse::RtmSimulator plan_sim(sim_config);
  const reuse::RtmSimResult sim = plan_sim.run(stream);
  const timing::TimerResult plan_timed =
      timing::compute_timing(stream, &sim.plan, timer_config);

  StudyEngine engine;
  RtmSimConsumer consumer(sim_config, timer_config);
  std::vector<StreamConsumer*> consumers = {&consumer};
  engine.run_workload_stream("vortex", config, consumers);

  EXPECT_EQ(consumer.timing_result().cycles, plan_timed.cycles);
  EXPECT_EQ(consumer.timing_result().instructions, plan_timed.instructions);
  EXPECT_EQ(consumer.result().reused_instructions, sim.reused_instructions);
}

}  // namespace
}  // namespace tlr::core
