// Property tests for the paper's Theorems 1 and 2 (appendix), checked
// against real workload streams rather than hand-built examples.
//
// Theorem 1: if a trace is reusable then every instruction in it is
// reusable. Contrapositive check: every trace the RtmSimulator actually
// *reuses* must cover only instructions that a perfect instruction-level
// engine also finds reusable at that point.
//
// Theorem 2: all-instructions-reusable does not imply the trace is
// reusable — we exhibit this concretely on a crafted stream.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "reuse/instr_table.hpp"
#include "reuse/reusability.hpp"
#include "reuse/rtm_sim.hpp"
#include "reuse/trace_builder.hpp"
#include "vm/interpreter.hpp"
#include "workloads/workload.hpp"

namespace tlr {
namespace {

using isa::DynInst;
using isa::Loc;
using isa::r;

class TheoremOnWorkload : public ::testing::TestWithParam<std::string_view> {};

TEST_P(TheoremOnWorkload, ReusedTracesContainOnlyReusableInstructions) {
  vm::RunLimits limits;
  limits.skip = 10000;
  limits.max_emitted = 40000;
  const auto stream = vm::collect_stream(
      workloads::make_workload(GetParam(), {}).program, limits);

  // Perfect-engine per-instruction reusability.
  const reuse::ReusabilityResult perfect = reuse::analyze_reusability(stream);

  // Realistic simulator with a plan, so we know exactly which stream
  // regions were reused.
  reuse::RtmSimConfig config;
  config.build_plan = true;
  config.verify_matches = true;
  const reuse::RtmSimResult result =
      reuse::RtmSimulator(config).run(stream);

  // Theorem 1 (applied): a trace matched with identical inputs implies
  // each covered instruction also has matching inputs, i.e. would be
  // flagged reusable by the perfect engine.
  for (const timing::PlanTrace& trace : result.plan.traces) {
    for (u64 j = trace.first_index; j < trace.first_index + trace.length;
         ++j) {
      EXPECT_TRUE(perfect.reusable[j])
          << GetParam() << ": reused trace covers a non-reusable "
          << "instruction at index " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, TheoremOnWorkload,
                         ::testing::Values("compress", "gcc", "li",
                                           "hydro2d", "turb3d", "vortex"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(Theorem2Test, AllReusableInstructionsDoNotMakeAReusableTrace) {
  // Two instructions, each individually reusable (their inputs were
  // seen before), but never with the *combination* of inputs the trace
  // as a whole would need:
  //   A: r3 <- r1    B: r4 <- r2
  // History: (r1=1, r2=2), (r1=7, r2=9).
  // Final execution: r1=1, r2=9 — A matches the first instance, B the
  // second, but trace <A,B> never executed with (1,9).
  auto make = [](u64 v1, u64 v2) {
    std::vector<DynInst> pair;
    DynInst a;
    a.pc = 0;
    a.op = isa::Op::kMov;
    a.add_input(Loc::reg(r(1)), v1);
    a.set_output(Loc::reg(r(3)), v1);
    DynInst b;
    b.pc = 1;
    b.op = isa::Op::kMov;
    b.add_input(Loc::reg(r(2)), v2);
    b.set_output(Loc::reg(r(4)), v2);
    pair.push_back(a);
    pair.push_back(b);
    return pair;
  };

  std::vector<DynInst> stream;
  for (const auto& pair : {make(1, 2), make(7, 9), make(1, 9)}) {
    stream.insert(stream.end(), pair.begin(), pair.end());
  }

  const reuse::ReusabilityResult perfect = reuse::analyze_reusability(stream);
  // Both instructions of the final pair are individually reusable...
  EXPECT_TRUE(perfect.reusable[4]);
  EXPECT_TRUE(perfect.reusable[5]);

  // ...but a whole-trace engine that stored <A,B> instances (1,2) and
  // (7,9) cannot match the combined input sequence (1,9).
  reuse::InfiniteInstrTable trace_table;
  auto trace_sig = [](const DynInst& a, const DynInst& b) {
    DynInst combined;  // model the trace's IL/IV sequence
    combined.pc = 1000;
    combined.add_input(a.inputs[0].loc, a.inputs[0].value);
    combined.add_input(b.inputs[0].loc, b.inputs[0].value);
    return combined;
  };
  EXPECT_FALSE(trace_table.lookup_insert(trace_sig(stream[0], stream[1])));
  EXPECT_FALSE(trace_table.lookup_insert(trace_sig(stream[2], stream[3])));
  // Theorem 2's conclusion: the trace is NOT necessarily reusable.
  EXPECT_FALSE(trace_table.lookup_insert(trace_sig(stream[4], stream[5])));
}

TEST(MaxTraceUpperBound, CoverageEqualsReusableCount) {
  // The maximal-trace construction must cover exactly the reusable
  // instructions (condition (a) of §4.4) with the minimum number of
  // traces (condition (b): no two adjacent traces).
  vm::RunLimits limits;
  limits.skip = 5000;
  limits.max_emitted = 30000;
  const auto stream = vm::collect_stream(
      workloads::make_workload("li", {}).program, limits);
  const reuse::ReusabilityResult perfect = reuse::analyze_reusability(stream);
  const timing::ReusePlan plan =
      reuse::build_max_trace_plan(stream, perfect.reusable);

  u64 covered = 0;
  for (const auto& trace : plan.traces) covered += trace.length;
  EXPECT_EQ(covered, perfect.reusable_count);

  // Minimality: consecutive traces are separated by at least one
  // non-reusable instruction.
  for (usize t = 1; t < plan.traces.size(); ++t) {
    EXPECT_GT(plan.traces[t].first_index,
              plan.traces[t - 1].first_index + plan.traces[t - 1].length);
  }
}

}  // namespace
}  // namespace tlr
