// Scaling study (DESIGN.md §6): the reusability metrics the library
// reports must be stable as the measured window grows, otherwise the
// laptop-scale substitution for the paper's 50M-instruction windows
// would be meaningless.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/profile.hpp"
#include "core/report.hpp"
#include "lang/gen/generator.hpp"
#include "reuse/reusability.hpp"
#include "vm/interpreter.hpp"
#include "workloads/workload.hpp"

namespace tlr {
namespace {

double reusability_at(std::string_view name, u64 length) {
  vm::RunLimits limits;
  limits.skip = 50000;
  limits.max_emitted = length;
  const auto stream = vm::collect_stream(
      workloads::make_workload(name, {}).program, limits);
  return reuse::analyze_reusability(stream).fraction();
}

class ScalingStability : public ::testing::TestWithParam<std::string_view> {};

TEST_P(ScalingStability, ReusabilityGrowsThenStabilises) {
  const double at_200k = reusability_at(GetParam(), 200000);
  const double at_500k = reusability_at(GetParam(), 500000);
  // Longer windows amortise the cold-table start: reusability must not
  // drop, and must move by less than ~12 percentage points.
  EXPECT_GE(at_500k + 0.02, at_200k) << GetParam();
  EXPECT_LT(at_500k - at_200k, 0.12) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Representative, ScalingStability,
                         ::testing::Values("compress", "hydro2d", "applu",
                                           "li"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---- TLC generated-program properties (docs/tlc.md) ------------------
//
// Compiled TLC workloads enter the study through the same StudyEngine
// contract as the hand-written analogs, so the engine's determinism
// guarantee (DESIGN.md §5) must extend to them: the full report for a
// batch of generated programs is bit-identical across thread counts
// and chunk sizes.

/// Registers `count` tlgen programs (once per process) and returns
/// their workload names.
std::vector<std::string> generated_batch(usize count) {
  static const std::vector<std::string>* names = [count] {
    auto* list = new std::vector<std::string>();
    for (usize i = 0; i < count; ++i) {
      lang::gen::GenConfig config;
      config.seed = 1000 + i;
      config.size = static_cast<u32>(i % 3);
      const std::string name = "gen" + std::to_string(config.seed);
      std::string error;
      EXPECT_TRUE(workloads::register_source(
          name, lang::gen::generate_program(config), &error))
          << error;
      list->push_back(name);
    }
    return list;
  }();
  return *names;
}

TEST(TlcEngineDeterminismTest, ReportsAreShapeInvariant) {
  const std::vector<std::string> batch = generated_batch(3);
  core::SuiteConfig config;
  config.skip = 20'000;
  config.length = 60'000;
  const core::ScaleProfile profile = core::ScaleProfile::custom(config);
  const core::MetricOptions metrics;

  std::vector<std::string> dumps;
  for (const auto& [threads, chunk] :
       std::vector<std::pair<usize, usize>>{{1, 1009}, {4, 4096}}) {
    core::EngineOptions engine_options;
    engine_options.threads = threads;
    engine_options.chunk_size = chunk;
    core::StudyEngine engine(engine_options);
    const std::vector<core::WorkloadMetrics> suite =
        engine.analyze_profile(profile, metrics, batch);
    util::Json report = core::build_report(profile, metrics, suite,
                                           core::ReportMeta{});
    report.set("meta", util::Json::object());
    dumps.push_back(report.dump(2));
  }
  // One thread with a deliberately odd chunk vs. four threads: the
  // engine's determinism claim means identical bytes, not just close
  // numbers.
  EXPECT_EQ(dumps[0], dumps[1]);
}

double tlc_reusability_at(const std::string& source, u32 scale) {
  workloads::WorkloadParams params;
  params.scale = scale;
  std::string error;
  const auto workload =
      workloads::make_from_source("scaled", source, params, &error);
  EXPECT_TRUE(workload.has_value()) << error;
  vm::RunLimits limits;
  limits.skip = 20'000;
  limits.max_emitted = 120'000;
  const auto stream = vm::collect_stream(workload->program, limits);
  return reuse::analyze_reusability(stream).fraction();
}

TEST(TlcScaleStabilityTest, ReuseFractionIsBandStableUnderScale) {
  // WorkloadParams::scale stretches a generated program's traversal
  // bounds (never its array lengths), so doubling it must move the
  // perfect-engine reuse fraction only within a band — the redundancy
  // comes from re-traversing slowly changing data, which survives a
  // longer walk (the same argument DESIGN.md §2 makes for the analogs).
  for (u64 seed : {u64{11}, u64{23}, u64{42}}) {
    lang::gen::GenConfig config;
    config.seed = seed;
    config.size = 1;
    const std::string source = lang::gen::generate_program(config);
    const double at_1 = tlc_reusability_at(source, 1);
    const double at_2 = tlc_reusability_at(source, 2);
    EXPECT_GT(at_1, 0.05) << "seed " << seed << ": degenerate program";
    EXPECT_LT(std::abs(at_2 - at_1), 0.15)
        << "seed " << seed << ": scale 1 -> " << at_1 << ", scale 2 -> "
        << at_2;
  }
}

}  // namespace
}  // namespace tlr
