// Scaling study (DESIGN.md §6): the reusability metrics the library
// reports must be stable as the measured window grows, otherwise the
// laptop-scale substitution for the paper's 50M-instruction windows
// would be meaningless.
#include <gtest/gtest.h>

#include <string>

#include "reuse/reusability.hpp"
#include "vm/interpreter.hpp"
#include "workloads/workload.hpp"

namespace tlr {
namespace {

double reusability_at(std::string_view name, u64 length) {
  vm::RunLimits limits;
  limits.skip = 50000;
  limits.max_emitted = length;
  const auto stream = vm::collect_stream(
      workloads::make_workload(name, {}).program, limits);
  return reuse::analyze_reusability(stream).fraction();
}

class ScalingStability : public ::testing::TestWithParam<std::string_view> {};

TEST_P(ScalingStability, ReusabilityGrowsThenStabilises) {
  const double at_200k = reusability_at(GetParam(), 200000);
  const double at_500k = reusability_at(GetParam(), 500000);
  // Longer windows amortise the cold-table start: reusability must not
  // drop, and must move by less than ~12 percentage points.
  EXPECT_GE(at_500k + 0.02, at_200k) << GetParam();
  EXPECT_LT(at_500k - at_200k, 0.12) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Representative, ScalingStability,
                         ::testing::Values("compress", "hydro2d", "applu",
                                           "li"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace tlr
